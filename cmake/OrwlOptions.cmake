# Defines the `orwl_options` interface target: the project-wide compile
# contract (include root, language level add-ons, warning set, sanitizer
# instrumentation) that every layer library inherits.
#
# Inputs (set by the top-level CMakeLists before inclusion):
#   ORWL_WERROR    - bool, promote warnings to errors
#   ORWL_SANITIZE  - comma-separated sanitizer list for -fsanitize=

add_library(orwl_options INTERFACE)
target_include_directories(orwl_options INTERFACE ${PROJECT_SOURCE_DIR}/src)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(orwl_options INTERFACE -Wall -Wextra)
  if(ORWL_WERROR)
    target_compile_options(orwl_options INTERFACE -Werror)
  endif()
  if(ORWL_SANITIZE)
    target_compile_options(orwl_options INTERFACE
      -fsanitize=${ORWL_SANITIZE} -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
    target_link_options(orwl_options INTERFACE -fsanitize=${ORWL_SANITIZE})
  endif()
elseif(ORWL_SANITIZE)
  message(WARNING
    "ORWL_SANITIZE is only wired up for GCC/Clang; ignoring for "
    "${CMAKE_CXX_COMPILER_ID}")
endif()
