// Cross-process bytes pipeline over one distributed ORWL location.
//
// The fifo_bytes_pipeline example moves opaque frames between two tasks
// of one program; here the producer lives in a forked child process and
// streams variable-length packets through a single exported frame slot,
// while the home process consumes and folds every payload byte into an
// FNV-1a digest kept inside the same slot. The slot's produced/consumed
// sequence numbers turn the exclusive-write lock into a depth-1 pipeline
// — and because producer and consumer only touch rt::Location&, the
// identical code runs intra-process as the baseline.
//
// The final slot state (digest included) is deterministic, so the runs
// must be bit-identical:
//
//   intra-process baseline  ==  shm transport  ==  tcp loopback
//
//   ./dist_bytes_pipeline            # runs baseline + shm + tcp
//   ORWL_DIST=shm ./dist_bytes_pipeline
//   ORWL_DIST=tcp ./dist_bytes_pipeline
//
// Exits non-zero on any mismatch (CI runs this under ASan).
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "dist/registry.hpp"
#include "dist/remote.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport.hpp"
#include "runtime/handle.hpp"
#include "runtime/location.hpp"

namespace {

using namespace orwl;

constexpr std::uint64_t kFrames = 48;
constexpr std::uint32_t kMaxPayload = 224;

/// The exported location: a one-frame pipeline slot plus the consumer's
/// running digest. produced == consumed means the slot is free.
struct FrameSlot {
  std::uint64_t produced;
  std::uint64_t consumed;
  std::uint32_t len;
  std::byte payload[kMaxPayload];
  std::uint64_t fnv;
};

std::uint64_t fnv_fold(std::uint64_t h, const std::byte* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Producer side: deposit frame #produced+1 whenever the slot is free.
void produce(rt::Location& loc) {
  for (std::uint64_t next = 1; next <= kFrames;) {
    rt::Handle h;
    h.insert_standalone(loc, rt::AccessMode::Write);
    rt::Section sec(h);
    FrameSlot* s = sec.as<FrameSlot>();
    if (s->produced == s->consumed) {  // slot free
      s->len = static_cast<std::uint32_t>((next * 37) % kMaxPayload);
      for (std::uint32_t j = 0; j < s->len; ++j) {
        s->payload[j] = static_cast<std::byte>((next + j) & 0xff);
      }
      s->produced = next++;
    }
  }
}

/// Consumer side: fold each new frame into the in-slot digest.
void consume(rt::Location& loc) {
  for (std::uint64_t seen = 0; seen < kFrames;) {
    rt::Handle h;
    h.insert_standalone(loc, rt::AccessMode::Write);
    rt::Section sec(h);
    FrameSlot* s = sec.as<FrameSlot>();
    if (s->produced == s->consumed + 1) {  // one new frame
      s->fnv = fnv_fold(s->fnv, s->payload, s->len);
      s->consumed = s->produced;
      seen = s->consumed;
    }
  }
}

FrameSlot snapshot(const rt::Location& loc) {
  FrameSlot s;
  std::memcpy(&s, loc.data(), sizeof s);
  return s;
}

void init_slot(rt::Location& loc) {
  loc.scale(sizeof(FrameSlot));
  FrameSlot init{};
  init.fnv = 14695981039346656037ull;
  std::memcpy(loc.data(), &init, sizeof init);
}

FrameSlot run_intra() {
  rt::Location loc{0, 0, 0};
  init_slot(loc);
  std::thread producer([&] { produce(loc); });
  consume(loc);
  producer.join();
  return snapshot(loc);
}

FrameSlot run_dist(dist::DistMode mode) {
  std::unique_ptr<dist::ServerTransport> transport;
  if (mode == dist::DistMode::Shm) {
    transport = std::make_unique<dist::ShmServerTransport>(
        "orwl-bp-" + std::to_string(getpid()), dist::dist_shm_slots_from_env());
  } else {
    transport = std::make_unique<dist::TcpServerTransport>(
        dist::dist_port_from_env());
  }
  const std::string url =
      (mode == dist::DistMode::Shm ? "orwl+shm://" : "orwl://") +
      transport->address() + "/frames";

  const pid_t pid = fork();
  if (pid == 0) {
    // Child: the producer, streaming frames through the wire.
    int rc = 0;
    try {
      auto client = dist::Client::connect(url);
      produce(client->attach("frames"));
      client->close();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[dist_bytes_pipeline] child: %s\n", e.what());
      rc = 1;
    }
    _exit(rc);
  }

  rt::Location loc{0, 0, 0};
  init_slot(loc);
  dist::Registry reg;
  reg.export_location("frames", &loc);
  reg.serve(std::move(transport));
  consume(loc);  // home: the consumer, on the location directly

  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "[dist_bytes_pipeline] child failed\n");
    std::exit(1);
  }
  reg.stop();
  return snapshot(loc);
}

int check(const char* what, const FrameSlot& got, const FrameSlot& want) {
  const bool ok = std::memcmp(&got, &want, sizeof got) == 0;
  std::printf("[dist_bytes_pipeline] %-5s frames=%" PRIu64
              " fnv=0x%016" PRIx64 " %s\n",
              what, got.consumed, got.fnv, ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  const dist::DistMode mode = dist::dist_mode_from_env();
  const FrameSlot want = run_intra();
  std::printf("[dist_bytes_pipeline] intra frames=%" PRIu64
              " fnv=0x%016" PRIx64 "\n",
              want.consumed, want.fnv);
  int rc = 0;
  if (mode == dist::DistMode::Off || mode == dist::DistMode::Shm) {
    rc |= check("shm", run_dist(dist::DistMode::Shm), want);
  }
  if (mode == dist::DistMode::Off || mode == dist::DistMode::Tcp) {
    rc |= check("tcp", run_dist(dist::DistMode::Tcp), want);
  }
  return rc;
}
