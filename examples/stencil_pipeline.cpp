// Domain example: the Livermore Kernel 23 stencil on the ORWL runtime.
//
// Demonstrates the paper's central promise: the application code is
// identical with and without the affinity module — only ORWL_AFFINITY
// (or the explicit option used here) changes, and the result is
// bit-identical to the sequential sweep.
//
// Usage: ./stencil_pipeline [n] [iters] [blocks_y] [blocks_x]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/lk23.hpp"

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orwl;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1026;
  const std::size_t iters =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const std::size_t by = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 3;
  const std::size_t bx = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 3;

  std::printf("LK23: %zux%zu doubles, %zu iterations, %zux%zu blocks "
              "(%zu ORWL tasks)\n\n", n, n, iters, by, bx, by * bx);

  auto reference = apps::Lk23Problem::generate(n);
  double t0 = now();
  apps::lk23_sequential(reference, iters);
  std::printf("sequential          : %.3f s\n", now() - t0);

  for (const bool affinity : {false, true}) {
    auto problem = apps::Lk23Problem::generate(n);
    rt::ProgramOptions opts;
    opts.affinity = affinity ? rt::AffinityMode::On : rt::AffinityMode::Off;
    t0 = now();
    apps::lk23_orwl(problem, iters, by, bx, opts);
    const double secs = now() - t0;
    const bool identical = problem.za == reference.za;
    std::printf("ORWL %-15s: %.3f s  (result %s sequential)\n",
                affinity ? "(affinity on)" : "(affinity off)", secs,
                identical ? "bit-identical to" : "DIFFERS from");
    if (!identical) return 1;
  }
  std::puts("\nsame code, same results - only the placement changed.");
  return 0;
}
