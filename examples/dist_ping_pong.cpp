// Two-process ping-pong over a distributed ORWL location.
//
// A 16-byte cell (a turn counter plus a running FNV-1a digest folded
// in-place by every increment) is exported by the home process; a forked
// child attaches to it as a dist::RemoteLocation. Both sides run the
// SAME play() function — it takes an rt::Location&, so the identical
// guard code drives a local location in the intra-process baseline and a
// remote mirror over the wire. Strict parity turn-taking makes the
// global write order deterministic, so the final cell must be
// bit-identical across all three runs:
//
//   intra-process baseline  ==  shm transport  ==  tcp loopback
//
//   ./dist_ping_pong            # runs baseline + shm + tcp
//   ORWL_DIST=shm ./dist_ping_pong
//   ORWL_DIST=tcp ./dist_ping_pong
//
// Exits non-zero on any mismatch (the CI dist-smoke leg runs this under
// ASan over both transports).
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/registry.hpp"
#include "dist/remote.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport.hpp"
#include "runtime/handle.hpp"
#include "runtime/location.hpp"

namespace {

using namespace orwl;

constexpr int kRoundsPerSide = 64;

struct Cell {
  std::uint64_t count;
  std::uint64_t fnv;
};

std::uint64_t fnv_fold(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// One player: increment the cell on this side's parity turns. Works
/// unchanged against a local location or a RemoteLocation — that is the
/// point of the example.
void play(rt::Location& cell, unsigned me) {
  for (int done = 0; done < kRoundsPerSide;) {
    rt::Handle h;
    h.insert_standalone(cell, rt::AccessMode::Write);
    rt::Section sec(h);
    Cell* c = sec.as<Cell>();
    if (c->count % 2 == me) {
      ++c->count;
      c->fnv = fnv_fold(fnv_fold(c->fnv, me), c->count);
      ++done;
    }
    // Not our turn: the release at scope exit hands the grant onward.
  }
}

Cell fresh_cell_location(rt::Location& loc) {
  loc.scale(sizeof(Cell));
  Cell init{0, 14695981039346656037ull};
  std::memcpy(loc.data(), &init, sizeof init);
  return init;
}

/// Baseline: both players in one process on a plain location.
Cell run_intra() {
  rt::Location loc{0, 0, 0};
  fresh_cell_location(loc);
  std::thread even([&] { play(loc, 0); });
  std::thread odd([&] { play(loc, 1); });
  even.join();
  odd.join();
  Cell out;
  std::memcpy(&out, loc.data(), sizeof out);
  return out;
}

/// Two processes: home exports the cell, the forked child attaches.
Cell run_dist(dist::DistMode mode) {
  // Build the transport before forking so both sides know the address
  // (the ephemeral tcp port is only assigned at bind time).
  std::unique_ptr<dist::ServerTransport> transport;
  if (mode == dist::DistMode::Shm) {
    transport = std::make_unique<dist::ShmServerTransport>(
        "orwl-pp-" + std::to_string(getpid()), dist::dist_shm_slots_from_env());
  } else {
    transport = std::make_unique<dist::TcpServerTransport>(
        dist::dist_port_from_env());
  }
  const std::string url =
      (mode == dist::DistMode::Shm ? "orwl+shm://" : "orwl://") +
      transport->address() + "/cell";

  const pid_t pid = fork();
  if (pid == 0) {
    // Child: the odd player, purely through the wire.
    int rc = 0;
    try {
      auto client = dist::Client::connect(url);
      play(client->attach("cell"), 1);
      client->close();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[dist_ping_pong] child: %s\n", e.what());
      rc = 1;
    }
    _exit(rc);
  }

  rt::Location loc{0, 0, 0};
  fresh_cell_location(loc);
  dist::Registry reg;
  reg.export_location("cell", &loc);
  reg.serve(std::move(transport));
  play(loc, 0);  // home: the even player, on the location directly

  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "[dist_ping_pong] child failed\n");
    std::exit(1);
  }
  reg.stop();
  Cell out;
  std::memcpy(&out, loc.data(), sizeof out);
  return out;
}

int check(const char* what, const Cell& got, const Cell& want) {
  const bool ok = std::memcmp(&got, &want, sizeof got) == 0;
  std::printf("[dist_ping_pong] %-5s count=%" PRIu64 " fnv=0x%016" PRIx64
              " %s\n",
              what, got.count, got.fnv, ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  const dist::DistMode mode = dist::dist_mode_from_env();
  const Cell want = run_intra();
  std::printf("[dist_ping_pong] intra count=%" PRIu64 " fnv=0x%016" PRIx64
              "\n",
              want.count, want.fnv);
  int rc = 0;
  if (mode == dist::DistMode::Off || mode == dist::DistMode::Shm) {
    rc |= check("shm", run_dist(dist::DistMode::Shm), want);
  }
  if (mode == dist::DistMode::Off || mode == dist::DistMode::Tcp) {
    rc |= check("tcp", run_dist(dist::DistMode::Tcp), want);
  }
  return rc;
}
