// Domain example: block-cyclic matrix multiplication (Sec. V-B).
//
// Shows the ring-circulation decomposition, verifies the parallel result
// against the sequential kernel, and reports effective GFLOP/s for the
// unplaced and placed executions.
//
// Usage: ./matmul_ring [n] [tasks]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/matmul.hpp"

int main(int argc, char** argv) {
  using namespace orwl;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  const std::size_t tasks =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  if (n % tasks != 0) {
    std::fprintf(stderr, "n (%zu) must be a multiple of tasks (%zu)\n", n,
                 tasks);
    return 1;
  }
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  std::printf("C = A*B with %zux%zu doubles, %zu ring tasks\n\n", n, n,
              tasks);

  auto reference = apps::MatmulProblem::generate(n);
  auto t0 = std::chrono::steady_clock::now();
  apps::matmul_sequential(reference);
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("sequential      : %.3f s (%.1f GF/s)\n", secs,
              flops / secs / 1e9);

  for (const bool affinity : {false, true}) {
    auto problem = apps::MatmulProblem::generate(n);
    rt::ProgramOptions opts;
    opts.affinity = affinity ? rt::AffinityMode::On : rt::AffinityMode::Off;
    t0 = std::chrono::steady_clock::now();
    apps::matmul_orwl(problem, tasks, opts);
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
    double max_err = 0;
    for (std::size_t i = 0; i < problem.c.size(); ++i) {
      max_err = std::max(max_err,
                         std::fabs(problem.c[i] - reference.c[i]));
    }
    std::printf("ORWL %-11s: %.3f s (%.1f GF/s), max |err| = %.2e\n",
                affinity ? "affinity on" : "affinity off", secs,
                flops / secs / 1e9, max_err);
    if (max_err > 1e-9) return 1;
  }
  return 0;
}
