// Domain example: the video-tracking data-flow application (Sec. V-C).
//
// Runs the 30-task pipeline (producer -> 16 GMM splits -> gmm -> erode ->
// dilate chain -> 4 CCL splits -> ccl -> tracking -> consumer) on the
// host, prints per-frame detections and final tracks, and shows the
// communication matrix the affinity module extracts (the paper's Fig. 1).
//
// Usage: ./video_pipeline [width] [height] [frames]
#include <cstdio>
#include <cstdlib>

#include "apps/video.hpp"

int main(int argc, char** argv) {
  using namespace orwl;

  apps::VideoParams params;
  params.width = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 320;
  params.height = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 180;
  params.frames = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 48;
  params.gmm_splits = 8;   // scaled-down splits for laptop-class hosts
  params.ccl_splits = 4;
  params.objects = 3;

  std::printf("video tracking: %zux%zu, %zu frames, %zu tasks\n\n",
              params.width, params.height, params.frames,
              params.num_tasks());

  rt::ProgramOptions opts;  // affinity follows ORWL_AFFINITY
  const apps::VideoResult result = apps::video_orwl(params, opts);

  std::printf("processed %zu frames in %.3f s -> %.1f FPS\n", result.frames,
              result.seconds, result.fps());
  std::printf("detections: %zu total; tracks: %zu live, %zu created\n",
              result.total_detections, result.final_track_count,
              result.total_tracks_created);
  std::printf("per-frame detections:");
  for (std::size_t f = 0; f < result.detections_per_frame.size(); ++f) {
    if (f % 16 == 0) std::printf("\n  ");
    std::printf("%d ", result.detections_per_frame[f]);
  }
  std::puts("\n");

  std::puts("communication matrix of the task graph (Fig. 1 style):");
  const tm::CommMatrix m = apps::video_comm_matrix(params);
  std::printf("%s", aff::render_comm_matrix(m).c_str());
  return 0;
}
