// Topology explorer: inspect the host machine (or the paper's modeled
// testbeds) and try placement strategies on a synthetic workload.
//
// Usage:
//   ./topology_explorer              # detected host
//   ./topology_explorer smp12e5     # the paper's hyperthreaded testbed
//   ./topology_explorer smp20e7
//   ./topology_explorer fig2
#include <cstdio>
#include <cstring>
#include <iostream>

#include "orwl/orwl.hpp"

int main(int argc, char** argv) {
  using namespace orwl;

  topo::Topology machine;
  const char* which = argc > 1 ? argv[1] : "host";
  if (support::iequals(which, "smp12e5")) {
    machine = topo::make_smp12e5();
  } else if (support::iequals(which, "smp20e7")) {
    machine = topo::make_smp20e7();
  } else if (support::iequals(which, "fig2")) {
    machine = topo::make_fig2_machine();
  } else {
    machine = topo::detect_host();
  }

  std::cout << machine.summary() << "\n\n" << machine.render() << '\n';
  std::printf("hyperthreads: %s, symmetric: %s, depth: %d\n\n",
              machine.has_hyperthreads() ? "yes" : "no",
              machine.is_symmetric() ? "yes" : "no", machine.depth());

  // Place a communication ring of half the cores with every strategy and
  // compare the modeled costs.
  const std::size_t n = std::max<std::size_t>(2, machine.num_cores() / 2);
  tm::CommMatrix ring(n);
  for (std::size_t i = 0; i < n; ++i) ring.add(i, (i + 1) % n, 1 << 20);

  std::printf("placing a %zu-thread communication ring:\n", n);
  for (tm::Strategy s :
       {tm::Strategy::Compact, tm::Strategy::CompactCores,
        tm::Strategy::Scatter, tm::Strategy::ScatterCores,
        tm::Strategy::TreeMatch}) {
    if (!machine.is_symmetric() && s == tm::Strategy::TreeMatch) {
      std::puts("  treematch       : skipped (asymmetric host topology)");
      continue;
    }
    const tm::Placement p = tm::place_strategy(s, machine, n, &ring);
    std::printf("  %-16s: modeled cost %.3g\n", to_string(s),
                tm::modeled_cost(machine, ring, p));
  }

  // Round-trip through the serialization format (hwloc XML analog) to
  // show descriptions can be saved and reloaded losslessly.
  const std::string text = topo::serialize(machine);
  const topo::Topology reparsed = topo::parse_topology(text);
  std::printf("\nserialization round-trip: %zu bytes, %s\n", text.size(),
              topo::serialize(reparsed) == text ? "lossless" : "LOSSY?!");
  return 0;
}
