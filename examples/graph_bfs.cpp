// Dynamic work on the steal executor: BFS and PageRank over a grid.
//
// The static ORWL task model pins one thread per task — fine for
// regular exchanges, wasteful for a graph frontier that lives entirely
// inside one task's block while the others idle. Task::for_each hands
// the frontier to ALL tasks at once: the items (and everything their
// bodies push) are executed under the topology-aware work-stealing
// executor, so a hot deque spills to its hyperthread sibling first,
// then same-node PUs, then remote nodes, and the call returns on every
// task only when hierarchical termination detection proves the whole
// frontier is drained.
//
// Both kernels are deterministic by construction (CAS-min fixed point /
// pull-based fixed-order sums), so the steal schedule cannot change the
// answer — compare:
//
//   ORWL_STEAL=off  ./graph_bfs     # static split: no stealing
//   ORWL_STEAL=node ./graph_bfs    # same-NUMA-node victims only
//   ./graph_bfs                     # full locality order (default all)
//
// ORWL_STEAL_SPIN=N tunes how many fruitless victim sweeps a worker
// spins before parking on a futex.
#include <cstdio>
#include <cstdlib>

#include "apps/graph.hpp"

int main(int argc, char** argv) {
  using namespace orwl;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t tasks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const apps::GridGraph g = apps::GridGraph::make(n);
  std::printf("grid %zux%zu (%zu vertices), %zu tasks, ORWL_STEAL=%s\n", n,
              n, g.num_vertices(), tasks,
              rt::to_string(rt::resolve_steal_mode(rt::StealMode::FromEnv)));

  // BFS from the top-left corner: the frontier is seeded by task 0
  // alone — the executor spreads it.
  const auto dist = apps::bfs_orwl(g, /*source=*/0, tasks);
  const auto reference = apps::bfs_sequential(g, 0);
  const std::uint32_t far = dist[g.num_vertices() - 1];
  std::printf("bfs: dist(corner) = %u (expected %zu) — %s\n", far,
              2 * (n - 1),
              dist == reference ? "matches sequential" : "MISMATCH");

  // Five PageRank sweeps; every task seeds its own chunk share and the
  // executor balances the sweep. Bit-identical to the sequential loop.
  const auto rank = apps::pagerank_orwl(g, /*iters=*/5, tasks);
  const auto rank_ref = apps::pagerank_sequential(g, 5);
  double mass = 0.0;
  for (const double r : rank) mass += r;
  std::printf("pagerank: total mass = %.6f — %s\n", mass,
              rank == rank_ref ? "bit-identical to sequential"
                               : "MISMATCH");
  return dist == reference && rank == rank_ref ? 0 : 1;
}
