// Untyped FIFO channels: a two-stage byte pipeline over fifo_out_bytes.
//
// A source task serializes variable-layout "packets" (a small header and
// a payload the consumer parses from the header) into an untyped channel
// of fixed-size frames; a sink task parses and checksums them. Nothing
// about the wire format is visible to the runtime — the channel moves
// `kFrameBytes` raw bytes per item ("orwl_fifo ... store a new version of
// output data intermediately", Sec. V-C), and both endpoints use the
// T = void byte view.
//
// The frame ring's bookkeeping, like all runtime-internal allocations,
// comes from the owning shard's NUMA-bound arena; run with
//
//   ./fifo_bytes_pipeline
//
// and the tail of the output shows the arena / futex counters the
// runtime kept while the pipeline ran (ORWL_ARENA=off ORWL_FUTEX=0
// switches back to the plain heap + condvar legacy paths).
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "orwl/orwl.hpp"

namespace {

constexpr std::size_t kFrames = 64;       // items pushed end to end
constexpr std::size_t kFrameBytes = 256;  // fixed wire size per item
constexpr std::size_t kDepth = 4;         // producer runs depth-1 ahead

// The application-level wire format — the runtime never sees it.
struct FrameHeader {
  std::uint32_t seq;
  std::uint32_t payload_bytes;
};

}  // namespace

int main() {
  using namespace orwl;

  ProgramBuilder builder(2);

  builder.task(0)
      .fifo_out_bytes("frames", kFrameBytes, kDepth)
      .body([](Task& task) {
        FifoOut<> out = task.fifo_out<>("frames");
        for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
          std::span<std::byte> frame = out.begin_push();
          FrameHeader h{seq, static_cast<std::uint32_t>(
                                 (seq * 13) % (kFrameBytes - sizeof(h)))};
          std::memcpy(frame.data(), &h, sizeof(h));
          for (std::uint32_t j = 0; j < h.payload_bytes; ++j) {
            frame[sizeof(h) + j] = static_cast<std::byte>((seq + j) & 0xFF);
          }
          out.end_push();
        }
      });

  builder.task(1).fifo_in<>("frames").body([](Task& task) {
    FifoIn<> in = task.fifo_in<>("frames");
    std::uint64_t checksum = 0;
    std::size_t parsed = 0;
    for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
      std::span<const std::byte> frame = in.begin_pop();
      FrameHeader h;
      std::memcpy(&h, frame.data(), sizeof(h));
      if (h.seq != seq) {
        std::fprintf(stderr, "frame %u arrived out of order (got %u)\n",
                     seq, h.seq);
        in.end_pop();
        continue;
      }
      for (std::uint32_t j = 0; j < h.payload_bytes; ++j) {
        checksum += static_cast<std::uint64_t>(frame[sizeof(h) + j]);
      }
      ++parsed;
      in.end_pop();
    }
    std::printf("sink: parsed %zu/%zu frames, payload checksum %llu\n",
                parsed, kFrames,
                static_cast<unsigned long long>(checksum));
  });

  Program program = builder.build();
  program.run();

  const auto& st = program.stats();
  std::printf("\nruntime memory / parking counters:\n");
  std::printf("  arena_bytes       = %llu\n",
              static_cast<unsigned long long>(st.arena_bytes));
  std::printf("  arena_refills     = %llu\n",
              static_cast<unsigned long long>(st.arena_refills));
  std::printf("  arena_node_misses = %llu\n",
              static_cast<unsigned long long>(st.arena_node_misses));
  std::printf("  futex_waits       = %llu\n",
              static_cast<unsigned long long>(st.futex_waits));
  std::printf("  futex_wakes       = %llu\n",
              static_cast<unsigned long long>(st.futex_wakes));
  return 0;
}
