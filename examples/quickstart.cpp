// Quickstart: the paper's Listing 1 — a pipeline of tasks.
//
// Each task owns one location ("here"); task k > 0 additionally reads its
// predecessor's location ("there") and averages the two values. Run with
//
//   ORWL_AFFINITY=1 ./quickstart
//
// to let the affinity module place the chain automatically (the program
// prints the extracted communication matrix and the computed placement).
#include <cstdio>

#include "affinity/report.hpp"
#include "runtime/handle.hpp"
#include "runtime/program.hpp"

int main() {
  using namespace orwl;
  constexpr std::size_t kTasks = 8;

  // orwl_init: create the program with one location per task.
  rt::Program program(kTasks);

  program.set_task_body([](rt::TaskContext& ctx) {
    const rt::TaskId me = ctx.id();  // orwl_mytid

    // Scale our own location(s) to the appropriate size.
    ctx.scale(sizeof(double));

    // Create handles for the locations that we are interested in. We
    // will create a chain of dependencies from task 0 to task 1 etc.
    rt::Handle here;
    rt::Handle there;

    // Have our own location writable.
    here.write_insert(ctx, ctx.my_location(), me);

    // Link the "there" handle where appropriate.
    if (me > 0) {
      there.read_insert(ctx, ctx.location(me - 1), me);
    }

    // Now synchronize and coordinate requests of all tasks. When
    // ORWL_AFFINITY=1 this is also where the affinity module computes
    // and applies the thread placement.
    ctx.schedule();

    // All tasks create a critical section that guarantees exclusive
    // access to their location.
    rt::Section section(here);
    double* wval = section.as<double>();
    *wval = static_cast<double>(me + 1);  // init_val(orwl_mytid)

    // All ids > 0 read from their predecessor.
    if (me > 0) {
      rt::Section section2(there);  // blocks until the data is available
      const double* rval = section2.as_const<double>();
      *wval = (*rval + *wval) * 0.5;  // some dummy computation
    }
    std::printf("task %zu: value = %.6f\n", me, *wval);
  });

  program.run();

  // Inspect what the runtime knew at schedule() time.
  program.dependency_get();
  std::puts("\ncommunication matrix extracted from the task graph:");
  std::printf("%s", aff::render_comm_matrix(program.comm_matrix()).c_str());

  if (program.stats().affinity_applied) {
    std::puts("\naffinity module was ON; placement used:");
    std::printf("%s",
                program.placement().describe(program.topology()).c_str());
  } else {
    std::puts("\naffinity module was OFF (set ORWL_AFFINITY=1 to enable).");
  }
  return 0;
}
