// Quickstart: the paper's Listing 1 — a pipeline of tasks — on the v2
// declarative API.
//
// Each task owns one double-typed location; task k > 0 additionally
// reads its predecessor's location and averages the two values. The
// whole task-location graph is *declared* before anything runs, so the
// communication matrix and the placement are available up front — no
// dry-run pass, no thread spawned. Run with
//
//   ORWL_AFFINITY=1 ./quickstart
//
// to let the affinity module place the chain automatically.
#include <cstdio>

#include "orwl/orwl.hpp"

int main() {
  using namespace orwl;
  constexpr std::size_t kTasks = 8;

  // Declare the graph: who owns what, who reads/writes whom. This is
  // the init phase of Listing 1, stated instead of executed.
  ProgramBuilder builder(kTasks);
  for (TaskId t = 0; t < kTasks; ++t) {
    TaskSpec& spec = builder.task(t);
    spec.owns<double>();                          // orwl_scale, typed
    spec.writes<double>(loc(t), t);               // my own location
    if (t > 0) spec.reads<double>(loc(t - 1), t);  // my predecessor's
  }

  // The compute phase: bodies start after the schedule barrier with
  // their declared links ready. Guards are phase-safe — a WriteGuard on
  // a read link would not compile.
  builder.body([](Task& task) {
    const TaskId me = task.id();

    // Exclusive access to my own location: typed, no casts.
    WriteGuard<double> w(task.write_link<double>(loc(me)));
    w.ref() = static_cast<double>(me + 1);  // init_val(orwl_mytid)

    // All ids > 0 read from their predecessor.
    if (me > 0) {
      ReadGuard<double> r(task.read_link<double>(loc(me - 1)));
      w.ref() = (r.ref() + w.ref()) * 0.5;  // some dummy computation
    }
    std::printf("task %zu: value = %.6f\n", me, w.ref());
  });

  Program program = builder.build();

  // The declared graph is live before run(): extract the matrix and the
  // placement the affinity module would use — nothing has executed yet.
  program.dependency_get();
  std::puts("communication matrix extracted from the declared graph"
            " (pre-run, no dry-run pass):");
  std::printf("%s", aff::render_comm_matrix(program.comm_matrix()).c_str());

  program.run();

  if (program.stats().affinity_applied) {
    std::puts("\naffinity module was ON; placement used:");
    std::printf("%s",
                program.placement().describe(program.topology()).c_str());
  } else {
    std::puts("\naffinity module was OFF (set ORWL_AFFINITY=1 to enable).");
  }
  return 0;
}
