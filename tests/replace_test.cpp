// Measurement-driven online re-placement (ORWL_REPLACE): the grant-time
// hand-off meter, the decaying measured matrix, the divergence trigger
// at run_iterations boundaries, passive vs auto policies, the version
// stamp that deduplicates Algorithm 1 runs, and the unsized-buffer skip
// in placement-time memory binding.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "orwl/orwl.hpp"
#include "runtime/comm_meter.hpp"
#include "runtime/steal_executor.hpp"
#include "support/env.hpp"
#include "topo/machines.hpp"
#include "topo/membind.hpp"

namespace {

using namespace orwl;

rt::ProgramOptions fixture_opts(const topo::Topology& machine) {
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::On;
  o.bind_threads = false;  // fixture machines are larger than the host
  o.acquire_timeout_ms = 30000;
  return o;
}

// ------------------------------------------------- policy resolution ----

TEST(ReplaceMode, ToString) {
  EXPECT_STREQ(to_string(rt::ReplaceMode::Off), "off");
  EXPECT_STREQ(to_string(rt::ReplaceMode::Passive), "passive");
  EXPECT_STREQ(to_string(rt::ReplaceMode::Auto), "auto");
}

TEST(ReplaceMode, ResolvedFromOptionsAndEnv) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;

  {
    support::ScopedEnv env(rt::kReplaceEnvVar, nullptr);
    EXPECT_EQ(rt::Program(2, o).replace_mode(), rt::ReplaceMode::Off)
        << "unset env must yield the zero-overhead default";
  }
  {
    support::ScopedEnv env(rt::kReplaceEnvVar, "passive");
    EXPECT_EQ(rt::Program(2, o).replace_mode(), rt::ReplaceMode::Passive);
  }
  {
    support::ScopedEnv env(rt::kReplaceEnvVar, "AUTO");
    EXPECT_EQ(rt::Program(2, o).replace_mode(), rt::ReplaceMode::Auto);
  }
  {
    // A typo'd mode must fail loudly, naming the variable.
    support::ScopedEnv env(rt::kReplaceEnvVar, "bogus");
    EXPECT_THROW(rt::Program(2, o), std::invalid_argument);
  }
  {
    // Explicit options beat the environment.
    support::ScopedEnv env(rt::kReplaceEnvVar, "auto");
    rt::ProgramOptions explicit_off = o;
    explicit_off.replace = rt::ReplaceMode::Off;
    EXPECT_EQ(rt::Program(2, explicit_off).replace_mode(),
              rt::ReplaceMode::Off);
  }
}

TEST(ReplaceMode, KnobsResolvedFromOptionsAndEnv) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;

  {
    support::ScopedEnv t(rt::kReplaceThresholdEnvVar, nullptr);
    support::ScopedEnv d(rt::kReplaceDecayEnvVar, nullptr);
    support::ScopedEnv i(rt::kReplaceIntervalEnvVar, nullptr);
    rt::Program p(2, o);
    EXPECT_DOUBLE_EQ(p.replace_threshold(), 0.25);
    EXPECT_DOUBLE_EQ(p.replace_decay(), 0.5);
    EXPECT_EQ(p.replace_interval(), 16u);
  }
  {
    support::ScopedEnv t(rt::kReplaceThresholdEnvVar, "0.4");
    support::ScopedEnv d(rt::kReplaceDecayEnvVar, "0.9");
    support::ScopedEnv i(rt::kReplaceIntervalEnvVar, "3");
    rt::Program p(2, o);
    EXPECT_DOUBLE_EQ(p.replace_threshold(), 0.4);
    EXPECT_DOUBLE_EQ(p.replace_decay(), 0.9);
    EXPECT_EQ(p.replace_interval(), 3u);
  }
  {
    // Options beat env; decay clamps into [0, 1].
    support::ScopedEnv t(rt::kReplaceThresholdEnvVar, "0.4");
    rt::ProgramOptions o2 = o;
    o2.replace_threshold = 0.1;
    o2.replace_decay = 7.0;
    o2.replace_interval = 5;
    rt::Program p(2, o2);
    EXPECT_DOUBLE_EQ(p.replace_threshold(), 0.1);
    EXPECT_DOUBLE_EQ(p.replace_decay(), 1.0);
    EXPECT_EQ(p.replace_interval(), 5u);
  }
}

TEST(ReplaceMode, MeterExistsExactlyWhenMeasuring) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;
  o.replace = rt::ReplaceMode::Off;
  EXPECT_EQ(rt::Program(2, o).comm_meter(), nullptr);
  o.replace = rt::ReplaceMode::Passive;
  EXPECT_NE(rt::Program(2, o).comm_meter(), nullptr);
  o.replace = rt::ReplaceMode::Auto;
  EXPECT_NE(rt::Program(2, o).comm_meter(), nullptr);
}

// ----------------------------------------------------- CommMeter unit ----

TEST(CommMeter, AccumulatesPairsAcrossShardsAndSkipsJunk) {
  rt::CommMeter meter(2, 4);
  meter.record(0, 0, 1, 100, /*remote=*/false);
  meter.record(1, 1, 0, 50, /*remote=*/true);   // other direction, other shard
  meter.record(0, 2, 2, 10, false);             // self hand-off: dropped
  meter.record(0, 9, 1, 10, false);             // out of range: dropped
  meter.record(7, 2, 3, 30, true);              // bad shard clamps to 0

  EXPECT_EQ(meter.handoffs(), 3u);
  EXPECT_EQ(meter.remote_handoffs(), 2u);

  tm::CommMatrix m(4);
  const double drained = meter.harvest(m, /*decay=*/0.5);
  EXPECT_DOUBLE_EQ(drained, 180.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 150.0) << "both directions fold symmetric";
  EXPECT_DOUBLE_EQ(m.at(2, 3), 30.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);

  // The harvest drained the cells: a second one only decays.
  EXPECT_DOUBLE_EQ(meter.harvest(m, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 75.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 15.0);

  // New records accumulate onto the decayed average.
  meter.record(1, 0, 1, 25, false);
  EXPECT_DOUBLE_EQ(meter.harvest(m, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.5 * 75.0 + 25.0);
}

TEST(CommMeter, ZeroByteHandoffsStillCount) {
  // Pure-synchronization locations have size 0; the meter clamps to one
  // byte so the hand-off is not invisible to the divergence metric.
  rt::CommMeter meter(1, 2);
  meter.record(0, 0, 1, 0, false);
  tm::CommMatrix m(2);
  EXPECT_DOUBLE_EQ(meter.harvest(m, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
}

// Cross-node steals are hand-offs too: the executor charges each
// successful steal to the meter as (victim task -> thief task), so a
// for_each whose items keep draining across NUMA nodes skews the
// measured matrix and can trip the ORWL_REPLACE divergence trigger.
TEST(CommMeter, CrossNodeStealsFeedTheMeasuredMatrix) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);  // PUs 0,1 | 2,3
  rt::CommMeter meter(2, 2);
  rt::StealExecutor::Config cfg;
  cfg.mode = rt::StealMode::All;
  std::vector<rt::StealExecutor::WorkerSpec> specs(2);
  specs[0].pu = 0;  // node 0
  specs[1].pu = 2;  // node 1
  rt::StealExecutor ex(machine, std::move(specs), cfg);
  ex.set_meter(&meter, 2);

  constexpr std::uint64_t kItems = 64;
  for (std::uint64_t i = 0; i < kItems; ++i) ex.seed(0, i);
  const rt::StealExecutor::ItemFn fn =
      [](std::uint64_t, rt::StealExecutor::WorkerContext&) {};
  // Worker 1 runs alone first: with the owner not yet popping, the only
  // way it can execute anything is stealing from worker 0's deque across
  // the node boundary — every item becomes one remote hand-off.
  std::thread thief([&] { ex.run_worker(1, fn); });
  thief.join();
  ex.run_worker(0, fn);

  const rt::StealExecutor::Stats s = ex.stats();
  EXPECT_EQ(s.executed, kItems);
  EXPECT_EQ(s.remote_steals, kItems);
  EXPECT_EQ(s.local_steals, 0u);
  EXPECT_EQ(meter.handoffs(), kItems);
  EXPECT_EQ(meter.remote_handoffs(), kItems);

  tm::CommMatrix m(2);
  const double drained = meter.harvest(m, 1.0);
  const double expected =
      static_cast<double>(kItems * rt::StealExecutor::kStealBytes);
  EXPECT_DOUBLE_EQ(drained, expected);
  EXPECT_DOUBLE_EQ(m.at(0, 1), expected);
}

// A null meter (replace policy Off) keeps the steal hot path untouched.
TEST(CommMeter, DetachedMeterRecordsNothing) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::CommMeter meter(1, 2);
  rt::StealExecutor::Config cfg;
  cfg.mode = rt::StealMode::All;
  std::vector<rt::StealExecutor::WorkerSpec> specs(2);
  specs[0].pu = 0;
  specs[1].pu = 2;
  rt::StealExecutor ex(machine, std::move(specs), cfg);
  ex.set_meter(&meter, 2);
  ex.set_meter(nullptr, 0);  // detach again

  for (std::uint64_t i = 0; i < 16; ++i) ex.seed(0, i);
  const rt::StealExecutor::ItemFn fn =
      [](std::uint64_t, rt::StealExecutor::WorkerContext&) {};
  std::thread thief([&] { ex.run_worker(1, fn); });
  thief.join();
  ex.run_worker(0, fn);
  EXPECT_EQ(meter.handoffs(), 0u);
}

// --------------------------------------------- normalized_distance ------

TEST(NormalizedDistance, BasicProperties) {
  tm::CommMatrix a(3), b(3);
  a.set(0, 1, 10.0);
  b.set(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(a, b), 0.0);

  // Scale invariance: the metric compares shapes, not magnitudes.
  tm::CommMatrix b10(3);
  b10.set(0, 1, 100.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(a, b10), 0.0);

  // Disjoint supports are maximally distant.
  tm::CommMatrix c(3);
  c.set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(a, c), 1.0);

  // Empty vs empty agree; empty vs anything else maximally disagree.
  tm::CommMatrix z1(3), z2(3);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(z1, z2), 0.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(z1, a), 1.0);

  // Different orders zero-pad.
  tm::CommMatrix big(5);
  big.set(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(a, big), 0.0);

  // A half-moved mass is half-distant.
  tm::CommMatrix half(3);
  half.set(0, 1, 5.0);
  half.set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(tm::normalized_distance(a, half), 0.5);
}

// ------------------------------------------------ end-to-end feedback ----

/// Four imperative tasks, two shared locations: pair (0,1) exchanges its
/// location `hot_exchanges` times per iteration, pair (2,3) once. The
/// declared graph weighs both pairs equally, so the measured traffic
/// diverges from the declaration once hot_exchanges > 1.
void run_skewed_pairs(rt::ProgramOptions opts, std::size_t iters,
                      std::size_t hot_exchanges, rt::ProgramStats* out) {
  Program prog(4, opts);
  for (TaskId t = 0; t < 4; ++t) {
    const bool hot = t < 2;
    const TaskId owner = hot ? 0 : 2;
    const std::size_t exchanges = hot ? hot_exchanges : 1;
    prog.set_task_body(t, [t, owner, exchanges, iters](Task& task) {
      task.my<double[]>(0).scale(64);
      WriteLink<double[]> w;
      ReadLink<double[]> r;
      if (t == owner) {
        w = task.write<double[]>(loc(owner, 0), 0);
      } else {
        r = task.read<double[]>(loc(owner, 0), 1);
      }
      task.schedule();
      task.run_iterations(iters, [&](std::size_t) {
        for (std::size_t e = 0; e < exchanges; ++e) {
          if (t == owner) {
            WriteGuard<double[]> sec(w);
            sec[0] += 1.0;
          } else {
            ReadGuard<double[]> sec(r);
            (void)sec[0];
          }
        }
      });
    });
  }
  prog.run();
  *out = prog.stats();
}

TEST(Replace, PassiveMeasuresAndTriggersButNeverMoves) {
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  rt::ProgramOptions o = fixture_opts(machine);
  o.replace = rt::ReplaceMode::Passive;
  o.replace_interval = 1;
  o.replace_threshold = 0.05;
  o.replace_decay = 0.5;

  rt::ProgramStats s;
  run_skewed_pairs(o, /*iters=*/32, /*hot_exchanges=*/8, &s);

  EXPECT_GT(s.measured_handoffs, 0u) << "the meter must observe hand-offs";
  EXPECT_GT(s.replace_checks, 0u) << "interval 1 must reach a check";
  EXPECT_GT(s.replace_triggers, 0u)
      << "8:1 skew against a 1:1 declaration must cross a 0.05 threshold";
  EXPECT_EQ(s.replacements, 0u) << "passive mode never moves anything";
}

TEST(Replace, MeasuredMatrixReflectsTheSkew) {
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  rt::ProgramOptions o = fixture_opts(machine);
  o.replace = rt::ReplaceMode::Passive;
  o.replace_interval = 1;
  // No decay: under load the hot pair can race through all its
  // iterations early, and every later harvest (driven by the lagging
  // cool pair's boundaries) would halve the hot traffic — with decay 1
  // the matrix accumulates and the 8:1 skew is scheduling-independent.
  o.replace_decay = 1.0;

  Program prog(4, o);
  for (TaskId t = 0; t < 4; ++t) {
    const bool hot = t < 2;
    const TaskId owner = hot ? 0 : 2;
    const std::size_t exchanges = hot ? 8 : 1;
    prog.set_task_body(t, [t, owner, exchanges](Task& task) {
      task.my<double[]>(0).scale(64);
      WriteLink<double[]> w;
      ReadLink<double[]> r;
      if (t == owner) {
        w = task.write<double[]>(loc(owner, 0), 0);
      } else {
        r = task.read<double[]>(loc(owner, 0), 1);
      }
      task.schedule();
      task.run_iterations(16, [&](std::size_t) {
        for (std::size_t e = 0; e < exchanges; ++e) {
          if (t == owner) {
            WriteGuard<double[]> sec(w);
            sec[0] += 1.0;
          } else {
            ReadGuard<double[]> sec(r);
            (void)sec[0];
          }
        }
      });
    });
  }
  prog.run();

  const tm::CommMatrix m = prog.measured_matrix();
  ASSERT_GE(m.order(), 4u);
  EXPECT_GT(m.at(0, 1), 0.0);
  EXPECT_GT(m.at(2, 3), 0.0);
  EXPECT_GT(m.at(0, 1), 2.0 * m.at(2, 3))
      << "the hot pair must dominate the measured matrix";
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0) << "pairs that never met stay empty";
}

TEST(Replace, AutoReplacesAndStateFollows) {
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  rt::ProgramOptions o = fixture_opts(machine);
  o.replace = rt::ReplaceMode::Auto;
  o.replace_interval = 1;
  o.replace_threshold = 0.05;

  Program prog(4, o);
  for (TaskId t = 0; t < 4; ++t) {
    const bool hot = t < 2;
    const TaskId owner = hot ? 0 : 2;
    const std::size_t exchanges = hot ? 8 : 1;
    prog.set_task_body(t, [t, owner, exchanges](Task& task) {
      task.my<double[]>(0).scale(64);
      WriteLink<double[]> w;
      ReadLink<double[]> r;
      if (t == owner) {
        w = task.write<double[]>(loc(owner, 0), 0);
      } else {
        r = task.read<double[]>(loc(owner, 0), 1);
      }
      task.schedule();
      task.run_iterations(32, [&](std::size_t) {
        for (std::size_t e = 0; e < exchanges; ++e) {
          if (t == owner) {
            WriteGuard<double[]> sec(w);
            sec[0] += 1.0;
          } else {
            ReadGuard<double[]> sec(r);
            (void)sec[0];
          }
        }
      });
    });
  }
  prog.run();

  const rt::ProgramStats& s = prog.stats();
  EXPECT_GT(s.replace_triggers, 0u);
  EXPECT_GT(s.replacements, 0u) << "auto mode must re-place on divergence";
  EXPECT_GT(s.placement_recomputes, 1u)
      << "a re-placement is an extra Algorithm 1 run";

  // The re-placed state is coherent: every placed task has a node, every
  // sized location lives on its owner's node (emulated residency), and
  // every queue routes to a real shard.
  rt::Program& p = prog.runtime();
  for (TaskId t = 0; t < 4; ++t) {
    const int node = p.placed_node_of_task(t);
    ASSERT_GE(node, 0) << "task " << t << " unplaced after re-placement";
    rt::Location& l = p.location(t, 0);
    EXPECT_EQ(l.home_node(), p.placed_node_of_task(l.owner()));
    EXPECT_EQ(l.memory_node(), l.home_node())
        << "emulated buffer must follow the home node";
    EXPECT_LT(l.queue().control_shard(), p.num_control_shards());
  }
}

TEST(Replace, ImpossibleThresholdNeverTriggers) {
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  rt::ProgramOptions o = fixture_opts(machine);
  o.replace = rt::ReplaceMode::Auto;
  o.replace_interval = 1;
  o.replace_threshold = 1.1;  // normalized distance is <= 1 by construction

  rt::ProgramStats s;
  run_skewed_pairs(o, /*iters=*/16, /*hot_exchanges=*/8, &s);

  EXPECT_GT(s.replace_checks, 0u);
  EXPECT_EQ(s.replace_triggers, 0u);
  EXPECT_EQ(s.replacements, 0u);
}

TEST(Replace, OffMeansNoMeterAndNoChecks) {
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  support::ScopedEnv env(rt::kReplaceEnvVar, nullptr);
  rt::ProgramOptions o = fixture_opts(machine);

  rt::ProgramStats s;
  run_skewed_pairs(o, /*iters=*/8, /*hot_exchanges=*/4, &s);

  EXPECT_EQ(s.measured_handoffs, 0u);
  EXPECT_EQ(s.replace_checks, 0u);
  EXPECT_EQ(s.replacements, 0u);
}

// ------------------------------------------------------ version stamp ----

TEST(VersionStamp, UnchangedGraphSkipsAlgorithmOne) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");

  ProgramBuilder builder(2, fixture_opts(machine));
  builder.task(0).owns<double>().writes<double>(loc(0, 0), 0).iterates(4);
  builder.task(1).reads<double>(loc(0, 0), 1).iterates(4);
  builder.task(0).body([](Task& task) {
    WriteLink<double> w = task.write_link<double>(loc(0, 0));
    task.run_iterations([&](std::size_t) { WriteGuard<double> s(w); });
  });
  builder.task(1).body([](Task& task) {
    ReadLink<double> r = task.read_link<double>(loc(0, 0));
    task.run_iterations([&](std::size_t) { ReadGuard<double> s(r); });
  });
  Program prog = builder.build();

  prog.dependency_get();
  prog.affinity_compute();
  EXPECT_EQ(prog.runtime().placement_recomputes(), 1u);

  // Same graph, same matrix: repeated computes are stamped away.
  prog.affinity_compute();
  prog.dependency_get();
  prog.affinity_compute();
  EXPECT_EQ(prog.runtime().placement_recomputes(), 1u)
      << "an unchanged graph must not re-run Algorithm 1";

  // The schedule barrier re-places only if the graph changed since the
  // pre-run compute — here it did not.
  prog.run();
  EXPECT_EQ(prog.stats().placement_recomputes, 1u);
}

TEST(VersionStamp, GraphVersionBumpsOnDeclaredInserts) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;
  o.locations_per_task = 1;
  rt::Program p(2, o);
  const std::uint64_t v0 = p.graph_version();
  rt::Handle2 h;
  p.declare_insert(1, p.location(0, 0), rt::AccessMode::Read, 1, h);
  EXPECT_GT(p.graph_version(), v0);
}

// ------------------------------------------------- unsized-buffer skip ----

TEST(BindLocationMemory, HintOnlyBuffersAreSkippedAndCounted) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  rt::ProgramOptions o = fixture_opts(machine);
  o.locations_per_task = 2;
  rt::Program p(2, o);

  p.location(0, 0).scale(256);
  p.location(0, 1).scale_hint(1 << 20);  // size known, no buffer
  rt::Handle2 h1, h2, h3;
  p.declare_insert(0, p.location(0, 0), rt::AccessMode::Write, 0, h1);
  p.declare_insert(1, p.location(0, 0), rt::AccessMode::Read, 1, h2);
  p.declare_insert(1, p.location(0, 1), rt::AccessMode::Read, 1, h3);

  p.dependency_get();
  p.affinity_compute();

  EXPECT_GE(p.stats().locations_bound, 1u);
  EXPECT_GE(p.stats().locations_skipped_unsized, 1u)
      << "the hint-only location must be skipped, not counted as bound";
  EXPECT_EQ(p.location(0, 1).memory_node(), -1)
      << "nothing was allocated, nothing may claim residency";
}

}  // namespace
