// Distributed ORWL: wire protocol round-trips and fuzzed decoding, shm
// ring wrap/doorbell behavior, registry + client end-to-end over both
// transports (in-process and across fork()), exact FIFO order across the
// wire, orphaned-client ticket reclamation, and the env/URL knobs.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dist/registry.hpp"
#include "dist/remote.hpp"
#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"
#include "dist/transport.hpp"
#include "dist/wire.hpp"
#include "orwl/orwl.hpp"
#include "runtime/handle.hpp"
#include "runtime/location.hpp"
#include "support/env.hpp"

// Two-process tests fork(); TSan does not support running threads across
// fork in the child, so those cases skip under it (the in-process
// transport pairs still give TSan the full protocol coverage, and the CI
// dist-smoke leg runs the fork path under ASan).
#if defined(__SANITIZE_THREAD__)
#define ORWL_DIST_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORWL_DIST_TEST_TSAN 1
#endif
#endif

namespace {

using namespace orwl;
namespace wire = dist::wire;

std::string unique_base(const char* tag) {
  static std::atomic<unsigned> counter{0};
  return std::string("orwl-test-") + tag + "-" + std::to_string(getpid()) +
         "-" + std::to_string(counter.fetch_add(1));
}

/// Spin (yielding) until `pred` holds, with a deadline so a protocol bug
/// fails the test instead of hanging it.
template <typename F>
[[nodiscard]] bool eventually(F&& pred, int seconds = 30) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// ------------------------------------------------------------- wire ----

wire::Frame sample_frame(wire::Type t, std::size_t payload_bytes) {
  wire::Frame f;
  f.type = t;
  f.flags = wire::kFlagReinsert;
  f.location = 0x0123456789abcdefull;
  f.ticket = 42;
  f.aux = 7;
  f.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    f.payload[i] = static_cast<std::byte>(i * 31 + 7);
  }
  return f;
}

TEST(Wire, EveryTypeRoundTrips) {
  for (const wire::Type t :
       {wire::Type::Hello, wire::Type::HelloAck, wire::Type::ReqRead,
        wire::Type::ReqWrite, wire::Type::Grant, wire::Type::Release,
        wire::Type::Data, wire::Type::Error, wire::Type::Bye}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{63}, std::size_t{4096}}) {
      const wire::Frame in = sample_frame(t, n);
      std::vector<std::byte> buf;
      wire::encode(in, buf);
      ASSERT_EQ(buf.size(), wire::encoded_size(in));
      wire::Frame out;
      const wire::DecodeResult r = wire::decode(buf.data(), buf.size(), out);
      ASSERT_EQ(r.status, wire::DecodeStatus::Ok) << wire::to_string(t);
      EXPECT_EQ(r.consumed, buf.size());
      EXPECT_EQ(out, in);
    }
  }
}

TEST(Wire, BackToBackFramesDecodeInOrder) {
  const wire::Frame a = sample_frame(wire::Type::Grant, 100);
  const wire::Frame b = sample_frame(wire::Type::Release, 0);
  std::vector<std::byte> buf;
  wire::encode(a, buf);
  wire::encode(b, buf);
  wire::Frame out;
  wire::DecodeResult r = wire::decode(buf.data(), buf.size(), out);
  ASSERT_EQ(r.status, wire::DecodeStatus::Ok);
  EXPECT_EQ(out, a);
  const std::size_t off = r.consumed;
  r = wire::decode(buf.data() + off, buf.size() - off, out);
  ASSERT_EQ(r.status, wire::DecodeStatus::Ok);
  EXPECT_EQ(out, b);
  EXPECT_EQ(off + r.consumed, buf.size());
}

TEST(Wire, EveryTruncationIsNeedMoreNeverBad) {
  // A streaming decoder sees every prefix of every frame; none of them
  // may be classified as corruption (that drops the peer).
  const wire::Frame f = sample_frame(wire::Type::Data, 257);
  std::vector<std::byte> buf;
  wire::encode(f, buf);
  wire::Frame out;
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const wire::DecodeResult r = wire::decode(buf.data(), len, out);
    ASSERT_EQ(r.status, wire::DecodeStatus::NeedMore) << "prefix " << len;
    ASSERT_EQ(r.consumed, 0u);
  }
}

TEST(Wire, CorruptHeadersAreBad) {
  const wire::Frame f = sample_frame(wire::Type::Hello, 4);
  std::vector<std::byte> good;
  wire::encode(f, good);
  wire::Frame out;

  auto expect_bad = [&](std::vector<std::byte> buf, const char* what) {
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), out).status,
              wire::DecodeStatus::Bad)
        << what;
  };

  std::vector<std::byte> bad_magic = good;
  bad_magic[0] = std::byte{'X'};
  expect_bad(bad_magic, "magic");

  std::vector<std::byte> bad_version = good;
  bad_version[4] = std::byte{99};
  expect_bad(bad_version, "version");

  std::vector<std::byte> bad_type = good;
  bad_type[5] = std::byte{0};  // 0 is not a Type
  expect_bad(bad_type, "type zero");
  bad_type[5] = std::byte{200};
  expect_bad(bad_type, "type unknown");

  std::vector<std::byte> bad_len = good;
  // payload_len lives in the last 4 header bytes (LE): set > kMaxPayload.
  const std::uint32_t huge = wire::kMaxPayload + 1;
  std::memcpy(bad_len.data() + wire::kHeaderBytes - 4, &huge, 4);
  expect_bad(bad_len, "oversized payload");
}

TEST(Wire, FuzzedGarbageNeverCrashesTheDecoder) {
  // Deterministic fuzz: random byte soup, random lengths — the decoder
  // must always answer Ok/NeedMore/Bad without reading out of bounds.
  std::mt19937 rng(0xD157);
  std::uniform_int_distribution<int> byte_d(0, 255);
  wire::Frame out;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> buf(rng() % 128);
    for (auto& b : buf) b = static_cast<std::byte>(byte_d(rng));
    // Half the rounds start with valid magic to reach deeper checks.
    if (round % 2 == 0 && buf.size() >= 4) {
      std::memcpy(buf.data(), wire::kMagic, 4);
    }
    const wire::DecodeResult r = wire::decode(buf.data(), buf.size(), out);
    if (r.status == wire::DecodeStatus::Ok) {
      EXPECT_LE(r.consumed, buf.size());
    } else {
      EXPECT_EQ(r.consumed, 0u);
    }
  }
}

// ----------------------------------------------------------- knobs ----

TEST(DistKnobs, ModeParsesStrictly) {
  {
    support::ScopedEnv e(dist::kDistEnvVar, nullptr);
    EXPECT_EQ(dist::dist_mode_from_env(), dist::DistMode::Off);
  }
  {
    support::ScopedEnv e(dist::kDistEnvVar, "shm");
    EXPECT_EQ(dist::dist_mode_from_env(), dist::DistMode::Shm);
  }
  {
    support::ScopedEnv e(dist::kDistEnvVar, "TCP");
    EXPECT_EQ(dist::dist_mode_from_env(), dist::DistMode::Tcp);
  }
  {
    support::ScopedEnv e(dist::kDistEnvVar, "rdma-someday");
    try {
      dist::dist_mode_from_env();
      FAIL() << "garbage ORWL_DIST must throw";
    } catch (const std::invalid_argument& ex) {
      EXPECT_NE(std::string(ex.what()).find("ORWL_DIST"), std::string::npos)
          << "the error must name the variable: " << ex.what();
    }
  }
}

TEST(DistKnobs, PortAndSlotsValidateRanges) {
  {
    support::ScopedEnv e(dist::kDistPortEnvVar, nullptr);
    EXPECT_EQ(dist::dist_port_from_env(7777), 7777);
  }
  {
    support::ScopedEnv e(dist::kDistPortEnvVar, "9099");
    EXPECT_EQ(dist::dist_port_from_env(), 9099);
  }
  {
    support::ScopedEnv e(dist::kDistPortEnvVar, "70000");
    EXPECT_THROW(dist::dist_port_from_env(), std::invalid_argument);
  }
  {
    support::ScopedEnv e(dist::kDistPortEnvVar, "http");
    EXPECT_THROW(dist::dist_port_from_env(), std::invalid_argument);
  }
  {
    support::ScopedEnv e(dist::kDistShmSlotsEnvVar, "256");
    EXPECT_EQ(dist::dist_shm_slots_from_env(), 256u);
  }
  {
    support::ScopedEnv e(dist::kDistShmSlotsEnvVar, "2");  // too small
    EXPECT_THROW(dist::dist_shm_slots_from_env(), std::invalid_argument);
  }
}

TEST(DistKnobs, UrlParsing) {
  const dist::Url tcp = dist::parse_url("orwl://node17:9099/grid");
  EXPECT_EQ(tcp.mode, dist::DistMode::Tcp);
  EXPECT_EQ(tcp.host, "node17");
  EXPECT_EQ(tcp.port, 9099);
  EXPECT_EQ(tcp.name, "grid");

  const dist::Url shm = dist::parse_url("orwl+shm://orwl-123/counter");
  EXPECT_EQ(shm.mode, dist::DistMode::Shm);
  EXPECT_EQ(shm.shm_base, "orwl-123");
  EXPECT_EQ(shm.name, "counter");

  EXPECT_THROW(dist::parse_url("http://x/y"), std::invalid_argument);
  EXPECT_THROW(dist::parse_url("orwl://nohost/name"), std::invalid_argument);
  EXPECT_THROW(dist::parse_url("orwl://h:99999/n"), std::invalid_argument);
  EXPECT_THROW(dist::parse_url("orwl+shm:///name"), std::invalid_argument);
}

// --------------------------------------------------------- shm ring ----

TEST(ShmRing, WrapAroundPreservesByteStream) {
  // A ring far smaller than the traffic: every push/pop pair crosses the
  // wrap boundary many times and the stream must come out intact.
  const std::size_t cap = 256;
  std::vector<std::byte> mem(dist::ShmRing::bytes_for(cap));
  dist::ShmRing* ring = dist::ShmRing::init(mem.data(), cap);
  ASSERT_EQ(ring->capacity(), cap);

  const std::size_t total = 64 * 1024;
  std::thread producer([&] {
    std::vector<std::byte> chunk;
    std::size_t sent = 0;
    std::mt19937 rng(1);
    while (sent < total) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 700,
                                                  total - sent);
      chunk.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = static_cast<std::byte>((sent + i) & 0xff);
      }
      ASSERT_TRUE(ring->push(chunk.data(), n, [] { return false; }));
      sent += n;
    }
    ring->close();
  });

  std::size_t got = 0;
  std::byte buf[333];
  while (true) {
    const std::size_t n = ring->pop(buf, sizeof buf, 1000);
    if (n == 0) {
      if (ring->closed() && ring->readable() == 0) break;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>((got + i) & 0xff))
          << "at offset " << got + i;
    }
    got += n;
  }
  producer.join();
  EXPECT_EQ(got, total);
}

TEST(ShmRing, PushLargerThanCapacityChunksThrough) {
  const std::size_t cap = 128;
  std::vector<std::byte> mem(dist::ShmRing::bytes_for(cap));
  dist::ShmRing* ring = dist::ShmRing::init(mem.data(), cap);

  std::vector<std::byte> msg(10 * cap);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::byte>(i * 7);
  }
  std::thread producer(
      [&] { ring->push(msg.data(), msg.size(), [] { return false; }); });
  std::vector<std::byte> got;
  std::byte buf[64];
  while (got.size() < msg.size()) {
    const std::size_t n = ring->pop(buf, sizeof buf, 1000);
    got.insert(got.end(), buf, buf + n);
  }
  producer.join();
  EXPECT_EQ(got, msg);
}

TEST(ShmRing, DoorbellWakesABlockedConsumer) {
  const std::size_t cap = 64;
  std::vector<std::byte> mem(dist::ShmRing::bytes_for(cap));
  dist::ShmRing* ring = dist::ShmRing::init(mem.data(), cap);

  // Empty ring, short timeout: pop must time out (returns 0, not closed).
  std::byte buf[16];
  EXPECT_EQ(ring->pop(buf, sizeof buf, 30), 0u);
  EXPECT_FALSE(ring->closed());

  // A consumer blocked with a long timeout is woken by the push doorbell
  // well before the timeout would fire.
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const std::size_t n = ring->pop(buf, sizeof buf, 10000);
    if (n == 3) got.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::byte msg[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  ASSERT_TRUE(ring->push(msg, 3, [] { return false; }));
  consumer.join();
  EXPECT_TRUE(got.load(std::memory_order_acquire));

  // close() wakes and terminates a drained consumer.
  std::thread drained([&] {
    while (ring->pop(buf, sizeof buf, 10000) != 0) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring->close();
  drained.join();
  EXPECT_TRUE(ring->closed());
}

// --------------------------------------- end-to-end (in one process) ----

/// Home-side fixture: one uint64 location exported as "counter" through
/// a registry served over the given transport.
struct Home {
  rt::Location loc{0, 0, 0};
  dist::Registry reg;

  explicit Home(std::unique_ptr<dist::ServerTransport> t) {
    loc.scale(sizeof(std::uint64_t));
    *reinterpret_cast<std::uint64_t*>(loc.data()) = 0;
    reg.export_location("counter", &loc);
    reg.serve(std::move(t));
  }

  std::uint64_t value() const {
    return *reinterpret_cast<const std::uint64_t*>(loc.data());
  }
};

void exercise_end_to_end(Home& home, const std::string& url) {
  auto client = dist::Client::connect(url);
  dist::RemoteLocation& remote = client->attach("counter");
  EXPECT_TRUE(remote.is_remote());
  EXPECT_EQ(remote.size(), sizeof(std::uint64_t));

  // Phase 1 — one-shot handles, the plain RELEASE wire path.
  std::uint64_t last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    rt::Handle h;
    h.insert_standalone(remote, AccessMode::Write);
    rt::Section sec(h);
    std::uint64_t* v = sec.as<std::uint64_t>();
    EXPECT_GE(*v, last_seen) << "remote mirror went backwards";
    last_seen = ++*v;
  }
  // A plain read handle observes the writes (payload shipped on grant).
  {
    rt::Handle r;
    r.insert_standalone(remote, AccessMode::Read);
    rt::Section sec(r);
    EXPECT_EQ(*sec.as_const<std::uint64_t>(), 50u);
  }

  // Phase 2 — an iterative handle2, the RELEASE|reinsert wire path. Its
  // final re-inserted request stays pending by design (a handle2 cycle
  // has no "last" release); closing the session reclaims it.
  rt::Handle2 h2;
  h2.insert_standalone(remote, AccessMode::Write);
  for (int i = 0; i < 50; ++i) {
    rt::Section sec(h2);
    ++*sec.as<std::uint64_t>();
  }
  {
    rt::Section sec(h2);
    EXPECT_EQ(*sec.as<std::uint64_t>(), 100u);
  }
  client->close();
  // 50 + 1 one-shot releases, 51 handle2 releases; once the home has
  // folded them all in, the final write-back is in the home buffer
  // bit-identically.
  ASSERT_TRUE(eventually([&] { return home.reg.stats().releases >= 102; }));
  EXPECT_EQ(home.value(), 100u);
  const dist::Registry::Stats s = home.reg.stats();
  EXPECT_EQ(s.attaches, 1u);
  EXPECT_GE(s.grants_sent, 102u);
}

TEST(DistEndToEnd, ShmTransportDrivesARemoteCounter) {
  const std::string base = unique_base("e2e");
  Home home(std::make_unique<dist::ShmServerTransport>(base, 64));
  exercise_end_to_end(home, home.reg.url("counter"));
  home.reg.stop();
}

TEST(DistEndToEnd, TcpTransportDrivesARemoteCounter) {
  Home home(std::make_unique<dist::TcpServerTransport>(0));
  const std::string url = home.reg.url("counter");
  ASSERT_EQ(url.rfind("orwl://", 0), 0u) << url;
  exercise_end_to_end(home, url);
  home.reg.stop();
}

TEST(DistEndToEnd, AttachUnknownNameFailsFast) {
  Home home(std::make_unique<dist::TcpServerTransport>(0));
  auto client = dist::Client::connect(home.reg.url("counter"));
  EXPECT_THROW(client->attach("no-such-export"), std::runtime_error);
  // The session survives a rejected attach.
  EXPECT_NO_THROW(client->attach("counter"));
  home.reg.stop();
}

TEST(DistEndToEnd, MixedLocalAndRemoteWritersExclude) {
  // Local handles and two remote clients hammer one counter; mutual
  // exclusion across the wire means no increment is ever lost.
  const std::string base = unique_base("mixed");
  Home home(std::make_unique<dist::ShmServerTransport>(base, 128));
  constexpr int kPerWriter = 150;

  // One-shot handles throughout: a handle2 writer that stops iterating
  // would leave its re-inserted request granted-but-unreleased, blocking
  // every writer queued behind it.
  auto remote_writer = [&](const std::string& url) {
    auto client = dist::Client::connect(url);
    dist::RemoteLocation& remote = client->attach("counter");
    for (int i = 0; i < kPerWriter; ++i) {
      rt::Handle h;
      h.insert_standalone(remote, AccessMode::Write);
      rt::Section sec(h);
      ++*sec.as<std::uint64_t>();
    }
    client->close();
  };
  std::thread c1(remote_writer, home.reg.url("counter"));
  std::thread c2(remote_writer, home.reg.url("counter"));
  for (int i = 0; i < kPerWriter; ++i) {
    rt::Handle h;
    h.insert_standalone(home.loc, AccessMode::Write);
    rt::Section sec(h);
    ++*sec.as<std::uint64_t>();
  }
  c1.join();
  c2.join();
  ASSERT_TRUE(eventually(
      [&] { return home.reg.stats().releases >= 2u * kPerWriter; }));
  EXPECT_EQ(home.value(), 3u * kPerWriter);
  home.reg.stop();
}

TEST(DistFifo, WireRequestsServeInExactEnqueueOrder) {
  // Interleave requests from two remote clients and a local handle in a
  // known order, then acquire them in exactly that order. The home queue
  // grants strictly by ticket, so if any wire request were enqueued out
  // of order the sequential acquire below would deadlock (and the
  // acquire-timeout guard would fail the test loudly).
  Home home(std::make_unique<dist::TcpServerTransport>(0));
  auto c1 = dist::Client::connect(home.reg.url("counter"));
  auto c2 = dist::Client::connect(home.reg.url("counter"));
  dist::RemoteLocation& r1 = c1->attach("counter");
  dist::RemoteLocation& r2 = c2->attach("counter");

  // Wire enqueues are asynchronous: wait until the home has folded each
  // one into the queue before issuing the next, so the expected global
  // order is deterministic.
  std::uint64_t wire_reqs = 0;
  auto wait_proxied = [&] {
    ++wire_reqs;
    while (home.reg.stats().proxy_requests < wire_reqs) {
      std::this_thread::yield();
    }
  };

  std::mt19937 rng(7);
  std::vector<std::unique_ptr<rt::Handle>> order;
  for (int i = 0; i < 30; ++i) {
    auto h = std::make_unique<rt::Handle>();
    const AccessMode mode =
        rng() % 3 == 0 ? AccessMode::Read : AccessMode::Write;
    switch (rng() % 3) {
      case 0:
        h->insert_standalone(r1, mode);
        wait_proxied();
        break;
      case 1:
        h->insert_standalone(r2, mode);
        wait_proxied();
        break;
      default:
        h->insert_standalone(home.loc, mode);
        break;
    }
    order.push_back(std::move(h));
  }
  std::uint64_t writes = 0;
  for (auto& h : order) {
    rt::Section sec(*h);
    if (h->mode() == AccessMode::Write) {
      ++*sec.as<std::uint64_t>();
      ++writes;
    }
  }
  // Every wire handle was one-shot: once all their releases are home,
  // the counter is final.
  ASSERT_TRUE(
      eventually([&] { return home.reg.stats().releases >= wire_reqs; }));
  EXPECT_EQ(home.value(), writes);
  home.reg.stop();
}

TEST(DistOrphans, KilledClientsTicketsAreReclaimed) {
  const std::string base = unique_base("orphan");
  Home home(std::make_unique<dist::ShmServerTransport>(base, 64));
  const std::string url = home.reg.url("counter");

  // Client A holds the grant and has a second request queued behind it.
  auto a = dist::Client::connect(url);
  dist::RemoteLocation& ra = a->attach("counter");
  const rt::Ticket granted = ra.enqueue_request(AccessMode::Write);
  ra.acquire_request(granted);
  const rt::Ticket queued = ra.enqueue_request(AccessMode::Write);
  (void)queued;
  // Both proxies registered before the crash.
  ASSERT_TRUE(
      eventually([&] { return home.reg.stats().proxy_requests >= 2; }));
  // A local writer queues behind both of A's requests...
  rt::Handle local;
  local.insert_standalone(home.loc, AccessMode::Write);
  // ...then A crashes without releasing anything.
  a->kill();

  // The home must reclaim A's granted ticket immediately and release the
  // queued one when its turn comes — the local writer gets through.
  local.acquire();
  local.release();
  ASSERT_TRUE(
      eventually([&] { return home.reg.stats().orphans_reclaimed >= 2; }));
  EXPECT_EQ(home.reg.stats().orphans_reclaimed, 2u);
  home.reg.stop();
}

TEST(DistFacade, ProgramRemoteAndBuilderExports) {
  // The v2 facade surface: builder-declared exports served through a
  // registry, a second program attaching via Program::remote(), guards
  // unchanged.
  const topo::Topology machine = topo::make_flat(4);
  Options o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;

  ProgramBuilder b(2, o);
  b.task(0).owns<std::uint64_t>();
  b.task(1).reads<std::uint64_t>(loc(0));
  b.export_location(loc(0), "shared-counter");
  EXPECT_THROW(b.export_location(loc(0), "shared-counter"),
               std::invalid_argument);
  EXPECT_THROW(b.export_location(loc(9), "x"), std::out_of_range);
  Program home = b.build();
  home.local<std::uint64_t>(loc(0)).value() = 41;

  dist::Registry reg;
  home.serve_exports(reg);
  reg.serve(std::make_unique<dist::TcpServerTransport>(0));

  Program away(1, o);
  rt::Location& remote = away.remote(reg.url("shared-counter"));
  EXPECT_TRUE(remote.is_remote());
  // Same URL returns the same session-owned location.
  EXPECT_EQ(&away.remote(reg.url("shared-counter")), &remote);

  away.set_task_body([&](Task& task) {
    task.schedule();
    auto link = task.write<std::uint64_t>(remote);
    WriteGuard<std::uint64_t> g(link);
    ++g.ref();
  });
  away.run();
  // The guard's write-back travels DATA-then-RELEASE; wait for the home
  // to fold it in before inspecting.
  ASSERT_TRUE(eventually([&] { return reg.stats().releases >= 1; }));
  EXPECT_EQ(home.local<std::uint64_t>(loc(0)).value(), 42u);
  reg.stop();
}

// ------------------------------------------------- two-process (fork) ----

#if !defined(ORWL_DIST_TEST_TSAN)

void two_process_stress(Home& home, const std::string& url) {
  constexpr int kChildIters = 300;
  constexpr int kParentIters = 300;
  // Writes are one-shot releases and every 8th iteration adds a read, so
  // the child ships exactly this many RELEASE frames.
  constexpr std::uint64_t kChildReleases =
      kChildIters + (kChildIters + 7) / 8;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: pure dist client hammering the parent's location. The
    // counter must never go backwards (FIFO + write-back) and no
    // increment may be lost. One-shot handles: each release fully
    // retires its request, so the parent never waits on us after exit.
    int rc = 0;
    try {
      auto client = dist::Client::connect(url);
      dist::RemoteLocation& remote = client->attach("counter");
      std::uint64_t last = 0;
      for (int i = 0; i < kChildIters && rc == 0; ++i) {
        {
          rt::Handle w;
          w.insert_standalone(remote, AccessMode::Write);
          rt::Section sec(w);
          std::uint64_t* v = sec.as<std::uint64_t>();
          if (*v < last) rc = 3;  // went backwards
          last = ++*v;
        }
        if (i % 8 == 0) {
          rt::Handle r;
          r.insert_standalone(remote, AccessMode::Read);
          rt::Section sec(r);
          if (*sec.as_const<std::uint64_t>() < last) rc = 4;
        }
      }
      client->close();
    } catch (...) {
      rc = 2;
    }
    _exit(rc);
  }

  // Parent: local one-shot writers contending with the live child.
  for (int i = 0; i < kParentIters; ++i) {
    rt::Handle h;
    h.insert_standalone(home.loc, AccessMode::Write);
    rt::Section sec(h);
    ++*sec.as<std::uint64_t>();
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "child failed (2=connect, 3=writer order, 4=read)";
  // Drain the child's tail frames, then check nothing was lost.
  ASSERT_TRUE(eventually(
      [&] { return home.reg.stats().releases >= kChildReleases; }));
  EXPECT_EQ(home.value(),
            static_cast<std::uint64_t>(kChildIters + kParentIters));
}

TEST(DistTwoProcess, ShmStressKeepsFifoAndLosesNothing) {
  const std::string base = unique_base("fork-shm");
  Home home(std::make_unique<dist::ShmServerTransport>(base, 64));
  two_process_stress(home, home.reg.url("counter"));
  home.reg.stop();
}

TEST(DistTwoProcess, TcpStressKeepsFifoAndLosesNothing) {
  Home home(std::make_unique<dist::TcpServerTransport>(0));
  two_process_stress(home, home.reg.url("counter"));
  home.reg.stop();
}

#else  // ORWL_DIST_TEST_TSAN

TEST(DistTwoProcess, ShmStressKeepsFifoAndLosesNothing) {
  GTEST_SKIP() << "fork() + threads is unsupported under TSan; the "
                  "in-process transport tests cover the protocol";
}
TEST(DistTwoProcess, TcpStressKeepsFifoAndLosesNothing) {
  GTEST_SKIP() << "fork() + threads is unsupported under TSan";
}

#endif  // ORWL_DIST_TEST_TSAN

}  // namespace
