// The sharded control plane: shard clamping, routing, batched draining,
// and the inline-grant fallback that makes post() safe against stop()
// races and shard saturation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "orwl/orwl.hpp"
#include "topo/machines.hpp"
#include "topo/shard.hpp"
#include "treematch/treematch.hpp"

namespace {

using namespace orwl::rt;

ControlPlaneOptions sharded(std::size_t threads, std::size_t shards) {
  ControlPlaneOptions o;
  o.num_threads = threads;
  o.num_shards = shards;
  return o;
}

// ------------------------------------------------------------ sharding ----

TEST(ControlPlaneShards, ShardCountClampedToThreads) {
  ControlPlane cp(sharded(4, 8));
  EXPECT_EQ(cp.num_shards(), 4u);
  ControlPlane cp2(sharded(8, 4));
  EXPECT_EQ(cp2.num_shards(), 4u);
  ControlPlane cp3(sharded(0, 7));
  EXPECT_EQ(cp3.num_shards(), 1u);
  ControlPlane legacy(3);
  EXPECT_EQ(legacy.num_shards(), 1u);
}

TEST(ControlPlaneShards, ThreadsServeShardsRoundRobin) {
  ControlPlane cp(sharded(6, 3));
  EXPECT_EQ(cp.shard_of_thread(0), 0u);
  EXPECT_EQ(cp.shard_of_thread(1), 1u);
  EXPECT_EQ(cp.shard_of_thread(2), 2u);
  EXPECT_EQ(cp.shard_of_thread(3), 0u);
  EXPECT_EQ(cp.shard_of_thread(5), 2u);
}

TEST(ControlPlaneShards, HandOffWorksOnEveryShard) {
  ControlPlane cp(sharded(4, 4));
  cp.start();
  std::vector<RequestQueue> queues(4);
  for (std::size_t i = 0; i < queues.size(); ++i) {
    queues[i].set_control_plane(&cp);
    queues[i].set_control_shard(i);
    EXPECT_EQ(queues[i].control_shard(), i);
  }
  for (auto& q : queues) {
    const Ticket w1 = q.enqueue(AccessMode::Write);
    const Ticket w2 = q.enqueue(AccessMode::Write);
    q.release(w1);
    q.acquire(w2);  // granted by the shard's control thread
    q.release(w2);
  }
  cp.stop();
  EXPECT_GE(cp.events_processed() + cp.inline_grants(), 4u);
}

TEST(ControlPlaneShards, OutOfRangeShardHintWrapsAround) {
  ControlPlane cp(sharded(2, 2));
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  q.set_control_shard(17);  // mod num_shards inside post()
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  q.acquire(w2);
  q.release(w2);
  cp.stop();
}

TEST(ControlPlaneShards, RoutingFollowsTheTopologyShardMap) {
  // smp20e7 fixture: 20 NUMA nodes, PU os index n*8.. per node. A queue
  // whose waiter sits on node n routes to shard n.
  const auto topo = orwl::topo::make_smp20e7();
  const auto map = orwl::topo::make_shard_map(topo, 20);
  ControlPlane cp(sharded(20, 20));
  cp.start();
  std::vector<RequestQueue> queues(20);
  for (int node = 0; node < 20; ++node) {
    auto& q = queues[static_cast<std::size_t>(node)];
    q.set_control_plane(&cp);
    const int pu = node * 8;  // first PU of the node
    ASSERT_EQ(map.shard_of(pu), node);
    q.set_control_shard(static_cast<std::size_t>(map.shard_of(pu)));
    const Ticket w1 = q.enqueue(AccessMode::Write);
    const Ticket w2 = q.enqueue(AccessMode::Write);
    q.release(w1);
    q.acquire(w2);
    q.release(w2);
  }
  cp.stop();
  EXPECT_GE(cp.events_processed() + cp.inline_grants(), 20u);
}

TEST(ControlPlaneShards, ControlShardOfMapsAssociatesToShards) {
  // tree_match on smp12e5 (hyperthreaded): control thread j is placed on
  // the sibling PU of its associate; control_shard_of must map it to the
  // same shard its associate's queues route to.
  const auto topo = orwl::topo::make_smp12e5();
  const auto map = orwl::topo::make_shard_map(topo, 12);
  orwl::tm::CommMatrix m(8);
  for (std::size_t i = 0; i < 8; ++i) {
    m.add(i, (i + 1) % 8, 100.0);
  }
  orwl::tm::Options opts;
  opts.num_control_threads = 4;
  const auto placement = orwl::tm::tree_match(topo, m, opts);
  ASSERT_EQ(placement.control_associate.size(), 4u);
  const auto shards = orwl::tm::control_shard_of(placement, map);
  ASSERT_EQ(shards.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    const int assoc = placement.control_associate[j];
    ASSERT_GE(assoc, 0);
    ASSERT_LT(assoc, 8);
    EXPECT_EQ(shards[j],
              map.shard_of(
                  placement.compute_pu[static_cast<std::size_t>(assoc)]));
    // The control PU itself (the hyperthread sibling) lives in the same
    // locality domain, hence the same shard.
    if (placement.control_pu[j] >= 0 && shards[j] >= 0) {
      EXPECT_EQ(map.shard_of(placement.control_pu[j]), shards[j]);
    }
  }
}

// ------------------------------------------------- inline-grant fallback ----

TEST(ControlPlaneFallback, PostBeforeStartGrantsInline) {
  ControlPlane cp(sharded(2, 2));  // never started
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
  EXPECT_GE(cp.inline_grants(), 1u);
  q.release(w2);
}

TEST(ControlPlaneFallback, PostAfterStopGrantsInline) {
  ControlPlane cp(sharded(2, 2));
  cp.start();
  cp.stop();
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
  EXPECT_GE(cp.inline_grants(), 1u);
  q.release(w2);
}

TEST(ControlPlaneFallback, SaturatedShardGrantsInline) {
  // capacity 1: whenever the single control thread is busy, a concurrent
  // post finds the shard full and must grant inline instead of queueing
  // without bound. No hand-off may be lost either way.
  ControlPlaneOptions o = sharded(1, 1);
  o.shard_capacity = 1;
  ControlPlane cp(o);
  cp.start();
  constexpr int kProducers = 4;
  constexpr int kIters = 200;
  std::vector<RequestQueue> queues(kProducers);
  for (auto& q : queues) q.set_control_plane(&cp);
  std::vector<std::thread> threads;
  for (int i = 0; i < kProducers; ++i) {
    threads.emplace_back([&, i] {
      RequestQueue& q = queues[static_cast<std::size_t>(i)];
      Ticket t = q.enqueue(AccessMode::Write);
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, AccessMode::Write);
      }
    });
  }
  for (auto& th : threads) th.join();
  cp.stop();
  EXPECT_GE(cp.events_processed() + cp.inline_grants(),
            static_cast<std::uint64_t>(kProducers) * kIters);
}

TEST(ControlPlaneFallback, ReleaseRacingStopNeverStrandsWaiter) {
  // The regression of the "RequestQueue guards this" contract: a release
  // posted while stop() runs must never lose its hand-off event. Before
  // the fix the waiter timed out; now post() grants inline instead.
  for (int round = 0; round < 50; ++round) {
    ControlPlane cp(sharded(2, 2));
    cp.start();
    RequestQueue q;
    q.set_control_plane(&cp);
    q.set_acquire_timeout(10000);
    const Ticket w1 = q.enqueue(AccessMode::Write);
    const Ticket w2 = q.enqueue(AccessMode::Write);
    std::thread releaser([&] { q.release(w1); });
    cp.stop();  // races the release's post()
    EXPECT_NO_THROW(q.acquire(w2)) << "round " << round;
    releaser.join();
    q.release(w2);  // post after stop: inline grant path
  }
}

// ---------------------------------------------------- batched draining ----

TEST(ControlPlaneBatching, DrainsAllEventsAndCountsBatches) {
  ControlPlane cp(sharded(1, 1));
  cp.start();
  constexpr int kQueues = 8;
  constexpr int kIters = 50;
  std::vector<RequestQueue> queues(kQueues);
  for (auto& q : queues) q.set_control_plane(&cp);
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueues; ++i) {
    threads.emplace_back([&, i] {
      RequestQueue& q = queues[static_cast<std::size_t>(i)];
      Ticket t = q.enqueue(AccessMode::Write);
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, AccessMode::Write);
      }
    });
  }
  for (auto& th : threads) th.join();
  cp.stop();
  // Every hand-off was either control-processed or granted inline, and a
  // wakeup may retire several events (batch count never exceeds events).
  EXPECT_GE(cp.events_processed() + cp.inline_grants(),
            static_cast<std::uint64_t>(kQueues) * kIters);
  EXPECT_LE(cp.drain_batches(), cp.events_processed());
}

TEST(ControlPlaneShards, StressManyQueuesAcrossShards) {
  ControlPlane cp(sharded(4, 4));
  cp.start();
  constexpr int kQueues = 16;
  constexpr int kIters = 100;
  std::vector<RequestQueue> queues(kQueues);
  for (int i = 0; i < kQueues; ++i) {
    queues[static_cast<std::size_t>(i)].set_control_plane(&cp);
    queues[static_cast<std::size_t>(i)].set_control_shard(
        static_cast<std::size_t>(i) % cp.num_shards());
  }
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < kQueues; ++i) {
    threads.emplace_back([&, i] {
      RequestQueue& q = queues[static_cast<std::size_t>(i)];
      Ticket t = q.enqueue(AccessMode::Write);
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, AccessMode::Write);
      }
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), kQueues);
  cp.stop();
  EXPECT_GT(cp.events_processed(), 0u);
}

}  // namespace
