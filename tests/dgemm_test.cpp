#include <gtest/gtest.h>

#include <vector>

#include "apps/dgemm.hpp"
#include "support/rng.hpp"

namespace {

using namespace orwl::apps;
using orwl::support::SplitMix64;

std::vector<double> random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  std::vector<double> m(rows * cols);
  SplitMix64 rng(seed);
  for (auto& x : m) x = rng.uniform() - 0.5;
  return m;
}

void expect_close(const std::vector<double>& a,
                  const std::vector<double>& b, double tol = 1e-10) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "element " << i;
  }
}

TEST(Dgemm, TinyKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  dgemm(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2);
  expect_close(c, {19, 22, 43, 50});
}

TEST(Dgemm, AccumulatesIntoC) {
  const std::vector<double> a{1, 0, 0, 1};
  const std::vector<double> b{2, 3, 4, 5};
  std::vector<double> c{10, 10, 10, 10};
  dgemm(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2);
  expect_close(c, {12, 13, 14, 15});
}

struct GemmCase {
  std::size_t m, n, k;
};

class DgemmShapeTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(DgemmShapeTest, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  const auto a = random_matrix(m, k, 1);
  const auto b = random_matrix(k, n, 2);
  std::vector<double> c_blocked(m * n, 0.5);
  std::vector<double> c_naive(m * n, 0.5);
  dgemm(m, n, k, a.data(), k, b.data(), n, c_blocked.data(), n);
  dgemm_naive(m, n, k, a.data(), k, b.data(), n, c_naive.data(), n);
  expect_close(c_blocked, c_naive);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmShapeTest,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{3, 5, 7},
                      GemmCase{16, 16, 16}, GemmCase{64, 64, 64},
                      GemmCase{65, 63, 130},  // straddles all block sizes
                      GemmCase{128, 256, 128}, GemmCase{100, 1, 50},
                      GemmCase{1, 300, 20}));

TEST(Dgemm, StridedSubmatrix) {
  // Multiply a 2x2 corner embedded in 4-wide storage.
  const std::size_t ld = 4;
  std::vector<double> a(2 * ld, 0.0), b(2 * ld, 0.0), c(2 * ld, 0.0);
  a[0] = 1;
  a[1] = 2;
  a[ld] = 3;
  a[ld + 1] = 4;
  b[0] = 5;
  b[1] = 6;
  b[ld] = 7;
  b[ld + 1] = 8;
  dgemm(2, 2, 2, a.data(), ld, b.data(), ld, c.data(), ld);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[ld], 43);
  EXPECT_DOUBLE_EQ(c[ld + 1], 50);
  // Untouched cells stay zero.
  EXPECT_DOUBLE_EQ(c[2], 0);
  EXPECT_DOUBLE_EQ(c[ld + 3], 0);
}

}  // namespace
