#include <gtest/gtest.h>

#include <thread>

#include "topo/binding.hpp"
#include "topo/cpuset.hpp"

namespace {

using namespace orwl::topo;

TEST(Binding, HostHasAtLeastOneCpu) {
  EXPECT_GE(host_cpu_count(), 1);
}

TEST(Binding, CurrentCpuIsValid) {
  const int cpu = current_cpu();
  EXPECT_GE(cpu, 0);
  EXPECT_LT(cpu, host_cpu_count());
}

TEST(Binding, EmptySetIsRejected) {
  EXPECT_FALSE(bind_current_thread(CpuSet{}));
}

TEST(Binding, BindAndObserve) {
  const CpuSet original = current_thread_binding();
  ASSERT_FALSE(original.empty());

  const int target = original.first();
  ASSERT_TRUE(bind_current_thread(CpuSet::single(target)));
  EXPECT_EQ(current_thread_binding().to_vector(),
            std::vector<int>{target});
  // The scheduler must now run us on the bound CPU.
  EXPECT_EQ(current_cpu(), target);

  // Restore.
  EXPECT_TRUE(bind_current_thread(original));
}

TEST(Binding, BindOtherThreadByHandle) {
  const CpuSet original = current_thread_binding();
  ASSERT_FALSE(original.empty());
  const int target = original.last();

  CpuSet observed;
  std::atomic<bool> bound{false};
  std::thread worker([&] {
    while (!bound.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    observed = current_thread_binding();
  });
  EXPECT_TRUE(bind_thread(worker.native_handle(), CpuSet::single(target)));
  bound.store(true, std::memory_order_release);
  worker.join();
  EXPECT_EQ(observed.to_vector(), std::vector<int>{target});
}

TEST(Binding, OutOfRangeCpuFails) {
  // CPU ids far beyond the machine must be rejected by the OS.
  EXPECT_FALSE(bind_current_thread(CpuSet::single(CPU_SETSIZE + 10)));
}

TEST(Binding, MultiCpuMaskKeepsThreadInside) {
  const CpuSet original = current_thread_binding();
  if (original.count() < 2) GTEST_SKIP() << "needs >= 2 allowed cpus";
  const auto v = original.to_vector();
  const CpuSet mask{v[0], v[1]};
  ASSERT_TRUE(bind_current_thread(mask));
  const int cpu = current_cpu();
  EXPECT_TRUE(mask.test(cpu));
  EXPECT_TRUE(bind_current_thread(original));
}

}  // namespace
