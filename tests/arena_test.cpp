#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "runtime/arena.hpp"
#include "support/env.hpp"
#include "topo/membind.hpp"

namespace {

using orwl::rt::Arena;
using orwl::rt::ArenaAllocator;
using orwl::rt::ArenaPtr;
using orwl::rt::arena_new;
using orwl::support::ScopedEnv;

TEST(Arena, EnvGateDefaultsOn) {
  ScopedEnv unset(orwl::rt::kArenaEnvVar, nullptr);
  EXPECT_TRUE(Arena::enabled_from_env());
}

TEST(Arena, EnvGateRecognizesOff) {
  {
    ScopedEnv off(orwl::rt::kArenaEnvVar, "off");
    EXPECT_FALSE(Arena::enabled_from_env());
  }
  {
    ScopedEnv zero(orwl::rt::kArenaEnvVar, "0");
    EXPECT_FALSE(Arena::enabled_from_env());
  }
  {
    ScopedEnv shard(orwl::rt::kArenaEnvVar, "shard");
    EXPECT_TRUE(Arena::enabled_from_env());
  }
}

// The slab-path tests pin ORWL_ARENA=shard: the legacy CI leg exports
// ORWL_ARENA=off for the whole ctest run, and Arena captures the mode
// at construction — without the pin these would silently test the heap
// veneer instead of the freelists.
class ArenaSlab : public ::testing::Test {
 protected:
  ScopedEnv shard_mode_{orwl::rt::kArenaEnvVar, "shard"};
};

TEST_F(ArenaSlab, SizeClassRoundTrips) {
  Arena arena;
  // One allocation per size class, each written end to end and freed:
  // the header must survive a full fill of the user bytes.
  for (std::size_t bytes : {1u, 17u, 64u, 100u, 1000u, 4096u, 30000u}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr) << bytes;
    std::memset(p, 0xAB, bytes);
    Arena::deallocate(p);
  }
  const Arena::Stats s = arena.stats();
  EXPECT_EQ(s.allocs, 7u);
  EXPECT_EQ(s.frees, 7u);
  EXPECT_EQ(arena.live_allocs(), 0u);
}

TEST_F(ArenaSlab, FreelistReusesFreedBlock) {
  Arena arena;
  void* a = arena.allocate(128);
  Arena::deallocate(a);
  // Same size class -> the freelist hands the identical block back
  // instead of carving new slab space.
  void* b = arena.allocate(100);
  EXPECT_EQ(a, b);
  Arena::deallocate(b);
}

TEST_F(ArenaSlab, DistinctClassesDoNotAlias) {
  Arena arena;
  void* small = arena.allocate(64);
  void* big = arena.allocate(4096);
  EXPECT_NE(small, big);
  Arena::deallocate(small);
  void* big2 = arena.allocate(4096);
  // Freeing the 64B block must not feed the 4KiB class.
  EXPECT_NE(big2, small);
  Arena::deallocate(big);
  Arena::deallocate(big2);
}

TEST_F(ArenaSlab, AlignmentHonored) {
  Arena arena;
  for (std::size_t align : {8u, 16u, 64u, 128u}) {
    void* p = arena.allocate(24, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    Arena::deallocate(p);
  }
}

TEST_F(ArenaSlab, ExhaustionGrowsNewSlab) {
  // Tiny slabs so a handful of allocations forces a refill.
  Arena arena(Arena::kAnyNode, /*slab_bytes=*/8 * 1024);
  const std::uint64_t before = arena.stats().refills;
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(arena.allocate(1024));
  std::set<void*> unique(blocks.begin(), blocks.end());
  EXPECT_EQ(unique.size(), blocks.size());
  EXPECT_GT(arena.stats().refills, before);
  EXPECT_GT(arena.stats().bytes_reserved, 8u * 1024u);
  for (void* p : blocks) Arena::deallocate(p);
  EXPECT_EQ(arena.live_allocs(), 0u);
}

TEST_F(ArenaSlab, LargeAllocationBypassesSlabs) {
  Arena arena(Arena::kAnyNode, /*slab_bytes=*/16 * 1024);
  // Larger than any size class: must still round-trip and be writable.
  const std::size_t big = 256 * 1024;
  void* p = arena.allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5C, big);
  EXPECT_EQ(arena.live_allocs(), 1u);
  Arena::deallocate(p);
  EXPECT_EQ(arena.live_allocs(), 0u);
}

TEST_F(ArenaSlab, EmulatedBindFallsBackWithoutMisses) {
  // ORWL_MEMBIND=emulate removes the NUMA syscalls; binding to a node the
  // host cannot honor must degrade to plain pages and must NOT count as a
  // node miss (the gate arena_node_misses == 0 relies on this for
  // fixture topologies wider than the host).
  ScopedEnv emulate(orwl::topo::kMemBindEnvVar, "emulate");
  Arena arena(/*node=*/3);
  void* p = arena.allocate(512);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, 512);
  Arena::deallocate(p);
  EXPECT_EQ(arena.stats().node_misses, 0u);
  EXPECT_GT(arena.stats().bytes_reserved, 0u);
}

TEST_F(ArenaSlab, BindToHostNodeIsMissFree) {
  // Binding to a node the host really has must produce zero misses too
  // (this is the smp20e7-fixture acceptance gate in miniature).
  const std::vector<int> nodes = orwl::topo::MemBind::host_node_ids();
  const int node = nodes.empty() ? 0 : nodes.front();
  Arena arena(node);
  void* p = arena.allocate(2048);
  std::memset(p, 0x22, 2048);
  Arena::deallocate(p);
  EXPECT_EQ(arena.stats().node_misses, 0u);
  EXPECT_EQ(arena.node(), node);
}

TEST_F(ArenaSlab, RebindMovesNodeAndCounts) {
  Arena arena(Arena::kAnyNode);
  void* p = arena.allocate(256);  // force a slab so rebind has pages
  const std::uint64_t before = arena.stats().rebinds;
  arena.rebind(arena.node());  // same node: no-op
  EXPECT_EQ(arena.stats().rebinds, before);

  const std::vector<int> nodes = orwl::topo::MemBind::host_node_ids();
  const int target = nodes.empty() ? 0 : nodes.front();
  arena.rebind(target);
  EXPECT_EQ(arena.node(), target);
  EXPECT_EQ(arena.stats().rebinds, before + 1);
  // The block allocated before the rebind still frees cleanly.
  Arena::deallocate(p);
  void* q = arena.allocate(256);
  std::memset(q, 0x33, 256);
  Arena::deallocate(q);
  EXPECT_EQ(arena.live_allocs(), 0u);
}

TEST(Arena, HeapModeIsThinVeneer) {
  ScopedEnv off(orwl::rt::kArenaEnvVar, "off");
  Arena arena(/*node=*/0);
  EXPECT_TRUE(arena.heap_mode());
  void* p = arena.allocate(512);
  std::memset(p, 0x44, 512);
  Arena::deallocate(p);
  const Arena::Stats s = arena.stats();
  // Heap mode reserves nothing node-bound: the counters that feed the
  // CI gate stay at zero so ORWL_ARENA=off is visible in bench JSON.
  EXPECT_EQ(s.bytes_reserved, 0u);
  EXPECT_EQ(s.refills, 0u);
  EXPECT_EQ(s.node_misses, 0u);
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.frees, 1u);
}

TEST_F(ArenaSlab, CrossArenaFreeRoutesToOwner) {
  Arena a;
  Arena b;
  void* pa = a.allocate(128);
  void* pb = b.allocate(128);
  // Frees issued "from the wrong side": the header routes each block
  // back to its owner, the way a re-routed queue frees old windows.
  Arena::deallocate(pb);
  Arena::deallocate(pa);
  EXPECT_EQ(a.stats().frees, 1u);
  EXPECT_EQ(b.stats().frees, 1u);
  EXPECT_EQ(a.live_allocs(), 0u);
  EXPECT_EQ(b.live_allocs(), 0u);
}

TEST_F(ArenaSlab, ArenaNewAndPtrRunDestructors) {
  Arena arena;
  static std::atomic<int> destroyed{0};
  struct Probe {
    ~Probe() { destroyed.fetch_add(1); }
    std::uint64_t payload[4] = {};
  };
  destroyed.store(0);
  {
    ArenaPtr<Probe> p(arena_new<Probe>(arena));
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(arena.live_allocs(), 0u);
}

TEST_F(ArenaSlab, AllocatorAdapterWorksWithContainers) {
  Arena arena;
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);

    std::deque<int, ArenaAllocator<int>> d{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) d.push_back(i);
    while (d.size() > 500) d.pop_front();
    EXPECT_EQ(d.front(), 500);
  }
  EXPECT_EQ(arena.live_allocs(), 0u);
  EXPECT_GT(arena.stats().allocs, 0u);
}

TEST(Arena, AllocatorEqualityIsArenaIdentity) {
  Arena a;
  Arena b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&a));
  EXPECT_FALSE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&b));
  // Rebinding T preserves the arena.
  ArenaAllocator<long> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST_F(ArenaSlab, ConcurrentAllocFreeIsRaceFree) {
  Arena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      std::vector<void*> mine;
      mine.reserve(8);
      for (int i = 0; i < kIters; ++i) {
        const std::size_t mix = static_cast<std::size_t>((i * 7 + t) % 400);
        const std::size_t bytes = 32 + mix;
        void* p = arena.allocate(bytes);
        std::memset(p, t, bytes);
        mine.push_back(p);
        if (mine.size() == 8) {
          for (void* q : mine) Arena::deallocate(q);
          mine.clear();
        }
      }
      for (void* q : mine) Arena::deallocate(q);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(arena.live_allocs(), 0u);
  EXPECT_EQ(arena.stats().allocs, arena.stats().frees);
}

TEST(Arena, RuntimeDefaultIsStable) {
  Arena& a = Arena::runtime_default();
  Arena& b = Arena::runtime_default();
  EXPECT_EQ(&a, &b);
  void* p = a.allocate(64);
  Arena::deallocate(p);
}

}  // namespace
