// The data half of Sec. IV-A: NUMA-local location memory and grant-time
// data transfer. Covers policy resolution (ORWL_DATA_TRANSFER), owner
// binding at placement / re-placement / live insert, the adaptive
// follow-the-writer migration performed by control threads, and the
// scale_hint() dry-run regression.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "orwl/orwl.hpp"
#include "support/env.hpp"
#include "topo/machines.hpp"
#include "topo/membind.hpp"

namespace {

using namespace orwl;

rt::ProgramOptions fixture_opts(const topo::Topology& machine) {
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::On;
  o.bind_threads = false;  // fixture machines are larger than the host
  o.acquire_timeout_ms = 30000;
  return o;
}

TEST(DataTransferPolicy, ToString) {
  EXPECT_STREQ(to_string(rt::DataTransferPolicy::Off), "off");
  EXPECT_STREQ(to_string(rt::DataTransferPolicy::Owner), "owner");
  EXPECT_STREQ(to_string(rt::DataTransferPolicy::Adaptive), "adaptive");
}

TEST(DataTransferPolicy, ResolvedFromOptionsAndEnv) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;

  {
    support::ScopedEnv env(rt::kDataTransferEnvVar, nullptr);
    EXPECT_EQ(rt::Program(2, o).data_transfer(),
              rt::DataTransferPolicy::Owner)
        << "unset env must yield the default policy";
  }
  {
    support::ScopedEnv env(rt::kDataTransferEnvVar, "off");
    EXPECT_EQ(rt::Program(2, o).data_transfer(), rt::DataTransferPolicy::Off);
  }
  {
    support::ScopedEnv env(rt::kDataTransferEnvVar, "ADAPTIVE");
    EXPECT_EQ(rt::Program(2, o).data_transfer(),
              rt::DataTransferPolicy::Adaptive);
  }
  {
    // A typo'd policy must fail loudly, naming the variable.
    support::ScopedEnv env(rt::kDataTransferEnvVar, "bogus");
    EXPECT_THROW(rt::Program(2, o), std::invalid_argument);
  }
  {
    // Explicit options beat the environment.
    support::ScopedEnv env(rt::kDataTransferEnvVar, "adaptive");
    rt::ProgramOptions explicit_off = o;
    explicit_off.data_transfer = rt::DataTransferMode::Off;
    EXPECT_EQ(rt::Program(2, explicit_off).data_transfer(),
              rt::DataTransferPolicy::Off);
  }
}

// ----------------------------------------------- scale_hint regression ----

TEST(ScaleHint, DataStaysNullUntilARealScale) {
  rt::Location loc(0, 0, 0);
  loc.scale_hint(1 << 20);
  EXPECT_EQ(loc.size(), 1u << 20) << "the comm matrix needs the size";
  EXPECT_EQ(loc.data(), nullptr) << "but nothing may be allocated";
  EXPECT_EQ(loc.as<double>(), nullptr);
  loc.scale(64);
  ASSERT_NE(loc.data(), nullptr);
  EXPECT_EQ(loc.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(loc.data()[i], std::byte{0});
  loc.scale_hint(128);  // back to hint-only: buffer must be dropped again
  EXPECT_EQ(loc.data(), nullptr);
  EXPECT_EQ(loc.size(), 128u);
}

TEST(ScaleHint, DryRunProgramExtractsSizesWithoutAllocating) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  o.dry_run = true;
  rt::Program prog(4, o);
  prog.set_task_body([](rt::TaskContext& ctx) {
    ctx.scale_hint(8u << 20);  // paper-scale location, never allocated
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    ASSERT_TRUE(ctx.dry_run());
  });
  prog.run();
  for (rt::TaskId t = 0; t < 4; ++t) {
    EXPECT_EQ(prog.graph().locations[t].bytes, 8u << 20);
    EXPECT_EQ(prog.location(t).data(), nullptr);
  }
}

TEST(ScaleHint, HugePagesEnvRequestsHugeBacking) {
  // ORWL_HUGEPAGES=1 routes large scales through the MAP_HUGETLB lane
  // (with transparent fallback — CI hosts have no hugetlb pool, so the
  // observable contract here is "usable zeroed buffer either way").
  support::ScopedEnv huge(topo::kHugePagesEnvVar, "1");
  rt::Location loc(0, 0, 0);
  const std::size_t hps = topo::MemBind::huge_page_size();
  const std::size_t bytes = hps > 0 ? hps : 1 << 20;
  loc.scale(bytes);
  ASSERT_NE(loc.data(), nullptr);
  EXPECT_EQ(loc.size(), bytes);
  EXPECT_EQ(loc.data()[0], std::byte{0});
  // Small locations never use huge pages, env or not.
  loc.scale(64);
  EXPECT_FALSE(loc.buffer().huge_pages());
}

// ------------------------------------------------------ owner binding ----

TEST(DataTransfer, OwnerBindingFollowsThePlacement) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  o.data_transfer = rt::DataTransferMode::Owner;
  rt::Program prog(4, o);
  prog.set_task_body([](rt::TaskContext& ctx) {
    ctx.scale(4096);
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    rt::Section sec(w);
    sec.as<int>()[0] = static_cast<int>(ctx.id());
  });
  prog.run();

  ASSERT_TRUE(prog.stats().affinity_applied);
  EXPECT_EQ(prog.stats().locations_bound, 4u);
  for (rt::TaskId t = 0; t < 4; ++t) {
    const int node = prog.placed_node_of_task(t);
    ASSERT_GE(node, 0) << "task " << t << " must be placed on a node";
    ASSERT_LT(node, 2);
    EXPECT_EQ(prog.location(t).home_node(), node);
    EXPECT_EQ(prog.location(t).memory_node(), node);
    EXPECT_EQ(prog.location(t).buffer().resident_node(), node)
        << "emulated residency must follow the placed node";
  }
}

TEST(DataTransfer, OffPolicyNeverTouchesBuffers) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  o.data_transfer = rt::DataTransferMode::Off;
  rt::Program prog(4, o);
  prog.set_task_body([](rt::TaskContext& ctx) {
    ctx.scale(4096);
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    rt::Section sec(w);
    sec.as<int>()[0] = 1;
  });
  prog.run();
  for (rt::TaskId t = 0; t < 4; ++t) {
    EXPECT_EQ(prog.location(t).memory_node(), topo::MemBind::kAnyNode);
  }
  EXPECT_EQ(prog.stats().data_transfers, 0u);
  EXPECT_EQ(prog.stats().locations_bound, 0u);
}

TEST(DataTransfer, RecomputeRebindsLocations) {
  // The dynamic API path: a program that ran without the affinity module
  // gets a placement afterwards — affinity_compute() must (re)bind every
  // location buffer, exactly like a re-placement at run time would.
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  o.affinity = rt::AffinityMode::Off;
  rt::Program prog(4, o);
  prog.set_task_body([](rt::TaskContext& ctx) {
    ctx.scale(4096);
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    rt::Section sec(w);
    sec.as<int>()[0] = 2;
  });
  prog.run();
  for (rt::TaskId t = 0; t < 4; ++t) {
    ASSERT_EQ(prog.location(t).memory_node(), topo::MemBind::kAnyNode)
        << "no placement yet => no binding";
  }

  prog.dependency_get();
  prog.affinity_compute();

  for (rt::TaskId t = 0; t < 4; ++t) {
    const int node = prog.placed_node_of_task(t);
    ASSERT_GE(node, 0);
    EXPECT_EQ(prog.location(t).memory_node(), node);
  }
}

TEST(DataTransfer, LiveInsertRoutesAndBindsTheLocation) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  rt::Program prog(4, o);
  std::atomic<int> seen{-1};
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(sizeof(int));
    rt::Handle w;  // plain handle: no reinsert, so the late read can win
    w.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    {
      rt::Section sec(w);
      sec.as<int>()[0] = static_cast<int>(ctx.id()) + 100;
    }
    if (ctx.id() == 0) {
      // Live insert after schedule (dynamic mode) on task 3's location.
      rt::Handle late;
      late.read_insert(ctx, ctx.location(3), 7);
      late.acquire();
      seen.store(late.read_map_as<int>()[0]);
      late.release();
    }
  });
  prog.run();
  EXPECT_EQ(seen.load(), 103);
  const int owner_node = prog.placed_node_of_task(3);
  ASSERT_GE(owner_node, 0);
  EXPECT_EQ(prog.location(3).memory_node(), owner_node)
      << "the live-inserted location must live on its owner's node";
}

// ------------------------------------------- grant-time data transfer ----

/// Harness around a bare Location + ControlPlane: drives one hand-off
/// through the control thread so the grant hook runs exactly once.
struct GrantHarness {
  explicit GrantHarness(rt::DataTransferPolicy policy) : cp(1) {
    loc.set_data_transfer(policy);
    loc.queue().set_grant_hook(loc.grant_hook());
    loc.queue().set_control_plane(&cp);
    loc.queue().set_acquire_timeout(30000);
    cp.start();
  }
  ~GrantHarness() { cp.stop(); }

  /// Acquire+release a first writer so the hand-off to a second, already
  /// queued writer goes through the control plane; wait for its grant.
  void drive_hand_off() {
    const rt::Ticket a = loc.queue().enqueue(rt::AccessMode::Write);
    const rt::Ticket b = loc.queue().enqueue(rt::AccessMode::Write);
    loc.queue().acquire(a);
    loc.queue().release(a);  // posts the hand-off event for b
    loc.queue().acquire(b);  // returns only after the control grant
    loc.queue().release(b);
  }

  rt::Location loc{0, 0, 0};
  rt::ControlPlane cp;
};

TEST(DataTransfer, AdaptiveFollowsConsistentWriters) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  ASSERT_EQ(h.loc.memory_node(), 0);

  // Two consecutive granted writers on node 1: the next hand-off must
  // migrate the buffer to node 1 before waking the grantee.
  h.loc.note_writer_node(1);
  h.loc.note_writer_node(1);
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), 1);
  EXPECT_GE(h.loc.data_transfers(), 1u);
}

TEST(DataTransfer, AdaptiveDoesNotBounceHomeOnAStrayWriter) {
  // Regression: once the buffer has followed the writers to node 1, a
  // single stray writer from node 2 makes the history inconsistent — the
  // pages must stay on node 1, not be yanked back to the home node just
  // to migrate out again two grants later.
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  h.loc.note_writer_node(1);
  h.loc.note_writer_node(1);
  h.drive_hand_off();
  ASSERT_EQ(h.loc.memory_node(), 1);
  const std::uint64_t settled = h.loc.data_transfers();
  h.loc.note_writer_node(2);  // stray writer: history now {2, 1}
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), 1) << "unsettled history must not move"
                                       " the pages";
  EXPECT_EQ(h.loc.data_transfers(), settled);
}

TEST(DataTransfer, AdaptiveRebindToUnchangedHomeKeepsWriterBinding) {
  // A re-placement that does not move the owner re-runs bind_home with
  // the same node; a buffer the writers already pulled to another node
  // must stay there (no home/writer ping-pong).
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  h.loc.note_writer_node(1);
  h.loc.note_writer_node(1);
  h.drive_hand_off();
  ASSERT_EQ(h.loc.memory_node(), 1);
  h.loc.bind_home(0);  // same home: must not undo the writer binding
  EXPECT_EQ(h.loc.memory_node(), 1);
  h.loc.bind_home(1);  // owner genuinely moved: migrate + reset history
  EXPECT_EQ(h.loc.memory_node(), 1);
  h.loc.bind_home(0);  // moved again; stale writer history must be gone
  EXPECT_EQ(h.loc.memory_node(), 0);
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), 0)
      << "cleared history must not re-trigger the old writer target";
}

TEST(DataTransfer, AdaptiveIgnoresASingleRemoteWriter) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  h.loc.note_writer_node(1);  // one-off remote writer: noise
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), 0) << "a single remote writer must not move"
                                       " the buffer off its home node";
}

TEST(DataTransfer, AdaptivePingPongWritersNeverMigrate) {
  // The decaying streak counter is the ping-pong defense: writers
  // alternating between two nodes never accumulate K consecutive grants
  // on one node, so the buffer stays parked on its home node instead of
  // bouncing with every phase.
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  for (int round = 0; round < 8; ++round) {
    h.loc.note_writer_node(1 + round % 2);  // 1, 2, 1, 2, ...
    h.drive_hand_off();
    ASSERT_EQ(h.loc.memory_node(), 0) << "round " << round;
  }
  EXPECT_EQ(h.loc.data_transfers(), 0u);
}

TEST(DataTransfer, AdaptiveHysteresisThresholdIsConfigurable) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  {
    // K = 1: chase every placed writer immediately.
    GrantHarness h(rt::DataTransferPolicy::Adaptive);
    h.loc.set_transfer_hysteresis(1);
    h.loc.scale(1 << 14);
    h.loc.bind_home(0);
    h.loc.note_writer_node(1);
    h.drive_hand_off();
    EXPECT_EQ(h.loc.memory_node(), 1);
  }
  {
    // K = 3: two consecutive remote writers are still not enough.
    GrantHarness h(rt::DataTransferPolicy::Adaptive);
    h.loc.set_transfer_hysteresis(3);
    h.loc.scale(1 << 14);
    h.loc.bind_home(0);
    h.loc.note_writer_node(1);
    h.loc.note_writer_node(1);
    h.drive_hand_off();
    EXPECT_EQ(h.loc.memory_node(), 0);
    h.loc.note_writer_node(1);  // third consecutive: migrate
    h.drive_hand_off();
    EXPECT_EQ(h.loc.memory_node(), 1);
  }
}

TEST(DataTransfer, AdaptiveSettledPhaseSwitchesAfterDecay) {
  // A long settled phase on node 1, then the writer set moves to node 2
  // for good: the saturated streak must decay away and the buffer follow
  // the new phase after a bounded number of grants (no sticky-forever).
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Adaptive);
  h.loc.scale(1 << 14);
  h.loc.bind_home(0);
  for (int i = 0; i < 10; ++i) h.loc.note_writer_node(1);
  h.drive_hand_off();
  ASSERT_EQ(h.loc.memory_node(), 1);
  int moved_after = -1;
  for (int i = 0; i < 10; ++i) {
    h.loc.note_writer_node(2);
    h.drive_hand_off();
    if (h.loc.memory_node() == 2) {
      moved_after = i + 1;
      break;
    }
  }
  EXPECT_GT(moved_after, 2) << "a phase switch needs more evidence than "
                               "the hysteresis threshold alone";
  EXPECT_LE(moved_after, 6) << "the streak must decay within log2(cap)+K "
                               "grants";
}

TEST(DataTransfer, HysteresisResolvedFromOptionsAndEnv) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;
  {
    support::ScopedEnv env(rt::kDataTransferHysteresisEnvVar, nullptr);
    rt::Program prog(2, o);
    EXPECT_EQ(prog.location(0).transfer_hysteresis(), 2u)
        << "unset env must yield the default threshold";
  }
  {
    support::ScopedEnv env(rt::kDataTransferHysteresisEnvVar, "5");
    rt::Program prog(2, o);
    EXPECT_EQ(prog.location(0).transfer_hysteresis(), 5u);
  }
  {
    // Explicit options beat the environment.
    support::ScopedEnv env(rt::kDataTransferHysteresisEnvVar, "5");
    rt::ProgramOptions explicit_k = o;
    explicit_k.data_transfer_hysteresis = 3;
    rt::Program prog(2, explicit_k);
    EXPECT_EQ(prog.location(0).transfer_hysteresis(), 3u);
  }
}

TEST(DataTransfer, OwnerPolicyRestoresDriftedBuffers) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Owner);
  h.loc.scale(1 << 14);
  h.loc.bind_home(1);
  h.loc.buffer().bind_to(0);  // drift the buffer off its home
  ASSERT_EQ(h.loc.memory_node(), 0);
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), 1) << "grant-time fix-up must restore the"
                                       " owner binding";
  EXPECT_GE(h.loc.data_transfers(), 1u);
}

TEST(DataTransfer, OffPolicyHookIsInert) {
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  GrantHarness h(rt::DataTransferPolicy::Off);
  h.loc.scale(1 << 14);
  h.loc.bind_home(1);  // records the home but must not bind under Off
  h.loc.note_writer_node(0);
  h.loc.note_writer_node(0);
  h.drive_hand_off();
  EXPECT_EQ(h.loc.memory_node(), topo::MemBind::kAnyNode);
  EXPECT_EQ(h.loc.data_transfers(), 0u);
}

TEST(DataTransfer, AdaptiveEndToEndUnderContention) {
  // Four tasks on a 2-node fixture, all writing the same location through
  // iterative handles: migrations happen concurrently with grants, parks
  // and releases. Mostly a TSan/ASan target; the semantic assertions are
  // that every iteration ran and the final buffer binding is a real node.
  support::ScopedEnv emu(topo::kMemBindEnvVar, "emulate");
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  rt::ProgramOptions o = fixture_opts(machine);
  o.data_transfer = rt::DataTransferMode::Adaptive;
  o.control_threads = 2;
  constexpr int kIters = 50;
  rt::Program prog(4, o);
  prog.set_task_body([&](rt::TaskContext& ctx) {
    if (ctx.id() == 0) ctx.scale(sizeof(long));
    rt::Handle2 w;
    w.write_insert(ctx, ctx.location(0), ctx.id());
    ctx.schedule();
    for (int it = 0; it < kIters; ++it) {
      rt::Section sec(w);
      sec.as<long>()[0] += 1;
    }
  });
  prog.run();
  EXPECT_EQ(prog.location(0).as<long>()[0], 4L * kIters);
  const int node = prog.location(0).memory_node();
  EXPECT_TRUE(node == 0 || node == 1) << node;
}

}  // namespace
