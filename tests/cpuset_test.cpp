#include <gtest/gtest.h>

#include "topo/cpuset.hpp"

namespace {

using orwl::topo::CpuSet;

TEST(CpuSet, DefaultIsEmpty) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.first(), -1);
  EXPECT_EQ(s.last(), -1);
}

TEST(CpuSet, SetTestClear) {
  CpuSet s;
  s.set(5);
  s.set(64);  // crosses the word boundary
  s.set(200);
  EXPECT_TRUE(s.test(5));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(200));
  EXPECT_FALSE(s.test(6));
  EXPECT_EQ(s.count(), 3u);
  s.clear(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(CpuSet, FirstLast) {
  CpuSet s{70, 3, 128};
  EXPECT_EQ(s.first(), 3);
  EXPECT_EQ(s.last(), 128);
}

TEST(CpuSet, RangeFactory) {
  const auto s = CpuSet::range(4, 7);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.test(4));
  EXPECT_TRUE(s.test(7));
  EXPECT_FALSE(s.test(3));
  EXPECT_FALSE(s.test(8));
}

TEST(CpuSet, RangeRejectsBadBounds) {
  EXPECT_THROW(CpuSet::range(5, 4), std::invalid_argument);
  EXPECT_THROW(CpuSet::range(-1, 4), std::invalid_argument);
}

TEST(CpuSet, SingleFactory) {
  const auto s = CpuSet::single(9);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(9));
}

TEST(CpuSet, ParseList) {
  const auto s = CpuSet::parse("0-3,8,10-11");
  EXPECT_EQ(s.to_vector(), (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(CpuSet, ParseSingleValue) {
  EXPECT_EQ(CpuSet::parse("7").to_vector(), (std::vector<int>{7}));
}

TEST(CpuSet, ParseEmptyIsEmptySet) {
  EXPECT_TRUE(CpuSet::parse("").empty());
}

TEST(CpuSet, ParseRejectsMalformed) {
  EXPECT_THROW(CpuSet::parse("a-b"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("3-1"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1,,2"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1,"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1;2"), std::invalid_argument);
}

TEST(CpuSet, RoundTripListString) {
  const char* cases[] = {"0-3,8,10-11", "0", "5-9", "1,3,5"};
  for (const char* c : cases) {
    EXPECT_EQ(CpuSet::parse(c).to_list_string(), c) << c;
  }
}

TEST(CpuSet, UnionIntersectionDifference) {
  const auto a = CpuSet::parse("0-5");
  const auto b = CpuSet::parse("4-8");
  EXPECT_EQ((a | b).to_list_string(), "0-8");
  EXPECT_EQ((a & b).to_list_string(), "4-5");
  EXPECT_EQ((a - b).to_list_string(), "0-3");
}

TEST(CpuSet, EqualityIsCanonical) {
  CpuSet a;
  a.set(100);
  a.clear(100);  // leaves trailing words trimmed
  EXPECT_EQ(a, CpuSet{});
  EXPECT_EQ(CpuSet::parse("1-2"), (CpuSet{1, 2}));
}

TEST(CpuSet, NegativeSetThrows) {
  CpuSet s;
  EXPECT_THROW(s.set(-1), std::invalid_argument);
}

TEST(CpuSet, TestOutOfRangeIsFalse) {
  CpuSet s{1};
  EXPECT_FALSE(s.test(100000));
  EXPECT_FALSE(s.test(-5));
}

}  // namespace
