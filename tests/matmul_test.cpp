#include <gtest/gtest.h>

#include "apps/matmul.hpp"

namespace {

using namespace orwl::apps;

orwl::rt::ProgramOptions quiet() {
  orwl::rt::ProgramOptions o;
  o.affinity = orwl::rt::AffinityMode::Off;
  o.acquire_timeout_ms = 30000;
  return o;
}

void expect_close(const std::vector<double>& a,
                  const std::vector<double>& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "element " << i;
  }
}

TEST(Matmul, GenerateValidates) {
  EXPECT_THROW(MatmulProblem::generate(0), std::invalid_argument);
  const auto p = MatmulProblem::generate(8);
  EXPECT_EQ(p.a.size(), 64u);
  EXPECT_EQ(p.c.size(), 64u);
}

struct MatmulCase {
  std::size_t n, tasks;
};

class MatmulOrwlTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulOrwlTest, MatchesSequential) {
  const auto [n, tasks] = GetParam();
  auto seq = MatmulProblem::generate(n);
  auto par = MatmulProblem::generate(n);
  matmul_sequential(seq);
  matmul_orwl(par, tasks, quiet());
  expect_close(seq.c, par.c);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulOrwlTest,
    ::testing::Values(MatmulCase{8, 1}, MatmulCase{8, 2}, MatmulCase{8, 4},
                      MatmulCase{16, 4}, MatmulCase{24, 3},
                      MatmulCase{32, 8}, MatmulCase{48, 6},
                      MatmulCase{64, 16}));

TEST(Matmul, OrwlRejectsBadTaskCount) {
  auto p = MatmulProblem::generate(8);
  EXPECT_THROW(matmul_orwl(p, 0, quiet()), std::invalid_argument);
  EXPECT_THROW(matmul_orwl(p, 3, quiet()), std::invalid_argument);  // 8 % 3
}

TEST(Matmul, ForkJoinMatchesSequential) {
  auto seq = MatmulProblem::generate(32);
  auto par = MatmulProblem::generate(32);
  matmul_sequential(seq);
  orwl::pool::ThreadPool pool(4);
  matmul_forkjoin(par, pool);
  expect_close(seq.c, par.c);
}

TEST(Matmul, OrwlWithAffinityEnabledStillCorrect) {
  auto seq = MatmulProblem::generate(16);
  auto par = MatmulProblem::generate(16);
  matmul_sequential(seq);
  orwl::rt::ProgramOptions o;
  o.affinity = orwl::rt::AffinityMode::On;
  o.acquire_timeout_ms = 30000;
  matmul_orwl(par, 4, o);
  expect_close(seq.c, par.c);
}

TEST(Matmul, CommMatrixIsRing) {
  const auto m = matmul_comm_matrix(32, 8);
  ASSERT_EQ(m.order(), 8u);
  const double slot_bytes = 32.0 * 4.0 * 8.0;  // n * nb * sizeof(double)
  for (std::size_t t = 0; t < 8; ++t) {
    // Ring edge to the successor.
    EXPECT_DOUBLE_EQ(m.at(t, (t + 1) % 8), slot_bytes) << "edge " << t;
  }
  // No chords.
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 5), 0.0);
}

TEST(Matmul, CommMatrixSingleTask) {
  const auto m = matmul_comm_matrix(8, 1);
  EXPECT_EQ(m.order(), 1u);
  EXPECT_DOUBLE_EQ(m.total_volume(), 0.0);
}

}  // namespace
