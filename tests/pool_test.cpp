#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "pool/thread_pool.hpp"
#include "topo/binding.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl::pool;
using orwl::tm::Strategy;

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SizeCountsMaster) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksAreContiguousAndStatic) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> chunks;
  pool.parallel_chunks(0, 10, [&](std::size_t tid, std::size_t b,
                                  std::size_t e) {
    std::unique_lock lock(mu);
    chunks.push_back({tid, b, e});
  });
  ASSERT_EQ(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  // OpenMP static: 10 over 3 threads -> 4,3,3.
  EXPECT_EQ(chunks[0], (std::array<std::size_t, 3>{0, 0, 4}));
  EXPECT_EQ(chunks[1], (std::array<std::size_t, 3>{1, 4, 7}));
  EXPECT_EQ(chunks[2], (std::array<std::size_t, 3>{2, 7, 10}));
}

TEST(ThreadPool, ParallelRunsEveryThreadOnce) {
  ThreadPool pool(6);
  std::mutex mu;
  std::set<std::size_t> tids;
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    tids.insert(tid);
  });
  EXPECT_EQ(tids.size(), 6u);
  EXPECT_TRUE(tids.count(0));  // master participates
}

TEST(ThreadPool, MultipleRegionsReuseWorkers) {
  ThreadPool pool(4);
  long sum = 0;
  std::mutex mu;
  for (int r = 0; r < 10; ++r) {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      std::unique_lock lock(mu);
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum, 10 * 4950);
  EXPECT_EQ(pool.regions(), 10u);
}

TEST(ThreadPool, BindingCompactCores) {
  const int ncpu = orwl::topo::host_cpu_count();
  const std::size_t n = std::min(4, ncpu);
  PoolOptions opts;
  opts.strategy = Strategy::CompactCores;
  ThreadPool pool(n, opts);
  // Threads must observe their assigned CPU.
  std::mutex mu;
  std::vector<int> cpu_of(n, -1);
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    cpu_of[tid] = orwl::topo::current_cpu();
  });
  for (std::size_t t = 0; t < n; ++t) {
    if (pool.bindings()[t] >= 0) {
      EXPECT_EQ(cpu_of[t], pool.bindings()[t]) << "thread " << t;
    }
  }
}

TEST(ThreadPool, NoneStrategyLeavesUnbound) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.bindings(), (std::vector<int>{-1, -1}));
}

TEST(ThreadPool, ScatterStrategyOnSyntheticTopologyWithoutBinding) {
  const auto t = orwl::topo::make_smp20e7();
  PoolOptions opts;
  opts.strategy = Strategy::ScatterCores;
  opts.topology = &t;
  opts.bind_threads = false;  // synthetic machine, no real binding
  ThreadPool pool(8, opts);
  // 8 threads scattered over 20 NUMA nodes: all on distinct nodes.
  std::set<int> nodes;
  for (int pu : pool.bindings()) {
    ASSERT_GE(pu, 0);
    nodes.insert(pu / 8);
  }
  EXPECT_EQ(nodes.size(), 8u);
}

TEST(ThreadPool, ExceptionSafetyNestedWork) {
  // The pool must survive heavy nested usage patterns.
  ThreadPool pool(4);
  std::atomic<long> acc{0};
  pool.parallel_for(0, 64, [&](std::size_t i) {
    acc.fetch_add(static_cast<long>(i % 7));
  });
  pool.parallel_for(0, 64, [&](std::size_t i) {
    acc.fetch_add(static_cast<long>(i % 3));
  });
  EXPECT_GT(acc.load(), 0);
}

}  // namespace
