#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>

#include "pool/thread_pool.hpp"
#include "support/env.hpp"
#include "topo/binding.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl::pool;
using orwl::tm::Strategy;

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SizeCountsMaster) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksAreContiguousAndStatic) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> chunks;
  pool.parallel_chunks(0, 10, [&](std::size_t tid, std::size_t b,
                                  std::size_t e) {
    std::unique_lock lock(mu);
    chunks.push_back({tid, b, e});
  });
  ASSERT_EQ(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  // OpenMP static: 10 over 3 threads -> 4,3,3.
  EXPECT_EQ(chunks[0], (std::array<std::size_t, 3>{0, 0, 4}));
  EXPECT_EQ(chunks[1], (std::array<std::size_t, 3>{1, 4, 7}));
  EXPECT_EQ(chunks[2], (std::array<std::size_t, 3>{2, 7, 10}));
}

TEST(ThreadPool, ParallelRunsEveryThreadOnce) {
  ThreadPool pool(6);
  std::mutex mu;
  std::set<std::size_t> tids;
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    tids.insert(tid);
  });
  EXPECT_EQ(tids.size(), 6u);
  EXPECT_TRUE(tids.count(0));  // master participates
}

TEST(ThreadPool, MultipleRegionsReuseWorkers) {
  ThreadPool pool(4);
  long sum = 0;
  std::mutex mu;
  for (int r = 0; r < 10; ++r) {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      std::unique_lock lock(mu);
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum, 10 * 4950);
  EXPECT_EQ(pool.regions(), 10u);
}

TEST(ThreadPool, BindingCompactCores) {
  const int ncpu = orwl::topo::host_cpu_count();
  const std::size_t n = std::min(4, ncpu);
  PoolOptions opts;
  opts.strategy = Strategy::CompactCores;
  ThreadPool pool(n, opts);
  // Threads must observe their assigned CPU.
  std::mutex mu;
  std::vector<int> cpu_of(n, -1);
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    cpu_of[tid] = orwl::topo::current_cpu();
  });
  for (std::size_t t = 0; t < n; ++t) {
    if (pool.bindings()[t] >= 0) {
      EXPECT_EQ(cpu_of[t], pool.bindings()[t]) << "thread " << t;
    }
  }
}

TEST(ThreadPool, NoneStrategyLeavesUnbound) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.bindings(), (std::vector<int>{-1, -1}));
}

TEST(ThreadPool, ScatterStrategyOnSyntheticTopologyWithoutBinding) {
  const auto t = orwl::topo::make_smp20e7();
  PoolOptions opts;
  opts.strategy = Strategy::ScatterCores;
  opts.topology = &t;
  opts.bind_threads = false;  // synthetic machine, no real binding
  ThreadPool pool(8, opts);
  // 8 threads scattered over 20 NUMA nodes: all on distinct nodes.
  std::set<int> nodes;
  for (int pu : pool.bindings()) {
    ASSERT_GE(pu, 0);
    nodes.insert(pu / 8);
  }
  EXPECT_EQ(nodes.size(), 8u);
}

TEST(ThreadPool, ThrowingMasterDrainsRegionAndPoolSurvives) {
  // Regression: the master's exception used to propagate before done_cv_
  // was waited on, leaving working_ > 0 and the pool corrupt for the next
  // region (the next run_region's wait saw a stale count and deadlocked).
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel([](std::size_t tid) {
                 if (tid == 0) throw std::runtime_error("master boom");
               }),
               std::runtime_error);
  // The pool must be fully reusable after the throwing region.
  std::atomic<int> runs{0};
  pool.parallel([&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 4);
  EXPECT_EQ(pool.regions(), 2u);
}

TEST(ThreadPool, ThrowingWorkerPropagatesToCaller) {
  ThreadPool pool(4);
  // parallel_for gives the last chunk to a worker thread; its exception
  // must surface on the calling thread once the region has drained.
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 99) {
                                     throw std::runtime_error("worker boom");
                                   }
                                 }),
               std::runtime_error);
  std::atomic<int> runs{0};
  pool.parallel([&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 4);
}

TEST(ThreadPool, RepeatedThrowingRegionsDoNotCorruptThePool) {
  ThreadPool pool(3);
  for (int r = 0; r < 10; ++r) {
    EXPECT_THROW(
        pool.parallel([](std::size_t) { throw std::logic_error("boom"); }),
        std::logic_error);
  }
  long sum = 0;
  std::mutex mu;
  pool.parallel_for(0, 100, [&](std::size_t i) {
    std::unique_lock lock(mu);
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, BindingsStableImmediatelyAfterConstruction) {
  // Regression: workers used to be bound from the constructor thread
  // *after* std::thread had started them (first instructions on an
  // arbitrary PU, bindings_[w] written racily). With the startup
  // handshake the worker binds itself and bindings() is final once the
  // constructor returns — the very first region already observes it.
  const int ncpu = orwl::topo::host_cpu_count();
  const std::size_t n = std::min<std::size_t>(4, ncpu);
  PoolOptions opts;
  opts.strategy = Strategy::CompactCores;
  ThreadPool pool(n, opts);
  const std::vector<int> at_ctor = pool.bindings();
  std::mutex mu;
  std::vector<int> first_cpu(n, -1);
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    first_cpu[tid] = orwl::topo::current_cpu();
  });
  EXPECT_EQ(pool.bindings(), at_ctor);
  for (std::size_t t = 0; t < n; ++t) {
    if (at_ctor[t] >= 0) {
      EXPECT_EQ(first_cpu[t], at_ctor[t]) << "thread " << t;
    }
  }
}

TEST(ThreadPool, WorkerSelfBindingUnderTopologyFixture) {
  // Same handshake, exercised through the ORWL_TOPOLOGY fixture override:
  // detection yields a flat fixture whose PU os indices are real host
  // CPUs, so the workers' self-binding goes through the actual
  // sched_setaffinity path and is observable on the first job.
  const int ncpu = orwl::topo::host_cpu_count();
  const std::string spec = "flat:" + std::to_string(ncpu);
  orwl::support::ScopedEnv fixture("ORWL_TOPOLOGY", spec.c_str());
  const std::size_t n = std::min<std::size_t>(4, ncpu);
  PoolOptions opts;
  opts.strategy = Strategy::CompactCores;
  ThreadPool pool(n, opts);
  std::mutex mu;
  std::vector<int> first_cpu(n, -1);
  pool.parallel([&](std::size_t tid) {
    std::unique_lock lock(mu);
    first_cpu[tid] = orwl::topo::current_cpu();
  });
  for (std::size_t t = 0; t < n; ++t) {
    // A restricted cpuset (container/taskset) may forbid CPU t; the
    // handshake then records -1. Where the bind stuck, the first job
    // must already observe it.
    if (pool.bindings()[t] >= 0) {
      EXPECT_EQ(pool.bindings()[t], static_cast<int>(t)) << "thread " << t;
      EXPECT_EQ(first_cpu[t], pool.bindings()[t]) << "thread " << t;
    }
  }
}

TEST(ThreadPool, ExceptionSafetyNestedWork) {
  // The pool must survive heavy nested usage patterns.
  ThreadPool pool(4);
  std::atomic<long> acc{0};
  pool.parallel_for(0, 64, [&](std::size_t i) {
    acc.fetch_add(static_cast<long>(i % 7));
  });
  pool.parallel_for(0, 64, [&](std::size_t i) {
    acc.fetch_add(static_cast<long>(i % 3));
  });
  EXPECT_GT(acc.load(), 0);
}

}  // namespace
