// Cross-module integration tests: the patterns the applications rely on,
// exercised end to end through the public API.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "affinity/affinity.hpp"
#include "apps/lk23.hpp"
#include "apps/matmul.hpp"
#include "apps/workloads.hpp"
#include "orwl/orwl.hpp"
#include "sim/simulator.hpp"
#include "topo/machines.hpp"
#include "topo/serialize.hpp"
#include "treematch/strategies.hpp"

namespace {

using namespace orwl;

rt::ProgramOptions quiet() {
  rt::ProgramOptions o;
  o.affinity = rt::AffinityMode::Off;
  o.acquire_timeout_ms = 30000;
  return o;
}

// ----------------------------------------------------- lag semantics ----

TEST(Integration, Handle2LagPatternDeliversPreviousIteration) {
  // The LK23 "lagged halo" idiom: ordering the reader before the writer
  // in the initial FIFO makes read cycle c observe write cycle c-1, with
  // the location's initial content at cycle 0.
  constexpr int kIters = 6;
  std::vector<long> observed;

  rt::Program prog(2, quiet());
  prog.set_task_body(0, [&](rt::TaskContext& ctx) {  // writer
    ctx.scale(sizeof(long));
    ctx.my_location().as<long>()[0] = -1;  // initial content
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 1);  // writer second
    ctx.schedule();
    for (long it = 0; it < kIters; ++it) {
      rt::Section sec(w);
      *sec.as<long>() = it;
    }
  });
  prog.set_task_body(1, [&](rt::TaskContext& ctx) {  // lagged reader
    rt::Handle2 r;
    r.read_insert(ctx, ctx.location(0), 0);  // reader first
    ctx.schedule();
    for (int it = 0; it < kIters; ++it) {
      rt::Section sec(r);
      observed.push_back(*sec.as_const<long>());
    }
  });
  prog.run();

  ASSERT_EQ(observed.size(), static_cast<std::size_t>(kIters));
  EXPECT_EQ(observed[0], -1) << "first read must see the initial value";
  for (int it = 1; it < kIters; ++it) {
    EXPECT_EQ(observed[static_cast<std::size_t>(it)], it - 1)
        << "read cycle " << it << " must see write cycle " << it - 1;
  }
}

TEST(Integration, SameIterationPatternDeliversCurrentIteration) {
  constexpr int kIters = 6;
  std::vector<long> observed;

  rt::Program prog(2, quiet());
  prog.set_task_body(0, [&](rt::TaskContext& ctx) {
    ctx.scale(sizeof(long));
    rt::Handle2 w;
    w.write_insert(ctx, ctx.my_location(), 0);  // writer first
    ctx.schedule();
    for (long it = 0; it < kIters; ++it) {
      rt::Section sec(w);
      *sec.as<long>() = it * 10;
    }
  });
  prog.set_task_body(1, [&](rt::TaskContext& ctx) {
    rt::Handle2 r;
    r.read_insert(ctx, ctx.location(0), 1);
    ctx.schedule();
    for (int it = 0; it < kIters; ++it) {
      rt::Section sec(r);
      observed.push_back(*sec.as_const<long>());
    }
  });
  prog.run();

  for (int it = 0; it < kIters; ++it) {
    EXPECT_EQ(observed[static_cast<std::size_t>(it)], it * 10);
  }
}

// -------------------------------------------------- dynamic rewiring ----

TEST(Integration, LiveInsertChangesMatrixAndPlacement) {
  // Sec. IV-B: "to handle dynamic situations where ... the affinity
  // between tasks change at run time". A task wires a new heavy edge
  // after schedule; dependency_get must pick it up.
  const topo::Topology machine = topo::make_numa(2, 4, 1);
  rt::ProgramOptions o = quiet();
  o.topology = &machine;
  o.bind_threads = false;
  o.control_threads = 0;
  rt::Program prog(4, o);

  std::atomic<bool> rewired{false};
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(1024);
    rt::Handle own;
    own.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    { rt::Section s(own); }

    if (ctx.id() == 0) {
      // Before rewiring: no cross-task volume at all.
      ctx.program().dependency_get();
      EXPECT_DOUBLE_EQ(ctx.program().comm_matrix().total_volume(), 0.0);

      // New dependency appears at runtime: task 0 starts reading task
      // 3's location.
      rt::Handle late;
      late.read_insert(ctx, ctx.location(3), 7);
      ctx.program().dependency_get();
      EXPECT_DOUBLE_EQ(ctx.program().comm_matrix().at(0, 3), 1024.0);
      ctx.program().affinity_compute();
      { rt::Section s(late); }
      rewired.store(true);
    }
  });
  prog.run();
  EXPECT_TRUE(rewired.load());
  // The recomputed placement pairs tasks 0 and 3 on one NUMA node.
  const auto& pl = prog.placement();
  const auto* a = machine.pu_by_os_index(pl.compute_pu[0]);
  const auto* b = machine.pu_by_os_index(pl.compute_pu[3]);
  EXPECT_NE(machine.common_ancestor(*a, *b)->type, topo::ObjType::Machine);
}

// ------------------------------------- serialized topology placement ----

TEST(Integration, PlacementOnParsedTopologyMatchesOriginal) {
  // Save/load a machine description, then verify Algorithm 1 produces
  // the identical placement on the parsed copy.
  const topo::Topology original = topo::make_smp12e5();
  const topo::Topology parsed =
      topo::parse_topology(topo::serialize(original));

  tm::CommMatrix ring(24);
  for (std::size_t i = 0; i < 24; ++i) ring.add(i, (i + 1) % 24, 1e6);
  tm::Options opts;
  opts.num_control_threads = 6;

  const tm::Placement p1 = tm::tree_match(original, ring, opts);
  const tm::Placement p2 = tm::tree_match(parsed, ring, opts);
  EXPECT_EQ(p1.compute_pu, p2.compute_pu);
  EXPECT_EQ(p1.control_pu, p2.control_pu);
  EXPECT_EQ(p1.control_policy, p2.control_policy);
}

// ----------------------------------------- multi-location programs ------

TEST(Integration, MultipleLocationsPerTaskIndependentQueues) {
  // Two independent channels between the same pair of tasks must not
  // serialize each other.
  constexpr int kIters = 20;
  rt::ProgramOptions o = quiet();
  o.locations_per_task = 2;
  rt::Program prog(2, o);
  std::array<long, 2> sums{};

  prog.set_task_body(0, [&](rt::TaskContext& ctx) {
    ctx.scale(sizeof(long), 0);
    ctx.scale(sizeof(long), 1);
    rt::Handle2 w0, w1;
    w0.write_insert(ctx, ctx.my_location(0), 0);
    w1.write_insert(ctx, ctx.my_location(1), 0);
    ctx.schedule();
    for (long it = 0; it < kIters; ++it) {
      {
        rt::Section s(w0);
        *s.as<long>() = it;
      }
      {
        rt::Section s(w1);
        *s.as<long>() = 100 + it;
      }
    }
  });
  prog.set_task_body(1, [&](rt::TaskContext& ctx) {
    rt::Handle2 r0, r1;
    r0.read_insert(ctx, ctx.location(0, 0), 1);
    r1.read_insert(ctx, ctx.location(0, 1), 1);
    ctx.schedule();
    for (int it = 0; it < kIters; ++it) {
      {
        rt::Section s(r0);
        sums[0] += *s.as_const<long>();
      }
      {
        rt::Section s(r1);
        sums[1] += *s.as_const<long>();
      }
    }
  });
  prog.run();
  EXPECT_EQ(sums[0], kIters * (kIters - 1) / 2);
  EXPECT_EQ(sums[1], 100 * kIters + kIters * (kIters - 1) / 2);
}

// --------------------------------- simulator monotonicity properties ----

struct MonotonicCase {
  const char* machine;
  std::size_t threads;
};

class SimMonotonicTest : public ::testing::TestWithParam<MonotonicCase> {};

TEST_P(SimMonotonicTest, AffinityNeverLosesToOsScheduling) {
  const auto& c = GetParam();
  const sim::MachineModel m = std::string(c.machine) == "smp12e5"
                                  ? sim::MachineModel::smp12e5()
                                  : sim::MachineModel::smp20e7();
  const sim::Workload w =
      apps::lk23_orwl_workload(8192, 10, c.threads);
  tm::Options opts;
  opts.num_control_threads = w.control_threads;
  const auto bound = sim::simulate(
      m, w, sim::BindSpec::bound(tm::tree_match(m.topology, w.comm, opts)));
  const auto os = sim::simulate(m, w, sim::BindSpec::os_scheduled());
  EXPECT_LE(bound.seconds, os.seconds * 1.05)
      << "placed execution must not lose to the OS scheduler";
  EXPECT_DOUBLE_EQ(bound.counters.cpu_migrations, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimMonotonicTest,
    ::testing::Values(MonotonicCase{"smp12e5", 16},
                      MonotonicCase{"smp12e5", 32},
                      MonotonicCase{"smp12e5", 64},
                      MonotonicCase{"smp12e5", 96},
                      MonotonicCase{"smp20e7", 16},
                      MonotonicCase{"smp20e7", 64},
                      MonotonicCase{"smp20e7", 128}),
    [](const auto& info) {
      return std::string(info.param.machine) + "_" +
             std::to_string(info.param.threads);
    });

// ------------------------------------------------ matrix determinism ----

TEST(Integration, ExtractedMatricesAreDeterministic) {
  const auto m1 = apps::lk23_ops_comm_matrix(258, 2, 2);
  const auto m2 = apps::lk23_ops_comm_matrix(258, 2, 2);
  EXPECT_EQ(m1, m2);
  const auto v1 = apps::matmul_comm_matrix(64, 8);
  const auto v2 = apps::matmul_comm_matrix(64, 8);
  EXPECT_EQ(v1, v2);
}

}  // namespace
