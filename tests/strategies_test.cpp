#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/machines.hpp"
#include "treematch/strategies.hpp"

namespace {

using namespace orwl::tm;
using namespace orwl::topo;

TEST(Strategies, NoneLeavesAllUnbound) {
  const Topology t = make_numa(2, 4, 1);
  const Placement p = place_strategy(Strategy::None, t, 5);
  ASSERT_EQ(p.compute_pu.size(), 5u);
  for (int pu : p.compute_pu) EXPECT_EQ(pu, -1);
}

TEST(Strategies, CompactFillsPusInOsOrder) {
  const Topology t = make_numa(2, 2, 2);  // 8 PUs
  const Placement p = place_strategy(Strategy::Compact, t, 4);
  EXPECT_EQ(p.compute_pu, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Strategies, CompactUsesHyperthreadSiblingsFirst) {
  // On the HT machine, compact packs both PUs of core 0 before core 1 -
  // the behavior the paper blames for MKL-compact's poor compute-bound
  // performance.
  const Topology t = make_numa(2, 2, 2);
  const Placement p = place_strategy(Strategy::Compact, t, 2);
  const Object* a = t.pu_by_os_index(p.compute_pu[0]);
  const Object* b = t.pu_by_os_index(p.compute_pu[1]);
  EXPECT_EQ(a->parent, b->parent) << "expected hyperthread siblings";
}

TEST(Strategies, CompactCoresUsesOnePuPerCore) {
  const Topology t = make_numa(2, 2, 2);
  const Placement p = place_strategy(Strategy::CompactCores, t, 4);
  std::set<const Object*> used_cores;
  for (int pu : p.compute_pu) {
    const Object* o = t.pu_by_os_index(pu);
    used_cores.insert(o->ancestor_of_type(ObjType::Core));
  }
  EXPECT_EQ(used_cores.size(), 4u);
}

TEST(Strategies, CompactCoresStaysOnFirstNodeWhenPossible) {
  const Topology t = make_numa(2, 4, 1);
  const Placement p = place_strategy(Strategy::CompactCores, t, 4);
  for (int pu : p.compute_pu) {
    const Object* o = t.pu_by_os_index(pu);
    EXPECT_EQ(o->ancestor_of_type(ObjType::NumaNode)->logical_index, 0);
  }
}

TEST(Strategies, ScatterSpreadsAcrossNumaNodesFirst) {
  const Topology t = make_numa(4, 4, 1);
  const Placement p = place_strategy(Strategy::Scatter, t, 4);
  std::set<int> nodes;
  for (int pu : p.compute_pu) {
    const Object* o = t.pu_by_os_index(pu);
    nodes.insert(o->ancestor_of_type(ObjType::NumaNode)->logical_index);
  }
  EXPECT_EQ(nodes.size(), 4u) << "4 threads must land on 4 distinct nodes";
}

TEST(Strategies, ScatterBalancesLoadAcrossNodes) {
  const Topology t = make_numa(4, 4, 1);
  const Placement p = place_strategy(Strategy::Scatter, t, 8);
  std::map<int, int> per_node;
  for (int pu : p.compute_pu) {
    const Object* o = t.pu_by_os_index(pu);
    per_node[o->ancestor_of_type(ObjType::NumaNode)->logical_index]++;
  }
  for (const auto& [node, n] : per_node) EXPECT_EQ(n, 2) << "node " << node;
}

TEST(Strategies, ScatterCoresAvoidsHyperthreadSiblings) {
  const Topology t = make_numa(2, 2, 2);
  const Placement p = place_strategy(Strategy::ScatterCores, t, 4);
  std::set<const Object*> cores;
  for (int pu : p.compute_pu) {
    const Object* o = t.pu_by_os_index(pu);
    // Each thread on the first PU of a distinct core.
    EXPECT_EQ(o->parent->children.front().get(), o);
    cores.insert(o->parent);
  }
  EXPECT_EQ(cores.size(), 4u);
}

TEST(Strategies, OversubscriptionWrapsRoundRobin) {
  const Topology t = make_numa(1, 2, 1);  // 2 PUs
  const Placement p = place_strategy(Strategy::Compact, t, 5);
  EXPECT_TRUE(p.oversubscribed);
  EXPECT_EQ(p.compute_pu, (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(Strategies, TreeMatchRequiresMatrix) {
  const Topology t = make_numa(2, 2, 1);
  EXPECT_THROW(place_strategy(Strategy::TreeMatch, t, 4),
               std::invalid_argument);
  const CommMatrix wrong(3);
  EXPECT_THROW(place_strategy(Strategy::TreeMatch, t, 4, &wrong),
               std::invalid_argument);
}

TEST(Strategies, TreeMatchDelegates) {
  const Topology t = make_numa(2, 2, 1);
  CommMatrix m(4);
  m.set(0, 1, 100.0);
  m.set(2, 3, 100.0);
  const Placement p = place_strategy(Strategy::TreeMatch, t, 4, &m);
  EXPECT_TRUE(p.valid_for(t));
  // Heavy pairs on same node.
  const Object* a = t.pu_by_os_index(p.compute_pu[0]);
  const Object* b = t.pu_by_os_index(p.compute_pu[1]);
  EXPECT_NE(t.common_ancestor(*a, *b)->type, ObjType::Machine);
}

TEST(Strategies, ZeroThreadsRejected) {
  const Topology t = make_numa(1, 2, 1);
  EXPECT_THROW(place_strategy(Strategy::Compact, t, 0),
               std::invalid_argument);
}

TEST(Strategies, ParseRoundTrip) {
  for (Strategy s :
       {Strategy::None, Strategy::Compact, Strategy::CompactCores,
        Strategy::Scatter, Strategy::ScatterCores, Strategy::TreeMatch}) {
    EXPECT_EQ(parse_strategy(to_string(s)), s);
  }
  EXPECT_EQ(parse_strategy("close"), Strategy::CompactCores);
  EXPECT_EQ(parse_strategy("spread"), Strategy::ScatterCores);
  EXPECT_EQ(parse_strategy("affinity"), Strategy::TreeMatch);
  EXPECT_THROW(parse_strategy("bogus"), std::invalid_argument);
}

TEST(Strategies, ScatterOnPaperMachine) {
  // On SMP12E5, scatter over PUs with 12 threads uses all 12 NUMA nodes.
  const Topology t = make_smp12e5();
  const Placement p = place_strategy(Strategy::Scatter, t, 12);
  std::set<int> nodes;
  for (int pu : p.compute_pu) {
    nodes.insert(t.pu_by_os_index(pu)
                     ->ancestor_of_type(ObjType::NumaNode)
                     ->logical_index);
  }
  EXPECT_EQ(nodes.size(), 12u);
}

}  // namespace
