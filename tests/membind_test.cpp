// topo::MemBind / topo::NumaBuffer: node-targeted allocation, residency
// queries, migration, and — most importantly for CI — the portable
// fallback paths (NUMA-less hosts, fixture nodes beyond the host,
// forced emulation via ORWL_MEMBIND=emulate).
#include "topo/membind.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/env.hpp"
#include "topo/machines.hpp"

namespace {

using orwl::topo::MemBind;
using orwl::topo::NumaBuffer;

TEST(MemBind, PageSizeIsSane) {
  EXPECT_GE(MemBind::page_size(), 512u);
  EXPECT_EQ(MemBind::page_size() % 512, 0u);
}

TEST(MemBind, AllocateZeroInitialized) {
  const std::size_t bytes = 3 * MemBind::page_size() + 17;
  MemBind m = MemBind::allocate(bytes);
  ASSERT_NE(m.data(), nullptr);
  EXPECT_EQ(m.size(), bytes);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.bound_node(), MemBind::kAnyNode);
  for (std::size_t i = 0; i < bytes; ++i) {
    ASSERT_EQ(m.data()[i], std::byte{0}) << "byte " << i;
  }
}

TEST(MemBind, EmptyAllocation) {
  MemBind m = MemBind::allocate(0, 2);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.data(), nullptr);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.bound_node(), 2);  // intent is recorded even when empty
  EXPECT_TRUE(m.page_nodes().empty());
  EXPECT_EQ(m.resident_node(), MemBind::kAnyNode);
}

TEST(MemBind, MoveTransfersOwnership) {
  MemBind a = MemBind::allocate(4096, 1);
  std::byte* p = a.data();
  MemBind b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 4096u);
  EXPECT_EQ(b.bound_node(), 1);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd state
  MemBind c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(MemBind, BindingIntentIsQueryableEvenWithoutRealNuma) {
  // A fixture node far beyond any plausible host: the binding must be
  // recorded tag-only and every query must answer with the intent — this
  // is what keeps fixture-topology programs deterministic on 1-node CI.
  // Past the highest *id*, not the count: node ids can be sparse, so
  // count+3 could name a real node on offlined/CXL layouts.
  const int node = MemBind::host_node_ids().back() + 3;
  MemBind m = MemBind::allocate(2 * MemBind::page_size(), node);
  ASSERT_NE(m.data(), nullptr);
  std::memset(m.data(), 0x5a, m.size());  // touch so pages exist
  EXPECT_EQ(m.bound_node(), node);
  EXPECT_TRUE(m.emulated());
  EXPECT_EQ(m.resident_node(), node);
  for (int n : m.page_nodes()) EXPECT_EQ(n, node);
}

TEST(MemBind, ForcedEmulationFallback) {
  orwl::support::ScopedEnv force(orwl::topo::kMemBindEnvVar, "emulate");
  EXPECT_FALSE(MemBind::numa_syscalls_available());
  MemBind m = MemBind::allocate(1 << 16, 2);
  ASSERT_NE(m.data(), nullptr);
  EXPECT_TRUE(m.emulated());
  EXPECT_EQ(m.bound_node(), 2);
  std::memset(m.data(), 0x7f, m.size());  // heap block must be writable
  EXPECT_EQ(m.data()[1000], std::byte{0x7f});
  EXPECT_TRUE(m.migrate_to(0));
  EXPECT_EQ(m.bound_node(), 0);
  EXPECT_EQ(m.resident_node(), 0);
  const auto nodes = m.page_nodes();
  EXPECT_EQ(nodes.size(),
            (m.size() + MemBind::page_size() - 1) / MemBind::page_size());
  for (int n : nodes) EXPECT_EQ(n, 0);
}

TEST(MemBind, MigratePreservesContents) {
  MemBind m = MemBind::allocate(2 * MemBind::page_size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<std::byte>(i * 131u);
  }
  EXPECT_TRUE(m.migrate_to(0));
  EXPECT_EQ(m.bound_node(), 0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m.data()[i], static_cast<std::byte>(i * 131u)) << i;
  }
  // Back to unbound: always succeeds, clears the intent.
  EXPECT_TRUE(m.migrate_to(MemBind::kAnyNode));
  EXPECT_EQ(m.bound_node(), MemBind::kAnyNode);
}

TEST(MemBind, HostIntrospection) {
  EXPECT_GE(MemBind::host_node_count(), 1);
  const std::vector<int> ids = MemBind::host_node_ids();
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(MemBind::host_node_count()));
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  const int node = MemBind::node_of_cpu(0);
  EXPECT_GE(node, -1);
  EXPECT_LT(node, MemBind::host_node_count() + 64);
  EXPECT_EQ(MemBind::node_of_cpu(-1), -1);
}

TEST(MemBind, NumaNodeOfPuUsesTheFixtureTopology) {
  const orwl::topo::Topology t = orwl::topo::make_numa(2, 2, 1);
  ASSERT_EQ(t.num_pus(), 4u);
  EXPECT_EQ(numa_node_of_pu(t, t.pu_at(0)->os_index), 0);
  EXPECT_EQ(numa_node_of_pu(t, t.pu_at(1)->os_index), 0);
  EXPECT_EQ(numa_node_of_pu(t, t.pu_at(2)->os_index), 1);
  EXPECT_EQ(numa_node_of_pu(t, t.pu_at(3)->os_index), 1);
  EXPECT_EQ(numa_node_of_pu(t, 9999), -1);

  const orwl::topo::Topology flat = orwl::topo::make_flat(4);
  EXPECT_EQ(numa_node_of_pu(flat, flat.pu_at(0)->os_index), -1)
      << "no NUMA level => no node, callers skip binding";

  EXPECT_EQ(numa_node_of_pu(orwl::topo::Topology{}, 0), -1);
}

// ------------------------------------------------------- NumaBuffer ----

TEST(NumaBuffer, ResizeZeroInitializesAndReuses) {
  NumaBuffer buf;
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
  buf.resize(1000);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 1000u);
  std::memset(buf.data(), 0xff, buf.size());
  buf.resize(500);  // shrink: storage reused, used prefix re-zeroed
  EXPECT_EQ(buf.size(), 500u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf.data()[i], std::byte{0}) << i;
  }
  buf.resize(0);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(NumaBuffer, BindIsStickyAcrossResize) {
  orwl::support::ScopedEnv force(orwl::topo::kMemBindEnvVar, "emulate");
  NumaBuffer buf;
  EXPECT_TRUE(buf.bind_to(3));  // binding an empty buffer records intent
  EXPECT_EQ(buf.migrations(), 0u) << "no storage yet, nothing migrated";
  buf.resize(4096);
  EXPECT_EQ(buf.node(), 3);
  EXPECT_EQ(buf.resident_node(), 3);
  buf.resize(1 << 16);  // grow: fresh allocation must stay on the node
  EXPECT_EQ(buf.node(), 3);
  EXPECT_EQ(buf.resident_node(), 3);
  EXPECT_TRUE(buf.emulated());
}

TEST(NumaBuffer, RebindMigratesLiveStorage) {
  orwl::support::ScopedEnv force(orwl::topo::kMemBindEnvVar, "emulate");
  NumaBuffer buf;
  buf.resize(8192);
  EXPECT_TRUE(buf.bind_to(0));
  EXPECT_EQ(buf.migrations(), 1u);
  EXPECT_FALSE(buf.bind_to(0)) << "already there: no change, no migration";
  EXPECT_EQ(buf.migrations(), 1u);
  EXPECT_TRUE(buf.bind_to(1));
  EXPECT_EQ(buf.migrations(), 2u);
  EXPECT_EQ(buf.node(), 1);
  EXPECT_EQ(buf.resident_node(), 1);
}

TEST(NumaBuffer, ResetKeepsTheBinding) {
  NumaBuffer buf;
  buf.bind_to(2);
  buf.resize(4096);
  buf.reset();
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.node(), 2) << "a later resize must land on the node again";
  buf.resize(64);
  EXPECT_EQ(buf.node(), 2);
}

// ------------------------------------------------------- huge pages -----

TEST(HugePages, RequestFallsBackTransparently) {
  // Whatever the host provides — a hugetlb pool, none, or no Linux at
  // all — a huge-page request must always yield a usable zeroed buffer;
  // only the backing differs. (CI runners have no reserved hugepages, so
  // this exercises exactly the fallback lane users hit by default.)
  const std::size_t hps = MemBind::huge_page_size();
  const std::size_t bytes =
      hps > 0 ? hps + 128 : 4 * MemBind::page_size();
  MemBind m = MemBind::allocate(bytes, MemBind::kAnyNode, /*huge=*/true);
  ASSERT_NE(m.data(), nullptr);
  EXPECT_EQ(m.size(), bytes);
  for (std::size_t i = 0; i < bytes; i += 97) {
    ASSERT_EQ(m.data()[i], std::byte{0}) << "byte " << i;
  }
  if (m.huge_pages()) {
    // Honored requests round the capacity to whole huge pages.
    EXPECT_GE(m.capacity(), hps);
    EXPECT_EQ(m.capacity() % hps, 0u);
    m.data()[bytes - 1] = std::byte{7};  // touch: must not SIGBUS
  }
}

TEST(HugePages, SmallRequestsNeverUseHugePages) {
  MemBind m = MemBind::allocate(64, MemBind::kAnyNode, /*huge=*/true);
  EXPECT_FALSE(m.huge_pages()) << "sub-huge-page sizes stay on base pages";
}

TEST(HugePages, EmulationForcesTheFallback) {
  orwl::support::ScopedEnv emu(orwl::topo::kMemBindEnvVar, "emulate");
  const std::size_t hps = MemBind::huge_page_size();
  MemBind m = MemBind::allocate(hps > 0 ? hps : 1 << 20,
                                MemBind::kAnyNode, /*huge=*/true);
  ASSERT_NE(m.data(), nullptr);
  EXPECT_FALSE(m.huge_pages());
}

TEST(HugePages, NumaBufferFlagControlsReuseAndBinding) {
  NumaBuffer buf;
  buf.bind_to(1);
  buf.resize(8192);
  std::memset(buf.data(), 0x5a, 64);
  // Flipping the request forces a reallocation (the request changed),
  // keeps the sticky node, and re-zeroes like any resize.
  buf.set_huge_pages(true);
  buf.resize(8192);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(buf.node(), 1);
  EXPECT_EQ(buf.data()[0], std::byte{0});
  // With the request unchanged, storage is reused again.
  std::byte* before = buf.data();
  buf.resize(4096);
  EXPECT_EQ(buf.data(), before);
}

}  // namespace
