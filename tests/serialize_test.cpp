#include <gtest/gtest.h>

#include "topo/machines.hpp"
#include "topo/serialize.hpp"

namespace {

using namespace orwl::topo;

TEST(Serialize, EmptyTopologyIsEmptyString) {
  EXPECT_EQ(serialize(Topology{}), "");
}

TEST(Serialize, FlatMachineFormat) {
  const Topology t = make_flat(2);
  const std::string s = serialize(t);
  EXPECT_NE(s.find("machine name=\"flat-2\""), std::string::npos);
  EXPECT_NE(s.find("  Core"), std::string::npos);
  EXPECT_NE(s.find("    PU os=0"), std::string::npos);
  EXPECT_NE(s.find("    PU os=1"), std::string::npos);
}

TEST(Serialize, CacheSizesSerialized) {
  const Topology t = make_numa(1, 1, 1, 4 * 1024 * 1024);
  const std::string s = serialize(t);
  EXPECT_NE(s.find("L3 size=4194304"), std::string::npos);
}

struct RoundTripCase {
  const char* name;
  Topology (*factory)();
};

class SerializeRoundTripTest
    : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SerializeRoundTripTest, ParseSerializeIsIdentity) {
  const Topology original = GetParam().factory();
  const std::string text = serialize(original);
  const Topology parsed = parse_topology(text);

  EXPECT_EQ(parsed.num_pus(), original.num_pus());
  EXPECT_EQ(parsed.num_cores(), original.num_cores());
  EXPECT_EQ(parsed.depth(), original.depth());
  EXPECT_EQ(parsed.has_hyperthreads(), original.has_hyperthreads());
  EXPECT_EQ(parsed.name(), original.name());
  // Structure identical => identical re-serialization.
  EXPECT_EQ(serialize(parsed), text);
  // Distances preserved (spot checks across the tree).
  const std::size_t n = original.num_pus();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 7)) {
    for (std::size_t j = i; j < n; j += std::max<std::size_t>(1, n / 5)) {
      EXPECT_EQ(parsed.distance(static_cast<int>(i), static_cast<int>(j)),
                original.distance(static_cast<int>(i),
                                  static_cast<int>(j)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SerializeRoundTripTest,
    ::testing::Values(
        RoundTripCase{"flat", [] { return make_flat(4); }},
        RoundTripCase{"numa", [] { return make_numa(2, 4, 2); }},
        RoundTripCase{"smp12e5", &make_smp12e5},
        RoundTripCase{"smp20e7", &make_smp20e7},
        RoundTripCase{"fig2", &make_fig2_machine}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Parse, NamesWithSpacesSurvive) {
  const Topology t = make_fig2_machine();
  const Topology parsed = parse_topology(serialize(t));
  const int gd = parsed.depth_of_type(ObjType::Group);
  ASSERT_GE(gd, 0);
  EXPECT_EQ(parsed.at_depth(gd)[0]->name, "Blade 0");
  const int pd = parsed.depth_of_type(ObjType::Package);
  EXPECT_EQ(parsed.at_depth(pd)[3]->name, "Socket 3");
}

TEST(Parse, HandwrittenTopology) {
  const Topology t = parse_topology(
      "machine name=\"box\"\n"
      "  NUMANode os=0\n"
      "    Core os=0\n"
      "      PU os=0\n"
      "      PU os=1\n"
      "  NUMANode os=1\n"
      "    Core os=1\n"
      "      PU os=2\n"
      "      PU os=3\n");
  EXPECT_EQ(t.num_pus(), 4u);
  EXPECT_EQ(t.num_cores(), 2u);
  EXPECT_TRUE(t.has_hyperthreads());
  EXPECT_EQ(t.name(), "box");
  EXPECT_EQ(t.sharing_depth(0, 1), 2);  // same core
  EXPECT_EQ(t.sharing_depth(0, 2), 0);  // across NUMA
}

TEST(Parse, BlankLinesIgnored) {
  EXPECT_NO_THROW(parse_topology(
      "machine\n\n  Core\n\n    PU\n  Core\n    PU\n"));
}

TEST(Parse, Malformed) {
  // Missing machine root.
  EXPECT_THROW(parse_topology("  Core\n    PU\n"), std::invalid_argument);
  // Odd indentation.
  EXPECT_THROW(parse_topology("machine\n Core\n"), std::invalid_argument);
  // Indentation jump.
  EXPECT_THROW(parse_topology("machine\n      PU\n"),
               std::invalid_argument);
  // Unknown type.
  EXPECT_THROW(parse_topology("machine\n  Blob\n"), std::invalid_argument);
  // Unknown attribute.
  EXPECT_THROW(parse_topology("machine\n  Core x=1\n    PU\n"),
               std::invalid_argument);
  // Unquoted name.
  EXPECT_THROW(parse_topology("machine name=box\n  Core\n    PU\n"),
               std::invalid_argument);
  // Bad number.
  EXPECT_THROW(parse_topology("machine\n  Core os=abc\n    PU\n"),
               std::invalid_argument);
  // Empty.
  EXPECT_THROW(parse_topology(""), std::invalid_argument);
  // Structurally invalid (leaf above PU level) is caught by validation.
  EXPECT_THROW(parse_topology("machine\n  Core\n  Core\n    PU\n"),
               std::invalid_argument);
}

TEST(DistanceMatrix, SymmetricZeroDiagonal) {
  const Topology t = make_numa(2, 2, 2);
  const auto m = distance_matrix(t);
  const std::size_t n = t.num_pus();
  ASSERT_EQ(m.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(m[i * n + i], 0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(m[i * n + j], m[j * n + i]);
    }
  }
  // Known values: siblings 2, same node 4/..., across nodes max.
  EXPECT_EQ(m[0 * n + 1], 2);
  EXPECT_EQ(m[0 * n + 4], 8);
}

TEST(DistanceMatrix, TriangleInequalityOnTree) {
  // Tree metrics satisfy the four-point condition; spot-check the
  // triangle inequality on the big machine.
  const Topology t = make_smp12e5();
  const auto m = distance_matrix(t);
  const std::size_t n = t.num_pus();
  for (std::size_t i = 0; i < n; i += 37) {
    for (std::size_t j = 0; j < n; j += 41) {
      for (std::size_t k = 0; k < n; k += 43) {
        EXPECT_LE(m[i * n + j], m[i * n + k] + m[k * n + j]);
      }
    }
  }
}

}  // namespace
