#include <gtest/gtest.h>

#include "affinity/affinity.hpp"
#include "affinity/report.hpp"
#include "support/env.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl;
using rt::AccessMode;
using rt::TaskGraph;

TaskGraph chain_graph(std::size_t n, std::size_t bytes) {
  // Task i writes its own location; task i+1 reads it (Listing 1 chain).
  TaskGraph g;
  g.num_tasks = n;
  g.locations_per_task = 1;
  g.locations.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    g.locations[t].id = t;
    g.locations[t].owner = t;
    g.locations[t].bytes = bytes;
    g.locations[t].accesses.push_back({t, AccessMode::Write, 0});
    if (t + 1 < n) {
      g.locations[t].accesses.push_back({t + 1, AccessMode::Read, 1});
    }
  }
  return g;
}

// ----------------------------------------------------------- env var ----

TEST(AffinityEnv, FollowsOrwlAffinityVariable) {
  // Guard restores whatever value the caller had on scope exit.
  support::ScopedEnv guard(aff::kAffinityEnvVar, nullptr);
  EXPECT_FALSE(aff::enabled_from_env());
  guard.set("1");
  EXPECT_TRUE(aff::enabled_from_env());
  guard.set("0");
  EXPECT_FALSE(aff::enabled_from_env());
}

// ------------------------------------------------- matrix extraction ----

TEST(DependencyGet, ChainProducesTridiagonalMatrix) {
  const TaskGraph g = chain_graph(5, 1000);
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  ASSERT_EQ(m.order(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      if (j == i + 1) {
        EXPECT_DOUBLE_EQ(m.at(i, j), 1000.0) << i << "," << j;
      } else {
        EXPECT_DOUBLE_EQ(m.at(i, j), 0.0) << i << "," << j;
      }
    }
  }
}

TEST(DependencyGet, VolumeScalesWithLocationSize) {
  TaskGraph g = chain_graph(3, 64);
  g.locations[0].bytes = 4096;
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4096.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 64.0);
}

TEST(DependencyGet, MultipleReadersEachCoupleToWriter) {
  TaskGraph g;
  g.num_tasks = 4;
  g.locations_per_task = 1;
  g.locations.resize(1);
  g.locations[0] = {0, 0, 512, {}};
  g.locations[0].accesses.push_back({0, AccessMode::Write, 0});
  g.locations[0].accesses.push_back({1, AccessMode::Read, 1});
  g.locations[0].accesses.push_back({2, AccessMode::Read, 1});
  g.locations[0].accesses.push_back({3, AccessMode::Read, 1});
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 512.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 512.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 512.0);
  // Readers do not exchange data among themselves.
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 0.0);
}

TEST(DependencyGet, WriterPairsCouple) {
  TaskGraph g;
  g.num_tasks = 3;
  g.locations_per_task = 1;
  g.locations.resize(1);
  g.locations[0] = {0, 0, 256, {}};
  g.locations[0].accesses.push_back({0, AccessMode::Write, 0});
  g.locations[0].accesses.push_back({1, AccessMode::Write, 1});
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 256.0);
}

TEST(DependencyGet, DuplicateAccessesCountOnce) {
  TaskGraph g;
  g.num_tasks = 2;
  g.locations_per_task = 1;
  g.locations.resize(1);
  g.locations[0] = {0, 0, 100, {}};
  g.locations[0].accesses.push_back({0, AccessMode::Write, 0});
  g.locations[0].accesses.push_back({1, AccessMode::Read, 1});
  g.locations[0].accesses.push_back({1, AccessMode::Read, 2});  // dup
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 100.0);
}

TEST(DependencyGet, SelfAccessProducesNoVolume) {
  TaskGraph g;
  g.num_tasks = 2;
  g.locations_per_task = 1;
  g.locations.resize(1);
  g.locations[0] = {0, 0, 100, {}};
  g.locations[0].accesses.push_back({0, AccessMode::Write, 0});
  g.locations[0].accesses.push_back({0, AccessMode::Read, 1});
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.total_volume(), 0.0);
}

TEST(DependencyGet, EmptyAndZeroSizedLocationsIgnored) {
  TaskGraph g;
  g.num_tasks = 2;
  g.locations_per_task = 2;
  g.locations.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    g.locations[i] = {i, i / 2, 0, {}};
  }
  g.locations[0].accesses.push_back({0, AccessMode::Write, 0});
  g.locations[0].accesses.push_back({1, AccessMode::Read, 1});
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  EXPECT_DOUBLE_EQ(m.total_volume(), 0.0);
}

// ------------------------------------------------ compute_placement -----

TEST(ComputePlacement, ChainMapsNeighborsTogether) {
  const TaskGraph g = chain_graph(8, 4096);
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  const auto t = topo::make_numa(2, 4, 1);
  const tm::Placement p = aff::compute_placement(m, t);
  ASSERT_TRUE(p.valid_for(t));
  // A chain of 8 on 2 nodes of 4: exactly one chain edge crosses nodes.
  int cross = 0;
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    const auto* a = t.pu_by_os_index(p.compute_pu[i]);
    const auto* b = t.pu_by_os_index(p.compute_pu[i + 1]);
    if (t.common_ancestor(*a, *b)->type == topo::ObjType::Machine) ++cross;
  }
  EXPECT_EQ(cross, 1);
}

// ------------------------------------------------------------ report ----

TEST(Report, MappingListsTasksAndControl) {
  const auto t = topo::make_fig2_machine();
  const TaskGraph g = chain_graph(30, 1 << 20);
  const tm::CommMatrix m = aff::comm_matrix_from_graph(g);
  aff::ComputeOptions opts;
  opts.num_control_threads = 4;
  const tm::Placement p = aff::compute_placement(m, t, opts);
  std::vector<std::string> names(30);
  for (int i = 0; i < 30; ++i) names[i] = "stage" + std::to_string(i);

  const std::string s = aff::render_mapping(t, p, names);
  EXPECT_NE(s.find("Blade 0"), std::string::npos);
  EXPECT_NE(s.find("Socket 3"), std::string::npos);
  EXPECT_NE(s.find("0:stage0"), std::string::npos);
  EXPECT_NE(s.find("control"), std::string::npos);
  EXPECT_NE(s.find("spare-cores"), std::string::npos);
}

TEST(Report, MappingWithoutNamesUsesTaskPlaceholder) {
  const auto t = topo::make_numa(2, 2, 1);
  tm::Placement p;
  p.compute_pu = {0, 1, 2, 3};
  const std::string s = aff::render_mapping(t, p);
  EXPECT_NE(s.find("0:task"), std::string::npos);
}

TEST(Report, CommMatrixDelegatesToHeatmap) {
  tm::CommMatrix m(3);
  m.set(0, 1, 100.0);
  const std::string s = aff::render_comm_matrix(m);
  EXPECT_NE(s.find("order 3"), std::string::npos);
}

}  // namespace
