#include <gtest/gtest.h>

#include "apps/image.hpp"

namespace {

using namespace orwl::apps;

// ------------------------------------------------------------ scene -----

TEST(Scene, DemoValidatesSize) {
  EXPECT_THROW(Scene::demo(8, 8, 1, 1), std::invalid_argument);
  const Scene s = Scene::demo(64, 48, 2, 1);
  EXPECT_EQ(s.objects.size(), 2u);
}

TEST(Scene, RenderIsDeterministic) {
  const Scene s = Scene::demo(64, 48, 2, 3);
  std::vector<Pixel> f1(64 * 48), f2(64 * 48);
  s.render(5, f1.data());
  s.render(5, f2.data());
  EXPECT_EQ(f1, f2);
}

TEST(Scene, ObjectsMove) {
  const Scene s = Scene::demo(64, 48, 1, 3);
  const auto p0 = s.positions(0);
  const auto p5 = s.positions(5);
  EXPECT_NE(p0[0], p5[0]);
}

TEST(Scene, ObjectPixelsAreBright) {
  const Scene s = Scene::demo(64, 48, 1, 4);
  std::vector<Pixel> f(64 * 48);
  s.render(0, f.data());
  const auto pos = s.positions(0);
  const auto& o = s.objects[0];
  const std::size_t cx = static_cast<std::size_t>(pos[0][0]) + o.size / 2;
  const std::size_t cy = static_cast<std::size_t>(pos[0][1]) + o.size / 2;
  EXPECT_EQ(f[cy * 64 + cx], o.intensity);
}

// --------------------------------------------------- background model ----

TEST(BackgroundModel, LearnsStaticBackground) {
  BackgroundModel m;
  m.init(32, 32);
  std::vector<Pixel> frame(32 * 32, 80), mask(32 * 32);
  for (int i = 0; i < 20; ++i) {
    m.process_rows(frame.data(), mask.data(), 0, 32);
  }
  // After convergence a static frame is all background.
  for (Pixel p : mask) EXPECT_EQ(p, kBackground);
}

TEST(BackgroundModel, DetectsBrightIntruder) {
  BackgroundModel m;
  m.init(32, 32);
  std::vector<Pixel> frame(32 * 32, 80), mask(32 * 32);
  for (int i = 0; i < 20; ++i) {
    m.process_rows(frame.data(), mask.data(), 0, 32);
  }
  frame[5 * 32 + 7] = 250;  // bright spot
  m.process_rows(frame.data(), mask.data(), 0, 32);
  EXPECT_EQ(mask[5 * 32 + 7], kForeground);
  EXPECT_EQ(mask[5 * 32 + 8], kBackground);
}

TEST(BackgroundModel, BandProcessingEqualsWholeFrame) {
  const Scene s = Scene::demo(64, 48, 2, 9);
  BackgroundModel whole, banded;
  whole.init(64, 48);
  banded.init(64, 48);
  std::vector<Pixel> frame(64 * 48), m1(64 * 48), m2(64 * 48);
  for (std::size_t f = 0; f < 6; ++f) {
    s.render(f, frame.data());
    whole.process_rows(frame.data(), m1.data(), 0, 48);
    for (std::size_t b = 0; b < 4; ++b) {
      banded.process_rows(frame.data(), m2.data(), b * 12, (b + 1) * 12);
    }
    EXPECT_EQ(m1, m2) << "frame " << f;
  }
}

TEST(BackgroundModel, RowBoundsChecked) {
  BackgroundModel m;
  m.init(8, 8);
  std::vector<Pixel> frame(64), mask(64);
  EXPECT_THROW(m.process_rows(frame.data(), mask.data(), 0, 9),
               std::out_of_range);
}

// -------------------------------------------------------- morphology ----

TEST(Morphology, ErodeRemovesThinFeatures) {
  // A single pixel vanishes under erosion.
  std::vector<Pixel> in(25, kBackground), out(25);
  in[12] = kForeground;  // center of 5x5
  erode3x3(in.data(), out.data(), 5, 5);
  for (Pixel p : out) EXPECT_EQ(p, kBackground);
}

TEST(Morphology, ErodeKeepsSolidCore) {
  // A 3x3 solid block keeps its center.
  std::vector<Pixel> in(25, kBackground), out(25);
  for (int y = 1; y <= 3; ++y) {
    for (int x = 1; x <= 3; ++x) in[y * 5 + x] = kForeground;
  }
  erode3x3(in.data(), out.data(), 5, 5);
  EXPECT_EQ(out[2 * 5 + 2], kForeground);
  EXPECT_EQ(out[1 * 5 + 1], kBackground);
}

TEST(Morphology, DilateGrowsByOne) {
  std::vector<Pixel> in(25, kBackground), out(25);
  in[12] = kForeground;
  dilate3x3(in.data(), out.data(), 5, 5);
  int fg = 0;
  for (Pixel p : out) fg += p == kForeground;
  EXPECT_EQ(fg, 9);
}

TEST(Morphology, DilateThenErodeRestoresSolidSquare) {
  std::vector<Pixel> in(100, kBackground), d(100), e(100);
  for (int y = 3; y < 7; ++y) {
    for (int x = 3; x < 7; ++x) in[y * 10 + x] = kForeground;
  }
  dilate3x3(in.data(), d.data(), 10, 10);
  erode3x3(d.data(), e.data(), 10, 10);
  EXPECT_EQ(in, e) << "closing a solid square is the identity";
}

TEST(Morphology, RowVariantMatchesWholeFrame) {
  const Scene s = Scene::demo(64, 48, 2, 5);
  std::vector<Pixel> frame(64 * 48), w1(64 * 48), w2(64 * 48);
  s.render(0, frame.data());
  // Threshold to binary.
  for (auto& p : frame) p = p > 100 ? kForeground : kBackground;
  erode3x3(frame.data(), w1.data(), 64, 48);
  for (std::size_t b = 0; b < 6; ++b) {
    erode3x3_rows(frame.data(), w2.data(), 64, 48, b * 8, (b + 1) * 8);
  }
  EXPECT_EQ(w1, w2);
  dilate3x3(frame.data(), w1.data(), 64, 48);
  for (std::size_t b = 0; b < 6; ++b) {
    dilate3x3_rows(frame.data(), w2.data(), 64, 48, b * 8, (b + 1) * 8);
  }
  EXPECT_EQ(w1, w2);
}

// --------------------------------------------------------------- CCL ----

TEST(Ccl, SingleComponentStats) {
  std::vector<Pixel> mask(100, kBackground);
  for (int y = 2; y < 5; ++y) {
    for (int x = 3; x < 7; ++x) mask[y * 10 + x] = kForeground;
  }
  const auto comps = connected_components(mask.data(), 10, 10, 1);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].area, 12);
  EXPECT_DOUBLE_EQ(comps[0].cx(), 4.5);
  EXPECT_DOUBLE_EQ(comps[0].cy(), 3.0);
  EXPECT_EQ(comps[0].min_x, 3);
  EXPECT_EQ(comps[0].max_x, 6);
}

TEST(Ccl, DiagonalPixelsAreSeparate) {
  // 4-connectivity: diagonal neighbors are distinct components.
  std::vector<Pixel> mask(16, kBackground);
  mask[0] = kForeground;       // (0,0)
  mask[1 * 4 + 1] = kForeground;  // (1,1)
  const auto comps = connected_components(mask.data(), 4, 4, 1);
  EXPECT_EQ(comps.size(), 2u);
}

TEST(Ccl, MinAreaFilters) {
  std::vector<Pixel> mask(64, kBackground);
  mask[0] = kForeground;  // area 1
  for (int x = 3; x < 7; ++x) mask[4 * 8 + x] = kForeground;  // area 4
  EXPECT_EQ(connected_components(mask.data(), 8, 8, 1).size(), 2u);
  EXPECT_EQ(connected_components(mask.data(), 8, 8, 2).size(), 1u);
}

TEST(Ccl, UShapeIsOneComponent) {
  // A U-shape that merges only at the bottom: tests the union-find path.
  std::vector<Pixel> mask(8 * 8, kBackground);
  for (int y = 0; y < 6; ++y) {
    mask[y * 8 + 1] = kForeground;
    mask[y * 8 + 5] = kForeground;
  }
  for (int x = 1; x <= 5; ++x) mask[6 * 8 + x] = kForeground;
  const auto comps = connected_components(mask.data(), 8, 8, 1);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].area, 6 + 6 + 5);
}

TEST(Ccl, BandedMergeEqualsWholeImage) {
  // Property: banded labeling + merge == whole-image labeling, for a
  // busy random-ish mask.
  const Scene s = Scene::demo(96, 64, 4, 17);
  std::vector<Pixel> frame(96 * 64), mask(96 * 64);
  s.render(3, frame.data());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = frame[i] > 95 ? kForeground : kBackground;
  }
  const auto whole = connected_components(mask.data(), 96, 64, 1);
  for (std::size_t nbands : {2u, 3u, 4u, 7u}) {
    std::vector<BandLabeling> bands;
    for (std::size_t b = 0; b < nbands; ++b) {
      const std::size_t r0 = b * 64 / nbands;
      const std::size_t r1 = (b + 1) * 64 / nbands;
      bands.push_back(label_band(mask.data(), 96, r0, r1));
    }
    const auto merged = merge_bands(bands, 96, 1);
    ASSERT_EQ(merged.size(), whole.size()) << nbands << " bands";
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].area, whole[i].area);
      EXPECT_DOUBLE_EQ(merged[i].cx(), whole[i].cx());
      EXPECT_DOUBLE_EQ(merged[i].cy(), whole[i].cy());
    }
  }
}

TEST(Ccl, ComponentSpanningAllBands) {
  // A vertical bar crossing every band boundary must merge into one.
  std::vector<Pixel> mask(16 * 16, kBackground);
  for (int y = 0; y < 16; ++y) mask[y * 16 + 8] = kForeground;
  std::vector<BandLabeling> bands;
  for (std::size_t b = 0; b < 4; ++b) {
    bands.push_back(label_band(mask.data(), 16, b * 4, (b + 1) * 4));
  }
  const auto merged = merge_bands(bands, 16, 1);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].area, 16);
}

TEST(Ccl, MergeRejectsGappyBands) {
  std::vector<Pixel> mask(64, kBackground);
  std::vector<BandLabeling> bands;
  bands.push_back(label_band(mask.data(), 8, 0, 3));
  bands.push_back(label_band(mask.data(), 8, 4, 8));  // gap: row 3-4
  EXPECT_THROW(merge_bands(bands, 8, 1), std::invalid_argument);
}

TEST(Ccl, EmptyMaskNoComponents) {
  std::vector<Pixel> mask(64, kBackground);
  EXPECT_TRUE(connected_components(mask.data(), 8, 8, 1).empty());
}

// ----------------------------------------------------------- tracker ----

TEST(Tracker, CreatesTracksForNewDetections) {
  Tracker t;
  t.update({{10, 10}, {50, 50}});
  EXPECT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.total_tracks_created(), 2);
}

TEST(Tracker, FollowsMovingDetection) {
  Tracker t;
  t.update({{10, 10}});
  const int id = t.tracks()[0].id;
  for (int f = 1; f <= 10; ++f) {
    t.update({{10.0 + f * 3.0, 10.0 + f * 2.0}});
    ASSERT_EQ(t.tracks().size(), 1u) << "frame " << f;
    EXPECT_EQ(t.tracks()[0].id, id) << "track identity lost";
  }
  EXPECT_DOUBLE_EQ(t.tracks()[0].x, 40.0);
  EXPECT_DOUBLE_EQ(t.tracks()[0].y, 30.0);
}

TEST(Tracker, FarDetectionOpensNewTrack) {
  Tracker t;
  t.max_distance = 20.0;
  t.update({{10, 10}});
  t.update({{200, 200}});
  // The old track missed once, a new track was created.
  EXPECT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.total_tracks_created(), 2);
}

TEST(Tracker, StaleTracksExpire)  {
  Tracker t;
  t.max_missed = 2;
  t.update({{10, 10}});
  for (int i = 0; i < 4; ++i) t.update({});
  EXPECT_TRUE(t.tracks().empty());
}

TEST(Tracker, TwoObjectsKeepIdentity) {
  Tracker t;
  t.update({{10, 10}, {100, 100}});
  const int id0 = t.tracks()[0].id;
  const int id1 = t.tracks()[1].id;
  // Objects approach each other but stay distinct.
  for (int f = 1; f <= 5; ++f) {
    t.update({{10.0 + f * 2.0, 10.0}, {100.0 - f * 2.0, 100.0}});
  }
  ASSERT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.tracks()[0].id, id0);
  EXPECT_EQ(t.tracks()[1].id, id1);
  EXPECT_DOUBLE_EQ(t.tracks()[0].x, 20.0);
  EXPECT_DOUBLE_EQ(t.tracks()[1].x, 90.0);
}

}  // namespace
