#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace orwl::support;

// ---------------------------------------------------------------- env ----

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ORWL_TEST_VAR"); }
};

TEST_F(EnvTest, UnsetReturnsNullopt) {
  unsetenv("ORWL_TEST_VAR");
  EXPECT_FALSE(env_string("ORWL_TEST_VAR").has_value());
}

TEST_F(EnvTest, SetReturnsValue) {
  setenv("ORWL_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("ORWL_TEST_VAR").value(), "hello");
}

TEST_F(EnvTest, BoolTruthySpellings) {
  for (const char* v : {"1", "true", "TRUE", "yes", "on", "On"}) {
    setenv("ORWL_TEST_VAR", v, 1);
    EXPECT_TRUE(env_bool("ORWL_TEST_VAR", false)) << v;
  }
}

TEST_F(EnvTest, BoolFalsySpellings) {
  for (const char* v : {"0", "false", "no", "off", ""}) {
    setenv("ORWL_TEST_VAR", v, 1);
    EXPECT_FALSE(env_bool("ORWL_TEST_VAR", true)) << '"' << v << '"';
  }
}

TEST_F(EnvTest, BoolRejectsGarbageNamingTheVariable) {
  setenv("ORWL_TEST_VAR", "banana", 1);
  try {
    env_bool("ORWL_TEST_VAR", true);
    FAIL() << "garbage boolean must throw, not fall back";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ORWL_TEST_VAR"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << e.what();
  }
}

TEST_F(EnvTest, BoolFallbackOnUnset) {
  unsetenv("ORWL_TEST_VAR");
  EXPECT_TRUE(env_bool("ORWL_TEST_VAR", true));
  EXPECT_FALSE(env_bool("ORWL_TEST_VAR", false));
}

TEST_F(EnvTest, LongParsesAndFallsBack) {
  setenv("ORWL_TEST_VAR", "42", 1);
  EXPECT_EQ(env_long("ORWL_TEST_VAR", -1), 42);
  setenv("ORWL_TEST_VAR", "-7", 1);
  EXPECT_EQ(env_long("ORWL_TEST_VAR", -1), -7);
  setenv("ORWL_TEST_VAR", "12x", 1);
  EXPECT_THROW(env_long("ORWL_TEST_VAR", -1), std::invalid_argument);
  unsetenv("ORWL_TEST_VAR");
  EXPECT_EQ(env_long("ORWL_TEST_VAR", 99), 99);
}

TEST_F(EnvTest, DoubleParsesAndRejectsGarbage) {
  setenv("ORWL_TEST_VAR", "0.75", 1);
  EXPECT_DOUBLE_EQ(env_double("ORWL_TEST_VAR", -1.0), 0.75);
  setenv("ORWL_TEST_VAR", "0.75oops", 1);
  EXPECT_THROW(env_double("ORWL_TEST_VAR", -1.0), std::invalid_argument);
  unsetenv("ORWL_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("ORWL_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, ScopedEnvRestoresPreviousValue) {
  setenv("ORWL_TEST_VAR", "original", 1);
  {
    ScopedEnv guard("ORWL_TEST_VAR", "shadow");
    EXPECT_EQ(env_string("ORWL_TEST_VAR").value(), "shadow");
    guard.set(nullptr);
    EXPECT_FALSE(env_string("ORWL_TEST_VAR").has_value());
  }
  EXPECT_EQ(env_string("ORWL_TEST_VAR").value(), "original");
}

TEST_F(EnvTest, ScopedEnvRestoresUnsetState) {
  unsetenv("ORWL_TEST_VAR");
  {
    ScopedEnv guard("ORWL_TEST_VAR", "transient");
    EXPECT_EQ(env_string("ORWL_TEST_VAR").value(), "transient");
  }
  EXPECT_FALSE(env_string("ORWL_TEST_VAR").has_value());
}

TEST(IEquals, Basics) {
  EXPECT_TRUE(iequals("TreeMatch", "treematch"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_TRUE(iequals("", ""));
}

// ---------------------------------------------------------------- rng ----

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(SplitMix64, BelowStaysInRange) {
  SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g.below(13), 13u);
  }
}

TEST(SplitMix64, UniformIsInUnitInterval) {
  SplitMix64 g(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, BelowIsRoughlyUniform) {
  SplitMix64 g(5);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) counts[g.below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanMedian) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  const std::vector<double> even{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 5.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

// -------------------------------------------------------------- table ----

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"a", "bbbb"});
  t.row({"cccc", "d"});
  const std::string s = t.render();
  EXPECT_NE(s.find("a    | bbbb"), std::string::npos);
  EXPECT_NE(s.find("cccc | d"), std::string::npos);
}

TEST(TextTable, RaggedRowsRenderEmptyCells) {
  TextTable t;
  t.header({"x", "y", "z"});
  t.row({"1"});
  EXPECT_NO_THROW(t.render());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTable, SeparatorEmitsRule) {
  TextTable t;
  t.header({"h"});
  t.separator();
  t.row({"v"});
  const std::string s = t.render();
  // Header rule + explicit separator -> at least two dashed lines.
  std::size_t dashes = 0;
  for (std::size_t pos = s.find("-"); pos != std::string::npos;
       pos = s.find("\n-", pos + 1)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Format, Si) {
  EXPECT_EQ(format_si(950, 2), "950");
  EXPECT_EQ(format_si(1234567, 2), "1.23M");
  EXPECT_EQ(format_si(81e9, 1), "81.0G");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(1024, 1), "1.0 KiB");
  EXPECT_EQ(format_bytes(20480.0 * 1024, 1), "20.0 MiB");
}

}  // namespace
