#include <gtest/gtest.h>

#include "treematch/comm_matrix.hpp"

namespace {

using orwl::tm::CommMatrix;

TEST(CommMatrix, DefaultEmpty) {
  CommMatrix m;
  EXPECT_EQ(m.order(), 0u);
  EXPECT_DOUBLE_EQ(m.total_volume(), 0.0);
}

TEST(CommMatrix, SetIsSymmetric) {
  CommMatrix m(4);
  m.set(0, 3, 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 7.0);
  EXPECT_DOUBLE_EQ(m.at(3, 0), 7.0);
}

TEST(CommMatrix, AddAccumulates) {
  CommMatrix m(3);
  m.add(1, 2, 2.5);
  m.add(2, 1, 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
}

TEST(CommMatrix, BoundsChecked) {
  CommMatrix m(2);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_THROW(m.set(2, 0, 1.0), std::out_of_range);
}

TEST(CommMatrix, NegativeVolumeRejected) {
  CommMatrix m(2);
  EXPECT_THROW(m.set(0, 1, -1.0), std::invalid_argument);
}

TEST(CommMatrix, TotalVolumeCountsUnorderedPairs) {
  CommMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(1, 2, 2.0);
  m.set(0, 2, 4.0);
  EXPECT_DOUBLE_EQ(m.total_volume(), 7.0);
}

TEST(CommMatrix, RowSumSkipsDiagonal) {
  CommMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(0, 2, 2.0);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 1.0);
}

TEST(CommMatrix, MaxEntry) {
  CommMatrix m(3);
  m.set(0, 1, 5.0);
  m.set(1, 2, 9.0);
  EXPECT_DOUBLE_EQ(m.max_entry(), 9.0);
}

TEST(CommMatrix, VolumeWithinAndBetween) {
  CommMatrix m(4);
  m.set(0, 1, 10.0);
  m.set(2, 3, 20.0);
  m.set(0, 2, 3.0);
  m.set(1, 3, 4.0);
  EXPECT_DOUBLE_EQ(m.volume_within({0, 1}), 10.0);
  EXPECT_DOUBLE_EQ(m.volume_within({2, 3}), 20.0);
  EXPECT_DOUBLE_EQ(m.volume_between({0, 1}, {2, 3}), 7.0);
}

TEST(CommMatrix, AggregatedSumsGroupVolumes) {
  CommMatrix m(4);
  m.set(0, 1, 10.0);
  m.set(2, 3, 20.0);
  m.set(0, 2, 3.0);
  m.set(1, 3, 4.0);
  const CommMatrix agg = m.aggregated({{0, 1}, {2, 3}});
  EXPECT_EQ(agg.order(), 2u);
  EXPECT_DOUBLE_EQ(agg.at(0, 1), 7.0);
}

TEST(CommMatrix, ExtendedPadsWithZeros) {
  CommMatrix m(2);
  m.set(0, 1, 5.0);
  const CommMatrix e = m.extended(4);
  EXPECT_EQ(e.order(), 4u);
  EXPECT_DOUBLE_EQ(e.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(e.at(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(e.at(2, 3), 0.0);
}

TEST(CommMatrix, ExtendedCanTruncate) {
  CommMatrix m(3);
  m.set(0, 1, 5.0);
  const CommMatrix e = m.extended(2);
  EXPECT_EQ(e.order(), 2u);
  EXPECT_DOUBLE_EQ(e.at(0, 1), 5.0);
}

TEST(CommMatrix, HeatmapShapeAndScale) {
  CommMatrix m(5);
  m.set(0, 1, 1e6);
  m.set(3, 4, 1.0);
  const std::string h = m.render_heatmap();
  // 5 data lines plus a header line.
  EXPECT_EQ(std::count(h.begin(), h.end(), '\n'), 6);
  // The strongest edge renders darker than the weakest.
  EXPECT_NE(h.find('@'), std::string::npos);
  EXPECT_NE(h.find('.'), std::string::npos);
  // Diagonal marker present.
  EXPECT_NE(h.find('\\'), std::string::npos);
}

TEST(CommMatrix, HeatmapEmptyMatrix) {
  CommMatrix m(2);
  EXPECT_NO_THROW(m.render_heatmap());
}

}  // namespace
