#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/graph.hpp"
#include "orwl/orwl.hpp"
#include "runtime/steal_deque.hpp"
#include "runtime/steal_executor.hpp"
#include "support/env.hpp"
#include "topo/machines.hpp"
#include "topo/victim.hpp"

namespace {

using orwl::rt::Arena;
using orwl::rt::resolve_steal_mode;
using orwl::rt::resolve_steal_spin;
using orwl::rt::StealDeque;
using orwl::rt::StealExecutor;
using orwl::rt::StealMode;
using orwl::support::ScopedEnv;
using orwl::topo::make_victim_table;
using orwl::topo::Topology;
using orwl::topo::VictimTable;

// ---- the deque ----------------------------------------------------------

TEST(StealDeque, OwnerLifoThiefFifo) {
  StealDeque d(Arena::runtime_default(), 8);
  for (std::uint64_t i = 1; i <= 3; ++i) EXPECT_TRUE(d.push(i));
  std::uint64_t item = 0;
  EXPECT_TRUE(d.pop(item));
  EXPECT_EQ(item, 3u);  // owner end: most recent
  EXPECT_TRUE(d.steal(item));
  EXPECT_EQ(item, 1u);  // thief end: oldest
  EXPECT_TRUE(d.pop(item));
  EXPECT_EQ(item, 2u);
  EXPECT_FALSE(d.pop(item));
  EXPECT_FALSE(d.steal(item));
}

TEST(StealDeque, BoundedPushRefusesWhenFull) {
  StealDeque d(Arena::runtime_default(), 4);
  EXPECT_EQ(d.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(d.push(i));
  EXPECT_FALSE(d.push(99));
  std::uint64_t item = 0;
  ASSERT_TRUE(d.steal(item));
  EXPECT_EQ(item, 0u);
  EXPECT_TRUE(d.push(99));  // one slot freed
}

// Linearizability stress (the test TSan watches): one owner pushing and
// popping against several thieves; every pushed item must be taken
// exactly once, by exactly one side.
TEST(StealDeque, ConcurrentOwnerAndThievesTakeEachItemOnce) {
  constexpr std::uint64_t kItems = 20000;
  constexpr int kThieves = 3;
  StealDeque d(Arena::runtime_default(), 256);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint64_t item = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(item)) {
          taken[item].fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (d.steal(item)) {
        taken[item].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t next = 0;
  std::uint64_t item = 0;
  while (next < kItems) {
    if (d.push(next)) {
      ++next;
    } else if (d.pop(item)) {
      taken[item].fetch_add(1, std::memory_order_relaxed);
    }
    // Every few pushes, pop like a real worker would.
    if (next % 5 == 0 && d.pop(item)) {
      taken[item].fetch_add(1, std::memory_order_relaxed);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  std::uint64_t leftover = 0;
  while (d.pop(leftover)) {
    taken[leftover].fetch_add(1, std::memory_order_relaxed);
  }

  for (std::uint64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
}

// ---- the victim order ---------------------------------------------------

TEST(VictimTable, Smp20e7NodeLocalPrefixThenRemote) {
  const Topology t = orwl::topo::make_smp20e7();  // 20 nodes x 8 cores
  const VictimTable table = make_victim_table(t);
  ASSERT_EQ(table.num_pus, 160u);
  // PU 3 lives on node 0 (PUs 0..7): its 7 same-node victims come
  // first, clockwise from itself (wrap included), remote nodes after.
  const auto row = table.row(3);
  ASSERT_EQ(row.size(), 159u);
  ASSERT_EQ(table.local_count(3), 7u);
  const std::vector<int> expected_local{4, 5, 6, 7, 0, 1, 2};
  for (std::size_t i = 0; i < expected_local.size(); ++i) {
    EXPECT_EQ(row[i], expected_local[i]) << "local victim " << i;
  }
  for (std::size_t i = 7; i < row.size(); ++i) {
    EXPECT_GE(row[i], 8) << "remote victim " << i << " is node-local";
  }
}

TEST(VictimTable, Smp12e5HyperthreadSiblingFirst) {
  const Topology t = orwl::topo::make_smp12e5();  // HT: 2 PUs per core
  const VictimTable table = make_victim_table(t);
  ASSERT_EQ(table.num_pus, 192u);
  // The first victim of every PU is its hyperthread sibling.
  EXPECT_EQ(table.row(0)[0], 1);
  EXPECT_EQ(table.row(1)[0], 0);
  EXPECT_EQ(table.row(190)[0], 191);
  // Same NUMA node = 8 cores x 2 PUs -> 15 local victims.
  EXPECT_EQ(table.local_count(0), 15u);
}

TEST(VictimTable, FlatMachineIsAllLocal) {
  const Topology t = orwl::topo::make_flat(4);
  const VictimTable table = make_victim_table(t);
  ASSERT_EQ(table.num_pus, 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(table.row(p).size(), 3u);
    EXPECT_EQ(table.local_count(p), 3u);  // no NUMA level: whole row
  }
}

TEST(VictimTable, Fig2RowsArePermutations) {
  const Topology t = orwl::topo::make_fig2_machine();
  const VictimTable table = make_victim_table(t);
  for (std::size_t p = 0; p < table.num_pus; ++p) {
    const auto row = table.row(p);
    ASSERT_EQ(row.size(), table.num_pus - 1);
    std::vector<bool> seen(table.num_pus, false);
    for (const int v : row) {
      ASSERT_GE(v, 0);
      ASSERT_LT(static_cast<std::size_t>(v), table.num_pus);
      EXPECT_NE(static_cast<std::size_t>(v), p);
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
}

// ---- the knobs ----------------------------------------------------------

TEST(StealKnobs, OptionsBeatEnv) {
  ScopedEnv env(orwl::rt::kStealEnvVar, "off");
  EXPECT_EQ(resolve_steal_mode(StealMode::FromEnv), StealMode::Off);
  EXPECT_EQ(resolve_steal_mode(StealMode::Node), StealMode::Node);
  EXPECT_EQ(resolve_steal_mode(StealMode::All), StealMode::All);
}

TEST(StealKnobs, EnvDefaultsToAll) {
  ScopedEnv unset(orwl::rt::kStealEnvVar, nullptr);
  EXPECT_EQ(resolve_steal_mode(StealMode::FromEnv), StealMode::All);
}

TEST(StealKnobs, SpinBudget) {
  {
    ScopedEnv env(orwl::rt::kStealSpinEnvVar, "7");
    EXPECT_EQ(resolve_steal_spin(0), 7u);
    EXPECT_EQ(resolve_steal_spin(5), 5u);  // options beat env
  }
  ScopedEnv unset(orwl::rt::kStealSpinEnvVar, nullptr);
  EXPECT_EQ(resolve_steal_spin(0), 64u);
}

// ---- the executor -------------------------------------------------------

StealExecutor::Config test_config(StealMode mode) {
  StealExecutor::Config cfg;
  cfg.mode = mode;
  cfg.spin = 16;
  cfg.deque_capacity = 128;  // small on purpose: exercises the overflow
  return cfg;
}

std::vector<StealExecutor::WorkerSpec> specs_round_robin(std::size_t workers,
                                                         std::size_t pus) {
  std::vector<StealExecutor::WorkerSpec> s(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    s[w].pu = static_cast<int>(w % pus);
  }
  return s;
}

// Every seeded item runs exactly once, even when every seed sits on one
// worker and the rest must steal their share.
TEST(StealExecutor, AllSeedsRunExactlyOnceFromOneHotDeque) {
  const Topology t = orwl::topo::make_numa(2, 2, 1);  // 4 PUs, 2 nodes
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kItems = 5000;
  StealExecutor ex(t, specs_round_robin(kWorkers, 4),
                   test_config(StealMode::All));
  std::vector<std::atomic<int>> ran(kItems);
  for (auto& r : ran) r.store(0, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kItems; ++i) ex.seed(0, i);

  const StealExecutor::ItemFn fn =
      [&ran](std::uint64_t item, StealExecutor::WorkerContext&) {
        ran[item].fetch_add(1, std::memory_order_relaxed);
      };
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] { ex.run_worker(w, fn); });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(ran[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
  const StealExecutor::Stats s = ex.stats();
  EXPECT_EQ(s.executed, kItems);
}

// Termination with bursty re-injection: items spawn children (a binary
// tree per seed), so the frontier repeatedly empties and refills. The
// hierarchical counters must not declare quiescence in a lull.
TEST(StealExecutor, TerminationSurvivesBurstyReinjection) {
  const Topology t = orwl::topo::make_numa(2, 2, 1);
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kDepth = 9;
  constexpr std::uint64_t kRoots = 4;
  // A root of depth d expands to 2^d - 1 nodes.
  constexpr std::uint64_t kExpected = kRoots * ((1u << kDepth) - 1);
  StealExecutor ex(t, specs_round_robin(kWorkers, 4),
                   test_config(StealMode::All));
  for (std::uint64_t r = 0; r < kRoots; ++r) ex.seed(0, kDepth);

  std::atomic<std::uint64_t> count{0};
  const StealExecutor::ItemFn fn =
      [&count](std::uint64_t depth, StealExecutor::WorkerContext& ctx) {
        count.fetch_add(1, std::memory_order_relaxed);
        if (depth > 1) {
          ctx.push(depth - 1);
          ctx.push(depth - 1);
        }
      };
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] { ex.run_worker(w, fn); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(count.load(std::memory_order_relaxed), kExpected);
  EXPECT_EQ(ex.stats().executed, kExpected);
}

// ORWL_STEAL=off: every worker drains exactly its own seeds; the steal
// counters stay at zero and nothing is lost.
TEST(StealExecutor, OffModeRunsEverythingWithoutStealing) {
  const Topology t = orwl::topo::make_numa(2, 2, 1);
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kItems = 2000;
  StealExecutor ex(t, specs_round_robin(kWorkers, 4),
                   test_config(StealMode::Off));
  for (std::uint64_t i = 0; i < kItems; ++i) ex.seed(i % kWorkers, i);

  std::vector<std::atomic<int>> ran(kItems);
  for (auto& r : ran) r.store(0, std::memory_order_relaxed);
  const StealExecutor::ItemFn fn =
      [&ran](std::uint64_t item, StealExecutor::WorkerContext&) {
        ran[item].fetch_add(1, std::memory_order_relaxed);
      };
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] { ex.run_worker(w, fn); });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(ran[i].load(std::memory_order_relaxed), 1) << "item " << i;
  }
  const StealExecutor::Stats s = ex.stats();
  EXPECT_EQ(s.executed, kItems);
  EXPECT_EQ(s.local_steals, 0u);
  EXPECT_EQ(s.remote_steals, 0u);
}

// The same executor serves several sessions back to back (the facade
// reuses one executor for every for_each of a program).
TEST(StealExecutor, SessionsAreReusable) {
  const Topology t = orwl::topo::make_flat(2);
  StealExecutor ex(t, specs_round_robin(2, 2), test_config(StealMode::All));
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::uint64_t> count{0};
    const StealExecutor::ItemFn fn =
        [&count](std::uint64_t, StealExecutor::WorkerContext&) {
          count.fetch_add(1, std::memory_order_relaxed);
        };
    for (std::uint64_t i = 0; i < 100; ++i) ex.seed(i % 2, i);
    std::thread other([&] { ex.run_worker(1, fn); });
    ex.run_worker(0, fn);
    other.join();
    EXPECT_EQ(count.load(std::memory_order_relaxed), 100u) << round;
  }
}

// An anonymous lender (a thread that is not a worker) drains seeded
// work during a session — the lock-blocked-lending path without the
// lock machinery.
TEST(StealExecutor, AnonymousLenderDrainsSeededWork) {
  const Topology t = orwl::topo::make_flat(2);
  StealExecutor ex(t, specs_round_robin(2, 2), test_config(StealMode::All));
  constexpr std::uint64_t kItems = 50;
  for (std::uint64_t i = 0; i < kItems; ++i) ex.seed(i % 2, i);

  std::atomic<std::uint64_t> count{0};
  const StealExecutor::ItemFn fn =
      [&count](std::uint64_t, StealExecutor::WorkerContext& ctx) {
        const std::uint64_t c = count.fetch_add(1, std::memory_order_relaxed);
        if (c == 0) ctx.push(1000);  // re-injection through a lender
      };
  ex.begin_session(fn);
  EXPECT_EQ(StealExecutor::current(), &ex);
  const std::uint64_t ran = ex.lend([] { return false; });
  ex.end_session();
  EXPECT_EQ(StealExecutor::current(), nullptr);

  EXPECT_EQ(ran, kItems + 1);
  EXPECT_EQ(count.load(std::memory_order_relaxed), kItems + 1);
  EXPECT_EQ(ex.stats().lend_executed, kItems + 1);
}

// In Node (and Off) mode a thread with no topology position cannot be
// scoped, so the loan is refused outright.
TEST(StealExecutor, AnonymousLendersRequireAllMode) {
  const Topology t = orwl::topo::make_flat(2);
  StealExecutor ex(t, specs_round_robin(2, 2), test_config(StealMode::Node));
  ex.seed(0, 7);
  std::atomic<std::uint64_t> count{0};
  const StealExecutor::ItemFn fn =
      [&count](std::uint64_t, StealExecutor::WorkerContext&) {
        count.fetch_add(1, std::memory_order_relaxed);
      };
  ex.begin_session(fn);
  EXPECT_EQ(ex.lend([] { return false; }), 0u);
  ex.end_session();
  // Drain the seed so the deque is empty at destruction.
  std::thread w0([&] { ex.run_worker(0, fn); });
  std::thread w1([&] { ex.run_worker(1, fn); });
  w0.join();
  w1.join();
  EXPECT_EQ(count.load(std::memory_order_relaxed), 1u);
}

// ---- the facade (Task::for_each) ----------------------------------------

TEST(ForEach, EmptyCollectiveTerminates) {
  orwl::Program p(3);
  std::atomic<int> done{0};
  p.set_task_body([&done](orwl::Task& t) {
    t.schedule();
    t.for_each({}, [](std::uint64_t, orwl::StealContext&) { FAIL(); });
    done.fetch_add(1, std::memory_order_relaxed);
  });
  p.run();
  EXPECT_EQ(done.load(std::memory_order_relaxed), 3);
}

TEST(ForEach, StatsLandInProgramStats) {
  orwl::Program p(2);
  p.set_task_body([](orwl::Task& t) {
    t.schedule();
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = t.id(); i < 100; i += t.num_tasks()) {
      seeds.push_back(i);
    }
    t.for_each(seeds, [](std::uint64_t, orwl::StealContext&) {});
  });
  p.run();
  EXPECT_EQ(p.stats().steal_executed, 100u);
}

// ---- the graph workloads ------------------------------------------------

class GraphModes : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphModes, BfsMatchesSequential) {
  ScopedEnv mode(orwl::rt::kStealEnvVar, GetParam());
  const auto g = orwl::apps::GridGraph::make(40);
  const auto expect = orwl::apps::bfs_sequential(g, 0);
  const auto got = orwl::apps::bfs_orwl(g, 0, 4);
  EXPECT_EQ(got, expect);
}

TEST_P(GraphModes, PagerankBitIdentical) {
  ScopedEnv mode(orwl::rt::kStealEnvVar, GetParam());
  const auto g = orwl::apps::GridGraph::make(32);
  const auto expect = orwl::apps::pagerank_sequential(g, 5);
  const auto got = orwl::apps::pagerank_orwl(g, 5, 4);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    ASSERT_EQ(got[v], expect[v]) << "vertex " << v;  // bit-identical
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, GraphModes,
                         ::testing::Values("off", "node", "all"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- the generalized reduction ------------------------------------------

TEST(ReduceOp, MinMaxAndSumCombine) {
  orwl::Program p(3);
  std::atomic<int> bad{0};
  p.set_task_body([&bad](orwl::Task& t) {
    t.schedule();
    const double mine = static_cast<double>(t.id());
    if (t.program().reduce_iteration(mine, orwl::ReduceOp::Max) != 2.0) {
      bad.fetch_add(1);
    }
    if (t.program().reduce_iteration(mine, orwl::ReduceOp::Min) != 0.0) {
      bad.fetch_add(1);
    }
    if (t.program().reduce_iteration(mine) != 3.0) {  // sum stays default
      bad.fetch_add(1);
    }
  });
  p.run();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ReduceOp, ConvergedDriverWithMax) {
  orwl::Program p(2);
  std::atomic<int> iters_seen{0};
  p.set_task_body([&iters_seen](orwl::Task& t) {
    t.schedule();
    double residual = 4.0 + static_cast<double>(t.id());
    const std::size_t iters = t.run_iterations(
        [](double global) { return global < 1.0; },
        [&residual](std::size_t) { return residual /= 2.0; },
        orwl::ReduceOp::Max);
    iters_seen.fetch_add(static_cast<int>(iters));
  });
  p.run();
  // Task 1 starts at 5.0: halved to 2.5, 1.25, 0.625 -> 3 iterations,
  // uniform across both tasks because the max is shared.
  EXPECT_EQ(iters_seen.load(), 6);
}

}  // namespace
