#include <gtest/gtest.h>

#include "apps/lk23.hpp"

namespace {

using namespace orwl::apps;

orwl::rt::ProgramOptions quiet() {
  orwl::rt::ProgramOptions o;
  o.affinity = orwl::rt::AffinityMode::Off;
  o.acquire_timeout_ms = 30000;
  return o;
}

TEST(Lk23, GenerateValidatesSize) {
  EXPECT_THROW(Lk23Problem::generate(2), std::invalid_argument);
  const auto p = Lk23Problem::generate(8);
  EXPECT_EQ(p.za.size(), 64u);
}

TEST(Lk23, SequentialChangesInterior) {
  auto p = Lk23Problem::generate(16);
  const auto before = p.za;
  lk23_sequential(p, 3);
  // Boundary ring untouched.
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(p.za[k], before[k]);
    EXPECT_EQ(p.za[15 * 16 + k], before[15 * 16 + k]);
    EXPECT_EQ(p.za[k * 16], before[k * 16]);
    EXPECT_EQ(p.za[k * 16 + 15], before[k * 16 + 15]);
  }
  // Interior changed somewhere.
  EXPECT_NE(p.za, before);
}

TEST(Lk23, SequentialIsDeterministic) {
  auto p1 = Lk23Problem::generate(20);
  auto p2 = Lk23Problem::generate(20);
  lk23_sequential(p1, 5);
  lk23_sequential(p2, 5);
  EXPECT_EQ(p1.za, p2.za);
}

struct Lk23Case {
  std::size_t n, iters, by, bx;
};

class Lk23OrwlTest : public ::testing::TestWithParam<Lk23Case> {};

TEST_P(Lk23OrwlTest, BitIdenticalToSequential) {
  const auto [n, iters, by, bx] = GetParam();
  auto seq = Lk23Problem::generate(n);
  auto par = Lk23Problem::generate(n);
  ASSERT_EQ(seq.za, par.za);
  lk23_sequential(seq, iters);
  lk23_orwl(par, iters, by, bx, quiet());
  EXPECT_EQ(seq.za, par.za) << "Gauss-Seidel wavefront must reproduce the "
                               "sequential sweep exactly";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lk23OrwlTest,
    ::testing::Values(Lk23Case{10, 1, 1, 1},   // single block
                      Lk23Case{10, 3, 2, 2},   // 2x2 blocks
                      Lk23Case{18, 4, 2, 4},   // rectangular grid
                      Lk23Case{18, 4, 4, 2},
                      Lk23Case{33, 2, 3, 3},   // uneven block sizes
                      Lk23Case{16, 6, 1, 4},   // column strips
                      Lk23Case{16, 6, 4, 1},   // row strips
                      Lk23Case{40, 2, 5, 5}));

class Lk23ForkJoinTest : public ::testing::TestWithParam<Lk23Case> {};

TEST_P(Lk23ForkJoinTest, BitIdenticalToSequential) {
  const auto [n, iters, by, bx] = GetParam();
  auto seq = Lk23Problem::generate(n);
  auto par = Lk23Problem::generate(n);
  lk23_sequential(seq, iters);
  orwl::pool::ThreadPool pool(4);
  lk23_forkjoin(par, iters, by, bx, pool);
  EXPECT_EQ(seq.za, par.za);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lk23ForkJoinTest,
    ::testing::Values(Lk23Case{10, 3, 2, 2}, Lk23Case{18, 4, 3, 2},
                      Lk23Case{33, 2, 4, 4}, Lk23Case{16, 5, 1, 1}));

TEST(Lk23, OrwlRejectsBadBlockGrid) {
  auto p = Lk23Problem::generate(8);
  EXPECT_THROW(lk23_orwl(p, 1, 0, 2, quiet()), std::invalid_argument);
  EXPECT_THROW(lk23_orwl(p, 1, 7, 1, quiet()), std::invalid_argument);
}

TEST(Lk23, ConvergedMatchesFixedSweepsWhenToleranceIsUnreachable) {
  // tol = 0 can never be met (the residual stays positive while cells
  // still move), so the converged driver must cap at max_iters and
  // produce the exact fixed-count result.
  auto seq = Lk23Problem::generate(24);
  auto par = Lk23Problem::generate(24);
  lk23_sequential(seq, 4);
  const std::size_t ran = lk23_orwl_converged(par, 0.0, 4, 2, 2, quiet());
  EXPECT_EQ(ran, 4u);
  EXPECT_EQ(seq.za, par.za);
}

TEST(Lk23, ConvergedStopsEarlyOnLooseTolerance) {
  // A huge tolerance is met after the very first sweep; the state then
  // equals one sequential sweep bit-for-bit.
  auto seq = Lk23Problem::generate(24);
  auto par = Lk23Problem::generate(24);
  lk23_sequential(seq, 1);
  const std::size_t ran = lk23_orwl_converged(par, 1e30, 100, 2, 2, quiet());
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(seq.za, par.za);
}

TEST(Lk23, ConvergedValidatesArguments) {
  auto p = Lk23Problem::generate(8);
  EXPECT_THROW(lk23_orwl_converged(p, 0.0, 0, 2, 2, quiet()),
               std::invalid_argument);
  EXPECT_THROW(lk23_orwl_converged(p, 0.0, 1, 0, 2, quiet()),
               std::invalid_argument);
}

TEST(Lk23, OrwlWithAffinityEnabledStillCorrect) {
  // End-to-end: the affinity module on, real binding on the host.
  auto seq = Lk23Problem::generate(24);
  auto par = Lk23Problem::generate(24);
  lk23_sequential(seq, 3);
  orwl::rt::ProgramOptions o;
  o.affinity = orwl::rt::AffinityMode::On;
  o.acquire_timeout_ms = 30000;
  lk23_orwl(par, 3, 2, 2, o);
  EXPECT_EQ(seq.za, par.za);
}

TEST(Lk23, OpsCommMatrixStructure) {
  // 2x2 blocks -> 16 threads. Check the signature structure of the
  // paper's decomposition: the 4 ops of one block communicate heavily;
  // neighbor blocks only via thin halos.
  const std::size_t n = 66;  // 64x64 interior, 32x32 blocks
  const auto m = lk23_ops_comm_matrix(n, 2, 2);
  ASSERT_EQ(m.order(), 16u);

  // Intra-block: center (4b) <-> border handlers (4b+1, 4b+2) move whole
  // blocks; gatherer (4b+3) -> center moves the halo frame.
  const double block_bytes = 32.0 * 32.0 * 8.0;
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(m.at(4 * b, 4 * b + 1), block_bytes);
    EXPECT_DOUBLE_EQ(m.at(4 * b, 4 * b + 2), block_bytes);
    EXPECT_GT(m.at(4 * b, 4 * b + 3), 0.0);
  }
  // Inter-block: gatherer of block 0 reads halos from block 1 (east) and
  // block 2 (south) border handlers.
  EXPECT_GT(m.at(3, 4 + 2), 0.0);   // block0 gatherer <- block1 col-handler
  EXPECT_GT(m.at(3, 8 + 1), 0.0);   // block0 gatherer <- block2 row-handler
  // No direct center-center communication.
  EXPECT_DOUBLE_EQ(m.at(0, 4), 0.0);
  // Intra-block volume dominates inter-block volume.
  double intra = 0, inter = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (i / 4 == j / 4) {
        intra += m.at(i, j);
      } else {
        inter += m.at(i, j);
      }
    }
  }
  EXPECT_GT(intra, 5.0 * inter);
}

}  // namespace
