#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/control_plane.hpp"
#include "runtime/request_queue.hpp"

namespace {

using namespace orwl::rt;

TEST(RequestQueue, FirstWriterGrantedImmediately) {
  RequestQueue q;
  const Ticket w = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w));
}

TEST(RequestQueue, SecondWriterWaitsForFirst) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w1));
  EXPECT_FALSE(q.granted(w2));
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
}

TEST(RequestQueue, LeadingReadersShareTheGrant) {
  RequestQueue q;
  const Ticket r1 = q.enqueue(AccessMode::Read);
  const Ticket r2 = q.enqueue(AccessMode::Read);
  const Ticket w = q.enqueue(AccessMode::Write);
  const Ticket r3 = q.enqueue(AccessMode::Read);
  EXPECT_TRUE(q.granted(r1));
  EXPECT_TRUE(q.granted(r2));
  EXPECT_FALSE(q.granted(w));
  EXPECT_FALSE(q.granted(r3)) << "reads behind a write must not be granted";
  q.release(r1);
  EXPECT_FALSE(q.granted(w)) << "writer waits for the whole read group";
  q.release(r2);
  EXPECT_TRUE(q.granted(w));
  q.release(w);
  EXPECT_TRUE(q.granted(r3));
  q.release(r3);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestQueue, FifoOrderIsRespected) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket r1 = q.enqueue(AccessMode::Read);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w1));
  q.release(w1);
  EXPECT_TRUE(q.granted(r1));
  EXPECT_FALSE(q.granted(w2));
  q.release(r1);
  EXPECT_TRUE(q.granted(w2));
  q.release(w2);
}

TEST(RequestQueue, ReleaseOfUngrantedThrows) {
  RequestQueue q;
  q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.release(w2), std::logic_error);
}

TEST(RequestQueue, ReleaseOfUnknownTicketThrows) {
  RequestQueue q;
  EXPECT_THROW(q.release(12345), std::logic_error);
}

TEST(RequestQueue, AcquireUnknownTicketThrows) {
  RequestQueue q;
  EXPECT_THROW(q.acquire(42), std::runtime_error);
}

TEST(RequestQueue, AcquireTimesOutOnDeadlock) {
  RequestQueue q;
  q.set_acquire_timeout(50);
  q.enqueue(AccessMode::Write);  // never released
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.acquire(w2), std::runtime_error);
}

TEST(RequestQueue, ReinsertAndReleaseKeepsCycle) {
  // Two iterative participants: writer (prio pos 0) and reader (pos 1).
  RequestQueue q;
  Ticket w = q.enqueue(AccessMode::Write);
  Ticket r = q.enqueue(AccessMode::Read);
  for (int iter = 0; iter < 10; ++iter) {
    EXPECT_TRUE(q.granted(w)) << "iteration " << iter;
    EXPECT_FALSE(q.granted(r));
    w = q.reinsert_and_release(w, AccessMode::Write);
    EXPECT_TRUE(q.granted(r));
    EXPECT_FALSE(q.granted(w));
    r = q.reinsert_and_release(r, AccessMode::Read);
  }
  EXPECT_EQ(q.pending(), 2u);
}

TEST(RequestQueue, AcquireBlocksUntilGrant) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    q.acquire(w2);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  q.release(w1);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueue, ManyThreadsMutualExclusion) {
  // N writer threads iterate on the same location; the counter must never
  // be updated concurrently.
  RequestQueue q;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<Ticket> tickets(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tickets[static_cast<std::size_t>(t)] = q.enqueue(AccessMode::Write);
  }
  int counter = 0;           // protected by the queue's exclusivity
  std::atomic<int> in_section{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Ticket mine = tickets[static_cast<std::size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        q.acquire(mine);
        if (in_section.fetch_add(1) != 0) overlap.store(true);
        ++counter;
        in_section.fetch_sub(1);
        mine = q.reinsert_and_release(mine, AccessMode::Write);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(RequestQueue, GrantsCountedForStats) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  q.enqueue(AccessMode::Write);
  EXPECT_EQ(q.total_grants(), 1u);
  q.release(w1);
  EXPECT_EQ(q.total_grants(), 2u);
}

// ------------------------------------------------------ control plane ----

TEST(ControlPlane, HandsOffGrantsThroughControlThreads) {
  ControlPlane cp(2);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  q.acquire(w2);  // must be granted via a control thread
  q.release(w2);
  cp.stop();
  EXPECT_GE(cp.events_processed(), 1u);
}

TEST(ControlPlane, ZeroThreadsMeansInlineGrants) {
  ControlPlane cp(0);
  cp.start();
  EXPECT_FALSE(cp.running());
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
  q.release(w2);
}

TEST(ControlPlane, StopDrainsPendingEvents) {
  ControlPlane cp(1);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  cp.stop();
  // Whether the control thread or the drain performed it, the grant must
  // have happened.
  q.acquire(w2);
  q.release(w2);
}

TEST(ControlPlane, StressManyQueuesManyThreads) {
  ControlPlane cp(4);
  cp.start();
  constexpr int kQueues = 16;
  constexpr int kIters = 100;
  std::vector<RequestQueue> queues(kQueues);
  for (auto& q : queues) q.set_control_plane(&cp);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < kQueues; ++i) {
    threads.emplace_back([&, i] {
      RequestQueue& q = queues[static_cast<std::size_t>(i)];
      Ticket t = q.enqueue(AccessMode::Write);
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, AccessMode::Write);
      }
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), kQueues);
  cp.stop();
  EXPECT_GT(cp.events_processed(), 0u);
}

}  // namespace
