#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "orwl/orwl.hpp"
#include "support/rng.hpp"

namespace {

using namespace orwl::rt;

TEST(RequestQueue, FirstWriterGrantedImmediately) {
  RequestQueue q;
  const Ticket w = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w));
}

TEST(RequestQueue, SecondWriterWaitsForFirst) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w1));
  EXPECT_FALSE(q.granted(w2));
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
}

TEST(RequestQueue, LeadingReadersShareTheGrant) {
  RequestQueue q;
  const Ticket r1 = q.enqueue(AccessMode::Read);
  const Ticket r2 = q.enqueue(AccessMode::Read);
  const Ticket w = q.enqueue(AccessMode::Write);
  const Ticket r3 = q.enqueue(AccessMode::Read);
  EXPECT_TRUE(q.granted(r1));
  EXPECT_TRUE(q.granted(r2));
  EXPECT_FALSE(q.granted(w));
  EXPECT_FALSE(q.granted(r3)) << "reads behind a write must not be granted";
  q.release(r1);
  EXPECT_FALSE(q.granted(w)) << "writer waits for the whole read group";
  q.release(r2);
  EXPECT_TRUE(q.granted(w));
  q.release(w);
  EXPECT_TRUE(q.granted(r3));
  q.release(r3);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestQueue, FifoOrderIsRespected) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket r1 = q.enqueue(AccessMode::Read);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w1));
  q.release(w1);
  EXPECT_TRUE(q.granted(r1));
  EXPECT_FALSE(q.granted(w2));
  q.release(r1);
  EXPECT_TRUE(q.granted(w2));
  q.release(w2);
}

TEST(RequestQueue, ReleaseOfUngrantedThrows) {
  RequestQueue q;
  q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.release(w2), std::logic_error);
}

TEST(RequestQueue, ReleaseOfUnknownTicketThrows) {
  RequestQueue q;
  EXPECT_THROW(q.release(12345), std::logic_error);
}

TEST(RequestQueue, AcquireUnknownTicketThrows) {
  RequestQueue q;
  EXPECT_THROW(q.acquire(42), std::runtime_error);
}

TEST(RequestQueue, AcquireTimesOutOnDeadlock) {
  RequestQueue q;
  q.set_acquire_timeout(50);
  q.enqueue(AccessMode::Write);  // never released
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.acquire(w2), std::runtime_error);
}

TEST(RequestQueue, ReinsertAndReleaseKeepsCycle) {
  // Two iterative participants: writer (prio pos 0) and reader (pos 1).
  RequestQueue q;
  Ticket w = q.enqueue(AccessMode::Write);
  Ticket r = q.enqueue(AccessMode::Read);
  for (int iter = 0; iter < 10; ++iter) {
    EXPECT_TRUE(q.granted(w)) << "iteration " << iter;
    EXPECT_FALSE(q.granted(r));
    w = q.reinsert_and_release(w, AccessMode::Write);
    EXPECT_TRUE(q.granted(r));
    EXPECT_FALSE(q.granted(w));
    r = q.reinsert_and_release(r, AccessMode::Read);
  }
  EXPECT_EQ(q.pending(), 2u);
}

TEST(RequestQueue, AcquireBlocksUntilGrant) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    q.acquire(w2);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  q.release(w1);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueue, ManyThreadsMutualExclusion) {
  // N writer threads iterate on the same location; the counter must never
  // be updated concurrently.
  RequestQueue q;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<Ticket> tickets(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tickets[static_cast<std::size_t>(t)] = q.enqueue(AccessMode::Write);
  }
  int counter = 0;           // protected by the queue's exclusivity
  std::atomic<int> in_section{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Ticket mine = tickets[static_cast<std::size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        q.acquire(mine);
        if (in_section.fetch_add(1) != 0) overlap.store(true);
        ++counter;
        in_section.fetch_sub(1);
        mine = q.reinsert_and_release(mine, AccessMode::Write);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(RequestQueue, GrantsCountedForStats) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  q.enqueue(AccessMode::Write);
  EXPECT_EQ(q.total_grants(), 1u);
  q.release(w1);
  EXPECT_EQ(q.total_grants(), 2u);
}

// ------------------------------------------------- grant-engine checks ----

TEST(RequestQueue, GrantedIsFalseForReleasedAndUnknownTickets) {
  RequestQueue q;
  const Ticket w1 = q.enqueue(AccessMode::Write);
  EXPECT_TRUE(q.granted(w1));
  q.release(w1);
  EXPECT_FALSE(q.granted(w1));
  // Cycle enough tickets through the small queue that the slot and window
  // index of w1 are reused several times; the stale ticket must keep
  // reading as not-granted.
  Ticket t = q.enqueue(AccessMode::Write);
  for (int i = 0; i < 100; ++i) {
    q.acquire(t);
    t = q.reinsert_and_release(t, AccessMode::Write);
  }
  EXPECT_FALSE(q.granted(w1));
  EXPECT_TRUE(q.granted(t));
  EXPECT_FALSE(q.granted(t + 1));    // not yet issued
  EXPECT_FALSE(q.granted(123456));   // never issued
  EXPECT_EQ(q.pending(), 1u);
}

TEST(RequestQueue, ReacquireOfParkedTicketKeepsWaiting) {
  // A timed-out acquire leaves its parking announcement in the slot's
  // state word; a retry of the same live ticket must wait again (and
  // succeed once granted), not be rejected as unknown.
  RequestQueue q;
  q.set_acquire_timeout(50);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.acquire(w2), std::runtime_error);  // times out (parked)
  const auto t0 = std::chrono::steady_clock::now();
  try {
    q.acquire(w2);  // still ungranted: must time out again, not throw early
    FAIL() << "acquire of an ungranted ticket returned";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                  .count(),
              40);
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.release(w1);
  });
  q.acquire(w2);  // third try: parked again, then granted and woken
  releaser.join();
  q.release(w2);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestQueue, TimedOutTicketCanStillBeGrantedLater) {
  // A timeout abandons the wait, not the request: the entry stays queued
  // (parked) and a later hand-off grants it; re-acquiring then succeeds
  // through the lock-free fast path.
  RequestQueue q;
  q.set_acquire_timeout(50);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.acquire(w2), std::runtime_error);
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
  q.acquire(w2);
  q.release(w2);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestQueue, WindowGrowthPreservesFifoAndGroupGrants) {
  // 300 queued requests force the ticket window to double several times
  // (it starts far smaller); FIFO order and reader-group grants must
  // survive every growth, including out-of-order releases inside a group.
  RequestQueue q;
  const Ticket first = q.enqueue(AccessMode::Write);
  struct Req {
    Ticket ticket;
    AccessMode mode;
  };
  std::vector<Req> reqs;
  for (int i = 0; i < 300; ++i) {
    // Blocks of three: WWW RRR WWW ...
    const AccessMode m =
        (i / 3) % 2 == 0 ? AccessMode::Write : AccessMode::Read;
    reqs.push_back({q.enqueue(m), m});
  }
  EXPECT_TRUE(q.granted(first));
  for (const Req& r : reqs) EXPECT_FALSE(q.granted(r.ticket));
  q.release(first);

  std::size_t i = 0;
  while (i < reqs.size()) {
    if (reqs[i].mode == AccessMode::Write) {
      EXPECT_TRUE(q.granted(reqs[i].ticket)) << "writer at " << i;
      if (i + 1 < reqs.size()) {
        EXPECT_FALSE(q.granted(reqs[i + 1].ticket)) << "behind writer " << i;
      }
      q.release(reqs[i].ticket);
      ++i;
      continue;
    }
    // The whole contiguous read run must be granted together, the write
    // behind it must not be.
    std::size_t end = i;
    while (end < reqs.size() && reqs[end].mode == AccessMode::Read) ++end;
    for (std::size_t j = i; j < end; ++j) {
      EXPECT_TRUE(q.granted(reqs[j].ticket)) << "reader at " << j;
    }
    if (end < reqs.size()) {
      EXPECT_FALSE(q.granted(reqs[end].ticket)) << "writer behind group";
    }
    // Release the group out of order (middle first) to exercise tombstone
    // skipping when the head advances.
    std::vector<std::size_t> order;
    for (std::size_t j = i; j < end; ++j) order.push_back(j);
    std::rotate(order.begin(), order.begin() + order.size() / 2,
                order.end());
    for (std::size_t j : order) q.release(reqs[j].ticket);
    i = end;
  }
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.total_grants(), static_cast<std::uint64_t>(reqs.size()) + 1);
}

TEST(RequestQueue, ConcurrentGrowthVersusLockFreeLookups) {
  // The ticket window doubles while other threads poll granted() and park
  // in acquire(): the lock-free lookups must stay correct across window
  // publication (this is the test TSan watches for the retired-window
  // scheme).
  RequestQueue q;
  q.set_acquire_timeout(20000);
  const Ticket gate = q.enqueue(AccessMode::Write);
  constexpr int kWaiters = 4;
  std::vector<Ticket> writers;
  for (int i = 0; i < kWaiters; ++i) {
    writers.push_back(q.enqueue(AccessMode::Write));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, t = writers[static_cast<std::size_t>(i)]] {
      while (!q.granted(t)) std::this_thread::yield();
      q.acquire(t);  // lock-free fast path after the poll
      q.release(t);
    });
  }
  // Force several window growths while the pollers hammer the lock-free
  // paths: 600 reads push the span from a handful to the hundreds.
  std::vector<Ticket> readers;
  for (int i = 0; i < 600; ++i) {
    readers.push_back(q.enqueue(AccessMode::Read));
  }
  q.release(gate);  // cascade: writers drain one by one, then the reads
  for (auto& th : threads) th.join();
  for (Ticket r : readers) {
    EXPECT_TRUE(q.granted(r));
    q.release(r);
  }
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.total_grants(),
            static_cast<std::uint64_t>(1 + kWaiters) + readers.size());
}

// A straightforward deque-scan implementation of the Sec. III grant rule,
// used as the oracle for the randomized equivalence test below.
class ReferenceQueue {
 public:
  Ticket enqueue(AccessMode mode) {
    q_.push_back({next_++, mode, false});
    grant();
    return q_.back().ticket;
  }
  void release(Ticket t) {
    const auto it =
        std::find_if(q_.begin(), q_.end(),
                     [&](const Entry& e) { return e.ticket == t; });
    ASSERT_TRUE(it != q_.end() && it->granted);
    q_.erase(it);
    grant();
  }
  bool granted(Ticket t) const {
    const auto it =
        std::find_if(q_.begin(), q_.end(),
                     [&](const Entry& e) { return e.ticket == t; });
    return it != q_.end() && it->granted;
  }
  std::size_t pending() const { return q_.size(); }
  std::uint64_t total_grants() const { return grants_; }

 private:
  struct Entry {
    Ticket ticket;
    AccessMode mode;
    bool granted;
  };
  void grant() {
    if (q_.empty()) return;
    if (q_.front().mode == AccessMode::Write) {
      if (!q_.front().granted) {
        q_.front().granted = true;
        ++grants_;
      }
      return;
    }
    for (auto& e : q_) {
      if (e.mode != AccessMode::Read) break;
      if (!e.granted) {
        e.granted = true;
        ++grants_;
      }
    }
  }
  std::deque<Entry> q_;
  Ticket next_ = 1;
  std::uint64_t grants_ = 0;
};

TEST(RequestQueue, RandomizedOpsMatchReferenceModel) {
  // Drive the engine and the deque oracle with the same random op stream
  // (seeded, reproducible) and require identical observable state after
  // every step: granted() per live ticket, pending(), total grants.
  orwl::support::SplitMix64 rng(0xE17);
  RequestQueue q;
  ReferenceQueue ref;
  std::vector<Ticket> live;
  for (int step = 0; step < 2000; ++step) {
    std::vector<Ticket> releasable;
    for (Ticket t : live) {
      if (ref.granted(t)) releasable.push_back(t);
    }
    const bool do_enqueue =
        releasable.empty() || live.size() < 4 || rng.below(2) == 0;
    if (do_enqueue) {
      const AccessMode m =
          rng.below(3) == 0 ? AccessMode::Write : AccessMode::Read;
      const Ticket a = q.enqueue(m);
      const Ticket b = ref.enqueue(m);
      ASSERT_EQ(a, b) << "step " << step;
      live.push_back(a);
    } else {
      const Ticket t = releasable[rng.below(releasable.size())];
      q.release(t);
      ref.release(t);
      live.erase(std::find(live.begin(), live.end(), t));
    }
    ASSERT_EQ(q.pending(), ref.pending()) << "step " << step;
    ASSERT_EQ(q.total_grants(), ref.total_grants()) << "step " << step;
    for (Ticket t : live) {
      ASSERT_EQ(q.granted(t), ref.granted(t))
          << "step " << step << " ticket " << t;
    }
  }
}

TEST(RequestQueue, StressMixedModesFifoGroupsAndGrantCount) {
  // Many threads, mixed read/write, randomized reinsert modes. Checks,
  // under load (and under TSan in CI): writers are exclusive, readers
  // never overlap a writer, grants are handed out in FIFO ticket order
  // (out-of-ticket-order acquires may only be readers of one shared
  // group), and every request is granted exactly once.
  RequestQueue q;
  q.set_acquire_timeout(20000);
  constexpr int kThreads = 8;
  constexpr int kIters = 60;

  std::vector<Ticket> start(kThreads);
  std::vector<AccessMode> start_mode(kThreads);
  orwl::support::SplitMix64 seed_rng(7);
  for (int i = 0; i < kThreads; ++i) {
    start_mode[static_cast<std::size_t>(i)] =
        seed_rng.below(3) == 0 ? AccessMode::Write : AccessMode::Read;
    start[static_cast<std::size_t>(i)] =
        q.enqueue(start_mode[static_cast<std::size_t>(i)]);
  }

  std::atomic<int> active_readers{0};
  std::atomic<int> active_writers{0};
  std::atomic<bool> overlap{false};
  std::mutex log_mu;
  std::vector<std::pair<Ticket, AccessMode>> log;

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      orwl::support::SplitMix64 rng(1000 + static_cast<std::uint64_t>(i));
      Ticket t = start[static_cast<std::size_t>(i)];
      AccessMode mode = start_mode[static_cast<std::size_t>(i)];
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        if (mode == AccessMode::Write) {
          if (active_writers.fetch_add(1) != 0 ||
              active_readers.load() != 0) {
            overlap.store(true);
          }
        } else {
          active_readers.fetch_add(1);
          if (active_writers.load() != 0) overlap.store(true);
        }
        {
          std::lock_guard lock(log_mu);
          log.emplace_back(t, mode);
        }
        if (mode == AccessMode::Write) {
          active_writers.fetch_sub(1);
        } else {
          active_readers.fetch_sub(1);
        }
        // The final iteration releases without reinserting: a pending
        // ticket abandoned by a finished thread would block every later
        // request forever (writers are exclusive).
        if (k + 1 == kIters) {
          q.release(t);
        } else {
          mode = rng.below(3) == 0 ? AccessMode::Write : AccessMode::Read;
          t = q.reinsert_and_release(t, mode);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.total_grants(),
            static_cast<std::uint64_t>(kThreads) * kIters);

  // FIFO per ticket: grants happen in ticket order, so two acquires out
  // of ticket order can only be readers sharing one group grant.
  for (std::size_t a = 0; a < log.size(); ++a) {
    for (std::size_t b = a + 1; b < log.size(); ++b) {
      if (log[a].first > log[b].first) {
        EXPECT_EQ(log[a].second, AccessMode::Read)
            << "ticket " << log[a].first << " before " << log[b].first;
        EXPECT_EQ(log[b].second, AccessMode::Read)
            << "ticket " << log[b].first << " after " << log[a].first;
      }
    }
  }
}

// ------------------------------------------- futex vs condvar parking ----

// Every blocking behavior must be identical under both parking paths;
// ORWL_FUTEX only changes *how* a parked thread sleeps, never *when* it
// wakes. The fixture forces the path explicitly so the suite covers both
// regardless of the environment's default.
class RequestQueueParking : public ::testing::TestWithParam<bool> {
 protected:
  bool want_futex() const { return GetParam(); }
  void configure(RequestQueue& q) const {
    q.set_futex(want_futex());
    if (want_futex()) {
      // On hosts without futex support set_futex downgrades; skip the
      // futex leg there rather than re-testing the condvar path twice.
      if (!q.futex_parking()) GTEST_SKIP() << "no futex on this host";
    } else {
      ASSERT_FALSE(q.futex_parking());
    }
  }
};

TEST_P(RequestQueueParking, AcquireBlocksUntilGrant) {
  RequestQueue q;
  configure(q);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    q.acquire(w2);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  q.release(w1);
  waiter.join();
  EXPECT_TRUE(got.load());
  if (want_futex()) {
    EXPECT_GE(q.futex_wakes(), 1u);
  } else {
    EXPECT_EQ(q.futex_waits(), 0u);
    EXPECT_EQ(q.futex_wakes(), 0u);
  }
}

TEST_P(RequestQueueParking, AcquireTimesOutOnDeadlock) {
  RequestQueue q;
  configure(q);
  q.set_acquire_timeout(50);
  q.enqueue(AccessMode::Write);  // never released
  const Ticket w2 = q.enqueue(AccessMode::Write);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(q.acquire(w2), std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(45));
}

TEST_P(RequestQueueParking, TimedOutTicketStillGrantableLater) {
  RequestQueue q;
  configure(q);
  q.set_acquire_timeout(30);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  EXPECT_THROW(q.acquire(w2), std::runtime_error);
  q.release(w1);
  q.acquire(w2);  // grant arrived after the timeout: still usable
  q.release(w2);
}

TEST_P(RequestQueueParking, ManyThreadsMutualExclusion) {
  RequestQueue q;
  configure(q);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<Ticket> tickets(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tickets[static_cast<std::size_t>(t)] = q.enqueue(AccessMode::Write);
  }
  int counter = 0;
  std::atomic<int> in_section{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Ticket mine = tickets[static_cast<std::size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        q.acquire(mine);
        if (in_section.fetch_add(1) != 0) overlap.store(true);
        ++counter;
        in_section.fetch_sub(1);
        mine = q.reinsert_and_release(mine, AccessMode::Write);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(counter, kThreads * kIters);
}

INSTANTIATE_TEST_SUITE_P(FutexAndCondvar, RequestQueueParking,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "futex" : "condvar";
                         });

// ------------------------------------------------------ control plane ----

TEST(ControlPlane, HandsOffGrantsThroughControlThreads) {
  ControlPlane cp(2);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  q.acquire(w2);  // must be granted via a control thread
  q.release(w2);
  cp.stop();
  EXPECT_GE(cp.events_processed(), 1u);
}

TEST(ControlPlane, ZeroThreadsMeansInlineGrants) {
  ControlPlane cp(0);
  cp.start();
  EXPECT_FALSE(cp.running());
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  EXPECT_TRUE(q.granted(w2));
  q.release(w2);
}

TEST(ControlPlane, StopDrainsPendingEvents) {
  ControlPlane cp(1);
  cp.start();
  RequestQueue q;
  q.set_control_plane(&cp);
  const Ticket w1 = q.enqueue(AccessMode::Write);
  const Ticket w2 = q.enqueue(AccessMode::Write);
  q.release(w1);
  cp.stop();
  // Whether the control thread or the drain performed it, the grant must
  // have happened.
  q.acquire(w2);
  q.release(w2);
}

TEST(ControlPlane, StressManyQueuesManyThreads) {
  ControlPlane cp(4);
  cp.start();
  constexpr int kQueues = 16;
  constexpr int kIters = 100;
  std::vector<RequestQueue> queues(kQueues);
  for (auto& q : queues) q.set_control_plane(&cp);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < kQueues; ++i) {
    threads.emplace_back([&, i] {
      RequestQueue& q = queues[static_cast<std::size_t>(i)];
      Ticket t = q.enqueue(AccessMode::Write);
      for (int k = 0; k < kIters; ++k) {
        q.acquire(t);
        t = q.reinsert_and_release(t, AccessMode::Write);
      }
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), kQueues);
  cp.stop();
  EXPECT_GT(cp.events_processed(), 0u);
}

}  // namespace
