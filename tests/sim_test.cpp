#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "sim/simulator.hpp"
#include "treematch/strategies.hpp"

namespace {

using namespace orwl;
using namespace orwl::sim;

Workload small_ring(std::size_t threads, double bytes) {
  Workload w;
  w.name = "ring";
  w.num_threads = threads;
  w.comm = tm::CommMatrix(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    w.comm.add(t, (t + 1) % threads, bytes);
  }
  w.flops.assign(threads, 1e9);
  w.stream_bytes.assign(threads, 1e6);
  w.shared_bytes.assign(threads, 0.0);
  w.wset_bytes.assign(threads, 1e6);
  w.iterations = 10;
  return w;
}

BindSpec bind_with(tm::Strategy s, const MachineModel& m,
                   const Workload& w) {
  return BindSpec::bound(
      tm::place_strategy(s, m.topology, w.num_threads, &w.comm));
}

// ---------------------------------------------------------- validation ----

TEST(Simulator, RejectsEmptyWorkload) {
  const MachineModel m = MachineModel::smp12e5();
  EXPECT_THROW(simulate(m, Workload{}, BindSpec::os_scheduled()),
               std::invalid_argument);
}

TEST(Simulator, RejectsMismatchedVectors) {
  const MachineModel m = MachineModel::smp12e5();
  Workload w = small_ring(4, 1e6);
  w.flops.resize(3);
  EXPECT_THROW(simulate(m, w, BindSpec::os_scheduled()),
               std::invalid_argument);
}

TEST(Simulator, RejectsShortPlacement) {
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = small_ring(8, 1e6);
  tm::Placement p;
  p.compute_pu = {0, 1};
  EXPECT_THROW(simulate(m, w, BindSpec::bound(p)), std::invalid_argument);
}

TEST(Simulator, DeterministicForSeed) {
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = small_ring(16, 1e7);
  const SimResult a = simulate(m, w, BindSpec::os_scheduled(7));
  const SimResult b = simulate(m, w, BindSpec::os_scheduled(7));
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.counters.l3_misses, b.counters.l3_misses);
  EXPECT_DOUBLE_EQ(a.counters.cpu_migrations, b.counters.cpu_migrations);
}

// ---------------------------------------------------- paper properties ----

TEST(Simulator, BoundPlacementHasZeroMigrations) {
  // Tables II-IV: "CPU migration is reduced to 0 when enabling the
  // affinity strategies".
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = small_ring(32, 1e7);
  const SimResult bound = simulate(m, w, bind_with(tm::Strategy::TreeMatch, m, w));
  EXPECT_DOUBLE_EQ(bound.counters.cpu_migrations, 0.0);
  const SimResult os = simulate(m, w, BindSpec::os_scheduled());
  EXPECT_GT(os.counters.cpu_migrations, 0.0);
}

TEST(Simulator, TreeMatchBeatsScatterOnCommHeavyRing) {
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = small_ring(64, 5e8);
  const SimResult tmr = simulate(m, w, bind_with(tm::Strategy::TreeMatch, m, w));
  const SimResult sc =
      simulate(m, w, bind_with(tm::Strategy::ScatterCores, m, w));
  EXPECT_LT(tmr.seconds, sc.seconds);
  EXPECT_LT(tmr.counters.l3_misses, sc.counters.l3_misses);
}

TEST(Simulator, AffinityReducesMissesVsOsScheduling) {
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = orwl::apps::lk23_orwl_workload(1024, 4, 32);
  const SimResult bound = simulate(m, w, bind_with(tm::Strategy::TreeMatch, m, w));
  const SimResult os = simulate(m, w, BindSpec::os_scheduled());
  EXPECT_LT(bound.counters.l3_misses, os.counters.l3_misses);
  EXPECT_LT(bound.seconds, os.seconds);
}

TEST(Simulator, StallsTrackMisses) {
  // "There is a strong correlation between cache misses and cycle
  // stalls: each cache miss leads to a loss of about 10 to 14 cycles."
  const MachineModel m = MachineModel::smp12e5();
  const Workload w = orwl::apps::lk23_orwl_workload(1024, 4, 32);
  for (const auto& bind :
       {BindSpec::os_scheduled(), bind_with(tm::Strategy::TreeMatch, m, w)}) {
    const SimResult r = simulate(m, w, bind);
    ASSERT_GT(r.counters.l3_misses, 0.0);
    const double cycles_per_miss =
        r.counters.stalled_cycles / r.counters.l3_misses;
    EXPECT_GE(cycles_per_miss, 5.0);
    EXPECT_LE(cycles_per_miss, 60.0);
  }
}

TEST(Simulator, PipelineHasFarMoreContextSwitchesThanForkJoin) {
  // Table II: ORWL ~1e5 context switches vs OpenMP ~1e2-1e3.
  const MachineModel m = MachineModel::smp12e5();
  const Workload orwl_w = orwl::apps::lk23_orwl_workload(1024, 10, 64);
  const Workload omp_w = orwl::apps::lk23_forkjoin_workload(1024, 10, 64);
  const SimResult r_orwl = simulate(m, orwl_w, BindSpec::os_scheduled());
  const SimResult r_omp = simulate(m, omp_w, BindSpec::os_scheduled());
  EXPECT_GT(r_orwl.counters.context_switches,
            20.0 * r_omp.counters.context_switches);
}

TEST(Simulator, SequentialSlowerThanParallel) {
  const MachineModel m = MachineModel::smp12e5();
  const auto p = orwl::apps::video_hd();
  const Workload seq = orwl::apps::video_sequential_workload(p);
  const Workload par = orwl::apps::video_orwl_workload(p);
  tm::Placement pl = tm::place_strategy(tm::Strategy::TreeMatch, m.topology,
                                        par.num_threads, &par.comm);
  const SimResult r_seq = simulate(m, seq, BindSpec::os_scheduled());
  const SimResult r_par = simulate(m, par, BindSpec::bound(pl));
  EXPECT_LT(r_par.seconds, r_seq.seconds);
}

TEST(Simulator, MoreCoresHelpBoundDenseCompute) {
  const MachineModel m = MachineModel::smp12e5();
  double prev_gflops = 0.0;
  for (std::size_t threads : {8u, 16u, 32u, 64u}) {
    const Workload w = orwl::apps::matmul_orwl_workload(4096, threads);
    const SimResult r = simulate(m, w, bind_with(tm::Strategy::TreeMatch, m, w));
    EXPECT_GT(r.gflops(), prev_gflops)
        << "no scaling at " << threads << " threads";
    prev_gflops = r.gflops();
  }
}

TEST(Simulator, MklStagnatesAcrossSockets) {
  // Fig. 5: the MKL-style shared-B baseline stops scaling past a socket
  // while the ORWL ring keeps going.
  const MachineModel m = MachineModel::smp12e5();
  const Workload mkl8 = orwl::apps::matmul_mkl_workload(8192, 8);
  const Workload mkl64 = orwl::apps::matmul_mkl_workload(8192, 64);
  const SimResult r8 =
      simulate(m, mkl8, bind_with(tm::Strategy::ScatterCores, m, mkl8));
  const SimResult r64 =
      simulate(m, mkl64, bind_with(tm::Strategy::ScatterCores, m, mkl64));
  const Workload orwl64 = orwl::apps::matmul_orwl_workload(8192, 64);
  const SimResult o64 =
      simulate(m, orwl64, bind_with(tm::Strategy::TreeMatch, m, orwl64));
  // MKL scaling from 8 -> 64 cores stays well below the ideal 8x; ORWL
  // with the affinity module clearly beats the best MKL configuration.
  EXPECT_LT(r64.gflops(), 5.0 * r8.gflops());
  EXPECT_GT(o64.gflops(), 1.3 * r64.gflops());
}

TEST(Simulator, HyperthreadedMachineBenefitsMoreFromAffinity) {
  // Sec. VI-B3: "the improvement is even greater on the SMP12E5 (with
  // hyper-threading) than on the SMP20E7 (without)".
  const auto p = orwl::apps::video_hd();
  const Workload w12 = orwl::apps::video_orwl_workload(p);
  const MachineModel m12 = restricted(MachineModel::smp12e5(), 4);
  const MachineModel m20 = restricted(MachineModel::smp20e7(), 4);

  auto gain = [&](const MachineModel& m) {
    tm::Options opts;
    opts.num_control_threads = w12.control_threads;
    const tm::Placement pl = tm::tree_match(m.topology, w12.comm, opts);
    const SimResult bound = simulate(m, w12, BindSpec::bound(pl));
    const SimResult os = simulate(m, w12, BindSpec::os_scheduled());
    return os.seconds / bound.seconds;
  };
  EXPECT_GT(gain(m12), gain(m20));
  EXPECT_GT(gain(m20), 1.0);
}

// ------------------------------------------------------ machine model ----

TEST(MachineModel, PresetsMatchTableI) {
  const MachineModel a = MachineModel::smp12e5();
  EXPECT_EQ(a.topology.num_cores(), 96u);
  EXPECT_TRUE(a.topology.has_hyperthreads());
  EXPECT_EQ(a.os_policy, OsPolicy::NumaPack);
  EXPECT_DOUBLE_EQ(a.interconnect_gbps, 6.5);

  const MachineModel b = MachineModel::smp20e7();
  EXPECT_EQ(b.topology.num_cores(), 160u);
  EXPECT_FALSE(b.topology.has_hyperthreads());
  EXPECT_EQ(b.os_policy, OsPolicy::EvenSpread);
  EXPECT_DOUBLE_EQ(b.interconnect_gbps, 15.0);
}

TEST(MachineModel, RestrictedKeepsParametersShrinksTopology) {
  const MachineModel m = restricted(MachineModel::smp12e5(), 4);
  EXPECT_EQ(m.topology.num_cores(), 32u);
  EXPECT_EQ(m.topology.num_pus(), 64u);  // hyperthreads preserved
  EXPECT_DOUBLE_EQ(m.interconnect_gbps, 6.5);
  EXPECT_THROW(restricted(MachineModel::smp12e5(), 0),
               std::invalid_argument);
}

}  // namespace
