#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"
#include "treematch/grouping.hpp"

namespace {

using namespace orwl::tm;
using orwl::support::SplitMix64;

CommMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  CommMatrix m(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.below(1000)));
    }
  }
  return m;
}

void expect_valid_partition(const std::vector<std::vector<int>>& groups,
                            std::size_t p, std::size_t arity) {
  std::vector<bool> seen(p, false);
  ASSERT_EQ(groups.size(), p / arity);
  for (const auto& g : groups) {
    ASSERT_EQ(g.size(), arity);
    for (int e : g) {
      ASSERT_GE(e, 0);
      ASSERT_LT(static_cast<std::size_t>(e), p);
      ASSERT_FALSE(seen[static_cast<std::size_t>(e)]) << "duplicate " << e;
      seen[static_cast<std::size_t>(e)] = true;
    }
  }
}

// --------------------------------------------------------- basic API ----

TEST(Grouping, RejectsNonMultipleOrder) {
  const CommMatrix m(5);
  EXPECT_THROW(group_processes(m, 2), std::invalid_argument);
}

TEST(Grouping, RejectsZeroArity) {
  const CommMatrix m(4);
  EXPECT_THROW(group_processes(m, 0), std::invalid_argument);
}

TEST(Grouping, AritiyOneMakesSingletons) {
  const CommMatrix m = random_matrix(4, 1);
  const auto g = group_processes(m, 1);
  ASSERT_EQ(g.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g[i], std::vector<int>{static_cast<int>(i)});
  }
}

TEST(Grouping, ArityEqualOrderMakesOneGroup) {
  const CommMatrix m = random_matrix(4, 2);
  const auto g = group_processes(m, 4);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(Grouping, PadToMultiple) {
  EXPECT_EQ(pad_to_multiple(5, 2), 6u);
  EXPECT_EQ(pad_to_multiple(4, 2), 4u);
  EXPECT_EQ(pad_to_multiple(1, 8), 8u);
  EXPECT_THROW(pad_to_multiple(4, 0), std::invalid_argument);
}

TEST(Grouping, PartitionCount) {
  // 4 entities in pairs: {01|23},{02|13},{03|12} -> 3.
  EXPECT_DOUBLE_EQ(partition_count(4, 2), 3.0);
  // 6 in pairs: 15.
  EXPECT_NEAR(partition_count(6, 2), 15.0, 1e-9);
  // Non-divisible: infinite sentinel.
  EXPECT_TRUE(std::isinf(partition_count(5, 2)));
}

// ---------------------------------------------------------- exact -------

TEST(GroupingExact, FindsObviousPairs) {
  // Two heavy pairs (0,1) and (2,3); exact must recover them.
  CommMatrix m(4);
  m.set(0, 1, 100.0);
  m.set(2, 3, 100.0);
  m.set(0, 2, 1.0);
  m.set(1, 3, 1.0);
  const auto g = group_processes(m, 2, GroupingEngine::Exact);
  EXPECT_EQ(g[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(g[1], (std::vector<int>{2, 3}));
}

TEST(GroupingExact, InterleavedHeavyPairs) {
  // Heavy pairs are (0,2) and (1,3) - not adjacent indices.
  CommMatrix m(4);
  m.set(0, 2, 50.0);
  m.set(1, 3, 50.0);
  m.set(0, 1, 1.0);
  const auto g = group_processes(m, 2, GroupingEngine::Exact);
  EXPECT_EQ(g[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(g[1], (std::vector<int>{1, 3}));
}

TEST(GroupingExact, GroupsOfFour) {
  CommMatrix m(8);
  // Clique {0,1,2,3} and clique {4,5,6,7}.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      m.set(i, j, 10.0);
      m.set(i + 4, j + 4, 10.0);
    }
  }
  m.set(0, 4, 2.0);
  const auto g = group_processes(m, 4, GroupingEngine::Exact);
  EXPECT_EQ(g[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g[1], (std::vector<int>{4, 5, 6, 7}));
}

// ---------------------------------------------------------- greedy ------

TEST(GroupingGreedy, ProducesValidPartition) {
  const CommMatrix m = random_matrix(24, 7);
  const auto g = group_processes(m, 4, GroupingEngine::Greedy);
  expect_valid_partition(g, 24, 4);
}

TEST(GroupingGreedy, RecoversPlantedClusters) {
  // Planted: groups of 4 consecutive entities with strong internal volume
  // and weak external noise; greedy must recover them exactly.
  constexpr std::size_t kN = 16;
  CommMatrix m(kN);
  SplitMix64 rng(3);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) {
      const bool same = (i / 4) == (j / 4);
      m.set(i, j, same ? 1000.0 + static_cast<double>(rng.below(10))
                       : static_cast<double>(rng.below(10)));
    }
  }
  const auto g = group_processes(m, 4, GroupingEngine::Greedy);
  expect_valid_partition(g, kN, 4);
  for (std::size_t gi = 0; gi < 4; ++gi) {
    EXPECT_EQ(g[gi],
              (std::vector<int>{static_cast<int>(gi * 4),
                                static_cast<int>(gi * 4 + 1),
                                static_cast<int>(gi * 4 + 2),
                                static_cast<int>(gi * 4 + 3)}));
  }
}

// ------------------------------------------------- property: quality ----

struct QualityCase {
  std::size_t p;
  std::size_t arity;
  std::uint64_t seed;
};

class GroupingQualityTest : public ::testing::TestWithParam<QualityCase> {};

TEST_P(GroupingQualityTest, ExactBeatsOrTiesGreedyAndBothValid) {
  const auto [p, arity, seed] = GetParam();
  const CommMatrix m = random_matrix(p, seed);

  const auto exact = group_processes(m, arity, GroupingEngine::Exact);
  const auto greedy = group_processes(m, arity, GroupingEngine::Greedy);
  expect_valid_partition(exact, p, arity);
  expect_valid_partition(greedy, p, arity);

  const double v_exact = intra_volume(m, exact);
  const double v_greedy = intra_volume(m, greedy);
  EXPECT_GE(v_exact, v_greedy - 1e-9)
      << "exact grouping must dominate greedy";

  // Objective duality: intra + inter == total, so maximal intra is
  // minimal inter.
  EXPECT_LE(v_exact, m.total_volume() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupingQualityTest,
    ::testing::Values(QualityCase{4, 2, 11}, QualityCase{6, 2, 12},
                      QualityCase{8, 2, 13}, QualityCase{10, 2, 14},
                      QualityCase{6, 3, 15}, QualityCase{9, 3, 16},
                      QualityCase{8, 4, 17}, QualityCase{12, 4, 18},
                      QualityCase{12, 2, 19}, QualityCase{12, 3, 20}));

TEST(GroupingAuto, SwitchesToGreedyOnLargeInstances) {
  // 64 entities in pairs has ~6e53 partitions; Auto must not hang.
  const CommMatrix m = random_matrix(64, 5);
  const auto g = group_processes(m, 2, GroupingEngine::Auto);
  expect_valid_partition(g, 64, 2);
}

TEST(GroupingAuto, MatchesExactOnSmallInstances) {
  const CommMatrix m = random_matrix(8, 21);
  EXPECT_EQ(group_processes(m, 2, GroupingEngine::Auto),
            group_processes(m, 2, GroupingEngine::Exact));
}

TEST(Grouping, DeterministicAcrossCalls) {
  const CommMatrix m = random_matrix(32, 77);
  EXPECT_EQ(group_processes(m, 4), group_processes(m, 4));
}

}  // namespace
