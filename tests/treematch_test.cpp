#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "support/rng.hpp"
#include "topo/machines.hpp"
#include "treematch/strategies.hpp"
#include "treematch/treematch.hpp"

namespace {

using namespace orwl::tm;
using namespace orwl::topo;
using orwl::support::SplitMix64;

CommMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  CommMatrix m(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(rng.below(1000)));
    }
  }
  return m;
}

/// A ring matrix: thread i talks to i+1 (mod n) with heavy volume.
CommMatrix ring_matrix(std::size_t n, double volume = 1000.0) {
  CommMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, (i + 1) % n, volume);
  }
  return m;
}

/// Pairs matrix: (0,1), (2,3), ... are heavy, everything else light.
CommMatrix pairs_matrix(std::size_t n) {
  CommMatrix m(n);
  for (std::size_t i = 0; i + 1 < n; i += 2) m.set(i, i + 1, 1000.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (m.at(i, j) == 0) m.set(i, j, 1.0);
    }
  }
  return m;
}

// ------------------------------------------------------- validity -------

TEST(TreeMatch, RejectsEmptyInputs) {
  const Topology t = make_numa(2, 4, 1);
  EXPECT_THROW(tree_match(t, CommMatrix{}), std::invalid_argument);
  EXPECT_THROW(tree_match(Topology{}, CommMatrix(4)), std::invalid_argument);
}

TEST(TreeMatch, SingleThread) {
  const Topology t = make_numa(2, 4, 1);
  const Placement p = tree_match(t, CommMatrix(1));
  ASSERT_EQ(p.compute_pu.size(), 1u);
  EXPECT_TRUE(p.valid_for(t));
}

TEST(TreeMatch, PlacementIsInjectionWithoutOversubscription) {
  const Topology t = make_numa(4, 4, 1);
  const CommMatrix m = random_matrix(16, 42);
  const Placement p = tree_match(t, m);
  EXPECT_FALSE(p.oversubscribed);
  EXPECT_TRUE(p.valid_for(t));
  std::set<int> pus(p.compute_pu.begin(), p.compute_pu.end());
  EXPECT_EQ(pus.size(), 16u);
}

TEST(TreeMatch, HyperthreadedMachineUsesOnePuPerCore) {
  // "we map only one compute intensive task per physical core"
  const Topology t = make_numa(2, 4, 2);  // 8 cores, 16 PUs
  const CommMatrix m = random_matrix(8, 1);
  const Placement p = tree_match(t, m);
  EXPECT_TRUE(p.valid_for(t));
  for (std::size_t i = 0; i < 8; ++i) {
    const Object* pu = t.pu_by_os_index(p.compute_pu[i]);
    ASSERT_NE(pu, nullptr);
    // First sibling of its core.
    EXPECT_EQ(pu->parent->children.front().get(), pu);
  }
}

// ----------------------------------------------- affinity awareness ----

TEST(TreeMatch, HeavyPairsShareCaches) {
  // 2 NUMA x 4 cores; pairs (0,1),(2,3),... must land in the same NUMA
  // node, and the pairing must never be split across nodes.
  const Topology t = make_numa(2, 4, 1);
  const CommMatrix m = pairs_matrix(8);
  const Placement p = tree_match(t, m);
  ASSERT_TRUE(p.valid_for(t));
  for (std::size_t i = 0; i + 1 < 8; i += 2) {
    const Object* a = t.pu_by_os_index(p.compute_pu[i]);
    const Object* b = t.pu_by_os_index(p.compute_pu[i + 1]);
    const Object* anc = t.common_ancestor(*a, *b);
    EXPECT_GE(anc->depth, t.depth_of_type(ObjType::NumaNode))
        << "pair (" << i << "," << i + 1 << ") split across NUMA nodes";
  }
}

TEST(TreeMatch, BeatsOrTiesScatterAndCompactOnModeledCost) {
  const Topology t = make_numa(4, 4, 1);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const CommMatrix m = random_matrix(16, seed);
    const Placement tm_p = tree_match(t, m);
    const Placement sc = place_strategy(Strategy::Scatter, t, 16);
    const Placement cp = place_strategy(Strategy::Compact, t, 16);
    const double c_tm = modeled_cost(t, m, tm_p);
    EXPECT_LE(c_tm, modeled_cost(t, m, sc) + 1e-6) << "seed " << seed;
    EXPECT_LE(c_tm, modeled_cost(t, m, cp) + 1e-6) << "seed " << seed;
  }
}

TEST(TreeMatch, RingPlacementKeepsNeighborsClose) {
  // On 2x4 the ring 0-1-2-3-4-5-6-7 has an optimal cut of 2 edges.
  const Topology t = make_numa(2, 4, 1);
  const CommMatrix m = ring_matrix(8);
  const Placement p = tree_match(t, m);
  int cross_numa_edges = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t j = (i + 1) % 8;
    const Object* a = t.pu_by_os_index(p.compute_pu[i]);
    const Object* b = t.pu_by_os_index(p.compute_pu[j]);
    if (t.common_ancestor(*a, *b)->type == ObjType::Machine) {
      ++cross_numa_edges;
    }
  }
  EXPECT_EQ(cross_numa_edges, 2);
}

// --------------------------------------------------- control threads ----

TEST(TreeMatch, ControlOnHyperthreadSiblings) {
  // SMP12E5-like: control threads must land on the sibling PU of their
  // associated compute thread's core.
  const Topology t = make_numa(2, 4, 2);
  const CommMatrix m = random_matrix(8, 9);
  Options opts;
  opts.num_control_threads = 8;
  const Placement p = tree_match(t, m, opts);
  EXPECT_EQ(p.control_policy, ControlPolicy::HyperthreadSiblings);
  ASSERT_EQ(p.control_pu.size(), 8u);
  for (std::size_t j = 0; j < 8; ++j) {
    const Object* comp = t.pu_by_os_index(p.compute_pu[j]);
    const Object* ctrl = t.pu_by_os_index(p.control_pu[j]);
    ASSERT_NE(ctrl, nullptr);
    EXPECT_EQ(comp->parent, ctrl->parent) << "not hyperthread siblings";
    EXPECT_NE(comp, ctrl);
  }
}

TEST(TreeMatch, ControlOnSpareCoresWithoutHyperthreads) {
  // Fig. 2 situation: 30 tasks on a 32-core non-HT machine -> 2 spare
  // cores are automatically reserved for control threads.
  const Topology t = make_fig2_machine();
  const CommMatrix m = random_matrix(30, 10);
  Options opts;
  opts.num_control_threads = 6;
  const Placement p = tree_match(t, m, opts);
  EXPECT_EQ(p.control_policy, ControlPolicy::SpareCores);
  ASSERT_EQ(p.control_pu.size(), 6u);
  std::set<int> compute(p.compute_pu.begin(), p.compute_pu.end());
  std::set<int> control;
  for (int pu : p.control_pu) {
    ASSERT_GE(pu, 0) << "control thread left unmanaged";
    EXPECT_FALSE(compute.count(pu))
        << "control thread shares a core with a compute thread";
    control.insert(pu);
  }
  EXPECT_LE(control.size(), 2u) << "only 2 spare cores exist";
}

TEST(TreeMatch, ControlUnmanagedWhenNoRoom) {
  // Non-HT machine fully used by compute -> control left to the OS.
  const Topology t = make_numa(2, 4, 1);
  const CommMatrix m = random_matrix(8, 11);
  Options opts;
  opts.num_control_threads = 4;
  const Placement p = tree_match(t, m, opts);
  EXPECT_EQ(p.control_policy, ControlPolicy::Unmanaged);
  for (int pu : p.control_pu) EXPECT_EQ(pu, -1);
}

TEST(TreeMatch, ControlManagementCanBeDisabled) {
  const Topology t = make_numa(2, 4, 2);
  const CommMatrix m = random_matrix(8, 12);
  Options opts;
  opts.num_control_threads = 4;
  opts.manage_control_threads = false;
  const Placement p = tree_match(t, m, opts);
  EXPECT_EQ(p.control_policy, ControlPolicy::Unmanaged);
}

TEST(TreeMatch, ControlAssociationRespected) {
  const Topology t = make_numa(2, 4, 2);
  const CommMatrix m = pairs_matrix(8);
  Options opts;
  opts.num_control_threads = 2;
  opts.control_associate = {5, 2};
  const Placement p = tree_match(t, m, opts);
  ASSERT_EQ(p.control_pu.size(), 2u);
  const Object* c0 = t.pu_by_os_index(p.control_pu[0]);
  const Object* comp5 = t.pu_by_os_index(p.compute_pu[5]);
  EXPECT_EQ(c0->parent, comp5->parent);
  const Object* c1 = t.pu_by_os_index(p.control_pu[1]);
  const Object* comp2 = t.pu_by_os_index(p.compute_pu[2]);
  EXPECT_EQ(c1->parent, comp2->parent);
}

// ---------------------------------------------------- oversubscription --

TEST(TreeMatch, OversubscriptionGoesUpOneLevel) {
  // 8 cores, 16 threads -> 2 threads per core, valid placement.
  const Topology t = make_numa(2, 4, 1);
  const CommMatrix m = pairs_matrix(16);
  const Placement p = tree_match(t, m);
  EXPECT_TRUE(p.oversubscribed);
  EXPECT_TRUE(p.valid_for(t));
  // Every PU hosts exactly 2 threads.
  std::map<int, int> load;
  for (int pu : p.compute_pu) load[pu]++;
  for (const auto& [pu, n] : load) EXPECT_EQ(n, 2) << "PU " << pu;
  // Heavy pairs share a core (the virtual level groups by affinity).
  for (std::size_t i = 0; i + 1 < 16; i += 2) {
    EXPECT_EQ(p.compute_pu[i], p.compute_pu[i + 1])
        << "heavy pair should share the oversubscribed core";
  }
}

TEST(TreeMatch, ExtremeOversubscription) {
  const Topology t = make_numa(1, 2, 1);  // 2 cores
  const CommMatrix m = random_matrix(11, 13);
  const Placement p = tree_match(t, m);
  EXPECT_TRUE(p.oversubscribed);
  EXPECT_TRUE(p.valid_for(t));
  std::map<int, int> load;
  for (int pu : p.compute_pu) load[pu]++;
  for (const auto& [pu, n] : load) EXPECT_LE(n, 6) << "PU " << pu;
}

// --------------------------------------------------------- describe -----

TEST(TreeMatch, DescribeMentionsThreadsAndPolicy) {
  const Topology t = make_numa(2, 2, 2);
  const CommMatrix m = random_matrix(4, 14);
  Options opts;
  opts.num_control_threads = 1;
  const Placement p = tree_match(t, m, opts);
  const std::string d = p.describe(t);
  EXPECT_NE(d.find("thread 0"), std::string::npos);
  EXPECT_NE(d.find("hyperthread-siblings"), std::string::npos);
  EXPECT_NE(d.find("control 0"), std::string::npos);
}

// ------------------------------------------- parameterized validity -----

struct TmCase {
  int numa;
  int cores;
  int pus;
  std::size_t threads;
  std::uint64_t seed;
};

class TreeMatchValidityTest : public ::testing::TestWithParam<TmCase> {};

TEST_P(TreeMatchValidityTest, AlwaysProducesValidPlacement) {
  const auto& c = GetParam();
  const Topology t = make_numa(c.numa, c.cores, c.pus);
  const CommMatrix m = random_matrix(c.threads, c.seed);
  Options opts;
  opts.num_control_threads = c.threads / 2;
  const Placement p = tree_match(t, m, opts);
  EXPECT_TRUE(p.valid_for(t));
  EXPECT_EQ(p.compute_pu.size(), c.threads);
  EXPECT_EQ(p.control_pu.size(), c.threads / 2);
  const std::size_t slots = t.num_cores();
  EXPECT_EQ(p.oversubscribed,
            c.threads + (p.control_policy == ControlPolicy::SpareCores
                             ? std::min(c.threads / 2, slots - c.threads)
                             : 0) >
                slots);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeMatchValidityTest,
    ::testing::Values(TmCase{2, 4, 1, 8, 1}, TmCase{2, 4, 1, 5, 2},
                      TmCase{2, 4, 1, 13, 3}, TmCase{2, 4, 2, 8, 4},
                      TmCase{2, 4, 2, 3, 5}, TmCase{4, 8, 2, 32, 6},
                      TmCase{4, 8, 2, 20, 7}, TmCase{12, 8, 2, 96, 8},
                      TmCase{20, 8, 1, 64, 9}, TmCase{1, 1, 1, 4, 10},
                      TmCase{3, 5, 1, 15, 11}, TmCase{2, 2, 4, 4, 12}));

// ------------------------------------------------- paper machines -------

TEST(TreeMatchPaper, Smp12e5FullScale) {
  // 96 threads on the hyperthreaded machine: one per physical core,
  // control threads on siblings.
  const Topology t = make_smp12e5();
  const CommMatrix m = ring_matrix(96);
  Options opts;
  opts.num_control_threads = 96;
  const Placement p = tree_match(t, m, opts);
  EXPECT_TRUE(p.valid_for(t));
  EXPECT_FALSE(p.oversubscribed);
  EXPECT_EQ(p.control_policy, ControlPolicy::HyperthreadSiblings);
  // Ring on 12 nodes of 8: at most 12 cross-NUMA edges (one per node
  // boundary) is optimal; allow a little slack but far below random.
  int cross = 0;
  for (std::size_t i = 0; i < 96; ++i) {
    const Object* a = t.pu_by_os_index(p.compute_pu[i]);
    const Object* b = t.pu_by_os_index(p.compute_pu[(i + 1) % 96]);
    if (t.common_ancestor(*a, *b)->type == ObjType::Machine) ++cross;
  }
  EXPECT_LE(cross, 14);
}

TEST(TreeMatchPaper, Smp20e7FullScale) {
  const Topology t = make_smp20e7();
  const CommMatrix m = ring_matrix(160);
  Options opts;
  opts.num_control_threads = 64;
  const Placement p = tree_match(t, m, opts);
  EXPECT_TRUE(p.valid_for(t));
  // No hyperthreads, no spare cores -> control unmanaged.
  EXPECT_EQ(p.control_policy, ControlPolicy::Unmanaged);
}

}  // namespace
