#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/env.hpp"
#include "topo/binding.hpp"
#include "topo/detect.hpp"
#include "topo/machines.hpp"

namespace {

namespace fs = std::filesystem;
using namespace orwl::topo;

/// Builds a fake sysfs tree describing a synthetic machine.
class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = fs::temp_directory_path() /
            ("orwl-sysfs-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void add_cpu(int cpu, int package, int core) {
    const fs::path d = root_ / "devices/system/cpu" /
                       ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(d);
    write(d / "physical_package_id", std::to_string(package));
    write(d / "core_id", std::to_string(core));
  }

  void add_node(int node, const std::string& cpulist) {
    const fs::path d =
        root_ / "devices/system/node" / ("node" + std::to_string(node));
    fs::create_directories(d);
    write(d / "cpulist", cpulist);
  }

  std::string path() const { return root_.string(); }

 private:
  static void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content << '\n';
  }
  fs::path root_;
  static inline int counter_ = 0;
};

TEST(Detect, FakeTwoSocketWithHyperthreads) {
  FakeSysfs sys;
  // 2 packages x 2 cores x 2 PUs; sibling PUs are (c, c+4) as on many Intels.
  // package 0: cores 0,1 -> cpus 0,4 / 1,5 ; package 1: cores 0,1 -> 2,6 / 3,7
  sys.add_cpu(0, 0, 0);
  sys.add_cpu(4, 0, 0);
  sys.add_cpu(1, 0, 1);
  sys.add_cpu(5, 0, 1);
  sys.add_cpu(2, 1, 0);
  sys.add_cpu(6, 1, 0);
  sys.add_cpu(3, 1, 1);
  sys.add_cpu(7, 1, 1);
  sys.add_node(0, "0-1,4-5");
  sys.add_node(1, "2-3,6-7");

  const Topology t = detect_from_sysfs(sys.path(), 99);
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_EQ(t.num_pus(), 8u);
  EXPECT_TRUE(t.has_hyperthreads());
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::NumaNode)).size(), 2u);

  // PUs of one core must be hyperthread siblings: cpu 0 and cpu 4.
  const Object* pu0 = t.pu_by_os_index(0);
  const Object* pu4 = t.pu_by_os_index(4);
  ASSERT_NE(pu0, nullptr);
  ASSERT_NE(pu4, nullptr);
  EXPECT_EQ(pu0->parent, pu4->parent);

  // NUMA separation: cpu 0 and cpu 2 share nothing below the machine.
  const Object* pu2 = t.pu_by_os_index(2);
  ASSERT_NE(pu2, nullptr);
  EXPECT_EQ(t.common_ancestor(*pu0, *pu2)->type, ObjType::Machine);
}

TEST(Detect, MissingTreeFallsBackToFlat) {
  const Topology t = detect_from_sysfs("/nonexistent/sysfs", 6);
  EXPECT_EQ(t.num_pus(), 6u);
  EXPECT_FALSE(t.has_hyperthreads());
}

TEST(Detect, EmptyCpuDirFallsBack) {
  FakeSysfs sys;
  fs::create_directories(fs::path(sys.path()) / "devices/system/cpu");
  const Topology t = detect_from_sysfs(sys.path(), 3);
  EXPECT_EQ(t.num_pus(), 3u);
}

TEST(Detect, NoNumaInfoYieldsSingleNode) {
  FakeSysfs sys;
  sys.add_cpu(0, 0, 0);
  sys.add_cpu(1, 0, 1);
  const Topology t = detect_from_sysfs(sys.path(), 99);
  EXPECT_EQ(t.num_pus(), 2u);
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::NumaNode)).size(), 1u);
}

TEST(Detect, NamedFixturesParse) {
  const auto smp12 = make_named("smp12e5");
  ASSERT_TRUE(smp12.has_value());
  EXPECT_EQ(smp12->num_pus(), 192u);
  const auto smp20 = make_named("SMP20E7");
  ASSERT_TRUE(smp20.has_value());
  EXPECT_EQ(smp20->num_pus(), 160u);
  const auto fig2 = make_named("fig2");
  ASSERT_TRUE(fig2.has_value());
  EXPECT_EQ(fig2->num_cores(), 32u);
  const auto flat = make_named("flat:6");
  ASSERT_TRUE(flat.has_value());
  EXPECT_EQ(flat->num_pus(), 6u);
  const auto numa = make_named("numa:2:4:2");
  ASSERT_TRUE(numa.has_value());
  EXPECT_EQ(numa->num_pus(), 16u);
  EXPECT_FALSE(make_named("").has_value());
  EXPECT_FALSE(make_named("bogus").has_value());
  EXPECT_FALSE(make_named("flat:0").has_value());
  EXPECT_FALSE(make_named("flat:x").has_value());
  EXPECT_FALSE(make_named("numa:2:4").has_value());
}

TEST(Detect, EnvOverrideSelectsFixture) {
  orwl::support::ScopedEnv guard(kTopologyEnvVar, "numa:2:4:1");
  const Topology t = detect_host();
  EXPECT_EQ(t.num_pus(), 8u);
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::NumaNode)).size(), 2u);
}

TEST(Detect, BadEnvOverrideIsRejectedNotIgnored) {
  orwl::support::ScopedEnv guard(kTopologyEnvVar, "not-a-machine");
  EXPECT_THROW(detect_host(), std::invalid_argument);
}

TEST(Detect, HostDetectionProducesUsableTopology) {
  orwl::support::ScopedEnv guard(kTopologyEnvVar, nullptr);
  const Topology t = detect_host();
  EXPECT_GE(t.num_pus(), 1u);
  EXPECT_EQ(static_cast<int>(t.num_pus()) >= host_cpu_count() ? 1 : 0, 1)
      << "detected fewer PUs than online CPUs";
  // Every PU os index must be bindable on this host.
  const Object* pu = t.pus().front();
  EXPECT_GE(pu->os_index, 0);
}

}  // namespace
