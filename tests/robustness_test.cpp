// Failure injection and robustness: the paths a production runtime must
// survive — task crashes mid-pipeline, asymmetric host topologies,
// adversarial lock usage, and randomized queue histories checked against
// a reference model.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "orwl/orwl.hpp"
#include "support/rng.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl;

rt::ProgramOptions quiet() {
  rt::ProgramOptions o;
  o.affinity = rt::AffinityMode::Off;
  o.acquire_timeout_ms = 3000;
  return o;
}

// ------------------------------------------------- failure injection ----

TEST(Robustness, TaskCrashAfterScheduleDoesNotHangTheProgram) {
  // Task 1 dies while holding a lock the others wait for; the deadlock
  // guard must turn the hang into a clean error.
  rt::Program prog(3, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(64);
    rt::Handle own;
    rt::Handle next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 3), 1);
    ctx.schedule();
    rt::Section sec(own);
    if (ctx.id() == 1) {
      throw std::runtime_error("injected task failure");
    }
    rt::Section sec2(next);  // waits on the crashed task's location
  });
  EXPECT_THROW(prog.run(), std::runtime_error);
}

TEST(Robustness, CrashBeforeScheduleTimesOutTheBarrier) {
  rt::ProgramOptions o = quiet();
  o.acquire_timeout_ms = 500;
  rt::Program prog(2, o);
  prog.set_task_body([&](rt::TaskContext& ctx) {
    if (ctx.id() == 0) throw std::logic_error("early failure");
    ctx.schedule();
  });
  try {
    prog.run();
    FAIL() << "expected an exception";
  } catch (const std::exception& e) {
    // Either the injected failure or the barrier timeout surfaces.
    SUCCEED() << e.what();
  }
}

TEST(Robustness, AsymmetricTopologyFallsBackToCompactCores) {
  // A host with disabled cores: 2 nodes with 3 and 1 cores. Algorithm 1
  // cannot run; the module must degrade to a valid placement instead of
  // killing the program.
  auto root = std::make_unique<topo::Object>();
  root->type = topo::ObjType::Machine;
  for (int node = 0; node < 2; ++node) {
    auto& numa = root->add_child(topo::ObjType::NumaNode);
    const int cores = node == 0 ? 3 : 1;
    for (int c = 0; c < cores; ++c) {
      numa.add_child(topo::ObjType::Core).add_child(topo::ObjType::PU);
    }
  }
  const topo::Topology machine =
      topo::Topology::adopt(std::move(root), "asymmetric-host");
  ASSERT_FALSE(machine.is_symmetric());

  rt::ProgramOptions o;
  o.affinity = rt::AffinityMode::On;
  o.topology = &machine;
  o.bind_threads = false;
  o.acquire_timeout_ms = 10000;
  rt::Program prog(3, o);
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(64);
    rt::Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    rt::Section s(h);
  });
  EXPECT_NO_THROW(prog.run());
  EXPECT_TRUE(prog.stats().affinity_fallback);
  const auto& pl = prog.placement();
  EXPECT_TRUE(pl.valid_for(machine));
  // Compact-cores keeps the first three tasks on the 4 available cores.
  for (int pu : pl.compute_pu) EXPECT_GE(pu, 0);
}

// --------------------------------------------- randomized queue model ----

/// Reference model of the ORWL FIFO semantics: a deque of (ticket, mode);
/// granted = leading write or maximal leading read group.
class ModelQueue {
 public:
  void enqueue(rt::Ticket t, rt::AccessMode m) { q_.push_back({t, m}); }
  void release(rt::Ticket t) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->first == t) {
        q_.erase(it);
        return;
      }
    }
    FAIL() << "model: releasing unknown ticket";
  }
  bool granted(rt::Ticket t) const {
    for (std::size_t i = 0; i < q_.size(); ++i) {
      if (q_[i].first == t) {
        if (i == 0) return true;
        // Granted iff everything up to and including i is a read.
        for (std::size_t k = 0; k <= i; ++k) {
          if (q_[k].second != rt::AccessMode::Read) return false;
        }
        return true;
      }
    }
    return false;
  }
  std::size_t size() const { return q_.size(); }
  rt::Ticket at(std::size_t i) const { return q_[i].first; }

 private:
  std::deque<std::pair<rt::Ticket, rt::AccessMode>> q_;
};

TEST(Robustness, RandomizedQueueHistoryMatchesReferenceModel) {
  // Drive the real RequestQueue with random single-threaded histories
  // and compare the granted-set against the reference model after every
  // step.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    rt::RequestQueue q;
    ModelQueue model;
    support::SplitMix64 rng(seed);
    std::map<rt::Ticket, rt::AccessMode> live;

    for (int step = 0; step < 300; ++step) {
      const bool do_enqueue = live.empty() || rng.below(100) < 55;
      if (do_enqueue) {
        const auto mode = rng.below(2) == 0 ? rt::AccessMode::Read
                                            : rt::AccessMode::Write;
        const rt::Ticket t = q.enqueue(mode);
        model.enqueue(t, mode);
        live[t] = mode;
      } else {
        // Release a random granted ticket (there is always one: the
        // head is granted by construction).
        std::vector<rt::Ticket> granted;
        for (const auto& [t, m] : live) {
          if (q.granted(t)) granted.push_back(t);
        }
        ASSERT_FALSE(granted.empty()) << "seed " << seed;
        const rt::Ticket victim =
            granted[rng.below(granted.size())];
        q.release(victim);
        model.release(victim);
        live.erase(victim);
      }
      // Invariant: real grants == model grants for every live ticket.
      for (const auto& [t, m] : live) {
        ASSERT_EQ(q.granted(t), model.granted(t))
            << "seed " << seed << " step " << step << " ticket " << t;
      }
      ASSERT_EQ(q.pending(), model.size());
    }
  }
}

// ------------------------------------------------ adversarial usage -----

TEST(Robustness, SectionOnUnscheduledHandleFailsCleanly) {
  rt::Program prog(1, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    // acquire() before schedule(): no ticket has been issued yet.
    EXPECT_THROW(h.acquire(), std::logic_error);
    ctx.schedule();
    { rt::Section s(h); }
  });
  EXPECT_NO_THROW(prog.run());
}

TEST(Robustness, AcquireTimeoutNamesLocationTicketAndTenant) {
  // Regression: the deadlock guard used to fire with no context ("lock
  // acquire timed out"), useless on a server running many tenants. The
  // message must now identify the queue (location + owner coordinates),
  // the stuck ticket and the tenant tag.
  rt::ProgramOptions o = quiet();
  o.acquire_timeout_ms = 200;
  o.tag = "acme";
  rt::Program prog(1, o);
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle held;
    rt::Handle starved;
    held.write_insert(ctx, ctx.my_location(), 0);
    starved.write_insert(ctx, ctx.my_location(), 1);
    ctx.schedule();
    rt::Section s(held);
    // A second writer on the same location can never be granted while
    // the first section is open: the guard must fire, with context.
    starved.acquire();
  });
  try {
    prog.run();
    FAIL() << "expected the acquire-timeout guard to fire";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ticket"), std::string::npos) << msg;
    EXPECT_NE(msg.find("location 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("owner task 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tenant 'acme'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("timed out after 200 ms"), std::string::npos) << msg;
  }
}

TEST(Robustness, AcquireTimeoutOnUntaggedProgramStaysAnonymous) {
  // No ProgramOptions::tag => the message names the location but no
  // tenant (single-program runs must not grow a bogus "tenant ''").
  rt::ProgramOptions o = quiet();
  o.acquire_timeout_ms = 200;
  rt::Program prog(1, o);
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle held;
    rt::Handle starved;
    held.write_insert(ctx, ctx.my_location(), 0);
    starved.write_insert(ctx, ctx.my_location(), 1);
    ctx.schedule();
    rt::Section s(held);
    starved.acquire();
  });
  try {
    prog.run();
    FAIL() << "expected the acquire-timeout guard to fire";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("location 0"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("tenant"), std::string::npos) << msg;
  }
}

TEST(Robustness, DoubleInsertRejected) {
  rt::Program prog(2, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    EXPECT_THROW(h.read_insert(ctx, ctx.location(0), 1), std::logic_error);
    ctx.schedule();
    { rt::Section s(h); }
  });
  EXPECT_NO_THROW(prog.run());
}

TEST(Robustness, SectionTeardownIsNoexceptOnDoubleRelease) {
  // Regression for the throwing ~Section: releasing the handle early —
  // explicitly or behind the guard's back — must leave the destructor a
  // no-op instead of throwing out of stack unwinding.
  rt::Program prog(1, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle2 h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    {
      rt::Section s(h);
      s.release();  // explicit early release...
    }               // ...then the destructor: must be a clean no-op
    {
      rt::Section s(h);
      h.release();  // released behind the Section's back
    }
  });
  const std::uint64_t before = rt::guard_teardown_failures();
  EXPECT_NO_THROW(prog.run());
  EXPECT_EQ(rt::guard_teardown_failures(), before);
  EXPECT_EQ(prog.stats().guard_teardown_failures, 0u);
}

TEST(Robustness, SectionTeardownSwallowsAndCountsAThrowingRelease) {
  // Make the underlying release throw while the Section still believes
  // it holds the lock: release the ticket through the queue directly.
  // The destructor must swallow the error and record it.
  rt::Program prog(1, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    ctx.scale(8);
    rt::Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    rt::Section s(h);
    ctx.my_location().queue().release(1);  // yank the grant away
  });
  const std::uint64_t before = rt::guard_teardown_failures();
  EXPECT_NO_THROW(prog.run());
  EXPECT_EQ(rt::guard_teardown_failures(), before + 1);
  EXPECT_EQ(prog.stats().guard_teardown_failures, 1u);
  EXPECT_EQ(prog.guard_teardown_failures(), 1u);
}

TEST(Robustness, ZeroSizedLocationSectionsWork) {
  // Locations can model pure synchronization resources (no data).
  rt::Program prog(2, quiet());
  prog.set_task_body([&](rt::TaskContext& ctx) {
    rt::Handle2 own;
    own.write_insert(ctx, ctx.my_location(), 0);
    rt::Handle2 other;
    other.read_insert(ctx, ctx.location((ctx.id() + 1) % 2), 1);
    ctx.schedule();
    for (int i = 0; i < 5; ++i) {
      { rt::Section s(own); }
      {
        rt::Section s(other);
        EXPECT_EQ(s.read_map().size(), 0u);
      }
    }
  });
  EXPECT_NO_THROW(prog.run());
}

}  // namespace
