// The v2 facade (orwl/orwl.hpp): typed locations, phase-safe guards and
// the declarative ProgramBuilder. Covers the acceptance contract of the
// API redesign: a builder-declared graph produces the same communication
// matrix and placement as the imperatively wired equivalent — without a
// dry-run pass — and writing through a read link is a compile-time
// error (checked with static_asserts below, the negative-compile tests).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "orwl/orwl.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl;

// ------------------------------------------------- negative compiles ----
// Phase safety lives in the type system: a WriteGuard is constructible
// from a WriteLink only (and vice versa), so the "write through a read
// link" bug class cannot compile.
static_assert(!std::is_constructible_v<WriteGuard<double>, ReadLink<double>>,
              "a WriteGuard over a read link must not compile");
static_assert(
    !std::is_constructible_v<WriteGuard<double[]>, ReadLink<double[]>>,
    "a WriteGuard over a read array link must not compile");
static_assert(!std::is_constructible_v<ReadGuard<double>, WriteLink<double>>,
              "guards name their link's mode exactly");
static_assert(!std::is_convertible_v<ReadLink<double>, WriteLink<double>>,
              "read links must not convert to write links");
static_assert(std::is_constructible_v<WriteGuard<double>, WriteLink<double>>);
static_assert(std::is_constructible_v<ReadGuard<double>, ReadLink<double>>);

rt::ProgramOptions quiet() {
  rt::ProgramOptions o;
  o.affinity = rt::AffinityMode::Off;
  o.control_threads = 0;
  o.acquire_timeout_ms = 30000;
  return o;
}

rt::ProgramOptions fixture_opts(const topo::Topology& machine) {
  rt::ProgramOptions o;
  o.topology = &machine;
  o.affinity = rt::AffinityMode::Off;  // placement driven explicitly
  o.bind_threads = false;
  o.control_threads = 2;
  o.acquire_timeout_ms = 30000;
  return o;
}

// The Listing 1 chain, declared: task t owns a double, writes it, task
// t > 0 reads its predecessor's.
ProgramBuilder chain_builder(std::size_t tasks, rt::ProgramOptions opts) {
  ProgramBuilder b(tasks, opts);
  for (TaskId t = 0; t < tasks; ++t) {
    TaskSpec& spec = b.task(t);
    spec.owns<double>().writes<double>(loc(t), t);
    if (t > 0) spec.reads<double>(loc(t - 1), t);
  }
  return b;
}

// ------------------------------------------ builder vs imperative -------

TEST(Builder, DeclaredGraphMatchesImperativeDryRun) {
  const topo::Topology machine = topo::make_numa(2, 2, 1);
  static constexpr std::size_t kTasks = 4;

  // Imperative v1-style wiring, extracted through a dry-run execution.
  rt::ProgramOptions dry = fixture_opts(machine);
  dry.dry_run = true;
  rt::Program imperative(kTasks, dry);
  imperative.set_task_body([](rt::TaskContext& ctx) {
    ctx.scale(sizeof(double));
    rt::Handle own;
    rt::Handle prev;
    own.write_insert(ctx, ctx.my_location(), ctx.id());
    if (ctx.id() > 0) {
      prev.read_insert(ctx, ctx.location(ctx.id() - 1), ctx.id());
    }
    ctx.schedule();
  });
  imperative.run();
  imperative.dependency_get();
  imperative.affinity_compute();

  // The same graph declared: matrix and placement exist pre-run.
  rt::ProgramOptions opts = fixture_opts(machine);
  Program declared = chain_builder(kTasks, opts).build();
  declared.dependency_get();
  declared.affinity_compute();

  const tm::CommMatrix& a = imperative.comm_matrix();
  const tm::CommMatrix& b = declared.comm_matrix();
  ASSERT_EQ(a.order(), b.order());
  for (std::size_t i = 0; i < a.order(); ++i) {
    for (std::size_t j = 0; j < a.order(); ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(imperative.placement().compute_pu,
            declared.placement().compute_pu)
      << "same matrix + same topology must place identically";
}

TEST(Builder, MatrixAvailableWithoutRunningAnything) {
  rt::ProgramOptions opts = quiet();
  opts.dry_run = true;  // sizes recorded, nothing allocated
  Program p = chain_builder(3, opts).build();
  p.dependency_get();
  EXPECT_EQ(p.comm_matrix().order(), 3u);
  EXPECT_DOUBLE_EQ(p.comm_matrix().at(0, 1), sizeof(double));
  EXPECT_DOUBLE_EQ(p.comm_matrix().at(1, 2), sizeof(double));
  EXPECT_DOUBLE_EQ(p.comm_matrix().at(0, 2), 0.0);
  // Dry-declared locations were never allocated, and no body ran.
  EXPECT_EQ(p.location(loc(0)).data(), nullptr);
  EXPECT_FALSE(p.runtime().scheduled());
}

TEST(Builder, DeclarativeRunComputesAndInitHookPrimes) {
  // A two-task producer/consumer with a lagged location: the consumer
  // reads first (priority 0), so the value it sees in iteration 0 is
  // whatever init() primed — proving the hook runs before the barrier.
  rt::ProgramOptions opts = quiet();
  ProgramBuilder b(2, opts);
  std::atomic<double> first_read{0.0};
  std::atomic<int> reads{0};

  b.task(0)
      .owns<double>()
      .writes<double>(loc(0), 1)  // lagged: reader first
      .iterates(3)
      .init([](Task& task) { task.my<double>().value() = 42.0; })
      .body([](Task& task) {
        WriteLink<double> own = task.write_link<double>(loc(0));
        task.run_iterations([&](std::size_t i) {
          WriteGuard<double> w(own);
          w.ref() = static_cast<double>(i);
        });
      });
  b.task(1)
      .reads<double>(loc(0), 0)
      .iterates(3)
      .body([&](Task& task) {
        ReadLink<double> in = task.read_link<double>(loc(0));
        EXPECT_EQ(task.iterations(), 3u);
        task.run_iterations([&](std::size_t i) {
          ReadGuard<double> r(in);
          if (i == 0) first_read.store(r.ref());
          reads.fetch_add(1);
        });
      });

  Program p = b.build();
  p.run();
  EXPECT_EQ(reads.load(), 3);
  EXPECT_DOUBLE_EQ(first_read.load(), 42.0)
      << "init() must run before the schedule barrier";
}

TEST(Builder, DryRunSkipsInitHooksAndBodies) {
  // Dry-run builds scale_hint their locations (no allocation), so the
  // run must skip init hooks along with the bodies — an init hook that
  // touches its unallocated buffers would otherwise throw.
  rt::ProgramOptions opts = quiet();
  opts.dry_run = true;
  ProgramBuilder b(2, opts);
  std::atomic<int> ran{0};
  for (TaskId t = 0; t < 2; ++t) {
    b.task(t)
        .owns<double[]>(1 << 20)
        .writes<double[]>(loc(t))
        .init([&](Task& task) {
          ran.fetch_add(1);
          task.my<double[]>().span();  // no buffer in dry-run: would throw
        })
        .body([&](Task&) { ran.fetch_add(1); });
  }
  Program p = b.build();
  EXPECT_NO_THROW(p.run());
  EXPECT_EQ(ran.load(), 0) << "dry-run declarative programs only extract";
  p.dependency_get();
  EXPECT_EQ(p.comm_matrix().order(), 2u);
}

TEST(Builder, ScheduleFromDeclarativeBodyThrows) {
  ProgramBuilder b(1, quiet());
  b.task(0).owns<double>().writes<double>(loc(0));
  b.body([](Task& task) { task.schedule(); });
  Program p = b.build();
  EXPECT_THROW(p.run(), std::logic_error);
}

TEST(Builder, LinkLookupChecksModeAndType) {
  ProgramBuilder b(1, quiet());
  b.task(0).owns<double>().writes<double>(loc(0));
  b.body([](Task& task) {
    // Right mode + type works; wrong mode, type or shape is refused.
    EXPECT_NO_THROW(task.write_link<double>(loc(0)));
    EXPECT_THROW(task.read_link<double>(loc(0)), std::logic_error);
    EXPECT_THROW(task.write_link<float>(loc(0)), std::logic_error);
    EXPECT_THROW(task.write_link<double[]>(loc(0)), std::logic_error)
        << "array lookup must not alias a scalar declaration";
  });
  b.build().run();
}

TEST(Builder, BodylessTaskWithDeclaredAccessesIsRejected) {
  // Such a task's tickets would never be acquired, stalling the
  // location's FIFO until the deadlock guard; fail fast instead.
  ProgramBuilder b(2, quiet());
  b.task(0).owns<double>().writes<double>(loc(0));  // no body
  b.task(1).reads<double>(loc(0)).body([](Task&) {});
  Program p = b.build();
  EXPECT_THROW(p.run(), std::logic_error);
}

TEST(Guards, ZeroSizedSyncLocationsYieldEmptySpans) {
  // The v1 pure-synchronization idiom: locations with no data, used
  // only for their FIFO ordering. Array guards map them as empty spans.
  rt::ProgramOptions opts = quiet();
  ProgramBuilder b(2, opts);
  for (TaskId t = 0; t < 2; ++t) {
    b.task(t)
        .writes<std::byte[]>(loc(t), 0)
        .reads<std::byte[]>(loc((t + 1) % 2), 1)
        .iterates(5);
  }
  b.body([](Task& task) {
    WriteLink<std::byte[]> own =
        task.write_link<std::byte[]>(loc(task.id()));
    ReadLink<std::byte[]> other =
        task.read_link<std::byte[]>(loc((task.id() + 1) % 2));
    task.run_iterations([&](std::size_t) {
      {
        WriteGuard<std::byte[]> w(own);
        EXPECT_EQ(w.size(), 0u);
      }
      {
        ReadGuard<std::byte[]> r(other);
        EXPECT_TRUE(r.span().empty());
      }
    });
  });
  EXPECT_NO_THROW(b.build().run());
}

TEST(Builder, BuildTwiceAndBadTargetsThrow) {
  {
    ProgramBuilder b(2, quiet());
    b.task(0).owns<double>().writes<double>(loc(0));
    b.body([](Task&) {});
    (void)b.build();
    EXPECT_THROW(b.build(), std::logic_error);
  }
  {
    ProgramBuilder b(2, quiet());
    b.task(0).reads<double>(loc(7), 1);  // no task 7
    EXPECT_THROW(b.build(), std::out_of_range);
  }
  {
    // Two same-mode links of one task on one location would be
    // unreachable through the (location, mode) lookup: rejected.
    ProgramBuilder b(2, quiet());
    b.task(0).owns<double>().writes<double>(loc(0), 0).writes<double>(
        loc(0), 5);
    EXPECT_THROW(b.build(), std::logic_error);
  }
}

// ------------------------------------------------- typed locations ------

TEST(TypedLocal, ScaleComesFromTheType) {
  rt::Location raw(0, 0, 0);
  Local<std::uint32_t> one(raw);
  one.scale();
  EXPECT_EQ(raw.size(), sizeof(std::uint32_t));
  one.value() = 7;
  EXPECT_EQ(one.value(), 7u);

  Local<double[]> many(raw);
  many.scale(12);
  EXPECT_EQ(raw.size(), 12 * sizeof(double));
  EXPECT_EQ(many.count(), 12u);
  EXPECT_EQ(many.span().size(), 12u);
  many.span()[11] = 3.5;
  EXPECT_DOUBLE_EQ(many.span()[11], 3.5);
}

TEST(TypedLocal, CheckedAccessRejectsBadShapes) {
  rt::Location raw(0, 0, 0);
  Local<double> lens(raw);
  // No buffer yet (and none after a hint-only scale).
  EXPECT_THROW(lens.value(), std::logic_error);
  raw.scale_hint(sizeof(double));
  EXPECT_THROW(lens.value(), std::logic_error);
  // Wrong size for the element type.
  raw.scale(3);
  EXPECT_THROW(lens.value(), std::length_error);
  raw.scale(sizeof(double));
  EXPECT_NO_THROW(lens.value());
}

TEST(TypedSpans, AsSpanChecksDivisibility) {
  alignas(double) std::byte storage[24] = {};
  EXPECT_EQ(as_span<double>(std::span<std::byte>(storage, 24)).size(), 3u);
  EXPECT_THROW(as_span<double>(std::span<std::byte>(storage, 20)),
               std::length_error);
}

// ------------------------------------------------ imperative guards -----

TEST(Guards, TypedRoundTripThroughImperativeProgram) {
  struct Packet {
    std::int32_t seq;
    double payload;
  };
  rt::ProgramOptions opts = quiet();
  std::atomic<double> seen{0.0};
  Program prog(2, opts);
  prog.set_task_body(0, [](Task& task) {
    task.my<Packet>().scale();
    WriteLink<Packet> out = task.write<Packet>(task.mine(), 0);
    task.schedule();
    WriteGuard<Packet> w(out);
    w->seq = 1;
    w->payload = 2.5;
  });
  prog.set_task_body(1, [&](Task& task) {
    ReadLink<Packet> in = task.read<Packet>(loc(0), 1);
    task.schedule();
    ReadGuard<Packet> r(in);
    EXPECT_EQ(r->seq, 1);
    seen.store(r->payload);
  });
  prog.run();
  EXPECT_DOUBLE_EQ(seen.load(), 2.5);
}

TEST(Guards, EarlyReleaseIsIdempotentAndTeardownSafe) {
  rt::ProgramOptions opts = quiet();
  Program prog(1, opts);
  prog.set_task_body([](Task& task) {
    task.my<double>().scale();
    WriteLink<double> own = task.write<double>(task.mine(), 0);
    task.schedule();
    WriteGuard<double> w(own);
    w.ref() = 1.0;
    w.release();
    EXPECT_FALSE(w.held());
    EXPECT_NO_THROW(w.release());  // double release: no-op
    // The buffer belongs to the next grantee now: the cached map must
    // be unreachable (v1's "section not acquired" contract).
    EXPECT_THROW(w.ref(), std::logic_error);
    // Destructor of the already-released guard must also be a no-op.
  });
  const std::uint64_t before = rt::guard_teardown_failures();
  prog.run();
  EXPECT_EQ(rt::guard_teardown_failures(), before)
      << "clean early release must not count as a teardown failure";
}

TEST(Guards, ThrowingExplicitReleaseStillRecordsAtTeardown) {
  // release() propagates protocol errors but must leave the guard
  // armed, so the destructor's noexcept teardown runs and counts the
  // failure — otherwise a lost grant would vanish from the counters.
  rt::ProgramOptions opts = quiet();
  Program prog(1, opts);
  prog.set_task_body([](Task& task) {
    task.my<double>().scale();
    WriteLink<double> own = task.write<double>(task.mine(), 0);
    task.schedule();
    WriteGuard<double> w(own);
    // Yank the grant away underneath the guard (ticket 1 is the only
    // request), then release() must throw and the dtor must swallow.
    task.program().location(task.mine()).queue().release(1);
    EXPECT_THROW(w.release(), std::logic_error);
    EXPECT_TRUE(w.held()) << "a failed release keeps the guard armed";
  });
  const std::uint64_t before = rt::guard_teardown_failures();
  EXPECT_NO_THROW(prog.run());
  EXPECT_EQ(rt::guard_teardown_failures(), before + 1);
  EXPECT_EQ(prog.runtime().stats().guard_teardown_failures, 1u);
}

TEST(Guards, WriteGuardChecksElementShape) {
  rt::ProgramOptions opts = quiet();
  Program prog(1, opts);
  prog.set_task_body([](Task& task) {
    task.my<std::byte[]>().scale(3);  // 3 bytes: not a whole double
    WriteLink<double> bad = task.write<double>(task.mine(), 0);
    task.schedule();
    EXPECT_THROW(WriteGuard<double> g(bad), std::length_error);
  });
  prog.run();
}

// --------------------------------------------------- FIFO channels ------

TEST(Fifo, ScalarRoundTripThroughBuilder) {
  static constexpr std::size_t kItems = 16;
  ProgramBuilder b(2, quiet());
  b.task(0).fifo_out<int>("nums", /*depth=*/2).body([](Task& task) {
    FifoOut<int> out = task.fifo_out<int>("nums");
    EXPECT_EQ(out.depth(), 2u);
    for (std::size_t i = 0; i < kItems; ++i)
      out.push(static_cast<int>(i * i));
    EXPECT_EQ(out.pushed(), kItems);
  });
  std::atomic<long> sum{0};
  b.task(1).fifo_in<int>("nums").body([&](Task& task) {
    FifoIn<int> in = task.fifo_in<int>("nums");
    for (std::size_t i = 0; i < kItems; ++i) sum.fetch_add(in.pop());
    EXPECT_EQ(in.popped(), kItems);
  });
  b.build().run();

  long expect = 0;
  for (std::size_t i = 0; i < kItems; ++i) expect += static_cast<long>(i * i);
  EXPECT_EQ(sum.load(), expect);
}

TEST(Fifo, ArrayChannelBroadcastsToEveryConsumer) {
  // Two consumers on one channel: each pops EVERY item (the readers at
  // each ring slot's head share the grant — Sec. V-C broadcast).
  static constexpr std::size_t kItems = 8;
  static constexpr std::size_t kCount = 32;
  ProgramBuilder b(3, quiet());
  b.task(0)
      .fifo_out<double[]>("blocks", kCount, /*depth=*/3)
      .body([](Task& task) {
        FifoOut<double[]> out = task.fifo_out<double[]>("blocks");
        for (std::size_t i = 0; i < kItems; ++i) {
          std::span<double> item = out.begin_push();
          ASSERT_EQ(item.size(), kCount);
          for (double& d : item) d = static_cast<double>(i);
          out.end_push();
        }
      });
  std::atomic<double> sums[2] = {0.0, 0.0};
  for (TaskId c = 1; c <= 2; ++c) {
    b.task(c).fifo_in<double[]>("blocks").body([&, c](Task& task) {
      FifoIn<double[]> in = task.fifo_in<double[]>("blocks");
      double total = 0.0;
      for (std::size_t i = 0; i < kItems; ++i) {
        std::span<const double> item = in.begin_pop();
        for (double d : item) total += d;
        in.end_pop();
      }
      sums[c - 1].store(total);
    });
  }
  b.build().run();

  const double expect = kCount * (kItems * (kItems - 1) / 2.0);
  EXPECT_DOUBLE_EQ(sums[0].load(), expect);
  EXPECT_DOUBLE_EQ(sums[1].load(), expect) << "broadcast: every consumer "
                                              "sees every item";
}

TEST(Fifo, EndpointLookupChecksIdentityAndType) {
  ProgramBuilder b(2, quiet());
  b.task(0).fifo_out<int>("c").body([](Task& task) {
    EXPECT_THROW(task.fifo_out<double>("c"), std::logic_error)
        << "channel item type is part of the contract";
    EXPECT_THROW(task.fifo_out<int>("nope"), std::logic_error);
    EXPECT_THROW(task.fifo_in<int>("c"), std::logic_error)
        << "the producer is not a consumer";
    FifoOut<int> out = task.fifo_out<int>("c");
    out.push(1);
  });
  b.task(1).fifo_in<int>("c").body([](Task& task) {
    EXPECT_THROW(task.fifo_out<int>("c"), std::logic_error)
        << "only the declaring producer owns the write end";
    EXPECT_THROW(task.fifo_in<double>("c"), std::logic_error);
    EXPECT_EQ(task.fifo_in<int>("c").pop(), 1);
  });
  b.build().run();
}

TEST(Fifo, UntypedByteChannelRoundTrip) {
  // fifo_out_bytes: the wire format is the application's business — the
  // channel moves `kItemBytes` raw bytes per item, and both endpoints use
  // the T = void byte view.
  static constexpr std::size_t kItemBytes = 48;
  static constexpr std::size_t kItems = 12;
  ProgramBuilder b(2, quiet());
  b.task(0)
      .fifo_out_bytes("wire", kItemBytes, /*depth=*/3)
      .body([](Task& task) {
        FifoOut<> out = task.fifo_out<>("wire");
        EXPECT_EQ(out.depth(), 3u);
        for (std::size_t i = 0; i < kItems; ++i) {
          std::span<std::byte> item = out.begin_push();
          ASSERT_EQ(item.size(), kItemBytes);
          for (std::size_t j = 0; j < item.size(); ++j) {
            item[j] = static_cast<std::byte>((i * 7 + j) & 0xFF);
          }
          out.end_push();
        }
      });
  std::atomic<std::size_t> bad{0};
  b.task(1).fifo_in<>("wire").body([&](Task& task) {
    FifoIn<> in = task.fifo_in<>("wire");
    EXPECT_NO_THROW(task.fifo_in<int>("wire"))
        << "an untyped declaration is a wildcard: typed views are allowed";
    for (std::size_t i = 0; i < kItems; ++i) {
      std::span<const std::byte> item = in.begin_pop();
      ASSERT_EQ(item.size(), kItemBytes);
      for (std::size_t j = 0; j < item.size(); ++j) {
        if (item[j] != static_cast<std::byte>((i * 7 + j) & 0xFF)) {
          bad.fetch_add(1);
        }
      }
      in.end_pop();
    }
    EXPECT_EQ(in.popped(), kItems);
  });
  b.build().run();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(Fifo, BuildRejectsMalformedChannels) {
  {
    // Unknown channel name.
    ProgramBuilder b(2, quiet());
    b.task(0).fifo_out<int>("a").body([](Task&) {});
    b.task(1).fifo_in<int>("b").body([](Task&) {});
    EXPECT_THROW(b.build(), std::logic_error);
  }
  {
    // Duplicate channel name across producers.
    ProgramBuilder b(2, quiet());
    b.task(0).fifo_out<int>("a").body([](Task&) {});
    b.task(1).fifo_out<int>("a").body([](Task&) {});
    EXPECT_THROW(b.build(), std::logic_error);
  }
  {
    // A producer consuming its own channel would self-deadlock.
    ProgramBuilder b(1, quiet());
    b.task(0).fifo_out<int>("a").fifo_in<int>("a").body([](Task&) {});
    EXPECT_THROW(b.build(), std::logic_error);
  }
  {
    // Item type mismatch between the two ends.
    ProgramBuilder b(2, quiet());
    b.task(0).fifo_out<int>("a").body([](Task&) {});
    b.task(1).fifo_in<float>("a").body([](Task&) {});
    EXPECT_THROW(b.build(), std::logic_error);
  }
  {
    // depth < 2 cannot overlap production with consumption.
    ProgramBuilder b(2, quiet());
    b.task(0).fifo_out<int>("a", /*depth=*/1).body([](Task&) {});
    b.task(1).fifo_in<int>("a").body([](Task&) {});
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
}

// ----------------------------------------------- converged iteration ----

TEST(Converged, PredicateLoopTerminatesUniformly) {
  // Each task contributes 1/(i+1); the global sum is tasks/(i+1), and
  // every task must leave the loop on the same iteration — the sum is
  // reduced across all of them before anyone evaluates the predicate.
  static constexpr std::size_t kTasks = 3;
  ProgramBuilder b(kTasks, quiet());
  std::atomic<std::size_t> counts[kTasks] = {};
  for (TaskId t = 0; t < kTasks; ++t) {
    b.task(t).body([&, t](Task& task) {
      const std::size_t ran = task.run_iterations(
          [](double global) { return global < 0.5; },
          [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); });
      counts[t].store(ran);
    });
  }
  b.build().run();

  // 3/(i+1) < 0.5 first holds at i = 6, so 7 iterations everywhere.
  for (TaskId t = 0; t < kTasks; ++t) EXPECT_EQ(counts[t].load(), 7u);
}

TEST(Converged, MixedWorkloadsStaySynchronized) {
  // The reduction is a generation barrier: a fast task cannot lap a
  // slow one, and each generation's published sum is identical for all.
  static constexpr std::size_t kTasks = 4;
  ProgramBuilder b(kTasks, quiet());
  std::atomic<int> exact_sums{0};
  std::atomic<std::size_t> rounds[kTasks] = {};
  for (TaskId t = 0; t < kTasks; ++t) {
    b.task(t).body([&, t](Task& task) {
      const std::size_t ran = task.run_iterations(
          [&](double global) {
            // Every task contributes its id + 1, so each full round
            // sums to exactly 1 + 2 + ... + kTasks.
            if (global == kTasks * (kTasks + 1) / 2.0)
              exact_sums.fetch_add(1);
            return global < 0.0;
          },
          [t](std::size_t i) {
            // Round 20 flips everyone to a negative contribution,
            // driving the sum below zero and stopping all loops at once.
            return i < 20 ? static_cast<double>(t + 1)
                          : -static_cast<double>(kTasks * kTasks);
          });
      rounds[t].store(ran);
    });
  }
  b.build().run();
  EXPECT_EQ(exact_sums.load(), 20 * static_cast<int>(kTasks))
      << "every task must observe the complete sum of every round";
  for (TaskId t = 0; t < kTasks; ++t) EXPECT_EQ(rounds[t].load(), 21u);
}

}  // namespace
