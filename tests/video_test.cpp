#include <gtest/gtest.h>

#include "apps/video.hpp"

namespace {

using namespace orwl::apps;

/// Small test configuration (fast on the CI host).
VideoParams tiny_params() {
  VideoParams p;
  p.width = 96;
  p.height = 64;
  p.frames = 10;
  p.gmm_splits = 4;
  p.dilates = 2;
  p.ccl_splits = 2;
  p.objects = 2;
  p.min_area = 20;
  return p;
}

orwl::rt::ProgramOptions quiet() {
  orwl::rt::ProgramOptions o;
  o.affinity = orwl::rt::AffinityMode::Off;
  o.acquire_timeout_ms = 60000;
  return o;
}

TEST(VideoParams, TaskLayoutMatchesFig2) {
  // Default parameters reproduce the paper's 30-task graph with the ids
  // of Fig. 2.
  const VideoParams p = video_hd();
  EXPECT_EQ(p.num_tasks(), 30u);
  EXPECT_EQ(p.producer_task(), 0u);
  EXPECT_EQ(p.gmm_task(), 1u);
  EXPECT_EQ(p.erode_task(), 2u);
  EXPECT_EQ(p.dilate_task(0), 3u);
  EXPECT_EQ(p.dilate_task(3), 6u);
  EXPECT_EQ(p.ccl_task(), 7u);
  EXPECT_EQ(p.tracking_task(), 8u);
  EXPECT_EQ(p.consumer_task(), 9u);
  EXPECT_EQ(p.gmm_split_task(0), 10u);
  EXPECT_EQ(p.gmm_split_task(15), 25u);
  EXPECT_EQ(p.ccl_split_task(0), 26u);
  EXPECT_EQ(p.ccl_split_task(3), 29u);
}

TEST(VideoParams, ResolutionsMatchPaper) {
  EXPECT_EQ(video_hd().width, 1280u);
  EXPECT_EQ(video_hd().height, 720u);
  EXPECT_EQ(video_full_hd().width, 1920u);
  EXPECT_EQ(video_full_hd().height, 1080u);
  EXPECT_EQ(video_4k().width, 3840u);
  EXPECT_EQ(video_4k().height, 2160u);
}

TEST(Video, SequentialDetectsMovingObjects) {
  const VideoParams p = tiny_params();
  const VideoResult r = video_sequential(p);
  EXPECT_EQ(r.frames, p.frames);
  EXPECT_EQ(r.detections_per_frame.size(), p.frames);
  // After the model settles, the moving squares must be detected.
  EXPECT_GT(r.total_detections, 0u);
  EXPECT_GE(r.final_track_count, 1u);
}

TEST(Video, OrwlMatchesSequential) {
  const VideoParams p = tiny_params();
  const VideoResult seq = video_sequential(p);
  const VideoResult par = video_orwl(p, quiet());
  EXPECT_EQ(par.frames, seq.frames);
  EXPECT_EQ(par.detections_per_frame, seq.detections_per_frame)
      << "ORWL pipeline must produce identical per-frame detections";
  EXPECT_EQ(par.total_detections, seq.total_detections);
  EXPECT_EQ(par.final_track_count, seq.final_track_count);
  EXPECT_EQ(par.total_tracks_created, seq.total_tracks_created);
  ASSERT_EQ(par.final_track_positions.size(),
            seq.final_track_positions.size());
  for (std::size_t i = 0; i < par.final_track_positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(par.final_track_positions[i][0],
                     seq.final_track_positions[i][0]);
    EXPECT_DOUBLE_EQ(par.final_track_positions[i][1],
                     seq.final_track_positions[i][1]);
  }
}

TEST(Video, ForkJoinMatchesSequential) {
  const VideoParams p = tiny_params();
  const VideoResult seq = video_sequential(p);
  orwl::pool::ThreadPool pool(4);
  const VideoResult par = video_forkjoin(p, pool);
  EXPECT_EQ(par.detections_per_frame, seq.detections_per_frame);
  EXPECT_EQ(par.final_track_count, seq.final_track_count);
}

TEST(Video, OrwlWithAffinityStillCorrect) {
  VideoParams p = tiny_params();
  p.frames = 6;
  const VideoResult seq = video_sequential(p);
  orwl::rt::ProgramOptions o = quiet();
  o.affinity = orwl::rt::AffinityMode::On;
  const VideoResult par = video_orwl(p, o);
  EXPECT_EQ(par.detections_per_frame, seq.detections_per_frame);
}

TEST(Video, TracksFollowGroundTruthObjects) {
  VideoParams p = tiny_params();
  p.frames = 16;
  p.objects = 2;
  // Seed chosen so the two objects stay spatially separated for the whole
  // clip (with other seeds their dilated blobs can merge into a single
  // component, which is correct CCL behavior but not what this test
  // checks).
  p.seed = 8;
  const VideoResult r = video_sequential(p);
  EXPECT_EQ(r.final_track_count, 2u);
  // Identity preserved: no spurious extra tracks were ever created.
  EXPECT_EQ(r.total_tracks_created, 2u);
  for (int d : r.detections_per_frame) EXPECT_EQ(d, 2);
}

TEST(Video, CommMatrixStructure) {
  const VideoParams p = tiny_params();
  const orwl::tm::CommMatrix m = video_comm_matrix(p);
  ASSERT_EQ(m.order(), p.num_tasks());

  const double frame_bytes = static_cast<double>(p.width * p.height);
  // Producer feeds every gmm split through the 2-deep FIFO (both slots
  // count: 2 x frame bytes of shared locations).
  for (std::size_t g = 0; g < p.gmm_splits; ++g) {
    EXPECT_DOUBLE_EQ(m.at(p.producer_task(), p.gmm_split_task(g)),
                     2 * frame_bytes);
  }
  // Pipeline chain edges exist.
  EXPECT_GT(m.at(p.gmm_task(), p.erode_task()), 0.0);
  EXPECT_GT(m.at(p.erode_task(), p.dilate_task(0)), 0.0);
  EXPECT_GT(m.at(p.dilate_task(0), p.dilate_task(1)), 0.0);
  EXPECT_GT(m.at(p.ccl_task(), p.tracking_task()), 0.0);
  EXPECT_GT(m.at(p.tracking_task(), p.consumer_task()), 0.0);
  // CCL splits read the last dilate.
  for (std::size_t c = 0; c < p.ccl_splits; ++c) {
    EXPECT_DOUBLE_EQ(
        m.at(p.dilate_task(p.dilates - 1), p.ccl_split_task(c)),
        frame_bytes);
  }
  // No spurious edge between unrelated stages.
  EXPECT_DOUBLE_EQ(m.at(p.producer_task(), p.tracking_task()), 0.0);
  EXPECT_DOUBLE_EQ(m.at(p.erode_task(), p.ccl_task()), 0.0);
}

TEST(Video, TaskNamesMatchFig2) {
  const VideoParams p = video_hd();
  const auto names = video_task_names(p);
  ASSERT_EQ(names.size(), 30u);
  EXPECT_EQ(names[0], "producer");
  EXPECT_EQ(names[1], "gmm");
  EXPECT_EQ(names[2], "erode");
  EXPECT_EQ(names[3], "dilate");
  EXPECT_EQ(names[7], "ccl");
  EXPECT_EQ(names[8], "tracking");
  EXPECT_EQ(names[9], "consumer");
  EXPECT_EQ(names[10], "gmm split");
  EXPECT_EQ(names[29], "ccl split");
}

}  // namespace
