// The multi-tenant server harness: admission and carve-out disjointness
// on the named topology fixtures, elastic worker pools, open-loop driver
// plumbing, clean teardown, and a randomized tenant-churn stress run.
//
// Handlers here are mostly synthetic (cheap, deterministic) so the suite
// stays fast under TSan; two end-to-end cases run the real lk23 / video
// programs inside a carve-out.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/driver.hpp"
#include "server/handlers.hpp"
#include "server/server.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl;
using namespace orwl::server;

ServerOptions on_fixture(const topo::Topology* t) {
  ServerOptions o;
  o.topology = t;
  // Fixture PUs are synthetic: never issue real OS bindings.
  o.bind_threads = false;
  o.base.bind_threads = false;
  o.base.affinity = rt::AffinityMode::Off;
  o.base.acquire_timeout_ms = 30000;
  return o;
}

/// Handler that bumps a counter; optionally sleeps to simulate work.
Handler counting_handler(std::atomic<std::uint64_t>* runs,
                         std::chrono::microseconds busy =
                             std::chrono::microseconds(0)) {
  return [runs, busy](const TenantEnv&) {
    if (busy.count() > 0) std::this_thread::sleep_for(busy);
    runs->fetch_add(1, std::memory_order_relaxed);
    return rt::ProgramStats{};
  };
}

/// Handler that blocks until release()d — for backlog/elasticity tests.
class GatedHandler {
 public:
  Handler handler() {
    return [this](const TenantEnv&) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return open_; });
      return rt::ProgramStats{};
    };
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

std::size_t live_os_threads() {
  std::size_t n = 0;
  std::error_code ec;
  for (auto it = std::filesystem::directory_iterator("/proc/self/task", ec);
       !ec && it != std::filesystem::directory_iterator(); ++it) {
    ++n;
  }
  return n;
}

// ------------------------------------------------------- admission ----

TEST(ServerAdmission, TenantCpusetsAreDisjointOnEveryNamedFixture) {
  std::atomic<std::uint64_t> runs{0};
  for (const char* spec : {"smp20e7", "smp12e5", "fig2"}) {
    const topo::Topology t = *topo::make_named(spec);
    Server server(on_fixture(&t));
    std::vector<TenantId> ids;
    // Three tenants of mixed widths always fit on 32+ PUs.
    for (std::size_t width : {8u, 8u, 4u}) {
      TenantSpec s;
      s.name = std::string(spec) + "-w" + std::to_string(ids.size());
      s.width_pus = width;
      s.handler = counting_handler(&runs);
      ids.push_back(server.admit(std::move(s)));
    }
    ASSERT_EQ(server.num_tenants(), 3u) << spec;
    topo::CpuSet seen;
    for (TenantId id : ids) {
      const topo::CpuSet cpus = server.tenant_cpus(id);
      EXPECT_FALSE(cpus.empty()) << spec;
      EXPECT_TRUE((cpus & seen).empty())
          << spec << ": tenant " << id << " overlaps a prior carve-out";
      seen = seen | cpus;
    }
    EXPECT_TRUE(server.taken() == seen) << spec;
  }
}

TEST(ServerAdmission, RejectsWhenNoDisjointCarveFits) {
  std::atomic<std::uint64_t> runs{0};
  for (const char* spec : {"smp20e7", "smp12e5", "fig2"}) {
    const topo::Topology t = *topo::make_named(spec);
    Server server(on_fixture(&t));
    TenantSpec whole;
    whole.name = "whole-machine";
    whole.width_pus = t.num_pus();
    whole.handler = counting_handler(&runs);
    ASSERT_TRUE(server.try_admit(whole).has_value()) << spec;

    TenantSpec one;
    one.name = "late";
    one.width_pus = 1;
    one.handler = counting_handler(&runs);
    EXPECT_FALSE(server.try_admit(one).has_value()) << spec;
    EXPECT_THROW(server.admit(one), std::runtime_error) << spec;
    EXPECT_EQ(server.num_tenants(), 1u) << spec;
  }
}

TEST(ServerAdmission, HonorsMaxTenantsLimit) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_smp20e7();
  ServerOptions o = on_fixture(&t);
  o.max_tenants = 2;
  Server server(o);
  EXPECT_EQ(server.max_tenants(), 2u);
  for (int i = 0; i < 2; ++i) {
    TenantSpec s;
    s.name = "t" + std::to_string(i);
    s.width_pus = 8;
    s.handler = counting_handler(&runs);
    ASSERT_TRUE(server.try_admit(std::move(s)).has_value());
  }
  TenantSpec third;
  third.name = "t2";
  third.width_pus = 8;
  third.handler = counting_handler(&runs);
  EXPECT_FALSE(server.try_admit(std::move(third)).has_value());
}

TEST(ServerAdmission, EnvKnobsFillUnsetOptions) {
  const topo::Topology t = topo::make_fig2_machine();
  support::ScopedEnv max(kMaxTenantsEnvVar, "3");
  support::ScopedEnv cap(kQueueCapEnvVar, "17");
  support::ScopedEnv grow(kGrowBacklogEnvVar, "5");
  support::ScopedEnv idle(kShrinkIdleEnvVar, "123");
  Server server(on_fixture(&t));
  EXPECT_EQ(server.max_tenants(), 3u);
  EXPECT_EQ(server.queue_capacity(), 17u);
  EXPECT_EQ(server.grow_backlog(), 5u);
  EXPECT_EQ(server.shrink_idle_ms(), 123u);

  // Explicit options beat the environment.
  ServerOptions o = on_fixture(&t);
  o.max_tenants = 9;
  Server explicit_server(o);
  EXPECT_EQ(explicit_server.max_tenants(), 9u);
}

TEST(ServerAdmission, MalformedSpecsThrow) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec ok;
  ok.name = "ok";
  ok.width_pus = 4;
  ok.handler = counting_handler(&runs);

  TenantSpec nameless = ok;
  nameless.name.clear();
  EXPECT_THROW(server.admit(std::move(nameless)), std::invalid_argument);

  TenantSpec handlerless = ok;
  handlerless.handler = nullptr;
  EXPECT_THROW(server.admit(std::move(handlerless)),
               std::invalid_argument);

  TenantSpec zero = ok;
  zero.width_pus = 0;
  EXPECT_THROW(server.admit(std::move(zero)), std::invalid_argument);

  TenantSpec inverted = ok;
  inverted.min_workers = 3;
  inverted.max_workers = 1;
  EXPECT_THROW(server.admit(std::move(inverted)), std::invalid_argument);
  EXPECT_EQ(server.num_tenants(), 0u);
}

TEST(ServerAdmission, EvictedPusAreReusable) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec whole;
  whole.name = "whole";
  whole.width_pus = 32;
  whole.handler = counting_handler(&runs);
  const TenantId first = server.admit(whole);
  EXPECT_FALSE(server.try_admit(whole).has_value());

  server.evict(first);
  EXPECT_EQ(server.num_tenants(), 0u);
  EXPECT_TRUE(server.taken().empty());
  const TenantId second = server.admit(whole);
  EXPECT_NE(second, first);  // ids are never recycled
  EXPECT_EQ(server.tenant_cpus(second).count(), 32u);

  server.evict(second);
  server.evict(second);  // double-evict is a no-op
  EXPECT_THROW(server.stats(second), std::out_of_range);
}

TEST(ServerAdmission, TenantEnvIsPreComposed) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_smp12e5();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "env-check";
  s.width_pus = 16;
  rt::ProgramOptions seen;
  const topo::Topology* seen_topo = nullptr;
  s.handler = [&](const TenantEnv& env) {
    seen = env.program_options();
    seen_topo = env.topology;
    runs.fetch_add(1);
    return rt::ProgramStats{};
  };
  const TenantId id = server.admit(std::move(s));
  ASSERT_TRUE(server.submit(id));
  server.drain(id);
  ASSERT_EQ(runs.load(), 1u);
  EXPECT_EQ(seen.tag, "env-check");
  EXPECT_EQ(seen.topology, &server.tenant_topology(id));
  EXPECT_EQ(seen_topo, &server.tenant_topology(id));
  EXPECT_EQ(server.tenant_topology(id).num_pus(), 16u);
  EXPECT_FALSE(seen.bind_threads);
}

// ----------------------------------------------- request execution ----

TEST(ServerExecution, SubmitRunsHandlersAndCounts) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "worker";
  s.width_pus = 8;
  s.max_workers = 2;
  s.handler = counting_handler(&runs);
  const TenantId id = server.admit(std::move(s));

  std::atomic<std::uint64_t> dones{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server.submit(id, [&dones] { dones.fetch_add(1); }));
  }
  server.drain(id);
  EXPECT_EQ(runs.load(), 20u);
  EXPECT_EQ(dones.load(), 20u);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.submitted, 20u);
  EXPECT_EQ(st.completed, 20u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.failed, 0u);
}

TEST(ServerExecution, QueueAtCapacitySheds) {
  const topo::Topology t = topo::make_fig2_machine();
  ServerOptions o = on_fixture(&t);
  o.queue_capacity = 2;
  Server server(o);
  GatedHandler gate;
  TenantSpec s;
  s.name = "shedder";
  s.width_pus = 4;
  s.min_workers = 1;
  s.max_workers = 1;
  s.handler = gate.handler();
  const TenantId id = server.admit(std::move(s));

  // At most 1 in the gated handler + 2 queued can be accepted (3, or 4
  // when the worker has not yet popped the first job); the rest shed.
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    if (server.submit(id)) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GE(accepted, 2u);
  EXPECT_LE(accepted, 4u);
  EXPECT_EQ(accepted + rejected, 10u);
  gate.release();
  server.drain(id);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.submitted, accepted);
  EXPECT_EQ(st.completed, accepted);
  EXPECT_EQ(st.shed, rejected);
}

TEST(ServerExecution, HandlerExceptionsCountAsFailedNotFatal) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "flaky";
  s.width_pus = 4;
  std::atomic<int> calls{0};
  s.handler = [&](const TenantEnv&) -> rt::ProgramStats {
    if (calls.fetch_add(1) % 2 == 0) {
      throw std::runtime_error("injected tenant bug");
    }
    runs.fetch_add(1);
    return rt::ProgramStats{};
  };
  const TenantId id = server.admit(std::move(s));
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.submit(id));
  server.drain(id);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.completed + st.failed, 6u);
  EXPECT_EQ(st.failed, 3u);
  // The pool survived: one more request still completes.
  ASSERT_TRUE(server.submit(id));
  server.drain(id);
  EXPECT_EQ(server.stats(id).completed + server.stats(id).failed, 7u);
}

TEST(ServerExecution, RollupAccumulatesProgramStats) {
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "rollup";
  s.width_pus = 4;
  s.handler = [](const TenantEnv&) {
    rt::ProgramStats one;
    one.control_events = 3;
    one.futex_waits = 2;
    one.affinity_applied = true;
    return one;
  };
  const TenantId id = server.admit(std::move(s));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.submit(id));
  server.drain(id);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.runtime.control_events, 12u);
  EXPECT_EQ(st.runtime.futex_waits, 8u);
  EXPECT_TRUE(st.runtime.affinity_applied);
}

TEST(ServerExecution, DrainWaitsForDoneCallbacks) {
  // Regression: done callbacks used to run after the job left the
  // inflight count, so drain() could return while a callback still
  // touched caller state (use-after-scope for replay()'s stack-local
  // latency vectors). The callback now runs while the job is inflight.
  const topo::Topology t = topo::make_smp20e7();
  Server server(on_fixture(&t));
  std::atomic<std::uint64_t> runs{0};
  TenantSpec s;
  s.name = "drain-done";
  s.width_pus = 8;
  s.max_workers = 4;
  s.handler = counting_handler(&runs);
  const TenantId id = server.admit(std::move(s));

  for (int round = 0; round < 25; ++round) {
    std::mutex mu;
    std::vector<int> sink;  // stack-local, dies at end of iteration
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(server.submit(id, [&mu, &sink, i] {
        // Widen the race window the old ordering lost.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        std::lock_guard<std::mutex> lk(mu);
        sink.push_back(i);
      }));
    }
    server.drain(id);
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(sink.size(), static_cast<std::size_t>(n))
        << "drain returned with done callbacks still pending";
  }
  // Stats observed after drain must include every request.
  EXPECT_EQ(server.stats(id).completed, 200u);
}

// ------------------------------------------------ elastic workers ----

TEST(ServerElastic, PoolGrowsWithBacklogAndShrinksWhenIdle) {
  const topo::Topology t = topo::make_smp20e7();
  ServerOptions o = on_fixture(&t);
  o.grow_backlog = 1;      // grow as soon as the queue outruns the pool
  o.shrink_idle_ms = 20;   // shrink quickly once drained
  Server server(o);
  GatedHandler gate;
  TenantSpec s;
  s.name = "elastic";
  s.width_pus = 8;
  s.min_workers = 1;
  s.max_workers = 4;
  s.handler = gate.handler();
  const TenantId id = server.admit(std::move(s));
  EXPECT_EQ(server.stats(id).workers, 1u);

  for (int i = 0; i < 12; ++i) ASSERT_TRUE(server.submit(id));
  {
    const TenantStats st = server.stats(id);
    EXPECT_EQ(st.workers, 4u) << "backlog of 12 must max the pool";
    EXPECT_EQ(st.peak_workers, 4u);
    EXPECT_GE(st.grow_events, 3u);
  }

  gate.release();
  server.drain(id);
  EXPECT_EQ(server.stats(id).completed, 12u);

  // Idle: the pool must fall back to the floor within a few idle
  // periods (poll with a generous deadline to stay unflaky).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats(id).workers > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.workers, 1u);
  EXPECT_GE(st.shrink_events, 3u);
}

TEST(ServerElastic, ChurnReapsShrunkWorkersAndReusesSlots) {
  // Regression: shrunk-out workers left their std::thread handles in
  // the pool forever; sustained grow/shrink churn accumulated unbounded
  // exited-but-unjoined handles. Slots are now reaped and reused on the
  // next spawn, so the handle count stays bounded by the pool maximum.
  const topo::Topology t = topo::make_smp20e7();
  ServerOptions o = on_fixture(&t);
  o.grow_backlog = 1;
  o.shrink_idle_ms = 5;
  Server server(o);
  std::atomic<std::uint64_t> runs{0};
  TenantSpec s;
  s.name = "churny";
  s.width_pus = 8;
  s.min_workers = 1;
  s.max_workers = 4;
  s.handler = counting_handler(&runs, std::chrono::microseconds(500));
  const TenantId id = server.admit(std::move(s));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 12; ++i) ASSERT_TRUE(server.submit(id));
    server.drain(id);
    while (server.stats(id).workers > 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.stats(id).workers, 1u) << "round " << round;
  }
  const TenantStats st = server.stats(id);
  EXPECT_GE(st.shrink_events, 6u) << "churn did not exercise shrink";
  EXPECT_LE(st.thread_slots, st.peak_workers)
      << "exited worker handles are accumulating instead of being reaped";
}

// ------------------------------------------------- clean teardown ----

TEST(ServerTeardown, DestructionLeaksNoThreads) {
  if (live_os_threads() == 0) GTEST_SKIP() << "no /proc/self/task";
  std::atomic<std::uint64_t> runs{0};
  const std::size_t before = live_os_threads();
  {
    const topo::Topology t = topo::make_smp20e7();
    Server server(on_fixture(&t));
    std::vector<TenantId> ids;
    for (int i = 0; i < 3; ++i) {
      TenantSpec s;
      s.name = "t" + std::to_string(i);
      s.width_pus = 8;
      s.max_workers = 3;
      s.handler = counting_handler(&runs, std::chrono::microseconds(200));
      ids.push_back(server.admit(std::move(s)));
    }
    for (TenantId id : ids) {
      for (int i = 0; i < 8; ++i) server.submit(id);
    }
    // Destructor must drain queued work and join every worker.
  }
  EXPECT_EQ(runs.load(), 24u) << "teardown dropped accepted requests";
  // Joined threads disappear from /proc/self/task immediately.
  EXPECT_EQ(live_os_threads(), before);
}

TEST(ServerTeardown, EvictJoinsWorkersAndKeepsOthersRunning) {
  if (live_os_threads() == 0) GTEST_SKIP() << "no /proc/self/task";
  std::atomic<std::uint64_t> a_runs{0};
  std::atomic<std::uint64_t> b_runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec a;
  a.name = "a";
  a.width_pus = 8;
  a.handler = counting_handler(&a_runs);
  TenantSpec b;
  b.name = "b";
  b.width_pus = 8;
  b.handler = counting_handler(&b_runs);
  const TenantId ida = server.admit(std::move(a));
  const TenantId idb = server.admit(std::move(b));
  for (int i = 0; i < 5; ++i) server.submit(ida);
  const std::size_t with_both = live_os_threads();

  server.evict(ida);
  EXPECT_EQ(a_runs.load(), 5u);
  EXPECT_FALSE(server.submit(ida)) << "evicted tenants shed";
  EXPECT_LT(live_os_threads(), with_both);

  ASSERT_TRUE(server.submit(idb));
  server.drain(idb);
  EXPECT_EQ(b_runs.load(), 1u);
}

TEST(ServerTeardown, EvictFreesPusOnlyAfterWorkersFinish) {
  // Regression: evict() used to return the PUs to the free set before
  // draining, so a concurrent admit() could carve the same PUs while the
  // evicted tenant's workers were still running — transiently breaking
  // the no-shared-PU invariant. The PUs must stay taken until the
  // workers are drained and joined.
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  GatedHandler gate;
  TenantSpec whole;
  whole.name = "whole";
  whole.width_pus = t.num_pus();
  whole.handler = gate.handler();
  const TenantId id = server.admit(std::move(whole));
  ASSERT_TRUE(server.submit(id));  // keeps a worker busy until release()

  std::thread evictor([&] { server.evict(id); });
  // evict() unlists the tenant immediately, then blocks draining the
  // gated job. Wait for the unlisting so the race window is open.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.has_tenant(id) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(server.has_tenant(id));

  // Mid-eviction the carve-out must still be owned: a whole-machine
  // admission has to fail until the evicted tenant's workers are done.
  std::atomic<std::uint64_t> runs{0};
  TenantSpec intruder;
  intruder.name = "intruder";
  intruder.width_pus = t.num_pus();
  intruder.handler = counting_handler(&runs);
  EXPECT_FALSE(server.try_admit(intruder).has_value())
      << "evict freed the PUs while its workers were still running";
  EXPECT_FALSE(server.taken().empty());

  gate.release();
  evictor.join();
  EXPECT_TRUE(server.taken().empty());
  EXPECT_TRUE(server.try_admit(std::move(intruder)).has_value());
}

// ------------------------------------------------ open-loop driver ----

TEST(DriverTrace, DeterministicAndSorted) {
  const auto a = make_open_loop_trace({200.0, 400.0}, 250.0, 42);
  const auto b = make_open_loop_trace({200.0, 400.0}, 250.0, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ms, b[i].at_ms);
    EXPECT_EQ(a[i].lane, b[i].lane);
    if (i > 0) {
      EXPECT_GE(a[i].at_ms, a[i - 1].at_ms);
    }
    EXPECT_LT(a[i].at_ms, 250.0);
  }
  // ~50 and ~100 expected arrivals; allow wide stochastic slack.
  std::size_t lane0 = 0;
  std::size_t lane1 = 0;
  for (const TraceEvent& e : a) (e.lane == 0 ? lane0 : lane1)++;
  EXPECT_GT(lane0, 20u);
  EXPECT_GT(lane1, lane0);
  // A different seed yields a different trace.
  const auto c = make_open_loop_trace({200.0, 400.0}, 250.0, 43);
  EXPECT_TRUE(c.size() != a.size() || c.front().at_ms != a.front().at_ms);
}

TEST(DriverTrace, ValidatesInput) {
  EXPECT_THROW(make_open_loop_trace({}, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(make_open_loop_trace({10.0, 0.0}, 100.0, 1),
               std::invalid_argument);
  EXPECT_THROW(make_open_loop_trace({10.0}, 0.0, 1),
               std::invalid_argument);
}

TEST(DriverTrace, PercentileNearestRank) {
  std::vector<double> sample = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile_ms(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_ms(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_ms(sample, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(percentile_ms(sample, 1.0), 5.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(percentile_ms(empty, 0.5), 0.0);
}

TEST(DriverReplay, OpenLoopTraceCompletesAndMeasures) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  std::vector<TenantId> lanes;
  for (int i = 0; i < 2; ++i) {
    TenantSpec s;
    s.name = "lane" + std::to_string(i);
    s.width_pus = 8;
    s.max_workers = 2;
    s.handler = counting_handler(&runs, std::chrono::microseconds(100));
    lanes.push_back(server.admit(std::move(s)));
  }
  const auto trace = make_open_loop_trace({300.0, 300.0}, 120.0, 7);
  const ReplayResult res = replay(server, lanes, trace);
  ASSERT_EQ(res.lanes.size(), 2u);
  std::size_t offered = 0;
  for (std::size_t lane = 0; lane < 2; ++lane) {
    const LaneResult& r = res.lanes[lane];
    offered += r.offered;
    EXPECT_EQ(r.completed + r.shed, r.offered) << "lane " << lane;
    EXPECT_GT(r.completed, 0u) << "lane " << lane;
    EXPECT_LE(r.p50_ms, r.p99_ms) << "lane " << lane;
    EXPECT_LE(r.p99_ms, r.p999_ms) << "lane " << lane;
    EXPECT_LE(r.p999_ms, r.max_ms) << "lane " << lane;
    EXPECT_GT(r.offered_rps, 0.0);
  }
  EXPECT_EQ(offered, trace.size());
  EXPECT_EQ(runs.load(), res.lanes[0].completed + res.lanes[1].completed);
  EXPECT_GT(res.wall_ms, 0.0);

  EXPECT_THROW(replay(server, {lanes[0]}, trace), std::invalid_argument);
}

TEST(DriverReplay, SaturationThroughputIsPositive) {
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "sat";
  s.width_pus = 8;
  s.max_workers = 2;
  s.handler = counting_handler(&runs, std::chrono::microseconds(50));
  const TenantId id = server.admit(std::move(s));
  const double rps = measure_saturation_rps(server, id, 64);
  EXPECT_GT(rps, 0.0);
  EXPECT_EQ(runs.load(), 64u);
}

TEST(DriverReplay, SaturationFailsFastWhenTenantIsGone) {
  // Regression: submit()==false used to be treated as "queue full" and
  // retried forever, so an unknown or evicted tenant spun the
  // measurement loop indefinitely. It must throw instead.
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  EXPECT_THROW(measure_saturation_rps(server, 777, 4), std::runtime_error);

  TenantSpec s;
  s.name = "ghost";
  s.width_pus = 8;
  s.handler = counting_handler(&runs);
  const TenantId id = server.admit(std::move(s));
  EXPECT_TRUE(server.has_tenant(id));
  server.evict(id);
  EXPECT_FALSE(server.has_tenant(id));
  EXPECT_THROW(measure_saturation_rps(server, id, 4), std::runtime_error);
}

// ------------------------------------------------- real programs ----

TEST(ServerPrograms, Lk23TenantRunsInsideItsCarveout) {
  const topo::Topology t = topo::make_fig2_machine();
  Server server(on_fixture(&t));
  TenantSpec s;
  s.name = "lk23";
  s.width_pus = 8;
  s.handler = make_lk23_handler(/*n=*/18, /*iters=*/2, 2, 2);
  const TenantId id = server.admit(std::move(s));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.submit(id));
  server.drain(id);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.failed, 0u);
  // Real programs hand off locks: the rollup shows runtime activity.
  EXPECT_GT(st.runtime.control_events + st.runtime.control_inline_grants,
            0u);
}

TEST(ServerPrograms, VideoTenantRunsInsideItsCarveout) {
  const topo::Topology t = topo::make_smp20e7();
  Server server(on_fixture(&t));
  apps::VideoParams p;
  p.width = 64;
  p.height = 48;
  p.frames = 2;
  p.gmm_splits = 2;
  p.dilates = 1;
  p.ccl_splits = 1;
  TenantSpec s;
  s.name = "video";
  s.width_pus = 16;
  s.handler = make_video_handler(p);
  const TenantId id = server.admit(std::move(s));
  ASSERT_TRUE(server.submit(id));
  server.drain(id);
  const TenantStats st = server.stats(id);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.failed, 0u);
}

// --------------------------------------------------- churn stress ----

TEST(ServerChurn, RandomAdmitEvictUnderOpenTraffic) {
  // Deterministic-seed stress: a churn loop admits and evicts tenants
  // while two traffic threads keep submitting to whatever is alive.
  // Invariants checked throughout: carve-outs stay pairwise disjoint,
  // taken() is exactly their union, and accounting never loses a
  // request. Runs under TSan/ASan in CI.
  std::atomic<std::uint64_t> runs{0};
  const topo::Topology t = topo::make_smp20e7();
  ServerOptions o = on_fixture(&t);
  o.queue_capacity = 32;
  o.max_tenants = 12;
  Server server(o);

  std::mutex ids_mu;
  std::vector<TenantId> ids;
  std::atomic<bool> stop{false};

  auto random_live = [&](support::SplitMix64& rng) -> TenantId {
    std::lock_guard<std::mutex> lk(ids_mu);
    if (ids.empty()) return 0;
    return ids[rng.below(ids.size())];
  };

  std::vector<std::thread> traffic;
  for (std::uint64_t seed : {101u, 202u}) {
    traffic.emplace_back([&, seed] {
      support::SplitMix64 rng(seed);
      while (!stop.load(std::memory_order_relaxed)) {
        const TenantId id = random_live(rng);
        if (id != 0) server.submit(id);  // shed/evicted races are fine
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  support::SplitMix64 churn_rng(4242);
  std::size_t admitted = 0;
  std::size_t evicted = 0;
  for (int round = 0; round < 120; ++round) {
    const bool admit = churn_rng.below(100) < 60;
    if (admit) {
      TenantSpec s;
      s.name = "churn" + std::to_string(round);
      s.width_pus = 8 * (1 + churn_rng.below(3));  // 8, 16 or 24 PUs
      s.max_workers = 2;
      s.handler =
          counting_handler(&runs, std::chrono::microseconds(100));
      if (auto id = server.try_admit(std::move(s))) {
        std::lock_guard<std::mutex> lk(ids_mu);
        ids.push_back(*id);
        ++admitted;
      }
    } else {
      TenantId victim = 0;
      {
        std::lock_guard<std::mutex> lk(ids_mu);
        if (!ids.empty()) {
          const std::size_t k = churn_rng.below(ids.size());
          victim = ids[k];
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(k));
        }
      }
      if (victim != 0) {
        server.evict(victim);
        ++evicted;
      }
    }
    // Invariants under churn: pairwise-disjoint carves, exact union.
    const auto all = server.stats();
    topo::CpuSet seen;
    for (const TenantStats& st : all) {
      ASSERT_TRUE((st.cpus & seen).empty())
          << "round " << round << ": tenant " << st.name
          << " overlaps another carve-out";
      seen = seen | st.cpus;
    }
  }
  stop.store(true);
  for (auto& th : traffic) th.join();

  EXPECT_GT(admitted, 20u);
  EXPECT_GT(evicted, 10u);

  // Final accounting on the survivors: nothing lost.
  server.drain_all();
  for (const TenantStats& st : server.stats()) {
    EXPECT_EQ(st.completed + st.failed, st.submitted) << st.name;
  }
  std::vector<TenantId> rest;
  {
    std::lock_guard<std::mutex> lk(ids_mu);
    rest = ids;
  }
  for (TenantId id : rest) server.evict(id);
  EXPECT_EQ(server.num_tenants(), 0u);
  EXPECT_TRUE(server.taken().empty());
}

}  // namespace
