#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>

#include "orwl/orwl.hpp"
#include "support/env.hpp"
#include "topo/binding.hpp"
#include "topo/machines.hpp"

namespace {

using namespace orwl::rt;

ProgramOptions quiet_options() {
  ProgramOptions o;
  o.affinity = AffinityMode::Off;
  o.acquire_timeout_ms = 20000;
  return o;
}

// ------------------------------------------------------- construction ----

TEST(Program, RejectsZeroTasks) {
  EXPECT_THROW(Program(0, quiet_options()), std::invalid_argument);
}

TEST(Program, RejectsZeroLocations) {
  ProgramOptions o = quiet_options();
  o.locations_per_task = 0;
  EXPECT_THROW(Program(2, o), std::invalid_argument);
}

TEST(Program, AutoControlThreadCount) {
  Program p(16, quiet_options());
  EXPECT_EQ(p.num_control_threads(), 4u);  // max(1, 16/4)
  Program q(2, quiet_options());
  EXPECT_EQ(q.num_control_threads(), 1u);
}

TEST(Program, LocationCoordinates) {
  ProgramOptions o = quiet_options();
  o.locations_per_task = 3;
  Program p(4, o);
  EXPECT_EQ(p.location(2, 1).owner(), 2u);
  EXPECT_EQ(p.location(2, 1).slot(), 1u);
  EXPECT_EQ(p.location(2, 1).id(), 7u);
  EXPECT_THROW(p.location(4, 0), std::out_of_range);
  EXPECT_THROW(p.location(0, 3), std::out_of_range);
}

TEST(Program, RunWithoutBodyThrows) {
  Program p(2, quiet_options());
  EXPECT_THROW(p.run(), std::logic_error);
}

// ---------------------------------------------------------- Listing 1 ----

TEST(Program, Listing1PipelineOfTasks) {
  // The paper's Listing 1: a chain of dependencies from task 0 to task
  // N-1, each averaging its own value with its predecessor's.
  constexpr std::size_t kTasks = 8;
  std::array<double, kTasks> result{};

  Program prog(kTasks, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    const TaskId me = ctx.id();
    ctx.scale(sizeof(double));

    Handle here;
    Handle there;
    here.write_insert(ctx, ctx.my_location(), me);
    if (me > 0) there.read_insert(ctx, ctx.location(me - 1), me);

    ctx.schedule();

    Section sec(here);
    double* wval = sec.as<double>();
    *wval = static_cast<double>(me + 1);  // init_val
    if (me > 0) {
      Section sec2(there);
      const double* rval = sec2.as_const<double>();
      *wval = (*rval + *wval) * 0.5;
    }
    result[me] = *wval;
  });
  prog.run();

  // Expected: v0 = 1; vk = (v(k-1) + k+1)/2.
  double expect = 1.0;
  EXPECT_DOUBLE_EQ(result[0], expect);
  for (std::size_t k = 1; k < kTasks; ++k) {
    expect = (expect + static_cast<double>(k + 1)) * 0.5;
    EXPECT_DOUBLE_EQ(result[k], expect) << "task " << k;
  }
}

// ------------------------------------------------------ FIFO ordering ----

TEST(Program, InsertPriorityOrdersInitialFifo) {
  // Two writers on task 0's location with different priorities; the
  // lower priority goes first regardless of which thread inserts first.
  std::vector<int> order;
  std::mutex order_mu;

  Program prog(2, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(64, 0);
    Handle h;
    // Task 1 gets priority 0 (head), task 0 priority 1.
    h.write_insert(ctx, ctx.location(0), ctx.id() == 1 ? 0 : 1);
    ctx.schedule();
    Section sec(h);
    std::unique_lock lock(order_mu);
    order.push_back(static_cast<int>(ctx.id()));
  });
  prog.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(Program, ReaderSharingGrantsConcurrently) {
  // One writer publishes, then N readers must hold the location at the
  // same time (reader sharing).
  constexpr std::size_t kReaders = 6;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};

  Program prog(kReaders + 1, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(sizeof(int));
    Handle h;
    if (ctx.id() == 0) {
      h.write_insert(ctx, ctx.location(0), 0);
    } else {
      h.read_insert(ctx, ctx.location(0), 1);
    }
    ctx.schedule();
    Section sec(h);
    if (ctx.id() == 0) {
      *sec.as<int>() = 42;
    } else {
      const int seen = concurrent.fetch_add(1) + 1;
      int old = peak.load();
      while (seen > old && !peak.compare_exchange_weak(old, seen)) {
      }
      // Hold the section long enough for the others to pile in.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      EXPECT_EQ(*sec.as_const<int>(), 42);
      concurrent.fetch_sub(1);
    }
  });
  prog.run();
  EXPECT_GE(peak.load(), 2) << "readers never overlapped";
}

// ----------------------------------------------------- iterative ring ----

TEST(Program, Handle2RingCirculation) {
  // Classic ORWL ring: each task owns a slot; every iteration it reads
  // its predecessor's slot and accumulates. After N iterations each slot
  // has visited every task.
  constexpr std::size_t kTasks = 5;
  constexpr int kIters = 5;  // full circulation
  std::array<long, kTasks> final_value{};

  Program prog(kTasks, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    const TaskId me = ctx.id();
    const TaskId prev = (me + kTasks - 1) % kTasks;
    ctx.scale(sizeof(long));
    ctx.my_location().as<long>()[0] = static_cast<long>(me);

    Handle2 own;
    Handle2 before;
    own.write_insert(ctx, ctx.my_location(), 0);
    before.read_insert(ctx, ctx.location(prev), 1);
    ctx.schedule();

    long carry = 0;
    for (int it = 0; it < kIters; ++it) {
      {
        Section sec(own);
        long* v = sec.as<long>();
        if (it == 0) {
          carry = *v;  // my initial value
        } else {
          *v = carry;  // deposit what I read from my predecessor
        }
      }
      {
        Section sec(before);
        carry = *sec.as_const<long>();
      }
    }
    final_value[me] = carry;
  });
  prog.run();

  // After kIters full steps the value that started at task t has moved
  // kIters positions: carry at task m is the initial value of task
  // (m - kIters) mod kTasks == m (kIters == kTasks). The exact algebra:
  // iteration i reads the predecessor's value deposited at iteration i,
  // which is the value (m - i) started with... net effect: each task sees
  // its own initial value again.
  for (std::size_t m = 0; m < kTasks; ++m) {
    EXPECT_EQ(final_value[m], static_cast<long>(m)) << "task " << m;
  }
}

// ------------------------------------------------------------- graph -----

TEST(Program, GraphFrozenAtSchedule) {
  Program prog(3, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(128);
    Handle own;
    Handle next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 3), 1);
    ctx.schedule();
    { Section s(own); }
    { Section s(next); }
  });
  prog.run();

  const TaskGraph& g = prog.graph();
  EXPECT_EQ(g.num_tasks, 3u);
  EXPECT_EQ(g.locations.size(), 3u);
  EXPECT_EQ(g.num_access_edges(), 6u);  // 3 writes + 3 reads
  for (const auto& loc : g.locations) {
    EXPECT_EQ(loc.bytes, 128u);
    ASSERT_EQ(loc.accesses.size(), 2u);
    // Sorted by priority: write (0) before read (1).
    EXPECT_EQ(loc.accesses[0].mode, AccessMode::Write);
    EXPECT_EQ(loc.accesses[1].mode, AccessMode::Read);
  }
}

TEST(Program, DryRunStopsAfterSchedule) {
  std::atomic<int> compute_phase{0};
  ProgramOptions o = quiet_options();
  o.dry_run = true;
  Program prog(4, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(64);
    Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    if (ctx.dry_run()) return;
    compute_phase.fetch_add(1);
  });
  prog.run();
  EXPECT_EQ(compute_phase.load(), 0);
  EXPECT_EQ(prog.graph().num_access_edges(), 4u);
}

// --------------------------------------------------------- exceptions ----

TEST(Program, TaskExceptionPropagates) {
  ProgramOptions o = quiet_options();
  o.acquire_timeout_ms = 2000;  // other tasks time out at the barrier
  Program prog(2, o);
  prog.set_task_body([&](TaskContext& ctx) {
    if (ctx.id() == 0) throw std::runtime_error("task failure");
    ctx.schedule();  // will time out since task 0 never arrives
  });
  EXPECT_THROW(prog.run(), std::runtime_error);
}

TEST(Program, DoubleAcquireThrows) {
  Program prog(1, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(8);
    Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    h.acquire();
    EXPECT_THROW(h.acquire(), std::logic_error);
    h.release();
    // Plain handles cannot be re-acquired.
    EXPECT_THROW(h.acquire(), std::logic_error);
  });
  prog.run();
}

TEST(Program, UnlinkedHandleThrows) {
  Handle h;
  EXPECT_THROW(h.acquire(), std::logic_error);
  EXPECT_THROW(h.release(), std::logic_error);
}

TEST(Program, WriteMapOnReadHandleThrows) {
  Program prog(2, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(8);
    Handle own;
    own.write_insert(ctx, ctx.my_location(), 0);
    Handle other;
    other.read_insert(ctx, ctx.location((ctx.id() + 1) % 2), 1);
    ctx.schedule();
    { Section s(own); }
    other.acquire();
    EXPECT_THROW(other.write_map(), std::logic_error);
    EXPECT_NO_THROW(other.read_map());
    other.release();
  });
  prog.run();
}

// ----------------------------------------------------------- affinity ----

TEST(ProgramAffinity, AutomaticModeComputesPlacementAndBinds) {
  ProgramOptions o;
  o.affinity = AffinityMode::On;
  o.acquire_timeout_ms = 20000;
  o.control_threads = 2;
  Program prog(4, o);

  std::array<int, 4> cpu_after_schedule{};
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(1024);
    Handle2 own;
    Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 4), 1);
    ctx.schedule();
    cpu_after_schedule[ctx.id()] = orwl::topo::current_cpu();
    for (int it = 0; it < 3; ++it) {
      { Section s(own); }
      { Section s(next); }
    }
  });
  prog.run();

  EXPECT_TRUE(prog.stats().affinity_applied);
  const auto& pl = prog.placement();
  ASSERT_EQ(pl.compute_pu.size(), 4u);
  EXPECT_TRUE(pl.valid_for(prog.topology()));
  // Each task thread must actually have been running on its assigned PU
  // right after schedule (host topology, so binding is real).
  for (std::size_t t = 0; t < 4; ++t) {
    if (pl.compute_pu[t] >= 0) {
      EXPECT_EQ(cpu_after_schedule[t], pl.compute_pu[t]) << "task " << t;
    }
  }
  EXPECT_GT(prog.stats().compute_threads_bound, 0u);
}

TEST(ProgramAffinity, OffModeComputesNothing) {
  Program prog(2, quiet_options());
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(8);
    Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    { Section s(h); }
  });
  prog.run();
  EXPECT_FALSE(prog.stats().affinity_applied);
  EXPECT_THROW(prog.placement(), std::logic_error);
}

TEST(ProgramAffinity, EnvVarSwitchesAutomaticMode) {
  orwl::support::ScopedEnv guard("ORWL_AFFINITY", "1");
  ProgramOptions o;
  o.affinity = AffinityMode::FromEnv;
  o.acquire_timeout_ms = 20000;
  Program prog(2, o);
  EXPECT_TRUE(prog.affinity_enabled());
  guard.set(nullptr);
  Program prog2(2, o);
  EXPECT_FALSE(prog2.affinity_enabled());
}

TEST(ProgramAffinity, AdvancedApiRecomputesDynamically) {
  // The Sec. IV-B advanced mode: call the three functions explicitly
  // after the connection between tasks changed.
  ProgramOptions o = quiet_options();
  o.control_threads = 1;
  Program prog(4, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(4096);
    Handle2 own;
    Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 4), 1);
    ctx.schedule();
    if (ctx.id() == 0) {
      ctx.program().dependency_get();
      ctx.program().affinity_compute();
      ctx.program().affinity_set();
    }
    { Section s(own); }
    { Section s(next); }
  });
  prog.run();
  EXPECT_EQ(prog.comm_matrix().order(), 4u);
  EXPECT_TRUE(prog.placement().valid_for(prog.topology()));
}

TEST(ProgramAffinity, SyntheticTopologyWithoutBinding) {
  // Placement computed for a machine larger than the host: binding is
  // disabled but the placement must cover all tasks on the synthetic
  // topology.
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o;
  o.affinity = AffinityMode::On;
  o.topology = &synthetic;
  o.bind_threads = false;
  o.acquire_timeout_ms = 20000;
  Program prog(16, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(256);
    Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    { Section s(h); }
  });
  prog.run();
  EXPECT_TRUE(prog.placement().valid_for(synthetic));
  EXPECT_EQ(prog.stats().compute_threads_bound, 0u);
}

// --------------------------------------------------------------- fifo ----

TEST(Fifo, ProducerConsumerTransfersInOrder) {
  constexpr int kItems = 40;
  std::vector<int> received;

  ProgramOptions o = quiet_options();
  o.locations_per_task = 2;  // fifo depth 2
  Program prog(2, o);
  prog.set_task_body(0, [&](TaskContext& ctx) {
    FifoProducer out;
    out.link(ctx, 0, 0, 2, sizeof(int));
    ctx.schedule();
    for (int i = 0; i < kItems; ++i) {
      auto buf = out.begin_push();
      *reinterpret_cast<int*>(buf.data()) = i * i;
      out.end_push();
    }
    EXPECT_EQ(out.pushed(), static_cast<std::uint64_t>(kItems));
  });
  prog.set_task_body(1, [&](TaskContext& ctx) {
    FifoConsumer in;
    in.link(ctx, 0, 0, 2);
    ctx.schedule();
    for (int i = 0; i < kItems; ++i) {
      auto buf = in.begin_pop();
      received.push_back(*reinterpret_cast<const int*>(buf.data()));
      in.end_pop();
    }
  });
  prog.run();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i * i);
}

TEST(Fifo, RejectsBadUsage) {
  FifoProducer p;
  EXPECT_THROW(p.begin_push(), std::logic_error);
  FifoConsumer c;
  EXPECT_THROW(c.begin_pop(), std::logic_error);
}

// -------------------------------------------------------------- split ----

TEST(Split, RangesTileTheTotal) {
  constexpr std::size_t kTotal = 103;
  constexpr std::size_t kParts = 8;
  std::size_t covered = 0;
  std::size_t expected_next = 0;
  for (std::size_t i = 0; i < kParts; ++i) {
    const auto r = split_range(kTotal, kParts, i);
    EXPECT_EQ(r.begin, expected_next);
    covered += r.size();
    expected_next = r.end;
  }
  EXPECT_EQ(covered, kTotal);
  EXPECT_THROW(split_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(split_range(10, 4, 4), std::invalid_argument);
}

TEST(Split, ReaderSharingScatterGather) {
  // The orwl_split idiom: 4 workers read slices of a parent location
  // concurrently, write partial sums to their own locations; the merge
  // task collects. Values must add up exactly.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kElems = 1000;
  long total = 0;

  Program prog(kWorkers + 2, quiet_options());  // 0=source, 1..4=work, 5=merge
  prog.set_task_body(0, [&](TaskContext& ctx) {
    ctx.scale(kElems * sizeof(int));
    Handle h;
    h.write_insert(ctx, ctx.my_location(), 0);
    ctx.schedule();
    Section sec(h);
    int* v = sec.as<int>();
    std::iota(v, v + kElems, 1);
  });
  for (std::size_t w = 0; w < kWorkers; ++w) {
    prog.set_task_body(1 + w, [&, w](TaskContext& ctx) {
      ctx.scale(sizeof(long));
      Handle src;
      Handle out;
      src.read_insert(ctx, ctx.location(0), 1);  // after the source's write
      out.write_insert(ctx, ctx.my_location(), 0);
      ctx.schedule();
      const auto range = split_range(kElems, kWorkers, w);
      long sum = 0;
      {
        Section sec(src);
        const int* v = sec.as_const<int>();
        for (std::size_t i = range.begin; i < range.end; ++i) sum += v[i];
      }
      Section sec(out);
      *sec.as<long>() = sum;
    });
  }
  prog.set_task_body(kWorkers + 1, [&](TaskContext& ctx) {
    std::array<std::unique_ptr<Handle>, kWorkers> parts;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      parts[w] = std::make_unique<Handle>();
      parts[w]->read_insert(ctx, ctx.location(1 + w), 1);
    }
    ctx.schedule();
    long sum = 0;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      Section sec(*parts[w]);
      sum += *sec.as_const<long>();
    }
    total = sum;
  });
  prog.run();
  EXPECT_EQ(total, static_cast<long>(kElems * (kElems + 1) / 2));
}

// ------------------------------------------------------------- stats -----

TEST(Program, ControlEventsAreCounted) {
  ProgramOptions o = quiet_options();
  o.control_threads = 2;
  Program prog(4, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(64);
    Handle2 own;
    Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 4), 1);
    ctx.schedule();
    for (int i = 0; i < 20; ++i) {
      { Section s(own); }
      { Section s(next); }
    }
  });
  prog.run();
  EXPECT_GT(prog.stats().control_events, 0u)
      << "control threads performed no hand-offs";
}

// ----------------------------------------------------- control sharding ----

TEST(ProgramShards, ShardCountFollowsTopologyClampedToThreads) {
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o = quiet_options();
  o.topology = &synthetic;
  o.bind_threads = false;
  o.control_threads = 8;
  Program p(4, o);
  // 20 NUMA nodes recommended, but only 8 control threads to serve them.
  EXPECT_EQ(p.num_control_shards(), 8u);
  EXPECT_EQ(p.stats().control_shards, 8u);

  o.control_threads = 20;
  Program q(4, o);
  EXPECT_EQ(q.num_control_shards(), 20u);
  EXPECT_EQ(q.shard_map().num_shards, 20u);
  EXPECT_EQ(q.shard_map().shard_of(0), 0);
  EXPECT_EQ(q.shard_map().shard_of(159), 19);
}

TEST(ProgramShards, EnvOverrideControlShards) {
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o = quiet_options();
  o.topology = &synthetic;
  o.bind_threads = false;
  o.control_threads = 8;
  orwl::support::ScopedEnv guard("ORWL_CONTROL_SHARDS", "2");
  Program p(4, o);
  EXPECT_EQ(p.num_control_shards(), 2u);
  guard.set("64");  // clamped to the thread count
  Program q(4, o);
  EXPECT_EQ(q.num_control_shards(), 8u);
}

TEST(ProgramShards, ExplicitOptionBeatsEnvAndTopology) {
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o = quiet_options();
  o.topology = &synthetic;
  o.bind_threads = false;
  o.control_threads = 8;
  o.control_shards = 3;
  orwl::support::ScopedEnv guard("ORWL_CONTROL_SHARDS", "5");
  Program p(4, o);
  EXPECT_EQ(p.num_control_shards(), 3u);
}

TEST(ProgramShards, ShardedRunCompletesAndCountsEvents) {
  // End-to-end: ring of tasks on the smp20e7 fixture with a sharded
  // plane; placement routes every queue to the shard of its owner's PU
  // and the run must complete with hand-offs spread over the shards.
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o;
  o.affinity = AffinityMode::On;
  o.topology = &synthetic;
  o.bind_threads = false;
  o.acquire_timeout_ms = 20000;
  o.control_threads = 8;
  Program prog(8, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(128);
    Handle2 own;
    Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % 8), 1);
    ctx.schedule();
    for (int i = 0; i < 10; ++i) {
      { Section s(own); }
      { Section s(next); }
    }
  });
  prog.run();
  EXPECT_EQ(prog.num_control_shards(), 8u);
  EXPECT_GT(prog.stats().control_events + prog.stats().control_inline_grants,
            0u);
  // Queues were re-routed from the placement: every location's shard must
  // match its owner's compute PU under the program's shard map.
  const auto& pl = prog.placement();
  for (std::size_t t = 0; t < 8; ++t) {
    const int pu = pl.compute_pu[t];
    if (pu < 0) continue;
    const int want = prog.shard_map().shard_of(pu);
    if (want < 0) continue;
    EXPECT_EQ(prog.location(t).queue().control_shard(),
              static_cast<std::size_t>(want))
        << "task " << t;
  }
}

TEST(ProgramShards, LiveInsertRoutesToOwnersShardImmediately) {
  // Dynamic mode: a location first touched *after* schedule() must be
  // routed to its owner's placement shard at insert time, not left on the
  // constructor's owner-round-robin default until the next
  // affinity_compute().
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o;
  o.affinity = AffinityMode::On;
  o.topology = &synthetic;
  o.bind_threads = false;
  o.acquire_timeout_ms = 20000;
  o.control_threads = 8;
  o.locations_per_task = 2;  // slot 1 is only ever live-inserted
  constexpr std::size_t kTasks = 8;
  Program prog(kTasks, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(128, 0);
    Handle2 own;
    Handle2 next;
    own.write_insert(ctx, ctx.my_location(0), 0);
    next.read_insert(ctx, ctx.location((ctx.id() + 1) % kTasks, 0), 1);
    ctx.schedule();
    // Live insert on the never-before-used slot-1 location.
    Handle late;
    late.write_insert(ctx, ctx.my_location(1), 0);
    { Section s(late); }
    for (int i = 0; i < 3; ++i) {
      { Section s(own); }
      { Section s(next); }
    }
  });
  prog.run();

  const auto& pl = prog.placement();
  const std::size_t nshards = prog.num_control_shards();
  bool any_differs_from_default = false;
  for (std::size_t t = 0; t < kTasks; ++t) {
    const int pu = t < pl.compute_pu.size() ? pl.compute_pu[t] : -1;
    std::size_t want = t % nshards;
    if (pu >= 0 && prog.shard_map().shard_of(pu) >= 0) {
      want = static_cast<std::size_t>(prog.shard_map().shard_of(pu));
    }
    EXPECT_EQ(prog.location(t, 1).queue().control_shard(), want)
        << "task " << t;
    if (want != t % nshards) any_differs_from_default = true;
  }
  // The check above is only meaningful if the placement actually moves
  // some queue off its round-robin default shard.
  EXPECT_TRUE(any_differs_from_default)
      << "placement matched round-robin for every task; test is vacuous";
}

TEST(ProgramShards, LiveInsertOverwritesStaleRouting) {
  // Regression for the insert-time routing itself: even when a queue's
  // shard was left stale (here simulated directly), the first live insert
  // must re-route it under the placement state of that moment — before
  // this fix it kept whatever shard it had until the next
  // affinity_compute().
  const auto synthetic = orwl::topo::make_smp20e7();
  ProgramOptions o = quiet_options();
  o.topology = &synthetic;
  o.bind_threads = false;
  o.control_threads = 8;
  o.locations_per_task = 2;
  Program prog(4, o);
  prog.set_task_body([&](TaskContext& ctx) {
    ctx.scale(64, 0);
    Handle h;
    h.write_insert(ctx, ctx.my_location(0), 0);
    ctx.schedule();
    RequestQueue& late_queue = ctx.my_location(1).queue();
    late_queue.set_control_shard(ctx.id() + 5);  // stale / wrong shard
    Handle late;
    late.write_insert(ctx, ctx.my_location(1), 0);
    // No placement exists (affinity off), so the insert routes back to
    // the owner round-robin shard.
    EXPECT_EQ(late_queue.control_shard(),
              ctx.id() % ctx.program().num_control_shards());
    { Section s(late); }
    { Section s(h); }
  });
  prog.run();
}

}  // namespace
