#include <gtest/gtest.h>

#include "topo/machines.hpp"
#include "topo/topology.hpp"

namespace {

using namespace orwl::topo;

// ------------------------------------------------------------- build ----

TEST(TopologyBuild, FlatMachine) {
  const Topology t = make_flat(4);
  EXPECT_EQ(t.num_pus(), 4u);
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_FALSE(t.has_hyperthreads());
  EXPECT_TRUE(t.is_symmetric());
  EXPECT_EQ(t.depth(), 3);  // Machine, Core, PU
}

TEST(TopologyBuild, RejectsEmptySpec) {
  EXPECT_THROW(Topology::build({}), std::invalid_argument);
}

TEST(TopologyBuild, RejectsMissingPuLevel) {
  EXPECT_THROW(Topology::build({{ObjType::Core, 4}}), std::invalid_argument);
}

TEST(TopologyBuild, RejectsNonPositiveArity) {
  EXPECT_THROW(Topology::build({{ObjType::Core, 0}, {ObjType::PU, 1}}),
               std::invalid_argument);
}

TEST(TopologyBuild, RejectsOutOfOrderLevels) {
  EXPECT_THROW(
      Topology::build({{ObjType::PU, 2}, {ObjType::Core, 1}}),
      std::invalid_argument);
  EXPECT_THROW(
      Topology::build(
          {{ObjType::Core, 2}, {ObjType::Core, 2}, {ObjType::PU, 1}}),
      std::invalid_argument);
}

// ------------------------------------------------------------ presets ----

TEST(Machines, Smp12e5MatchesTableI) {
  const Topology t = make_smp12e5();
  EXPECT_EQ(t.num_cores(), 96u);   // 12 NUMA x 8 cores
  EXPECT_EQ(t.num_pus(), 192u);    // hyperthreaded
  EXPECT_TRUE(t.has_hyperthreads());
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::NumaNode)).size(), 12u);
  EXPECT_EQ(t.cache_size(ObjType::L3), 20480u * 1024);
  EXPECT_EQ(t.cache_size(ObjType::L2), 256u * 1024);
  EXPECT_EQ(t.cache_size(ObjType::L1), 32u * 1024);
}

TEST(Machines, Smp20e7MatchesTableI) {
  const Topology t = make_smp20e7();
  EXPECT_EQ(t.num_cores(), 160u);  // 20 NUMA x 8 cores
  EXPECT_EQ(t.num_pus(), 160u);    // no hyperthreading
  EXPECT_FALSE(t.has_hyperthreads());
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::NumaNode)).size(), 20u);
  EXPECT_EQ(t.cache_size(ObjType::L3), 24576u * 1024);
  EXPECT_EQ(t.cache_size(ObjType::L2), 32u * 1024);
}

TEST(Machines, Fig2MachineHas32CoresOn4Sockets) {
  const Topology t = make_fig2_machine();
  EXPECT_EQ(t.num_cores(), 32u);
  EXPECT_EQ(t.num_pus(), 32u);
  const int pkg_depth = t.depth_of_type(ObjType::Package);
  ASSERT_GE(pkg_depth, 0);
  EXPECT_EQ(t.at_depth(pkg_depth).size(), 4u);
  EXPECT_EQ(t.at_depth(pkg_depth)[0]->name, "Socket 0");
  EXPECT_EQ(t.at_depth(t.depth_of_type(ObjType::Group))[1]->name, "Blade 1");
}

// ------------------------------------------------------------ queries ----

TEST(TopologyQueries, PuLogicalOrderAndOsIndex) {
  const Topology t = make_numa(2, 2, 2);
  ASSERT_EQ(t.num_pus(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.pu_at(i)->logical_index, i);
    EXPECT_EQ(t.pu_at(i)->os_index, i);  // defaults to logical order
    EXPECT_EQ(t.pu_by_os_index(i), t.pu_at(i));
  }
  EXPECT_EQ(t.pu_by_os_index(99), nullptr);
}

TEST(TopologyQueries, SharingDepthAndDistance) {
  // numa(2,2,2): Machine(0) > NumaNode(1) > L3(2) > Core(3) > PU(4).
  const Topology t = make_numa(2, 2, 2);
  // Same core: PUs 0,1.
  EXPECT_EQ(t.sharing_depth(0, 1), 3);
  EXPECT_EQ(t.distance(0, 1), 2);
  // Same L3 / NUMA, different core: PUs 0,2.
  EXPECT_EQ(t.sharing_depth(0, 2), 2);
  EXPECT_EQ(t.distance(0, 2), 4);
  // Different NUMA: PUs 0,4.
  EXPECT_EQ(t.sharing_depth(0, 4), 0);
  EXPECT_EQ(t.distance(0, 4), 8);
  // Same PU.
  EXPECT_EQ(t.sharing_depth(3, 3), 4);
  EXPECT_EQ(t.distance(3, 3), 0);
}

TEST(TopologyQueries, CommonAncestorTypes) {
  const Topology t = make_numa(2, 2, 2);
  const Object* a = t.pu_at(0);
  const Object* b = t.pu_at(1);
  EXPECT_EQ(t.common_ancestor(*a, *b)->type, ObjType::Core);
  const Object* c = t.pu_at(4);
  EXPECT_EQ(t.common_ancestor(*a, *c)->type, ObjType::Machine);
}

TEST(TopologyQueries, AncestorOfType) {
  const Topology t = make_numa(2, 2, 2);
  const Object* pu = t.pu_at(5);
  const Object* numa = pu->ancestor_of_type(ObjType::NumaNode);
  ASSERT_NE(numa, nullptr);
  EXPECT_EQ(numa->logical_index, 1);
  EXPECT_EQ(pu->ancestor_of_type(ObjType::Package), nullptr);
}

TEST(TopologyQueries, PuRangesCoverSubtrees) {
  const Topology t = make_smp12e5();
  const auto numa = t.at_depth(t.depth_of_type(ObjType::NumaNode));
  ASSERT_EQ(numa.size(), 12u);
  for (std::size_t i = 0; i < numa.size(); ++i) {
    EXPECT_EQ(numa[i]->first_pu, static_cast<int>(i) * 16);
    EXPECT_EQ(numa[i]->last_pu, static_cast<int>(i) * 16 + 15);
    EXPECT_EQ(numa[i]->pu_count(), 16);
  }
}

TEST(TopologyQueries, ArityAt) {
  const Topology t = make_numa(2, 4, 2);
  EXPECT_EQ(t.arity_at(0), 2);  // machine -> numa
  EXPECT_EQ(t.arity_at(1), 1);  // numa -> l3
  EXPECT_EQ(t.arity_at(2), 4);  // l3 -> cores
  EXPECT_EQ(t.arity_at(3), 2);  // core -> pus
}

TEST(TopologyQueries, AtDepthBoundsChecked) {
  const Topology t = make_flat(2);
  EXPECT_THROW(t.at_depth(-1), std::out_of_range);
  EXPECT_THROW(t.at_depth(t.depth()), std::out_of_range);
  EXPECT_THROW(t.pu_at(2), std::out_of_range);
}

TEST(TopologyQueries, DepthOfMissingTypeIsMinusOne) {
  const Topology t = make_flat(2);
  EXPECT_EQ(t.depth_of_type(ObjType::NumaNode), -1);
  EXPECT_EQ(t.cache_size(ObjType::L3), 0u);
}

// -------------------------------------------------------------- clone ----

// ----------------------------------------------------------- cluster ----

TEST(Cluster, GraftsHostsUnderOneRootWithDisjointPuRanges) {
  std::vector<Topology> hosts;
  hosts.push_back(make_numa(2, 2, 1));
  hosts.push_back(make_numa(2, 2, 1));
  const Topology c = make_cluster(hosts);
  // 2 hosts x 2 nodes x 2 cores x 1 PU.
  ASSERT_EQ(c.num_pus(), 8u);
  // Host subtrees are Groups directly below the Machine root.
  ASSERT_EQ(c.root().children.size(), 2u);
  for (const auto& host : c.root().children) {
    EXPECT_EQ(host->type, ObjType::Group);
  }
  EXPECT_EQ(c.root().children[0]->name, "host 0");
  EXPECT_EQ(c.root().children[1]->name, "host 1");
  // PU os indices renumbered into disjoint, contiguous per-host ranges.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c.pu_at(i)->os_index, i);
  }
}

TEST(Cluster, InterHostDistanceDominatesIntraHost) {
  std::vector<Topology> hosts;
  hosts.push_back(make_numa(2, 2, 1));
  hosts.push_back(make_numa(2, 2, 1));
  const Topology c = make_cluster(hosts);
  // Worst intra-host pair: PUs 0 and 3 share only the host Group.
  const int intra = c.distance(0, 3);
  // Any cross-host pair shares only the cluster root.
  const int inter = c.distance(0, 4);
  EXPECT_GT(inter, intra);
  // Every cross-host pair is equidistant (they all cross the root).
  EXPECT_EQ(c.distance(3, 4), inter);
  EXPECT_EQ(c.distance(0, 7), inter);
}

TEST(Cluster, RejectsEmptyHostList) {
  EXPECT_THROW(make_cluster({}), std::invalid_argument);
}

TEST(Cluster, NamedSpecBuildsRecursively) {
  const auto c = make_named("cluster:3:numa:2:2:1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->num_pus(), 12u);
  EXPECT_EQ(c->root().children.size(), 3u);
  // The base spec must itself resolve.
  EXPECT_FALSE(make_named("cluster:2:bogus").has_value());
  EXPECT_FALSE(make_named("cluster:0:flat:4").has_value());
  EXPECT_FALSE(make_named("cluster:2").has_value());
  // Flat hosts work too.
  const auto f = make_named("cluster:2:flat:4");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->num_pus(), 8u);
}

TEST(TopologyClone, DeepCopyIsIndependentAndEquivalent) {
  const Topology t = make_smp20e7();
  const Topology c = t.clone();
  EXPECT_EQ(c.num_pus(), t.num_pus());
  EXPECT_EQ(c.summary(), t.summary());
  EXPECT_NE(&c.root(), &t.root());
  EXPECT_EQ(c.sharing_depth(0, 9), t.sharing_depth(0, 9));
}

TEST(TopologyClone, EmptyCloneIsEmpty) {
  const Topology t;
  EXPECT_TRUE(t.clone().empty());
}

// ------------------------------------------------------------- render ----

TEST(TopologyRender, SummaryMentionsCounts) {
  const Topology t = make_smp12e5();
  const std::string s = t.summary();
  EXPECT_NE(s.find("96 cores"), std::string::npos);
  EXPECT_NE(s.find("192 PUs"), std::string::npos);
  EXPECT_NE(s.find("SMP12E5"), std::string::npos);
}

TEST(TopologyRender, RenderCollapsesIdenticalSubtrees) {
  const Topology t = make_smp20e7();
  const std::string s = t.render();
  EXPECT_NE(s.find("x20 identical"), std::string::npos);
  // The full tree would print hundreds of lines; collapsed output is short.
  EXPECT_LT(std::count(s.begin(), s.end(), '\n'), 60);
}

TEST(TopologyRender, RenderShowsCacheSizes) {
  const Topology t = make_numa(1, 2, 1, 4 * 1024 * 1024);
  const std::string s = t.render();
  EXPECT_NE(s.find("4096 KiB"), std::string::npos);
}

// ---------------------------------------------------- parameterized -----

struct MachineCase {
  const char* name;
  Topology (*factory)();
  std::size_t cores;
  std::size_t pus;
  bool ht;
};

class MachinePresetTest : public ::testing::TestWithParam<MachineCase> {};

TEST_P(MachinePresetTest, StructureInvariants) {
  const auto& param = GetParam();
  const Topology t = param.factory();
  EXPECT_EQ(t.num_cores(), param.cores);
  EXPECT_EQ(t.num_pus(), param.pus);
  EXPECT_EQ(t.has_hyperthreads(), param.ht);
  EXPECT_TRUE(t.is_symmetric());
  // PU ranges must tile [0, num_pus).
  int next = 0;
  for (const Object* pu : t.pus()) {
    EXPECT_EQ(pu->logical_index, next++);
    EXPECT_TRUE(pu->is_leaf());
  }
  // Every core's PUs are consecutive.
  for (const Object* core : t.cores()) {
    EXPECT_EQ(core->pu_count(),
              static_cast<int>(t.num_pus() / t.num_cores()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, MachinePresetTest,
    ::testing::Values(
        MachineCase{"smp12e5", &make_smp12e5, 96, 192, true},
        MachineCase{"smp20e7", &make_smp20e7, 160, 160, false},
        MachineCase{"fig2", &make_fig2_machine, 32, 32, false}),
    [](const ::testing::TestParamInfo<MachineCase>& info) {
      return info.param.name;
    });

}  // namespace
