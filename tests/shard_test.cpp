#include <gtest/gtest.h>

#include "topo/machines.hpp"
#include "topo/shard.hpp"

namespace {

using namespace orwl::topo;

// ---------------------------------------------- recommended_shard_count ----

TEST(ShardCount, PaperMachinesGetOneShardPerNumaNode) {
  EXPECT_EQ(recommended_shard_count(make_smp12e5()), 12u);
  EXPECT_EQ(recommended_shard_count(make_smp20e7()), 20u);
}

TEST(ShardCount, Fig2FallsBackToPackages) {
  // No NUMA level on the Fig. 2 machine; the four sockets are the
  // locality domains.
  EXPECT_EQ(recommended_shard_count(make_fig2_machine()), 4u);
}

TEST(ShardCount, FlatMachineHasNoLocalityDomains) {
  EXPECT_EQ(recommended_shard_count(make_flat(8)), 1u);
}

TEST(ShardCount, SyntheticNumaCountsNodes) {
  EXPECT_EQ(recommended_shard_count(make_numa(2, 4, 1)), 2u);
}

TEST(ShardCount, EmptyTopologyIsSingleShard) {
  EXPECT_EQ(recommended_shard_count(Topology{}), 1u);
}

// ------------------------------------------------------- make_shard_map ----

TEST(ShardMap, Smp20e7OneShardPerNode) {
  const Topology t = make_smp20e7();
  const ShardMap m = make_shard_map(t, 20);
  ASSERT_EQ(m.num_shards, 20u);
  // 8 cores x 1 PU per node, os indices laid out node-major.
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(7), 0);
  EXPECT_EQ(m.shard_of(8), 1);
  EXPECT_EQ(m.shard_of(152), 19);
  EXPECT_EQ(m.shard_of(159), 19);
}

TEST(ShardMap, FewerShardsGroupContiguousNodes) {
  const Topology t = make_smp20e7();
  const ShardMap m = make_shard_map(t, 4);
  ASSERT_EQ(m.num_shards, 4u);
  // 20 nodes over 4 shards: node n -> shard n*4/20 (5 nodes per shard).
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(39), 0);    // node 4, last PU
  EXPECT_EQ(m.shard_of(40), 1);    // node 5, first PU
  EXPECT_EQ(m.shard_of(159), 3);
  // Shards are contiguous in PU order: never decreasing.
  int prev = 0;
  for (int pu = 0; pu < 160; ++pu) {
    const int s = m.shard_of(pu);
    ASSERT_GE(s, prev) << "PU " << pu;
    prev = s;
  }
}

TEST(ShardMap, Fig2FourShardsAreTheSockets) {
  const Topology t = make_fig2_machine();
  const ShardMap m = make_shard_map(t, 4);
  ASSERT_EQ(m.num_shards, 4u);
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(7), 0);
  EXPECT_EQ(m.shard_of(8), 1);
  EXPECT_EQ(m.shard_of(16), 2);
  EXPECT_EQ(m.shard_of(24), 3);
  EXPECT_EQ(m.shard_of(31), 3);
}

TEST(ShardMap, Smp12e5HyperthreadSiblingsShareAShard) {
  const Topology t = make_smp12e5();
  const ShardMap m = make_shard_map(t, 12);
  // Compute PU and its hyperthread sibling must route to the same shard.
  for (int pu = 0; pu < 192; pu += 2) {
    EXPECT_EQ(m.shard_of(pu), m.shard_of(pu + 1)) << "PU " << pu;
  }
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(191), 11);
}

TEST(ShardMap, ClampsShardCountToPuCount) {
  const Topology t = make_flat(4);
  const ShardMap m = make_shard_map(t, 16);
  EXPECT_EQ(m.num_shards, 4u);
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(3), 3);
}

TEST(ShardMap, SingleShardMapsEveryPuToZero) {
  const Topology t = make_smp12e5();
  const ShardMap m = make_shard_map(t, 1);
  ASSERT_EQ(m.num_shards, 1u);
  for (int pu = 0; pu < 192; ++pu) EXPECT_EQ(m.shard_of(pu), 0);
}

TEST(ShardMap, UnknownOsIndexYieldsMinusOne) {
  const ShardMap m = make_shard_map(make_flat(4), 2);
  EXPECT_EQ(m.shard_of(-1), -1);
  EXPECT_EQ(m.shard_of(99), -1);
}

TEST(ShardMap, DefaultConstructedMapKnowsNothing) {
  const ShardMap m;
  EXPECT_EQ(m.num_shards, 1u);
  EXPECT_EQ(m.shard_of(0), -1);
}

}  // namespace
