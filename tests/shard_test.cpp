#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.hpp"
#include "topo/machines.hpp"
#include "topo/shard.hpp"

namespace {

using namespace orwl::topo;

/// The three named fixtures every partition property is checked on.
std::vector<std::string> named_fixtures() {
  return {"smp20e7", "smp12e5", "fig2"};
}

// ---------------------------------------------- recommended_shard_count ----

TEST(ShardCount, PaperMachinesGetOneShardPerNumaNode) {
  EXPECT_EQ(recommended_shard_count(make_smp12e5()), 12u);
  EXPECT_EQ(recommended_shard_count(make_smp20e7()), 20u);
}

TEST(ShardCount, Fig2FallsBackToPackages) {
  // No NUMA level on the Fig. 2 machine; the four sockets are the
  // locality domains.
  EXPECT_EQ(recommended_shard_count(make_fig2_machine()), 4u);
}

TEST(ShardCount, FlatMachineHasNoLocalityDomains) {
  EXPECT_EQ(recommended_shard_count(make_flat(8)), 1u);
}

TEST(ShardCount, SyntheticNumaCountsNodes) {
  EXPECT_EQ(recommended_shard_count(make_numa(2, 4, 1)), 2u);
}

TEST(ShardCount, EmptyTopologyIsSingleShard) {
  EXPECT_EQ(recommended_shard_count(Topology{}), 1u);
}

// ------------------------------------------------------- make_shard_map ----

TEST(ShardMap, Smp20e7OneShardPerNode) {
  const Topology t = make_smp20e7();
  const ShardMap m = make_shard_map(t, 20);
  ASSERT_EQ(m.num_shards, 20u);
  // 8 cores x 1 PU per node, os indices laid out node-major.
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(7), 0);
  EXPECT_EQ(m.shard_of(8), 1);
  EXPECT_EQ(m.shard_of(152), 19);
  EXPECT_EQ(m.shard_of(159), 19);
}

TEST(ShardMap, FewerShardsGroupContiguousNodes) {
  const Topology t = make_smp20e7();
  const ShardMap m = make_shard_map(t, 4);
  ASSERT_EQ(m.num_shards, 4u);
  // 20 nodes over 4 shards: node n -> shard n*4/20 (5 nodes per shard).
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(39), 0);    // node 4, last PU
  EXPECT_EQ(m.shard_of(40), 1);    // node 5, first PU
  EXPECT_EQ(m.shard_of(159), 3);
  // Shards are contiguous in PU order: never decreasing.
  int prev = 0;
  for (int pu = 0; pu < 160; ++pu) {
    const int s = m.shard_of(pu);
    ASSERT_GE(s, prev) << "PU " << pu;
    prev = s;
  }
}

TEST(ShardMap, Fig2FourShardsAreTheSockets) {
  const Topology t = make_fig2_machine();
  const ShardMap m = make_shard_map(t, 4);
  ASSERT_EQ(m.num_shards, 4u);
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(7), 0);
  EXPECT_EQ(m.shard_of(8), 1);
  EXPECT_EQ(m.shard_of(16), 2);
  EXPECT_EQ(m.shard_of(24), 3);
  EXPECT_EQ(m.shard_of(31), 3);
}

TEST(ShardMap, Smp12e5HyperthreadSiblingsShareAShard) {
  const Topology t = make_smp12e5();
  const ShardMap m = make_shard_map(t, 12);
  // Compute PU and its hyperthread sibling must route to the same shard.
  for (int pu = 0; pu < 192; pu += 2) {
    EXPECT_EQ(m.shard_of(pu), m.shard_of(pu + 1)) << "PU " << pu;
  }
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(191), 11);
}

TEST(ShardMap, ClampsShardCountToPuCount) {
  const Topology t = make_flat(4);
  const ShardMap m = make_shard_map(t, 16);
  EXPECT_EQ(m.num_shards, 4u);
  EXPECT_EQ(m.shard_of(0), 0);
  EXPECT_EQ(m.shard_of(3), 3);
}

TEST(ShardMap, SingleShardMapsEveryPuToZero) {
  const Topology t = make_smp12e5();
  const ShardMap m = make_shard_map(t, 1);
  ASSERT_EQ(m.num_shards, 1u);
  for (int pu = 0; pu < 192; ++pu) EXPECT_EQ(m.shard_of(pu), 0);
}

TEST(ShardMap, UnknownOsIndexYieldsMinusOne) {
  const ShardMap m = make_shard_map(make_flat(4), 2);
  EXPECT_EQ(m.shard_of(-1), -1);
  EXPECT_EQ(m.shard_of(99), -1);
}

TEST(ShardMap, DefaultConstructedMapKnowsNothing) {
  const ShardMap m;
  EXPECT_EQ(m.num_shards, 1u);
  EXPECT_EQ(m.shard_of(0), -1);
}

// --------------------------- partition invariants (property cases) ----
//
// The three invariants every ShardMap partition and every tenant
// carve-out must satisfy, checked on all named topology fixtures:
//   1. disjoint    — no PU belongs to two shards / two carve-outs;
//   2. contiguous-subtree — each piece is a union of consecutive whole
//      subtrees at one depth (never a fragment of a domain);
//   3. covers-requested-width — a piece is at least as wide as asked.

/// Every PU of `objs[first..first+count)` and nothing else.
CpuSet pus_of_run(const Topology& t, int depth, std::size_t first,
                  std::size_t count) {
  CpuSet set;
  const auto objs = t.at_depth(depth);
  for (std::size_t i = first; i < first + count; ++i) {
    for (int pu = objs[i]->first_pu; pu <= objs[i]->last_pu; ++pu) {
      set.set(t.pu_at(pu)->os_index);
    }
  }
  return set;
}

TEST(ShardPartition, EveryPuOfEveryFixtureLandsInExactlyOneShard) {
  for (const std::string& spec : named_fixtures()) {
    const Topology t = *make_named(spec);
    for (std::size_t shards : {1u, 2u, 3u, 4u, 7u}) {
      const ShardMap m = make_shard_map(t, shards);
      std::vector<std::size_t> per_shard(m.num_shards, 0);
      for (const Object* pu : t.pus()) {
        const int s = m.shard_of(pu->os_index);
        ASSERT_GE(s, 0) << spec << " shards=" << shards;
        ASSERT_LT(static_cast<std::size_t>(s), m.num_shards);
        ++per_shard[static_cast<std::size_t>(s)];
      }
      // Disjoint + total: counts sum to num_pus and no shard is empty.
      std::size_t total = 0;
      for (std::size_t n : per_shard) {
        EXPECT_GT(n, 0u) << spec << " shards=" << shards;
        total += n;
      }
      EXPECT_EQ(total, t.num_pus()) << spec << " shards=" << shards;
    }
  }
}

TEST(ShardPartition, ShardsAreContiguousInPuOrderOnEveryFixture) {
  for (const std::string& spec : named_fixtures()) {
    const Topology t = *make_named(spec);
    for (std::size_t shards : {2u, 4u, 5u}) {
      const ShardMap m = make_shard_map(t, shards);
      int prev = 0;
      for (const Object* pu : t.pus()) {
        const int s = m.shard_of(pu->os_index);
        ASSERT_GE(s, prev) << spec << " shards=" << shards << " PU "
                           << pu->os_index;
        prev = s;
      }
    }
  }
}

TEST(Carveout, RandomPackingKeepsAllInvariantsOnEveryFixture) {
  for (const std::string& spec : named_fixtures()) {
    const Topology t = *make_named(spec);
    orwl::support::SplitMix64 rng(11);
    CpuSet taken;
    for (int round = 0; round < 64; ++round) {
      const std::size_t free = t.num_pus() - taken.count();
      if (free == 0) break;
      const std::size_t width = 1 + rng.below(t.num_pus() / 3 + 1);
      const auto c = carve_subtrees(t, width, taken);
      if (!c) {
        // Rejection is only legitimate while fragmented/full; width 1
        // must still fit whenever any PU is free.
        const auto one = carve_subtrees(t, 1, taken);
        ASSERT_TRUE(one.has_value()) << spec << " free=" << free;
        taken = taken | one->pus;
        continue;
      }
      // 1. disjoint from everything carved before;
      EXPECT_TRUE((c->pus & taken).empty()) << spec;
      // 3. covers the requested width;
      EXPECT_GE(c->width, width) << spec;
      EXPECT_EQ(c->pus.count(), c->width) << spec;
      // 2. exactly a run of consecutive whole subtrees at c->depth.
      ASSERT_GE(c->depth, 0) << spec;
      ASSERT_LE(c->first_obj + c->num_objs,
                t.at_depth(c->depth).size())
          << spec;
      EXPECT_TRUE(c->pus ==
                  pus_of_run(t, c->depth, c->first_obj, c->num_objs))
          << spec;
      taken = taken | c->pus;
    }
  }
}

TEST(Carveout, PrefersWholeLocalityDomains) {
  // On smp20e7 (8 PUs per NUMA node) an 8-wide request must be served
  // as one whole node, and 16 as two consecutive nodes — never as a
  // run of finer-grained cores straddling domains.
  const Topology t = make_smp20e7();
  const int node_depth = t.depth_of_type(ObjType::NumaNode);
  ASSERT_GE(node_depth, 0);

  const auto one_node = carve_subtrees(t, 8, CpuSet{});
  ASSERT_TRUE(one_node.has_value());
  EXPECT_EQ(one_node->depth, node_depth);
  EXPECT_EQ(one_node->num_objs, 1u);
  EXPECT_EQ(one_node->width, 8u);

  const auto two_nodes = carve_subtrees(t, 16, one_node->pus);
  ASSERT_TRUE(two_nodes.has_value());
  EXPECT_EQ(two_nodes->depth, node_depth);
  EXPECT_EQ(two_nodes->num_objs, 2u);
  EXPECT_TRUE((two_nodes->pus & one_node->pus).empty());
}

TEST(Carveout, RoundsUpToWholeSubtrees) {
  // 9 PUs on smp20e7: whole 8-PU nodes are the coarsest granularity
  // that fits, and no run of them covers exactly 9 — the carve rounds
  // up to two whole nodes (covers-width, never splinters a domain).
  const Topology t = make_smp20e7();
  const auto c = carve_subtrees(t, 9, CpuSet{});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->depth, t.depth_of_type(ObjType::NumaNode));
  EXPECT_EQ(c->num_objs, 2u);
  EXPECT_EQ(c->width, 16u);
}

TEST(Carveout, FragmentationDescendsToFinerSubtrees) {
  // Poke holes in every node of fig2 (32 PUs, 8 per socket): no whole
  // socket is free, so a 4-wide carve must descend to cores.
  const Topology t = make_fig2_machine();
  CpuSet holes;
  for (int pu = 0; pu < 32; pu += 8) holes.set(pu);
  const auto c = carve_subtrees(t, 4, holes);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE((c->pus & holes).empty());
  EXPECT_GE(c->width, 4u);
  EXPECT_GT(c->depth, t.depth_of_type(ObjType::Package));
}

TEST(Carveout, RejectsImpossibleRequests) {
  const Topology t = make_fig2_machine();
  EXPECT_FALSE(carve_subtrees(t, 0, CpuSet{}).has_value());
  EXPECT_FALSE(carve_subtrees(t, 33, CpuSet{}).has_value());
  EXPECT_FALSE(
      carve_subtrees(t, 1, CpuSet::range(0, 31)).has_value());
  EXPECT_FALSE(carve_subtrees(Topology{}, 1, CpuSet{}).has_value());
}

// ----------------------------------------------------- subtopology ----

TEST(Subtopology, PreservesOsIndicesAndStructure) {
  for (const std::string& spec : named_fixtures()) {
    const Topology t = *make_named(spec);
    const auto c = carve_subtrees(t, 8, CpuSet{});
    ASSERT_TRUE(c.has_value()) << spec;
    const Topology sub = subtopology(t, c->pus, spec + "/tenant");
    EXPECT_EQ(sub.num_pus(), c->width) << spec;
    EXPECT_EQ(sub.name(), spec + "/tenant");
    // Same os indices as the carve, in the host's left-to-right order.
    CpuSet seen;
    for (const Object* pu : sub.pus()) seen.set(pu->os_index);
    EXPECT_TRUE(seen == c->pus) << spec;
    // The copy is a well-formed machine the runtime can place on.
    EXPECT_EQ(sub.root().type, ObjType::Machine) << spec;
    EXPECT_EQ(sub.depth(), t.depth()) << spec;
  }
}

TEST(Subtopology, CarvedSubtopologiesStaySymmetric) {
  // Whole-subtree carves keep per-depth arity uniform, so Algorithm 1
  // never hits its asymmetric-host fallback inside a tenant.
  const Topology t = make_smp12e5();
  const auto c = carve_subtrees(t, 32, CpuSet{});
  ASSERT_TRUE(c.has_value());
  const Topology sub = subtopology(t, c->pus, "tenant");
  EXPECT_TRUE(sub.is_symmetric());
  EXPECT_TRUE(sub.has_hyperthreads());
}

TEST(Subtopology, ThrowsWhenNothingSelected) {
  const Topology t = make_fig2_machine();
  EXPECT_THROW(subtopology(t, CpuSet{}, "x"), std::invalid_argument);
  EXPECT_THROW(subtopology(t, CpuSet::single(999), "x"),
               std::invalid_argument);
  EXPECT_THROW(subtopology(Topology{}, CpuSet::single(0), "x"),
               std::invalid_argument);
}

}  // namespace
