#!/usr/bin/env python3
"""Compare two Google-Benchmark JSON files and fail on a large regression.

Usage:
  bench_compare.py --baseline BENCH_micro_orwl_lock.json \
                   --current  BENCH_micro_orwl_lock.ci.json \
                   [--threshold 2.0] [--reference BM_WriteCycleUncontended]

  bench_compare.py --current BENCH_micro_replace.ci.json \
                   --min-recovery 0.9

  bench_compare.py --current BENCH_micro_steal.ci.json \
                   --min-ratio local_steals/remote_steals:1.0:skewed \
                   --min-ratio speedup_vs_off:1.5:skewed

  bench_compare.py --current BENCH_micro_server.ci.json \
                   --max-latency p99_ms:5000

The second form gates the re-placement engine instead of comparing two
files: micro_replace reports a deterministic `recovery` counter (oracle
placement cost / final placement cost, 1.0 = the engine recovered the
oracle placement from runtime measurements alone). The gate fails when
the auto policy's recovery falls below --min-recovery, and warns when
the off policy also clears it — that means the mis-declared scenario
stopped exercising the engine.

The two files usually come from different machines (the committed
baseline is a dev-box snapshot, the current file a CI runner), so raw
times are not comparable. Instead every benchmark's items_per_second is
normalized by the same file's *reference* benchmark (default: the
uncontended write cycle), which cancels the machine's single-thread
speed. A benchmark regresses when its normalized throughput drops by
more than `threshold` x relative to the baseline — the shape of the
hand-off path got worse, not the machine slower.

Exit codes: 0 ok (or comparison impossible -> warn only), 1 regression.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> {"ips": items_per_second | None, "rt": real_time | None}."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return None
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if not name:
            continue
        ips = b.get("items_per_second")
        rt = b.get("real_time")
        recovery = b.get("recovery")
        out[name] = {"ips": float(ips) if ips else None,
                     "rt": float(rt) if rt else None,
                     "recovery": float(recovery)
                     if recovery is not None else None,
                     "raw": b}
    return out


def zero_counter_gate(cur, counters):
    """Fail when any benchmark reports a non-zero value for a gated
    counter (e.g. arena_node_misses: a runtime slab bound to the wrong
    NUMA node). A counter absent from EVERY benchmark also fails — the
    gate must notice when the annotation disappears rather than silently
    passing."""
    rc = 0
    for counter in counters:
        seen = 0
        bad = []
        for name, entry in sorted(cur.items()):
            value = entry["raw"].get(counter)
            if value is None:
                continue
            seen += 1
            if float(value) != 0.0:
                bad.append((name, float(value)))
        if seen == 0:
            print(f"bench_compare: counter '{counter}' missing from every "
                  "benchmark in the current file; failing the zero gate.",
                  file=sys.stderr)
            rc = 1
        elif bad:
            print(f"bench_compare: counter '{counter}' must be 0 but:",
                  file=sys.stderr)
            for name, value in bad:
                print(f"  {name}: {counter} = {value:g}", file=sys.stderr)
            rc = 1
        else:
            print(f"zero gate: {counter} == 0 across {seen} benchmark(s).")
    return rc


def ratio_gate(cur, specs):
    """Gate counter ratios: each spec is NUM[/DEN]:MIN[:FILTER].

    For every benchmark whose name contains FILTER (all benchmarks when
    no filter is given) and that reports the named counter(s), require
    NUM >= MIN * DEN — phrased as a product so a zero denominator
    (e.g. remote_steals == 0) passes a >= 1.0 locality gate instead of
    dividing by zero. Like the zero gate, a spec that matches no
    benchmark fails: the gate must notice when the annotation (or the
    benchmark) disappears rather than silently passing.
    """
    rc = 0
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"bench_compare: bad --min-ratio spec '{spec}' "
                  "(want NUM[/DEN]:MIN[:FILTER]).", file=sys.stderr)
            rc = 1
            continue
        counters, minimum, filt = (parts[0], float(parts[1]),
                                   parts[2] if len(parts) == 3 else "")
        num_name, _, den_name = counters.partition("/")
        seen = 0
        bad = []
        for name, entry in sorted(cur.items()):
            if filt and filt not in name:
                continue
            num = entry["raw"].get(num_name)
            den = entry["raw"].get(den_name) if den_name else 1.0
            if num is None or den is None:
                continue
            seen += 1
            if float(num) < minimum * float(den):
                bad.append((name, float(num), float(den)))
        if seen == 0:
            print(f"bench_compare: --min-ratio '{spec}' matched no "
                  "benchmark in the current file; failing the gate.",
                  file=sys.stderr)
            rc = 1
        elif bad:
            print(f"bench_compare: ratio gate '{spec}' failed:",
                  file=sys.stderr)
            for name, num, den in bad:
                want = (f">= {minimum:g} * {den_name} ({den:g})"
                        if den_name else f">= {minimum:g}")
                print(f"  {name}: {num_name} = {num:g}, required {want}",
                      file=sys.stderr)
            rc = 1
        else:
            print(f"ratio gate: '{spec}' OK across {seen} benchmark(s).")
    return rc


def latency_gate(cur, specs):
    """Gate absolute latency counters: each spec is COUNTER:BOUND[:FILTER].

    For every benchmark whose name contains FILTER (all benchmarks when
    no filter is given) and that reports COUNTER, require
    COUNTER <= BOUND — the SLO gate for the open-loop server bench
    (e.g. p99_ms:5000). Like the other counter gates, a spec that
    matches no benchmark fails: the gate must notice when the
    annotation (or the benchmark) disappears rather than silently
    passing.
    """
    rc = 0
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"bench_compare: bad --max-latency spec '{spec}' "
                  "(want COUNTER:BOUND[:FILTER]).", file=sys.stderr)
            rc = 1
            continue
        counter, bound, filt = (parts[0], float(parts[1]),
                                parts[2] if len(parts) == 3 else "")
        seen = 0
        bad = []
        for name, entry in sorted(cur.items()):
            if filt and filt not in name:
                continue
            value = entry["raw"].get(counter)
            if value is None:
                continue
            seen += 1
            if float(value) > bound:
                bad.append((name, float(value)))
        if seen == 0:
            print(f"bench_compare: --max-latency '{spec}' matched no "
                  "benchmark in the current file; failing the gate.",
                  file=sys.stderr)
            rc = 1
        elif bad:
            print(f"bench_compare: latency gate '{spec}' failed:",
                  file=sys.stderr)
            for name, value in bad:
                print(f"  {name}: {counter} = {value:g} "
                      f"(bound {bound:g})", file=sys.stderr)
            rc = 1
        else:
            print(f"latency gate: '{counter}' <= {bound:g} across "
                  f"{seen} benchmark(s).")
    return rc


def throughput(base_entry, cur_entry):
    """Unit-consistent (baseline, current) throughput pair, or None.

    items_per_second is used only when BOTH files report it for the
    benchmark, 1/real_time only when both report real_time — mixing the
    two across files would compare different units and make the factor
    meaningless.
    """
    if base_entry["ips"] and cur_entry["ips"]:
        return base_entry["ips"], cur_entry["ips"]
    if base_entry["rt"] and cur_entry["rt"]:
        return 1.0 / base_entry["rt"], 1.0 / cur_entry["rt"]
    return None


def recovery_gate(cur, min_recovery, auto_name, off_name):
    """Gate the re-placement engine on micro_replace's recovery counter."""
    auto = cur.get(auto_name)
    if auto is None or auto["recovery"] is None:
        print(f"bench_compare: '{auto_name}' (or its recovery counter) "
              "missing from the current file; failing the recovery gate.",
              file=sys.stderr)
        return 1
    off = cur.get(off_name)
    off_recovery = off["recovery"] if off else None
    print(f"{auto_name}: recovery {auto['recovery']:.3f} "
          f"(required >= {min_recovery})")
    if off_recovery is not None:
        print(f"{off_name}: recovery {off_recovery:.3f}")
        if off_recovery >= min_recovery:
            print("bench_compare: WARNING — the off policy also clears the "
                  "bar; the mis-declared scenario no longer separates the "
                  "policies.", file=sys.stderr)
    if auto["recovery"] < min_recovery:
        print(f"\nbench_compare: auto re-placement recovered only "
              f"{auto['recovery']:.3f} of the oracle placement quality "
              f"(required {min_recovery}).", file=sys.stderr)
        return 1
    print("\nbench_compare: recovery gate OK.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed snapshot")
    ap.add_argument("--current", required=True, help="fresh bench JSON")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when normalized throughput drops by more "
                         "than this factor (default 2.0)")
    ap.add_argument("--reference", default="BM_WriteCycleUncontended",
                    help="in-file benchmark used to normalize out the "
                         "machine's single-thread speed")
    ap.add_argument("--min-recovery", type=float, default=None,
                    help="recovery-gate mode: minimum `recovery` counter "
                         "the auto policy must report (no --baseline "
                         "needed)")
    ap.add_argument("--recovery-benchmark",
                    default="BM_MisdeclaredWorkload_auto",
                    help="benchmark whose recovery counter is gated")
    ap.add_argument("--off-benchmark",
                    default="BM_MisdeclaredWorkload_off",
                    help="no-replacement benchmark reported for contrast")
    ap.add_argument("--require-zero", action="append", default=[],
                    metavar="COUNTER",
                    help="fail when any benchmark in the current file "
                         "reports a non-zero value for this counter "
                         "(repeatable; e.g. arena_node_misses)")
    ap.add_argument("--min-ratio", action="append", default=[],
                    metavar="NUM[/DEN]:MIN[:FILTER]",
                    help="fail when a matched benchmark's counter NUM "
                         "falls below MIN (times counter DEN when given); "
                         "FILTER restricts the gate to benchmarks whose "
                         "name contains it (repeatable; e.g. "
                         "local_steals/remote_steals:1.0:skewed)")
    ap.add_argument("--max-latency", action="append", default=[],
                    metavar="COUNTER:BOUND[:FILTER]",
                    help="fail when a matched benchmark's counter exceeds "
                         "BOUND — the SLO gate for latency counters "
                         "(repeatable; e.g. p99_ms:5000)")
    args = ap.parse_args()

    cur = load_benchmarks(args.current)

    counter_gates = args.require_zero or args.min_ratio or args.max_latency
    zero_rc = 0
    if counter_gates:
        if cur is None:
            print("bench_compare: current results unreadable; failing.",
                  file=sys.stderr)
            return 1
        zero_rc = zero_counter_gate(cur, args.require_zero)
        zero_rc = ratio_gate(cur, args.min_ratio) or zero_rc
        zero_rc = latency_gate(cur, args.max_latency) or zero_rc

    if args.min_recovery is not None:
        if cur is None:
            print("bench_compare: current results unreadable; failing.",
                  file=sys.stderr)
            return 1
        return recovery_gate(cur, args.min_recovery,
                             args.recovery_benchmark,
                             args.off_benchmark) or zero_rc

    if not args.baseline:
        if counter_gates:
            return zero_rc
        ap.error("--baseline is required unless --min-recovery, "
                 "--require-zero, --min-ratio, or --max-latency is used")
    base = load_benchmarks(args.baseline)
    if base is None:
        print("bench_compare: no baseline snapshot; nothing to compare.")
        return zero_rc
    if cur is None:
        print("bench_compare: current results unreadable; failing.",
              file=sys.stderr)
        return 1

    ref = (base.get(args.reference) and cur.get(args.reference) and
           throughput(base[args.reference], cur[args.reference]))
    if not ref:
        print(f"bench_compare: reference '{args.reference}' missing (or "
              "unit-inconsistent) in one of the files; cannot normalize, "
              "skipping the gate.")
        return zero_rc
    ref_base, ref_cur = ref

    common = sorted(set(base) & set(cur) - {args.reference})
    if not common:
        print("bench_compare: no common benchmarks; skipping the gate.")
        return zero_rc

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  baseline(rel)  current(rel)   factor")
    for name in common:
        pair = throughput(base[name], cur[name])
        if pair is None:
            print(f"{name:<{width}}  (skipped: no unit-consistent metric)")
            continue
        rel_base = pair[0] / ref_base
        rel_cur = pair[1] / ref_cur
        factor = rel_base / rel_cur if rel_cur else float("inf")
        marker = "  <-- REGRESSION" if factor > args.threshold else ""
        print(f"{name:<{width}}  {rel_base:12.4f}  {rel_cur:12.4f}  "
              f"{factor:7.2f}{marker}")
        if factor > args.threshold:
            regressions.append((name, factor))

    if regressions:
        print(f"\nbench_compare: {len(regressions)} benchmark(s) lost more "
              f"than {args.threshold}x normalized throughput vs "
              f"{args.baseline}:", file=sys.stderr)
        for name, factor in regressions:
            print(f"  {name}: {factor:.2f}x slower (normalized)",
                  file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK ({len(common)} benchmarks within "
          f"{args.threshold}x of the snapshot).")
    return zero_rc


if __name__ == "__main__":
    sys.exit(main())
