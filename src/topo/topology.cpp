#include "topo/topology.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace orwl::topo {

Topology Topology::build(const std::vector<LevelSpec>& levels,
                         std::string name) {
  if (levels.empty()) {
    throw std::invalid_argument("Topology::build: no levels given");
  }
  if (levels.back().type != ObjType::PU) {
    throw std::invalid_argument("Topology::build: last level must be PU");
  }
  int prev_rank = type_rank(ObjType::Machine);
  for (const auto& l : levels) {
    if (l.per_parent <= 0) {
      throw std::invalid_argument("Topology::build: non-positive arity");
    }
    const int r = type_rank(l.type);
    if (r <= prev_rank) {
      throw std::invalid_argument(
          "Topology::build: levels must be ordered outermost to innermost");
    }
    prev_rank = r;
  }

  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;

  // Breadth-first expansion, one spec level at a time.
  std::vector<Object*> frontier{root.get()};
  for (const auto& spec : levels) {
    std::vector<Object*> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(spec.per_parent));
    for (Object* parent : frontier) {
      for (int i = 0; i < spec.per_parent; ++i) {
        Object& child = parent->add_child(spec.type);
        child.attr_size = spec.size;
        next.push_back(&child);
      }
    }
    frontier = std::move(next);
  }

  return adopt(std::move(root), std::move(name));
}

Topology Topology::adopt(std::unique_ptr<Object> root, std::string name) {
  if (root == nullptr) {
    throw std::invalid_argument("Topology::adopt: null root");
  }
  Topology t;
  t.root_ = std::move(root);
  t.name_ = std::move(name);
  t.finalize();
  return t;
}

void Topology::finalize() {
  levels_.clear();
  cores_.clear();
  hyperthreaded_ = false;
  symmetric_ = true;

  // Assign depths and collect levels breadth-first.
  std::vector<Object*> frontier{root_.get()};
  int depth = 0;
  while (!frontier.empty()) {
    // All objects at one depth must share a type.
    const ObjType t = frontier.front()->type;
    for (Object* o : frontier) {
      if (o->type != t) {
        throw std::invalid_argument(
            "Topology: heterogeneous level (mixed object types at one depth)");
      }
      o->depth = depth;
    }
    levels_.push_back(frontier);
    std::vector<Object*> next;
    for (Object* o : frontier) {
      for (auto& c : o->children) next.push_back(c.get());
    }
    // Mixed leaf/non-leaf depths would make `next` skip leaves; forbid by
    // checking leaves only appear on the last level.
    if (!next.empty()) {
      for (Object* o : frontier) {
        if (o->is_leaf()) {
          throw std::invalid_argument(
              "Topology: leaf object above the PU level");
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  if (levels_.back().front()->type != ObjType::PU) {
    throw std::invalid_argument("Topology: deepest level must be PU");
  }

  // Logical indices per level; symmetric check.
  for (auto& level : levels_) {
    int idx = 0;
    const std::size_t arity = level.front()->arity();
    for (Object* o : level) {
      o->logical_index = idx++;
      if (o->arity() != arity) symmetric_ = false;
    }
  }

  // PU logical index ranges, bottom-up; default PU os_index = logical.
  {
    auto& pus = levels_.back();
    for (std::size_t i = 0; i < pus.size(); ++i) {
      pus[i]->first_pu = pus[i]->last_pu = static_cast<int>(i);
      if (pus[i]->os_index < 0) pus[i]->os_index = static_cast<int>(i);
    }
  }
  for (int d = static_cast<int>(levels_.size()) - 2; d >= 0; --d) {
    for (Object* o : levels_[static_cast<std::size_t>(d)]) {
      o->first_pu = o->children.front()->first_pu;
      o->last_pu = o->children.back()->last_pu;
    }
  }

  // Core bookkeeping + hyperthread detection.
  const int core_depth = depth_of_type(ObjType::Core);
  if (core_depth >= 0) {
    for (Object* o : levels_[static_cast<std::size_t>(core_depth)]) {
      cores_.push_back(o);
      if (o->pu_count() > 1) hyperthreaded_ = true;
    }
  }
}

Topology Topology::clone() const {
  std::function<std::unique_ptr<Object>(const Object&)> copy =
      [&](const Object& src) {
        auto dst = std::make_unique<Object>();
        dst->type = src.type;
        dst->logical_index = src.logical_index;
        dst->os_index = src.os_index;
        dst->attr_size = src.attr_size;
        dst->name = src.name;
        for (const auto& c : src.children) {
          auto child = copy(*c);
          child->parent = dst.get();
          dst->children.push_back(std::move(child));
        }
        return dst;
      };
  if (root_ == nullptr) return Topology{};
  return adopt(copy(*root_), name_);
}

std::span<Object* const> Topology::at_depth(int d) const {
  if (d < 0 || d >= depth()) {
    throw std::out_of_range("Topology::at_depth: bad depth");
  }
  return levels_[static_cast<std::size_t>(d)];
}

ObjType Topology::level_type(int d) const {
  return at_depth(d).front()->type;
}

int Topology::depth_of_type(ObjType t) const noexcept {
  for (std::size_t d = 0; d < levels_.size(); ++d) {
    if (levels_[d].front()->type == t) return static_cast<int>(d);
  }
  return -1;
}

std::span<Object* const> Topology::cores() const {
  if (!cores_.empty()) return cores_;
  return pus();  // machines without an explicit Core level
}

int Topology::arity_at(int d) const {
  if (!symmetric_) {
    throw std::logic_error("Topology::arity_at: topology is not symmetric");
  }
  return static_cast<int>(at_depth(d).front()->arity());
}

const Object* Topology::pu_by_os_index(int os) const noexcept {
  for (Object* pu : levels_.back()) {
    if (pu->os_index == os) return pu;
  }
  return nullptr;
}

const Object* Topology::pu_at(int logical) const {
  const auto pus_span = pus();
  if (logical < 0 || static_cast<std::size_t>(logical) >= pus_span.size()) {
    throw std::out_of_range("Topology::pu_at: bad PU index");
  }
  return pus_span[static_cast<std::size_t>(logical)];
}

const Object* Topology::common_ancestor(const Object& a,
                                        const Object& b) const {
  const Object* x = &a;
  const Object* y = &b;
  while (x->depth > y->depth) x = x->parent;
  while (y->depth > x->depth) y = y->parent;
  while (x != y) {
    x = x->parent;
    y = y->parent;
  }
  return x;
}

int Topology::sharing_depth(int pu_a, int pu_b) const {
  const Object* a = pu_at(pu_a);
  const Object* b = pu_at(pu_b);
  return common_ancestor(*a, *b)->depth;
}

int Topology::distance(int pu_a, int pu_b) const {
  const int leaf_depth = depth() - 1;
  return 2 * (leaf_depth - sharing_depth(pu_a, pu_b));
}

std::size_t Topology::cache_size(ObjType level) const {
  const int d = depth_of_type(level);
  if (d < 0) return 0;
  return at_depth(d).front()->attr_size;
}

namespace {

/// Structural fingerprint of a subtree (type/arity/attr per level) used to
/// collapse identical siblings in render().
std::string fingerprint(const Object& o) {
  std::string s = std::string(to_string(o.type)) + ":" +
                  std::to_string(o.attr_size) + "(";
  for (const auto& c : o.children) s += fingerprint(*c);
  s += ")";
  return s;
}

void render_rec(const Object& o, int indent, std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << o.label();
  if (o.attr_size != 0 && is_cache(o.type)) {
    out << " (" << o.attr_size / 1024 << " KiB)";
  }
  if (o.type == ObjType::PU && o.os_index >= 0) {
    out << " [os=" << o.os_index << "]";
  }
  out << '\n';
  // Collapse runs of structurally identical children.
  std::size_t i = 0;
  while (i < o.children.size()) {
    const std::string fp = fingerprint(*o.children[i]);
    std::size_t j = i + 1;
    while (j < o.children.size() && fingerprint(*o.children[j]) == fp) ++j;
    if (j - i >= 3 && !o.children[i]->is_leaf()) {
      out << std::string(static_cast<std::size_t>(indent + 1) * 2, ' ')
          << o.children[i]->label() << " .. " << o.children[j - 1]->label()
          << "  (x" << (j - i) << " identical)" << '\n';
      render_rec(*o.children[i], indent + 2, out);
      i = j;
    } else {
      render_rec(*o.children[i], indent + 1, out);
      ++i;
    }
  }
}

}  // namespace

std::string Topology::render() const {
  std::ostringstream out;
  out << name_ << '\n';
  if (root_) render_rec(*root_, 0, out);
  return out.str();
}

std::string Topology::summary() const {
  std::ostringstream out;
  out << name_ << ": ";
  for (int d = 1; d < depth(); ++d) {
    const auto lvl = at_depth(d);
    if (d > 1) out << " x ";
    const std::size_t per_parent = lvl.size() / at_depth(d - 1).size();
    out << per_parent << " " << to_string(level_type(d));
  }
  out << " (" << num_cores() << " cores, " << num_pus() << " PUs)";
  return out.str();
}

}  // namespace orwl::topo
