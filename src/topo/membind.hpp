// NUMA-targeted memory: the data half of the paper's control plane.
//
// "the ORWL runtime additionally deploys control threads and a lock
// mechanism that manage lock synchronization and data transfer."
// (Sec. IV-A) — thread placement alone leaves location buffers wherever
// first touch happened to put them; this header provides the memory side:
// node-targeted page allocation, page-residency queries and an explicit
// migration primitive, all degrading gracefully on hosts without NUMA.
//
// Portability contract (the same fixture-driven spirit as ORWL_TOPOLOGY):
// when the NUMA syscalls are unavailable — non-Linux hosts, seccomp'd
// runners, or a target node that does not exist on the real machine
// because the program runs on a *fixture* topology — a binding is
// recorded instead of performed. The intended node stays queryable
// (bound_node(), page_nodes(), resident_node() all report it), so the
// runtime's data-transfer logic and its tests behave identically on a
// 12-NUMA-node fixture and on a 1-node laptop; only the physical page
// movement is elided.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "topo/topology.hpp"

namespace orwl::topo {

/// Environment override for the physical binding backend.
/// `auto` (default/unset): use mmap + mbind/move_pages when available;
/// `emulate`: force the portable heap fallback (every binding is
/// tag-only). Tests use `emulate` to pin down the fallback paths on any
/// host.
inline constexpr const char* kMemBindEnvVar = "ORWL_MEMBIND";

/// Environment switch for huge-page location buffers (`0`/`1`, default
/// off): when set, Location::scale requests MAP_HUGETLB storage for
/// buffers of at least one huge page. Allocation falls back to normal
/// pages transparently when the host has no hugetlb pool (or on
/// non-Linux hosts), so enabling it is always safe.
inline constexpr const char* kHugePagesEnvVar = "ORWL_HUGEPAGES";

/// A page-granular memory area with an intended NUMA node.
///
/// The low-level primitive: one anonymous mapping (or heap block in
/// fallback mode) whose pages can be bound to a node at allocation time
/// and migrated later. Not thread-safe — callers serialize structural
/// operations; the runtime wraps it in NumaBuffer, which is.
class MemBind {
 public:
  /// Sentinel node meaning "no binding": pages stay where first touch
  /// (or the kernel's default policy) puts them.
  static constexpr int kAnyNode = -1;

  MemBind() noexcept = default;
  ~MemBind();
  MemBind(MemBind&& other) noexcept;
  MemBind& operator=(MemBind&& other) noexcept;
  MemBind(const MemBind&) = delete;
  MemBind& operator=(const MemBind&) = delete;

  /// Allocate `bytes` of zero-initialized memory with its pages bound to
  /// `node` (kAnyNode => unbound first-touch memory).
  ///
  /// \param bytes  Size of the area; 0 yields an empty object.
  /// \param node   Target NUMA node, or kAnyNode for no binding. Nodes
  ///               that do not exist on the host (fixture topologies) are
  ///               recorded but not physically bound.
  /// \param huge   Request MAP_HUGETLB backing (rounded up to whole huge
  ///               pages). Ignored — with a transparent fallback to the
  ///               normal path — when the host has no hugetlb pool, the
  ///               size is below one huge page, or emulation is forced.
  /// \return The new area. Never throws for allocation-policy reasons:
  ///         when mmap or mbind is unavailable the portable heap fallback
  ///         is used. Throws std::bad_alloc only when memory itself is
  ///         exhausted.
  static MemBind allocate(std::size_t bytes, int node = kAnyNode,
                          bool huge = false);

  /// True when the area is backed by hugetlb pages (the request was
  /// honored, not just made).
  bool huge_pages() const noexcept { return huge_; }

  /// Start of the area; nullptr when empty.
  std::byte* data() const noexcept { return ptr_; }
  /// Usable size in bytes (the mapping itself is page-rounded).
  std::size_t size() const noexcept { return bytes_; }
  /// Bytes usable without reallocating: the page-rounded mapping length
  /// for mapped storage, the allocation size for heap-fallback storage.
  std::size_t capacity() const noexcept { return cap_; }
  bool empty() const noexcept { return ptr_ == nullptr; }

  /// Adjust the usable size within the existing storage, keeping the
  /// binding and the contents.
  /// \param bytes New size; must be non-zero and <= capacity().
  /// \return true when resized in place; false when empty, bytes == 0,
  ///         or bytes exceeds capacity() (caller reallocates instead).
  bool try_resize(std::size_t bytes) noexcept;

  /// The node this area is intended to live on (kAnyNode = unbound).
  /// Authoritative in emulated mode; equals the physical majority node
  /// after a successful real bind or migration.
  int bound_node() const noexcept { return node_; }

  /// True when the current binding is tag-only: heap fallback storage,
  /// missing syscalls, or a node beyond the host's (fixture topologies).
  bool emulated() const noexcept { return !real_bind_; }

  /// Move the pages to `node`. kAnyNode clears the binding — including
  /// the kernel's node policy on really-bound mappings, so later faults
  /// are first-touch again.
  ///
  /// \param node Target node; nodes unknown to the host are recorded
  ///             tag-only (see the portability contract above).
  /// \return true when the area is now considered bound to `node`
  ///         (physically or by emulation); false only when a physical
  ///         migration was attempted and the kernel rejected it — the
  ///         previous binding state is kept in that case, so callers can
  ///         retry.
  bool migrate_to(int node) noexcept;

  /// Residency of every page of the area, front to back.
  ///
  /// \return One node id per page. Physical residency (move_pages query)
  ///         for real bound mappings; the intended node in emulated mode;
  ///         kAnyNode entries when the kernel cannot tell. Empty for an
  ///         empty area.
  std::vector<int> page_nodes() const;

  /// Majority node of page_nodes(); kAnyNode when empty or unknown.
  int resident_node() const;

  /// Release the memory and return to the empty state.
  void reset() noexcept;

  // ---- host introspection ------------------------------------------------

  /// True when the mbind/move_pages syscalls exist and are permitted
  /// (cached; honors ORWL_MEMBIND=emulate, which forces false).
  static bool numa_syscalls_available() noexcept;

  /// Number of NUMA nodes of the host (>= 1; 1 on NUMA-less machines and
  /// wherever /sys/devices/system/node is unreadable).
  static int host_node_count() noexcept;

  /// Node ids present on the host, ascending. Node ids can be sparse
  /// (offlined nodes, CXL layouts), so iterate these instead of assuming
  /// 0..host_node_count()-1. Never empty: {0} on NUMA-less hosts.
  static std::vector<int> host_node_ids();

  /// Host NUMA node owning `cpu`, from sysfs.
  /// \param cpu OS cpu id (sched_getcpu numbering).
  /// \return The node id, or -1 when unknown (non-Linux, bad id).
  static int node_of_cpu(int cpu) noexcept;

  /// Page size used for rounding and residency queries.
  static std::size_t page_size() noexcept;

  /// Default huge page size of the host (/proc/meminfo Hugepagesize),
  /// or 0 when the host has none / is not Linux.
  static std::size_t huge_page_size() noexcept;

 private:
  std::byte* ptr_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t cap_ = 0;     ///< reusable storage size (>= bytes_)
  std::size_t mapped_ = 0;  ///< page-rounded mmap length; 0 => heap block
  int node_ = kAnyNode;     ///< intended node
  bool real_bind_ = false;  ///< pages were physically bound/migrated
  bool huge_ = false;       ///< hugetlb-backed mapping
};

/// NUMA node of a processing unit *inside a given topology* — the fixture
/// view, as opposed to MemBind::node_of_cpu's host view.
///
/// \param t           The (possibly synthetic) machine.
/// \param pu_os_index OS index of the PU, as used by placements.
/// \return The node id of the PU's NUMA-node ancestor in `t` — the OS
///         node id for detected host topologies (what mbind expects),
///         the logical index for synthetic fixtures — or -1 when the PU
///         is unknown or `t` has no NUMA level.
int numa_node_of_pu(const Topology& t, int pu_os_index) noexcept;

/// A resizable, zero-initialized byte buffer with a sticky NUMA binding.
///
/// This is what Location buffers are made of: resize() keeps the buffer
/// on its bound node, bind_to() migrates live pages, and the accessors
/// the runtime's grant path needs (node(), data(), size()) are safe to
/// call concurrently with a migration — a control thread may rebind the
/// pages while task threads hold the area mapped. Structural mutation
/// (resize/reset) must still be externally serialized against itself and
/// against readers of data(), exactly like std::vector.
class NumaBuffer {
 public:
  NumaBuffer() = default;
  NumaBuffer(const NumaBuffer&) = delete;
  NumaBuffer& operator=(const NumaBuffer&) = delete;

  /// (Re)allocate to `bytes` zero-initialized bytes on the bound node.
  /// Storage is reused (and re-zeroed) when the page-rounded size fits.
  /// \param bytes New size; 0 is equivalent to reset().
  void resize(std::size_t bytes);

  /// Drop the storage (size() becomes 0, data() nullptr) but keep the
  /// node binding for a later resize. Used by size-only dry-run scaling.
  void reset() noexcept;

  /// Request (or stop requesting) huge-page backing for subsequent
  /// (re)allocations; live storage is not re-backed until the next
  /// resize that cannot reuse it. The request is remembered even when
  /// the host cannot honor it, so flipping the flag is always cheap.
  void set_huge_pages(bool on);

  /// True when the *current* storage is hugetlb-backed (request honored).
  bool huge_pages() const;

  /// Start of the buffer; nullptr when empty (e.g. after reset()).
  std::byte* data() const noexcept {
    return data_.load(std::memory_order_acquire);
  }
  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  /// Bind (and migrate, when storage exists) the buffer to `node`.
  /// Subsequent resize() calls allocate on that node. Thread-safe against
  /// concurrent bind_to/resize/reset and against readers.
  /// \param node Target node; MemBind::kAnyNode clears the binding.
  /// \return true when the binding actually changed; false when it was
  ///         already in place or a physical migration failed (the binding
  ///         is then left unchanged so a later attempt retries).
  bool bind_to(int node);

  /// The node the buffer is bound to (MemBind::kAnyNode = unbound).
  /// Lock-free; safe from the grant path.
  int node() const noexcept {
    return node_.load(std::memory_order_acquire);
  }

  /// Physical (or emulated) majority residency; see MemBind.
  int resident_node() const;

  /// True when the current binding is tag-only (see MemBind::emulated).
  bool emulated() const;

  /// Number of bind_to() calls that changed the binding of live storage —
  /// i.e. actual page migrations (or their emulated equivalent).
  std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;  ///< serializes structural ops and migration
  MemBind mem_;
  bool huge_req_ = false;    ///< huge pages requested for new storage
  bool alloc_huge_ = false;  ///< request in effect for current storage
  std::atomic<std::byte*> data_{nullptr};
  std::atomic<std::size_t> size_{0};
  std::atomic<int> node_{MemBind::kAnyNode};
  std::atomic<std::uint64_t> migrations_{0};
};

}  // namespace orwl::topo
