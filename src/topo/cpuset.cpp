#include "topo/cpuset.hpp"

#include <bit>
#include <charconv>
#include <stdexcept>

namespace orwl::topo {

namespace {
constexpr std::size_t kBits = 64;
}

CpuSet::CpuSet(std::initializer_list<int> cpus) {
  for (int c : cpus) set(c);
}

CpuSet CpuSet::single(int cpu) {
  CpuSet s;
  s.set(cpu);
  return s;
}

CpuSet CpuSet::range(int first, int last) {
  if (first < 0 || last < first) {
    throw std::invalid_argument("CpuSet::range: bad bounds");
  }
  CpuSet s;
  for (int c = first; c <= last; ++c) s.set(c);
  return s;
}

CpuSet CpuSet::parse(std::string_view list) {
  CpuSet s;
  std::size_t pos = 0;
  auto parse_int = [&](std::size_t& p) {
    int value = 0;
    const auto* begin = list.data() + p;
    const auto* end = list.data() + list.size();
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc{} || value < 0) {
      throw std::invalid_argument("CpuSet::parse: malformed list");
    }
    p += static_cast<std::size_t>(res.ptr - begin);
    return value;
  };
  while (pos < list.size()) {
    const int a = parse_int(pos);
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      const int b = parse_int(pos);
      if (b < a) throw std::invalid_argument("CpuSet::parse: inverted range");
      for (int c = a; c <= b; ++c) s.set(c);
    } else {
      s.set(a);
    }
    if (pos < list.size()) {
      if (list[pos] != ',') {
        throw std::invalid_argument("CpuSet::parse: expected ','");
      }
      ++pos;
      if (pos == list.size()) {
        throw std::invalid_argument("CpuSet::parse: trailing ','");
      }
    }
  }
  return s;
}

void CpuSet::set(int cpu) {
  if (cpu < 0) throw std::invalid_argument("CpuSet::set: negative cpu");
  const std::size_t w = static_cast<std::size_t>(cpu) / kBits;
  if (w >= words_.size()) words_.resize(w + 1, 0);
  words_[w] |= (std::uint64_t{1} << (static_cast<std::size_t>(cpu) % kBits));
}

void CpuSet::clear(int cpu) {
  if (cpu < 0) return;
  const std::size_t w = static_cast<std::size_t>(cpu) / kBits;
  if (w >= words_.size()) return;
  words_[w] &= ~(std::uint64_t{1} << (static_cast<std::size_t>(cpu) % kBits));
  trim();
}

bool CpuSet::test(int cpu) const noexcept {
  if (cpu < 0) return false;
  const std::size_t w = static_cast<std::size_t>(cpu) / kBits;
  if (w >= words_.size()) return false;
  return (words_[w] >> (static_cast<std::size_t>(cpu) % kBits)) & 1u;
}

std::size_t CpuSet::count() const noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

int CpuSet::first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * kBits) + std::countr_zero(words_[w]);
    }
  }
  return -1;
}

int CpuSet::last() const noexcept {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<int>(w * kBits) + 63 - std::countl_zero(words_[w]);
    }
  }
  return -1;
}

CpuSet CpuSet::operator|(const CpuSet& o) const {
  CpuSet r;
  r.words_.resize(std::max(words_.size(), o.words_.size()), 0);
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    r.words_[i] = a | b;
  }
  r.trim();
  return r;
}

CpuSet CpuSet::operator&(const CpuSet& o) const {
  CpuSet r;
  const std::size_t n = std::min(words_.size(), o.words_.size());
  r.words_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) r.words_[i] = words_[i] & o.words_[i];
  r.trim();
  return r;
}

CpuSet CpuSet::operator-(const CpuSet& o) const {
  CpuSet r = *this;
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i) r.words_[i] &= ~o.words_[i];
  r.trim();
  return r;
}

bool CpuSet::operator==(const CpuSet& o) const noexcept {
  return words_ == o.words_;  // trim() keeps representation canonical
}

std::vector<int> CpuSet::to_vector() const {
  std::vector<int> v;
  v.reserve(count());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      v.push_back(static_cast<int>(w * kBits) + b);
      bits &= bits - 1;
    }
  }
  return v;
}

std::string CpuSet::to_list_string() const {
  const auto v = to_vector();
  std::string out;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[j] + 1) ++j;
    if (!out.empty()) out += ',';
    if (j == i) {
      out += std::to_string(v[i]);
    } else {
      out += std::to_string(v[i]) + "-" + std::to_string(v[j]);
    }
    i = j + 1;
  }
  return out;
}

void CpuSet::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace orwl::topo
