// Topology objects: the nodes of the hardware tree.
//
// This mirrors hwloc's object model (Broquedis et al., "hwloc: A generic
// framework for managing hardware affinities in HPC applications", 2010),
// which the paper uses to obtain "the cache hierarchy, the different cache
// sizes, the number of cores with their numbering" (Sec. III).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace orwl::topo {

/// Object types, ordered from the outermost container inwards. A topology
/// tree's levels always appear in this order (some may be absent).
enum class ObjType : std::uint8_t {
  Machine,   ///< Whole shared-memory machine (root).
  Group,     ///< Intermediate container (e.g. a blade in Fig. 2).
  NumaNode,  ///< NUMA memory node.
  Package,   ///< Physical processor package / socket.
  L3,        ///< L3 cache.
  L2,        ///< L2 cache.
  L1,        ///< L1 data cache.
  Core,      ///< Physical core.
  PU,        ///< Processing unit (hardware thread); the leaves.
};

/// Human-readable name of an object type ("NUMANode", "Core", ...).
const char* to_string(ObjType t) noexcept;

/// True for the three cache levels.
bool is_cache(ObjType t) noexcept;

/// Rank used to validate level ordering (Machine lowest, PU highest).
int type_rank(ObjType t) noexcept;

/// A node of the topology tree. Objects are owned by their parent; the
/// Topology owns the root. All raw pointers below are non-owning.
struct Object {
  ObjType type = ObjType::Machine;

  /// Index among all objects of the same depth, in left-to-right order.
  int logical_index = 0;

  /// OS numbering. For PUs this is the cpu id used for binding
  /// (sched_setaffinity); for NUMA nodes the node id. -1 when meaningless.
  int os_index = -1;

  /// Depth of this object in the tree (root = 0).
  int depth = 0;

  /// Cache size in bytes for cache objects; local memory for NUMA nodes;
  /// 0 otherwise.
  std::size_t attr_size = 0;

  /// Optional display name ("Blade 0", "Socket 2", ...). Empty by default.
  std::string name;

  Object* parent = nullptr;
  std::vector<std::unique_ptr<Object>> children;

  /// Range of PU logical indices covered by this subtree; filled in by
  /// Topology::finalize(). Inclusive bounds; empty subtree => first > last.
  int first_pu = 0;
  int last_pu = -1;

  std::size_t arity() const noexcept { return children.size(); }
  bool is_leaf() const noexcept { return children.empty(); }

  /// Number of PUs (leaves) below this object, inclusive of itself if PU.
  int pu_count() const noexcept { return last_pu - first_pu + 1; }

  /// Walk up to the nearest ancestor (or self) of the given type; nullptr
  /// when no such ancestor exists.
  const Object* ancestor_of_type(ObjType t) const noexcept;

  /// Append a child of the given type; returns a reference to it.
  Object& add_child(ObjType t);

  /// Display label: "<TypeName> <logical_index>" or the explicit name.
  std::string label() const;
};

}  // namespace orwl::topo
