// Steal-order victim tables: who a work-stealing PU should rob first.
//
// The work-stealing executor (rt::StealExecutor) wants, for every PU, a
// locality-ordered list of the other PUs: hyperthread sibling first, then
// the same core's other PUs, the same cache/package/NUMA-node PUs, and
// remote nodes last. Computing ancestor chains inside the steal loop
// would put tree walks on the hottest path of the runtime, so the order
// is precomputed here from the live topo::Topology tree as one flat row
// per PU, plus the boundary between same-NUMA-node victims and remote
// ones (the `ORWL_STEAL=node` policy truncates each row at that
// boundary, and the executor's statistics classify steals with it).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topo/topology.hpp"

namespace orwl::topo {

/// Per-PU steal order over a machine's PUs. Row p lists every other PU
/// (logical indices), nearest first: sorted by descending sharing depth
/// with the thief, so a hyperthread sibling precedes a same-core PU,
/// which precedes same-node PUs, which precede remote-node PUs. Ties at
/// equal sharing depth are broken by the clockwise logical distance from
/// the thief, so thieves at different PUs fan out over different victims
/// instead of converging on the lowest-numbered one.
struct VictimTable {
  std::size_t num_pus = 0;

  /// `num_pus` rows of `num_pus - 1` logical PU indices each, flattened.
  std::vector<int> victims;

  /// Per PU, the number of leading row entries that share the PU's NUMA
  /// node (the whole row when the machine has no NUMA level).
  std::vector<std::size_t> local_end;

  /// Steal order for one PU.
  /// \param pu Logical PU index (left-to-right order).
  /// \return All other PUs, nearest first; empty for out-of-range `pu`.
  std::span<const int> row(std::size_t pu) const noexcept;

  /// Number of leading `row(pu)` entries on the PU's own NUMA node.
  /// \param pu Logical PU index.
  /// \return The local victim count; 0 for out-of-range `pu`.
  std::size_t local_count(std::size_t pu) const noexcept;
};

/// Precompute the steal order for every PU of `t`.
/// \param t The machine; an empty topology yields an empty table.
/// \return The per-PU victim table (rows indexed by logical PU).
VictimTable make_victim_table(const Topology& t);

}  // namespace orwl::topo
