// The hardware topology tree.
//
// This is the reproduction's substitute for hwloc (ref. [11] of the paper):
// it exposes "a portable and abstracted view of the hardware topology" —
// the tree of machine / NUMA nodes / packages / caches / cores / PUs that
// Algorithm 1 consumes, plus the queries the affinity module needs
// (hyperthread detection, per-level arities, sharing depths).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "topo/object.hpp"

namespace orwl::topo {

/// One level of a symmetric synthetic topology:
/// `per_parent` children of type `type` under every object of the previous
/// level; `size` is the cache size for cache levels (bytes).
struct LevelSpec {
  ObjType type;
  int per_parent;
  std::size_t size = 0;
};

/// An immutable tree describing one shared-memory machine.
///
/// Depth conventions: the root (Machine) is depth 0; the PUs are the deepest
/// level, `depth() - 1`. Levels are homogeneous: every object at a given
/// depth has the same type (like hwloc's "normal" levels).
class Topology {
 public:
  Topology() = default;
  Topology(Topology&&) noexcept = default;
  Topology& operator=(Topology&&) noexcept = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Build a symmetric topology.
  /// \param levels Levels *below* the machine root, outermost first; the
  ///               last entry must be PU.
  /// \param name   Display name used by summary()/render().
  /// \return The finalized tree.
  /// \throws std::invalid_argument on ill-formed specs (non-positive
  ///         arities, out-of-order types, missing PU level).
  static Topology build(const std::vector<LevelSpec>& levels,
                        std::string name = "synthetic");

  /// Take ownership of a hand-built tree (used by the sysfs detector).
  /// Runs the same finalization/validation as build().
  /// \param root The tree root; must describe a well-formed machine.
  /// \param name Display name.
  /// \throws std::invalid_argument when validation fails.
  static Topology adopt(std::unique_ptr<Object> root, std::string name);

  /// Deep copy (explicit, since the class is move-only by default).
  Topology clone() const;

  bool empty() const noexcept { return root_ == nullptr; }

  const Object& root() const { return *root_; }

  /// Number of levels, including machine and PU levels.
  int depth() const noexcept { return static_cast<int>(levels_.size()); }

  /// All objects at a given depth, left to right.
  std::span<Object* const> at_depth(int d) const;

  /// Type of the objects at a given depth.
  ObjType level_type(int d) const;

  /// Depth at which objects of type `t` live; -1 when the level is absent.
  int depth_of_type(ObjType t) const noexcept;

  /// Leaves: the processing units, in logical (left-to-right) order.
  std::span<Object* const> pus() const { return at_depth(depth() - 1); }
  std::span<Object* const> cores() const;

  std::size_t num_pus() const { return pus().size(); }
  std::size_t num_cores() const { return cores().size(); }

  /// True when at least one core has more than one PU.
  bool has_hyperthreads() const noexcept { return hyperthreaded_; }

  /// True when all objects at each depth have identical arity.
  bool is_symmetric() const noexcept { return symmetric_; }

  /// Children per object at depth d (requires is_symmetric()).
  int arity_at(int d) const;

  /// PU object whose os_index equals `os`; nullptr when absent.
  const Object* pu_by_os_index(int os) const noexcept;

  /// PU object by logical index (0-based, left-to-right).
  const Object* pu_at(int logical) const;

  /// Deepest object containing both `a` and `b` (both must belong to
  /// this topology).
  const Object* common_ancestor(const Object& a, const Object& b) const;

  /// Depth of the deepest common ancestor of two PUs.
  /// \param pu_a,pu_b Logical PU indices (left-to-right order).
  /// \return The sharing depth; equal PUs share at PU depth itself.
  int sharing_depth(int pu_a, int pu_b) const;

  /// Hop distance between two PUs: 2 * (pu_depth - sharing_depth).
  /// \param pu_a,pu_b Logical PU indices.
  int distance(int pu_a, int pu_b) const;

  /// Cache size of the given cache level.
  /// \param level One of L1/L2/L3.
  /// \return Size in bytes; 0 when the level is absent.
  std::size_t cache_size(ObjType level) const;

  const std::string& name() const noexcept { return name_; }

  /// Multi-line ASCII rendering of the tree (consecutive identical subtrees
  /// are collapsed with a multiplicity marker).
  std::string render() const;

  /// Compact single-line summary, e.g.
  /// "SMP12E5: 12 NUMANode x 1 Package x 8 Core x 2 PU (96 cores, 192 PUs)".
  std::string summary() const;

 private:
  void finalize();  // assign depths/indices/pu-ranges, build level arrays

  std::unique_ptr<Object> root_;
  std::vector<std::vector<Object*>> levels_;
  std::vector<Object*> cores_;  // empty if no Core level (then cores == pus)
  std::string name_;
  bool hyperthreaded_ = false;
  bool symmetric_ = true;
};

}  // namespace orwl::topo
