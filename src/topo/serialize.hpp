// Topology serialization: a stable text format for saving and loading
// machine descriptions (the analog of hwloc's XML export/import). Lets
// users pin the exact tree a placement was computed for, ship testbed
// descriptions, and diff detected topologies.
//
// Format: one object per line, depth encoded by two-space indentation.
//
//   machine "SMP12E5"
//     NUMANode os=0
//       Package
//         L3 size=20971520
//           ...
//             PU os=0
//
// Attributes: `os=<int>` (OS index), `size=<bytes>` (cache/memory size),
// `name="..."` (display name, quotes required). Unknown attributes are
// rejected.
#pragma once

#include <string>
#include <string_view>

#include "topo/topology.hpp"

namespace orwl::topo {

/// Serialize a topology to the text format above.
std::string serialize(const Topology& t);

/// Parse a topology back. Throws std::invalid_argument on malformed
/// input (bad indentation, unknown types/attributes, invalid tree
/// structure — the result passes the same validation as Topology::adopt).
Topology parse_topology(std::string_view text);

/// Full PU-to-PU hop-distance matrix (row-major, order = num_pus()),
/// using Topology::distance. Useful for exporting to external mapping
/// tools (TreeMatch's own input format is such a matrix).
std::vector<int> distance_matrix(const Topology& t);

}  // namespace orwl::topo
