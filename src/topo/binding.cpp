#include "topo/binding.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace orwl::topo {

namespace {

bool fill_cpu_set(const CpuSet& set, cpu_set_t& native) noexcept {
  CPU_ZERO(&native);
  bool any = false;
  for (int cpu : set.to_vector()) {
    if (cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &native);
    any = true;
  }
  return any;
}

}  // namespace

bool bind_current_thread(const CpuSet& set) noexcept {
  return bind_thread(pthread_self(), set);
}

bool bind_thread(std::thread::native_handle_type handle,
                 const CpuSet& set) noexcept {
  cpu_set_t native;
  if (!fill_cpu_set(set, native)) return false;
  return pthread_setaffinity_np(handle, sizeof native, &native) == 0;
}

CpuSet current_thread_binding() {
  cpu_set_t native;
  CPU_ZERO(&native);
  CpuSet out;
  if (pthread_getaffinity_np(pthread_self(), sizeof native, &native) != 0) {
    return out;
  }
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &native)) out.set(cpu);
  }
  return out;
}

int current_cpu() noexcept { return sched_getcpu(); }

int host_cpu_count() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace orwl::topo
