#include "topo/binding.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#include <unistd.h>

#include <thread>

namespace orwl::topo {

#if defined(__linux__)

namespace {

bool fill_cpu_set(const CpuSet& set, cpu_set_t& native) noexcept {
  CPU_ZERO(&native);
  bool any = false;
  for (int cpu : set.to_vector()) {
    if (cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &native);
    any = true;
  }
  return any;
}

}  // namespace

bool bind_current_thread(const CpuSet& set) noexcept {
  return bind_thread(pthread_self(), set);
}

bool bind_thread(std::thread::native_handle_type handle,
                 const CpuSet& set) noexcept {
  cpu_set_t native;
  if (!fill_cpu_set(set, native)) return false;
  return pthread_setaffinity_np(handle, sizeof native, &native) == 0;
}

CpuSet current_thread_binding() {
  cpu_set_t native;
  CPU_ZERO(&native);
  CpuSet out;
  if (pthread_getaffinity_np(pthread_self(), sizeof native, &native) != 0) {
    return out;
  }
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &native)) out.set(cpu);
  }
  return out;
}

int current_cpu() noexcept { return sched_getcpu(); }

#else  // !__linux__

// Portable fallback: binding is advisory everywhere in this codebase
// (callers must tolerate `false`), so platforms without the Linux affinity
// API simply report that binding is unavailable.

bool bind_current_thread(const CpuSet&) noexcept { return false; }

bool bind_thread(std::thread::native_handle_type, const CpuSet&) noexcept {
  return false;
}

CpuSet current_thread_binding() { return CpuSet{}; }

int current_cpu() noexcept { return -1; }

#endif  // __linux__

int host_cpu_count() noexcept {
#if defined(_SC_NPROCESSORS_ONLN)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<int>(n);
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace orwl::topo
