#include "topo/object.hpp"

namespace orwl::topo {

const char* to_string(ObjType t) noexcept {
  switch (t) {
    case ObjType::Machine: return "Machine";
    case ObjType::Group: return "Group";
    case ObjType::NumaNode: return "NUMANode";
    case ObjType::Package: return "Package";
    case ObjType::L3: return "L3";
    case ObjType::L2: return "L2";
    case ObjType::L1: return "L1";
    case ObjType::Core: return "Core";
    case ObjType::PU: return "PU";
  }
  return "?";
}

bool is_cache(ObjType t) noexcept {
  return t == ObjType::L3 || t == ObjType::L2 || t == ObjType::L1;
}

int type_rank(ObjType t) noexcept { return static_cast<int>(t); }

const Object* Object::ancestor_of_type(ObjType t) const noexcept {
  const Object* o = this;
  while (o != nullptr && o->type != t) o = o->parent;
  return o;
}

Object& Object::add_child(ObjType t) {
  auto child = std::make_unique<Object>();
  child->type = t;
  child->parent = this;
  children.push_back(std::move(child));
  return *children.back();
}

std::string Object::label() const {
  if (!name.empty()) return name;
  return std::string(to_string(type)) + " " + std::to_string(logical_index);
}

}  // namespace orwl::topo
