#include "topo/victim.hpp"

#include <algorithm>

namespace orwl::topo {

std::span<const int> VictimTable::row(std::size_t pu) const noexcept {
  if (pu >= num_pus || num_pus < 2) return {};
  const std::size_t stride = num_pus - 1;
  return {victims.data() + pu * stride, stride};
}

std::size_t VictimTable::local_count(std::size_t pu) const noexcept {
  return pu < local_end.size() ? local_end[pu] : 0;
}

VictimTable make_victim_table(const Topology& t) {
  VictimTable table;
  if (t.empty()) return table;
  const std::size_t npus = t.num_pus();
  table.num_pus = npus;
  table.local_end.assign(npus, 0);
  if (npus < 2) return table;

  const int numa_depth = t.depth_of_type(ObjType::NumaNode);
  const std::size_t stride = npus - 1;
  table.victims.resize(npus * stride);

  std::vector<int> order(stride);
  for (std::size_t p = 0; p < npus; ++p) {
    order.clear();
    for (std::size_t v = 0; v < npus; ++v) {
      if (v != p) order.push_back(static_cast<int>(v));
    }
    // Nearest first; equal sharing depths fan out clockwise from the
    // thief so concurrent thieves spread over distinct victims.
    const auto ring = [&](int v) {
      return (static_cast<std::size_t>(v) + npus - p) % npus;
    };
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const int da = t.sharing_depth(static_cast<int>(p), a);
      const int db = t.sharing_depth(static_cast<int>(p), b);
      if (da != db) return da > db;
      return ring(a) < ring(b);
    });
    std::copy(order.begin(), order.end(),
              table.victims.begin() + p * stride);

    // The row is sorted by descending sharing depth, so same-node
    // victims (sharing depth >= the NUMA level) form its prefix.
    if (numa_depth < 0) {
      table.local_end[p] = stride;  // no NUMA level: everything is local
    } else {
      std::size_t local = 0;
      for (int v : order) {
        if (t.sharing_depth(static_cast<int>(p), v) < numa_depth) break;
        ++local;
      }
      table.local_end[p] = local;
    }
  }
  return table;
}

}  // namespace orwl::topo
