#include "topo/membind.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <utility>

#include "support/env.hpp"

#if defined(__linux__)
#include <dirent.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif
#include <unistd.h>

// The NUMA syscalls are used raw (no libnuma dependency): the syscall
// numbers come from <sys/syscall.h> and the few policy constants we need
// are fixed ABI values (see linux/mempolicy.h).
#if defined(__linux__) && defined(SYS_mbind) && defined(SYS_move_pages) && \
    defined(SYS_get_mempolicy)
#define ORWL_HAVE_NUMA_SYSCALLS 1
#endif

namespace orwl::topo {

namespace {

#if defined(ORWL_HAVE_NUMA_SYSCALLS)
constexpr int kMpolBind = 2;           // MPOL_BIND
constexpr unsigned kMpolMfMove = 0x2;  // MPOL_MF_MOVE
constexpr std::size_t kMovePagesChunk = 16384;  // pages per syscall
#endif

/// ORWL_MEMBIND=emulate forces the portable fallback. Read per call (not
/// cached) so tests can toggle it with ScopedEnv.
enum class MemBindMode { Native, Emulate, Invalid };

MemBindMode membind_mode() noexcept {
  const auto v = support::env_string(kMemBindEnvVar);
  if (!v || v->empty() || support::iequals(*v, "auto")) {
    return MemBindMode::Native;
  }
  if (support::iequals(*v, "emulate")) return MemBindMode::Emulate;
  return MemBindMode::Invalid;
}

/// True when the syscall lane must be skipped. noexcept callers (migrate,
/// residency queries) route garbage to the safe emulate lane; the throwing
/// validation lives on the allocate path, which every buffer passes first.
bool force_emulation() noexcept {
  return membind_mode() != MemBindMode::Native;
}

/// Allocate-path variant: rejects a malformed ORWL_MEMBIND loudly.
bool force_emulation_checked() {
  const auto v = support::env_string(kMemBindEnvVar);
  if (membind_mode() == MemBindMode::Invalid) {
    support::throw_bad_env(kMemBindEnvVar, *v, "auto or emulate");
  }
  return force_emulation();
}

std::size_t round_to_pages(std::size_t bytes) {
  const std::size_t page = MemBind::page_size();
  return (bytes + page - 1) / page * page;
}

#if defined(__linux__)
/// Host node ids present under /sys/devices/system/node (scanned once).
const std::vector<bool>& host_node_table() {
  static const std::vector<bool> table = [] {
    std::vector<bool> nodes;
    if (DIR* dir = opendir("/sys/devices/system/node")) {
      while (const dirent* e = readdir(dir)) {
        if (std::strncmp(e->d_name, "node", 4) != 0) continue;
        char* end = nullptr;
        const long id = std::strtol(e->d_name + 4, &end, 10);
        if (end == e->d_name + 4 || *end != '\0' || id < 0) continue;
        if (static_cast<std::size_t>(id) >= nodes.size()) {
          nodes.resize(static_cast<std::size_t>(id) + 1, false);
        }
        nodes[static_cast<std::size_t>(id)] = true;
      }
      closedir(dir);
    }
    if (nodes.empty()) nodes.assign(1, true);  // NUMA-less: just node 0
    return nodes;
  }();
  return table;
}
#endif  // __linux__

/// True when `node` names a real NUMA node of the host.
bool host_has_node(int node) noexcept {
#if defined(__linux__)
  const auto& table = host_node_table();
  return node >= 0 && static_cast<std::size_t>(node) < table.size() &&
         table[static_cast<std::size_t>(node)];
#else
  return node == 0;
#endif
}

/// Compile-time presence + one runtime probe of the NUMA syscalls
/// (sandboxes commonly deny them with EPERM, which must look like
/// "unavailable", not like an error).
bool syscalls_usable() noexcept {
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
  static const bool usable = [] {
    errno = 0;
    const long r = syscall(SYS_get_mempolicy, nullptr, nullptr, 0UL,
                           nullptr, 0UL);
    if (r == 0) return true;
    return errno != ENOSYS && errno != EPERM;
  }();
  return usable;
#else
  return false;
#endif
}

#if defined(ORWL_HAVE_NUMA_SYSCALLS)
/// mbind() the whole mapping to one node. Single-word nodemask: nodes
/// >= 64 are out of scope for a reproduction (the paper's machines top
/// out at 20) and fall back to tag-only binding at the call sites.
bool bind_mapping(void* ptr, std::size_t len, int node) noexcept {
  if (node < 0 || node >= static_cast<int>(8 * sizeof(unsigned long))) {
    return false;
  }
  const unsigned long mask = 1UL << node;
  // maxnode is number-of-bits + 1 (the libnuma convention): the kernel
  // internally truncates to maxnode - 1 bits, so passing exactly 64
  // would make bit 63 unreachable.
  return syscall(SYS_mbind, ptr, len, kMpolBind, &mask,
                 8 * sizeof(unsigned long) + 1, kMpolMfMove) == 0;
}

/// Drop the mapping's node policy (back to first-touch MPOL_DEFAULT), so
/// pages faulted after an unbind are no longer forced to the old node.
void unbind_mapping(void* ptr, std::size_t len) noexcept {
  syscall(SYS_mbind, ptr, len, 0 /* MPOL_DEFAULT */, nullptr, 0UL, 0U);
}

/// move_pages() the whole mapping to one node, chunked. Success requires
/// every resident page to land on the node: a 0 return from the syscall
/// still reports per-page failures (-EBUSY pinned pages, -ENOMEM full
/// target node) in `status`, and claiming success on those would make
/// the adaptive policy stop retrying while the data is still remote.
/// Not-yet-faulted pages (-ENOENT) are fine — the trailing mbind makes
/// them fault on the target node.
bool move_mapping(void* ptr, std::size_t len, int node) noexcept {
  const std::size_t page = MemBind::page_size();
  const std::size_t npages = len / page;
  std::vector<void*> pages;
  std::vector<int> nodes;
  std::vector<int> status;
  bool all_moved = true;
  for (std::size_t first = 0; first < npages; first += kMovePagesChunk) {
    const std::size_t count = std::min(kMovePagesChunk, npages - first);
    pages.resize(count);
    nodes.assign(count, node);
    status.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      pages[i] = static_cast<std::byte*>(ptr) + (first + i) * page;
    }
    if (syscall(SYS_move_pages, 0, static_cast<unsigned long>(count),
                pages.data(), nodes.data(), status.data(),
                kMpolMfMove) < 0) {
      return false;
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (status[i] < 0 && status[i] != -ENOENT) all_moved = false;
    }
  }
  // Make sure pages faulted in *after* the move also land on `node` —
  // but only when the move actually succeeded: re-pointing the policy on
  // a partial failure would force future faults to a node the caller is
  // told the area is *not* bound to.
  if (all_moved) bind_mapping(ptr, len, node);
  return all_moved;
}
#endif  // ORWL_HAVE_NUMA_SYSCALLS

}  // namespace

MemBind::~MemBind() { reset(); }

MemBind::MemBind(MemBind&& other) noexcept
    : ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      cap_(std::exchange(other.cap_, 0)),
      mapped_(std::exchange(other.mapped_, 0)),
      node_(std::exchange(other.node_, kAnyNode)),
      real_bind_(std::exchange(other.real_bind_, false)),
      huge_(std::exchange(other.huge_, false)) {}

MemBind& MemBind::operator=(MemBind&& other) noexcept {
  if (this != &other) {
    reset();
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    cap_ = std::exchange(other.cap_, 0);
    mapped_ = std::exchange(other.mapped_, 0);
    node_ = std::exchange(other.node_, kAnyNode);
    real_bind_ = std::exchange(other.real_bind_, false);
    huge_ = std::exchange(other.huge_, false);
  }
  return *this;
}

void MemBind::reset() noexcept {
  if (ptr_ != nullptr) {
#if defined(__linux__)
    if (mapped_ != 0) {
      munmap(ptr_, mapped_);
    } else {
      delete[] ptr_;
    }
#else
    delete[] ptr_;
#endif
  }
  ptr_ = nullptr;
  bytes_ = 0;
  cap_ = 0;
  mapped_ = 0;
  node_ = kAnyNode;
  real_bind_ = false;
  huge_ = false;
}

bool MemBind::try_resize(std::size_t bytes) noexcept {
  if (empty() || bytes == 0 || bytes > cap_) return false;
  bytes_ = bytes;
  return true;
}

MemBind MemBind::allocate(std::size_t bytes, int node, bool huge) {
  MemBind m;
  m.node_ = node;
  if (bytes == 0) return m;

#if defined(__linux__)
  if (!force_emulation_checked()) {
#if defined(MAP_HUGETLB)
    // Huge-page lane: reservation happens at mmap time for anonymous
    // hugetlb mappings (no MAP_NORESERVE), so an exhausted pool fails
    // here with ENOMEM instead of SIGBUS-ing at first touch — which is
    // what makes the fallback below transparent.
    const std::size_t hps = huge_page_size();
    if (huge && hps > 0 && bytes >= hps) {
      const std::size_t len = (bytes + hps - 1) / hps * hps;
      void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (p != MAP_FAILED) {
        m.ptr_ = static_cast<std::byte*>(p);
        m.bytes_ = bytes;
        m.cap_ = len;
        m.mapped_ = len;
        m.huge_ = true;
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
        if (node >= 0 && syscalls_usable() && host_has_node(node)) {
          m.real_bind_ = bind_mapping(p, len, node);
        }
#endif
        return m;
      }
    }
#else
    (void)huge;
#endif  // MAP_HUGETLB
    const std::size_t len = round_to_pages(bytes);
    void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      m.ptr_ = static_cast<std::byte*>(p);
      m.bytes_ = bytes;
      m.cap_ = len;
      m.mapped_ = len;
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
      if (node >= 0 && syscalls_usable() && host_has_node(node)) {
        m.real_bind_ = bind_mapping(p, len, node);
      }
#endif
      return m;
    }
  }
#else
  (void)huge;
#endif  // __linux__

  // Portable heap fallback: zero-initialized, binding stays tag-only.
  m.ptr_ = new std::byte[bytes]();
  m.bytes_ = bytes;
  m.cap_ = bytes;
  return m;
}

bool MemBind::migrate_to(int node) noexcept {
  if (node < 0) {
    // Clearing the binding: also drop the kernel policy, or pages faulted
    // later would still be forced to the old node.
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
    if (!empty() && mapped_ != 0 && real_bind_) {
      unbind_mapping(ptr_, mapped_);
    }
#endif
    node_ = node;
    real_bind_ = false;
    return true;
  }
  if (empty()) {
    node_ = node;
    real_bind_ = false;
    return true;
  }
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
  if (mapped_ != 0 && !force_emulation() && syscalls_usable() &&
      host_has_node(node)) {
    // hugetlb mappings migrate through mbind(MPOL_MF_MOVE): move_pages
    // operates on base-page addresses and cannot split a huge page.
    const bool moved = huge_ ? bind_mapping(ptr_, mapped_, node)
                             : move_mapping(ptr_, mapped_, node);
    if (!moved) {
      // Keep the previous binding state: callers observe the failure and
      // can retry on the next grant instead of believing a wrong tag.
      return false;
    }
    node_ = node;
    real_bind_ = true;
    return true;
  }
#endif
  node_ = node;
  real_bind_ = false;
  return true;  // recorded tag-only (fixture node / fallback storage)
}

std::vector<int> MemBind::page_nodes() const {
  if (empty()) return {};
  const std::size_t npages = round_to_pages(bytes_) / page_size();
#if defined(ORWL_HAVE_NUMA_SYSCALLS)
  // A tag-only binding (fixture node, denied syscalls) answers with the
  // intent: that is the portability contract. Physical queries are for
  // really-bound or unbound mappings — and for base pages only: a
  // move_pages status query walks 4K strides, which hugetlb mappings
  // reject, so bound huge mappings also answer with the intent.
  const bool tag_only = node_ >= 0 && (!real_bind_ || huge_);
  if (!tag_only && mapped_ != 0 && !force_emulation() && syscalls_usable()) {
    // Chunked like move_mapping: a paper-scale buffer has millions of
    // pages, and one giant query would build equally giant arrays and
    // hand them to the kernel in a single copy.
    std::vector<int> result(npages, 0);
    std::vector<void*> pages;
    bool ok = true;
    for (std::size_t first = 0; ok && first < npages;
         first += kMovePagesChunk) {
      const std::size_t count = std::min(kMovePagesChunk, npages - first);
      pages.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        pages[i] = ptr_ + (first + i) * page_size();
      }
      ok = syscall(SYS_move_pages, 0, static_cast<unsigned long>(count),
                   pages.data(), nullptr, result.data() + first, 0) == 0;
    }
    if (ok) {
      // Pages not faulted in yet report a negative status; they will be
      // allocated under the bound policy, so count them as the intent.
      for (int& s : result) {
        if (s < 0) s = node_;
      }
      return result;
    }
  }
#endif
  return std::vector<int>(npages, node_);
}

int MemBind::resident_node() const {
  const std::vector<int> nodes = page_nodes();
  if (nodes.empty()) return kAnyNode;
  std::map<int, std::size_t> counts;
  for (int n : nodes) ++counts[n];
  int best = kAnyNode;
  std::size_t best_count = 0;
  for (const auto& [n, c] : counts) {
    if (c > best_count) {
      best = n;
      best_count = c;
    }
  }
  return best;
}

bool MemBind::numa_syscalls_available() noexcept {
  return syscalls_usable() && !force_emulation();
}

int MemBind::host_node_count() noexcept {
#if defined(__linux__)
  const auto& table = host_node_table();
  const int present =
      static_cast<int>(std::count(table.begin(), table.end(), true));
  return present > 0 ? present : 1;
#else
  return 1;
#endif
}

std::vector<int> MemBind::host_node_ids() {
  std::vector<int> ids;
#if defined(__linux__)
  const auto& table = host_node_table();
  for (std::size_t node = 0; node < table.size(); ++node) {
    if (table[node]) ids.push_back(static_cast<int>(node));
  }
#endif
  if (ids.empty()) ids.push_back(0);
  return ids;
}

int MemBind::node_of_cpu(int cpu) noexcept {
#if defined(__linux__)
  if (cpu < 0) return -1;
  const auto& table = host_node_table();
  for (std::size_t node = 0; node < table.size(); ++node) {
    if (!table[node]) continue;
    char path[64];
    std::snprintf(path, sizeof path, "/sys/devices/system/node/node%zu/cpu%d",
                  node, cpu);
    if (access(path, F_OK) == 0) return static_cast<int>(node);
  }
  return -1;
#else
  (void)cpu;
  return -1;
#endif
}

std::size_t MemBind::page_size() noexcept {
  static const std::size_t page = [] {
    const long p = sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : std::size_t{4096};
  }();
  return page;
}

std::size_t MemBind::huge_page_size() noexcept {
#if defined(__linux__)
  static const std::size_t size = [] () -> std::size_t {
    std::FILE* f = std::fopen("/proc/meminfo", "r");
    if (f == nullptr) return 0;
    char line[128];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "Hugepagesize: %zu kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb * 1024;
  }();
  return size;
#else
  return 0;
#endif
}

int numa_node_of_pu(const Topology& t, int pu_os_index) noexcept {
  if (t.empty()) return -1;
  const Object* pu = t.pu_by_os_index(pu_os_index);
  if (pu == nullptr) return -1;
  const Object* node = pu->ancestor_of_type(ObjType::NumaNode);
  if (node == nullptr) return -1;
  // Detected host topologies carry the real OS node id (what mbind
  // expects — node ids can be sparse after offlining); synthetic
  // fixtures leave os_index at -1 and use the logical numbering.
  return node->os_index >= 0 ? node->os_index : node->logical_index;
}

void NumaBuffer::resize(std::size_t bytes) {
  std::lock_guard lock(mu_);
  if (bytes == 0) {
    mem_.reset();
    data_.store(nullptr, std::memory_order_release);
    size_.store(0, std::memory_order_release);
    return;
  }
  const int node = node_.load(std::memory_order_relaxed);
  if (!mem_.empty() && mem_.bound_node() == node &&
      alloc_huge_ == huge_req_ && mem_.try_resize(bytes)) {
    // Reuse in place (fits the page-rounded capacity and the huge-page
    // request has not changed): re-zero the used prefix, publish the new
    // size.
    std::memset(mem_.data(), 0, bytes);
  } else {
    mem_ = MemBind::allocate(bytes, node, huge_req_);
    alloc_huge_ = huge_req_;
  }
  data_.store(mem_.data(), std::memory_order_release);
  size_.store(bytes, std::memory_order_release);
}

void NumaBuffer::set_huge_pages(bool on) {
  std::lock_guard lock(mu_);
  huge_req_ = on;
}

bool NumaBuffer::huge_pages() const {
  std::lock_guard lock(mu_);
  return mem_.huge_pages();
}

void NumaBuffer::reset() noexcept {
  std::lock_guard lock(mu_);
  mem_.reset();
  data_.store(nullptr, std::memory_order_release);
  size_.store(0, std::memory_order_release);
}

bool NumaBuffer::bind_to(int node) {
  std::lock_guard lock(mu_);
  if (node_.load(std::memory_order_relaxed) == node) return false;
  if (!mem_.empty()) {
    // A failed physical migration leaves the binding unchanged, so the
    // next grant-time attempt retries instead of trusting a wrong tag.
    if (!mem_.migrate_to(node)) return false;
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }
  node_.store(node, std::memory_order_release);
  return true;
}

int NumaBuffer::resident_node() const {
  std::lock_guard lock(mu_);
  if (mem_.empty()) return node_.load(std::memory_order_relaxed);
  return mem_.resident_node();
}

bool NumaBuffer::emulated() const {
  std::lock_guard lock(mu_);
  return mem_.emulated();
}

}  // namespace orwl::topo
