#include "topo/shard.hpp"

#include <algorithm>

namespace orwl::topo {

int ShardMap::shard_of(int pu_os_index) const noexcept {
  if (pu_os_index < 0 ||
      static_cast<std::size_t>(pu_os_index) >= shard_of_pu_os.size()) {
    return -1;
  }
  return shard_of_pu_os[static_cast<std::size_t>(pu_os_index)];
}

std::size_t recommended_shard_count(const Topology& t) noexcept {
  if (t.empty()) return 1;
  for (ObjType domain :
       {ObjType::NumaNode, ObjType::Package, ObjType::Group}) {
    const int d = t.depth_of_type(domain);
    if (d >= 0 && t.at_depth(d).size() > 1) return t.at_depth(d).size();
  }
  return 1;
}

ShardMap make_shard_map(const Topology& t, std::size_t num_shards) {
  ShardMap map;
  if (t.empty()) return map;
  const std::size_t npus = t.num_pus();
  map.num_shards = std::clamp<std::size_t>(num_shards, 1, npus);

  // Size the os-index table to the largest PU os index.
  int max_os = -1;
  for (const Object* pu : t.pus()) max_os = std::max(max_os, pu->os_index);
  map.shard_of_pu_os.assign(static_cast<std::size_t>(max_os + 1), -1);

  // Shallowest level with enough objects to carve num_shards subtrees.
  int part_depth = t.depth() - 1;  // PU level always qualifies (clamped)
  for (int d = 0; d < t.depth(); ++d) {
    if (t.at_depth(d).size() >= map.num_shards) {
      part_depth = d;
      break;
    }
  }

  const auto objs = t.at_depth(part_depth);
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const int shard =
        static_cast<int>(i * map.num_shards / objs.size());
    for (int pu = objs[i]->first_pu; pu <= objs[i]->last_pu; ++pu) {
      const Object* leaf = t.pu_at(pu);
      if (leaf != nullptr && leaf->os_index >= 0) {
        map.shard_of_pu_os[static_cast<std::size_t>(leaf->os_index)] = shard;
      }
    }
  }
  return map;
}

}  // namespace orwl::topo
