#include "topo/shard.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace orwl::topo {

int ShardMap::shard_of(int pu_os_index) const noexcept {
  if (pu_os_index < 0 ||
      static_cast<std::size_t>(pu_os_index) >= shard_of_pu_os.size()) {
    return -1;
  }
  return shard_of_pu_os[static_cast<std::size_t>(pu_os_index)];
}

std::size_t recommended_shard_count(const Topology& t) noexcept {
  if (t.empty()) return 1;
  for (ObjType domain :
       {ObjType::NumaNode, ObjType::Package, ObjType::Group}) {
    const int d = t.depth_of_type(domain);
    if (d >= 0 && t.at_depth(d).size() > 1) return t.at_depth(d).size();
  }
  return 1;
}

ShardMap make_shard_map(const Topology& t, std::size_t num_shards) {
  ShardMap map;
  if (t.empty()) return map;
  const std::size_t npus = t.num_pus();
  map.num_shards = std::clamp<std::size_t>(num_shards, 1, npus);

  // Size the os-index table to the largest PU os index.
  int max_os = -1;
  for (const Object* pu : t.pus()) max_os = std::max(max_os, pu->os_index);
  map.shard_of_pu_os.assign(static_cast<std::size_t>(max_os + 1), -1);

  // Shallowest level with enough objects to carve num_shards subtrees.
  int part_depth = t.depth() - 1;  // PU level always qualifies (clamped)
  for (int d = 0; d < t.depth(); ++d) {
    if (t.at_depth(d).size() >= map.num_shards) {
      part_depth = d;
      break;
    }
  }

  const auto objs = t.at_depth(part_depth);
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const int shard =
        static_cast<int>(i * map.num_shards / objs.size());
    for (int pu = objs[i]->first_pu; pu <= objs[i]->last_pu; ++pu) {
      const Object* leaf = t.pu_at(pu);
      if (leaf != nullptr && leaf->os_index >= 0) {
        map.shard_of_pu_os[static_cast<std::size_t>(leaf->os_index)] = shard;
      }
    }
  }
  return map;
}

namespace {

/// All of the subtree's PUs are outside `taken`.
bool subtree_free(const Topology& t, const Object& obj, const CpuSet& taken) {
  for (int pu = obj.first_pu; pu <= obj.last_pu; ++pu) {
    const Object* leaf = t.pu_at(pu);
    if (leaf == nullptr || leaf->os_index < 0) return false;
    if (taken.test(leaf->os_index)) return false;
  }
  return obj.pu_count() > 0;
}

CpuSet subtree_pus(const Topology& t, const Object& obj) {
  CpuSet set;
  for (int pu = obj.first_pu; pu <= obj.last_pu; ++pu) {
    const Object* leaf = t.pu_at(pu);
    if (leaf != nullptr && leaf->os_index >= 0) set.set(leaf->os_index);
  }
  return set;
}

}  // namespace

std::optional<Carveout> carve_subtrees(const Topology& t, std::size_t width,
                                       const CpuSet& taken) {
  if (t.empty() || width == 0 || width > t.num_pus()) return std::nullopt;
  for (int d = 0; d < t.depth(); ++d) {
    const auto objs = t.at_depth(d);
    // A depth is too coarse when a single subtree there already exceeds
    // the request: carving it would hand the tenant a whole domain of
    // PUs it never asked for. Descend until whole subtrees fit.
    bool too_coarse = false;
    for (const Object* o : objs) {
      if (static_cast<std::size_t>(o->pu_count()) > width) {
        too_coarse = true;
        break;
      }
    }
    if (too_coarse) continue;
    // First-fit scan for a run of consecutive fully-free subtrees
    // covering the width.
    std::size_t run_start = 0;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < objs.size(); ++i) {
      if (!subtree_free(t, *objs[i], taken)) {
        run_start = i + 1;
        covered = 0;
        continue;
      }
      covered += static_cast<std::size_t>(objs[i]->pu_count());
      if (covered >= width) {
        Carveout c;
        c.depth = d;
        c.first_obj = run_start;
        c.num_objs = i - run_start + 1;
        c.width = covered;
        for (std::size_t k = run_start; k <= i; ++k) {
          c.pus = c.pus | subtree_pus(t, *objs[k]);
        }
        return c;
      }
    }
    // Fragmented at this granularity: finer subtrees may still fit.
  }
  return std::nullopt;
}

namespace {

/// Deep-copy `src` keeping only subtrees that still contain a selected
/// PU; returns null when the whole subtree is dropped.
std::unique_ptr<Object> prune_copy(const Object& src, const CpuSet& pus) {
  if (src.type == ObjType::PU) {
    if (src.os_index < 0 || !pus.test(src.os_index)) return nullptr;
  }
  auto copy = std::make_unique<Object>();
  copy->type = src.type;
  copy->os_index = src.os_index;
  copy->attr_size = src.attr_size;
  copy->name = src.name;
  for (const auto& child : src.children) {
    if (auto kept = prune_copy(*child, pus)) {
      kept->parent = copy.get();
      copy->children.push_back(std::move(kept));
    }
  }
  if (src.type != ObjType::PU && copy->children.empty()) return nullptr;
  return copy;
}

}  // namespace

Topology subtopology(const Topology& t, const CpuSet& pus,
                     std::string name) {
  if (t.empty()) {
    throw std::invalid_argument("subtopology: empty source topology");
  }
  auto root = prune_copy(t.root(), pus);
  if (root == nullptr) {
    throw std::invalid_argument(
        "subtopology: cpuset selects no PU of the source topology");
  }
  return Topology::adopt(std::move(root), std::move(name));
}

}  // namespace orwl::topo
