#include "topo/serialize.hpp"

#include <charconv>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace orwl::topo {

namespace {

const char* type_token(ObjType t) {
  switch (t) {
    case ObjType::Machine: return "machine";
    case ObjType::Group: return "Group";
    case ObjType::NumaNode: return "NUMANode";
    case ObjType::Package: return "Package";
    case ObjType::L3: return "L3";
    case ObjType::L2: return "L2";
    case ObjType::L1: return "L1";
    case ObjType::Core: return "Core";
    case ObjType::PU: return "PU";
  }
  return "?";
}

bool type_from_token(std::string_view s, ObjType& out) {
  for (ObjType t : {ObjType::Machine, ObjType::Group, ObjType::NumaNode,
                    ObjType::Package, ObjType::L3, ObjType::L2, ObjType::L1,
                    ObjType::Core, ObjType::PU}) {
    if (s == type_token(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

void serialize_rec(const Object& o, int depth, std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ')
      << type_token(o.type);
  if (o.os_index >= 0) out << " os=" << o.os_index;
  if (o.attr_size != 0) out << " size=" << o.attr_size;
  if (!o.name.empty()) out << " name=\"" << o.name << '"';
  out << '\n';
  for (const auto& c : o.children) serialize_rec(*c, depth + 1, out);
}

struct Line {
  int depth;
  ObjType type;
  int os_index = -1;
  std::size_t size = 0;
  std::string name;
};

Line parse_line(std::string_view line, std::size_t lineno) {
  auto fail = [&](const std::string& why) -> Line {
    throw std::invalid_argument("parse_topology: line " +
                                std::to_string(lineno) + ": " + why);
  };

  std::size_t indent = 0;
  while (indent < line.size() && line[indent] == ' ') ++indent;
  if (indent % 2 != 0) return fail("odd indentation");
  Line out;
  out.depth = static_cast<int>(indent / 2);

  std::string_view rest = line.substr(indent);
  const std::size_t sp = rest.find(' ');
  const std::string_view type_str =
      sp == std::string_view::npos ? rest : rest.substr(0, sp);
  if (!type_from_token(type_str, out.type)) {
    return fail("unknown object type '" + std::string(type_str) + "'");
  }
  rest = sp == std::string_view::npos ? std::string_view{}
                                      : rest.substr(sp + 1);

  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) break;
    const std::size_t eq = rest.find('=');
    if (eq == std::string_view::npos) return fail("attribute without '='");
    const std::string_view key = rest.substr(0, eq);
    rest.remove_prefix(eq + 1);
    if (key == "name") {
      if (rest.empty() || rest.front() != '"') {
        return fail("name attribute must be quoted");
      }
      rest.remove_prefix(1);
      const std::size_t close = rest.find('"');
      if (close == std::string_view::npos) return fail("unterminated name");
      out.name = std::string(rest.substr(0, close));
      rest.remove_prefix(close + 1);
      continue;
    }
    // Numeric attributes.
    const std::size_t end = rest.find(' ');
    const std::string_view value =
        end == std::string_view::npos ? rest : rest.substr(0, end);
    long long parsed = 0;
    const auto res =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
      return fail("bad numeric attribute value '" + std::string(value) +
                  "'");
    }
    if (key == "os") {
      out.os_index = static_cast<int>(parsed);
    } else if (key == "size") {
      if (parsed < 0) return fail("negative size");
      out.size = static_cast<std::size_t>(parsed);
    } else {
      return fail("unknown attribute '" + std::string(key) + "'");
    }
    rest = end == std::string_view::npos ? std::string_view{}
                                         : rest.substr(end);
  }
  return out;
}

}  // namespace

std::string serialize(const Topology& t) {
  std::ostringstream out;
  if (t.empty()) return "";
  const Object& root = t.root();
  out << type_token(root.type);
  if (!t.name().empty()) out << " name=\"" << t.name() << '"';
  out << '\n';
  for (const auto& c : root.children) serialize_rec(*c, 1, out);
  return out.str();
}

Topology parse_topology(std::string_view text) {
  std::unique_ptr<Object> root;
  std::vector<Object*> stack;  // stack[d] = last object at depth d
  std::string machine_name = "parsed";

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    const Line l = parse_line(line, lineno);
    if (root == nullptr) {
      if (l.depth != 0 || l.type != ObjType::Machine) {
        throw std::invalid_argument(
            "parse_topology: first object must be an unindented machine");
      }
      root = std::make_unique<Object>();
      root->type = ObjType::Machine;
      machine_name = l.name.empty() ? "parsed" : l.name;
      stack.assign(1, root.get());
      continue;
    }
    if (l.depth < 1 || static_cast<std::size_t>(l.depth) > stack.size()) {
      throw std::invalid_argument("parse_topology: line " +
                                  std::to_string(lineno) +
                                  ": bad indentation jump");
    }
    Object* parent = stack[static_cast<std::size_t>(l.depth) - 1];
    Object& child = parent->add_child(l.type);
    child.os_index = l.os_index;
    child.attr_size = l.size;
    child.name = l.name;
    stack.resize(static_cast<std::size_t>(l.depth));
    stack.push_back(&child);
  }
  if (root == nullptr) {
    throw std::invalid_argument("parse_topology: empty input");
  }
  return Topology::adopt(std::move(root), machine_name);
}

std::vector<int> distance_matrix(const Topology& t) {
  const std::size_t n = t.num_pus();
  std::vector<int> m(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const int d = t.distance(static_cast<int>(i), static_cast<int>(j));
      m[i * n + j] = d;
      m[j * n + i] = d;
    }
  }
  return m;
}

}  // namespace orwl::topo
