#include "topo/machines.hpp"

#include <charconv>
#include <functional>
#include <stdexcept>
#include <vector>

#include "support/env.hpp"

namespace orwl::topo {

namespace {

constexpr std::size_t kKiB = 1024;

// Split "flat:8" / "numa:2:4:1" into its ':'-separated fields.
std::vector<std::string> split_fields(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    out.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return out;
}

std::optional<int> parse_positive(const std::string& s) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value <= 0) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

Topology make_smp12e5() {
  return Topology::build(
      {
          {ObjType::NumaNode, 12},
          {ObjType::Package, 1},
          {ObjType::L3, 1, 20480 * kKiB},
          {ObjType::L2, 8, 256 * kKiB},
          {ObjType::L1, 1, 32 * kKiB},
          {ObjType::Core, 1},
          {ObjType::PU, 2},
      },
      "SMP12E5");
}

Topology make_smp20e7() {
  return Topology::build(
      {
          {ObjType::NumaNode, 20},
          {ObjType::Package, 1},
          {ObjType::L3, 1, 24576 * kKiB},
          {ObjType::L2, 8, 32 * kKiB},
          {ObjType::L1, 1, 32 * kKiB},
          {ObjType::Core, 1},
          {ObjType::PU, 1},
      },
      "SMP20E7");
}

Topology make_fig2_machine() {
  // Built by hand (rather than via LevelSpecs) to carry the display names
  // used in the paper's figure: "Blade 0/1", "Socket 0..3".
  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;
  int cpu = 0;
  for (int b = 0; b < 2; ++b) {
    Object& blade = root->add_child(ObjType::Group);
    blade.name = "Blade " + std::to_string(b);
    for (int s = 0; s < 2; ++s) {
      Object& pkg = blade.add_child(ObjType::Package);
      pkg.name = "Socket " + std::to_string(b * 2 + s);
      Object& l3 = pkg.add_child(ObjType::L3);
      l3.attr_size = 20480 * kKiB;
      for (int c = 0; c < 8; ++c) {
        Object& l2 = l3.add_child(ObjType::L2);
        l2.attr_size = 256 * kKiB;
        Object& l1 = l2.add_child(ObjType::L1);
        l1.attr_size = 32 * kKiB;
        Object& core = l1.add_child(ObjType::Core);
        Object& pu = core.add_child(ObjType::PU);
        pu.os_index = cpu++;
      }
    }
  }
  return Topology::adopt(std::move(root), "Fig2-4socket");
}

Topology make_flat(int n) {
  return Topology::build(
      {
          {ObjType::Core, n},
          {ObjType::PU, 1},
      },
      "flat-" + std::to_string(n));
}

Topology make_numa(int numa_nodes, int cores_per_node, int pus_per_core,
                   std::size_t l3_bytes) {
  return Topology::build(
      {
          {ObjType::NumaNode, numa_nodes},
          {ObjType::L3, 1, l3_bytes},
          {ObjType::Core, cores_per_node},
          {ObjType::PU, pus_per_core},
      },
      "numa-" + std::to_string(numa_nodes) + "x" +
          std::to_string(cores_per_node) + "x" + std::to_string(pus_per_core));
}

Topology make_cluster(const std::vector<Topology>& hosts) {
  if (hosts.empty()) {
    throw std::invalid_argument("make_cluster: no hosts");
  }
  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;
  int next_pu_os = 0;
  std::function<std::unique_ptr<Object>(const Object&)> copy =
      [&](const Object& src) {
        auto dst = std::make_unique<Object>();
        dst->type = src.type;
        dst->os_index = src.type == ObjType::PU ? next_pu_os++ : src.os_index;
        dst->attr_size = src.attr_size;
        dst->name = src.name;
        for (const auto& c : src.children) {
          auto child = copy(*c);
          child->parent = dst.get();
          dst->children.push_back(std::move(child));
        }
        return dst;
      };
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    auto sub = copy(hosts[h].root());
    // The grafted host root becomes a Group: only the synthetic cluster
    // root is a Machine, and every inter-host path crosses it.
    sub->type = ObjType::Group;
    sub->name = "host " + std::to_string(h);
    sub->parent = root.get();
    root->children.push_back(std::move(sub));
  }
  return Topology::adopt(std::move(root),
                         "cluster-" + std::to_string(hosts.size()) + "x" +
                             hosts.front().name());
}

std::optional<Topology> make_named(const std::string& spec) {
  using support::iequals;
  const std::vector<std::string> fields = split_fields(spec);
  if (fields.empty() || fields[0].empty()) return std::nullopt;
  const std::string& kind = fields[0];
  if (fields.size() == 1) {
    if (iequals(kind, "smp12e5")) return make_smp12e5();
    if (iequals(kind, "smp20e7")) return make_smp20e7();
    if (iequals(kind, "fig2")) return make_fig2_machine();
    return std::nullopt;
  }
  if (iequals(kind, "flat") && fields.size() == 2) {
    if (const auto n = parse_positive(fields[1])) return make_flat(*n);
    return std::nullopt;
  }
  if (iequals(kind, "numa") && fields.size() == 4) {
    const auto nodes = parse_positive(fields[1]);
    const auto cores = parse_positive(fields[2]);
    const auto pus = parse_positive(fields[3]);
    if (nodes && cores && pus) return make_numa(*nodes, *cores, *pus);
    return std::nullopt;
  }
  if (iequals(kind, "cluster") && fields.size() >= 3) {
    const auto n = parse_positive(fields[1]);
    if (!n) return std::nullopt;
    // Everything after the host count is the per-host spec, recursively.
    std::string base = fields[2];
    for (std::size_t i = 3; i < fields.size(); ++i) base += ":" + fields[i];
    auto host = make_named(base);
    if (!host) return std::nullopt;
    std::vector<Topology> hosts;
    hosts.reserve(static_cast<std::size_t>(*n));
    for (int i = 0; i < *n; ++i) hosts.push_back(host->clone());
    return make_cluster(hosts);
  }
  return std::nullopt;
}

}  // namespace orwl::topo
