#include "topo/detect.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <tuple>

#include "support/env.hpp"
#include "topo/binding.hpp"
#include "topo/cpuset.hpp"
#include "topo/machines.hpp"

namespace orwl::topo {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_file_trimmed(const fs::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  std::string s;
  std::getline(in, s);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' ')) {
    s.pop_back();
  }
  return s;
}

std::optional<int> read_int(const fs::path& p) {
  const auto s = read_file_trimmed(p);
  if (!s || s->empty()) return std::nullopt;
  try {
    return std::stoi(*s);
  } catch (...) {
    return std::nullopt;
  }
}

struct CpuInfo {
  int cpu = -1;
  int package = 0;
  int core = 0;
  int node = 0;
};

}  // namespace

Topology detect_from_sysfs(const std::string& sysfs_root, int fallback_cpus) {
  try {
    const fs::path cpu_dir = fs::path(sysfs_root) / "devices/system/cpu";
    if (!fs::exists(cpu_dir)) return make_flat(fallback_cpus);

    // Enumerate cpuN directories that expose topology data.
    std::vector<CpuInfo> cpus;
    for (const auto& entry : fs::directory_iterator(cpu_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) continue;
      if (!std::all_of(name.begin() + 3, name.end(),
                       [](char c) { return c >= '0' && c <= '9'; })) {
        continue;
      }
      const fs::path topo_dir = entry.path() / "topology";
      const auto pkg = read_int(topo_dir / "physical_package_id");
      const auto core = read_int(topo_dir / "core_id");
      if (!pkg || !core) continue;
      CpuInfo info;
      info.cpu = std::stoi(name.substr(3));
      info.package = *pkg;
      info.core = *core;
      cpus.push_back(info);
    }
    if (cpus.empty()) return make_flat(fallback_cpus);

    // NUMA membership from /sys/devices/system/node/node*/cpulist.
    const fs::path node_dir = fs::path(sysfs_root) / "devices/system/node";
    if (fs::exists(node_dir)) {
      for (const auto& entry : fs::directory_iterator(node_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 || name.compare(0, 4, "node") != 0) continue;
        if (!std::all_of(name.begin() + 4, name.end(),
                         [](char c) { return c >= '0' && c <= '9'; })) {
          continue;
        }
        const auto list = read_file_trimmed(entry.path() / "cpulist");
        if (!list || list->empty()) continue;
        CpuSet set;
        try {
          set = CpuSet::parse(*list);
        } catch (...) {
          continue;
        }
        const int node = std::stoi(name.substr(4));
        for (auto& c : cpus) {
          if (set.test(c.cpu)) c.node = node;
        }
      }
    }

    // Group PUs into (node, package, core) triples, then build the tree.
    std::map<std::tuple<int, int, int>, std::vector<int>> core_map;
    for (const auto& c : cpus) {
      core_map[{c.node, c.package, c.core}].push_back(c.cpu);
    }

    auto root = std::make_unique<Object>();
    root->type = ObjType::Machine;
    int last_node = -1;
    int last_pkg = -1;
    Object* node_obj = nullptr;
    Object* pkg_obj = nullptr;
    for (auto& [key, members] : core_map) {
      const auto [node, pkg, core_id] = key;
      if (node_obj == nullptr || node != last_node) {
        node_obj = &root->add_child(ObjType::NumaNode);
        node_obj->os_index = node;
        last_node = node;
        last_pkg = -1;
        pkg_obj = nullptr;
      }
      if (pkg_obj == nullptr || pkg != last_pkg) {
        pkg_obj = &node_obj->add_child(ObjType::Package);
        pkg_obj->os_index = pkg;
        last_pkg = pkg;
      }
      Object& core = pkg_obj->add_child(ObjType::Core);
      core.os_index = core_id;
      std::sort(members.begin(), members.end());
      for (int cpu : members) {
        Object& pu = core.add_child(ObjType::PU);
        pu.os_index = cpu;
      }
    }

    return Topology::adopt(std::move(root), "host");
  } catch (...) {
    return make_flat(fallback_cpus);
  }
}

Topology detect_host() {
  // Explicit override first: lets users and CI pin a fixture topology
  // (e.g. ORWL_TOPOLOGY=smp12e5 or ORWL_TOPOLOGY=numa:2:4:1) on hosts
  // where sysfs probing is unavailable or misleading.
  if (const auto spec = support::env_string(kTopologyEnvVar)) {
    if (!spec->empty()) {
      if (auto t = make_named(*spec)) return std::move(*t);
      support::throw_bad_env(kTopologyEnvVar, *spec,
                             "a known fixture spec (see topo::make_named)");
    }
  }
#if defined(__linux__)
  return detect_from_sysfs("/sys", host_cpu_count());
#else
  // No sysfs to probe outside Linux: fall back to the flat fixture over
  // the online CPUs (same shape detect_from_sysfs degrades to).
  return make_flat(host_cpu_count());
#endif
}

}  // namespace orwl::topo
