// Host topology detection (Linux sysfs).
//
// A best-effort replacement for hwloc's discovery: reads
// /sys/devices/system/cpu/cpu*/topology and /sys/devices/system/node to
// reconstruct the NUMA / package / core / PU tree of the machine the
// process runs on. Used by the runtime when no explicit topology is
// supplied, so that `ORWL_AFFINITY=1` works out of the box on real hosts.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace orwl::topo {

/// Detect the host machine. Never throws: on any inconsistency it falls
/// back to a flat topology over the online CPUs.
Topology detect_host();

/// Detection with an explicit sysfs root (for tests against a fake tree).
/// Falls back to make_flat(fallback_cpus) when the tree is unreadable.
Topology detect_from_sysfs(const std::string& sysfs_root, int fallback_cpus);

}  // namespace orwl::topo
