// Host topology detection (Linux sysfs).
//
// A best-effort replacement for hwloc's discovery: reads
// /sys/devices/system/cpu/cpu*/topology and /sys/devices/system/node to
// reconstruct the NUMA / package / core / PU tree of the machine the
// process runs on. Used by the runtime when no explicit topology is
// supplied, so that `ORWL_AFFINITY=1` works out of the box on real hosts.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace orwl::topo {

/// Environment variable that overrides detection with a fixture spec
/// understood by make_named() ("smp12e5", "flat:8", "numa:2:4:1", ...).
inline constexpr const char* kTopologyEnvVar = "ORWL_TOPOLOGY";

/// Detect the host machine. Honors ORWL_TOPOLOGY as a fixture override;
/// never throws: on any inconsistency (including non-Linux hosts with no
/// sysfs) it falls back to a flat fixture over the online CPUs.
/// \return A fully finalized topology; never empty.
Topology detect_host();

/// Detection with an explicit sysfs root (for tests against a fake tree).
/// \param sysfs_root    Directory standing in for /sys/devices/system.
/// \param fallback_cpus PU count of the flat fixture used when the tree
///                      is unreadable or inconsistent.
/// \return The detected (or fallback) topology; never empty.
Topology detect_from_sysfs(const std::string& sysfs_root, int fallback_cpus);

}  // namespace orwl::topo
