// Synthetic topologies of the machines used in the paper's evaluation.
//
// Table I of the paper describes the two PlaFRIM testbeds:
//
//   Name               SMP12E5            SMP20E7
//   Cores per socket   8                  8
//   NUMA nodes         12                 20
//   Socket per NUMA    1                  1
//   Socket             E5-4620            E7-8837
//   Clock rate         2600 MHz           2660 MHz
//   Hyper-Threading    Yes                No
//   L1 cache           32K                32K
//   L2 cache           256K               32K
//   L3 cache           20480K             24576K
//   Interconnect       NUMAlink6 6.5GB/s  NUMAlink5 15GB/s
//
// Fig. 2 additionally uses a 2-blade, 4-socket, 32-core machine for the
// video-tracking mapping illustration.
//
// We do not have this hardware; these builders produce topology trees with
// exactly the documented structure so that Algorithm 1 and the performance
// model operate on the machines the paper evaluated (see DESIGN.md,
// "Substitutions").
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace orwl::topo {

/// SMP12E5: 12 NUMA nodes x 1 package x 8 cores x 2 PUs = 96 cores, 192 PUs.
Topology make_smp12e5();

/// SMP20E7: 20 NUMA nodes x 1 package x 8 cores x 1 PU = 160 cores.
Topology make_smp20e7();

/// The Fig. 2 machine: 2 blades x 2 sockets x 8 cores = 32 cores, no SMT.
Topology make_fig2_machine();

/// Flat machine: `n` PUs directly below the root (one core each). Used in
/// tests and as the detection fallback.
Topology make_flat(int n);

/// Generic symmetric NUMA machine for tests and sweeps.
Topology make_numa(int numa_nodes, int cores_per_node, int pus_per_core,
                   std::size_t l3_bytes = 20u * 1024 * 1024);

/// Cluster: graft per-host trees under a synthetic Machine root, one
/// Group ("host k") per member. Every inter-host PU pair then crosses
/// the root, so the hop-distance metric that drives tree_match makes the
/// inter-host distance dominate and tasks are placed host-first; within
/// a host the per-process comm-matrix / ORWL_REPLACE machinery keeps
/// working on the grafted subtree unchanged. Hosts must share one shape
/// (the tree is level-homogeneous); PU os indices are renumbered into
/// disjoint per-host ranges. Throws std::invalid_argument when `hosts`
/// is empty.
Topology make_cluster(const std::vector<Topology>& hosts);

/// Build a fixture from a textual spec, used by detection when the host
/// cannot be probed (ORWL_TOPOLOGY env var, CI runners without /sys).
/// Accepted specs: "smp12e5", "smp20e7", "fig2", "flat:<pus>",
/// "numa:<nodes>:<cores>:<pus-per-core>", and "cluster:<hosts>:<spec>"
/// (e.g. "cluster:4:numa:2:4:1" = four such hosts under one synthetic
/// root). Case-insensitive; returns std::nullopt for anything else.
std::optional<Topology> make_named(const std::string& spec);

}  // namespace orwl::topo
