// CPU sets: the unit of thread binding.
//
// Mirrors hwloc's bitmap/cpuset abstraction: a set of OS cpu indices with
// set algebra and the "0-3,8,10-11" list syntax used across Linux tooling.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace orwl::topo {

class CpuSet {
 public:
  CpuSet() = default;
  CpuSet(std::initializer_list<int> cpus);

  static CpuSet single(int cpu);
  /// Inclusive range [first, last].
  static CpuSet range(int first, int last);
  /// Parse a Linux cpu-list string ("0-3,8,10-11"). Throws
  /// std::invalid_argument on malformed input.
  static CpuSet parse(std::string_view list);

  void set(int cpu);
  void clear(int cpu);
  void clear_all() { words_.clear(); }
  bool test(int cpu) const noexcept;

  std::size_t count() const noexcept;
  bool empty() const noexcept { return count() == 0; }

  /// Smallest / largest member; -1 when empty.
  int first() const noexcept;
  int last() const noexcept;

  CpuSet operator|(const CpuSet& o) const;
  CpuSet operator&(const CpuSet& o) const;
  /// Set difference (elements of *this not in o).
  CpuSet operator-(const CpuSet& o) const;
  bool operator==(const CpuSet& o) const noexcept;

  /// Members in ascending order.
  std::vector<int> to_vector() const;

  /// Render as a Linux cpu-list string ("0-3,8"). Empty set renders "".
  std::string to_list_string() const;

 private:
  // Bit i of words_[i/64] set <=> cpu i is a member. Trailing zero words
  // are trimmed so equal sets compare equal.
  std::vector<std::uint64_t> words_;
  void trim();
};

}  // namespace orwl::topo
