// Thread binding: the OS layer of the affinity module.
//
// The paper binds threads to cores "using HWLOC" (Sec. IV-A). On Linux the
// underlying mechanism is the affinity mask; we expose it through the
// CpuSet type. A process-wide recording mode lets tests and the simulator
// observe bindings without requiring the real machine to honor them.
#pragma once

#include <thread>

#include "topo/cpuset.hpp"

namespace orwl::topo {

/// Bind the calling thread to the given cpuset.
/// \param set Target affinity mask (OS cpu indices); must be non-empty.
/// \return true on success; false (with errno intact) when the OS
///         rejects the mask (e.g. cpus outside the machine) or the set
///         is empty. Binding is advisory everywhere in this codebase:
///         callers must tolerate false.
bool bind_current_thread(const CpuSet& set) noexcept;

/// Bind another thread by native handle.
/// \param handle pthread handle of the target thread (must be live).
/// \param set    Target affinity mask; same contract as
///               bind_current_thread().
/// \return true when the mask was applied.
bool bind_thread(std::thread::native_handle_type handle,
                 const CpuSet& set) noexcept;

/// Current affinity mask of the calling thread.
/// \return The mask, or an empty set when the platform cannot tell.
CpuSet current_thread_binding();

/// CPU the calling thread is executing on right now (sched_getcpu).
/// \return The OS cpu index, or -1 on platforms without the query.
int current_cpu() noexcept;

/// Number of online CPUs of the host (always >= 1).
int host_cpu_count() noexcept;

}  // namespace orwl::topo
