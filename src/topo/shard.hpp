// Control-plane sharding: partition the machine's PUs into locality
// shards.
//
// The runtime's sharded control plane keeps one event queue (and its
// control threads) per locality domain so that a lock hand-off is served
// by a control thread sitting close to the waiter it wakes. This header
// provides the topology side of that design: a partition of the PUs into
// `num_shards` contiguous topology subtrees, NUMA-node-aligned whenever
// the machine has NUMA nodes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/cpuset.hpp"
#include "topo/topology.hpp"

namespace orwl::topo {

/// A partition of a machine's PUs into control shards. PUs that share a
/// locality domain (NUMA node when available) share a shard, and shards
/// cover contiguous ranges of the topology's left-to-right PU order.
struct ShardMap {
  std::size_t num_shards = 1;

  /// Shard index per PU *os index* (the id used for binding); -1 for os
  /// indices that do not name a PU of the mapped machine.
  std::vector<int> shard_of_pu_os;

  /// Shard of the PU with the given os index.
  /// \param pu_os_index OS index of a PU (binding numbering).
  /// \return The shard index, or -1 when the os index is unknown
  ///         (callers fall back to a round-robin shard).
  int shard_of(int pu_os_index) const noexcept;
};

/// Natural shard count of a machine: its number of NUMA nodes, falling
/// back to packages and then groups for machines without a NUMA level.
/// Machines with no locality domain at all (flat fixtures, single-socket
/// hosts) get 1 — sharding buys nothing without distinct domains.
/// \param t The machine; an empty topology yields 1.
/// \return The recommended control-plane shard count (>= 1).
std::size_t recommended_shard_count(const Topology& t) noexcept;

/// Partition the PUs of `t` into `num_shards` shards. The partition is
/// computed on the shallowest topology level with at least `num_shards`
/// objects, assigning object i of that level to shard i*S/count, so each
/// shard is a union of whole subtrees (e.g. 20 NUMA nodes over 4 shards
/// => 5 consecutive nodes per shard).
/// \param t          The machine; an empty topology yields a
///                   single-shard map.
/// \param num_shards Desired shard count; clamped to [1, num_pus].
/// \return The PU-to-shard partition.
ShardMap make_shard_map(const Topology& t, std::size_t num_shards);

/// One tenant-sized carve-out of a machine: the ShardMap partitioning
/// rule generalized from "split everything into N shards" to "cut W PUs
/// out of whatever is still free". The carved PUs are always the union
/// of `num_objs` consecutive whole subtrees rooted at topology depth
/// `depth` — the same contiguous-subtree shape a shard has, so a tenant
/// never straddles a locality domain it does not fully own.
struct Carveout {
  /// OS indices of the carved PUs (the cpuset handed to the tenant).
  CpuSet pus;
  /// Depth of the carved subtree roots; -1 only in a default-constructed
  /// (invalid) carve-out.
  int depth = -1;
  /// Logical index of the first carved root at `depth`.
  std::size_t first_obj = 0;
  /// Number of consecutive subtree roots carved.
  std::size_t num_objs = 0;
  /// PUs actually covered; >= the requested width (whole subtrees only).
  std::size_t width = 0;
};

/// Carve `width` PUs out of the free part of `t` as a contiguous run of
/// whole subtrees, disjoint from `taken`. The carve is made at the
/// shallowest depth whose subtrees fit inside `width` (whole NUMA nodes
/// before cores before PUs — maximal locality per tenant), descending to
/// finer levels only when fragmentation leaves no coarse contiguous run.
/// First-fit in left-to-right PU order, so repeated carves pack the
/// machine front to back.
/// \param t     The machine.
/// \param width Requested PU count (> 0).
/// \param taken PU os indices already owned by other tenants.
/// \return The carve-out, or std::nullopt when no contiguous run of
///         whole free subtrees covering `width` PUs exists.
std::optional<Carveout> carve_subtrees(const Topology& t, std::size_t width,
                                       const CpuSet& taken);

/// Materialize the machine a carve-out sees: a deep copy of `t` keeping
/// only the PUs in `pus` (matched by os index) and the ancestors above
/// them. OS indices are preserved, so placements computed on the
/// sub-topology bind to the host's real PUs.
/// \param t    The full machine.
/// \param pus  PU os indices to keep; must select at least one PU of `t`.
/// \param name Display name of the sub-topology.
/// \throws std::invalid_argument when no PU of `t` is selected.
Topology subtopology(const Topology& t, const CpuSet& pus,
                     std::string name);

}  // namespace orwl::topo
