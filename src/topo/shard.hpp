// Control-plane sharding: partition the machine's PUs into locality
// shards.
//
// The runtime's sharded control plane keeps one event queue (and its
// control threads) per locality domain so that a lock hand-off is served
// by a control thread sitting close to the waiter it wakes. This header
// provides the topology side of that design: a partition of the PUs into
// `num_shards` contiguous topology subtrees, NUMA-node-aligned whenever
// the machine has NUMA nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/topology.hpp"

namespace orwl::topo {

/// A partition of a machine's PUs into control shards. PUs that share a
/// locality domain (NUMA node when available) share a shard, and shards
/// cover contiguous ranges of the topology's left-to-right PU order.
struct ShardMap {
  std::size_t num_shards = 1;

  /// Shard index per PU *os index* (the id used for binding); -1 for os
  /// indices that do not name a PU of the mapped machine.
  std::vector<int> shard_of_pu_os;

  /// Shard of the PU with the given os index.
  /// \param pu_os_index OS index of a PU (binding numbering).
  /// \return The shard index, or -1 when the os index is unknown
  ///         (callers fall back to a round-robin shard).
  int shard_of(int pu_os_index) const noexcept;
};

/// Natural shard count of a machine: its number of NUMA nodes, falling
/// back to packages and then groups for machines without a NUMA level.
/// Machines with no locality domain at all (flat fixtures, single-socket
/// hosts) get 1 — sharding buys nothing without distinct domains.
/// \param t The machine; an empty topology yields 1.
/// \return The recommended control-plane shard count (>= 1).
std::size_t recommended_shard_count(const Topology& t) noexcept;

/// Partition the PUs of `t` into `num_shards` shards. The partition is
/// computed on the shallowest topology level with at least `num_shards`
/// objects, assigning object i of that level to shard i*S/count, so each
/// shard is a union of whole subtrees (e.g. 20 NUMA nodes over 4 shards
/// => 5 consecutive nodes per shard).
/// \param t          The machine; an empty topology yields a
///                   single-shard map.
/// \param num_shards Desired shard count; clamped to [1, num_pus].
/// \return The PU-to-shard partition.
ShardMap make_shard_map(const Topology& t, std::size_t num_shards);

}  // namespace orwl::topo
