// Client side of distributed ORWL: RemoteLocation and the Client session.
//
// A RemoteLocation subclasses rt::Location and overrides its virtual
// request surface, so rt::Handle, Section and every v2 ReadGuard /
// WriteGuard work unchanged against a location whose home (and FIFO) is
// another process: enqueue sends REQ_READ/REQ_WRITE, acquire blocks until
// the matching GRANT lands (copying the shipped buffer bytes into the
// local mirror), release ships DATA (writer write-back) + RELEASE, and
// the iterative handle2 cycle maps onto RELEASE|reinsert.
//
// FIFO across the wire: request ids are assigned and their frames sent
// under one mutex, so the home sees this client's requests in program
// order; the home queue then globally orders them against every other
// requester.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dist/transport.hpp"
#include "runtime/location.hpp"

namespace orwl::dist {

class Client;

/// Parsed "orwl://host:port/name" (tcp) or "orwl+shm://base/name" (shm).
/// `name` is empty when the URL names just the endpoint.
struct Url {
  DistMode mode = DistMode::Off;
  std::string host;
  std::uint16_t port = 0;
  std::string shm_base;
  std::string name;
};

/// Parse an ORWL URL; throws std::invalid_argument on malformed input.
Url parse_url(const std::string& url);

/// A location whose home is another process. Obtained from
/// Client::attach(); its lifetime is owned by the Client session.
class RemoteLocation final : public rt::Location {
 public:
  rt::Ticket enqueue_request(rt::AccessMode mode) override;
  void acquire_request(rt::Ticket t) override;
  void release_request(rt::Ticket t) override;
  rt::Ticket reinsert_release_request(rt::Ticket t,
                                      rt::AccessMode mode) override;
  bool is_remote() const noexcept override { return true; }

  /// Export id assigned by the home registry.
  std::uint64_t export_id() const noexcept { return eid_; }

 private:
  friend class Client;

  RemoteLocation(Client* client, std::uint64_t eid, std::size_t bytes);
  void on_grant(wire::Frame&& f);
  void fail_all();  // connection lost: wake every waiter with an error

  struct Req {
    rt::AccessMode mode = rt::AccessMode::Read;
    bool granted = false;
  };

  Client* client_;
  std::uint64_t eid_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_reqid_ = 1;
  std::unordered_map<std::uint64_t, Req> reqs_;
  std::size_t active_ = 0;  ///< requests currently acquired by this client
  bool dead_ = false;
};

/// One connection to a home registry. Thread-compatible: attach() from
/// one thread; the attached locations are then driven from any threads
/// (their own mutexes order the wire traffic).
class Client {
 public:
  /// Connect to the endpoint in `url` (the /name part, if any, is
  /// ignored — call attach() per location).
  static std::unique_ptr<Client> connect(const std::string& url);
  static std::unique_ptr<Client> connect(const Url& url);

  explicit Client(std::unique_ptr<ClientTransport> transport);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Attach to the export `name`. Returns the (session-owned) remote
  /// location; repeated attaches to one name return the same object.
  /// Throws std::runtime_error when the home rejects or the connection
  /// dies.
  RemoteLocation& attach(const std::string& name);

  /// Orderly shutdown: BYE + transport stop. Idempotent; the destructor
  /// calls it. Outstanding acquires fail with std::runtime_error.
  void close();

  /// Drop the connection without BYE — test hook simulating a client
  /// crash (the home must reclaim our tickets via disconnect).
  void kill();

  bool alive() const noexcept {
    return alive_.load(std::memory_order_acquire);
  }

 private:
  friend class RemoteLocation;

  void on_frame(wire::Frame&& f);
  void on_disconnect();
  bool send(const wire::Frame& f) { return transport_->send(f); }

  struct PendingAttach {
    bool done = false;
    bool ok = false;
    std::uint64_t eid = 0;
    std::uint64_t bytes = 0;
    std::string error;
  };

  std::unique_ptr<ClientTransport> transport_;
  std::atomic<bool> alive_{true};
  std::mutex mu_;  ///< guards attach state and the location maps
  std::condition_variable cv_;
  std::uint64_t next_cookie_ = 1;
  std::map<std::uint64_t, PendingAttach> pending_;
  std::map<std::uint64_t, std::unique_ptr<RemoteLocation>> locs_;
  std::map<std::string, std::uint64_t> by_name_;
};

}  // namespace orwl::dist
