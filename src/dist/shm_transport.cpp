#include "dist/shm_transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#if defined(__linux__)
#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace orwl::dist {

namespace {

constexpr std::uint32_t kListenMagic = 0x4f52574cu;  // "ORWL"

/// Listen-segment header: a connection-id allocator plus the announce
/// doorbell the home side's listener futex-waits on.
struct ListenHeader {
  std::atomic<std::uint32_t> magic;
  std::atomic<std::uint32_t> announce;  ///< bumped once per ready segment
  std::atomic<std::uint32_t> next_id;   ///< connection-id allocator
  std::uint32_t ring_slots;             ///< server-chosen ring capacity
};

/// Connection-segment header; the two rings follow at 64-byte offsets.
struct ConnHeader {
  std::atomic<std::uint32_t> ready;  ///< client sets 1 once rings exist
  std::uint32_t ring_capacity;       ///< rounded payload bytes per ring
};

std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

std::size_t ring_block_bytes(std::size_t capacity) noexcept {
  const std::size_t raw = ShmRing::bytes_for(capacity);
  return (raw + 63) / 64 * 64;
}

std::size_t conn_segment_bytes(std::size_t capacity) noexcept {
  return 64 + 2 * ring_block_bytes(capacity);
}

std::string shm_path(const std::string& base) { return "/" + base; }

#if defined(__linux__)
/// mmap a shm object; creates (O_EXCL) when `create`, sizing to `bytes`.
/// Returns nullptr on ENOENT when attaching to a missing segment.
void* map_segment(const std::string& name, std::size_t bytes, bool create) {
  const int flags = create ? O_RDWR | O_CREAT | O_EXCL : O_RDWR;
  const int fd = ::shm_open(name.c_str(), flags, 0600);
  if (fd < 0) {
    if (!create && errno == ENOENT) return nullptr;
    throw std::runtime_error("shm_open(" + name + "): " +
                             std::strerror(errno));
  }
  if (create && ::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw std::runtime_error("ftruncate(" + name + "): " +
                             std::strerror(errno));
  }
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    if (create) ::shm_unlink(name.c_str());
    throw std::runtime_error("mmap(" + name + "): " + std::strerror(errno));
  }
  return mem;
}
#endif

}  // namespace

void shm_futex_wait(const std::atomic<std::uint32_t>* w, std::uint32_t expect,
                    std::uint32_t timeout_ms) {
#if defined(__linux__)
  timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  // Plain (non-PRIVATE) futex: the word is shared between processes.
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(w), FUTEX_WAIT,
            expect, &ts, nullptr, 0);
#else
  (void)w;
  (void)expect;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::min<std::uint32_t>(timeout_ms, 1)));
#endif
}

void shm_futex_wake_all(const std::atomic<std::uint32_t>* w) {
#if defined(__linux__)
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(w), FUTEX_WAKE,
            INT32_MAX, nullptr, nullptr, 0);
#else
  (void)w;
#endif
}

// ---- ShmRing --------------------------------------------------------------

std::size_t ShmRing::bytes_for(std::size_t capacity) noexcept {
  return sizeof(ShmRing) + round_up_pow2(capacity);
}

ShmRing* ShmRing::init(void* mem, std::size_t capacity) noexcept {
  auto* r = new (mem) ShmRing();
  r->capacity_ = round_up_pow2(capacity);
  return r;
}

bool ShmRing::push(const std::byte* p, std::size_t n,
                   const std::function<bool()>& abort) {
  const std::uint64_t mask = capacity_ - 1;
  while (n > 0) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t space = 0;
    for (;;) {
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      space = static_cast<std::size_t>(capacity_ - (tail - head));
      if (space > 0) break;
      if (abort && abort()) return false;
      const std::uint32_t bell = space_bell_.load(std::memory_order_acquire);
      if (head_.load(std::memory_order_acquire) != head) continue;
      shm_futex_wait(&space_bell_, bell, 10);
    }
    const std::size_t chunk = n < space ? n : space;
    const std::size_t pos = static_cast<std::size_t>(tail & mask);
    const std::size_t first =
        chunk < capacity_ - pos ? chunk : static_cast<std::size_t>(capacity_) -
                                              pos;
    std::memcpy(buf() + pos, p, first);
    std::memcpy(buf(), p + first, chunk - first);
    tail_.store(tail + chunk, std::memory_order_release);
    doorbell_.fetch_add(1, std::memory_order_release);
    shm_futex_wake_all(&doorbell_);
    p += chunk;
    n -= chunk;
  }
  return true;
}

std::size_t ShmRing::pop(std::byte* out, std::size_t max,
                         std::uint32_t timeout_ms) {
  const std::uint64_t mask = capacity_ - 1;
  std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (tail == head) {
    if (closed()) return 0;
    const std::uint32_t bell = doorbell_.load(std::memory_order_acquire);
    if (tail_.load(std::memory_order_acquire) == head) {
      shm_futex_wait(&doorbell_, bell, timeout_ms);
    }
    tail = tail_.load(std::memory_order_acquire);
    if (tail == head) return 0;
  }
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t chunk = avail < max ? avail : max;
  const std::size_t pos = static_cast<std::size_t>(head & mask);
  const std::size_t first =
      chunk < capacity_ - pos ? chunk : static_cast<std::size_t>(capacity_) -
                                            pos;
  std::memcpy(out, buf() + pos, first);
  std::memcpy(out + first, buf(), chunk - first);
  head_.store(head + chunk, std::memory_order_release);
  space_bell_.fetch_add(1, std::memory_order_release);
  shm_futex_wake_all(&space_bell_);
  return chunk;
}

void ShmRing::close() noexcept {
  closed_.store(1, std::memory_order_release);
  shm_futex_wake_all(&doorbell_);
}

// ---- frame stream decoding shared by both sides ---------------------------

namespace {

/// Accumulates ring bytes and peels off whole frames. Returns false on a
/// malformed stream (caller drops the connection).
class FrameStream {
 public:
  template <typename Sink>
  bool feed(const std::byte* p, std::size_t n, Sink&& sink) {
    buf_.insert(buf_.end(), p, p + n);
    std::size_t off = 0;
    for (;;) {
      wire::Frame f;
      const auto r = wire::decode(buf_.data() + off, buf_.size() - off, f);
      if (r.status == wire::DecodeStatus::Bad) return false;
      if (r.status == wire::DecodeStatus::NeedMore) break;
      off += r.consumed;
      sink(std::move(f));
    }
    if (off > 0) buf_.erase(buf_.begin(), buf_.begin() + off);
    return true;
  }

 private:
  std::vector<std::byte> buf_;
};

}  // namespace

// ---- ShmServerTransport ---------------------------------------------------

ShmServerTransport::ShmServerTransport(std::string base,
                                       std::size_t ring_slots)
    : base_(std::move(base)), ring_slots_(ring_slots) {
#if defined(__linux__)
  listen_bytes_ = sizeof(ListenHeader);
  listen_map_ = map_segment(shm_path(base_), listen_bytes_, /*create=*/true);
  auto* h = new (listen_map_) ListenHeader();
  h->ring_slots = static_cast<std::uint32_t>(ring_slots_);
  h->magic.store(kListenMagic, std::memory_order_release);
#else
  throw std::runtime_error("ShmServerTransport: shm requires Linux");
#endif
}

ShmServerTransport::~ShmServerTransport() { stop(); }

void ShmServerTransport::start(Handlers handlers) {
  handlers_ = std::move(handlers);
  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { listen_loop(); });
}

void ShmServerTransport::listen_loop() {
#if defined(__linux__)
  auto* h = static_cast<ListenHeader*>(listen_map_);
  std::uint32_t accepted = 0;
  while (running_.load(std::memory_order_acquire)) {
    const std::uint32_t announced =
        h->announce.load(std::memory_order_acquire);
    if (accepted >= announced) {
      shm_futex_wait(&h->announce, announced, 100);
      continue;
    }
    // Announce order need not match id order (clients race between id
    // allocation and segment creation), so sweep the id space.
    const std::uint32_t ids = h->next_id.load(std::memory_order_acquire);
    std::uint32_t now_accepted = accepted;
    for (std::uint32_t id = 0; id < ids; ++id) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conns_.count(id) != 0) continue;
      }
      if (try_accept(id)) ++now_accepted;
    }
    accepted = now_accepted;
  }
#endif
}

bool ShmServerTransport::try_accept(std::uint32_t id) {
#if defined(__linux__)
  const std::string name = shm_path(base_) + ".c" + std::to_string(id);
  const std::size_t cap = round_up_pow2(ring_slots_ * kShmSlotBytes);
  const std::size_t bytes = conn_segment_bytes(cap);
  void* mem = map_segment(name, bytes, /*create=*/false);
  if (mem == nullptr) return false;  // not created yet; next sweep retries
  auto* ch = static_cast<ConnHeader*>(mem);
  if (ch->ready.load(std::memory_order_acquire) == 0) {
    shm_futex_wait(&ch->ready, 0, 50);
    if (ch->ready.load(std::memory_order_acquire) == 0) {
      ::munmap(mem, bytes);
      return false;
    }
  }
  auto conn = std::make_unique<Conn>();
  conn->map = mem;
  conn->map_bytes = bytes;
  conn->seg_name = name;
  auto* block = static_cast<std::byte*>(mem) + 64;
  conn->c2s = ShmRing::at(block);
  conn->s2c = ShmRing::at(block + ring_block_bytes(cap));
  Conn* raw = conn.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_[id] = std::move(conn);
  }
  raw->reader = std::thread([this, id, raw] { conn_loop(id, raw); });
  return true;
#else
  (void)id;
  return false;
#endif
}

void ShmServerTransport::conn_loop(PeerId id, Conn* c) {
  FrameStream stream;
  std::byte chunk[4096];
  while (running_.load(std::memory_order_acquire)) {
    const std::size_t n = c->c2s->pop(chunk, sizeof chunk, 100);
    if (n == 0) {
      if (c->c2s->closed() && c->c2s->readable() == 0) break;
      continue;
    }
    const bool ok = stream.feed(chunk, n, [&](wire::Frame&& f) {
      if (handlers_.on_frame) handlers_.on_frame(id, std::move(f));
    });
    if (!ok) break;  // malformed stream: drop the peer
  }
  c->gone.store(true, std::memory_order_release);
  if (running_.load(std::memory_order_acquire) && handlers_.on_disconnect) {
    handlers_.on_disconnect(id);
  }
}

bool ShmServerTransport::send(PeerId peer, const wire::Frame& f) {
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(peer);
    if (it == conns_.end()) return false;
    c = it->second.get();
    // Registered while the map entry still exists, so stop() sees this
    // sender and drains the counter before destroying the Conn.
    c->active_sends.fetch_add(1, std::memory_order_acq_rel);
  }
  bool ok = false;
  if (!c->gone.load(std::memory_order_acquire)) {
    std::vector<std::byte> bytes;
    wire::encode(f, bytes);
    std::lock_guard<std::mutex> lock(c->send_mu);
    ok = c->s2c->push(bytes.data(), bytes.size(), [this, c] {
      return !running_.load(std::memory_order_acquire) ||
             c->gone.load(std::memory_order_acquire);
    });
  }
  c->active_sends.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

void ShmServerTransport::stop() {
#if defined(__linux__)
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (listen_map_ != nullptr) {
      ::munmap(listen_map_, listen_bytes_);
      ::shm_unlink(shm_path(base_).c_str());
      listen_map_ = nullptr;
    }
    return;
  }
  if (listener_.joinable()) listener_.join();
  std::map<PeerId, std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& [id, c] : conns) {
    c->gone.store(true, std::memory_order_release);
  }
  for (auto& [id, c] : conns) {
    // A granter may still be inside send() holding a raw Conn*; gone and
    // !running_ abort its ring push, so the counter drains fast. Only
    // then is it safe to unmap the rings and destroy the conn.
    while (c->active_sends.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    c->s2c->close();
    if (c->reader.joinable()) c->reader.join();
    ::munmap(c->map, c->map_bytes);
    ::shm_unlink(c->seg_name.c_str());  // client may have unlinked already
  }
  if (listen_map_ != nullptr) {
    ::munmap(listen_map_, listen_bytes_);
    ::shm_unlink(shm_path(base_).c_str());
    listen_map_ = nullptr;
  }
#endif
}

// ---- ShmClientTransport ---------------------------------------------------

ShmClientTransport::ShmClientTransport(const std::string& base) {
#if defined(__linux__)
  void* lmem = map_segment(shm_path(base), sizeof(ListenHeader),
                           /*create=*/false);
  if (lmem == nullptr) {
    throw std::runtime_error("shm connect: no server at \"" + base + "\"");
  }
  auto* h = static_cast<ListenHeader*>(lmem);
  for (int spin = 0;
       h->magic.load(std::memory_order_acquire) != kListenMagic; ++spin) {
    if (spin > 1000) {
      ::munmap(lmem, sizeof(ListenHeader));
      throw std::runtime_error("shm connect: bad listen segment magic");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::uint32_t id = h->next_id.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t cap = round_up_pow2(h->ring_slots * kShmSlotBytes);
  seg_name_ = shm_path(base) + ".c" + std::to_string(id);
  map_bytes_ = conn_segment_bytes(cap);
  map_ = map_segment(seg_name_, map_bytes_, /*create=*/true);
  auto* ch = new (map_) ConnHeader();
  ch->ring_capacity = static_cast<std::uint32_t>(cap);
  auto* block = static_cast<std::byte*>(map_) + 64;
  c2s_ = ShmRing::init(block, cap);
  s2c_ = ShmRing::init(block + ring_block_bytes(cap), cap);
  ch->ready.store(1, std::memory_order_release);
  shm_futex_wake_all(&ch->ready);
  h->announce.fetch_add(1, std::memory_order_acq_rel);
  shm_futex_wake_all(&h->announce);
  ::munmap(lmem, sizeof(ListenHeader));
#else
  (void)base;
  throw std::runtime_error("ShmClientTransport: shm requires Linux");
#endif
}

ShmClientTransport::~ShmClientTransport() { stop(); }

void ShmClientTransport::start(std::function<void(wire::Frame&&)> on_frame,
                               std::function<void()> on_disconnect) {
  on_frame_ = std::move(on_frame);
  on_disconnect_ = std::move(on_disconnect);
  running_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { recv_loop(); });
}

void ShmClientTransport::recv_loop() {
  FrameStream stream;
  std::byte chunk[4096];
  while (running_.load(std::memory_order_acquire)) {
    const std::size_t n = s2c_->pop(chunk, sizeof chunk, 100);
    if (n == 0) {
      if (s2c_->closed() && s2c_->readable() == 0) break;
      continue;
    }
    const bool ok = stream.feed(chunk, n, [&](wire::Frame&& f) {
      if (on_frame_) on_frame_(std::move(f));
    });
    if (!ok) break;
  }
  if (running_.load(std::memory_order_acquire) && on_disconnect_) {
    on_disconnect_();
  }
}

bool ShmClientTransport::send(const wire::Frame& f) {
  if (map_ == nullptr) return false;
  std::vector<std::byte> bytes;
  wire::encode(f, bytes);
  std::lock_guard<std::mutex> lock(send_mu_);
  return c2s_->push(bytes.data(), bytes.size(), [this] {
    return !running_.load(std::memory_order_acquire) && reader_.joinable();
  });
}

void ShmClientTransport::stop() {
#if defined(__linux__)
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (map_ != nullptr && c2s_ != nullptr) c2s_->close();
  if (was_running && reader_.joinable()) reader_.join();
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    ::shm_unlink(seg_name_.c_str());
    map_ = nullptr;
  }
#endif
}

}  // namespace orwl::dist
