#include "dist/remote.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "dist/shm_transport.hpp"
#include "dist/tcp_transport.hpp"

namespace orwl::dist {

namespace {

/// Deadlock guard on remote acquires, mirroring the intra-process
/// RequestQueue timeout: a grant that never arrives means the home died
/// or the protocol deadlocked — throwing beats hanging forever.
constexpr auto kAcquireTimeout = std::chrono::seconds(120);

constexpr auto kAttachTimeout = std::chrono::seconds(10);

}  // namespace

Url parse_url(const std::string& url) {
  Url u;
  std::string rest;
  if (url.rfind("orwl+shm://", 0) == 0) {
    u.mode = DistMode::Shm;
    rest = url.substr(11);
    const auto slash = rest.find('/');
    u.shm_base = rest.substr(0, slash);
    if (slash != std::string::npos) u.name = rest.substr(slash + 1);
    if (u.shm_base.empty()) {
      throw std::invalid_argument("parse_url: empty shm base in \"" + url +
                                  "\"");
    }
    return u;
  }
  if (url.rfind("orwl://", 0) == 0) {
    u.mode = DistMode::Tcp;
    rest = url.substr(7);
    const auto slash = rest.find('/');
    const std::string hostport = rest.substr(0, slash);
    if (slash != std::string::npos) u.name = rest.substr(slash + 1);
    const auto colon = hostport.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == hostport.size()) {
      throw std::invalid_argument("parse_url: expected host:port in \"" +
                                  url + "\"");
    }
    u.host = hostport.substr(0, colon);
    char* end = nullptr;
    const std::string port_str = hostport.substr(colon + 1);
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 1 || port > 65535) {
      throw std::invalid_argument("parse_url: bad port in \"" + url + "\"");
    }
    u.port = static_cast<std::uint16_t>(port);
    return u;
  }
  throw std::invalid_argument(
      "parse_url: expected orwl:// or orwl+shm:// in \"" + url + "\"");
}

// ---- RemoteLocation -------------------------------------------------------

RemoteLocation::RemoteLocation(Client* client, std::uint64_t eid,
                               std::size_t bytes)
    : rt::Location(static_cast<rt::LocationId>(eid), /*owner=*/0, /*slot=*/0),
      client_(client),
      eid_(eid) {
  // The local mirror of the home buffer: GRANT payloads land here and
  // write-backs are read from here.
  if (bytes > 0) scale(bytes);
}

rt::Ticket RemoteLocation::enqueue_request(rt::AccessMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    throw std::runtime_error("remote location: connection lost");
  }
  const std::uint64_t reqid = next_reqid_++;
  reqs_[reqid] = {mode, false};
  wire::Frame f;
  f.type = mode == rt::AccessMode::Write ? wire::Type::ReqWrite
                                         : wire::Type::ReqRead;
  f.location = eid_;
  f.ticket = reqid;
  // Send under mu_: reqid assignment and wire order stay identical, so
  // the home enqueues this client's requests in program order.
  if (!client_->send(f)) {
    reqs_.erase(reqid);
    throw std::runtime_error("remote location: connection lost");
  }
  return reqid;
}

void RemoteLocation::acquire_request(rt::Ticket t) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = reqs_.find(t);
  if (it == reqs_.end()) {
    throw std::logic_error("remote acquire: unknown ticket");
  }
  if (!cv_.wait_for(lock, kAcquireTimeout,
                    [&] { return it->second.granted || dead_; })) {
    throw std::runtime_error("remote acquire: timeout waiting for GRANT");
  }
  if (!it->second.granted && dead_) {
    throw std::runtime_error("remote acquire: connection lost");
  }
  ++active_;
}

void RemoteLocation::release_request(rt::Ticket t) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = reqs_.find(t);
  if (it == reqs_.end()) {
    throw std::logic_error("remote release: unknown ticket");
  }
  const rt::AccessMode mode = it->second.mode;
  if (!dead_) {
    if (mode == rt::AccessMode::Write && data() != nullptr) {
      wire::Frame d;
      d.type = wire::Type::Data;
      d.location = eid_;
      d.ticket = t;
      d.payload.assign(data(), data() + size());
      client_->send(d);
    }
    wire::Frame r;
    r.type = wire::Type::Release;
    r.location = eid_;
    r.ticket = t;
    client_->send(r);
  }
  reqs_.erase(it);
  if (active_ > 0) --active_;
}

rt::Ticket RemoteLocation::reinsert_release_request(rt::Ticket t,
                                                    rt::AccessMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = reqs_.find(t);
  if (it == reqs_.end()) {
    throw std::logic_error("remote reinsert: unknown ticket");
  }
  if (dead_) {
    throw std::runtime_error("remote location: connection lost");
  }
  const std::uint64_t next = next_reqid_++;
  reqs_[next] = {mode, false};
  if (mode == rt::AccessMode::Write && data() != nullptr) {
    wire::Frame d;
    d.type = wire::Type::Data;
    d.location = eid_;
    d.ticket = t;
    d.payload.assign(data(), data() + size());
    client_->send(d);
  }
  wire::Frame r;
  r.type = wire::Type::Release;
  r.flags = wire::kFlagReinsert;
  r.location = eid_;
  r.ticket = t;
  r.aux = next;  // the home re-inserts atomically under this reqid
  if (!client_->send(r)) {
    reqs_.erase(next);
    reqs_.erase(t);
    if (active_ > 0) --active_;
    throw std::runtime_error("remote location: connection lost");
  }
  reqs_.erase(t);
  if (active_ > 0) --active_;
  return next;
}

void RemoteLocation::on_grant(wire::Frame&& f) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = reqs_.find(f.ticket);
  if (it == reqs_.end()) return;  // stale grant after a local bail-out
  // Land the buffer payload in the mirror. Only the first grant of a
  // reader group copies (active_ == 0): later members of the same group
  // carry identical bytes, and skipping the copy keeps the memcpy from
  // racing a reader already inside its critical section.
  if (active_ == 0 && !f.payload.empty() && data() != nullptr) {
    const std::size_t n =
        f.payload.size() < size() ? f.payload.size() : size();
    std::memcpy(data(), f.payload.data(), n);
  }
  it->second.granted = true;
  cv_.notify_all();
}

void RemoteLocation::fail_all() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  cv_.notify_all();
}

// ---- Client ---------------------------------------------------------------

std::unique_ptr<Client> Client::connect(const std::string& url) {
  return connect(parse_url(url));
}

std::unique_ptr<Client> Client::connect(const Url& url) {
  std::unique_ptr<ClientTransport> t;
  switch (url.mode) {
    case DistMode::Shm:
      t = std::make_unique<ShmClientTransport>(url.shm_base);
      break;
    case DistMode::Tcp:
      t = std::make_unique<TcpClientTransport>(url.host, url.port);
      break;
    case DistMode::Off:
      throw std::invalid_argument("Client::connect: ORWL_DIST is off");
  }
  return std::make_unique<Client>(std::move(t));
}

Client::Client(std::unique_ptr<ClientTransport> transport)
    : transport_(std::move(transport)) {
  transport_->start([this](wire::Frame&& f) { on_frame(std::move(f)); },
                    [this] { on_disconnect(); });
}

Client::~Client() { close(); }

RemoteLocation& Client::attach(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto known = by_name_.find(name);
  if (known != by_name_.end()) return *locs_[known->second];
  if (!alive_.load(std::memory_order_acquire)) {
    throw std::runtime_error("attach: connection lost");
  }
  const std::uint64_t cookie = next_cookie_++;
  pending_[cookie] = {};
  wire::Frame hello;
  hello.type = wire::Type::Hello;
  hello.location = cookie;
  hello.payload.resize(name.size());
  std::memcpy(hello.payload.data(), name.data(), name.size());
  lock.unlock();
  if (!send(hello)) throw std::runtime_error("attach: connection lost");
  lock.lock();
  PendingAttach& p = pending_[cookie];
  if (!cv_.wait_for(lock, kAttachTimeout, [&] {
        return p.done || !alive_.load(std::memory_order_acquire);
      })) {
    pending_.erase(cookie);
    throw std::runtime_error("attach(\"" + name + "\"): timeout");
  }
  const PendingAttach result = p;
  pending_.erase(cookie);
  if (!result.done || !result.ok) {
    throw std::runtime_error("attach(\"" + name + "\"): " +
                             (result.error.empty() ? "connection lost"
                                                   : result.error));
  }
  // Another thread may have attached the same name while we waited.
  const auto again = by_name_.find(name);
  if (again != by_name_.end()) return *locs_[again->second];
  auto loc = std::unique_ptr<RemoteLocation>(new RemoteLocation(
      this, result.eid, static_cast<std::size_t>(result.bytes)));
  RemoteLocation& ref = *loc;
  by_name_[name] = result.eid;
  locs_[result.eid] = std::move(loc);
  return ref;
}

void Client::on_frame(wire::Frame&& f) {
  switch (f.type) {
    case wire::Type::HelloAck: {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(f.location);
      if (it == pending_.end()) return;
      it->second.done = true;
      it->second.ok = true;
      it->second.eid = f.ticket;
      it->second.bytes = f.aux;
      cv_.notify_all();
      return;
    }
    case wire::Type::Error: {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(f.location);
      if (it == pending_.end()) return;
      it->second.done = true;
      it->second.ok = false;
      it->second.error.assign(
          reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
      cv_.notify_all();
      return;
    }
    case wire::Type::Grant: {
      RemoteLocation* loc = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = locs_.find(f.location);
        if (it != locs_.end()) loc = it->second.get();
      }
      if (loc != nullptr) loc->on_grant(std::move(f));
      return;
    }
    case wire::Type::Bye: on_disconnect(); return;
    default: return;
  }
}

void Client::on_disconnect() {
  if (!alive_.exchange(false, std::memory_order_acq_rel)) return;
  std::vector<RemoteLocation*> locs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [eid, loc] : locs_) locs.push_back(loc.get());
    cv_.notify_all();  // fail pending attaches
  }
  for (RemoteLocation* loc : locs) loc->fail_all();
}

void Client::close() {
  if (alive_.exchange(false, std::memory_order_acq_rel)) {
    wire::Frame bye;
    bye.type = wire::Type::Bye;
    transport_->send(bye);
    std::vector<RemoteLocation*> locs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [eid, loc] : locs_) locs.push_back(loc.get());
      cv_.notify_all();
    }
    for (RemoteLocation* loc : locs) loc->fail_all();
  }
  transport_->stop();
}

void Client::kill() {
  alive_.store(false, std::memory_order_release);
  std::vector<RemoteLocation*> locs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [eid, loc] : locs_) locs.push_back(loc.get());
    cv_.notify_all();
  }
  for (RemoteLocation* loc : locs) loc->fail_all();
  transport_->stop();  // hard drop: no BYE — the home sees a disconnect
}

}  // namespace orwl::dist
