// Home-side registry of exported locations.
//
// The registry names locations for remote attach ("orwl://host:port/name")
// and runs the RemoteMirror half of the protocol: every REQ frame becomes
// a proxy ticket in the location's real RequestQueue, so remote and local
// requesters share one FIFO and the grant engine stays the single source
// of truth for ordering. A per-export granter thread watches the oldest
// outstanding proxy (lock-free queue.granted(), adaptive backoff — the
// home queue grants strictly in ticket order, so polling the front
// suffices and preserves exact FIFO across the wire) and ships GRANT
// frames carrying the buffer bytes; RELEASE/DATA frames from the client
// complete the cycle, with the reinsert flag running the iterative
// handle2 re-insert atomically in the home queue.
//
// Orphan reclamation: when a client disconnects, its granted proxies are
// released immediately (their write-back is lost — the client died) and
// its queued proxies are flagged; the granter releases those the moment
// the queue grants them, so the FIFO drains instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.hpp"
#include "runtime/location.hpp"

namespace orwl::dist {

class Registry {
 public:
  struct Stats {
    std::uint64_t attaches = 0;
    std::uint64_t proxy_requests = 0;
    std::uint64_t grants_sent = 0;
    std::uint64_t releases = 0;
    std::uint64_t orphans_reclaimed = 0;
    std::uint64_t rejected = 0;
  };

  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Export `loc` under `name`. The location must outlive the registry's
  /// stop(). Exports may be added before or after serve(). Throws
  /// std::invalid_argument on a duplicate name.
  void export_location(const std::string& name, rt::Location* loc);

  /// Reject future attaches to `name`; outstanding proxies drain
  /// normally. Unknown names are a no-op (evict paths are idempotent).
  void unexport(const std::string& name);

  /// Start serving over `transport` (shm or tcp; exactly one serve per
  /// registry).
  void serve(std::unique_ptr<ServerTransport> transport);

  /// Stop the transport and every granter thread. Idempotent.
  void stop();

  /// The transport's connectable address ("" before serve()).
  std::string address() const;

  /// Connect URL for an exported name: "orwl://host:port/name" (tcp) or
  /// "orwl+shm://base/name" (shm).
  std::string url(const std::string& name) const;

  Stats stats() const;

 private:
  /// One not-yet-granted remote request (a proxy ticket in the FIFO).
  struct Proxy {
    PeerId peer = 0;
    std::uint64_t reqid = 0;
    rt::Ticket ticket = 0;
    rt::AccessMode mode = rt::AccessMode::Read;
    bool orphaned = false;
  };

  /// A proxy whose GRANT was shipped; awaiting RELEASE (or reclamation).
  struct GrantedProxy {
    rt::Ticket ticket = 0;
    rt::AccessMode mode = rt::AccessMode::Read;
  };

  struct Export {
    std::string name;
    rt::Location* loc = nullptr;
    std::uint64_t id = 0;
    bool active = true;
    std::mutex mu;  ///< orders queue ops against fifo bookkeeping
    std::condition_variable cv;
    std::deque<Proxy> fifo;
    std::map<std::pair<PeerId, std::uint64_t>, GrantedProxy> granted;
    std::thread granter;
  };

  void on_frame(PeerId peer, wire::Frame&& f);
  void on_disconnect(PeerId peer);
  void handle_hello(PeerId peer, const wire::Frame& f);
  void handle_request(PeerId peer, const wire::Frame& f, rt::AccessMode mode);
  void handle_data(PeerId peer, const wire::Frame& f);
  void handle_release(PeerId peer, const wire::Frame& f);
  void granter_loop(Export* ex);
  Export* find_export(std::uint64_t id);

  mutable std::mutex mu_;  ///< guards exports_/by_name_
  std::vector<std::unique_ptr<Export>> exports_;
  std::map<std::string, std::uint64_t> by_name_;
  std::unique_ptr<ServerTransport> transport_;
  /// Same pointer, published for granter threads that may start before
  /// serve(): they read it lock-free on every send.
  std::atomic<ServerTransport*> transport_raw_{nullptr};
  bool shm_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> attaches_{0};
  std::atomic<std::uint64_t> proxy_requests_{0};
  std::atomic<std::uint64_t> grants_sent_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> orphans_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace orwl::dist
