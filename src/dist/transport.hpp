// Pluggable transports for distributed ORWL.
//
// A transport moves wire::Frames between a home process (which owns the
// real locations and their FIFO queues) and client processes (which drive
// them through RemoteLocation). Two implementations ship:
//
//   ShmTransport — a named shared-memory segment per connection holding a
//   pair of fixed-slot SPSC rings with futex doorbells; for cross-process
//   locations on one host (no syscalls on the data path once mapped).
//
//   TcpTransport — length-prefixed frames over a socket; an epoll-driven
//   proxy thread serves every client connection on the home side.
//
// The interface is deliberately small (start/stop/send + frame callback)
// so an RDMA transport can slot in later: nothing above this layer knows
// about sockets, segments or completion queues.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "dist/wire.hpp"

namespace orwl::dist {

/// Identifies one connected client on the home side. Stable for the life
/// of the connection; never reused while the transport is running.
using PeerId = std::uint64_t;

/// Home-side transport: accepts client connections and shuttles frames.
/// Callbacks fire on the transport's internal threads — handlers must be
/// thread-safe; frames from one peer are delivered in arrival order.
class ServerTransport {
 public:
  struct Handlers {
    std::function<void(PeerId, wire::Frame&&)> on_frame;
    std::function<void(PeerId)> on_disconnect;
  };

  virtual ~ServerTransport() = default;

  /// Begin accepting connections and delivering frames.
  virtual void start(Handlers handlers) = 0;

  /// Stop threads and drop every connection. Idempotent; after stop() no
  /// further callbacks fire.
  virtual void stop() = 0;

  /// Send one frame to a peer. Thread-safe. False when the peer is gone.
  virtual bool send(PeerId peer, const wire::Frame& f) = 0;

  /// Connectable address of this transport ("host:port" for tcp, the
  /// segment base name for shm).
  virtual std::string address() const = 0;
};

/// Client-side transport: one connection to a home process.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Begin delivering incoming frames (in arrival order, from an internal
  /// receiver thread).
  virtual void start(std::function<void(wire::Frame&&)> on_frame,
                     std::function<void()> on_disconnect) = 0;

  /// Close the connection. Idempotent; no callbacks after stop().
  virtual void stop() = 0;

  /// Send one frame home. Thread-safe. False once disconnected.
  virtual bool send(const wire::Frame& f) = 0;
};

// ---- configuration knobs --------------------------------------------------

/// Transport selector: off (intra-process only, default), shm, tcp.
inline constexpr const char* kDistEnvVar = "ORWL_DIST";

/// TCP listen port for the home side (default 0 = ephemeral; the bound
/// port is published through ServerTransport::address()).
inline constexpr const char* kDistPortEnvVar = "ORWL_DIST_PORT";

/// Capacity of each shm ring direction, in 64-byte slots (default 1024,
/// i.e. 64 KiB per direction). Frames larger than the ring stream through
/// it in chunks.
inline constexpr const char* kDistShmSlotsEnvVar = "ORWL_DIST_SHM_SLOTS";

enum class DistMode : std::uint8_t { Off, Shm, Tcp };

const char* to_string(DistMode m) noexcept;

/// Resolve ORWL_DIST. Unset/empty => Off; anything but off/shm/tcp throws
/// std::invalid_argument naming the variable.
DistMode dist_mode_from_env();

/// Resolve ORWL_DIST_PORT (0..65535; default `fallback`). Out-of-range or
/// garbage throws std::invalid_argument naming the variable.
std::uint16_t dist_port_from_env(std::uint16_t fallback = 0);

/// Resolve ORWL_DIST_SHM_SLOTS (>= 16; default `fallback`). Garbage or a
/// ring too small to make progress throws std::invalid_argument.
std::size_t dist_shm_slots_from_env(std::size_t fallback = 1024);

}  // namespace orwl::dist
