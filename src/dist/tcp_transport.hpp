// TCP transport: ORWL locations across hosts.
//
// Frames are length-prefixed by their own wire header (payload_len), so
// the stream needs no extra framing. The home side runs one epoll-driven
// proxy thread that owns the listening socket and every client
// connection: reads are non-blocking and fan into the registry's frame
// handler; writes take a per-connection mutex and poll() through partial
// sends, so granter threads can push GRANTs concurrently with the epoll
// loop. Loopback-testable; the interface above this file is transport
// agnostic (see transport.hpp) so RDMA can replace it wholesale.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.hpp"

namespace orwl::dist {

/// Home side: listener plus epoll proxy thread.
class TcpServerTransport final : public ServerTransport {
 public:
  /// Bind and listen on `port` (0 = ephemeral; the actual port is
  /// reported by address()/port()). Throws std::runtime_error on bind
  /// failure.
  explicit TcpServerTransport(std::uint16_t port = 0);
  ~TcpServerTransport() override;

  void start(Handlers handlers) override;
  void stop() override;
  bool send(PeerId peer, const wire::Frame& f) override;
  std::string address() const override;
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex send_mu;
    std::vector<std::byte> inbuf;
    std::atomic<bool> gone{false};
    /// Senders inside send() past the conns_ lookup (they hold this
    /// Conn raw); drop_conn()/stop() drain it to zero before deleting.
    std::atomic<int> active_sends{0};
  };

  void epoll_loop();
  void drop_conn(PeerId id, bool notify);

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t port_ = 0;
  Handlers handlers_;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::mutex mu_;  ///< guards conns_
  std::map<PeerId, std::unique_ptr<Conn>> conns_;
  PeerId next_peer_ = 1;
  std::map<int, PeerId> by_fd_;
};

/// Client side: one blocking socket plus a receiver thread.
class TcpClientTransport final : public ClientTransport {
 public:
  /// Connect to host:port. Throws std::runtime_error on failure.
  TcpClientTransport(const std::string& host, std::uint16_t port);
  ~TcpClientTransport() override;

  void start(std::function<void(wire::Frame&&)> on_frame,
             std::function<void()> on_disconnect) override;
  void stop() override;
  bool send(const wire::Frame& f) override;

 private:
  void recv_loop();

  int fd_ = -1;
  std::function<void(wire::Frame&&)> on_frame_;
  std::function<void()> on_disconnect_;
  std::thread reader_;
  std::mutex send_mu_;
  std::atomic<bool> running_{false};
};

}  // namespace orwl::dist
