#include "dist/transport.hpp"

#include "support/env.hpp"

namespace orwl::dist {

const char* to_string(DistMode m) noexcept {
  switch (m) {
    case DistMode::Off: return "off";
    case DistMode::Shm: return "shm";
    case DistMode::Tcp: return "tcp";
  }
  return "?";
}

DistMode dist_mode_from_env() {
  const auto v = support::env_string(kDistEnvVar);
  if (!v || v->empty() || support::iequals(*v, "off")) return DistMode::Off;
  if (support::iequals(*v, "shm")) return DistMode::Shm;
  if (support::iequals(*v, "tcp")) return DistMode::Tcp;
  support::throw_bad_env(kDistEnvVar, *v, "off, shm or tcp");
}

std::uint16_t dist_port_from_env(std::uint16_t fallback) {
  const long v = support::env_long(kDistPortEnvVar, fallback);
  if (v < 0 || v > 65535) {
    support::throw_bad_env(kDistPortEnvVar, std::to_string(v),
                           "a port in [0, 65535]");
  }
  return static_cast<std::uint16_t>(v);
}

std::size_t dist_shm_slots_from_env(std::size_t fallback) {
  const long v =
      support::env_long(kDistShmSlotsEnvVar, static_cast<long>(fallback));
  if (v < 16) {
    support::throw_bad_env(kDistShmSlotsEnvVar, std::to_string(v),
                           "at least 16 slots");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace orwl::dist
