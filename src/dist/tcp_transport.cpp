#include "dist/tcp_transport.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace orwl::dist {

#if defined(__linux__)

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  // The grant path is a request/response ping-pong of tiny frames:
  // Nagle would serialize every hand-off onto the delayed-ACK clock.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Decode every whole frame in `buf`, compacting consumed bytes.
/// Returns false on a malformed stream.
template <typename Sink>
bool drain_frames(std::vector<std::byte>& buf, Sink&& sink) {
  std::size_t off = 0;
  for (;;) {
    wire::Frame f;
    const auto r = wire::decode(buf.data() + off, buf.size() - off, f);
    if (r.status == wire::DecodeStatus::Bad) return false;
    if (r.status == wire::DecodeStatus::NeedMore) break;
    off += r.consumed;
    sink(std::move(f));
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + off);
  return true;
}

/// Blocking-ish send over a non-blocking fd: polls through EAGAIN and
/// partial writes. Returns false when the peer or transport went away.
bool send_all(int fd, const std::byte* p, std::size_t n,
              const std::atomic<bool>& running) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!running.load(std::memory_order_acquire)) return false;
      pollfd pf{fd, POLLOUT, 0};
      ::poll(&pf, 1, 100);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

// ---- TcpServerTransport ---------------------------------------------------

TcpServerTransport::TcpServerTransport(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    throw_errno("epoll_create1");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

TcpServerTransport::~TcpServerTransport() { stop(); }

std::string TcpServerTransport::address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void TcpServerTransport::start(Handlers handlers) {
  handlers_ = std::move(handlers);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { epoll_loop(); });
}

void TcpServerTransport::epoll_loop() {
  epoll_event events[32];
  std::byte chunk[4096];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 32, 100);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        for (;;) {
          const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          set_nodelay(cfd);
          auto conn = std::make_unique<Conn>();
          conn->fd = cfd;
          PeerId id;
          {
            std::lock_guard<std::mutex> lock(mu_);
            id = next_peer_++;
            by_fd_[cfd] = id;
            conns_[id] = std::move(conn);
          }
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
          (void)id;
        }
        continue;
      }
      PeerId id = 0;
      Conn* c = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = by_fd_.find(fd);
        if (it == by_fd_.end()) continue;
        id = it->second;
        c = conns_[id].get();
      }
      bool drop = false;
      for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
        if (got > 0) {
          c->inbuf.insert(c->inbuf.end(), chunk, chunk + got);
          continue;
        }
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (got < 0 && errno == EINTR) continue;
        drop = true;  // orderly close or hard error
        break;
      }
      // Drain even when the peer hung up: the frames that raced the FIN
      // into this event (typically DATA + RELEASE + BYE of an orderly
      // close) must be processed before the disconnect bookkeeping.
      if (!drain_frames(c->inbuf, [&](wire::Frame&& f) {
            if (handlers_.on_frame) handlers_.on_frame(id, std::move(f));
          })) {
        drop = true;  // malformed stream
      }
      if (drop) drop_conn(id, /*notify=*/true);
    }
  }
}

void TcpServerTransport::drop_conn(PeerId id, bool notify) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
    by_fd_.erase(conn->fd);
  }
  conn->gone.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    // A granter may be mid-send on this connection: closing the fd under
    // it would race the descriptor number. Take the send mutex first.
    std::lock_guard<std::mutex> lock(conn->send_mu);
    ::close(conn->fd);
    conn->fd = -1;
  }
  // A sender that looked the conn up before the erase above may still
  // hold the raw pointer; it exits promptly (gone is set, fd is -1), so
  // drain it before the unique_ptr destroys the Conn.
  while (conn->active_sends.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (notify && handlers_.on_disconnect) handlers_.on_disconnect(id);
}

bool TcpServerTransport::send(PeerId peer, const wire::Frame& f) {
  std::vector<std::byte> bytes;
  wire::encode(f, bytes);
  // Hold mu_ only to find the conn; sending holds the per-conn mutex so
  // concurrent granters serialize per peer, not across peers.
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(peer);
    if (it == conns_.end()) return false;
    c = it->second.get();
    // Registered while the map entry still exists, so whoever later
    // removes the conn (drop_conn or stop) sees this sender and drains
    // the counter before destroying the Conn.
    c->active_sends.fetch_add(1, std::memory_order_acq_rel);
  }
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(c->send_mu);
    if (!c->gone.load(std::memory_order_acquire) && c->fd >= 0) {
      ok = send_all(c->fd, bytes.data(), bytes.size(), running_);
    }
  }
  c->active_sends.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

void TcpServerTransport::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
    if (listen_fd_ >= 0) ::close(listen_fd_), listen_fd_ = -1;
    return;
  }
  if (loop_.joinable()) loop_.join();
  std::map<PeerId, std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
    by_fd_.clear();
  }
  // A granter may still be inside send() holding a raw Conn*; running_
  // is already false, which aborts its send_all, so each counter drains
  // fast. Only then is it safe to close fds and destroy the conns.
  for (auto& [id, c] : conns) {
    c->gone.store(true, std::memory_order_release);
  }
  for (auto& [id, c] : conns) {
    while (c->active_sends.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    if (c->fd >= 0) ::close(c->fd);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_), listen_fd_ = -1;
}

// ---- TcpClientTransport ---------------------------------------------------

TcpClientTransport::TcpClientTransport(const std::string& host,
                                       std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("tcp connect: bad host \"" + host + "\"");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd_);
}

TcpClientTransport::~TcpClientTransport() { stop(); }

void TcpClientTransport::start(std::function<void(wire::Frame&&)> on_frame,
                               std::function<void()> on_disconnect) {
  on_frame_ = std::move(on_frame);
  on_disconnect_ = std::move(on_disconnect);
  running_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { recv_loop(); });
}

void TcpClientTransport::recv_loop() {
  std::vector<std::byte> buf;
  std::byte chunk[4096];
  while (running_.load(std::memory_order_acquire)) {
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buf.insert(buf.end(), chunk, chunk + got);
      if (!drain_frames(buf, [&](wire::Frame&& f) {
            if (on_frame_) on_frame_(std::move(f));
          })) {
        break;
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;  // orderly close, hard error, or shutdown() from stop()
  }
  if (running_.load(std::memory_order_acquire) && on_disconnect_) {
    on_disconnect_();
  }
}

bool TcpClientTransport::send(const wire::Frame& f) {
  std::vector<std::byte> bytes;
  wire::encode(f, bytes);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  return send_all(fd_, bytes.data(), bytes.size(), running_);
}

void TcpClientTransport::stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // unblocks the reader's recv
  if (was_running && reader_.joinable()) reader_.join();
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ >= 0) ::close(fd_), fd_ = -1;
}

#else  // !__linux__

TcpServerTransport::TcpServerTransport(std::uint16_t) {
  throw std::runtime_error("TcpServerTransport requires Linux");
}
TcpServerTransport::~TcpServerTransport() = default;
std::string TcpServerTransport::address() const { return ""; }
void TcpServerTransport::start(Handlers) {}
void TcpServerTransport::epoll_loop() {}
void TcpServerTransport::drop_conn(PeerId, bool) {}
bool TcpServerTransport::send(PeerId, const wire::Frame&) { return false; }
void TcpServerTransport::stop() {}

TcpClientTransport::TcpClientTransport(const std::string&, std::uint16_t) {
  throw std::runtime_error("TcpClientTransport requires Linux");
}
TcpClientTransport::~TcpClientTransport() = default;
void TcpClientTransport::start(std::function<void(wire::Frame&&)>,
                               std::function<void()>) {}
void TcpClientTransport::recv_loop() {}
bool TcpClientTransport::send(const wire::Frame&) { return false; }
void TcpClientTransport::stop() {}

#endif

}  // namespace orwl::dist
