#include "dist/registry.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "dist/shm_transport.hpp"

namespace orwl::dist {

namespace {

wire::Frame error_frame(std::uint64_t cookie, const std::string& msg) {
  wire::Frame f;
  f.type = wire::Type::Error;
  f.location = cookie;
  f.payload.resize(msg.size());
  std::memcpy(f.payload.data(), msg.data(), msg.size());
  return f;
}

}  // namespace

Registry::~Registry() { stop(); }

void Registry::export_location(const std::string& name, rt::Location* loc) {
  std::unique_ptr<Export> ex;
  Export* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (by_name_.count(name) != 0) {
      throw std::invalid_argument("Registry: duplicate export \"" + name +
                                  "\"");
    }
    ex = std::make_unique<Export>();
    ex->name = name;
    ex->loc = loc;
    ex->id = exports_.size();
    raw = ex.get();
    by_name_[name] = ex->id;
    exports_.push_back(std::move(ex));
  }
  raw->granter = std::thread([this, raw] { granter_loop(raw); });
}

void Registry::unexport(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return;
  Export* ex = exports_[it->second].get();
  std::lock_guard<std::mutex> elock(ex->mu);
  ex->active = false;
}

void Registry::serve(std::unique_ptr<ServerTransport> transport) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (transport_) throw std::logic_error("Registry: already serving");
    shm_ = dynamic_cast<ShmServerTransport*>(transport.get()) != nullptr;
    transport_ = std::move(transport);
    transport_raw_.store(transport_.get(), std::memory_order_release);
  }
  transport_->start({
      [this](PeerId p, wire::Frame&& f) { on_frame(p, std::move(f)); },
      [this](PeerId p) { on_disconnect(p); },
  });
}

void Registry::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (transport_) transport_->stop();
  std::vector<Export*> exports;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : exports_) exports.push_back(e.get());
  }
  for (Export* ex : exports) {
    ex->cv.notify_all();
    if (ex->granter.joinable()) ex->granter.join();
  }
}

std::string Registry::address() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_ ? transport_->address() : std::string();
}

std::string Registry::url(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!transport_) return "";
  return (shm_ ? "orwl+shm://" : "orwl://") + transport_->address() + "/" +
         name;
}

Registry::Stats Registry::stats() const {
  Stats s;
  s.attaches = attaches_.load(std::memory_order_acquire);
  s.proxy_requests = proxy_requests_.load(std::memory_order_acquire);
  s.grants_sent = grants_sent_.load(std::memory_order_acquire);
  s.releases = releases_.load(std::memory_order_acquire);
  s.orphans_reclaimed = orphans_.load(std::memory_order_acquire);
  s.rejected = rejected_.load(std::memory_order_acquire);
  return s;
}

Registry::Export* Registry::find_export(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return id < exports_.size() ? exports_[id].get() : nullptr;
}

void Registry::on_frame(PeerId peer, wire::Frame&& f) {
  switch (f.type) {
    case wire::Type::Hello: handle_hello(peer, f); break;
    case wire::Type::ReqRead:
      handle_request(peer, f, rt::AccessMode::Read);
      break;
    case wire::Type::ReqWrite:
      handle_request(peer, f, rt::AccessMode::Write);
      break;
    case wire::Type::Data: handle_data(peer, f); break;
    case wire::Type::Release: handle_release(peer, f); break;
    case wire::Type::Bye: on_disconnect(peer); break;
    default: break;  // client-bound types from a client: ignore
  }
}

void Registry::handle_hello(PeerId peer, const wire::Frame& f) {
  const std::string name(reinterpret_cast<const char*>(f.payload.data()),
                         f.payload.size());
  Export* ex = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) ex = exports_[it->second].get();
  }
  if (ex != nullptr) {
    std::lock_guard<std::mutex> elock(ex->mu);
    if (!ex->active) ex = nullptr;
  }
  if (ex == nullptr) {
    rejected_.fetch_add(1, std::memory_order_release);
    transport_->send(peer,
                     error_frame(f.location, "no export \"" + name + "\""));
    return;
  }
  attaches_.fetch_add(1, std::memory_order_release);
  wire::Frame ack;
  ack.type = wire::Type::HelloAck;
  ack.location = f.location;  // echo the client's cookie
  ack.ticket = ex->id;
  ack.aux = ex->loc->size();
  transport_->send(peer, ack);
}

void Registry::handle_request(PeerId peer, const wire::Frame& f,
                              rt::AccessMode mode) {
  Export* ex = find_export(f.location);
  if (ex == nullptr) return;
  std::lock_guard<std::mutex> elock(ex->mu);
  // Enqueue and record under the export mutex: the proxy FIFO's order
  // must equal the home queue's ticket order for this export.
  const rt::Ticket t = ex->loc->queue().enqueue(mode);
  ex->fifo.push_back({peer, f.ticket, t, mode, false});
  proxy_requests_.fetch_add(1, std::memory_order_release);
  ex->cv.notify_all();
}

void Registry::handle_data(PeerId peer, const wire::Frame& f) {
  Export* ex = find_export(f.location);
  if (ex == nullptr) return;
  std::lock_guard<std::mutex> elock(ex->mu);
  const auto it = ex->granted.find({peer, f.ticket});
  if (it == ex->granted.end()) return;  // reclaimed meanwhile
  if (it->second.mode != rt::AccessMode::Write) return;
  rt::Location* loc = ex->loc;
  if (loc->data() == nullptr) return;
  const std::size_t n =
      f.payload.size() < loc->size() ? f.payload.size() : loc->size();
  std::memcpy(loc->data(), f.payload.data(), n);
}

void Registry::handle_release(PeerId peer, const wire::Frame& f) {
  Export* ex = find_export(f.location);
  if (ex == nullptr) return;
  std::lock_guard<std::mutex> elock(ex->mu);
  const auto it = ex->granted.find({peer, f.ticket});
  if (it == ex->granted.end()) return;  // reclaimed meanwhile
  const rt::Ticket old = it->second.ticket;
  const rt::AccessMode mode = it->second.mode;
  ex->granted.erase(it);
  releases_.fetch_add(1, std::memory_order_release);
  if ((f.flags & wire::kFlagReinsert) != 0) {
    // The iterative handle2 cycle, run atomically in the home queue so
    // the re-inserted request keeps the cyclic FIFO position.
    const rt::Ticket next = ex->loc->queue().reinsert_and_release(old, mode);
    ex->fifo.push_back({peer, f.aux, next, mode, false});
    proxy_requests_.fetch_add(1, std::memory_order_release);
    ex->cv.notify_all();
  } else {
    ex->loc->queue().release(old);
  }
}

void Registry::on_disconnect(PeerId peer) {
  std::vector<Export*> exports;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : exports_) exports.push_back(e.get());
  }
  for (Export* ex : exports) {
    std::lock_guard<std::mutex> elock(ex->mu);
    // Granted proxies: the client held the lock and is gone — release
    // now (its unsent write-back is lost) so the FIFO moves on.
    for (auto it = ex->granted.begin(); it != ex->granted.end();) {
      if (it->first.first == peer) {
        ex->loc->queue().release(it->second.ticket);
        orphans_.fetch_add(1, std::memory_order_release);
        it = ex->granted.erase(it);
      } else {
        ++it;
      }
    }
    // Queued proxies: still waiting their turn; flag them so the granter
    // releases instead of shipping a GRANT into the void.
    for (Proxy& p : ex->fifo) {
      if (p.peer == peer) p.orphaned = true;
    }
    ex->cv.notify_all();
  }
}

void Registry::granter_loop(Export* ex) {
  std::unique_lock<std::mutex> lk(ex->mu);
  while (!stopping_.load(std::memory_order_acquire)) {
    if (ex->fifo.empty()) {
      ex->cv.wait_for(lk, std::chrono::milliseconds(50));
      continue;
    }
    const Proxy front = ex->fifo.front();
    // Poll the lock-free grant word outside the mutex. The home queue is
    // FIFO, so nothing behind `front` can be granted before it.
    lk.unlock();
    bool granted = false;
    for (unsigned spin = 0; !stopping_.load(std::memory_order_acquire);) {
      if (ex->loc->queue().granted(front.ticket)) {
        granted = true;
        break;
      }
      if (++spin < 64) {
        // hot spin
      } else if (spin < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(
            spin < 4096 ? 50 : 500));
      }
    }
    lk.lock();
    if (!granted) continue;  // stopping
    // Re-read the head: a disconnect may have orphaned it meanwhile.
    if (ex->fifo.empty() || ex->fifo.front().ticket != front.ticket) continue;
    const bool orphaned = ex->fifo.front().orphaned;
    ex->fifo.pop_front();
    if (orphaned) {
      ex->loc->queue().release(front.ticket);
      orphans_.fetch_add(1, std::memory_order_release);
      continue;
    }
    // Ship the grant with the buffer bytes. The proxy holds the lock at
    // this point (writer: exclusively; reader: sharing with readers who
    // only read), so the buffer is stable to copy.
    wire::Frame g;
    g.type = wire::Type::Grant;
    g.location = ex->id;
    g.ticket = front.reqid;
    rt::Location* loc = ex->loc;
    if (loc->data() != nullptr && loc->size() > 0) {
      g.payload.assign(loc->data(), loc->data() + loc->size());
    }
    ex->granted[{front.peer, front.reqid}] = {front.ticket, front.mode};
    // Counted before the frame leaves: the client can otherwise race its
    // RELEASE back through the transport thread before this thread (just
    // preempted post-send) gets to the counter, and a stats() reader
    // would see a release whose grant was never counted.
    grants_sent_.fetch_add(1, std::memory_order_release);
    lk.unlock();
    ServerTransport* t = transport_raw_.load(std::memory_order_acquire);
    const bool sent = t != nullptr && t->send(front.peer, g);
    lk.lock();
    if (!sent) {
      grants_sent_.fetch_sub(1, std::memory_order_release);
      // Peer vanished between disconnect bookkeeping and our send: treat
      // as an orphan if the release path has not already reclaimed it.
      const auto it = ex->granted.find({front.peer, front.reqid});
      if (it != ex->granted.end()) {
        ex->loc->queue().release(it->second.ticket);
        orphans_.fetch_add(1, std::memory_order_release);
        ex->granted.erase(it);
      }
    }
  }
}

}  // namespace orwl::dist
