// Shared-memory transport: cross-process ORWL locations on one host.
//
// The home process creates a small "listen" segment (/<base>). Each client
// allocates a connection id from it, creates its own connection segment
// (/<base>.c<id>) holding a pair of fixed-slot SPSC byte rings — one per
// direction — and announces it by bumping the listen segment's doorbell.
// The home side's listener thread maps the new segment and serves it.
//
// Rings use process-shared futex doorbells (the runtime's futex.hpp is
// FUTEX_*_PRIVATE and cannot cross processes, so this file carries its own
// shared-word helpers): the producer bumps a doorbell and wakes the
// consumer; the consumer bumps a space bell when it frees room so a
// blocked producer resumes. Frames larger than the ring stream through it
// in chunks, so the fixed capacity (ORWL_DIST_SHM_SLOTS x 64 B) bounds
// memory, not message size.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.hpp"

namespace orwl::dist {

/// Bytes per ring slot; ORWL_DIST_SHM_SLOTS counts these.
inline constexpr std::size_t kShmSlotBytes = 64;

/// Wait/wake on a 32-bit word that lives in memory shared across
/// processes (plain FUTEX_WAIT/WAKE, not the PRIVATE variants used by the
/// intra-process runtime). wait returns when *w != expect, on wake, or
/// after timeout_ms.
void shm_futex_wait(const std::atomic<std::uint32_t>* w, std::uint32_t expect,
                    std::uint32_t timeout_ms);
void shm_futex_wake_all(const std::atomic<std::uint32_t>* w);

/// One direction of a connection: a fixed-capacity SPSC byte ring mapped
/// into both processes. Exactly one producer and one consumer thread.
/// Exposed for dist_test (wrap-around and doorbell coverage).
class ShmRing {
 public:
  /// Bytes a ring with `capacity` payload bytes occupies in the segment.
  static std::size_t bytes_for(std::size_t capacity) noexcept;

  /// Placement-construct a ring over `mem` (the creating side calls this
  /// exactly once; `capacity` is rounded up to a power of two).
  static ShmRing* init(void* mem, std::size_t capacity) noexcept;

  /// View an already-initialized ring at `mem` (the attaching side).
  static ShmRing* at(void* mem) noexcept { return static_cast<ShmRing*>(mem); }

  /// Append n bytes, blocking while the ring is full. Chunks internally,
  /// so n may exceed the capacity. Returns false (possibly after a
  /// partial write) when `abort` returns true while waiting for space.
  bool push(const std::byte* p, std::size_t n,
            const std::function<bool()>& abort);

  /// Pop up to `max` bytes into `out`; blocks up to timeout_ms when the
  /// ring is empty. Returns 0 on timeout or when the ring is closed and
  /// drained (check closed() to tell the two apart).
  std::size_t pop(std::byte* out, std::size_t max, std::uint32_t timeout_ms);

  /// Producer-side orderly close: a drained consumer sees closed() and
  /// treats it as end-of-stream.
  void close() noexcept;
  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire) != 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t readable() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  ShmRing() = default;

  // Consumer-written line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint32_t> space_bell_{0};
  // Producer-written line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint32_t> doorbell_{0};
  std::atomic<std::uint32_t> closed_{0};
  alignas(64) std::uint64_t capacity_ = 0;
  // Payload bytes follow the header in the same mapping.
  std::byte* buf() noexcept { return reinterpret_cast<std::byte*>(this + 1); }
};

/// Home side of the shm transport. `base` names the listen segment; pass
/// a process-unique string (the examples use "orwl-<pid>").
class ShmServerTransport final : public ServerTransport {
 public:
  /// \param base       Segment base name (no leading '/').
  /// \param ring_slots Capacity of each ring direction in 64-byte slots.
  explicit ShmServerTransport(std::string base, std::size_t ring_slots = 1024);
  ~ShmServerTransport() override;

  void start(Handlers handlers) override;
  void stop() override;
  bool send(PeerId peer, const wire::Frame& f) override;
  std::string address() const override { return base_; }

 private:
  struct Conn {
    void* map = nullptr;
    std::size_t map_bytes = 0;
    ShmRing* c2s = nullptr;  ///< client -> server (we consume)
    ShmRing* s2c = nullptr;  ///< server -> client (we produce)
    std::thread reader;
    std::mutex send_mu;
    std::string seg_name;
    std::atomic<bool> gone{false};
    /// Senders inside send() past the conns_ lookup (they hold this
    /// Conn raw); stop() drains it to zero before deleting.
    std::atomic<int> active_sends{0};
  };

  void listen_loop();
  void conn_loop(PeerId id, Conn* c);
  bool try_accept(std::uint32_t id);

  std::string base_;
  std::size_t ring_slots_;
  Handlers handlers_;
  void* listen_map_ = nullptr;
  std::size_t listen_bytes_ = 0;
  std::thread listener_;
  std::atomic<bool> running_{false};
  std::mutex mu_;  ///< guards conns_
  std::map<PeerId, std::unique_ptr<Conn>> conns_;
};

/// Client side: creates its connection segment under the server's base
/// name and hands frames to/from the rings.
class ShmClientTransport final : public ClientTransport {
 public:
  /// Connect to the server listening on `base`. Throws std::runtime_error
  /// when the listen segment does not exist.
  explicit ShmClientTransport(const std::string& base);
  ~ShmClientTransport() override;

  void start(std::function<void(wire::Frame&&)> on_frame,
             std::function<void()> on_disconnect) override;
  void stop() override;
  bool send(const wire::Frame& f) override;

 private:
  void recv_loop();

  std::string seg_name_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  ShmRing* c2s_ = nullptr;  ///< we produce
  ShmRing* s2c_ = nullptr;  ///< we consume
  std::function<void(wire::Frame&&)> on_frame_;
  std::function<void()> on_disconnect_;
  std::thread reader_;
  std::mutex send_mu_;
  std::atomic<bool> running_{false};
};

}  // namespace orwl::dist
