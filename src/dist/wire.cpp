#include "dist/wire.hpp"

#include <cstring>

namespace orwl::dist::wire {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>(v >> 8));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1])
                                     << 8));
}

std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::to_integer<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

bool known_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(Type::Hello) &&
         t <= static_cast<std::uint8_t>(Type::Bye);
}

}  // namespace

const char* to_string(Type t) noexcept {
  switch (t) {
    case Type::Hello: return "HELLO";
    case Type::HelloAck: return "HELLO_ACK";
    case Type::ReqRead: return "REQ_READ";
    case Type::ReqWrite: return "REQ_WRITE";
    case Type::Grant: return "GRANT";
    case Type::Release: return "RELEASE";
    case Type::Data: return "DATA";
    case Type::Error: return "ERROR";
    case Type::Bye: return "BYE";
  }
  return "?";
}

void encode(const Frame& f, std::vector<std::byte>& out) {
  out.reserve(out.size() + kHeaderBytes + f.payload.size());
  for (std::uint8_t m : kMagic) out.push_back(static_cast<std::byte>(m));
  out.push_back(static_cast<std::byte>(kVersion));
  out.push_back(static_cast<std::byte>(f.type));
  put_u16(out, f.flags);
  put_u64(out, f.location);
  put_u64(out, f.ticket);
  put_u64(out, f.aux);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

DecodeResult decode(const std::byte* data, std::size_t len, Frame& out) {
  if (len < kHeaderBytes) return {DecodeStatus::NeedMore, 0};
  for (int i = 0; i < 4; ++i) {
    if (std::to_integer<std::uint8_t>(data[i]) != kMagic[i]) {
      return {DecodeStatus::Bad, 0};
    }
  }
  if (std::to_integer<std::uint8_t>(data[4]) != kVersion) {
    return {DecodeStatus::Bad, 0};
  }
  const std::uint8_t type = std::to_integer<std::uint8_t>(data[5]);
  if (!known_type(type)) return {DecodeStatus::Bad, 0};
  const std::uint32_t plen = get_u32(data + 32);
  if (plen > kMaxPayload) return {DecodeStatus::Bad, 0};
  if (len < kHeaderBytes + plen) return {DecodeStatus::NeedMore, 0};

  out.type = static_cast<Type>(type);
  out.flags = get_u16(data + 6);
  out.location = get_u64(data + 8);
  out.ticket = get_u64(data + 16);
  out.aux = get_u64(data + 24);
  out.payload.assign(data + kHeaderBytes, data + kHeaderBytes + plen);
  return {DecodeStatus::Ok, kHeaderBytes + plen};
}

}  // namespace orwl::dist::wire
