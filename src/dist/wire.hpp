// Wire protocol of the distributed ORWL transport layer.
//
// The grant engine's ticket life-cycle (request -> grant -> release, with
// the iterative re-insert of orwl_handle2) is serialized into fixed-header
// frames so a location's FIFO can be driven from another process (shm) or
// another host (tcp). One frame = a 36-byte little-endian header plus an
// optional payload (the location buffer travels home->client in GRANT and
// client->home in DATA for the write-back).
//
// The header is explicit little-endian regardless of host byte order, so
// a frame encoded on one host decodes bit-identically on any other — the
// contract an RDMA-style transport needs as much as a socket does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orwl::dist::wire {

/// Frame discriminator. Values are wire ABI: append only, never renumber.
enum class Type : std::uint8_t {
  Hello = 1,  ///< client->home: attach to an export; payload = its name
  HelloAck,   ///< home->client: location echoes the Hello cookie,
              ///< ticket = export id, aux = location buffer size
  ReqRead,    ///< client->home: enqueue a read; ticket = client reqid
  ReqWrite,   ///< client->home: enqueue a write; ticket = client reqid
  Grant,      ///< home->client: reqid granted; payload = buffer bytes
  Release,    ///< client->home: release reqid; kFlagReinsert + aux = new
              ///< reqid runs the iterative (handle2) cycle atomically
  Data,       ///< client->home: write-back payload for a granted writer
  Error,      ///< home->client: request failed; payload = message
  Bye,        ///< either side: orderly disconnect
};

/// Human-readable frame-type name (diagnostics and tests).
const char* to_string(Type t) noexcept;

/// Release flag: atomically re-insert a request of the same mode (the
/// orwl_handle2 cycle); aux carries the client's new reqid.
inline constexpr std::uint16_t kFlagReinsert = 1u << 0;

/// Bytes of the fixed header: magic(4) version(1) type(1) flags(2)
/// location(8) ticket(8) aux(8) payload_len(4).
inline constexpr std::size_t kHeaderBytes = 36;

/// Wire magic ("ORWL") and protocol version.
inline constexpr std::uint8_t kMagic[4] = {'O', 'R', 'W', 'L'};
inline constexpr std::uint8_t kVersion = 1;

/// Upper bound on payload_len a decoder accepts (1 GiB): anything larger
/// is a corrupt or hostile header, not a location buffer.
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

/// One protocol message. `location` names the export (home-assigned id),
/// `ticket` the client-side request id, `aux` is per-type extra state.
struct Frame {
  Type type = Type::Bye;
  std::uint16_t flags = 0;
  std::uint64_t location = 0;
  std::uint64_t ticket = 0;
  std::uint64_t aux = 0;
  std::vector<std::byte> payload;

  bool operator==(const Frame& o) const = default;
};

/// Append the encoded frame (header + payload) to `out`.
void encode(const Frame& f, std::vector<std::byte>& out);

/// Encoded size of a frame.
inline std::size_t encoded_size(const Frame& f) noexcept {
  return kHeaderBytes + f.payload.size();
}

enum class DecodeStatus : std::uint8_t {
  Ok,        ///< one frame decoded; `consumed` bytes were eaten
  NeedMore,  ///< prefix of a valid frame; feed more bytes, consumed == 0
  Bad,       ///< malformed header (magic/version/length): drop the peer
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  std::size_t consumed = 0;
};

/// Decode one frame from the front of [data, data+len). Truncated input
/// is NeedMore (never Bad): stream decoders call this repeatedly as bytes
/// arrive. On Ok, `out` holds the frame and `consumed` the bytes eaten.
DecodeResult decode(const std::byte* data, std::size_t len, Frame& out);

}  // namespace orwl::dist::wire
