// The HD video-tracking application (Sec. V-C): a synchronous data-flow
// graph implemented on ORWL, with pipeline parallelism between stages and
// data parallelism (orwl_split) inside the two most expensive stages.
//
// Task graph (ids match the paper's Fig. 2 for the default parameters):
//
//   0 producer -> {10..25} gmm_split -> 1 gmm -> 2 erode
//     -> 3..6 dilate chain -> {26..29} ccl_split -> 7 ccl
//     -> 8 tracking -> 9 consumer
//
// The producer publishes frames through an orwl_fifo (2 versioned slots);
// the 16 GMM split tasks read each frame concurrently (reader sharing)
// and classify one horizontal band each; the 4 CCL split tasks label
// bands of the dilated mask; the merge tasks stitch bands back together.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "orwl/orwl.hpp"
#include "pool/thread_pool.hpp"
#include "treematch/comm_matrix.hpp"

namespace orwl::apps {

struct VideoParams {
  std::size_t width = 1280;   ///< HD by default
  std::size_t height = 720;
  std::size_t frames = 32;
  std::size_t gmm_splits = 16;
  std::size_t dilates = 4;
  std::size_t ccl_splits = 4;
  std::size_t objects = 3;
  std::int64_t min_area = 30;
  std::uint64_t seed = 5;

  std::size_t num_tasks() const {
    return 6 + dilates + gmm_splits + ccl_splits;
  }

  // Task id layout.
  std::size_t producer_task() const { return 0; }
  std::size_t gmm_task() const { return 1; }
  std::size_t erode_task() const { return 2; }
  std::size_t dilate_task(std::size_t i) const { return 3 + i; }
  std::size_t ccl_task() const { return 3 + dilates; }
  std::size_t tracking_task() const { return 4 + dilates; }
  std::size_t consumer_task() const { return 5 + dilates; }
  std::size_t gmm_split_task(std::size_t g) const {
    return 6 + dilates + g;
  }
  std::size_t ccl_split_task(std::size_t c) const {
    return 6 + dilates + gmm_splits + c;
  }
};

/// Common resolutions of the paper's Fig. 6.
VideoParams video_hd();
VideoParams video_full_hd();
VideoParams video_4k();

struct VideoResult {
  std::size_t frames = 0;
  double seconds = 0;
  std::size_t total_detections = 0;
  std::size_t total_tracks_created = 0;
  std::size_t final_track_count = 0;
  /// Per-frame detection counts (for cross-implementation equivalence).
  std::vector<int> detections_per_frame;
  /// Track positions after the last frame, sorted by track id.
  std::vector<std::array<double, 2>> final_track_positions;

  double fps() const { return seconds > 0 ? frames / seconds : 0.0; }
};

/// Single-threaded reference implementation.
VideoResult video_sequential(const VideoParams& params);

/// The ORWL data-flow implementation described above. When `stats_out`
/// is non-null it receives the runtime's ProgramStats snapshot after the
/// run (the server layer rolls these up per tenant).
VideoResult video_orwl(const VideoParams& params,
                       rt::ProgramOptions prog_opts = {},
                       rt::ProgramStats* stats_out = nullptr);

/// Fork-join baseline: per frame, each stage is a parallel-for over rows
/// / bands with a barrier in between (the paper's OpenMP comparison:
/// "fork-join in each stage of the image processing pipeline").
VideoResult video_forkjoin(const VideoParams& params,
                           pool::ThreadPool& pool);

/// Communication matrix of the ORWL task graph, extracted by dry-running
/// the real wiring (this is the matrix of the paper's Fig. 1).
tm::CommMatrix video_comm_matrix(const VideoParams& params);

/// Task names matching the paper's Fig. 2 labels.
std::vector<std::string> video_task_names(const VideoParams& params);

}  // namespace orwl::apps
