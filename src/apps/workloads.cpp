#include "apps/workloads.hpp"

#include <cmath>

#include "apps/lk23.hpp"
#include "apps/matmul.hpp"

namespace orwl::apps {

namespace {

constexpr double kD = sizeof(double);

/// Flops of one LK23 cell update: 4 mul + 4 add for qa, then sub + mul +
/// add for the relaxation.
constexpr double kLk23FlopsPerCell = 11.0;

/// Bytes streamed per cell and sweep: za + the five coefficient arrays.
constexpr double kLk23BytesPerCell = 6.0 * kD;

}  // namespace

std::pair<std::size_t, std::size_t> lk23_block_grid(std::size_t threads) {
  const std::size_t blocks = std::max<std::size_t>(1, threads / 4);
  // Most-square factorization of the block count.
  std::size_t by = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(blocks))));
  while (blocks % by != 0) --by;
  return {by, blocks / by};
}

sim::Workload lk23_orwl_workload(std::size_t n, std::size_t iters,
                                 std::size_t threads) {
  sim::Workload w;
  const auto [by, bx] = lk23_block_grid(threads);
  const std::size_t blocks = by * bx;
  const bool with_ops = threads >= 4;
  const std::size_t T = with_ops ? 4 * blocks : blocks;

  w.name = "lk23-orwl";
  w.num_threads = T;
  w.comm = with_ops
               ? lk23_ops_comm_matrix(n, by, bx)
               : tm::CommMatrix(T);
  w.iterations = static_cast<double>(iters);
  w.exec = sim::ExecModel::OrwlPipeline;
  w.flops_per_cycle = 2.0;  // stencil, not FMA-dense
  w.control_threads = std::max<std::size_t>(1, T / 4);

  const double cells = static_cast<double>((n - 2) * (n - 2));
  const double cells_per_block = cells / static_cast<double>(blocks);
  const double border_cells =
      2.0 * (std::sqrt(cells_per_block) + std::sqrt(cells_per_block));

  w.flops.assign(T, 0.0);
  w.stream_bytes.assign(T, 0.0);
  w.shared_bytes.assign(T, 0.0);
  w.wset_bytes.assign(T, 0.0);
  for (std::size_t t = 0; t < T; ++t) {
    if (!with_ops || t % 4 == 0) {
      // Center compute op: the full cell updates + coefficient streams.
      w.flops[t] = kLk23FlopsPerCell * cells_per_block;
      w.stream_bytes[t] = kLk23BytesPerCell * cells_per_block;
      w.wset_bytes[t] = kLk23BytesPerCell * cells_per_block;
    } else {
      // Border handlers / gatherer: copy work on the block borders.
      w.flops[t] = 2.0 * border_cells;
      w.stream_bytes[t] = border_cells * kD;
      w.wset_bytes[t] = border_cells * kD;
    }
  }
  // Sections per thread (center 2, borders 3, gatherer up to 5), with
  // acquire + release + control hand-off per section.
  w.sync_events_per_thread_iter = with_ops ? 10.0 : 16.0;
  return w;
}

sim::Workload lk23_forkjoin_workload(std::size_t n, std::size_t iters,
                                     std::size_t threads) {
  sim::Workload w;
  w.name = "lk23-forkjoin";
  w.num_threads = threads;
  w.iterations = static_cast<double>(iters);
  w.exec = threads == 1 ? sim::ExecModel::Sequential
                        : sim::ExecModel::ForkJoin;
  w.flops_per_cycle = 2.0;

  const double cells = static_cast<double>((n - 2) * (n - 2));
  const double per_thread = cells / static_cast<double>(threads);
  w.flops.assign(threads, kLk23FlopsPerCell * per_thread);
  // The fork-join wavefront flushes za and the coefficients between the
  // per-diagonal barriers, re-streaming them several times per sweep:
  // ~3.2x the minimal traffic (this is the cache-reuse deficit behind
  // Table II's 64G vs 14.2G L3 misses for the bound configurations).
  // The re-stream factor grows with the number of wavefront barriers
  // (small thread counts keep big blocks and good reuse).
  const double flush_factor =
      1.0 + 2.2 * std::min(1.0, static_cast<double>(threads - 1) / 32.0);
  w.stream_bytes.assign(threads,
                        kLk23BytesPerCell * per_thread * flush_factor);
  w.shared_bytes.assign(threads, 0.0);
  w.wset_bytes.assign(threads, kLk23BytesPerCell * per_thread);

  // Halo chain between adjacent row blocks.
  w.comm = tm::CommMatrix(threads);
  const double halo = static_cast<double>(n) * kD;
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    w.comm.add(t, t + 1, 2.0 * halo);
  }

  // One wavefront of anti-diagonals per sweep: with g x g blocks
  // (g = sqrt(threads)), 2g - 1 barriers and average concurrency
  // g^2 / (2g - 1).
  const double g = std::max(1.0, std::sqrt(static_cast<double>(threads)));
  w.barriers_per_iter = 2.0 * g - 1.0;
  // Rows inside a diagonal are parallel too, so the usable concurrency is
  // better than blocks/diagonals but far from T.
  w.effective_parallelism =
      std::max((g * g) / (2.0 * g - 1.0), static_cast<double>(threads) / 3.0);
  w.sync_events_per_thread_iter = w.barriers_per_iter;
  w.memory_overlap = 0.1;  // barrier-separated sweeps expose the streams
  return w;
}

sim::Workload matmul_orwl_workload(std::size_t n, std::size_t tasks) {
  sim::Workload w;
  w.name = "matmul-orwl";
  w.num_threads = tasks;
  // The block-cyclic decomposition needs n divisible by the task count;
  // for sweep points like 96 or 160 we model the nearest decomposable
  // size (<0.5% volume difference at paper scale).
  n = std::max<std::size_t>(1, n / tasks) * tasks;
  w.comm = matmul_comm_matrix(n, tasks);
  w.iterations = static_cast<double>(tasks);  // one ring phase per iter
  w.exec = sim::ExecModel::OrwlPipeline;
  w.flops_per_cycle = 8.0;  // dense kernel: machine roof applies
  w.control_threads = std::max<std::size_t>(1, tasks / 4);

  const double dn = static_cast<double>(n);
  const double nb = dn / static_cast<double>(tasks);
  w.flops.assign(tasks, 2.0 * nb * dn * nb);          // per phase
  w.stream_bytes.assign(tasks, dn * nb * kD);         // incoming B block
  w.shared_bytes.assign(tasks, 0.0);
  w.wset_bytes.assign(tasks, (2.0 * dn * nb + nb * nb) * kD);  // A,B,C
  w.sync_events_per_thread_iter = 6.0;  // two sections + hand-offs
  return w;
}

sim::Workload matmul_mkl_workload(std::size_t n, std::size_t threads) {
  sim::Workload w;
  w.name = "matmul-mkl";
  w.num_threads = threads;
  w.comm = tm::CommMatrix(threads);
  w.iterations = 1.0;
  w.exec = threads == 1 ? sim::ExecModel::Sequential
                        : sim::ExecModel::ForkJoin;
  w.flops_per_cycle = 8.0;
  w.effective_parallelism = static_cast<double>(threads);
  w.barriers_per_iter = 1.0;
  w.sync_events_per_thread_iter = 2.0;
  w.memory_overlap = 0.75;  // dense kernels prefetch and overlap well

  n = std::max<std::size_t>(1, n / threads) * threads;
  const double dn = static_cast<double>(n);
  const double rows = dn / static_cast<double>(threads);
  w.flops.assign(threads, 2.0 * rows * dn * dn);
  // Every worker streams its A rows and C rows privately...
  w.stream_bytes.assign(threads, 2.0 * rows * dn * kD);
  // ...and walks the full shared B, which lives where it was first
  // touched (the master's node). Panel reuse keeps some of it in private
  // caches, but every panel sweep still pulls lines across the fabric for
  // remote workers; net traffic is around 1.8x one B walk per worker (panel
  // re-fetches and coherence).
  w.shared_bytes.assign(threads, 1.8 * dn * dn * kD);
  w.wset_bytes.assign(threads, (2.0 * rows * dn + dn * dn * 0.1) * kD);
  return w;
}

namespace {

/// Per-pixel work estimates ("flops") of the video stages.
constexpr double kGmmOpsPerPixel = 14.0;
constexpr double kMorphOpsPerPixel = 10.0;
constexpr double kCclOpsPerPixel = 18.0;
constexpr double kProducerOpsPerPixel = 6.0;

}  // namespace

sim::Workload video_orwl_workload(const VideoParams& p) {
  sim::Workload w;
  w.name = "video-orwl";
  const std::size_t T = p.num_tasks();
  w.num_threads = T;
  w.comm = video_comm_matrix(p);
  w.iterations = static_cast<double>(p.frames);
  w.exec = sim::ExecModel::OrwlPipeline;
  w.flops_per_cycle = 2.0;
  w.control_threads = std::max<std::size_t>(1, T / 4);

  const double px = static_cast<double>(p.width * p.height);
  w.flops.assign(T, 0.0);
  w.stream_bytes.assign(T, 0.0);
  w.shared_bytes.assign(T, 0.0);
  w.wset_bytes.assign(T, 0.0);

  auto set = [&](std::size_t task, double flops, double stream,
                 double wset) {
    w.flops[task] = flops;
    w.stream_bytes[task] = stream;
    w.wset_bytes[task] = wset;
  };
  set(p.producer_task(), kProducerOpsPerPixel * px, px, px);
  const double gpx = px / static_cast<double>(p.gmm_splits);
  for (std::size_t g = 0; g < p.gmm_splits; ++g) {
    // The background model keeps 8 bytes of state per pixel.
    set(p.gmm_split_task(g), kGmmOpsPerPixel * gpx, 9.0 * gpx, 9.0 * gpx);
  }
  set(p.gmm_task(), 2.0 * px, 2.0 * px, px);
  set(p.erode_task(), kMorphOpsPerPixel * px, 2.0 * px, 2.0 * px);
  for (std::size_t d = 0; d < p.dilates; ++d) {
    set(p.dilate_task(d), kMorphOpsPerPixel * px, 2.0 * px, 2.0 * px);
  }
  const double cpx = px / static_cast<double>(p.ccl_splits);
  for (std::size_t c = 0; c < p.ccl_splits; ++c) {
    set(p.ccl_split_task(c), kCclOpsPerPixel * cpx, 6.0 * cpx, 6.0 * cpx);
  }
  set(p.ccl_task(), 4096.0, 16384.0, 16384.0);
  set(p.tracking_task(), 2048.0, 8192.0, 8192.0);
  set(p.consumer_task(), 512.0, 4096.0, 4096.0);

  w.sync_events_per_thread_iter = 8.0;
  return w;
}

sim::Workload video_forkjoin_workload(const VideoParams& p) {
  // Same aggregate work, executed as fork-join stages with barriers.
  sim::Workload w = video_orwl_workload(p);
  w.name = "video-forkjoin";
  w.exec = sim::ExecModel::ForkJoin;
  w.control_threads = 0;
  // Stages per frame: producer, gmm, merge, erode, dilates, ccl, merge,
  // track. Merge/track are serial: Amdahl limit.
  const double stages = 6.0 + static_cast<double>(p.dilates);
  w.barriers_per_iter = stages;
  const double serial_fraction = 0.06;
  const double T = static_cast<double>(w.num_threads);
  w.effective_parallelism =
      1.0 / (serial_fraction + (1.0 - serial_fraction) / T);
  w.sync_events_per_thread_iter = stages;
  return w;
}

sim::Workload video_sequential_workload(const VideoParams& p) {
  const sim::Workload full = video_orwl_workload(p);
  sim::Workload w;
  w.name = "video-sequential";
  w.num_threads = 1;
  w.comm = tm::CommMatrix(1);
  w.iterations = full.iterations;
  w.exec = sim::ExecModel::Sequential;
  w.flops_per_cycle = full.flops_per_cycle;
  double flops = 0, stream = 0, wset = 0;
  for (std::size_t t = 0; t < full.num_threads; ++t) {
    flops += full.flops[t];
    stream += full.stream_bytes[t];
    wset = std::max(wset, full.wset_bytes[t]);
  }
  w.flops = {flops};
  w.stream_bytes = {stream};
  w.shared_bytes = {0.0};
  w.wset_bytes = {wset};
  w.sync_events_per_thread_iter = 1.0;
  return w;
}

}  // namespace orwl::apps
