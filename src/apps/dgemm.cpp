#include "apps/dgemm.hpp"

#include <algorithm>

namespace orwl::apps {

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * ldc + j];
      for (std::size_t p = 0; p < k; ++p) {
        acc += a[i * lda + p] * b[p * ldb + j];
      }
      c[i * ldc + j] = acc;
    }
  }
}

namespace {

// Cache-block sizes: the k-panel of A and the (kc x nc) panel of B stay
// resident in L1/L2 across the micro-kernel sweeps.
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 128;
constexpr std::size_t kNC = 256;

/// Micro-kernel: C(i, j..j+3) += A(i, :) * B(:, j..j+3) over one k-panel,
/// i-k-j order with 4-wide accumulation so the compiler vectorizes the
/// inner updates.
inline void micro_panel(std::size_t mc, std::size_t nc, std::size_t kc,
                        const double* a, std::size_t lda, const double* b,
                        std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < mc; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t p = 0; p < kc; ++p) {
      const double aval = arow[p];
      const double* brow = b + p * ldb;
      std::size_t j = 0;
      for (; j + 4 <= nc; j += 4) {
        crow[j] += aval * brow[j];
        crow[j + 1] += aval * brow[j + 1];
        crow[j + 2] += aval * brow[j + 2];
        crow[j + 3] += aval * brow[j + 3];
      }
      for (; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

}  // namespace

void dgemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
           std::size_t lda, const double* b, std::size_t ldb, double* c,
           std::size_t ldc) {
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        micro_panel(mc, nc, kc, a + ic * lda + pc, lda,
                    b + pc * ldb + jc, ldb, c + ic * ldc + jc, ldc);
      }
    }
  }
}

}  // namespace orwl::apps
