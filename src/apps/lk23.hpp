// Livermore Kernel 23: 2-D implicit hydrodynamics fragment (Sec. V-A).
//
//   for l:
//     for j in [1, m):
//       for k in [1, n):
//         qa = za[j+1][k]*zr[j][k] + za[j-1][k]*zb[j][k]
//            + za[j][k+1]*zu[j][k] + za[j][k-1]*zv[j][k] + zz[j][k];
//         za[j][k] += 0.175 * (qa - za[j][k]);
//
// The update is Gauss–Seidel-like: north (j-1) and west (k-1) operands
// are already-updated values of the current sweep, south and east are
// previous-sweep values. Parallelization pipelines block waves from the
// north-west to the south-east corner.
//
// This module provides:
//  * a sequential reference,
//  * the ORWL decomposition (one iterative task per block, halo exchange
//    through locations — the implementation of [14] this paper reuses),
//  * the fork-join baseline (parallel-for over each anti-diagonal of
//    blocks — the shape of the paper's OpenMP comparison),
//  * the 4-operations-per-task graph builder used to extract the paper's
//    communication matrix ("Each block ... is processed by several
//    operations: 1 for computing central block and 3 for updating
//    borders", Sec. VI-B1).
#pragma once

#include <cstddef>
#include <vector>

#include "orwl/orwl.hpp"
#include "pool/thread_pool.hpp"
#include "treematch/comm_matrix.hpp"

namespace orwl::apps {

/// Problem coefficients; deterministic pseudo-random fill.
struct Lk23Problem {
  std::size_t n = 0;  ///< grid is n x n, interior [1, n-1) updated
  std::vector<double> za;  ///< state, updated in place
  std::vector<double> zb, zr, zu, zv, zz;  ///< coefficients (constant)

  static Lk23Problem generate(std::size_t n, std::uint64_t seed = 7);
  double& at(std::vector<double>& v, std::size_t j, std::size_t k) {
    return v[j * n + k];
  }
};

/// Run `iters` sweeps sequentially; mutates p.za.
void lk23_sequential(Lk23Problem& p, std::size_t iters);

/// ORWL decomposition: blocks_y x blocks_x iterative tasks exchanging
/// halos through locations. Mutates p.za; the result is bit-identical to
/// the sequential sweep. `prog_opts.locations_per_task` is overridden (4
/// halo locations per task are required). When `stats_out` is non-null it
/// receives the runtime's ProgramStats snapshot after the run.
void lk23_orwl(Lk23Problem& p, std::size_t iters, std::size_t blocks_y,
               std::size_t blocks_x, rt::ProgramOptions prog_opts = {},
               rt::ProgramStats* stats_out = nullptr);

/// ORWL decomposition with a converged-predicate loop instead of a fixed
/// sweep count: after each sweep the per-block residuals (sum of squared
/// cell updates) are sum-reduced across all tasks, and every task keeps
/// sweeping until the global residual drops to `tol` or `max_iters`
/// sweeps ran. Same wiring (and the same bit-exact sweep) as lk23_orwl.
/// \return The number of sweeps executed (uniform across tasks).
std::size_t lk23_orwl_converged(Lk23Problem& p, double tol,
                                std::size_t max_iters, std::size_t blocks_y,
                                std::size_t blocks_x,
                                rt::ProgramOptions prog_opts = {});

/// Fork-join baseline: per sweep, parallel-for over each anti-diagonal of
/// blocks. Also bit-identical to the sequential sweep.
void lk23_forkjoin(Lk23Problem& p, std::size_t iters, std::size_t blocks_y,
                   std::size_t blocks_x, pool::ThreadPool& pool);

/// Build the communication matrix of the paper's thread decomposition
/// (4 operation threads per block: center compute + 3 border handlers)
/// for an n x n problem on blocks_y x blocks_x blocks. Declaratively
/// wired and extracted by the same dependency_get() code path a real
/// execution uses — without running (or even spawning) any task.
/// Thread count = 4 * blocks_y * blocks_x.
tm::CommMatrix lk23_ops_comm_matrix(std::size_t n, std::size_t blocks_y,
                                    std::size_t blocks_x);

}  // namespace orwl::apps
