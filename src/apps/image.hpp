// Image-processing building blocks of the HD video-tracking application
// (Sec. V-C): synthetic scene generation, background subtraction with a
// per-pixel running Gaussian model (the "GMM" stage, following the
// foreground-background extraction technique of [16]), 3x3 binary
// morphology (erode / dilate), two-pass union-find connected-component
// labeling (CCL, with banded processing for the orwl_split decomposition)
// and the centroid tracker.
//
// The paper processes camera footage; we substitute a deterministic
// synthetic scene (moving bright squares over a textured noisy
// background) that exercises the identical per-pixel code paths — see
// DESIGN.md, "Substitutions".
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace orwl::apps {

using Pixel = std::uint8_t;

constexpr Pixel kForeground = 255;
constexpr Pixel kBackground = 0;

// ------------------------------------------------------------ scene -----

struct SceneObject {
  double x, y;    ///< top-left corner
  double vx, vy;  ///< velocity in pixels/frame
  std::size_t size;
  Pixel intensity;
};

/// Deterministic synthetic video source.
struct Scene {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<SceneObject> objects;
  std::uint64_t noise_seed = 0;

  static Scene demo(std::size_t width, std::size_t height,
                    std::size_t num_objects, std::uint64_t seed);

  /// Render frame `f` into `out` (size width*height): textured background
  /// + per-pixel deterministic noise + the moving objects.
  void render(std::size_t f, Pixel* out) const;

  /// Ground-truth top-left positions of the objects at frame f.
  std::vector<std::array<double, 2>> positions(std::size_t f) const;
};

// --------------------------------------------------- background model ----

/// Per-pixel running Gaussian background model: a pixel is foreground
/// when it deviates more than `threshold` sigmas from the learned mean;
/// background pixels update mean and variance with `learning_rate`.
class BackgroundModel {
 public:
  void init(std::size_t width, std::size_t height);

  /// Classify and update rows [r0, r1). The per-pixel state transition is
  /// independent across pixels, so band-parallel processing is exactly
  /// equivalent to whole-frame processing.
  void process_rows(const Pixel* frame, Pixel* mask, std::size_t r0,
                    std::size_t r1);

  std::size_t width() const noexcept { return width_; }

  float learning_rate = 0.05f;
  float threshold = 3.0f;   ///< in standard deviations
  float min_variance = 16.0f;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<float> mean_;
  std::vector<float> var_;
};

// -------------------------------------------------------- morphology ----

/// 3x3 binary erosion: out pixel is foreground iff the full 3x3
/// neighborhood (clamped at borders) is foreground.
void erode3x3(const Pixel* in, Pixel* out, std::size_t width,
              std::size_t height);

/// Row-range variant for fork-join parallelization (reads neighbors
/// outside [r0, r1), writes only inside).
void erode3x3_rows(const Pixel* in, Pixel* out, std::size_t width,
                   std::size_t height, std::size_t r0, std::size_t r1);

/// 3x3 binary dilation: foreground iff any neighbor is foreground.
void dilate3x3(const Pixel* in, Pixel* out, std::size_t width,
               std::size_t height);
void dilate3x3_rows(const Pixel* in, Pixel* out, std::size_t width,
                    std::size_t height, std::size_t r0, std::size_t r1);

// --------------------------------------------------------------- CCL ----

struct Component {
  std::int64_t area = 0;
  double sum_x = 0;  ///< sum of pixel x coordinates (centroid = sum/area)
  double sum_y = 0;
  std::int32_t min_x = 0, max_x = 0, min_y = 0, max_y = 0;

  double cx() const { return sum_x / static_cast<double>(area); }
  double cy() const { return sum_y / static_cast<double>(area); }
};

/// Whole-image 4-connected component labeling; components with area below
/// `min_area` are dropped. Returned sorted by (cy, cx) for determinism.
std::vector<Component> connected_components(const Pixel* mask,
                                            std::size_t width,
                                            std::size_t height,
                                            std::int64_t min_area);

/// Output of labeling one horizontal band: local components plus, for
/// every pixel of the band's first and last row, the index of the local
/// component it belongs to (-1 for background). This is everything the
/// merge step needs to stitch bands together.
struct BandLabeling {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<Component> comps;
  std::vector<std::int32_t> top_ids;     ///< size = width
  std::vector<std::int32_t> bottom_ids;  ///< size = width
};

/// Label rows [r0, r1) of the mask (4-connectivity inside the band).
BandLabeling label_band(const Pixel* mask, std::size_t width,
                        std::size_t r0, std::size_t r1);

/// Merge adjacent band labelings (bands must be contiguous and in order)
/// into whole-image components, equivalent to connected_components().
std::vector<Component> merge_bands(const std::vector<BandLabeling>& bands,
                                   std::size_t width,
                                   std::int64_t min_area);

// ----------------------------------------------------------- tracker ----

struct Track {
  int id = 0;
  double x = 0, y = 0;
  int age = 0;     ///< frames since creation
  int missed = 0;  ///< consecutive frames without a match
};

/// Greedy nearest-neighbor centroid tracker with track aging. Fully
/// deterministic: detections are consumed in their given order, candidate
/// tracks in ascending id order.
class Tracker {
 public:
  double max_distance = 48.0;
  int max_missed = 3;

  /// Consume centroid detections of one frame; returns live tracks.
  void update(const std::vector<std::array<double, 2>>& detections);

  const std::vector<Track>& tracks() const noexcept { return tracks_; }
  int total_tracks_created() const noexcept { return next_id_; }

 private:
  std::vector<Track> tracks_;
  int next_id_ = 0;
};

}  // namespace orwl::apps
