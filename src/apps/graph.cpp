#include "apps/graph.hpp"

#include <algorithm>
#include <atomic>
#include <deque>

#include "orwl/builder.hpp"

namespace orwl::apps {

namespace {
/// Vertices per PageRank work item. Small enough that a sweep over a
/// modest grid still produces hundreds of stealable items, large enough
/// that the deque traffic stays a fraction of the arithmetic.
constexpr std::size_t kPageRankChunk = 256;
}  // namespace

GridGraph GridGraph::make(std::size_t n) {
  GridGraph g;
  g.n = n;
  const std::size_t nv = n * n;
  g.row_ptr.reserve(nv + 1);
  g.col.reserve(4 * nv);
  g.row_ptr.push_back(0);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const std::size_t v = y * n + x;
      // Ascending neighbor order (north, west, east, south) — the fixed
      // order the pull-based PageRank sums in.
      if (y > 0) g.col.push_back(static_cast<std::uint32_t>(v - n));
      if (x > 0) g.col.push_back(static_cast<std::uint32_t>(v - 1));
      if (x + 1 < n) g.col.push_back(static_cast<std::uint32_t>(v + 1));
      if (y + 1 < n) g.col.push_back(static_cast<std::uint32_t>(v + n));
      g.row_ptr.push_back(static_cast<std::uint32_t>(g.col.size()));
    }
  }
  return g;
}

std::vector<std::uint32_t> bfs_sequential(const GridGraph& g,
                                          std::uint32_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;
  std::deque<std::uint32_t> frontier{source};
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    const std::uint32_t nd = dist[u] + 1;
    for (std::uint32_t e = g.row_ptr[u]; e < g.row_ptr[u + 1]; ++e) {
      const std::uint32_t v = g.col[e];
      if (nd < dist[v]) {
        dist[v] = nd;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs_orwl(const GridGraph& g, std::uint32_t source,
                                    std::size_t num_tasks,
                                    rt::ProgramOptions prog_opts) {
  std::vector<std::atomic<std::uint32_t>> dist(g.num_vertices());
  for (auto& d : dist) d.store(kUnreached, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  // CAS-min edge relaxation: a vertex is (re)pushed only on a strict
  // improvement, so the collective terminates and the fixed point — the
  // unique shortest hop counts — is schedule-independent.
  const ForEachBody relax = [&g, &dist](std::uint64_t item,
                                        StealContext& ctx) {
    const auto u = static_cast<std::uint32_t>(item);
    const std::uint32_t nd = dist[u].load(std::memory_order_relaxed) + 1;
    for (std::uint32_t e = g.row_ptr[u]; e < g.row_ptr[u + 1]; ++e) {
      const std::uint32_t v = g.col[e];
      std::uint32_t cur = dist[v].load(std::memory_order_relaxed);
      while (nd < cur) {
        if (dist[v].compare_exchange_weak(cur, nd,
                                          std::memory_order_relaxed)) {
          ctx.push(v);
          break;
        }
      }
    }
  };

  ProgramBuilder b(num_tasks, prog_opts);
  for (TaskId t = 0; t < num_tasks; ++t) {
    b.task(t).for_each(
        [t, source](Task&) {
          std::vector<std::uint64_t> seeds;
          if (t == 0) seeds.push_back(source);
          return seeds;
        },
        relax);
  }
  Program p = b.build();
  p.run();

  std::vector<std::uint32_t> out(dist.size());
  for (std::size_t v = 0; v < dist.size(); ++v) {
    out[v] = dist[v].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> pagerank_sequential(const GridGraph& g,
                                        std::size_t iters, double damping) {
  const std::size_t nv = g.num_vertices();
  const double base = (1.0 - damping) / static_cast<double>(nv);
  std::vector<double> rank(nv, 1.0 / static_cast<double>(nv));
  std::vector<double> next(nv, 0.0);
  for (std::size_t it = 0; it < iters; ++it) {
    const double* src = it % 2 == 0 ? rank.data() : next.data();
    double* dst = it % 2 == 0 ? next.data() : rank.data();
    for (std::size_t v = 0; v < nv; ++v) {
      double sum = 0.0;
      for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
        const std::uint32_t u = g.col[e];
        sum += src[u] / static_cast<double>(g.degree(u));
      }
      dst[v] = base + damping * sum;
    }
  }
  return iters % 2 == 0 ? rank : next;
}

std::vector<double> pagerank_orwl(const GridGraph& g, std::size_t iters,
                                  std::size_t num_tasks,
                                  rt::ProgramOptions prog_opts,
                                  double damping) {
  const std::size_t nv = g.num_vertices();
  const std::size_t chunks = (nv + kPageRankChunk - 1) / kPageRankChunk;
  const double base = (1.0 - damping) / static_cast<double>(nv);
  std::vector<double> rank(nv, 1.0 / static_cast<double>(nv));
  std::vector<double> next(nv, 0.0);

  Program p(num_tasks, prog_opts);
  p.set_task_body([&](Task& t) {
    t.schedule();
    if (t.dry_run()) return;
    // Fixed chunk ownership only seeds the work; the executor moves the
    // chunks wherever PUs are free. Writes are disjoint per chunk and
    // each sweep's reads see the previous sweep through the collective's
    // entry/exit rendezvous — no vertex-level synchronization needed.
    std::vector<std::uint64_t> seeds;
    for (std::size_t c = t.id(); c < chunks; c += t.num_tasks()) {
      seeds.push_back(c);
    }
    for (std::size_t it = 0; it < iters; ++it) {
      const double* src = it % 2 == 0 ? rank.data() : next.data();
      double* dst = it % 2 == 0 ? next.data() : rank.data();
      t.for_each(seeds, [&g, src, dst, base, damping](std::uint64_t item,
                                                      StealContext&) {
        const std::size_t begin =
            static_cast<std::size_t>(item) * kPageRankChunk;
        const std::size_t end =
            std::min(begin + kPageRankChunk, g.num_vertices());
        for (std::size_t v = begin; v < end; ++v) {
          double sum = 0.0;
          for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
            const std::uint32_t u = g.col[e];
            sum += src[u] / static_cast<double>(g.degree(u));
          }
          dst[v] = base + damping * sum;
        }
      });
    }
  });
  p.run();
  return iters % 2 == 0 ? rank : next;
}

}  // namespace orwl::apps
