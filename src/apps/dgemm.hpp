// Double-precision GEMM kernel: C += A * B (row-major).
//
// The paper uses Intel MKL's DGEMM inside the matrix-multiplication
// benchmark; we substitute a cache-blocked, register-tiled kernel (the
// evaluation compares *placements*, not BLAS implementations — see
// DESIGN.md).
#pragma once

#include <cstddef>

namespace orwl::apps {

/// C(m x n) += A(m x k) * B(k x n); row-major with explicit leading
/// dimensions (lda/ldb/ldc = row strides in elements).
void dgemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
           std::size_t lda, const double* b, std::size_t ldb, double* c,
           std::size_t ldc);

/// Triple-loop reference used to validate the blocked kernel.
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double* c, std::size_t ldc);

}  // namespace orwl::apps
