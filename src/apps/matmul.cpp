#include "apps/matmul.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "apps/dgemm.hpp"
#include "support/rng.hpp"

namespace orwl::apps {

MatmulProblem MatmulProblem::generate(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("MatmulProblem: n == 0");
  MatmulProblem p;
  p.n = n;
  support::SplitMix64 rng(seed);
  p.a.resize(n * n);
  p.b.resize(n * n);
  p.c.assign(n * n, 0.0);
  for (auto& x : p.a) x = rng.uniform() - 0.5;
  for (auto& x : p.b) x = rng.uniform() - 0.5;
  return p;
}

void matmul_sequential(MatmulProblem& p) {
  std::fill(p.c.begin(), p.c.end(), 0.0);
  dgemm(p.n, p.n, p.n, p.a.data(), p.n, p.b.data(), p.n, p.c.data(), p.n);
}

namespace {

/// Copy the column block [c0, c0+w) of the row-major n x n matrix src
/// into a dense w-wide row-major buffer.
void pack_cols(const double* src, std::size_t n, std::size_t c0,
               std::size_t w, double* dst) {
  for (std::size_t r = 0; r < n; ++r) {
    std::memcpy(dst + r * w, src + r * n + c0, w * sizeof(double));
  }
}

}  // namespace

namespace {

/// The declarative ring wiring shared by the run and the graph-only
/// extraction: each task's own slot circulates B column blocks — written
/// by the task (priority 0), read by its ring predecessor (priority 1).
ProgramBuilder matmul_builder(std::size_t n, std::size_t tasks,
                              rt::ProgramOptions prog_opts) {
  const std::size_t nb = n / tasks;
  ProgramBuilder b(tasks, prog_opts);
  for (rt::TaskId t = 0; t < tasks; ++t) {
    TaskSpec& spec = b.task(t);
    spec.owns<double[]>(n * nb);
    spec.writes<double[]>(loc(t), 0);
    if (tasks > 1) spec.reads<double[]>(loc((t + 1) % tasks), 1);
    spec.iterates(tasks);
  }
  return b;
}

}  // namespace

void matmul_orwl(MatmulProblem& p, std::size_t tasks,
                 rt::ProgramOptions prog_opts) {
  const std::size_t n = p.n;
  if (tasks == 0 || n % tasks != 0) {
    throw std::invalid_argument(
        "matmul_orwl: n must be a positive multiple of tasks");
  }
  const std::size_t nb = n / tasks;  // rows / cols per block

  std::fill(p.c.begin(), p.c.end(), 0.0);
  ProgramBuilder builder = matmul_builder(n, tasks, prog_opts);
  builder.body([&, n, nb, tasks](Task& task) {
    const std::size_t t = task.id();
    WriteLink<double[]> own = task.write_link<double[]>(loc(t));
    ReadLink<double[]> next;
    if (tasks > 1) next = task.read_link<double[]>(loc((t + 1) % tasks));

    // Initial content: B column block t, packed dense.
    std::vector<double> cur(n * nb);
    pack_cols(p.b.data(), n, t * nb, nb, cur.data());
    std::vector<double> incoming(n * nb);

    const double* a_rows = p.a.data() + t * nb * n;  // my A row block
    task.run_iterations([&](std::size_t phase) {
      // Compute C(rows t, cols (t+phase) mod tasks) = A_rows * cur.
      const std::size_t cb = (t + phase) % tasks;
      dgemm(nb, nb, n, a_rows, n, cur.data(), nb,
            p.c.data() + t * nb * n + cb * nb, n);

      if (phase + 1 == tasks || tasks == 1) return;
      // Circulate: publish my block, take my successor's.
      {
        WriteGuard<double[]> out(own);
        std::copy(cur.begin(), cur.end(), out.begin());
      }
      {
        ReadGuard<double[]> in(next);
        std::copy(in.begin(), in.end(), incoming.begin());
      }
      cur.swap(incoming);
    });
  });

  Program prog = builder.build();
  prog.run();
}

void matmul_forkjoin(MatmulProblem& p, pool::ThreadPool& pool) {
  std::fill(p.c.begin(), p.c.end(), 0.0);
  const std::size_t n = p.n;
  pool.parallel_chunks(0, n, [&](std::size_t, std::size_t r0,
                                 std::size_t r1) {
    dgemm(r1 - r0, n, n, p.a.data() + r0 * n, n, p.b.data(), n,
          p.c.data() + r0 * n, n);
  });
}

tm::CommMatrix matmul_comm_matrix(std::size_t n, std::size_t tasks) {
  if (tasks == 0 || n % tasks != 0) {
    throw std::invalid_argument(
        "matmul_comm_matrix: n must be a positive multiple of tasks");
  }
  // Same wiring as the run, declared dry: sizes are recorded without
  // allocating and the matrix comes from the declared graph — no task
  // thread is ever spawned (the v1 path dry-ran the whole program here).
  rt::ProgramOptions opts;
  opts.dry_run = true;
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  Program prog = matmul_builder(n, tasks, opts).build();
  prog.dependency_get();
  return prog.comm_matrix();
}

}  // namespace orwl::apps
