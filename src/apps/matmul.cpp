#include "apps/matmul.hpp"

#include <cstring>
#include <stdexcept>

#include "apps/dgemm.hpp"
#include "runtime/handle.hpp"
#include "support/rng.hpp"

namespace orwl::apps {

MatmulProblem MatmulProblem::generate(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("MatmulProblem: n == 0");
  MatmulProblem p;
  p.n = n;
  support::SplitMix64 rng(seed);
  p.a.resize(n * n);
  p.b.resize(n * n);
  p.c.assign(n * n, 0.0);
  for (auto& x : p.a) x = rng.uniform() - 0.5;
  for (auto& x : p.b) x = rng.uniform() - 0.5;
  return p;
}

void matmul_sequential(MatmulProblem& p) {
  std::fill(p.c.begin(), p.c.end(), 0.0);
  dgemm(p.n, p.n, p.n, p.a.data(), p.n, p.b.data(), p.n, p.c.data(), p.n);
}

namespace {

/// Copy the column block [c0, c0+w) of the row-major n x n matrix src
/// into a dense w-wide row-major buffer.
void pack_cols(const double* src, std::size_t n, std::size_t c0,
               std::size_t w, double* dst) {
  for (std::size_t r = 0; r < n; ++r) {
    std::memcpy(dst + r * w, src + r * n + c0, w * sizeof(double));
  }
}

}  // namespace

void matmul_orwl(MatmulProblem& p, std::size_t tasks,
                 rt::ProgramOptions prog_opts) {
  const std::size_t n = p.n;
  if (tasks == 0 || n % tasks != 0) {
    throw std::invalid_argument(
        "matmul_orwl: n must be a positive multiple of tasks");
  }
  const std::size_t nb = n / tasks;             // rows / cols per block
  const std::size_t slot_bytes = n * nb * sizeof(double);

  std::fill(p.c.begin(), p.c.end(), 0.0);
  prog_opts.locations_per_task = 1;
  rt::Program prog(tasks, prog_opts);

  prog.set_task_body([&, n, nb, tasks](rt::TaskContext& ctx) {
    const std::size_t t = ctx.id();
    ctx.scale(slot_bytes);

    // Own slot circulates B column blocks: written by me (priority 0),
    // read by my ring predecessor (priority 1).
    rt::Handle2 own;
    rt::Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    if (tasks > 1) {
      next.read_insert(ctx, ctx.location((t + 1) % tasks), 1);
    }

    ctx.schedule();
    if (ctx.dry_run()) return;

    // Initial content: B column block t, packed dense.
    std::vector<double> cur(n * nb);
    pack_cols(p.b.data(), n, t * nb, nb, cur.data());
    std::vector<double> incoming(n * nb);

    const double* a_rows = p.a.data() + t * nb * n;  // my A row block
    for (std::size_t phase = 0; phase < tasks; ++phase) {
      // Compute C(rows t, cols (t+phase) mod tasks) = A_rows * cur.
      const std::size_t cb = (t + phase) % tasks;
      dgemm(nb, nb, n, a_rows, n, cur.data(), nb,
            p.c.data() + t * nb * n + cb * nb, n);

      if (phase + 1 == tasks || tasks == 1) break;
      // Circulate: publish my block, take my successor's.
      {
        rt::Section sec(own);
        std::memcpy(sec.write_map().data(), cur.data(), slot_bytes);
      }
      {
        rt::Section sec(next);
        std::memcpy(incoming.data(), sec.read_map().data(), slot_bytes);
      }
      cur.swap(incoming);
    }
  });

  prog.run();
}

void matmul_forkjoin(MatmulProblem& p, pool::ThreadPool& pool) {
  std::fill(p.c.begin(), p.c.end(), 0.0);
  const std::size_t n = p.n;
  pool.parallel_chunks(0, n, [&](std::size_t, std::size_t r0,
                                 std::size_t r1) {
    dgemm(r1 - r0, n, n, p.a.data() + r0 * n, n, p.b.data(), n,
          p.c.data() + r0 * n, n);
  });
}

tm::CommMatrix matmul_comm_matrix(std::size_t n, std::size_t tasks) {
  if (tasks == 0 || n % tasks != 0) {
    throw std::invalid_argument(
        "matmul_comm_matrix: n must be a positive multiple of tasks");
  }
  rt::ProgramOptions opts;
  opts.dry_run = true;
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  rt::Program prog(tasks, opts);
  const std::size_t nb = n / tasks;
  prog.set_task_body([&, tasks, nb](rt::TaskContext& ctx) {
    ctx.scale_hint(nb * n * sizeof(double));
    rt::Handle2 own;
    rt::Handle2 next;
    own.write_insert(ctx, ctx.my_location(), 0);
    if (tasks > 1) {
      next.read_insert(ctx, ctx.location((ctx.id() + 1) % tasks), 1);
    }
    ctx.schedule();
  });
  prog.run();
  prog.dependency_get();
  return prog.comm_matrix();
}

}  // namespace orwl::apps
