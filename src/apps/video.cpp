#include "apps/video.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "apps/image.hpp"

namespace orwl::apps {

VideoParams video_hd() {
  VideoParams p;
  p.width = 1280;
  p.height = 720;
  return p;
}
VideoParams video_full_hd() {
  VideoParams p;
  p.width = 1920;
  p.height = 1080;
  return p;
}
VideoParams video_4k() {
  VideoParams p;
  p.width = 3840;
  p.height = 2160;
  return p;
}

namespace {

using orwl::split_range;

// ---------------------- location serialization PODs ----------------------

constexpr std::size_t kMaxBandComponents = 1024;
constexpr std::size_t kMaxDetections = 256;
constexpr std::size_t kMaxTracks = 256;

struct CompRecord {
  std::int64_t area;
  double sum_x, sum_y;
  std::int32_t min_x, max_x, min_y, max_y;
};
static_assert(std::is_trivially_copyable_v<CompRecord>);

struct CclBandHeader {
  std::int32_t num_components;
  std::int32_t row_begin;
  std::int32_t row_end;
  std::int32_t pad;
};
static_assert(std::is_trivially_copyable_v<CclBandHeader>);

std::size_t ccl_band_bytes(std::size_t width) {
  return sizeof(CclBandHeader) + kMaxBandComponents * sizeof(CompRecord) +
         2 * width * sizeof(std::int32_t);
}

void serialize_band(const BandLabeling& band, std::size_t width,
                    std::byte* out) {
  if (band.comps.size() > kMaxBandComponents) {
    throw std::runtime_error("video: too many components in one band");
  }
  CclBandHeader hdr{static_cast<std::int32_t>(band.comps.size()),
                    static_cast<std::int32_t>(band.row_begin),
                    static_cast<std::int32_t>(band.row_end), 0};
  std::memcpy(out, &hdr, sizeof hdr);
  std::byte* p = out + sizeof hdr;
  for (const Component& c : band.comps) {
    const CompRecord rec{c.area,  c.sum_x, c.sum_y, c.min_x,
                         c.max_x, c.min_y, c.max_y};
    std::memcpy(p, &rec, sizeof rec);
    p += sizeof rec;
  }
  p = out + sizeof hdr + kMaxBandComponents * sizeof(CompRecord);
  std::memcpy(p, band.top_ids.data(), width * sizeof(std::int32_t));
  std::memcpy(p + width * sizeof(std::int32_t), band.bottom_ids.data(),
              width * sizeof(std::int32_t));
}

BandLabeling deserialize_band(const std::byte* in, std::size_t width) {
  CclBandHeader hdr;
  std::memcpy(&hdr, in, sizeof hdr);
  BandLabeling band;
  band.row_begin = static_cast<std::size_t>(hdr.row_begin);
  band.row_end = static_cast<std::size_t>(hdr.row_end);
  const std::byte* p = in + sizeof hdr;
  band.comps.resize(static_cast<std::size_t>(hdr.num_components));
  for (auto& c : band.comps) {
    CompRecord rec;
    std::memcpy(&rec, p, sizeof rec);
    p += sizeof rec;
    c.area = rec.area;
    c.sum_x = rec.sum_x;
    c.sum_y = rec.sum_y;
    c.min_x = rec.min_x;
    c.max_x = rec.max_x;
    c.min_y = rec.min_y;
    c.max_y = rec.max_y;
  }
  p = in + sizeof hdr + kMaxBandComponents * sizeof(CompRecord);
  band.top_ids.resize(width);
  band.bottom_ids.resize(width);
  std::memcpy(band.top_ids.data(), p, width * sizeof(std::int32_t));
  std::memcpy(band.bottom_ids.data(), p + width * sizeof(std::int32_t),
              width * sizeof(std::int32_t));
  return band;
}

struct DetectionBlock {
  std::int32_t count;
  std::int32_t pad;
  struct Det {
    double x, y;
    std::int64_t area;
  } dets[kMaxDetections];
};
static_assert(std::is_trivially_copyable_v<DetectionBlock>);

struct TrackBlock {
  std::int32_t num_tracks;
  std::int32_t num_detections;
  std::int32_t tracks_created;
  std::int32_t pad;
  struct Rec {
    std::int32_t id;
    std::int32_t age;
    double x, y;
  } tracks[kMaxTracks];
};
static_assert(std::is_trivially_copyable_v<TrackBlock>);

// ------------------------------- stages -----------------------------------

std::vector<std::array<double, 2>> detections_to_centroids(
    const std::vector<Component>& comps) {
  std::vector<std::array<double, 2>> out;
  out.reserve(comps.size());
  for (const auto& c : comps) out.push_back({c.cx(), c.cy()});
  return out;
}

void fill_result_from_track_block(const TrackBlock& tb, VideoResult& res) {
  res.total_detections += static_cast<std::size_t>(tb.num_detections);
  res.detections_per_frame.push_back(tb.num_detections);
  res.final_track_count = static_cast<std::size_t>(tb.num_tracks);
  res.total_tracks_created = static_cast<std::size_t>(tb.tracks_created);
  res.final_track_positions.clear();
  for (std::int32_t i = 0; i < tb.num_tracks; ++i) {
    res.final_track_positions.push_back({tb.tracks[i].x, tb.tracks[i].y});
  }
}

}  // namespace

// ------------------------------ sequential --------------------------------

VideoResult video_sequential(const VideoParams& params) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);
  BackgroundModel model;
  model.init(w, h);
  Tracker tracker;

  std::vector<Pixel> frame(w * h), mask(w * h), eroded(w * h);
  std::vector<Pixel> dil_a(w * h), dil_b(w * h);

  VideoResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < params.frames; ++f) {
    scene.render(f, frame.data());
    model.process_rows(frame.data(), mask.data(), 0, h);
    erode3x3(mask.data(), eroded.data(), w, h);
    const Pixel* cur = eroded.data();
    for (std::size_t d = 0; d < params.dilates; ++d) {
      Pixel* out = (d % 2 == 0) ? dil_a.data() : dil_b.data();
      dilate3x3(cur, out, w, h);
      cur = out;
    }
    const auto comps = connected_components(cur, w, h, params.min_area);
    tracker.update(detections_to_centroids(comps));

    res.total_detections += comps.size();
    res.detections_per_frame.push_back(static_cast<int>(comps.size()));
  }
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.frames = params.frames;
  res.final_track_count = tracker.tracks().size();
  res.total_tracks_created =
      static_cast<std::size_t>(tracker.total_tracks_created());
  for (const auto& t : tracker.tracks()) {
    res.final_track_positions.push_back({t.x, t.y});
  }
  return res;
}

// --------------------------------- ORWL -----------------------------------

namespace {

/// Builds (and, unless the options say dry_run, executes) the ORWL video
/// program on the v2 declarative builder: every stage states what it
/// owns, reads, writes and streams up front, so the task-location graph
/// — the producer's FIFO channel included — exists before anything runs.
/// Graph extraction (`matrix != nullptr` with opts.dry_run) therefore
/// executes zero task bodies: build(), dependency_get(), done.
void run_video_program(const VideoParams& params, rt::ProgramOptions opts,
                       VideoResult* result, tm::CommMatrix* matrix,
                       rt::ProgramStats* stats = nullptr) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const std::size_t frames = params.frames;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);

  ProgramBuilder builder(params.num_tasks(), opts);

  // ---- producer ----------------------------------------------------------
  builder.task(params.producer_task())
      .fifo_out<Pixel[]>("frames", w * h, 2)
      .iterates(frames)
      .body([&scene](Task& task) {
        FifoOut<Pixel[]> out = task.fifo_out<Pixel[]>("frames");
        task.run_iterations([&](std::size_t f) {
          scene.render(f, out.begin_push().data());
          out.end_push();
        });
      });

  // ---- gmm splits --------------------------------------------------------
  for (std::size_t g = 0; g < params.gmm_splits; ++g) {
    const auto band = split_range(h, params.gmm_splits, g);
    const TaskId id = params.gmm_split_task(g);
    builder.task(id)
        .owns<Pixel[]>(band.size() * w, 0)
        .writes<Pixel[]>(loc(id, 0), 0)
        .fifo_in<Pixel[]>("frames")
        .iterates(frames)
        .body([&params, w, band, id](Task& task) {
          FifoIn<Pixel[]> frames_in = task.fifo_in<Pixel[]>("frames");
          WriteLink<Pixel[]> band_out = task.write_link<Pixel[]>(loc(id, 0));
          BackgroundModel model;  // private band state
          model.init(w, params.height);
          std::vector<Pixel> mask(w * params.height);  // band rows touched
          task.run_iterations([&](std::size_t) {
            auto in = frames_in.begin_pop();
            model.process_rows(in.data(), mask.data(), band.begin, band.end);
            frames_in.end_pop();
            WriteGuard<Pixel[]> sec(band_out);
            std::copy_n(mask.data() + band.begin * w, sec.size(), sec.data());
          });
        });
  }

  // ---- gmm merge ---------------------------------------------------------
  {
    TaskSpec& spec = builder.task(params.gmm_task());
    spec.owns<Pixel[]>(w * h, 0).writes<Pixel[]>(loc(params.gmm_task(), 0), 0);
    for (std::size_t g = 0; g < params.gmm_splits; ++g) {
      spec.reads<Pixel[]>(loc(params.gmm_split_task(g), 0), 1);
    }
    spec.iterates(frames).body([&params, w, h](Task& task) {
      WriteLink<Pixel[]> mask_out =
          task.write_link<Pixel[]>(loc(params.gmm_task(), 0));
      std::vector<ReadLink<Pixel[]>> bands_in;
      for (std::size_t g = 0; g < params.gmm_splits; ++g) {
        bands_in.push_back(
            task.read_link<Pixel[]>(loc(params.gmm_split_task(g), 0)));
      }
      task.run_iterations([&](std::size_t) {
        WriteGuard<Pixel[]> out(mask_out);
        for (std::size_t g = 0; g < params.gmm_splits; ++g) {
          const auto band = split_range(h, params.gmm_splits, g);
          ReadGuard<Pixel[]> in(bands_in[g]);
          std::copy(in.begin(), in.end(),
                    out.span().subspan(band.begin * w).begin());
        }
      });
    });
  }

  // ---- erode -------------------------------------------------------------
  builder.task(params.erode_task())
      .owns<Pixel[]>(w * h, 0)
      .reads<Pixel[]>(loc(params.gmm_task(), 0), 1)
      .writes<Pixel[]>(loc(params.erode_task(), 0), 0)
      .iterates(frames)
      .body([&params, w, h](Task& task) {
        ReadLink<Pixel[]> in =
            task.read_link<Pixel[]>(loc(params.gmm_task(), 0));
        WriteLink<Pixel[]> out =
            task.write_link<Pixel[]>(loc(params.erode_task(), 0));
        task.run_iterations([&](std::size_t) {
          ReadGuard<Pixel[]> sin(in);
          WriteGuard<Pixel[]> sout(out);
          erode3x3(sin.data(), sout.data(), w, h);
        });
      });

  // ---- dilate chain ------------------------------------------------------
  for (std::size_t d = 0; d < params.dilates; ++d) {
    const TaskId prev_task =
        d == 0 ? params.erode_task() : params.dilate_task(d - 1);
    const TaskId id = params.dilate_task(d);
    builder.task(id)
        .owns<Pixel[]>(w * h, 0)
        .reads<Pixel[]>(loc(prev_task, 0), 1)
        .writes<Pixel[]>(loc(id, 0), 0)
        .iterates(frames)
        .body([w, h, prev_task, id](Task& task) {
          ReadLink<Pixel[]> in = task.read_link<Pixel[]>(loc(prev_task, 0));
          WriteLink<Pixel[]> out = task.write_link<Pixel[]>(loc(id, 0));
          task.run_iterations([&](std::size_t) {
            ReadGuard<Pixel[]> sin(in);
            WriteGuard<Pixel[]> sout(out);
            dilate3x3(sin.data(), sout.data(), w, h);
          });
        });
  }

  // ---- ccl splits --------------------------------------------------------
  const TaskId last_dilate = params.dilate_task(params.dilates - 1);
  for (std::size_t c = 0; c < params.ccl_splits; ++c) {
    const auto band = split_range(h, params.ccl_splits, c);
    const TaskId id = params.ccl_split_task(c);
    builder.task(id)
        .owns<std::byte[]>(ccl_band_bytes(w), 0)
        .reads<Pixel[]>(loc(last_dilate, 0), 1)
        .writes<std::byte[]>(loc(id, 0), 0)
        .iterates(frames)
        .body([w, band, last_dilate, id](Task& task) {
          ReadLink<Pixel[]> in = task.read_link<Pixel[]>(loc(last_dilate, 0));
          WriteLink<std::byte[]> out =
              task.write_link<std::byte[]>(loc(id, 0));
          task.run_iterations([&](std::size_t) {
            BandLabeling labeled;
            {
              ReadGuard<Pixel[]> sin(in);
              labeled = label_band(sin.data(), w, band.begin, band.end);
            }
            WriteGuard<std::byte[]> sout(out);
            serialize_band(labeled, w, sout.data());
          });
        });
  }

  // ---- ccl merge ---------------------------------------------------------
  {
    TaskSpec& spec = builder.task(params.ccl_task());
    spec.owns<DetectionBlock>(0).writes<DetectionBlock>(
        loc(params.ccl_task(), 0), 0);
    for (std::size_t c = 0; c < params.ccl_splits; ++c) {
      spec.reads<std::byte[]>(loc(params.ccl_split_task(c), 0), 1);
    }
    spec.iterates(frames).body([&params, w](Task& task) {
      std::vector<ReadLink<std::byte[]>> bands_in;
      for (std::size_t c = 0; c < params.ccl_splits; ++c) {
        bands_in.push_back(
            task.read_link<std::byte[]>(loc(params.ccl_split_task(c), 0)));
      }
      WriteLink<DetectionBlock> out =
          task.write_link<DetectionBlock>(loc(params.ccl_task(), 0));
      task.run_iterations([&](std::size_t) {
        std::vector<BandLabeling> bands;
        for (std::size_t c = 0; c < params.ccl_splits; ++c) {
          ReadGuard<std::byte[]> sin(bands_in[c]);
          bands.push_back(deserialize_band(sin.data(), w));
        }
        const auto comps = merge_bands(bands, w, params.min_area);
        if (comps.size() > kMaxDetections) {
          throw std::runtime_error("video: too many detections");
        }
        WriteGuard<DetectionBlock> blk(out);
        blk->count = static_cast<std::int32_t>(comps.size());
        for (std::size_t i = 0; i < comps.size(); ++i) {
          blk->dets[i] = {comps[i].cx(), comps[i].cy(), comps[i].area};
        }
      });
    });
  }

  // ---- tracking ----------------------------------------------------------
  builder.task(params.tracking_task())
      .owns<TrackBlock>(0)
      .reads<DetectionBlock>(loc(params.ccl_task(), 0), 1)
      .writes<TrackBlock>(loc(params.tracking_task(), 0), 0)
      .iterates(frames)
      .body([&params](Task& task) {
        ReadLink<DetectionBlock> in =
            task.read_link<DetectionBlock>(loc(params.ccl_task(), 0));
        WriteLink<TrackBlock> out =
            task.write_link<TrackBlock>(loc(params.tracking_task(), 0));
        Tracker tracker;
        task.run_iterations([&](std::size_t) {
          std::vector<std::array<double, 2>> dets;
          std::int32_t ndet = 0;
          {
            ReadGuard<DetectionBlock> sin(in);
            ndet = sin->count;
            for (std::int32_t i = 0; i < sin->count; ++i) {
              dets.push_back({sin->dets[i].x, sin->dets[i].y});
            }
          }
          tracker.update(dets);
          WriteGuard<TrackBlock> blk(out);
          blk->num_detections = ndet;
          blk->num_tracks =
              static_cast<std::int32_t>(tracker.tracks().size());
          blk->tracks_created = tracker.total_tracks_created();
          for (std::size_t i = 0;
               i < tracker.tracks().size() && i < kMaxTracks; ++i) {
            const Track& t = tracker.tracks()[i];
            blk->tracks[i] = {t.id, t.age, t.x, t.y};
          }
        });
      });

  // ---- consumer ----------------------------------------------------------
  builder.task(params.consumer_task())
      .reads<TrackBlock>(loc(params.tracking_task(), 0), 1)
      .iterates(frames)
      .body([&params, result](Task& task) {
        ReadLink<TrackBlock> in =
            task.read_link<TrackBlock>(loc(params.tracking_task(), 0));
        task.run_iterations([&](std::size_t) {
          ReadGuard<TrackBlock> sin(in);
          if (result != nullptr) {
            fill_result_from_track_block(sin.ref(), *result);
          }
        });
      });

  Program prog = builder.build();

  if (matrix != nullptr) {
    // The declared graph IS the communication matrix: no run(), no task
    // executions, no thread spawns needed.
    prog.dependency_get();
    *matrix = prog.comm_matrix();
  }
  if (opts.dry_run) return;

  const auto t0 = std::chrono::steady_clock::now();
  prog.run();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (result != nullptr) {
    result->frames = frames;
    result->seconds = secs;
  }
  if (stats != nullptr) {
    *stats = prog.stats();
  }
}

}  // namespace

VideoResult video_orwl(const VideoParams& params,
                       rt::ProgramOptions prog_opts,
                       rt::ProgramStats* stats_out) {
  VideoResult res;
  run_video_program(params, prog_opts, &res, nullptr, stats_out);
  return res;
}

tm::CommMatrix video_comm_matrix(const VideoParams& params) {
  rt::ProgramOptions opts;
  opts.dry_run = true;
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  tm::CommMatrix m;
  run_video_program(params, opts, nullptr, &m);
  return m;
}

std::vector<std::string> video_task_names(const VideoParams& params) {
  std::vector<std::string> names(params.num_tasks());
  names[params.producer_task()] = "producer";
  names[params.gmm_task()] = "gmm";
  names[params.erode_task()] = "erode";
  for (std::size_t d = 0; d < params.dilates; ++d) {
    names[params.dilate_task(d)] = "dilate";
  }
  names[params.ccl_task()] = "ccl";
  names[params.tracking_task()] = "tracking";
  names[params.consumer_task()] = "consumer";
  for (std::size_t g = 0; g < params.gmm_splits; ++g) {
    names[params.gmm_split_task(g)] = "gmm split";
  }
  for (std::size_t c = 0; c < params.ccl_splits; ++c) {
    names[params.ccl_split_task(c)] = "ccl split";
  }
  return names;
}

// ------------------------------ fork-join ---------------------------------

VideoResult video_forkjoin(const VideoParams& params,
                           pool::ThreadPool& pool) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);
  BackgroundModel model;
  model.init(w, h);
  Tracker tracker;

  std::vector<Pixel> frame(w * h), mask(w * h), eroded(w * h);
  std::vector<Pixel> dil_a(w * h), dil_b(w * h);

  VideoResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < params.frames; ++f) {
    scene.render(f, frame.data());
    // Stage 1: background model, fork-join over row chunks.
    pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                   std::size_t r1) {
      model.process_rows(frame.data(), mask.data(), r0, r1);
    });
    // Stage 2: erode.
    pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                   std::size_t r1) {
      erode3x3_rows(mask.data(), eroded.data(), w, h, r0, r1);
    });
    // Stage 3: dilate chain.
    const Pixel* cur = eroded.data();
    for (std::size_t d = 0; d < params.dilates; ++d) {
      Pixel* out = (d % 2 == 0) ? dil_a.data() : dil_b.data();
      pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                     std::size_t r1) {
        dilate3x3_rows(cur, out, w, h, r0, r1);
      });
      cur = out;
    }
    // Stage 4: CCL, banded in parallel then merged.
    std::vector<BandLabeling> bands(params.ccl_splits);
    pool.parallel_for(0, params.ccl_splits, [&](std::size_t c) {
      const auto band = split_range(h, params.ccl_splits, c);
      bands[c] = label_band(cur, w, band.begin, band.end);
    });
    const auto comps = merge_bands(bands, w, params.min_area);
    // Stage 5: tracking (sequential).
    tracker.update(detections_to_centroids(comps));

    res.total_detections += comps.size();
    res.detections_per_frame.push_back(static_cast<int>(comps.size()));
  }
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.frames = params.frames;
  res.final_track_count = tracker.tracks().size();
  res.total_tracks_created =
      static_cast<std::size_t>(tracker.total_tracks_created());
  for (const auto& t : tracker.tracks()) {
    res.final_track_positions.push_back({t.x, t.y});
  }
  return res;
}

}  // namespace orwl::apps
