#include "apps/video.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "apps/image.hpp"
#include "runtime/fifo.hpp"
#include "runtime/handle.hpp"
#include "runtime/split.hpp"

namespace orwl::apps {

VideoParams video_hd() {
  VideoParams p;
  p.width = 1280;
  p.height = 720;
  return p;
}
VideoParams video_full_hd() {
  VideoParams p;
  p.width = 1920;
  p.height = 1080;
  return p;
}
VideoParams video_4k() {
  VideoParams p;
  p.width = 3840;
  p.height = 2160;
  return p;
}

namespace {

using rt::Handle2;
using rt::Section;
using rt::split_range;

// ---------------------- location serialization PODs ----------------------

constexpr std::size_t kMaxBandComponents = 1024;
constexpr std::size_t kMaxDetections = 256;
constexpr std::size_t kMaxTracks = 256;

struct CompRecord {
  std::int64_t area;
  double sum_x, sum_y;
  std::int32_t min_x, max_x, min_y, max_y;
};
static_assert(std::is_trivially_copyable_v<CompRecord>);

struct CclBandHeader {
  std::int32_t num_components;
  std::int32_t row_begin;
  std::int32_t row_end;
  std::int32_t pad;
};
static_assert(std::is_trivially_copyable_v<CclBandHeader>);

std::size_t ccl_band_bytes(std::size_t width) {
  return sizeof(CclBandHeader) + kMaxBandComponents * sizeof(CompRecord) +
         2 * width * sizeof(std::int32_t);
}

void serialize_band(const BandLabeling& band, std::size_t width,
                    std::byte* out) {
  if (band.comps.size() > kMaxBandComponents) {
    throw std::runtime_error("video: too many components in one band");
  }
  CclBandHeader hdr{static_cast<std::int32_t>(band.comps.size()),
                    static_cast<std::int32_t>(band.row_begin),
                    static_cast<std::int32_t>(band.row_end), 0};
  std::memcpy(out, &hdr, sizeof hdr);
  std::byte* p = out + sizeof hdr;
  for (const Component& c : band.comps) {
    const CompRecord rec{c.area,  c.sum_x, c.sum_y, c.min_x,
                         c.max_x, c.min_y, c.max_y};
    std::memcpy(p, &rec, sizeof rec);
    p += sizeof rec;
  }
  p = out + sizeof hdr + kMaxBandComponents * sizeof(CompRecord);
  std::memcpy(p, band.top_ids.data(), width * sizeof(std::int32_t));
  std::memcpy(p + width * sizeof(std::int32_t), band.bottom_ids.data(),
              width * sizeof(std::int32_t));
}

BandLabeling deserialize_band(const std::byte* in, std::size_t width) {
  CclBandHeader hdr;
  std::memcpy(&hdr, in, sizeof hdr);
  BandLabeling band;
  band.row_begin = static_cast<std::size_t>(hdr.row_begin);
  band.row_end = static_cast<std::size_t>(hdr.row_end);
  const std::byte* p = in + sizeof hdr;
  band.comps.resize(static_cast<std::size_t>(hdr.num_components));
  for (auto& c : band.comps) {
    CompRecord rec;
    std::memcpy(&rec, p, sizeof rec);
    p += sizeof rec;
    c.area = rec.area;
    c.sum_x = rec.sum_x;
    c.sum_y = rec.sum_y;
    c.min_x = rec.min_x;
    c.max_x = rec.max_x;
    c.min_y = rec.min_y;
    c.max_y = rec.max_y;
  }
  p = in + sizeof hdr + kMaxBandComponents * sizeof(CompRecord);
  band.top_ids.resize(width);
  band.bottom_ids.resize(width);
  std::memcpy(band.top_ids.data(), p, width * sizeof(std::int32_t));
  std::memcpy(band.bottom_ids.data(), p + width * sizeof(std::int32_t),
              width * sizeof(std::int32_t));
  return band;
}

struct DetectionBlock {
  std::int32_t count;
  std::int32_t pad;
  struct Det {
    double x, y;
    std::int64_t area;
  } dets[kMaxDetections];
};
static_assert(std::is_trivially_copyable_v<DetectionBlock>);

struct TrackBlock {
  std::int32_t num_tracks;
  std::int32_t num_detections;
  std::int32_t tracks_created;
  std::int32_t pad;
  struct Rec {
    std::int32_t id;
    std::int32_t age;
    double x, y;
  } tracks[kMaxTracks];
};
static_assert(std::is_trivially_copyable_v<TrackBlock>);

// ------------------------------- stages -----------------------------------

std::vector<std::array<double, 2>> detections_to_centroids(
    const std::vector<Component>& comps) {
  std::vector<std::array<double, 2>> out;
  out.reserve(comps.size());
  for (const auto& c : comps) out.push_back({c.cx(), c.cy()});
  return out;
}

void fill_result_from_track_block(const TrackBlock& tb, VideoResult& res) {
  res.total_detections += static_cast<std::size_t>(tb.num_detections);
  res.detections_per_frame.push_back(tb.num_detections);
  res.final_track_count = static_cast<std::size_t>(tb.num_tracks);
  res.total_tracks_created = static_cast<std::size_t>(tb.tracks_created);
  res.final_track_positions.clear();
  for (std::int32_t i = 0; i < tb.num_tracks; ++i) {
    res.final_track_positions.push_back({tb.tracks[i].x, tb.tracks[i].y});
  }
}

}  // namespace

// ------------------------------ sequential --------------------------------

VideoResult video_sequential(const VideoParams& params) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);
  BackgroundModel model;
  model.init(w, h);
  Tracker tracker;

  std::vector<Pixel> frame(w * h), mask(w * h), eroded(w * h);
  std::vector<Pixel> dil_a(w * h), dil_b(w * h);

  VideoResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < params.frames; ++f) {
    scene.render(f, frame.data());
    model.process_rows(frame.data(), mask.data(), 0, h);
    erode3x3(mask.data(), eroded.data(), w, h);
    const Pixel* cur = eroded.data();
    for (std::size_t d = 0; d < params.dilates; ++d) {
      Pixel* out = (d % 2 == 0) ? dil_a.data() : dil_b.data();
      dilate3x3(cur, out, w, h);
      cur = out;
    }
    const auto comps = connected_components(cur, w, h, params.min_area);
    tracker.update(detections_to_centroids(comps));

    res.total_detections += comps.size();
    res.detections_per_frame.push_back(static_cast<int>(comps.size()));
  }
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.frames = params.frames;
  res.final_track_count = tracker.tracks().size();
  res.total_tracks_created =
      static_cast<std::size_t>(tracker.total_tracks_created());
  for (const auto& t : tracker.tracks()) {
    res.final_track_positions.push_back({t.x, t.y});
  }
  return res;
}

// --------------------------------- ORWL -----------------------------------

namespace {

/// Builds and runs the ORWL video program. With opts.dry_run the bodies
/// return right after schedule() and only the graph is produced.
void run_video_program(const VideoParams& params, rt::ProgramOptions opts,
                       VideoResult* result, tm::CommMatrix* matrix) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const std::size_t frame_bytes = w * h;
  const std::size_t frames = params.frames;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);

  opts.locations_per_task = 2;
  rt::Program prog(params.num_tasks(), opts);

  // ---- producer --------------------------------------------------------
  prog.set_task_body(params.producer_task(), [&](rt::TaskContext& ctx) {
    rt::FifoProducer out;
    out.link(ctx, params.producer_task(), 0, 2, frame_bytes);
    ctx.schedule();
    if (ctx.dry_run()) return;
    for (std::size_t f = 0; f < frames; ++f) {
      auto buf = out.begin_push();
      scene.render(f, reinterpret_cast<Pixel*>(buf.data()));
      out.end_push();
    }
  });

  // ---- gmm splits --------------------------------------------------------
  for (std::size_t g = 0; g < params.gmm_splits; ++g) {
    prog.set_task_body(params.gmm_split_task(g), [&, g](rt::TaskContext& ctx) {
      const auto band = split_range(h, params.gmm_splits, g);
      const std::size_t band_bytes = band.size() * w;
      ctx.scale(band_bytes, 0);
      rt::FifoConsumer frames_in;
      frames_in.link(ctx, params.producer_task(), 0, 2);
      Handle2 band_out;
      band_out.write_insert(ctx, ctx.my_location(0), 0);
      ctx.schedule();
      if (ctx.dry_run()) return;

      BackgroundModel model;  // private band state
      model.init(w, h);
      std::vector<Pixel> mask(w * h);  // only band rows are touched
      for (std::size_t f = 0; f < frames; ++f) {
        auto in = frames_in.begin_pop();
        model.process_rows(reinterpret_cast<const Pixel*>(in.data()),
                           mask.data(), band.begin, band.end);
        frames_in.end_pop();
        Section sec(band_out);
        std::memcpy(sec.write_map().data(), mask.data() + band.begin * w,
                    band_bytes);
      }
    });
  }

  // ---- gmm merge ---------------------------------------------------------
  prog.set_task_body(params.gmm_task(), [&](rt::TaskContext& ctx) {
    ctx.scale(frame_bytes, 0);
    Handle2 mask_out;
    mask_out.write_insert(ctx, ctx.my_location(0), 0);
    std::vector<std::unique_ptr<Handle2>> bands_in;
    for (std::size_t g = 0; g < params.gmm_splits; ++g) {
      bands_in.push_back(std::make_unique<Handle2>());
      bands_in.back()->read_insert(
          ctx, ctx.location(params.gmm_split_task(g), 0), 1);
    }
    ctx.schedule();
    if (ctx.dry_run()) return;

    for (std::size_t f = 0; f < frames; ++f) {
      Section out(mask_out);
      std::byte* mask = out.write_map().data();
      for (std::size_t g = 0; g < params.gmm_splits; ++g) {
        const auto band = split_range(h, params.gmm_splits, g);
        Section in(*bands_in[g]);
        std::memcpy(mask + band.begin * w, in.read_map().data(),
                    band.size() * w);
      }
    }
  });

  // ---- erode -------------------------------------------------------------
  prog.set_task_body(params.erode_task(), [&](rt::TaskContext& ctx) {
    ctx.scale(frame_bytes, 0);
    Handle2 in;
    Handle2 out;
    in.read_insert(ctx, ctx.location(params.gmm_task(), 0), 1);
    out.write_insert(ctx, ctx.my_location(0), 0);
    ctx.schedule();
    if (ctx.dry_run()) return;
    for (std::size_t f = 0; f < frames; ++f) {
      Section sin(in);
      Section sout(out);
      erode3x3(reinterpret_cast<const Pixel*>(sin.read_map().data()),
               reinterpret_cast<Pixel*>(sout.write_map().data()), w, h);
    }
  });

  // ---- dilate chain --------------------------------------------------------
  for (std::size_t d = 0; d < params.dilates; ++d) {
    prog.set_task_body(params.dilate_task(d), [&, d](rt::TaskContext& ctx) {
      ctx.scale(frame_bytes, 0);
      const std::size_t prev_task =
          d == 0 ? params.erode_task() : params.dilate_task(d - 1);
      Handle2 in;
      Handle2 out;
      in.read_insert(ctx, ctx.location(prev_task, 0), 1);
      out.write_insert(ctx, ctx.my_location(0), 0);
      ctx.schedule();
      if (ctx.dry_run()) return;
      for (std::size_t f = 0; f < frames; ++f) {
        Section sin(in);
        Section sout(out);
        dilate3x3(reinterpret_cast<const Pixel*>(sin.read_map().data()),
                  reinterpret_cast<Pixel*>(sout.write_map().data()), w, h);
      }
    });
  }

  // ---- ccl splits -----------------------------------------------------------
  const std::size_t last_dilate = params.dilate_task(params.dilates - 1);
  for (std::size_t c = 0; c < params.ccl_splits; ++c) {
    prog.set_task_body(params.ccl_split_task(c), [&, c](rt::TaskContext& ctx) {
      const auto band = split_range(h, params.ccl_splits, c);
      ctx.scale(ccl_band_bytes(w), 0);
      Handle2 in;
      Handle2 out;
      in.read_insert(ctx, ctx.location(last_dilate, 0), 1);
      out.write_insert(ctx, ctx.my_location(0), 0);
      ctx.schedule();
      if (ctx.dry_run()) return;
      for (std::size_t f = 0; f < frames; ++f) {
        BandLabeling labeled;
        {
          Section sin(in);
          labeled = label_band(
              reinterpret_cast<const Pixel*>(sin.read_map().data()), w,
              band.begin, band.end);
        }
        Section sout(out);
        serialize_band(labeled, w, sout.write_map().data());
      }
    });
  }

  // ---- ccl merge ---------------------------------------------------------
  prog.set_task_body(params.ccl_task(), [&](rt::TaskContext& ctx) {
    ctx.scale(sizeof(DetectionBlock), 0);
    std::vector<std::unique_ptr<Handle2>> bands_in;
    for (std::size_t c = 0; c < params.ccl_splits; ++c) {
      bands_in.push_back(std::make_unique<Handle2>());
      bands_in.back()->read_insert(
          ctx, ctx.location(params.ccl_split_task(c), 0), 1);
    }
    Handle2 out;
    out.write_insert(ctx, ctx.my_location(0), 0);
    ctx.schedule();
    if (ctx.dry_run()) return;

    for (std::size_t f = 0; f < frames; ++f) {
      std::vector<BandLabeling> bands;
      for (std::size_t c = 0; c < params.ccl_splits; ++c) {
        Section sin(*bands_in[c]);
        bands.push_back(deserialize_band(sin.read_map().data(), w));
      }
      const auto comps = merge_bands(bands, w, params.min_area);
      if (comps.size() > kMaxDetections) {
        throw std::runtime_error("video: too many detections");
      }
      Section sout(out);
      auto* blk = reinterpret_cast<DetectionBlock*>(sout.write_map().data());
      blk->count = static_cast<std::int32_t>(comps.size());
      for (std::size_t i = 0; i < comps.size(); ++i) {
        blk->dets[i] = {comps[i].cx(), comps[i].cy(), comps[i].area};
      }
    }
  });

  // ---- tracking ------------------------------------------------------------
  prog.set_task_body(params.tracking_task(), [&](rt::TaskContext& ctx) {
    ctx.scale(sizeof(TrackBlock), 0);
    Handle2 in;
    Handle2 out;
    in.read_insert(ctx, ctx.location(params.ccl_task(), 0), 1);
    out.write_insert(ctx, ctx.my_location(0), 0);
    ctx.schedule();
    if (ctx.dry_run()) return;

    Tracker tracker;
    for (std::size_t f = 0; f < frames; ++f) {
      std::vector<std::array<double, 2>> dets;
      std::int32_t ndet = 0;
      {
        Section sin(in);
        const auto* blk =
            reinterpret_cast<const DetectionBlock*>(sin.read_map().data());
        ndet = blk->count;
        for (std::int32_t i = 0; i < blk->count; ++i) {
          dets.push_back({blk->dets[i].x, blk->dets[i].y});
        }
      }
      tracker.update(dets);
      Section sout(out);
      auto* blk = reinterpret_cast<TrackBlock*>(sout.write_map().data());
      blk->num_detections = ndet;
      blk->num_tracks =
          static_cast<std::int32_t>(tracker.tracks().size());
      blk->tracks_created = tracker.total_tracks_created();
      for (std::size_t i = 0; i < tracker.tracks().size() && i < kMaxTracks;
           ++i) {
        const Track& t = tracker.tracks()[i];
        blk->tracks[i] = {t.id, t.age, t.x, t.y};
      }
    }
  });

  // ---- consumer -------------------------------------------------------------
  prog.set_task_body(params.consumer_task(), [&](rt::TaskContext& ctx) {
    Handle2 in;
    in.read_insert(ctx, ctx.location(params.tracking_task(), 0), 1);
    ctx.schedule();
    if (ctx.dry_run()) return;
    for (std::size_t f = 0; f < frames; ++f) {
      Section sin(in);
      if (result != nullptr) {
        const auto* blk =
            reinterpret_cast<const TrackBlock*>(sin.read_map().data());
        fill_result_from_track_block(*blk, *result);
      }
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  prog.run();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (result != nullptr) {
    result->frames = frames;
    result->seconds = secs;
  }
  if (matrix != nullptr) {
    prog.dependency_get();
    *matrix = prog.comm_matrix();
  }
}

}  // namespace

VideoResult video_orwl(const VideoParams& params,
                       rt::ProgramOptions prog_opts) {
  VideoResult res;
  run_video_program(params, prog_opts, &res, nullptr);
  return res;
}

tm::CommMatrix video_comm_matrix(const VideoParams& params) {
  rt::ProgramOptions opts;
  opts.dry_run = true;
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  tm::CommMatrix m;
  run_video_program(params, opts, nullptr, &m);
  return m;
}

std::vector<std::string> video_task_names(const VideoParams& params) {
  std::vector<std::string> names(params.num_tasks());
  names[params.producer_task()] = "producer";
  names[params.gmm_task()] = "gmm";
  names[params.erode_task()] = "erode";
  for (std::size_t d = 0; d < params.dilates; ++d) {
    names[params.dilate_task(d)] = "dilate";
  }
  names[params.ccl_task()] = "ccl";
  names[params.tracking_task()] = "tracking";
  names[params.consumer_task()] = "consumer";
  for (std::size_t g = 0; g < params.gmm_splits; ++g) {
    names[params.gmm_split_task(g)] = "gmm split";
  }
  for (std::size_t c = 0; c < params.ccl_splits; ++c) {
    names[params.ccl_split_task(c)] = "ccl split";
  }
  return names;
}

// ------------------------------ fork-join ---------------------------------

VideoResult video_forkjoin(const VideoParams& params,
                           pool::ThreadPool& pool) {
  const std::size_t w = params.width;
  const std::size_t h = params.height;
  const Scene scene = Scene::demo(w, h, params.objects, params.seed);
  BackgroundModel model;
  model.init(w, h);
  Tracker tracker;

  std::vector<Pixel> frame(w * h), mask(w * h), eroded(w * h);
  std::vector<Pixel> dil_a(w * h), dil_b(w * h);

  VideoResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < params.frames; ++f) {
    scene.render(f, frame.data());
    // Stage 1: background model, fork-join over row chunks.
    pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                   std::size_t r1) {
      model.process_rows(frame.data(), mask.data(), r0, r1);
    });
    // Stage 2: erode.
    pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                   std::size_t r1) {
      erode3x3_rows(mask.data(), eroded.data(), w, h, r0, r1);
    });
    // Stage 3: dilate chain.
    const Pixel* cur = eroded.data();
    for (std::size_t d = 0; d < params.dilates; ++d) {
      Pixel* out = (d % 2 == 0) ? dil_a.data() : dil_b.data();
      pool.parallel_chunks(0, h, [&](std::size_t, std::size_t r0,
                                     std::size_t r1) {
        dilate3x3_rows(cur, out, w, h, r0, r1);
      });
      cur = out;
    }
    // Stage 4: CCL, banded in parallel then merged.
    std::vector<BandLabeling> bands(params.ccl_splits);
    pool.parallel_for(0, params.ccl_splits, [&](std::size_t c) {
      const auto band = split_range(h, params.ccl_splits, c);
      bands[c] = label_band(cur, w, band.begin, band.end);
    });
    const auto comps = merge_bands(bands, w, params.min_area);
    // Stage 5: tracking (sequential).
    tracker.update(detections_to_centroids(comps));

    res.total_detections += comps.size();
    res.detections_per_frame.push_back(static_cast<int>(comps.size()));
  }
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.frames = params.frames;
  res.final_track_count = tracker.tracks().size();
  res.total_tracks_created =
      static_cast<std::size_t>(tracker.total_tracks_created());
  for (const auto& t : tracker.tracks()) {
    res.final_track_positions.push_back({t.x, t.y});
  }
  return res;
}

}  // namespace orwl::apps
