#include "apps/lk23.hpp"

#include <stdexcept>

#include "runtime/handle.hpp"
#include "runtime/split.hpp"
#include "support/rng.hpp"

namespace orwl::apps {

namespace {

using rt::Handle2;
using rt::Section;
using rt::split_range;

constexpr double kRelax = 0.175;

/// One Gauss-Seidel cell update.
inline void update_cell(double& za_jk, double north, double south,
                        double east, double west, double zr, double zb,
                        double zu, double zv, double zz) {
  const double qa =
      south * zr + north * zb + east * zu + west * zv + zz;
  za_jk += kRelax * (qa - za_jk);
}

}  // namespace

Lk23Problem Lk23Problem::generate(std::size_t n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("Lk23Problem: n must be >= 3");
  Lk23Problem p;
  p.n = n;
  support::SplitMix64 rng(seed);
  auto fill = [&](std::vector<double>& v, double scale) {
    v.resize(n * n);
    for (auto& x : v) x = scale * (rng.uniform() - 0.5);
  };
  fill(p.za, 1.0);
  // Small coefficients keep the relaxation numerically tame.
  fill(p.zb, 0.05);
  fill(p.zr, 0.05);
  fill(p.zu, 0.05);
  fill(p.zv, 0.05);
  fill(p.zz, 0.1);
  return p;
}

void lk23_sequential(Lk23Problem& p, std::size_t iters) {
  const std::size_t n = p.n;
  double* za = p.za.data();
  const double* zb = p.zb.data();
  const double* zr = p.zr.data();
  const double* zu = p.zu.data();
  const double* zv = p.zv.data();
  const double* zz = p.zz.data();
  for (std::size_t l = 0; l < iters; ++l) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const std::size_t i = j * n + k;
        update_cell(za[i], za[i - n], za[i + n], za[i + 1], za[i - 1],
                    zr[i], zb[i], zu[i], zv[i], zz[i]);
      }
    }
  }
}

namespace {

/// Shared block geometry for the parallel variants.
struct BlockGeom {
  std::size_t r0, r1;  ///< row range [r0, r1) within the grid
  std::size_t c0, c1;  ///< col range
  std::size_t h() const { return r1 - r0; }
  std::size_t w() const { return c1 - c0; }
};

BlockGeom block_geom(std::size_t n, std::size_t by, std::size_t bx,
                     std::size_t bi, std::size_t bj) {
  // The interior [1, n-1) is tiled; boundary ring stays fixed.
  const auto rows = split_range(n - 2, by, bi);
  const auto cols = split_range(n - 2, bx, bj);
  return BlockGeom{rows.begin + 1, rows.end + 1, cols.begin + 1,
                   cols.end + 1};
}

/// Compute one block sweep. Neighbor values that live outside the block
/// come from the halo arrays (which the caller filled from locations or
/// from the fixed grid boundary).
void sweep_block(Lk23Problem& p, const BlockGeom& g,
                 const std::vector<double>& halo_n,
                 const std::vector<double>& halo_s,
                 const std::vector<double>& halo_w,
                 const std::vector<double>& halo_e) {
  const std::size_t n = p.n;
  double* za = p.za.data();
  for (std::size_t j = g.r0; j < g.r1; ++j) {
    for (std::size_t k = g.c0; k < g.c1; ++k) {
      const std::size_t i = j * n + k;
      const double north = j == g.r0 ? halo_n[k - g.c0] : za[i - n];
      const double south = j == g.r1 - 1 ? halo_s[k - g.c0] : za[i + n];
      const double west = k == g.c0 ? halo_w[j - g.r0] : za[i - 1];
      const double east = k == g.c1 - 1 ? halo_e[j - g.r0] : za[i + 1];
      update_cell(za[i], north, south, east, west, p.zr[i], p.zb[i],
                  p.zu[i], p.zv[i], p.zz[i]);
    }
  }
}

// Halo location slots per task (owner writes its borders after updating):
//   0 = N-out: own top row    (read by the NORTH neighbor, one-iter lag)
//   1 = S-out: own bottom row (read by the SOUTH neighbor, same iter)
//   2 = W-out: own left col   (read by the WEST  neighbor, one-iter lag)
//   3 = E-out: own right col  (read by the EAST  neighbor, same iter)
// Same-iteration locations order writer first (w:0, r:1); lagged ones
// order the reader first (r:0, w:1) and carry the initial border value.
constexpr std::size_t kLocN = 0;
constexpr std::size_t kLocS = 1;
constexpr std::size_t kLocW = 2;
constexpr std::size_t kLocE = 3;

}  // namespace

void lk23_orwl(Lk23Problem& p, std::size_t iters, std::size_t by,
               std::size_t bx, rt::ProgramOptions prog_opts) {
  if (by == 0 || bx == 0 || by > p.n - 2 || bx > p.n - 2) {
    throw std::invalid_argument("lk23_orwl: bad block grid");
  }
  prog_opts.locations_per_task = 4;
  rt::Program prog(by * bx, prog_opts);

  prog.set_task_body([&, by, bx, iters](rt::TaskContext& ctx) {
    const std::size_t bi = ctx.id() / bx;
    const std::size_t bj = ctx.id() % bx;
    const BlockGeom g = block_geom(p.n, by, bx, bi, bj);
    const std::size_t n = p.n;

    // Scale own halo locations and prime the lagged ones with the
    // initial border values.
    ctx.scale(g.w() * sizeof(double), kLocN);
    ctx.scale(g.w() * sizeof(double), kLocS);
    ctx.scale(g.h() * sizeof(double), kLocW);
    ctx.scale(g.h() * sizeof(double), kLocE);
    {
      double* init_n = ctx.my_location(kLocN).as<double>();
      double* init_w = ctx.my_location(kLocW).as<double>();
      for (std::size_t k = 0; k < g.w(); ++k) {
        init_n[k] = p.za[g.r0 * n + g.c0 + k];
      }
      for (std::size_t j = 0; j < g.h(); ++j) {
        init_w[j] = p.za[(g.r0 + j) * n + g.c0];
      }
    }

    // Own write handles.
    Handle2 w_n, w_s, w_w, w_e;
    w_n.write_insert(ctx, ctx.my_location(kLocN), 1);  // lagged: reader first
    w_s.write_insert(ctx, ctx.my_location(kLocS), 0);  // same-iter
    w_w.write_insert(ctx, ctx.my_location(kLocW), 1);  // lagged
    w_e.write_insert(ctx, ctx.my_location(kLocE), 0);  // same-iter

    // Incoming halo handles (absent on grid boundary).
    const bool has_north = bi > 0;
    const bool has_south = bi + 1 < by;
    const bool has_west = bj > 0;
    const bool has_east = bj + 1 < bx;
    Handle2 r_n, r_s, r_w, r_e;
    if (has_north) {  // north's bottom row, same iteration
      r_n.read_insert(ctx, ctx.location(ctx.id() - bx, kLocS), 1);
    }
    if (has_south) {  // south's top row, one-iteration lag
      r_s.read_insert(ctx, ctx.location(ctx.id() + bx, kLocN), 0);
    }
    if (has_west) {  // west's right col, same iteration
      r_w.read_insert(ctx, ctx.location(ctx.id() - 1, kLocE), 1);
    }
    if (has_east) {  // east's left col, one-iteration lag
      r_e.read_insert(ctx, ctx.location(ctx.id() + 1, kLocW), 0);
    }

    ctx.schedule();
    if (ctx.dry_run()) return;

    std::vector<double> halo_n(g.w()), halo_s(g.w());
    std::vector<double> halo_w(g.h()), halo_e(g.h());

    for (std::size_t l = 0; l < iters; ++l) {
      // -- gather phase ------------------------------------------------
      if (has_north) {
        Section sec(r_n);
        const double* v = sec.as_const<double>();
        std::copy(v, v + g.w(), halo_n.begin());
      } else {
        for (std::size_t k = 0; k < g.w(); ++k) {
          halo_n[k] = p.za[(g.r0 - 1) * n + g.c0 + k];
        }
      }
      if (has_west) {
        Section sec(r_w);
        const double* v = sec.as_const<double>();
        std::copy(v, v + g.h(), halo_w.begin());
      } else {
        for (std::size_t j = 0; j < g.h(); ++j) {
          halo_w[j] = p.za[(g.r0 + j) * n + g.c0 - 1];
        }
      }
      if (has_south) {
        Section sec(r_s);
        const double* v = sec.as_const<double>();
        std::copy(v, v + g.w(), halo_s.begin());
      } else {
        for (std::size_t k = 0; k < g.w(); ++k) {
          halo_s[k] = p.za[g.r1 * n + g.c0 + k];
        }
      }
      if (has_east) {
        Section sec(r_e);
        const double* v = sec.as_const<double>();
        std::copy(v, v + g.h(), halo_e.begin());
      } else {
        for (std::size_t j = 0; j < g.h(); ++j) {
          halo_e[j] = p.za[(g.r0 + j) * n + g.c1];
        }
      }

      // -- compute -----------------------------------------------------
      sweep_block(p, g, halo_n, halo_s, halo_w, halo_e);

      // -- publish phase -----------------------------------------------
      {
        Section sec(w_n);
        double* v = sec.as<double>();
        for (std::size_t k = 0; k < g.w(); ++k) {
          v[k] = p.za[g.r0 * n + g.c0 + k];
        }
      }
      {
        Section sec(w_s);
        double* v = sec.as<double>();
        for (std::size_t k = 0; k < g.w(); ++k) {
          v[k] = p.za[(g.r1 - 1) * n + g.c0 + k];
        }
      }
      {
        Section sec(w_w);
        double* v = sec.as<double>();
        for (std::size_t j = 0; j < g.h(); ++j) {
          v[j] = p.za[(g.r0 + j) * n + g.c0];
        }
      }
      {
        Section sec(w_e);
        double* v = sec.as<double>();
        for (std::size_t j = 0; j < g.h(); ++j) {
          v[j] = p.za[(g.r0 + j) * n + g.c1 - 1];
        }
      }
    }
  });

  prog.run();
}

void lk23_forkjoin(Lk23Problem& p, std::size_t iters, std::size_t by,
                   std::size_t bx, pool::ThreadPool& pool) {
  if (by == 0 || bx == 0 || by > p.n - 2 || bx > p.n - 2) {
    throw std::invalid_argument("lk23_forkjoin: bad block grid");
  }
  // Per sweep, the anti-diagonals of the block grid are processed in
  // order; blocks on one diagonal are independent (their north/west
  // blocks belong to earlier diagonals, already updated this sweep).
  std::vector<double> halo_n, halo_s, halo_w, halo_e;  // filled per block
  for (std::size_t l = 0; l < iters; ++l) {
    for (std::size_t d = 0; d <= by + bx - 2; ++d) {
      // Blocks with bi + bj == d.
      std::vector<std::pair<std::size_t, std::size_t>> wave;
      for (std::size_t bi = 0; bi < by; ++bi) {
        if (d < bi) continue;
        const std::size_t bj = d - bi;
        if (bj < bx) wave.emplace_back(bi, bj);
      }
      pool.parallel_for(0, wave.size(), [&](std::size_t idx) {
        const auto [bi, bj] = wave[idx];
        const BlockGeom g = block_geom(p.n, by, bx, bi, bj);
        const std::size_t n = p.n;
        // Direct neighbor access: rows g.r0-1 / g.r1 and cols g.c0-1 /
        // g.c1 hold exactly the values the sequential sweep would see.
        std::vector<double> hn(g.w()), hs(g.w()), hw(g.h()), he(g.h());
        for (std::size_t k = 0; k < g.w(); ++k) {
          hn[k] = p.za[(g.r0 - 1) * n + g.c0 + k];
          hs[k] = p.za[g.r1 * n + g.c0 + k];
        }
        for (std::size_t j = 0; j < g.h(); ++j) {
          hw[j] = p.za[(g.r0 + j) * n + g.c0 - 1];
          he[j] = p.za[(g.r0 + j) * n + g.c1];
        }
        sweep_block(p, g, hn, hs, hw, he);
      });
    }
  }
}

tm::CommMatrix lk23_ops_comm_matrix(std::size_t n, std::size_t by,
                                    std::size_t bx) {
  // Thread layout per block b: 4b+0 center compute, 4b+1 row-border
  // handler (N/S), 4b+2 column-border handler (W/E), 4b+3 halo gatherer.
  // Locations (2 per task):
  //   center op (4b+0), slot 0: the block buffer — written by the center,
  //     read by both border handlers (block-sized: the dominant volume
  //     that makes Algorithm 1 group the 4 ops of a block together);
  //   gatherer (4b+3), slot 0: the assembled halo frame read by the
  //     center op;
  //   row handler (4b+1), slots 0/1: N-out / S-out halos;
  //   col handler (4b+2), slots 0/1: W-out / E-out halos;
  // The gatherer of a block reads the halo locations of the four
  // neighboring blocks.
  const std::size_t tasks = 4 * by * bx;
  rt::ProgramOptions opts;
  opts.locations_per_task = 2;
  opts.dry_run = true;
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  rt::Program prog(tasks, opts);

  prog.set_task_body([&, by, bx](rt::TaskContext& ctx) {
    const std::size_t block = ctx.id() / 4;
    const std::size_t role = ctx.id() % 4;
    const std::size_t bi = block / bx;
    const std::size_t bj = block % bx;
    const BlockGeom g = block_geom(n, by, bx, bi, bj);
    const std::size_t block_bytes = g.h() * g.w() * sizeof(double);
    const std::size_t row_bytes = g.w() * sizeof(double);
    const std::size_t col_bytes = g.h() * sizeof(double);
    const std::size_t frame_bytes = 2 * (row_bytes + col_bytes);

    // All handles are leaked into this vector; the program is dry-run so
    // they only serve graph construction.
    std::vector<std::unique_ptr<Handle2>> handles;
    auto link = [&](rt::Location& loc, rt::AccessMode m,
                    std::uint64_t prio) {
      handles.push_back(std::make_unique<Handle2>());
      if (m == rt::AccessMode::Write) {
        handles.back()->write_insert(ctx, loc, prio);
      } else {
        handles.back()->read_insert(ctx, loc, prio);
      }
    };
    const auto task_of = [&](std::size_t b, std::size_t r) {
      return b * 4 + r;
    };

    switch (role) {
      case 0:  // center: writes block, reads the gatherer's frame
        ctx.scale_hint(block_bytes, 0);
        link(ctx.my_location(0), rt::AccessMode::Write, 0);
        link(ctx.location(task_of(block, 3), 0), rt::AccessMode::Read, 1);
        break;
      case 1:  // row borders: reads block, publishes N-out / S-out
        ctx.scale_hint(row_bytes, 0);
        ctx.scale_hint(row_bytes, 1);
        link(ctx.location(task_of(block, 0), 0), rt::AccessMode::Read, 1);
        link(ctx.my_location(0), rt::AccessMode::Write, 0);
        link(ctx.my_location(1), rt::AccessMode::Write, 0);
        break;
      case 2:  // col borders: reads block, publishes W-out / E-out
        ctx.scale_hint(col_bytes, 0);
        ctx.scale_hint(col_bytes, 1);
        link(ctx.location(task_of(block, 0), 0), rt::AccessMode::Read, 1);
        link(ctx.my_location(0), rt::AccessMode::Write, 0);
        link(ctx.my_location(1), rt::AccessMode::Write, 0);
        break;
      case 3:  // gatherer: writes frame, reads neighbor halos
        ctx.scale_hint(frame_bytes, 0);
        link(ctx.my_location(0), rt::AccessMode::Write, 0);
        if (bi > 0) {  // north block's S-out
          link(ctx.location(task_of(block - bx, 1), 1),
               rt::AccessMode::Read, 1);
        }
        if (bi + 1 < by) {  // south block's N-out
          link(ctx.location(task_of(block + bx, 1), 0),
               rt::AccessMode::Read, 1);
        }
        if (bj > 0) {  // west block's E-out
          link(ctx.location(task_of(block - 1, 2), 1),
               rt::AccessMode::Read, 1);
        }
        if (bj + 1 < bx) {  // east block's W-out
          link(ctx.location(task_of(block + 1, 2), 0),
               rt::AccessMode::Read, 1);
        }
        break;
    }
    ctx.schedule();
  });

  prog.run();
  prog.dependency_get();
  return prog.comm_matrix();
}

}  // namespace orwl::apps
