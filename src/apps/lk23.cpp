#include "apps/lk23.hpp"

#include <atomic>
#include <functional>
#include <stdexcept>

#include "support/rng.hpp"

namespace orwl::apps {

namespace {

using orwl::split_range;

constexpr double kRelax = 0.175;

/// One Gauss-Seidel cell update.
inline void update_cell(double& za_jk, double north, double south,
                        double east, double west, double zr, double zb,
                        double zu, double zv, double zz) {
  const double qa =
      south * zr + north * zb + east * zu + west * zv + zz;
  za_jk += kRelax * (qa - za_jk);
}

}  // namespace

Lk23Problem Lk23Problem::generate(std::size_t n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("Lk23Problem: n must be >= 3");
  Lk23Problem p;
  p.n = n;
  support::SplitMix64 rng(seed);
  auto fill = [&](std::vector<double>& v, double scale) {
    v.resize(n * n);
    for (auto& x : v) x = scale * (rng.uniform() - 0.5);
  };
  fill(p.za, 1.0);
  // Small coefficients keep the relaxation numerically tame.
  fill(p.zb, 0.05);
  fill(p.zr, 0.05);
  fill(p.zu, 0.05);
  fill(p.zv, 0.05);
  fill(p.zz, 0.1);
  return p;
}

void lk23_sequential(Lk23Problem& p, std::size_t iters) {
  const std::size_t n = p.n;
  double* za = p.za.data();
  const double* zb = p.zb.data();
  const double* zr = p.zr.data();
  const double* zu = p.zu.data();
  const double* zv = p.zv.data();
  const double* zz = p.zz.data();
  for (std::size_t l = 0; l < iters; ++l) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const std::size_t i = j * n + k;
        update_cell(za[i], za[i - n], za[i + n], za[i + 1], za[i - 1],
                    zr[i], zb[i], zu[i], zv[i], zz[i]);
      }
    }
  }
}

namespace {

/// Shared block geometry for the parallel variants.
struct BlockGeom {
  std::size_t r0, r1;  ///< row range [r0, r1) within the grid
  std::size_t c0, c1;  ///< col range
  std::size_t h() const { return r1 - r0; }
  std::size_t w() const { return c1 - c0; }
};

BlockGeom block_geom(std::size_t n, std::size_t by, std::size_t bx,
                     std::size_t bi, std::size_t bj) {
  // The interior [1, n-1) is tiled; boundary ring stays fixed.
  const auto rows = split_range(n - 2, by, bi);
  const auto cols = split_range(n - 2, bx, bj);
  return BlockGeom{rows.begin + 1, rows.end + 1, cols.begin + 1,
                   cols.end + 1};
}

/// Compute one block sweep. Neighbor values that live outside the block
/// come from the halo arrays (which the caller filled from locations or
/// from the fixed grid boundary).
/// \return The block's residual: the sum of squared cell updates this
///         sweep (the converged-predicate loop sums it across blocks;
///         the counted variants ignore it).
double sweep_block(Lk23Problem& p, const BlockGeom& g,
                   const std::vector<double>& halo_n,
                   const std::vector<double>& halo_s,
                   const std::vector<double>& halo_w,
                   const std::vector<double>& halo_e) {
  const std::size_t n = p.n;
  double* za = p.za.data();
  double residual = 0.0;
  for (std::size_t j = g.r0; j < g.r1; ++j) {
    for (std::size_t k = g.c0; k < g.c1; ++k) {
      const std::size_t i = j * n + k;
      const double north = j == g.r0 ? halo_n[k - g.c0] : za[i - n];
      const double south = j == g.r1 - 1 ? halo_s[k - g.c0] : za[i + n];
      const double west = k == g.c0 ? halo_w[j - g.r0] : za[i - 1];
      const double east = k == g.c1 - 1 ? halo_e[j - g.r0] : za[i + 1];
      const double before = za[i];
      update_cell(za[i], north, south, east, west, p.zr[i], p.zb[i],
                  p.zu[i], p.zv[i], p.zz[i]);
      const double d = za[i] - before;
      residual += d * d;
    }
  }
  return residual;
}

// Halo location slots per task (owner writes its borders after updating):
//   0 = N-out: own top row    (read by the NORTH neighbor, one-iter lag)
//   1 = S-out: own bottom row (read by the SOUTH neighbor, same iter)
//   2 = W-out: own left col   (read by the WEST  neighbor, one-iter lag)
//   3 = E-out: own right col  (read by the EAST  neighbor, same iter)
// Same-iteration locations order writer first (w:0, r:1); lagged ones
// order the reader first (r:0, w:1) and carry the initial border value.
constexpr std::size_t kLocN = 0;
constexpr std::size_t kLocS = 1;
constexpr std::size_t kLocW = 2;
constexpr std::size_t kLocE = 3;

/// One whole ORWL iteration of a block: gather halos, sweep, publish.
/// Returns the block residual (see sweep_block).
using BlockSweep = std::function<double(std::size_t)>;

/// The loop driver a variant plugs into the shared task body: counted
/// (lk23_orwl) or converged-predicate (lk23_orwl_converged).
using SweepDriver = std::function<void(Task&, const BlockSweep&)>;

/// Declare the by*bx halo-exchange tasks on `builder` — the one ORWL
/// wiring both iteration variants share; only the loop driver differs.
void wire_lk23_tasks(ProgramBuilder& builder, Lk23Problem& p,
                     std::size_t iters, std::size_t by, std::size_t bx,
                     const SweepDriver& drive) {
  for (rt::TaskId id = 0; id < by * bx; ++id) {
    const std::size_t bi = id / bx;
    const std::size_t bj = id % bx;
    const BlockGeom g = block_geom(p.n, by, bx, bi, bj);
    const bool has_north = bi > 0;
    const bool has_south = bi + 1 < by;
    const bool has_west = bj > 0;
    const bool has_east = bj + 1 < bx;

    TaskSpec& spec = builder.task(id);
    // Own halo locations. Same-iteration halos order the writer first
    // (w:0, r:1); lagged ones order the reader first (r:0, w:1) and
    // carry the initial border value (primed in the init hook below).
    spec.owns<double[]>(g.w(), kLocN).writes<double[]>(loc(id, kLocN), 1);
    spec.owns<double[]>(g.w(), kLocS).writes<double[]>(loc(id, kLocS), 0);
    spec.owns<double[]>(g.h(), kLocW).writes<double[]>(loc(id, kLocW), 1);
    spec.owns<double[]>(g.h(), kLocE).writes<double[]>(loc(id, kLocE), 0);
    // Incoming halos (absent on the grid boundary).
    if (has_north) {  // north's bottom row, same iteration
      spec.reads<double[]>(loc(id - bx, kLocS), 1);
    }
    if (has_south) {  // south's top row, one-iteration lag
      spec.reads<double[]>(loc(id + bx, kLocN), 0);
    }
    if (has_west) {  // west's right col, same iteration
      spec.reads<double[]>(loc(id - 1, kLocE), 1);
    }
    if (has_east) {  // east's left col, one-iteration lag
      spec.reads<double[]>(loc(id + 1, kLocW), 0);
    }
    spec.iterates(iters);

    // Prime the lagged halos with the initial border values (runs on the
    // task's thread before the schedule barrier, like the v1 init phase).
    spec.init([&p, g](Task& task) {
      const std::size_t n = p.n;
      std::span<double> init_n = task.my<double[]>(kLocN).span();
      std::span<double> init_w = task.my<double[]>(kLocW).span();
      for (std::size_t k = 0; k < g.w(); ++k) {
        init_n[k] = p.za[g.r0 * n + g.c0 + k];
      }
      for (std::size_t j = 0; j < g.h(); ++j) {
        init_w[j] = p.za[(g.r0 + j) * n + g.c0];
      }
    });

    // `drive` is copied into the body: the closure outlives this call
    // (it runs when the built program does).
    spec.body([&p, g, id, bx, has_north, has_south, has_west, has_east,
               drive](Task& task) {
      const std::size_t n = p.n;
      WriteLink<double[]> w_n = task.write_link<double[]>(loc(id, kLocN));
      WriteLink<double[]> w_s = task.write_link<double[]>(loc(id, kLocS));
      WriteLink<double[]> w_w = task.write_link<double[]>(loc(id, kLocW));
      WriteLink<double[]> w_e = task.write_link<double[]>(loc(id, kLocE));
      ReadLink<double[]> r_n, r_s, r_w, r_e;
      if (has_north) r_n = task.read_link<double[]>(loc(id - bx, kLocS));
      if (has_south) r_s = task.read_link<double[]>(loc(id + bx, kLocN));
      if (has_west) r_w = task.read_link<double[]>(loc(id - 1, kLocE));
      if (has_east) r_e = task.read_link<double[]>(loc(id + 1, kLocW));

      std::vector<double> halo_n(g.w()), halo_s(g.w());
      std::vector<double> halo_w(g.h()), halo_e(g.h());

      const BlockSweep sweep = [&](std::size_t) -> double {
        // -- gather phase ------------------------------------------------
        if (has_north) {
          ReadGuard<double[]> sec(r_n);
          std::copy(sec.begin(), sec.end(), halo_n.begin());
        } else {
          for (std::size_t k = 0; k < g.w(); ++k) {
            halo_n[k] = p.za[(g.r0 - 1) * n + g.c0 + k];
          }
        }
        if (has_west) {
          ReadGuard<double[]> sec(r_w);
          std::copy(sec.begin(), sec.end(), halo_w.begin());
        } else {
          for (std::size_t j = 0; j < g.h(); ++j) {
            halo_w[j] = p.za[(g.r0 + j) * n + g.c0 - 1];
          }
        }
        if (has_south) {
          ReadGuard<double[]> sec(r_s);
          std::copy(sec.begin(), sec.end(), halo_s.begin());
        } else {
          for (std::size_t k = 0; k < g.w(); ++k) {
            halo_s[k] = p.za[g.r1 * n + g.c0 + k];
          }
        }
        if (has_east) {
          ReadGuard<double[]> sec(r_e);
          std::copy(sec.begin(), sec.end(), halo_e.begin());
        } else {
          for (std::size_t j = 0; j < g.h(); ++j) {
            halo_e[j] = p.za[(g.r0 + j) * n + g.c1];
          }
        }

        // -- compute -----------------------------------------------------
        const double residual =
            sweep_block(p, g, halo_n, halo_s, halo_w, halo_e);

        // -- publish phase -----------------------------------------------
        {
          WriteGuard<double[]> sec(w_n);
          for (std::size_t k = 0; k < g.w(); ++k) {
            sec[k] = p.za[g.r0 * n + g.c0 + k];
          }
        }
        {
          WriteGuard<double[]> sec(w_s);
          for (std::size_t k = 0; k < g.w(); ++k) {
            sec[k] = p.za[(g.r1 - 1) * n + g.c0 + k];
          }
        }
        {
          WriteGuard<double[]> sec(w_w);
          for (std::size_t j = 0; j < g.h(); ++j) {
            sec[j] = p.za[(g.r0 + j) * n + g.c0];
          }
        }
        {
          WriteGuard<double[]> sec(w_e);
          for (std::size_t j = 0; j < g.h(); ++j) {
            sec[j] = p.za[(g.r0 + j) * n + g.c1 - 1];
          }
        }
        return residual;
      };
      drive(task, sweep);
    });
  }
}

}  // namespace

void lk23_orwl(Lk23Problem& p, std::size_t iters, std::size_t by,
               std::size_t bx, rt::ProgramOptions prog_opts,
               rt::ProgramStats* stats_out) {
  if (by == 0 || bx == 0 || by > p.n - 2 || bx > p.n - 2) {
    throw std::invalid_argument("lk23_orwl: bad block grid");
  }
  ProgramBuilder builder(by * bx, prog_opts);
  wire_lk23_tasks(builder, p, iters, by, bx,
                  [](Task& task, const BlockSweep& sweep) {
                    task.run_iterations(
                        [&sweep](std::size_t i) { sweep(i); });
                  });
  Program prog = builder.build();
  prog.run();
  if (stats_out != nullptr) {
    *stats_out = prog.stats();
  }
}

std::size_t lk23_orwl_converged(Lk23Problem& p, double tol,
                                std::size_t max_iters, std::size_t by,
                                std::size_t bx,
                                rt::ProgramOptions prog_opts) {
  if (by == 0 || bx == 0 || by > p.n - 2 || bx > p.n - 2) {
    throw std::invalid_argument("lk23_orwl_converged: bad block grid");
  }
  if (max_iters == 0) {
    throw std::invalid_argument("lk23_orwl_converged: max_iters must be > 0");
  }
  ProgramBuilder builder(by * bx, prog_opts);
  // The predicate runs on the all-task residual sum, so every task sees
  // the same value each iteration and the loop terminates uniformly —
  // the per-task iteration budget counts along but never diverges.
  std::atomic<std::size_t> executed{0};
  wire_lk23_tasks(
      builder, p, max_iters, by, bx,
      [tol, max_iters, &executed](Task& task, const BlockSweep& sweep) {
        std::size_t spent = 0;
        const std::size_t ran = task.run_iterations(
            [tol, max_iters, &spent](double residual) {
              return residual <= tol || ++spent >= max_iters;
            },
            sweep);
        executed.store(ran, std::memory_order_relaxed);
      });
  Program prog = builder.build();
  prog.run();
  return executed.load(std::memory_order_relaxed);
}

void lk23_forkjoin(Lk23Problem& p, std::size_t iters, std::size_t by,
                   std::size_t bx, pool::ThreadPool& pool) {
  if (by == 0 || bx == 0 || by > p.n - 2 || bx > p.n - 2) {
    throw std::invalid_argument("lk23_forkjoin: bad block grid");
  }
  // Per sweep, the anti-diagonals of the block grid are processed in
  // order; blocks on one diagonal are independent (their north/west
  // blocks belong to earlier diagonals, already updated this sweep).
  std::vector<double> halo_n, halo_s, halo_w, halo_e;  // filled per block
  for (std::size_t l = 0; l < iters; ++l) {
    for (std::size_t d = 0; d <= by + bx - 2; ++d) {
      // Blocks with bi + bj == d.
      std::vector<std::pair<std::size_t, std::size_t>> wave;
      for (std::size_t bi = 0; bi < by; ++bi) {
        if (d < bi) continue;
        const std::size_t bj = d - bi;
        if (bj < bx) wave.emplace_back(bi, bj);
      }
      pool.parallel_for(0, wave.size(), [&](std::size_t idx) {
        const auto [bi, bj] = wave[idx];
        const BlockGeom g = block_geom(p.n, by, bx, bi, bj);
        const std::size_t n = p.n;
        // Direct neighbor access: rows g.r0-1 / g.r1 and cols g.c0-1 /
        // g.c1 hold exactly the values the sequential sweep would see.
        std::vector<double> hn(g.w()), hs(g.w()), hw(g.h()), he(g.h());
        for (std::size_t k = 0; k < g.w(); ++k) {
          hn[k] = p.za[(g.r0 - 1) * n + g.c0 + k];
          hs[k] = p.za[g.r1 * n + g.c0 + k];
        }
        for (std::size_t j = 0; j < g.h(); ++j) {
          hw[j] = p.za[(g.r0 + j) * n + g.c0 - 1];
          he[j] = p.za[(g.r0 + j) * n + g.c1];
        }
        sweep_block(p, g, hn, hs, hw, he);
      });
    }
  }
}

tm::CommMatrix lk23_ops_comm_matrix(std::size_t n, std::size_t by,
                                    std::size_t bx) {
  // Thread layout per block b: 4b+0 center compute, 4b+1 row-border
  // handler (N/S), 4b+2 column-border handler (W/E), 4b+3 halo gatherer.
  // Locations (2 per task):
  //   center op (4b+0), slot 0: the block buffer — written by the center,
  //     read by both border handlers (block-sized: the dominant volume
  //     that makes Algorithm 1 group the 4 ops of a block together);
  //   gatherer (4b+3), slot 0: the assembled halo frame read by the
  //     center op;
  //   row handler (4b+1), slots 0/1: N-out / S-out halos;
  //   col handler (4b+2), slots 0/1: W-out / E-out halos;
  // The gatherer of a block reads the halo locations of the four
  // neighboring blocks.
  const std::size_t tasks = 4 * by * bx;
  rt::ProgramOptions opts;
  opts.dry_run = true;  // builder: sizes recorded, nothing allocated
  opts.affinity = rt::AffinityMode::Off;
  opts.control_threads = 0;
  ProgramBuilder builder(tasks, opts);

  const auto task_of = [](std::size_t b, std::size_t r) { return b * 4 + r; };
  for (std::size_t id = 0; id < tasks; ++id) {
    const std::size_t block = id / 4;
    const std::size_t role = id % 4;
    const std::size_t bi = block / bx;
    const std::size_t bj = block % bx;
    const BlockGeom g = block_geom(n, by, bx, bi, bj);
    TaskSpec& spec = builder.task(id);

    switch (role) {
      case 0:  // center: writes block, reads the gatherer's frame
        spec.owns<double[]>(g.h() * g.w(), 0);
        spec.writes(loc(id, 0), 0);
        spec.reads(loc(task_of(block, 3), 0), 1);
        break;
      case 1:  // row borders: reads block, publishes N-out / S-out
        spec.owns<double[]>(g.w(), 0).owns<double[]>(g.w(), 1);
        spec.reads(loc(task_of(block, 0), 0), 1);
        spec.writes(loc(id, 0), 0).writes(loc(id, 1), 0);
        break;
      case 2:  // col borders: reads block, publishes W-out / E-out
        spec.owns<double[]>(g.h(), 0).owns<double[]>(g.h(), 1);
        spec.reads(loc(task_of(block, 0), 0), 1);
        spec.writes(loc(id, 0), 0).writes(loc(id, 1), 0);
        break;
      case 3:  // gatherer: writes frame, reads neighbor halos
        spec.owns<double[]>(2 * (g.w() + g.h()), 0);
        spec.writes(loc(id, 0), 0);
        if (bi > 0) {  // north block's S-out
          spec.reads(loc(task_of(block - bx, 1), 1), 1);
        }
        if (bi + 1 < by) {  // south block's N-out
          spec.reads(loc(task_of(block + bx, 1), 0), 1);
        }
        if (bj > 0) {  // west block's E-out
          spec.reads(loc(task_of(block - 1, 2), 1), 1);
        }
        if (bj + 1 < bx) {  // east block's W-out
          spec.reads(loc(task_of(block + 1, 2), 0), 1);
        }
        break;
    }
  }

  // The declared graph is the whole point here: no body, no run() — the
  // matrix falls out of the declarations directly.
  Program prog = builder.build();
  prog.dependency_get();
  return prog.comm_matrix();
}

}  // namespace orwl::apps
