// Block-cyclic matrix multiplication C = A * B (Sec. V-B).
//
// "In our ORWL implementation each block of rows of the result matrix C
// corresponds to a task/thread ... A task processes the elements of a
// block of rows of the matrix C and circulates the input columns of the
// matrix B to the neighboring tasks by using ORWL's locations."
//
// The fork-join baseline mirrors the paper's MKL comparison: a single
// data-parallel GEMM where every thread computes a block of C rows
// reading the full shared B (that sharing pattern — not the kernel — is
// what makes the MKL baselines stop scaling across sockets).
#pragma once

#include <cstddef>
#include <vector>

#include "orwl/orwl.hpp"
#include "pool/thread_pool.hpp"
#include "treematch/comm_matrix.hpp"

namespace orwl::apps {

struct MatmulProblem {
  std::size_t n = 0;  ///< square matrices n x n, row-major
  std::vector<double> a, b, c;

  static MatmulProblem generate(std::size_t n, std::uint64_t seed = 11);
};

/// Sequential reference: C = A * B via the blocked dgemm kernel.
void matmul_sequential(MatmulProblem& p);

/// ORWL block-cyclic multiply with `tasks` tasks. Each task owns a block
/// of rows of A and C and circulates column blocks of B around the task
/// ring through locations (declared up front with the v2 builder). n
/// must be a multiple of tasks. Overwrites p.c.
void matmul_orwl(MatmulProblem& p, std::size_t tasks,
                 rt::ProgramOptions prog_opts = {});

/// Fork-join baseline: parallel-for over row blocks, full B shared.
void matmul_forkjoin(MatmulProblem& p, pool::ThreadPool& pool);

/// Communication matrix of the ORWL decomposition (ring of B-block
/// circulations). Declaratively wired: the matrix comes straight from
/// the declared graph — no task ever runs, no buffer is allocated.
tm::CommMatrix matmul_comm_matrix(std::size_t n, std::size_t tasks);

}  // namespace orwl::apps
