#include "apps/image.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "support/rng.hpp"

namespace orwl::apps {

// ------------------------------------------------------------ scene -----

Scene Scene::demo(std::size_t width, std::size_t height,
                  std::size_t num_objects, std::uint64_t seed) {
  if (width < 32 || height < 32) {
    throw std::invalid_argument("Scene::demo: frame too small");
  }
  Scene s;
  s.width = width;
  s.height = height;
  s.noise_seed = seed;
  support::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < num_objects; ++i) {
    SceneObject o;
    o.size = 8 + rng.below(std::min<std::uint64_t>(24, width / 8));
    o.x = static_cast<double>(rng.below(width - o.size));
    o.y = static_cast<double>(rng.below(height - o.size));
    o.vx = 1.0 + rng.uniform() * 2.0;
    o.vy = 0.5 + rng.uniform() * 1.5;
    o.intensity = static_cast<Pixel>(200 + rng.below(56));
    s.objects.push_back(o);
  }
  return s;
}

namespace {

/// Deterministic per-(frame,pixel) noise in [-3, 3].
inline int pixel_noise(std::uint64_t seed, std::size_t f, std::size_t idx) {
  std::uint64_t h = seed ^ (f * 0x9e3779b97f4a7c15ULL) ^
                    (idx * 0xbf58476d1ce4e5b9ULL);
  h ^= h >> 31;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 29;
  return static_cast<int>(h % 7) - 3;
}

inline Pixel clamp_pixel(int v) {
  return static_cast<Pixel>(std::clamp(v, 0, 255));
}

}  // namespace

std::vector<std::array<double, 2>> Scene::positions(std::size_t f) const {
  std::vector<std::array<double, 2>> out;
  out.reserve(objects.size());
  for (const auto& o : objects) {
    // Linear motion with wrap-around.
    const double span_x = static_cast<double>(width - o.size);
    const double span_y = static_cast<double>(height - o.size);
    double x = std::fmod(o.x + o.vx * static_cast<double>(f), span_x);
    double y = std::fmod(o.y + o.vy * static_cast<double>(f), span_y);
    if (x < 0) x += span_x;
    if (y < 0) y += span_y;
    out.push_back({x, y});
  }
  return out;
}

void Scene::render(std::size_t f, Pixel* out) const {
  // Textured background: a mild diagonal gradient pattern.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t idx = y * width + x;
      const int base = 70 + static_cast<int>((x / 16 + y / 16) % 4) * 8;
      out[idx] = clamp_pixel(base + pixel_noise(noise_seed, f, idx));
    }
  }
  // Moving objects.
  const auto pos = positions(f);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& o = objects[i];
    const std::size_t x0 = static_cast<std::size_t>(pos[i][0]);
    const std::size_t y0 = static_cast<std::size_t>(pos[i][1]);
    for (std::size_t dy = 0; dy < o.size && y0 + dy < height; ++dy) {
      for (std::size_t dx = 0; dx < o.size && x0 + dx < width; ++dx) {
        out[(y0 + dy) * width + x0 + dx] = o.intensity;
      }
    }
  }
}

// --------------------------------------------------- background model ----

void BackgroundModel::init(std::size_t width, std::size_t height) {
  width_ = width;
  height_ = height;
  mean_.assign(width * height, 80.0f);   // near the background level
  var_.assign(width * height, 225.0f);   // sigma 15: conservative start
}

void BackgroundModel::process_rows(const Pixel* frame, Pixel* mask,
                                   std::size_t r0, std::size_t r1) {
  if (r1 > height_) throw std::out_of_range("BackgroundModel: bad rows");
  for (std::size_t idx = r0 * width_; idx < r1 * width_; ++idx) {
    const float x = static_cast<float>(frame[idx]);
    const float d = x - mean_[idx];
    const float sigma = std::sqrt(var_[idx]);
    const bool foreground = std::fabs(d) > threshold * sigma;
    mask[idx] = foreground ? kForeground : kBackground;
    if (!foreground) {
      mean_[idx] += learning_rate * d;
      var_[idx] += learning_rate * (d * d - var_[idx]);
      var_[idx] = std::max(var_[idx], min_variance);
    }
  }
}

// -------------------------------------------------------- morphology ----

namespace {

template <bool Erode>
void morph_rows(const Pixel* in, Pixel* out, std::size_t w, std::size_t h,
                std::size_t r0, std::size_t r1) {
  for (std::size_t y = r0; y < r1; ++y) {
    const std::size_t ylo = y == 0 ? 0 : y - 1;
    const std::size_t yhi = y + 1 >= h ? h - 1 : y + 1;
    for (std::size_t x = 0; x < w; ++x) {
      const std::size_t xlo = x == 0 ? 0 : x - 1;
      const std::size_t xhi = x + 1 >= w ? w - 1 : x + 1;
      bool acc = Erode;  // erosion: AND starts true; dilation: OR false
      for (std::size_t yy = ylo; yy <= yhi; ++yy) {
        for (std::size_t xx = xlo; xx <= xhi; ++xx) {
          const bool fg = in[yy * w + xx] != kBackground;
          if constexpr (Erode) {
            acc = acc && fg;
          } else {
            acc = acc || fg;
          }
        }
      }
      out[y * w + x] = acc ? kForeground : kBackground;
    }
  }
}

}  // namespace

void erode3x3(const Pixel* in, Pixel* out, std::size_t w, std::size_t h) {
  morph_rows<true>(in, out, w, h, 0, h);
}
void erode3x3_rows(const Pixel* in, Pixel* out, std::size_t w,
                   std::size_t h, std::size_t r0, std::size_t r1) {
  morph_rows<true>(in, out, w, h, r0, r1);
}
void dilate3x3(const Pixel* in, Pixel* out, std::size_t w, std::size_t h) {
  morph_rows<false>(in, out, w, h, 0, h);
}
void dilate3x3_rows(const Pixel* in, Pixel* out, std::size_t w,
                    std::size_t h, std::size_t r0, std::size_t r1) {
  morph_rows<false>(in, out, w, h, r0, r1);
}

// --------------------------------------------------------------- CCL ----

namespace {

/// Union-find over dense int32 ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::int32_t find(std::int32_t a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] =
        std::min(a, b);
  }

 private:
  std::vector<std::int32_t> parent_;
};

void sort_components(std::vector<Component>& comps) {
  std::sort(comps.begin(), comps.end(),
            [](const Component& a, const Component& b) {
              if (a.cy() != b.cy()) return a.cy() < b.cy();
              if (a.cx() != b.cx()) return a.cx() < b.cx();
              return a.area < b.area;
            });
}

}  // namespace

BandLabeling label_band(const Pixel* mask, std::size_t width,
                        std::size_t r0, std::size_t r1) {
  if (r1 <= r0) throw std::invalid_argument("label_band: empty band");
  const std::size_t rows = r1 - r0;
  const std::size_t n = rows * width;
  // First pass: provisional labels with union-find (4-connectivity).
  std::vector<std::int32_t> label(n, -1);
  UnionFind uf(n);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t i = y * width + x;
      if (mask[(r0 + y) * width + x] == kBackground) continue;
      label[i] = static_cast<std::int32_t>(i);
      if (x > 0 && label[i - 1] >= 0) uf.unite(label[i], label[i - 1]);
      if (y > 0 && label[i - width] >= 0) {
        uf.unite(label[i], label[i - width]);
      }
    }
  }
  // Second pass: compact roots to component table and accumulate stats.
  BandLabeling out;
  out.row_begin = r0;
  out.row_end = r1;
  std::vector<std::int32_t> root_to_comp(n, -1);
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t i = y * width + x;
      if (label[i] < 0) continue;
      const std::int32_t root = uf.find(label[i]);
      std::int32_t comp = root_to_comp[static_cast<std::size_t>(root)];
      if (comp < 0) {
        comp = static_cast<std::int32_t>(out.comps.size());
        root_to_comp[static_cast<std::size_t>(root)] = comp;
        Component c;
        c.min_x = c.max_x = static_cast<std::int32_t>(x);
        c.min_y = c.max_y = static_cast<std::int32_t>(r0 + y);
        out.comps.push_back(c);
      }
      Component& c = out.comps[static_cast<std::size_t>(comp)];
      c.area += 1;
      c.sum_x += static_cast<double>(x);
      c.sum_y += static_cast<double>(r0 + y);
      c.min_x = std::min(c.min_x, static_cast<std::int32_t>(x));
      c.max_x = std::max(c.max_x, static_cast<std::int32_t>(x));
      c.min_y = std::min(c.min_y, static_cast<std::int32_t>(r0 + y));
      c.max_y = std::max(c.max_y, static_cast<std::int32_t>(r0 + y));
      label[i] = comp;  // reuse as component index for the boundary rows
    }
  }
  out.top_ids.assign(width, -1);
  out.bottom_ids.assign(width, -1);
  for (std::size_t x = 0; x < width; ++x) {
    out.top_ids[x] = label[x];
    out.bottom_ids[x] = label[(rows - 1) * width + x];
  }
  return out;
}

std::vector<Component> merge_bands(const std::vector<BandLabeling>& bands,
                                   std::size_t width,
                                   std::int64_t min_area) {
  // Global component ids: per band offset + local index.
  std::vector<std::size_t> offset(bands.size() + 1, 0);
  for (std::size_t b = 0; b < bands.size(); ++b) {
    offset[b + 1] = offset[b] + bands[b].comps.size();
    if (b > 0 && bands[b].row_begin != bands[b - 1].row_end) {
      throw std::invalid_argument("merge_bands: bands not contiguous");
    }
  }
  UnionFind uf(static_cast<std::size_t>(offset.back()));
  for (std::size_t b = 0; b + 1 < bands.size(); ++b) {
    const auto& lower = bands[b].bottom_ids;   // last row of band b
    const auto& upper = bands[b + 1].top_ids;  // first row of band b+1
    for (std::size_t x = 0; x < width; ++x) {
      if (lower[x] >= 0 && upper[x] >= 0) {
        uf.unite(
            static_cast<std::int32_t>(offset[b]) + lower[x],
            static_cast<std::int32_t>(offset[b + 1]) + upper[x]);
      }
    }
  }
  // Accumulate merged stats.
  std::vector<std::int32_t> root_to_comp(offset.back(), -1);
  std::vector<Component> merged;
  for (std::size_t b = 0; b < bands.size(); ++b) {
    for (std::size_t k = 0; k < bands[b].comps.size(); ++k) {
      const std::int32_t gid = static_cast<std::int32_t>(offset[b] + k);
      const std::int32_t root = uf.find(gid);
      std::int32_t comp = root_to_comp[static_cast<std::size_t>(root)];
      const Component& src = bands[b].comps[k];
      if (comp < 0) {
        comp = static_cast<std::int32_t>(merged.size());
        root_to_comp[static_cast<std::size_t>(root)] = comp;
        merged.push_back(src);
        continue;
      }
      Component& dst = merged[static_cast<std::size_t>(comp)];
      dst.area += src.area;
      dst.sum_x += src.sum_x;
      dst.sum_y += src.sum_y;
      dst.min_x = std::min(dst.min_x, src.min_x);
      dst.max_x = std::max(dst.max_x, src.max_x);
      dst.min_y = std::min(dst.min_y, src.min_y);
      dst.max_y = std::max(dst.max_y, src.max_y);
    }
  }
  std::erase_if(merged,
                [&](const Component& c) { return c.area < min_area; });
  sort_components(merged);
  return merged;
}

std::vector<Component> connected_components(const Pixel* mask,
                                            std::size_t width,
                                            std::size_t height,
                                            std::int64_t min_area) {
  std::vector<BandLabeling> one;
  one.push_back(label_band(mask, width, 0, height));
  return merge_bands(one, width, min_area);
}

// ----------------------------------------------------------- tracker ----

void Tracker::update(const std::vector<std::array<double, 2>>& detections) {
  std::vector<bool> used(detections.size(), false);
  // Match existing tracks (ascending id = insertion order) greedily.
  for (auto& t : tracks_) {
    double best = max_distance;
    std::size_t pick = detections.size();
    for (std::size_t d = 0; d < detections.size(); ++d) {
      if (used[d]) continue;
      const double dx = detections[d][0] - t.x;
      const double dy = detections[d][1] - t.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist < best) {
        best = dist;
        pick = d;
      }
    }
    if (pick < detections.size()) {
      used[pick] = true;
      t.x = detections[pick][0];
      t.y = detections[pick][1];
      t.missed = 0;
    } else {
      ++t.missed;
    }
    ++t.age;
  }
  // Expire stale tracks.
  std::erase_if(tracks_,
                [&](const Track& t) { return t.missed > max_missed; });
  // Open new tracks for unmatched detections.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (used[d]) continue;
    Track t;
    t.id = next_id_++;
    t.x = detections[d][0];
    t.y = detections[d][1];
    tracks_.push_back(t);
  }
}

}  // namespace orwl::apps
