// Graph workloads driving the dynamic-work (steal executor) surface.
//
// The static ORWL task model pins one thread per declared task; a graph
// traversal's frontier does not care about that grid — one task's block
// may hold the whole frontier while the others idle. These kernels
// demonstrate Task::for_each: the frontier (BFS) or the chunk list
// (PageRank) is executed by all tasks together under the
// topology-aware steal executor, so a hot block spills to hyperthread
// siblings first, then same-node PUs, then remote nodes.
//
// Both kernels are deterministic by construction, independent of the
// steal schedule:
//  * BFS relaxes distances with a CAS-min — the fixed point (shortest
//    hop counts) is unique no matter which worker relaxes which edge.
//  * PageRank is pull-based with a fixed per-vertex summation order —
//    every floating-point operation sequence is identical to the
//    sequential reference, so the result is bit-identical under
//    ORWL_STEAL=off, node, and all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "orwl/orwl.hpp"

namespace orwl::apps {

/// Undirected n x n 4-neighbor grid in CSR form. Deliberately simple:
/// the point is the executor, not the graph; a grid still produces the
/// frontier growth/shrink pattern that starves static decompositions.
struct GridGraph {
  std::size_t n = 0;                  ///< grid side; n*n vertices
  std::vector<std::uint32_t> row_ptr;  ///< size n*n + 1
  std::vector<std::uint32_t> col;     ///< neighbor lists, ascending order

  std::size_t num_vertices() const noexcept { return n * n; }
  std::size_t degree(std::size_t v) const noexcept {
    return row_ptr[v + 1] - row_ptr[v];
  }

  static GridGraph make(std::size_t n);
};

/// Marker for vertices BFS never reached.
inline constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

/// Queue-based reference BFS; dist[v] = hop count from source.
std::vector<std::uint32_t> bfs_sequential(const GridGraph& g,
                                          std::uint32_t source);

/// ORWL BFS: `num_tasks` tasks jointly drain the frontier through the
/// steal executor (declaratively wired: TaskSpec::for_each). The item
/// payload is a vertex id; relaxing an edge CAS-mins the neighbor's
/// distance and pushes it on improvement. Identical to bfs_sequential
/// for every steal mode.
std::vector<std::uint32_t> bfs_orwl(const GridGraph& g, std::uint32_t source,
                                    std::size_t num_tasks,
                                    rt::ProgramOptions prog_opts = {});

/// Power-iteration PageRank (pull form), `iters` full sweeps.
std::vector<double> pagerank_sequential(const GridGraph& g,
                                        std::size_t iters,
                                        double damping = 0.85);

/// ORWL PageRank: each sweep is one for_each collective over fixed
/// vertex chunks (the exit rendezvous of the collective is the sweep
/// barrier), reading the previous sweep's ranks and writing the next.
/// Bit-identical to pagerank_sequential under every steal mode.
std::vector<double> pagerank_orwl(const GridGraph& g, std::size_t iters,
                                  std::size_t num_tasks,
                                  rt::ProgramOptions prog_opts = {},
                                  double damping = 0.85);

}  // namespace orwl::apps
