// Simulation workload builders for the three evaluation applications.
//
// These connect the real applications to the testbed performance model:
// the communication matrices come from dry-running the actual ORWL
// wirings (the same dependency_get() path a native execution uses), and
// the per-thread compute / memory characteristics are derived from the
// applications' arithmetic (flops per cell, streamed arrays, working
// sets). See DESIGN.md §6 and EXPERIMENTS.md for the modeling notes.
#pragma once

#include "apps/video.hpp"
#include "sim/simulator.hpp"

namespace orwl::apps {

// ---- Livermore Kernel 23 (Fig. 4, Table II) -----------------------------

/// The ORWL decomposition at paper scale: `threads` operation threads
/// (4 per block when threads >= 4), n x n doubles, `iters` sweeps.
sim::Workload lk23_orwl_workload(std::size_t n, std::size_t iters,
                                 std::size_t threads);

/// The OpenMP-shaped baseline: `threads` row-block workers, fork-join
/// anti-diagonal waves per sweep.
sim::Workload lk23_forkjoin_workload(std::size_t n, std::size_t iters,
                                     std::size_t threads);

/// The block grid used for `threads` operation threads (by, bx).
std::pair<std::size_t, std::size_t> lk23_block_grid(std::size_t threads);

// ---- Matrix multiplication (Fig. 5, Table III) ---------------------------

/// Block-cyclic ORWL multiply: `tasks` tasks, T phases of ring
/// circulation (n x n doubles).
sim::Workload matmul_orwl_workload(std::size_t n, std::size_t tasks);

/// MKL-shaped baseline: one data-parallel GEMM; every thread reads the
/// full shared B (homed on thread 0's node).
sim::Workload matmul_mkl_workload(std::size_t n, std::size_t threads);

// ---- Video tracking (Fig. 6, Table IV) -----------------------------------

/// The 30-task ORWL data-flow graph processing `frames` frames.
sim::Workload video_orwl_workload(const VideoParams& params);

/// Fork-join-per-stage baseline with the same number of threads.
sim::Workload video_forkjoin_workload(const VideoParams& params);

/// Single-thread version (the "Sequential" series of Fig. 6).
sim::Workload video_sequential_workload(const VideoParams& params);

}  // namespace orwl::apps
