// Multi-tenant ORWL server: many concurrent ORWL programs on one machine.
//
// The paper places ONE program on the whole machine (Algorithm 1 assumes
// it owns every PU). This layer extends the model to a long-running
// harness that admits many programs (tenants) onto one host, carving the
// topology between them with the same contiguous-subtree rule the
// control-plane ShardMap uses: each tenant receives a run of whole free
// subtrees (topo::carve_subtrees) materialized as a private sub-topology
// (topo::subtopology), so Algorithm 1 runs unchanged inside the carve and
// no two tenants ever share a PU, a control shard, or an arena node.
//
// Admission is all-or-nothing: when no contiguous run of whole free
// subtrees covers the requested width, admit() rejects instead of
// splintering the tenant across locality domains. Each tenant owns an
// elastic pool of worker threads replaying requests against its handler;
// the pool grows when the backlog outruns the workers and shrinks back
// to its floor when traffic goes quiet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/registry.hpp"
#include "dist/transport.hpp"
#include "runtime/program.hpp"
#include "topo/cpuset.hpp"
#include "topo/shard.hpp"
#include "topo/topology.hpp"

namespace orwl::server {

/// Env knobs of the server defaults (each read only when the matching
/// ServerOptions field is left at 0 — explicit options always win).
inline constexpr const char* kMaxTenantsEnvVar = "ORWL_SERVER_MAX_TENANTS";
inline constexpr const char* kQueueCapEnvVar = "ORWL_SERVER_QUEUE_CAP";
inline constexpr const char* kGrowBacklogEnvVar = "ORWL_SERVER_GROW_BACKLOG";
inline constexpr const char* kShrinkIdleEnvVar = "ORWL_SERVER_SHRINK_IDLE_MS";

/// What a tenant's handler sees: its private slice of the machine. The
/// pointers stay valid until the tenant is evicted (or the Server dies).
struct TenantEnv {
  /// The carved sub-topology (os indices preserved, so placements bind
  /// to the host's real PUs when binding is on).
  const topo::Topology* topology = nullptr;
  /// OS indices of the PUs this tenant owns.
  topo::CpuSet cpus;
  /// The tenant's admission name (also its diagnostics tag).
  std::string name;

  /// Program options pre-composed for this tenant: the server's base
  /// options with `topology`, `tag` and the acquire-timeout diagnostics
  /// pointing at this tenant. Handlers pass this (possibly tweaked) to
  /// ProgramBuilder / the apps entry points.
  rt::ProgramOptions program_options() const { return opts_; }

  rt::ProgramOptions opts_;  ///< filled by Server::admit
};

/// One request's worth of work: run the tenant's program once inside its
/// carve-out and report the runtime counters (the server rolls them up
/// per tenant). Handlers run on tenant worker threads and may run
/// concurrently with themselves when the pool has grown.
using Handler = std::function<rt::ProgramStats(const TenantEnv&)>;

/// Admission request.
struct TenantSpec {
  std::string name;
  /// PUs requested; the carve may be wider (whole subtrees only).
  std::size_t width_pus = 1;
  /// Elastic worker-pool bounds: the pool starts (and idles back down)
  /// at min_workers and grows up to max_workers with the backlog.
  std::size_t min_workers = 1;
  std::size_t max_workers = 2;
  Handler handler;
};

struct ServerOptions {
  /// Machine to carve. Null => detect the host (ORWL_TOPOLOGY honored).
  const topo::Topology* topology = nullptr;

  /// Bind tenant worker threads to their tenant's cpuset. Advisory:
  /// fixture topologies name PUs the host does not have, so failures are
  /// tolerated (same contract as topo::bind_current_thread).
  bool bind_threads = false;

  /// 0 => ORWL_SERVER_MAX_TENANTS (default 8).
  std::size_t max_tenants = 0;
  /// Per-tenant request-queue capacity; submits beyond it are shed.
  /// 0 => ORWL_SERVER_QUEUE_CAP (default 256).
  std::size_t queue_capacity = 0;
  /// Grow the pool when queued > grow_backlog * workers.
  /// 0 => ORWL_SERVER_GROW_BACKLOG (default 2).
  std::size_t grow_backlog = 0;
  /// A worker above the floor exits after this long without work.
  /// 0 => ORWL_SERVER_SHRINK_IDLE_MS (default 50).
  std::uint64_t shrink_idle_ms = 0;

  /// Base program options every tenant starts from; the server overrides
  /// topology (the carve) and tag (the tenant name) per tenant. Leave
  /// bind_threads=false here when carving a fixture topology.
  rt::ProgramOptions base;
};

using TenantId = std::size_t;

/// Point-in-time tenant snapshot (counters monotone over its lifetime).
struct TenantStats {
  TenantId id = 0;
  std::string name;
  topo::CpuSet cpus;
  std::size_t width_pus = 0;       ///< PUs actually carved (>= requested)
  std::uint64_t submitted = 0;     ///< accepted into the queue
  std::uint64_t completed = 0;     ///< handler runs finished OK
  std::uint64_t shed = 0;          ///< rejected: queue at capacity
  std::uint64_t failed = 0;        ///< handler runs that threw
  std::size_t workers = 0;         ///< live pool size now
  std::size_t peak_workers = 0;
  /// Thread handles the pool retains (live + not-yet-reaped). Shrunk-out
  /// workers are joined and their slots reused on the next spawn, so
  /// this stays bounded by peak_workers under grow/shrink churn.
  std::size_t thread_slots = 0;
  std::uint64_t grow_events = 0;
  std::uint64_t shrink_events = 0;
  /// Sum of the ProgramStats of every completed run (SLO rollup).
  rt::ProgramStats runtime;
};

/// Field-wise sum of two ProgramStats (booleans OR); the per-tenant
/// rollup rule, exposed for tests and benches.
void accumulate(rt::ProgramStats& into, const rt::ProgramStats& run);

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  /// Evicts every remaining tenant (completing queued work) and joins
  /// all worker threads.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit a tenant: carve spec.width_pus PUs out of the free part of
  /// the machine and start its worker pool.
  /// \return The tenant id (never 0).
  /// \throws std::invalid_argument on a malformed spec (empty name or
  ///         handler, zero width, min_workers > max_workers).
  /// \throws std::runtime_error when the server is full or no contiguous
  ///         run of whole free subtrees covers the width.
  TenantId admit(TenantSpec spec);

  /// admit() that reports rejection as nullopt instead of throwing
  /// (malformed specs still throw).
  std::optional<TenantId> try_admit(TenantSpec spec);

  /// Remove a tenant: stop admission of new requests, complete what is
  /// already queued, join its workers, return its PUs to the free pool.
  /// Unknown/already-evicted ids are a no-op (concurrent evictors race
  /// benignly).
  void evict(TenantId id);

  /// Enqueue one request for the tenant. Open-loop friendly: returns
  /// immediately; `done` (may be null) runs on the worker after the
  /// handler finishes (success or failure).
  /// \return false when the request was shed (queue at capacity) or the
  ///         tenant is gone — the caller's loss counter, not an error.
  bool submit(TenantId id, std::function<void()> done = nullptr);

  /// Block until the tenant's queue is empty and no handler is running.
  /// No-op for unknown ids.
  void drain(TenantId id);
  /// drain() every current tenant.
  void drain_all();

  /// Whether the tenant is currently admitted. Turns false as soon as
  /// an evict() begins (its queued work may still be completing).
  bool has_tenant(TenantId id) const;

  /// Snapshot one tenant (throws std::out_of_range on unknown id) /
  /// all tenants (admission order).
  TenantStats stats(TenantId id) const;
  std::vector<TenantStats> stats() const;

  /// The tenant's carved PUs (throws std::out_of_range on unknown id).
  topo::CpuSet tenant_cpus(TenantId id) const;
  /// The tenant's private sub-topology (valid until eviction).
  const topo::Topology& tenant_topology(TenantId id) const;

  std::size_t num_tenants() const;
  /// Union of all carved PUs right now.
  topo::CpuSet taken() const;
  /// The machine being carved.
  const topo::Topology& topology() const { return *topo_; }

  // ---- remote attach (distributed ORWL) -----------------------------------

  /// Start serving tenant-exported locations over `transport` (shm or
  /// tcp; at most one per server). Remote processes connect with
  /// dist::Client against the returned address.
  /// \return The transport's connectable address.
  std::string serve_dist(std::unique_ptr<dist::ServerTransport> transport);

  /// Export `loc` for remote attach under the tenant-namespaced name
  /// "<tenant-name>/<name>" — tenants cannot collide or squat on each
  /// other's names, and evicting the tenant unexports everything it
  /// published (in-flight proxies drain first; see Registry::unexport).
  /// `loc` must stay valid until the tenant is evicted. Typically called
  /// from the tenant's own handler with a program-owned location.
  /// \return The full exported name ("<tenant-name>/<name>").
  /// \throws std::out_of_range on an unknown/evicted tenant;
  ///         std::invalid_argument on a duplicate name.
  std::string export_location(TenantId id, const std::string& name,
                              rt::Location* loc);

  /// The registry behind serve_dist/export_location (created on first
  /// use, so exports may precede serve_dist).
  dist::Registry& dist_registry();

  // Resolved option values (after env fallback) — test introspection.
  std::size_t max_tenants() const noexcept { return max_tenants_; }
  std::size_t queue_capacity() const noexcept { return queue_cap_; }
  std::size_t grow_backlog() const noexcept { return grow_backlog_; }
  std::uint64_t shrink_idle_ms() const noexcept { return shrink_idle_ms_; }

 private:
  struct Tenant;

  std::shared_ptr<Tenant> find(TenantId id) const;
  void worker_loop(const std::shared_ptr<Tenant>& t, std::size_t slot);
  void spawn_worker_locked(const std::shared_ptr<Tenant>& t);
  static void reap_exited_locked(Tenant& t);
  static void stop_and_join(const std::shared_ptr<Tenant>& t);
  static void drain_tenant(const std::shared_ptr<Tenant>& t);
  static TenantStats snapshot(const Tenant& t);

  ServerOptions opts_;
  topo::Topology owned_topo_;          ///< used when opts_.topology == null
  const topo::Topology* topo_ = nullptr;
  std::size_t max_tenants_ = 0;
  std::size_t queue_cap_ = 0;
  std::size_t grow_backlog_ = 0;
  std::uint64_t shrink_idle_ms_ = 0;

  mutable std::mutex mu_;              ///< guards tenants_/taken_/next_id_
  std::map<TenantId, std::shared_ptr<Tenant>> tenants_;
  topo::CpuSet taken_;
  TenantId next_id_ = 1;

  mutable std::mutex dist_mu_;         ///< guards lazy registry_ creation
  std::unique_ptr<dist::Registry> registry_;
};

}  // namespace orwl::server
