#include "server/handlers.hpp"

namespace orwl::server {

Handler make_video_handler(apps::VideoParams params) {
  return [params](const TenantEnv& env) {
    rt::ProgramStats stats;
    apps::video_orwl(params, env.program_options(), &stats);
    return stats;
  };
}

Handler make_lk23_handler(std::size_t n, std::size_t iters,
                          std::size_t blocks_y, std::size_t blocks_x,
                          std::uint64_t seed) {
  return [=](const TenantEnv& env) {
    apps::Lk23Problem p = apps::Lk23Problem::generate(n, seed);
    rt::ProgramStats stats;
    apps::lk23_orwl(p, iters, blocks_y, blocks_x, env.program_options(),
                    &stats);
    return stats;
  };
}

}  // namespace orwl::server
