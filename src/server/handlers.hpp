// Stock request handlers: the paper's evaluation applications wrapped as
// server tenants. Each handler runs one full ORWL program per request
// inside the tenant's carve-out (its private sub-topology), using the
// pre-composed TenantEnv program options, and returns the run's
// ProgramStats for the per-tenant rollup.
#pragma once

#include <cstddef>
#include <cstdint>

#include "apps/lk23.hpp"
#include "apps/video.hpp"
#include "server/server.hpp"

namespace orwl::server {

/// Video-tracking pipeline (Sec. V-C) as a request handler: each request
/// processes `params.frames` frames of the synthetic scene.
Handler make_video_handler(apps::VideoParams params);

/// Livermore Kernel 23 (Sec. V-A) as a request handler: each request
/// runs `iters` sweeps of an n x n problem on a blocks_y x blocks_x task
/// grid. The problem is regenerated per request (seeded), so requests
/// are independent and repeatable.
Handler make_lk23_handler(std::size_t n, std::size_t iters,
                          std::size_t blocks_y, std::size_t blocks_x,
                          std::uint64_t seed = 7);

}  // namespace orwl::server
