// Open-loop traffic driver for the multi-tenant server.
//
// Closed-loop load tests hide overload: a slow server makes the client
// wait, which throttles the offered load and flatters the latency
// numbers (coordinated omission). This driver is open-loop: a request
// trace with absolute arrival times is generated up front (deterministic
// exponential inter-arrivals per lane, merged), and replay submits each
// request at its scheduled time whether or not the previous one came
// back. Latency is measured from the *scheduled arrival*, so queueing
// delay under overload is charged to the server, not silently forgiven.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/server.hpp"

namespace orwl::server {

/// One request of a trace. Times are milliseconds from replay start.
struct TraceEvent {
  double at_ms = 0;
  std::size_t lane = 0;  ///< index into the lane->tenant table at replay
};

/// Build a deterministic open-loop trace: lane i fires Poisson arrivals
/// at `rates_rps[i]` requests/second for `duration_ms`, all lanes merged
/// and sorted by arrival time. Same (rates, duration, seed) => same
/// trace, byte for byte.
/// \throws std::invalid_argument on empty rates, a non-positive rate, or
///         non-positive duration.
std::vector<TraceEvent> make_open_loop_trace(
    const std::vector<double>& rates_rps, double duration_ms,
    std::uint64_t seed);

/// Per-lane replay outcome.
struct LaneResult {
  std::size_t offered = 0;    ///< trace events for this lane
  std::size_t completed = 0;  ///< handler runs that finished
  std::size_t shed = 0;       ///< submits rejected (queue full / evicted)
  double p50_ms = 0;          ///< latency percentiles over completed
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  double offered_rps = 0;     ///< offered / trace duration
  double completed_rps = 0;   ///< completed / replay wall time
};

struct ReplayResult {
  std::vector<LaneResult> lanes;  ///< one per lane, lane order
  double wall_ms = 0;             ///< submit start -> last completion
};

/// Replay `trace` against the server: event e is submitted to
/// `tenants[e.lane]` at time e.at_ms (sleeping between events), then the
/// server is drained and per-lane latency percentiles are computed.
/// Latency of a request = completion time - scheduled arrival time.
/// \param tenants Lane -> tenant id table; every trace lane must index
///                into it (std::invalid_argument otherwise).
ReplayResult replay(Server& server, const std::vector<TenantId>& tenants,
                    const std::vector<TraceEvent>& trace);

/// Saturation throughput of one tenant: submit `requests` back-to-back
/// (no pacing, re-submitting shed requests), drain, and report
/// completions per second of wall time. The open-loop ceiling the SLO
/// percentiles are read against.
/// \throws std::runtime_error when the tenant is unknown or is evicted
///         mid-measurement (after waiting out the already-accepted
///         requests, so no completion callback outlives the call).
double measure_saturation_rps(Server& server, TenantId tenant,
                              std::size_t requests);

/// Percentile over a sample (p in [0, 1], nearest-rank); 0 on empty
/// input. Sorts `sample` in place.
double percentile_ms(std::vector<double>& sample, double p);

}  // namespace orwl::server
