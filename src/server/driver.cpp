#include "server/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "support/rng.hpp"

namespace orwl::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

std::vector<TraceEvent> make_open_loop_trace(
    const std::vector<double>& rates_rps, double duration_ms,
    std::uint64_t seed) {
  if (rates_rps.empty()) {
    throw std::invalid_argument("make_open_loop_trace: no lanes");
  }
  if (duration_ms <= 0) {
    throw std::invalid_argument("make_open_loop_trace: duration <= 0");
  }
  std::vector<TraceEvent> trace;
  for (std::size_t lane = 0; lane < rates_rps.size(); ++lane) {
    const double rate = rates_rps[lane];
    if (rate <= 0) {
      throw std::invalid_argument("make_open_loop_trace: rate <= 0");
    }
    // Per-lane sub-stream so adding a lane never perturbs the others.
    support::SplitMix64 rng(seed + 0x9e3779b97f4a7c15ULL * (lane + 1));
    const double mean_gap_ms = 1000.0 / rate;
    double at = 0;
    for (;;) {
      // Exponential inter-arrival: -ln(U) * mean, U in (0, 1].
      const double u = 1.0 - rng.uniform();
      at += -std::log(u) * mean_gap_ms;
      if (at >= duration_ms) break;
      trace.push_back(TraceEvent{at, lane});
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.at_ms < b.at_ms ||
                     (a.at_ms == b.at_ms && a.lane < b.lane);
            });
  return trace;
}

double percentile_ms(std::vector<double>& sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: the smallest value with at least p of the sample at
  // or below it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sample.size())));
  return sample[rank == 0 ? 0 : rank - 1];
}

ReplayResult replay(Server& server, const std::vector<TenantId>& tenants,
                    const std::vector<TraceEvent>& trace) {
  for (const TraceEvent& e : trace) {
    if (e.lane >= tenants.size()) {
      throw std::invalid_argument("replay: trace lane without a tenant");
    }
  }

  const std::size_t lanes = tenants.size();
  std::mutex mu;
  std::vector<std::vector<double>> latencies(lanes);
  std::vector<std::size_t> shed(lanes, 0);
  double last_completion_ms = 0;

  const auto t0 = Clock::now();
  for (const TraceEvent& e : trace) {
    // Open loop: wait for the scheduled arrival, never for completions.
    for (;;) {
      const double now = ms_since(t0);
      if (now >= e.at_ms) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(e.at_ms - now));
    }
    const double scheduled = e.at_ms;
    const std::size_t lane = e.lane;
    const bool accepted = server.submit(
        tenants[lane], [&, scheduled, lane] {
          const double done = ms_since(t0);
          std::lock_guard<std::mutex> lk(mu);
          latencies[lane].push_back(done - scheduled);
          last_completion_ms = std::max(last_completion_ms, done);
        });
    if (!accepted) {
      std::lock_guard<std::mutex> lk(mu);
      ++shed[lane];
    }
  }
  server.drain_all();

  ReplayResult res;
  std::lock_guard<std::mutex> lk(mu);  // workers are quiesced; belt+braces
  res.wall_ms = std::max(last_completion_ms, ms_since(t0));
  const double trace_ms =
      trace.empty() ? 0 : std::max(1e-9, trace.back().at_ms);
  res.lanes.resize(lanes);
  for (const TraceEvent& e : trace) ++res.lanes[e.lane].offered;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    LaneResult& r = res.lanes[lane];
    r.completed = latencies[lane].size();
    r.shed = shed[lane];
    r.p50_ms = percentile_ms(latencies[lane], 0.50);
    r.p99_ms = percentile_ms(latencies[lane], 0.99);
    r.p999_ms = percentile_ms(latencies[lane], 0.999);
    r.max_ms = latencies[lane].empty() ? 0 : latencies[lane].back();
    r.offered_rps =
        trace_ms > 0 ? r.offered * 1000.0 / trace_ms : 0;
    r.completed_rps =
        res.wall_ms > 0 ? r.completed * 1000.0 / res.wall_ms : 0;
  }
  return res;
}

double measure_saturation_rps(Server& server, TenantId tenant,
                              std::size_t requests) {
  if (requests == 0) return 0;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t completed = 0;

  const auto done = [&] {
    std::lock_guard<std::mutex> lk(mu);
    ++completed;
    cv.notify_one();
  };

  const auto t0 = Clock::now();
  std::size_t accepted = 0;
  while (accepted < requests) {
    if (server.submit(tenant, done)) {
      ++accepted;
      continue;
    }
    // submit() says false both for shed (queue full -- expected at
    // saturation, retry after a breather) and for a missing tenant
    // (never admitted, or evicted mid-measurement -- never recovers).
    if (!server.has_tenant(tenant)) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Every accepted request completes even across an eviction (evict
  // drains the queue and runs done callbacks before dropping the job),
  // so waiting here keeps mu/cv/completed alive until the last one.
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return completed == accepted; });
  }
  if (accepted < requests) {
    throw std::runtime_error(
        "measure_saturation_rps: tenant " + std::to_string(tenant) +
        " is unknown or was evicted mid-measurement");
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return secs > 0 ? static_cast<double>(requests) / secs : 0;
}

}  // namespace orwl::server
