#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "support/env.hpp"
#include "topo/binding.hpp"
#include "topo/detect.hpp"

namespace orwl::server {

void accumulate(rt::ProgramStats& into, const rt::ProgramStats& run) {
  into.control_events += run.control_events;
  into.control_inline_grants += run.control_inline_grants;
  into.control_shards += run.control_shards;
  into.data_transfers += run.data_transfers;
  into.locations_bound += run.locations_bound;
  into.compute_threads_bound += run.compute_threads_bound;
  into.control_threads_bound += run.control_threads_bound;
  into.bind_failures += run.bind_failures;
  into.guard_teardown_failures += run.guard_teardown_failures;
  into.affinity_applied = into.affinity_applied || run.affinity_applied;
  into.affinity_fallback = into.affinity_fallback || run.affinity_fallback;
  into.placement_recomputes += run.placement_recomputes;
  into.replace_checks += run.replace_checks;
  into.replace_triggers += run.replace_triggers;
  into.replacements += run.replacements;
  into.measured_handoffs += run.measured_handoffs;
  into.measured_remote_handoffs += run.measured_remote_handoffs;
  into.locations_skipped_unsized += run.locations_skipped_unsized;
  into.arena_bytes += run.arena_bytes;
  into.arena_refills += run.arena_refills;
  into.arena_node_misses += run.arena_node_misses;
  into.futex_waits += run.futex_waits;
  into.futex_wakes += run.futex_wakes;
  into.arena_magazine_hits += run.arena_magazine_hits;
  into.steal_executed += run.steal_executed;
  into.steal_local += run.steal_local;
  into.steal_remote += run.steal_remote;
  into.steal_lent += run.steal_lent;
  into.steal_parks += run.steal_parks;
  into.shard_steals += run.shard_steals;
}

/// One queued request.
struct Job {
  std::function<void()> done;
};

struct Server::Tenant {
  TenantId id = 0;
  TenantSpec spec;
  topo::Carveout carve;
  topo::Topology subtopo;
  TenantEnv env;  ///< env.topology points at subtopo

  std::mutex mu;
  std::condition_variable work_cv;  ///< workers wait for jobs / stop
  std::condition_variable idle_cv;  ///< drain waits for empty + !inflight
  std::deque<Job> queue;
  std::vector<std::thread> threads;  ///< join handles, slot-stable
  std::vector<std::size_t> exited;   ///< slots whose worker shrank out,
                                     ///< joined+reused on the next spawn
  std::size_t live_workers = 0;      ///< workers still in their loop
  std::size_t inflight = 0;
  bool stopping = false;

  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::size_t peak_workers = 0;
  std::uint64_t grow_events = 0;
  std::uint64_t shrink_events = 0;
  rt::ProgramStats rollup;

  /// Full registry names this tenant exported (under t->mu); unexported
  /// when the tenant is evicted.
  std::vector<std::string> dist_exports;
};

namespace {

std::size_t env_size(const char* var, std::size_t explicit_value,
                     long fallback) {
  if (explicit_value != 0) return explicit_value;
  const long v = support::env_long(var, fallback);
  return static_cast<std::size_t>(std::max(1L, v));
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.topology != nullptr) {
    topo_ = opts_.topology;
  } else {
    owned_topo_ = topo::detect_host();
    topo_ = &owned_topo_;
  }
  max_tenants_ = env_size(kMaxTenantsEnvVar, opts_.max_tenants, 8);
  queue_cap_ = env_size(kQueueCapEnvVar, opts_.queue_capacity, 256);
  grow_backlog_ = env_size(kGrowBacklogEnvVar, opts_.grow_backlog, 2);
  shrink_idle_ms_ = static_cast<std::uint64_t>(
      env_size(kShrinkIdleEnvVar,
               static_cast<std::size_t>(opts_.shrink_idle_ms), 50));
}

Server::~Server() {
  // Cut remote traffic first: after stop() no proxy ticket can be
  // enqueued into a location owned by a tenant we are about to join.
  {
    std::lock_guard<std::mutex> lk(dist_mu_);
    if (registry_ != nullptr) registry_->stop();
  }
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, t] : tenants_) all.push_back(t);
    tenants_.clear();
    taken_.clear_all();
  }
  for (auto& t : all) {
    drain_tenant(t);
    stop_and_join(t);
  }
}

TenantId Server::admit(TenantSpec spec) {
  if (auto id = try_admit(std::move(spec))) return *id;
  throw std::runtime_error(
      "Server::admit: no contiguous run of whole free subtrees covers the "
      "requested width (or the tenant limit is reached)");
}

std::optional<TenantId> Server::try_admit(TenantSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("Server::admit: tenant name is empty");
  }
  if (!spec.handler) {
    throw std::invalid_argument("Server::admit: tenant handler is empty");
  }
  if (spec.width_pus == 0) {
    throw std::invalid_argument("Server::admit: width_pus is zero");
  }
  if (spec.min_workers == 0 || spec.min_workers > spec.max_workers) {
    throw std::invalid_argument(
        "Server::admit: need 1 <= min_workers <= max_workers");
  }

  auto t = std::make_shared<Tenant>();
  std::lock_guard<std::mutex> lk(mu_);
  if (tenants_.size() >= max_tenants_) return std::nullopt;
  auto carve = topo::carve_subtrees(*topo_, spec.width_pus, taken_);
  if (!carve) return std::nullopt;

  t->id = next_id_++;
  t->spec = std::move(spec);
  t->carve = std::move(*carve);
  t->subtopo = topo::subtopology(*topo_, t->carve.pus,
                                 topo_->name() + "/" + t->spec.name);
  t->env.topology = &t->subtopo;
  t->env.cpus = t->carve.pus;
  t->env.name = t->spec.name;
  t->env.opts_ = opts_.base;
  t->env.opts_.topology = &t->subtopo;
  t->env.opts_.tag = t->spec.name;

  taken_ = taken_ | t->carve.pus;
  {
    std::lock_guard<std::mutex> tlk(t->mu);
    for (std::size_t i = 0; i < t->spec.min_workers; ++i) {
      spawn_worker_locked(t);
    }
    // The floor is the pool's steady state, not growth.
    t->grow_events = 0;
    t->peak_workers = t->live_workers;
  }
  tenants_.emplace(t->id, t);
  return t->id;
}

void Server::evict(TenantId id) {
  std::shared_ptr<Tenant> t;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) return;
    t = it->second;
    tenants_.erase(it);  // blocks new submits right away
  }
  // Stop remote attaches to this tenant's exports before its work
  // drains; outstanding proxies complete normally (Registry::unexport).
  {
    std::vector<std::string> names;
    {
      std::lock_guard<std::mutex> lk(t->mu);
      names.swap(t->dist_exports);
    }
    if (!names.empty()) {
      dist::Registry& reg = dist_registry();
      for (const std::string& n : names) reg.unexport(n);
    }
  }
  // Finish what was accepted and join the workers while the PUs are
  // still marked taken: freeing them first would let a concurrent
  // admit() carve the same PUs under a tenant that is still running.
  drain_tenant(t);
  stop_and_join(t);
  {
    std::lock_guard<std::mutex> lk(mu_);
    taken_ = taken_ - t->carve.pus;
  }
}

bool Server::submit(TenantId id, std::function<void()> done) {
  std::shared_ptr<Tenant> t = find(id);
  if (t == nullptr) return false;
  bool grow = false;
  {
    std::lock_guard<std::mutex> lk(t->mu);
    if (t->stopping) return false;
    if (t->queue.size() >= queue_cap_) {
      ++t->shed;
      return false;
    }
    t->queue.push_back(Job{std::move(done)});
    ++t->submitted;
    grow = t->queue.size() > grow_backlog_ * t->live_workers &&
           t->live_workers < t->spec.max_workers;
    if (grow) {
      spawn_worker_locked(t);
      ++t->grow_events;
      t->peak_workers = std::max(t->peak_workers, t->live_workers);
    }
  }
  t->work_cv.notify_one();
  return true;
}

void Server::drain(TenantId id) {
  if (auto t = find(id)) drain_tenant(t);
}

void Server::drain_all() {
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, t] : tenants_) all.push_back(t);
  }
  for (auto& t : all) drain_tenant(t);
}

TenantStats Server::stats(TenantId id) const {
  auto t = find(id);
  if (t == nullptr) throw std::out_of_range("Server::stats: unknown tenant");
  std::lock_guard<std::mutex> lk(t->mu);
  return snapshot(*t);
}

std::vector<TenantStats> Server::stats() const {
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, t] : tenants_) all.push_back(t);
  }
  std::vector<TenantStats> out;
  out.reserve(all.size());
  for (auto& t : all) {
    std::lock_guard<std::mutex> lk(t->mu);
    out.push_back(snapshot(*t));
  }
  return out;
}

topo::CpuSet Server::tenant_cpus(TenantId id) const {
  auto t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("Server::tenant_cpus: unknown tenant");
  }
  return t->env.cpus;
}

const topo::Topology& Server::tenant_topology(TenantId id) const {
  auto t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("Server::tenant_topology: unknown tenant");
  }
  return t->subtopo;
}

std::size_t Server::num_tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_.size();
}

topo::CpuSet Server::taken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return taken_;
}

bool Server::has_tenant(TenantId id) const { return find(id) != nullptr; }

std::shared_ptr<Server::Tenant> Server::find(TenantId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

void Server::reap_exited_locked(Tenant& t) {
  // Shrunk-out workers have already left their loop (they push their
  // slot right before returning), so these joins only wait out the few
  // instructions between unlocking t.mu and thread exit.
  for (std::size_t slot : t.exited) {
    if (slot < t.threads.size() && t.threads[slot].joinable()) {
      t.threads[slot].join();
    }
  }
  t.exited.clear();
}

void Server::spawn_worker_locked(const std::shared_ptr<Tenant>& t) {
  reap_exited_locked(*t);
  ++t->live_workers;
  std::size_t slot = 0;
  while (slot < t->threads.size() && t->threads[slot].joinable()) ++slot;
  if (slot == t->threads.size()) t->threads.emplace_back();
  t->threads[slot] = std::thread([this, t, slot] { worker_loop(t, slot); });
}

void Server::worker_loop(const std::shared_ptr<Tenant>& t,
                         std::size_t slot) {
  if (opts_.bind_threads) {
    topo::bind_current_thread(t->env.cpus);  // advisory (fixtures fail)
  }
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(t->mu);
      while (t->queue.empty() && !t->stopping) {
        if (t->live_workers > t->spec.min_workers) {
          // Above the floor: idle out after shrink_idle_ms.
          const auto status = t->work_cv.wait_for(
              lk, std::chrono::milliseconds(shrink_idle_ms_));
          if (status == std::cv_status::timeout && t->queue.empty() &&
              !t->stopping && t->live_workers > t->spec.min_workers) {
            --t->live_workers;
            ++t->shrink_events;
            t->exited.push_back(slot);  // reaped on the next spawn
            t->idle_cv.notify_all();
            return;
          }
        } else {
          t->work_cv.wait(lk);
        }
      }
      if (t->queue.empty()) {  // stopping with nothing left
        --t->live_workers;
        t->idle_cv.notify_all();
        return;
      }
      job = std::move(t->queue.front());
      t->queue.pop_front();
      ++t->inflight;
    }
    rt::ProgramStats run{};
    bool ok = true;
    try {
      run = t->spec.handler(t->env);
    } catch (...) {
      ok = false;  // counted below; a tenant bug must not kill the pool
    }
    // The completion callback runs while the job still counts as
    // inflight: drain() must not return while a done callback can still
    // touch caller state (replay()'s latency vectors live on its stack).
    if (job.done) {
      try {
        job.done();
      } catch (...) {
        // A throwing completion must not kill the pool either.
      }
    }
    {
      std::lock_guard<std::mutex> lk(t->mu);
      --t->inflight;
      if (ok) {
        ++t->completed;
        accumulate(t->rollup, run);
      } else {
        ++t->failed;
      }
      if (t->queue.empty() && t->inflight == 0) t->idle_cv.notify_all();
    }
  }
}

void Server::drain_tenant(const std::shared_ptr<Tenant>& t) {
  std::unique_lock<std::mutex> lk(t->mu);
  t->idle_cv.wait(lk,
                  [&] { return t->queue.empty() && t->inflight == 0; });
}

void Server::stop_and_join(const std::shared_ptr<Tenant>& t) {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(t->mu);
    t->stopping = true;
    threads.swap(t->threads);  // no spawns after stopping
    t->exited.clear();         // the swap owns every handle now
  }
  t->work_cv.notify_all();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

TenantStats Server::snapshot(const Tenant& t) {
  TenantStats s;
  s.id = t.id;
  s.name = t.spec.name;
  s.cpus = t.env.cpus;
  s.width_pus = t.carve.width;
  s.submitted = t.submitted;
  s.completed = t.completed;
  s.shed = t.shed;
  s.failed = t.failed;
  s.workers = t.live_workers;
  s.peak_workers = t.peak_workers;
  s.thread_slots = t.threads.size();
  s.grow_events = t.grow_events;
  s.shrink_events = t.shrink_events;
  s.runtime = t.rollup;
  return s;
}

dist::Registry& Server::dist_registry() {
  std::lock_guard<std::mutex> lk(dist_mu_);
  if (registry_ == nullptr) registry_ = std::make_unique<dist::Registry>();
  return *registry_;
}

std::string Server::serve_dist(
    std::unique_ptr<dist::ServerTransport> transport) {
  dist::Registry& reg = dist_registry();
  reg.serve(std::move(transport));
  return reg.address();
}

std::string Server::export_location(TenantId id, const std::string& name,
                                    rt::Location* loc) {
  std::shared_ptr<Tenant> t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("Server::export_location: unknown tenant " +
                            std::to_string(id));
  }
  const std::string full = t->spec.name + "/" + name;
  dist::Registry& reg = dist_registry();
  reg.export_location(full, loc);
  {
    std::lock_guard<std::mutex> lk(t->mu);
    t->dist_exports.push_back(full);
  }
  // Re-check admission: an evict() that raced us may have swept the
  // tenant's export list before our push landed. Seeing the tenant here
  // means our push preceded the sweep (the sweep runs after the erase
  // this find would have observed), so eviction will unexport us;
  // otherwise we roll back ourselves (unexport is idempotent).
  if (find(id) == nullptr) {
    reg.unexport(full);
    throw std::out_of_range("Server::export_location: tenant " +
                            std::to_string(id) + " is being evicted");
  }
  return full;
}

}  // namespace orwl::server
