// Typed FIFO-channel endpoints of the v2 facade.
//
// "An orwl_fifo primitive is used to store a new version of output data
// intermediately such that the lock for other readers/writers can
// quickly be released." (Sec. V-C)
//
// A channel is declared on the builder — the producer task calls
// TaskSpec::fifo_out<T>("name", ...), each consumer fifo_in<T>("name")
// — and the ring of backing locations, the write/read handles and their
// FIFO priorities all come out of build(). Bodies then fetch their
// endpoint by name:
//
//   auto frames = task.fifo_out<Pixel[]>("frames");
//   std::span<Pixel> out = frames.begin_push();
//   ... fill out ...
//   frames.end_push();
//
// FifoOut/FifoIn are cheap lenses over the program-owned rt endpoints
// (rt::FifoProducer / rt::FifoConsumer): the ring cursor lives in the
// program, so looking the endpoint up again mid-stream is harmless.
// T = void gives the untyped byte view; T[] an array-per-item channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "orwl/typed.hpp"
#include "runtime/fifo.hpp"

namespace orwl {

namespace detail {

/// Item element type of a channel: T itself for scalars, the element for
/// array channels, std::byte for the untyped (void) view.
template <typename T>
using fifo_element_t =
    std::conditional_t<std::is_void_v<T>, std::byte, std::remove_extent_t<T>>;

}  // namespace detail

/// Producer endpoint of a declared channel (Task::fifo_out).
template <typename T = void>
class FifoOut {
 public:
  using element = detail::fifo_element_t<T>;

  explicit FifoOut(rt::FifoProducer& f) noexcept : f_(&f) {}

  /// Acquire the next ring slot for writing; publish with end_push().
  /// Blocks while the consumers are `depth - 1` items behind.
  std::span<element> begin_push() { return as_span<element>(f_->begin_push()); }

  /// Publish the slot written since begin_push().
  void end_push() { f_->end_push(); }

  /// Scalar convenience: push one item (begin + copy + end).
  void push(const element& item)
    requires(!std::is_void_v<T> && !std::is_array_v<T>)
  {
    begin_push()[0] = item;
    end_push();
  }

  std::size_t depth() const noexcept { return f_->depth(); }
  std::uint64_t pushed() const noexcept { return f_->pushed(); }

  rt::FifoProducer& raw() noexcept { return *f_; }

 private:
  rt::FifoProducer* f_;
};

/// Consumer endpoint of a declared channel (Task::fifo_in). With several
/// consumers on one channel, all of them pop every item (the readers at
/// each slot's FIFO head share the grant) — the channel broadcasts.
template <typename T = void>
class FifoIn {
 public:
  using element = detail::fifo_element_t<T>;

  explicit FifoIn(rt::FifoConsumer& f) noexcept : f_(&f) {}

  /// Acquire the next item for reading; release with end_pop().
  std::span<const element> begin_pop() {
    return as_span<element>(f_->begin_pop());
  }

  /// Release the item read since begin_pop().
  void end_pop() { f_->end_pop(); }

  /// Scalar convenience: pop one item by value.
  element pop()
    requires(!std::is_void_v<T> && !std::is_array_v<T>)
  {
    const element v = begin_pop()[0];
    end_pop();
    return v;
  }

  std::size_t depth() const noexcept { return f_->depth(); }
  std::uint64_t popped() const noexcept { return f_->popped(); }

  rt::FifoConsumer& raw() noexcept { return *f_; }

 private:
  rt::FifoConsumer* f_;
};

}  // namespace orwl
