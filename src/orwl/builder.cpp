#include "orwl/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace orwl {

ProgramBuilder::ProgramBuilder(std::size_t num_tasks, Options opts)
    : opts_(opts), specs_(num_tasks) {
  if (num_tasks == 0) {
    throw std::invalid_argument("ProgramBuilder: at least one task");
  }
}

TaskSpec& ProgramBuilder::task(TaskId t) {
  if (t >= specs_.size()) {
    throw std::out_of_range("ProgramBuilder::task: bad task id");
  }
  return specs_[t];
}

ProgramBuilder& ProgramBuilder::body(TaskBody fn) {
  spmd_body_ = std::move(fn);
  return *this;
}

Program ProgramBuilder::build() {
  if (built_) {
    throw std::logic_error("ProgramBuilder::build: already built");
  }
  built_ = true;

  // The slot space comes from the declarations: owned slots size it, and
  // access targets extend it so a link to an (unsized) foreign slot still
  // resolves to a real location.
  std::size_t slots = 1;
  for (const TaskSpec& spec : specs_) {
    for (const TaskSpec::OwnDecl& o : spec.owns_) {
      slots = std::max(slots, o.slot + 1);
    }
    for (const TaskSpec::AccessDecl& a : spec.accesses_) {
      if (a.target.task >= specs_.size()) {
        throw std::out_of_range(
            "ProgramBuilder::build: access target names task " +
            std::to_string(a.target.task) + " of " +
            std::to_string(specs_.size()));
      }
      slots = std::max(slots, a.target.slot + 1);
    }
  }
  opts_.locations_per_task = slots;

  Program p(specs_.size(), opts_);
  p.declarative_ = true;

  // Scale the owned locations first (sizes precede links, exactly like
  // the Listing 1 init phase). Dry-run programs record sizes only.
  for (TaskId t = 0; t < specs_.size(); ++t) {
    const TaskSpec& spec = specs_[t];
    for (const TaskSpec::OwnDecl& o : spec.owns_) {
      rt::Location& l = p.rt_->location(t, o.slot);
      if (opts_.dry_run) {
        l.scale_hint(o.bytes);
      } else {
        l.scale(o.bytes);
      }
    }
    p.iterations_[t] = spec.iterations_;
    p.init_[t] = spec.init_;
    p.bodies_[t] = spec.body_ ? spec.body_ : spmd_body_;
  }

  // Pre-register every declared access: the runtime's task-location
  // graph is complete from here on — dependency_get()/affinity_compute()
  // work without running a single body.
  for (TaskId t = 0; t < specs_.size(); ++t) {
    for (const TaskSpec::AccessDecl& a : specs_[t].accesses_) {
      // Bodies look links up by (location, mode): a second same-mode
      // link of one task on one location would be unreachable — its
      // granted request never acquired, stalling the location's FIFO.
      // Reject the ambiguity at declaration time.
      for (const Program::DeclaredLink& seen : p.links_[t]) {
        if (seen.target == a.target && seen.mode == a.mode) {
          throw std::logic_error(
              "ProgramBuilder::build: task " + std::to_string(t) +
              " declares two " + to_string(a.mode) +
              " links on location (" + std::to_string(a.target.task) +
              ", " + std::to_string(a.target.slot) +
              ") — bodies could only ever reach the first");
        }
      }
      auto handle = std::make_unique<rt::Handle2>();
      p.rt_->declare_insert(t,
                            p.rt_->location(a.target.task, a.target.slot),
                            a.mode, a.priority, *handle);
      p.links_[t].push_back(Program::DeclaredLink{a.target, a.mode, a.type,
                                                  std::move(handle)});
    }
  }
  return p;
}

}  // namespace orwl
