#include "orwl/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace orwl {

ProgramBuilder::ProgramBuilder(std::size_t num_tasks, Options opts)
    : opts_(opts), specs_(num_tasks) {
  if (num_tasks == 0) {
    throw std::invalid_argument("ProgramBuilder: at least one task");
  }
}

TaskSpec& ProgramBuilder::task(TaskId t) {
  if (t >= specs_.size()) {
    throw std::out_of_range("ProgramBuilder::task: bad task id");
  }
  return specs_[t];
}

ProgramBuilder& ProgramBuilder::body(TaskBody fn) {
  spmd_body_ = std::move(fn);
  return *this;
}

ProgramBuilder& ProgramBuilder::export_location(LocRef r, std::string name) {
  if (name.empty()) {
    throw std::invalid_argument(
        "ProgramBuilder::export_location: empty name");
  }
  if (r.task >= specs_.size()) {
    throw std::out_of_range(
        "ProgramBuilder::export_location: export names task " +
        std::to_string(r.task) + " of " + std::to_string(specs_.size()));
  }
  for (const auto& [ref, seen] : exports_) {
    if (seen == name) {
      throw std::invalid_argument(
          "ProgramBuilder::export_location: name \"" + name +
          "\" exported twice");
    }
  }
  exports_.emplace_back(r, std::move(name));
  return *this;
}

Program ProgramBuilder::build() {
  if (built_) {
    throw std::logic_error("ProgramBuilder::build: already built");
  }
  built_ = true;

  // The slot space comes from the declarations: owned slots size it, and
  // access targets extend it so a link to an (unsized) foreign slot still
  // resolves to a real location.
  std::size_t slots = 1;
  for (const TaskSpec& spec : specs_) {
    for (const TaskSpec::OwnDecl& o : spec.owns_) {
      slots = std::max(slots, o.slot + 1);
    }
    for (const TaskSpec::AccessDecl& a : spec.accesses_) {
      if (a.target.task >= specs_.size()) {
        throw std::out_of_range(
            "ProgramBuilder::build: access target names task " +
            std::to_string(a.target.task) + " of " +
            std::to_string(specs_.size()));
      }
      slots = std::max(slots, a.target.slot + 1);
    }
  }
  for (const auto& [ref, name] : exports_) {
    slots = std::max(slots, ref.slot + 1);
  }

  // FIFO channels ride above the declared slot space: each channel gets
  // `depth` consecutive slots of its producer task, starting past every
  // slot named by owns()/reads()/writes(). Only the producer's slots in
  // a channel's range carry buffers; the same range on other tasks stays
  // an empty (harmless) location.
  struct PlannedChannel {
    TaskId producer;
    const TaskSpec::FifoOutDecl* decl;
    std::size_t first_slot;
  };
  std::vector<PlannedChannel> channels;
  std::size_t next_slot = slots;
  for (TaskId t = 0; t < specs_.size(); ++t) {
    for (const TaskSpec::FifoOutDecl& f : specs_[t].fifo_outs_) {
      if (f.depth < 2) {
        throw std::invalid_argument(
            "ProgramBuilder::build: channel \"" + f.name +
            "\" needs depth >= 2 (one slot cannot alternate)");
      }
      if (f.bytes == 0) {
        throw std::invalid_argument("ProgramBuilder::build: channel \"" +
                                    f.name + "\" declares zero-byte items");
      }
      for (const PlannedChannel& seen : channels) {
        if (seen.decl->name == f.name) {
          throw std::logic_error(
              "ProgramBuilder::build: channel \"" + f.name +
              "\" declared twice (tasks " + std::to_string(seen.producer) +
              " and " + std::to_string(t) + ")");
        }
      }
      channels.push_back(PlannedChannel{t, &f, next_slot});
      next_slot += f.depth;
    }
  }
  opts_.locations_per_task = next_slot;

  Program p(specs_.size(), opts_);
  p.declarative_ = true;
  p.declared_exports_ = exports_;

  // Scale the owned locations first (sizes precede links, exactly like
  // the Listing 1 init phase). Dry-run programs record sizes only.
  for (TaskId t = 0; t < specs_.size(); ++t) {
    const TaskSpec& spec = specs_[t];
    for (const TaskSpec::OwnDecl& o : spec.owns_) {
      rt::Location& l = p.rt_->location(t, o.slot);
      if (opts_.dry_run) {
        l.scale_hint(o.bytes);
      } else {
        l.scale(o.bytes);
      }
    }
    p.iterations_[t] = spec.iterations_;
    p.init_[t] = spec.init_;
    if (spec.for_each_item_) {
      // Synthesized dynamic-work body: seed, then join the collective.
      const SeedsFn seeds = spec.for_each_seeds_;
      const ForEachBody item = spec.for_each_item_;
      p.bodies_[t] = [seeds, item](Task& task) {
        std::vector<std::uint64_t> s;
        if (seeds) s = seeds(task);
        task.for_each(s, item);
      };
    } else {
      p.bodies_[t] = spec.body_ ? spec.body_ : spmd_body_;
    }
  }

  // Pre-register every declared access: the runtime's task-location
  // graph is complete from here on — dependency_get()/affinity_compute()
  // work without running a single body.
  for (TaskId t = 0; t < specs_.size(); ++t) {
    for (const TaskSpec::AccessDecl& a : specs_[t].accesses_) {
      // Bodies look links up by (location, mode): a second same-mode
      // link of one task on one location would be unreachable — its
      // granted request never acquired, stalling the location's FIFO.
      // Reject the ambiguity at declaration time.
      for (const Program::DeclaredLink& seen : p.links_[t]) {
        if (seen.target == a.target && seen.mode == a.mode) {
          throw std::logic_error(
              "ProgramBuilder::build: task " + std::to_string(t) +
              " declares two " + to_string(a.mode) +
              " links on location (" + std::to_string(a.target.task) +
              ", " + std::to_string(a.target.slot) +
              ") — bodies could only ever reach the first");
        }
      }
      auto handle = std::make_unique<rt::Handle2>();
      p.rt_->declare_insert(t,
                            p.rt_->location(a.target.task, a.target.slot),
                            a.mode, a.priority, *handle);
      p.links_[t].push_back(Program::DeclaredLink{a.target, a.mode, a.type,
                                                  std::move(handle)});
    }
  }

  // Materialize the channels: scale the producer-owned ring slots,
  // pre-register the producer's write handles (priority 0) and every
  // consumer's read handles (priority 1), and hand the rings to the rt
  // endpoints the bodies will drive.
  for (const PlannedChannel& pc : channels) {
    auto ch = std::make_unique<Program::FifoChannel>();
    ch->name = pc.decl->name;
    ch->producer = pc.producer;
    ch->first_slot = pc.first_slot;
    ch->depth = pc.decl->depth;
    ch->bytes = pc.decl->bytes;
    ch->type = pc.decl->type;
    std::vector<rt::Handle2*> ring;
    for (std::size_t s = 0; s < ch->depth; ++s) {
      rt::Location& l = p.rt_->location(ch->producer, ch->first_slot + s);
      if (opts_.dry_run) {
        l.scale_hint(ch->bytes);
      } else {
        l.scale(ch->bytes);
      }
      auto h = std::make_unique<rt::Handle2>();
      p.rt_->declare_insert(ch->producer, l, AccessMode::Write,
                            /*priority=*/0, *h);
      ring.push_back(h.get());
      ch->producer_handles.push_back(std::move(h));
    }
    ch->out.adopt(std::move(ring));
    p.fifos_.push_back(std::move(ch));
  }
  for (TaskId t = 0; t < specs_.size(); ++t) {
    for (const TaskSpec::FifoInDecl& fin : specs_[t].fifo_ins_) {
      Program::FifoChannel* ch = nullptr;
      for (auto& c : p.fifos_) {
        if (c->name == fin.name) {
          ch = c.get();
          break;
        }
      }
      if (ch == nullptr) {
        throw std::logic_error("ProgramBuilder::build: task " +
                               std::to_string(t) +
                               " consumes undeclared channel \"" + fin.name +
                               "\" (no task declared fifo_out on it)");
      }
      if (ch->producer == t) {
        throw std::logic_error(
            "ProgramBuilder::build: task " + std::to_string(t) +
            " consumes its own channel \"" + fin.name + "\"");
      }
      if (fin.type != nullptr && ch->type != nullptr &&
          *fin.type != *ch->type) {
        throw std::logic_error(
            "ProgramBuilder::build: channel \"" + fin.name +
            "\" carries items of type " + ch->type->name() + "; task " +
            std::to_string(t) + " consumes it as " + fin.type->name());
      }
      for (const auto& seen : ch->consumers) {
        if (seen->task == t) {
          throw std::logic_error("ProgramBuilder::build: task " +
                                 std::to_string(t) +
                                 " declares fifo_in twice on channel \"" +
                                 fin.name + "\"");
        }
      }
      auto end = std::make_unique<Program::FifoConsumerEnd>();
      end->task = t;
      std::vector<rt::Handle2*> ring;
      for (std::size_t s = 0; s < ch->depth; ++s) {
        rt::Location& l = p.rt_->location(ch->producer, ch->first_slot + s);
        auto h = std::make_unique<rt::Handle2>();
        p.rt_->declare_insert(t, l, AccessMode::Read, /*priority=*/1, *h);
        ring.push_back(h.get());
        end->handles.push_back(std::move(h));
      }
      end->fifo.adopt(std::move(ring));
      ch->consumers.push_back(std::move(end));
    }
  }
  return p;
}

}  // namespace orwl
