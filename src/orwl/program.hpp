// The v2 program facade and its per-task view.
//
// orwl::Program wraps rt::Program and owns the typed link tables the
// guards operate on. It runs in one of two modes:
//
//  - imperative (constructed directly): task bodies receive a Task& and
//    do the classic init phase themselves — scale, typed read()/write()
//    inserts, schedule() — exactly Listing 1 with types. This path also
//    serves dynamic-insert workloads: read()/write() after schedule()
//    become live inserts like v1 Handle inserts.
//  - declarative (produced by ProgramBuilder): the task-location graph
//    was declared before run(), the runtime already knows every access
//    (dependency_get()/affinity_compute() work pre-run, no dry-run
//    pass), and bodies start after the schedule barrier with their links
//    ready for lookup (read_link()/write_link()).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <typeinfo>
#include <vector>

#include "orwl/fifo.hpp"
#include "orwl/guards.hpp"
#include "orwl/typed.hpp"
#include "runtime/fifo.hpp"
#include "runtime/handle.hpp"
#include "runtime/program.hpp"
#include "runtime/steal_executor.hpp"

namespace orwl {

namespace dist {
class Registry;
}

class Task;
class Program;
class ProgramBuilder;

/// Body of one task in the v2 surface.
using TaskBody = std::function<void(Task&)>;

/// Combiner of the all-task iteration reduction (reduce_iteration and
/// the converged run_iterations driver). Sum is the historical default;
/// Min/Max serve predicates like "stop when the largest block residual
/// drops below eps" without sign tricks.
enum class ReduceOp { Sum, Min, Max };

/// Handed to every Task::for_each item body. push() publishes a newly
/// discovered work item into the executing worker's deque, where any
/// participating task can steal it — the dynamic-work alternative to
/// recursing on the discovering task's stack.
class StealContext {
 public:
  void push(std::uint64_t item) { wc_->push(item); }

  /// Index of the worker executing this item (== the task id for task
  /// workers, >= num_tasks for lock-blocked lenders).
  std::size_t worker() const noexcept { return wc_->worker(); }

 private:
  friend class Program;
  explicit StealContext(rt::StealExecutor::WorkerContext& wc) : wc_(&wc) {}
  rt::StealExecutor::WorkerContext* wc_;
};

/// Body of one dynamic work item (Task::for_each).
using ForEachBody = std::function<void(std::uint64_t, StealContext&)>;

/// Program construction options (the v1 options re-exported: affinity
/// mode, data transfer, control threads/shards, topology, dry_run, ...).
using Options = rt::ProgramOptions;

class Program {
 public:
  /// Imperative-mode program: `num_tasks` tasks whose bodies run the
  /// init phase themselves. locations_per_task comes from `opts` as in
  /// v1. Declarative programs are created through ProgramBuilder.
  explicit Program(std::size_t num_tasks, Options opts = {});

  Program(Program&&) noexcept;
  Program& operator=(Program&&) noexcept;
  ~Program();

  /// Same body for every task (SPMD), or per task.
  void set_task_body(TaskBody fn);
  void set_task_body(TaskId id, TaskBody fn);

  /// Spawn one thread per task, run all bodies to completion, join.
  /// Rethrows the first task exception, if any.
  void run();

  // ---- introspection ------------------------------------------------------
  std::size_t num_tasks() const noexcept { return rt_->num_tasks(); }
  bool declarative() const noexcept { return declarative_; }
  const topo::Topology& topology() const noexcept { return rt_->topology(); }
  const rt::ProgramStats& stats() const noexcept { return rt_->stats(); }

  /// Decayed measured communication matrix (ORWL_REPLACE metering);
  /// zero-order until the meter has harvested at least once.
  tm::CommMatrix measured_matrix() const { return rt_->measured_matrix(); }

  /// Online re-placements performed so far (live; stats().replacements
  /// is the post-run snapshot).
  std::uint64_t replacements() const noexcept { return rt_->replacements(); }

  /// Iterations declared for `id` via TaskSpec::iterates (0 undeclared).
  std::size_t iterations_of(TaskId id) const;

  rt::Location& location(LocRef r) { return rt_->location(r.task, r.slot); }

  /// Host-side typed view of a location (init/inspection; see Local).
  template <typename T>
  Local<T> local(LocRef r) {
    return Local<T>(location(r));
  }

  // ---- the advanced affinity API (Sec. IV-B), v2 names --------------------
  // For a declarative program these work before run(): the graph was
  // registered at build() time, so the matrix and the placement can be
  // inspected without executing a single task body.
  void dependency_get() { rt_->dependency_get(); }
  void affinity_compute() { rt_->affinity_compute(); }
  void affinity_set() { rt_->affinity_set(); }
  const tm::CommMatrix& comm_matrix() const { return rt_->comm_matrix(); }
  const tm::Placement& placement() const { return rt_->placement(); }

  /// The wrapped v1 runtime — the escape hatch for surfaces the facade
  /// does not (yet) type, and for tests that inspect runtime state.
  rt::Program& runtime() noexcept { return *rt_; }
  const rt::Program& runtime() const noexcept { return *rt_; }

  // ---- distributed ORWL (src/dist) ----------------------------------------

  /// Export the location at `r` under `name` in `reg`: remote processes
  /// can then attach it via reg.url(name) and their guards join this
  /// location's FIFO. The program must outlive reg.stop().
  /// \throws std::invalid_argument on a duplicate name (Registry rule).
  void export_location(LocRef r, const std::string& name,
                       dist::Registry& reg);

  /// Register every export declared on the builder
  /// (ProgramBuilder::export_location) with `reg`. Call once per
  /// registry, before or after reg.serve().
  void serve_exports(dist::Registry& reg);

  /// Attach to a remote location by URL — "orwl://host:port/name" (tcp)
  /// or "orwl+shm://base/name" (shm). The client session is owned by the
  /// program (one per endpoint, shared across names) and closed with it;
  /// repeated calls with the same URL return the same location. The
  /// returned location satisfies the full guard surface: pass it to
  /// Task::read/write or a standalone rt::Handle.
  /// \throws std::invalid_argument on a malformed URL or a missing /name;
  ///         std::runtime_error when the home rejects or is unreachable.
  rt::Location& remote(const std::string& url);

  // ---- FIFO channels (Sec. V-C), declared on the builder ------------------

  /// The producer endpoint of channel `name`. Task bodies go through
  /// Task::fifo_out (which adds the element-type check).
  /// \throws std::logic_error for an unknown channel, a task that is not
  ///         its producer, or a declared-type mismatch.
  rt::FifoProducer& fifo_producer(TaskId task, std::string_view name,
                                  const std::type_info* type);

  /// The consumer endpoint of channel `name` belonging to `task`.
  rt::FifoConsumer& fifo_consumer(TaskId task, std::string_view name,
                                  const std::type_info* type);

  /// All-task reduction used by the converged-predicate iteration
  /// driver: blocks until every task of the program has contributed one
  /// value for the current generation, then returns the combined value
  /// to all of them. Every task must call it the same number of times
  /// with the same combiner (Task::run_iterations(pred, body, op)
  /// guarantees that); a combiner mismatch within one generation throws
  /// std::logic_error.
  double reduce_iteration(double value, ReduceOp op);
  double reduce_iteration(double value) {
    return reduce_iteration(value, ReduceOp::Sum);
  }

 private:
  friend class Task;
  friend class ProgramBuilder;

  /// One pre-declared link: where it points, how, with which element
  /// type (null = declared untyped, matches any element type), and the
  /// runtime handle that will carry the ticket.
  struct DeclaredLink {
    LocRef target;
    AccessMode mode = AccessMode::Read;
    const std::type_info* type = nullptr;
    std::unique_ptr<rt::Handle2> handle;
  };

  /// Declarative-mode lookup used by Task::read_link/write_link.
  rt::Handle& declared_handle(TaskId task, LocRef target, AccessMode mode,
                              const std::type_info* type);

  /// One consumer endpoint of a channel: the task, its rt consumer, and
  /// the pre-declared read handles the consumer drives (ring order).
  struct FifoConsumerEnd {
    TaskId task = 0;
    rt::FifoConsumer fifo;
    std::vector<std::unique_ptr<rt::Handle2>> handles;
  };

  /// One declared channel: `depth` consecutive producer-owned slots
  /// starting at first_slot back the ring; handles live here for the
  /// program's lifetime, the rt endpoints adopt() them.
  struct FifoChannel {
    std::string name;
    TaskId producer = 0;
    std::size_t first_slot = 0;
    std::size_t depth = 0;
    std::size_t bytes = 0;
    const std::type_info* type = nullptr;  // null = untyped channel
    rt::FifoProducer out;
    std::vector<std::unique_ptr<rt::Handle2>> producer_handles;
    std::vector<std::unique_ptr<FifoConsumerEnd>> consumers;
  };

  FifoChannel& channel_of(TaskId task, std::string_view name,
                          const std::type_info* type, const char* what);

  /// Whether `t` produces or consumes any declared channel (such a task
  /// needs a body even with an empty link table: its channel handles
  /// hold queue tickets).
  bool fifo_participant(TaskId t) const noexcept;

  /// State of reduce_iteration (heap-allocated: Program stays movable).
  struct Reducer {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t arrived = 0;
    std::uint64_t generation = 0;
    double acc = 0.0;           ///< running combination, seeded by the
                                ///< first arriver of each generation
    ReduceOp op = ReduceOp::Sum;  ///< combiner of the open generation
    double published = 0.0;
  };

  /// State of the for_each collective (heap-allocated: Program stays
  /// movable). The executor is built lazily by the first task that
  /// reaches a for_each and is reused by every later collective.
  struct StealState {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t arrived = 0;
    std::size_t exited = 0;
    std::uint64_t generation = 0;       ///< entry barrier epoch
    std::uint64_t exit_generation = 0;  ///< exit barrier epoch
    std::unique_ptr<rt::StealExecutor> exec;
    rt::StealExecutor::ItemFn session_fn;  ///< lender body (outlives session)
  };

  /// The collective behind Task::for_each: entry rendezvous (everyone
  /// seeds its own deque before any worker starts), the steal loop, and
  /// an exit rendezvous (nobody seeds the next collective while a
  /// worker of this one could still sweep).
  void for_each_impl(TaskId task, rt::TaskContext& ctx,
                     std::span<const std::uint64_t> seeds,
                     const ForEachBody& body);

  /// Client sessions behind remote() (one per endpoint), heap-held so
  /// the header needs no dist includes and Program stays movable.
  struct RemoteState;

  std::unique_ptr<rt::Program> rt_;
  std::unique_ptr<RemoteState> remote_;
  std::vector<std::pair<LocRef, std::string>> declared_exports_;
  bool declarative_ = false;
  std::vector<std::vector<DeclaredLink>> links_;  // per task, build order
  std::vector<std::size_t> iterations_;           // per task, 0 undeclared
  std::vector<TaskBody> init_;                    // declarative init phase
  std::vector<TaskBody> bodies_;
  std::vector<std::unique_ptr<FifoChannel>> fifos_;  // declaration order
  std::unique_ptr<Reducer> red_ = std::make_unique<Reducer>();
  std::unique_ptr<StealState> steal_ = std::make_unique<StealState>();
};

/// Per-task view of a v2 program — the argument of every task body.
/// Links created imperatively are owned by the Task (they live for the
/// body's duration, like v1 stack handles); declared links live in the
/// program and are looked up by (location, mode, element type).
class Task {
 public:
  TaskId id() const noexcept { return ctx_->id(); }  ///< orwl_mytid
  std::size_t num_tasks() const noexcept { return ctx_->num_tasks(); }
  Program& program() noexcept { return *prog_; }

  /// Coordinates of this task's own location `slot`.
  LocRef mine(std::size_t slot = 0) const noexcept {
    return LocRef{ctx_->id(), slot};
  }

  /// Typed view of any location; my<T>(slot) for the task's own.
  template <typename T>
  Local<T> local(LocRef r) {
    return prog_->local<T>(r);
  }
  template <typename T>
  Local<T> my(std::size_t slot = 0) {
    return local<T>(mine(slot));
  }

  // ---- imperative init phase (and live inserts after schedule) -----------

  /// orwl_write_insert, typed: link this task to `r` with exclusive
  /// access. Before schedule() this is an init-phase insert; afterwards
  /// a live (dynamic-mode) insert. The returned token stays valid for
  /// the rest of the body.
  template <typename T>
  WriteLink<T> write(LocRef r, std::uint64_t priority) {
    rt::Handle2& h = make_handle();
    h.write_insert(*ctx_, prog_->location(r), priority);
    return WriteLink<T>(h);
  }

  /// orwl_read_insert, typed (readers at the FIFO head share the grant).
  template <typename T>
  ReadLink<T> read(LocRef r, std::uint64_t priority) {
    rt::Handle2& h = make_handle();
    h.read_insert(*ctx_, prog_->location(r), priority);
    return ReadLink<T>(h);
  }

  // ---- links to locations outside this program (distributed ORWL) ---------

  /// Link to a location that is not in this program's task/slot grid —
  /// typically a RemoteLocation from Program::remote(), whose home FIFO
  /// lives in another process. The request enqueues at the tail
  /// immediately (no schedule barrier: the home orders it globally), and
  /// the iterative re-insert cycle runs over the wire like any other
  /// guard cycle.
  template <typename T>
  WriteLink<T> write(rt::Location& l) {
    rt::Handle2& h = make_handle();
    h.insert_standalone(l, AccessMode::Write);
    return WriteLink<T>(h);
  }

  template <typename T>
  ReadLink<T> read(rt::Location& l) {
    rt::Handle2& h = make_handle();
    h.insert_standalone(l, AccessMode::Read);
    return ReadLink<T>(h);
  }

  // ---- declarative link lookup -------------------------------------------

  /// The link declared with TaskSpec::writes on `r` for this task.
  /// The full declared type must match — `T[]` and `T` are different
  /// shapes on purpose, so a scalar lookup cannot silently alias an
  /// array location's first element.
  /// \throws std::logic_error when the program is imperative, no such
  ///         declaration exists, or the declared type differs.
  template <typename T>
  WriteLink<T> write_link(LocRef r) {
    return WriteLink<T>(
        prog_->declared_handle(id(), r, AccessMode::Write, &typeid(T)));
  }

  /// The link declared with TaskSpec::reads on `r` for this task.
  template <typename T>
  ReadLink<T> read_link(LocRef r) {
    return ReadLink<T>(
        prog_->declared_handle(id(), r, AccessMode::Read, &typeid(T)));
  }

  // ---- declared FIFO channels ---------------------------------------------

  /// The producer endpoint of the channel this task declared with
  /// TaskSpec::fifo_out. The declared type must match (T = void for the
  /// untyped byte view).
  template <typename T = void>
  FifoOut<T> fifo_out(std::string_view name) {
    const std::type_info* type = nullptr;
    if constexpr (!std::is_void_v<T>) type = &typeid(T);
    return FifoOut<T>(prog_->fifo_producer(id(), name, type));
  }

  /// The consumer endpoint declared with TaskSpec::fifo_in.
  template <typename T = void>
  FifoIn<T> fifo_in(std::string_view name) {
    const std::type_info* type = nullptr;
    if constexpr (!std::is_void_v<T>) type = &typeid(T);
    return FifoIn<T>(prog_->fifo_consumer(id(), name, type));
  }

  // ---- phases -------------------------------------------------------------

  /// orwl_schedule (imperative mode only: declarative bodies start after
  /// the barrier, so calling this from one is an error).
  void schedule();

  /// True when the program only extracts the graph; imperative bodies
  /// should return right after schedule() in that case.
  bool dry_run() const noexcept { return ctx_->dry_run(); }

  /// Iteration count declared via TaskSpec::iterates (0 undeclared).
  std::size_t iterations() const { return prog_->iterations_of(id()); }

  /// The iteration driver: run `body(iter)` k times — the Handle2
  /// re-insert cycle keeps all links synchronized between iterations, so
  /// this replaces the hand-rolled per-iteration loops. No-op in
  /// dry-run programs. Each iteration boundary ticks the measurement-
  /// driven re-placement engine (a relaxed counter when ORWL_REPLACE is
  /// off).
  template <typename F>
    requires std::is_invocable_v<F&, std::size_t>
  void run_iterations(std::size_t k, F&& body) {
    if (dry_run()) return;
    for (std::size_t i = 0; i < k; ++i) {
      body(i);
      ctx_->program().replace_tick();
    }
  }

  /// Iteration driver over the declared iterates(n) count.
  template <typename F>
    requires std::is_invocable_v<F&, std::size_t>
  void run_iterations(F&& body) {
    run_iterations(iterations(), std::forward<F>(body));
  }

  /// Converged-predicate iteration driver: `body(iter)` returns this
  /// task's local contribution (e.g. its block's residual), the values
  /// are reduced with `op` across ALL tasks of the program at the
  /// iteration boundary (sum by default), and every task keeps
  /// iterating until `pred(global)` says stop. Because each task
  /// evaluates the same predicate on the same combined value,
  /// termination is uniform — no task can leave the loop while another
  /// re-inserts its locks. Every task of the program must drive its
  /// loop through this overload with the same `op` (the reduction
  /// blocks for all of them). Returns the number of iterations executed
  /// (0 in dry-run programs).
  template <typename Pred, typename F>
    requires(std::is_invocable_r_v<bool, Pred&, double> &&
             std::is_invocable_r_v<double, F&, std::size_t>)
  std::size_t run_iterations(Pred&& pred, F&& body,
                             ReduceOp op = ReduceOp::Sum) {
    if (dry_run()) return 0;
    for (std::size_t i = 0;; ++i) {
      const double local = body(i);
      const double global = prog_->reduce_iteration(local, op);
      ctx_->program().replace_tick();
      if (pred(global)) return i + 1;
    }
  }

  // ---- dynamic work (the steal executor, Sec. IV-A's thaw in reverse) -----

  /// Collective dynamic-work driver: every task of the program calls
  /// for_each with its share of the initial items; the items — plus
  /// everything the bodies push() — are executed by all tasks together
  /// under the topology-aware steal executor (ORWL_STEAL /
  /// Options::steal policy), and the call returns on every task once
  /// ALL items are done (hierarchical termination detection, no
  /// ping-pong barrier). Bodies of one collective must be functionally
  /// identical across tasks and must not acquire ORWL locks (a blocked
  /// acquire inside an item would stall the worker's deque). No-op
  /// under dry-run.
  void for_each(std::span<const std::uint64_t> seeds,
                const ForEachBody& body) {
    prog_->for_each_impl(id(), *ctx_, seeds, body);
  }

  /// The wrapped v1 context — escape hatch for rt:: interop (FIFO
  /// channels, raw handles).
  rt::TaskContext& context() noexcept { return *ctx_; }

 private:
  friend class Program;
  Task(Program& p, rt::TaskContext& ctx) : prog_(&p), ctx_(&ctx) {}

  rt::Handle2& make_handle() {
    owned_.push_back(std::make_unique<rt::Handle2>());
    return *owned_.back();
  }

  Program* prog_;
  rt::TaskContext* ctx_;
  std::vector<std::unique_ptr<rt::Handle2>> owned_;
};

}  // namespace orwl
