// The v2 program facade and its per-task view.
//
// orwl::Program wraps rt::Program and owns the typed link tables the
// guards operate on. It runs in one of two modes:
//
//  - imperative (constructed directly): task bodies receive a Task& and
//    do the classic init phase themselves — scale, typed read()/write()
//    inserts, schedule() — exactly Listing 1 with types. This path also
//    serves dynamic-insert workloads: read()/write() after schedule()
//    become live inserts like v1 Handle inserts.
//  - declarative (produced by ProgramBuilder): the task-location graph
//    was declared before run(), the runtime already knows every access
//    (dependency_get()/affinity_compute() work pre-run, no dry-run
//    pass), and bodies start after the schedule barrier with their links
//    ready for lookup (read_link()/write_link()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <typeinfo>
#include <vector>

#include "orwl/guards.hpp"
#include "orwl/typed.hpp"
#include "runtime/handle.hpp"
#include "runtime/program.hpp"

namespace orwl {

class Task;
class Program;
class ProgramBuilder;

/// Body of one task in the v2 surface.
using TaskBody = std::function<void(Task&)>;

/// Program construction options (the v1 options re-exported: affinity
/// mode, data transfer, control threads/shards, topology, dry_run, ...).
using Options = rt::ProgramOptions;

class Program {
 public:
  /// Imperative-mode program: `num_tasks` tasks whose bodies run the
  /// init phase themselves. locations_per_task comes from `opts` as in
  /// v1. Declarative programs are created through ProgramBuilder.
  explicit Program(std::size_t num_tasks, Options opts = {});

  Program(Program&&) noexcept = default;
  Program& operator=(Program&&) noexcept = default;

  /// Same body for every task (SPMD), or per task.
  void set_task_body(TaskBody fn);
  void set_task_body(TaskId id, TaskBody fn);

  /// Spawn one thread per task, run all bodies to completion, join.
  /// Rethrows the first task exception, if any.
  void run();

  // ---- introspection ------------------------------------------------------
  std::size_t num_tasks() const noexcept { return rt_->num_tasks(); }
  bool declarative() const noexcept { return declarative_; }
  const topo::Topology& topology() const noexcept { return rt_->topology(); }
  const rt::ProgramStats& stats() const noexcept { return rt_->stats(); }

  /// Iterations declared for `id` via TaskSpec::iterates (0 undeclared).
  std::size_t iterations_of(TaskId id) const;

  rt::Location& location(LocRef r) { return rt_->location(r.task, r.slot); }

  /// Host-side typed view of a location (init/inspection; see Local).
  template <typename T>
  Local<T> local(LocRef r) {
    return Local<T>(location(r));
  }

  // ---- the advanced affinity API (Sec. IV-B), v2 names --------------------
  // For a declarative program these work before run(): the graph was
  // registered at build() time, so the matrix and the placement can be
  // inspected without executing a single task body.
  void dependency_get() { rt_->dependency_get(); }
  void affinity_compute() { rt_->affinity_compute(); }
  void affinity_set() { rt_->affinity_set(); }
  const tm::CommMatrix& comm_matrix() const { return rt_->comm_matrix(); }
  const tm::Placement& placement() const { return rt_->placement(); }

  /// The wrapped v1 runtime — the escape hatch for surfaces the facade
  /// does not (yet) type, and for tests that inspect runtime state.
  rt::Program& runtime() noexcept { return *rt_; }
  const rt::Program& runtime() const noexcept { return *rt_; }

 private:
  friend class Task;
  friend class ProgramBuilder;

  /// One pre-declared link: where it points, how, with which element
  /// type (null = declared untyped, matches any element type), and the
  /// runtime handle that will carry the ticket.
  struct DeclaredLink {
    LocRef target;
    AccessMode mode = AccessMode::Read;
    const std::type_info* type = nullptr;
    std::unique_ptr<rt::Handle2> handle;
  };

  /// Declarative-mode lookup used by Task::read_link/write_link.
  rt::Handle& declared_handle(TaskId task, LocRef target, AccessMode mode,
                              const std::type_info* type);

  std::unique_ptr<rt::Program> rt_;
  bool declarative_ = false;
  std::vector<std::vector<DeclaredLink>> links_;  // per task, build order
  std::vector<std::size_t> iterations_;           // per task, 0 undeclared
  std::vector<TaskBody> init_;                    // declarative init phase
  std::vector<TaskBody> bodies_;
};

/// Per-task view of a v2 program — the argument of every task body.
/// Links created imperatively are owned by the Task (they live for the
/// body's duration, like v1 stack handles); declared links live in the
/// program and are looked up by (location, mode, element type).
class Task {
 public:
  TaskId id() const noexcept { return ctx_->id(); }  ///< orwl_mytid
  std::size_t num_tasks() const noexcept { return ctx_->num_tasks(); }
  Program& program() noexcept { return *prog_; }

  /// Coordinates of this task's own location `slot`.
  LocRef mine(std::size_t slot = 0) const noexcept {
    return LocRef{ctx_->id(), slot};
  }

  /// Typed view of any location; my<T>(slot) for the task's own.
  template <typename T>
  Local<T> local(LocRef r) {
    return prog_->local<T>(r);
  }
  template <typename T>
  Local<T> my(std::size_t slot = 0) {
    return local<T>(mine(slot));
  }

  // ---- imperative init phase (and live inserts after schedule) -----------

  /// orwl_write_insert, typed: link this task to `r` with exclusive
  /// access. Before schedule() this is an init-phase insert; afterwards
  /// a live (dynamic-mode) insert. The returned token stays valid for
  /// the rest of the body.
  template <typename T>
  WriteLink<T> write(LocRef r, std::uint64_t priority) {
    rt::Handle2& h = make_handle();
    h.write_insert(*ctx_, prog_->location(r), priority);
    return WriteLink<T>(h);
  }

  /// orwl_read_insert, typed (readers at the FIFO head share the grant).
  template <typename T>
  ReadLink<T> read(LocRef r, std::uint64_t priority) {
    rt::Handle2& h = make_handle();
    h.read_insert(*ctx_, prog_->location(r), priority);
    return ReadLink<T>(h);
  }

  // ---- declarative link lookup -------------------------------------------

  /// The link declared with TaskSpec::writes on `r` for this task.
  /// The full declared type must match — `T[]` and `T` are different
  /// shapes on purpose, so a scalar lookup cannot silently alias an
  /// array location's first element.
  /// \throws std::logic_error when the program is imperative, no such
  ///         declaration exists, or the declared type differs.
  template <typename T>
  WriteLink<T> write_link(LocRef r) {
    return WriteLink<T>(
        prog_->declared_handle(id(), r, AccessMode::Write, &typeid(T)));
  }

  /// The link declared with TaskSpec::reads on `r` for this task.
  template <typename T>
  ReadLink<T> read_link(LocRef r) {
    return ReadLink<T>(
        prog_->declared_handle(id(), r, AccessMode::Read, &typeid(T)));
  }

  // ---- phases -------------------------------------------------------------

  /// orwl_schedule (imperative mode only: declarative bodies start after
  /// the barrier, so calling this from one is an error).
  void schedule();

  /// True when the program only extracts the graph; imperative bodies
  /// should return right after schedule() in that case.
  bool dry_run() const noexcept { return ctx_->dry_run(); }

  /// Iteration count declared via TaskSpec::iterates (0 undeclared).
  std::size_t iterations() const { return prog_->iterations_of(id()); }

  /// The iteration driver: run `body(iter)` k times — the Handle2
  /// re-insert cycle keeps all links synchronized between iterations, so
  /// this replaces the hand-rolled per-iteration loops. No-op in
  /// dry-run programs.
  template <typename F>
  void run_iterations(std::size_t k, F&& body) {
    if (dry_run()) return;
    for (std::size_t i = 0; i < k; ++i) body(i);
  }

  /// Iteration driver over the declared iterates(n) count.
  template <typename F>
  void run_iterations(F&& body) {
    run_iterations(iterations(), std::forward<F>(body));
  }

  /// The wrapped v1 context — escape hatch for rt:: interop (FIFO
  /// channels, raw handles).
  rt::TaskContext& context() noexcept { return *ctx_; }

 private:
  friend class Program;
  Task(Program& p, rt::TaskContext& ctx) : prog_(&p), ctx_(&ctx) {}

  rt::Handle2& make_handle() {
    owned_.push_back(std::make_unique<rt::Handle2>());
    return *owned_.back();
  }

  Program* prog_;
  rt::TaskContext* ctx_;
  std::vector<std::unique_ptr<rt::Handle2>> owned_;
};

}  // namespace orwl
