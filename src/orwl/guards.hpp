// Phase-safe access guards: the typed replacement for rt::Section.
//
// A link token (ReadLink<T> / WriteLink<T>) names one task-location link
// with its access mode and element type in the type system, so the
// compiler — not the runtime — rejects writing through a read link: a
// WriteGuard is constructible from a WriteLink only. Guards acquire on
// construction and release on scope exit; teardown is noexcept (a
// throwing release during unwinding is swallowed and recorded on the
// guard-teardown counters, and releasing twice is a no-op), which fixes
// the v1 Section's throwing destructor. Accessing a guard after
// release() throws — the buffer belongs to the next grantee by then,
// exactly like v1's "section not acquired" maps.
#pragma once

#include <span>

#include "orwl/typed.hpp"
#include "runtime/handle.hpp"

namespace orwl {

namespace detail {

/// Type-erased core of the link tokens: a non-owning pointer to a
/// runtime handle managed by the Task/Program link tables. Copyable and
/// cheap; an empty token throws on first use, not at construction, so
/// conditional links ("only read a neighbor when one exists") stay
/// ergonomic.
class LinkBase {
 public:
  bool linked() const noexcept { return h_ != nullptr; }

  rt::Handle& handle() const {
    if (h_ == nullptr) {
      throw std::logic_error(
          "orwl link: empty token (the link was never declared/inserted)");
    }
    return *h_;
  }

 protected:
  LinkBase() = default;
  explicit LinkBase(rt::Handle& h) noexcept : h_(&h) {}

 private:
  rt::Handle* h_ = nullptr;
};

}  // namespace detail

/// Token for a shared-access link (orwl_read_insert). T may be an
/// element type (`double`) or an unbounded array (`double[]`).
template <typename T>
class ReadLink : public detail::LinkBase {
 public:
  ReadLink() = default;
  explicit ReadLink(rt::Handle& h) noexcept : LinkBase(h) {}
};

/// Token for an exclusive-access link (orwl_write_insert).
template <typename T>
class WriteLink : public detail::LinkBase {
 public:
  WriteLink() = default;
  explicit WriteLink(rt::Handle& h) noexcept : LinkBase(h) {}
};

namespace detail {

/// Acquire/teardown logic shared by all guards. The destructor calls the
/// handle's noexcept teardown release; release() offers the throwing
/// early-release for code that wants to observe protocol errors.
class GuardBase {
 public:
  GuardBase(const GuardBase&) = delete;
  GuardBase& operator=(const GuardBase&) = delete;

  /// Release the lock before scope exit (idempotent: releasing an
  /// already-released guard is a no-op). Unlike the destructor this
  /// throws on protocol errors — and a throwing release leaves the
  /// guard armed, so the destructor's noexcept teardown still runs and
  /// records the failure (same contract as rt::Section).
  void release() {
    if (h_ == nullptr) return;
    if (h_->acquired()) h_->release();
    h_ = nullptr;
  }

  /// True until release() (explicit or via destructor).
  bool held() const noexcept { return h_ != nullptr; }

 protected:
  explicit GuardBase(rt::Handle& h) : h_(&h) { h.acquire(); }
  ~GuardBase() {
    if (h_ != nullptr) h_->release_for_teardown();
  }

  rt::Handle& handle() const noexcept { return *h_; }

  /// Accessor gate: after release() the buffer belongs to the next
  /// grantee, so the cached map must not be reachable (v1's maps threw
  /// "section not acquired" here; the typed guards keep that contract).
  void ensure_held() const {
    if (h_ == nullptr) {
      throw std::logic_error("orwl guard: accessed after release()");
    }
  }

 private:
  rt::Handle* h_;
};

}  // namespace detail

/// Exclusive typed access to a single-element location for the guard's
/// scope. Constructible from a WriteLink only — a WriteGuard over a
/// ReadLink is a compile-time error.
template <typename T>
class WriteGuard : public detail::GuardBase {
 public:
  explicit WriteGuard(const WriteLink<T>& link)
      : GuardBase(link.handle()),
        p_(detail::checked_span<T>(handle().write_map().data(),
                                   handle().write_map().size(), "WriteGuard")
               .data()) {}

  T& ref() {
    ensure_held();
    return *p_;
  }
  T& operator*() { return ref(); }
  T* operator->() {
    ensure_held();
    return p_;
  }

 private:
  T* p_;
};

/// Exclusive typed access to an array location.
template <typename T>
class WriteGuard<T[]> : public detail::GuardBase {
 public:
  explicit WriteGuard(const WriteLink<T[]>& link)
      : GuardBase(link.handle()),
        span_(detail::checked_span<T>(handle().write_map().data(),
                                      handle().write_map().size(),
                                      "WriteGuard", 0)) {}

  std::span<T> span() {
    ensure_held();
    return span_;
  }
  T& operator[](std::size_t i) { return span()[i]; }
  std::size_t size() const {
    ensure_held();
    return span_.size();
  }
  T* data() { return span().data(); }
  auto begin() { return span().begin(); }
  auto end() { return span().end(); }

 private:
  std::span<T> span_;
};

/// Shared typed access to a single-element location. Constructible from
/// a ReadLink; the granted reader group shares the head of the FIFO.
template <typename T>
class ReadGuard : public detail::GuardBase {
 public:
  explicit ReadGuard(const ReadLink<T>& link)
      : GuardBase(link.handle()),
        p_(detail::checked_span<T>(handle().read_map().data(),
                                   handle().read_map().size(), "ReadGuard")
               .data()) {}

  const T& ref() const {
    ensure_held();
    return *p_;
  }
  const T& operator*() const { return ref(); }
  const T* operator->() const {
    ensure_held();
    return p_;
  }

 private:
  const T* p_;
};

/// Shared typed access to an array location.
template <typename T>
class ReadGuard<T[]> : public detail::GuardBase {
 public:
  explicit ReadGuard(const ReadLink<T[]>& link)
      : GuardBase(link.handle()),
        span_(detail::checked_span<T>(handle().read_map().data(),
                                      handle().read_map().size(),
                                      "ReadGuard", 0)) {}

  std::span<const T> span() const {
    ensure_held();
    return span_;
  }
  const T& operator[](std::size_t i) const { return span()[i]; }
  std::size_t size() const {
    ensure_held();
    return span_.size();
  }
  const T* data() const { return span().data(); }
  auto begin() const { return span().begin(); }
  auto end() const { return span().end(); }

 private:
  std::span<const T> span_;
};

}  // namespace orwl
