// Typed locations for the v2 facade.
//
// The paper's model is deliberately abstract — "orwl_location is the
// primitive to represent a shared resource between the tasks" (Sec. III)
// — but the v1 surface leaked the reproduction's internals: callers
// scaled byte counts by hand and reinterpret_cast their way through
// std::byte maps. The typed layer closes that gap: a Local<T> knows its
// element type, scale() sizes come from the type, and every map is
// checked (size, divisibility, alignment) before a reference is handed
// out — no reinterpret_cast in user code.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "runtime/location.hpp"
#include "runtime/types.hpp"

namespace orwl {

using rt::AccessMode;
using rt::LocationId;
using rt::TaskId;

/// Coordinates of a location: (owning task, slot). The v2 way to name
/// ORWL_LOCATION(task, slot) without touching runtime types.
struct LocRef {
  TaskId task = 0;
  std::size_t slot = 0;

  friend bool operator==(const LocRef&, const LocRef&) = default;
};

/// Shorthand constructor: loc(task) or loc(task, slot).
constexpr LocRef loc(TaskId task, std::size_t slot = 0) noexcept {
  return LocRef{task, slot};
}

namespace detail {

/// Element types a location may hold: trivially copyable (the buffer is
/// raw shared memory that migrates between NUMA nodes) and cv-unqualified
/// (constness is expressed by the guard, not the element type).
template <typename T>
inline constexpr bool is_location_element =
    std::is_trivially_copyable_v<T> && !std::is_const_v<T> &&
    !std::is_volatile_v<T> && !std::is_reference_v<T>;

/// The one checked byte->T conversion of the facade. Verifies that the
/// buffer exists, holds a whole number of at least `min_count` elements,
/// and is aligned for T — then hands out the only reinterpret_cast the
/// user never has to write. Array surfaces pass min_count = 0: a
/// zero-sized location is the v1 pure-synchronization idiom and maps to
/// an empty span.
template <typename T>
std::span<T> checked_span(std::byte* data, std::size_t bytes,
                          const char* what, std::size_t min_count = 1) {
  static_assert(is_location_element<T>,
                "location element types must be cv-unqualified and "
                "trivially copyable");
  if (bytes == 0 && min_count == 0) return {};
  if (data == nullptr) {
    throw std::logic_error(std::string(what) +
                           ": location has no buffer (scale() it first; "
                           "scale_hint/dry-run buffers are not mapped)");
  }
  if (bytes < min_count * sizeof(T) || bytes % sizeof(T) != 0) {
    throw std::length_error(
        std::string(what) + ": location holds " + std::to_string(bytes) +
        " bytes, not a multiple of sizeof(T)=" + std::to_string(sizeof(T)) +
        " covering at least " + std::to_string(min_count) + " element(s)");
  }
  if (reinterpret_cast<std::uintptr_t>(data) % alignof(T) != 0) {
    throw std::runtime_error(std::string(what) +
                             ": buffer is not aligned for the element type");
  }
  return {reinterpret_cast<T*>(data), bytes / sizeof(T)};
}

template <typename T>
std::span<const T> checked_span(const std::byte* data, std::size_t bytes,
                                const char* what, std::size_t min_count = 1) {
  const std::span<T> s = checked_span<T>(const_cast<std::byte*>(data), bytes,
                                         what, min_count);
  return {s.data(), s.size()};
}

}  // namespace detail

/// Checked typed view of an untyped byte span (the FIFO channels and
/// other blob surfaces): size must be a multiple of sizeof(T) and the
/// storage aligned for T; an empty input yields an empty span.
template <typename T>
std::span<T> as_span(std::span<std::byte> bytes) {
  return detail::checked_span<T>(bytes.data(), bytes.size(), "as_span", 0);
}
template <typename T>
std::span<const T> as_span(std::span<const std::byte> bytes) {
  return detail::checked_span<T>(bytes.data(), bytes.size(), "as_span", 0);
}

/// Typed view of one location holding a single T (Local<T>) or a runtime-
/// sized array of T (Local<T[]>). A Local does not own the location — it
/// is a cheap, copyable lens the facade hands out; the underlying
/// rt::Location (buffer, FIFO, NUMA binding) lives in the program.
///
/// Host-side access (value()/span()) does NOT consult the lock protocol:
/// it is for the init phase (priming buffers before schedule) and for
/// post-run inspection. During the compute phase, access goes through
/// ReadGuard/WriteGuard on a declared link.
template <typename T>
class Local {
  static_assert(detail::is_location_element<T>,
                "Local<T>: T must be cv-unqualified, trivially copyable");

 public:
  explicit Local(rt::Location& l) noexcept : loc_(&l) {}

  /// orwl_scale with the size taken from the type: exactly one T.
  void scale() { loc_->scale(sizeof(T)); }

  /// Size-only scale for graph extraction (no allocation).
  void scale_hint() { loc_->scale_hint(sizeof(T)); }

  /// Host-side reference to the element (init phase / inspection only).
  T& value() {
    return detail::checked_span<T>(loc_->data(), loc_->size(), "Local")[0];
  }
  const T& value() const {
    return detail::checked_span<T>(loc_->data(), loc_->size(), "Local")[0];
  }

  rt::Location& location() const noexcept { return *loc_; }

 private:
  rt::Location* loc_;
};

template <typename T>
class Local<T[]> {
  static_assert(detail::is_location_element<T>,
                "Local<T[]>: T must be cv-unqualified, trivially copyable");

 public:
  explicit Local(rt::Location& l) noexcept : loc_(&l) {}

  /// orwl_scale in elements, not bytes. Under ORWL_HUGEPAGES=1 a buffer
  /// of at least one huge page is backed by MAP_HUGETLB storage when the
  /// host provides it (see topo::kHugePagesEnvVar).
  void scale(std::size_t count) { loc_->scale(count * sizeof(T)); }

  /// Size-only scale for graph extraction (no allocation).
  void scale_hint(std::size_t count) { loc_->scale_hint(count * sizeof(T)); }

  /// Elements recorded by the last scale()/scale_hint().
  std::size_t count() const noexcept { return loc_->size() / sizeof(T); }

  /// Host-side view of the elements (init phase / inspection only;
  /// empty for zero-sized synchronization-only locations).
  std::span<T> span() {
    return detail::checked_span<T>(loc_->data(), loc_->size(), "Local", 0);
  }
  std::span<const T> span() const {
    return detail::checked_span<T>(loc_->data(), loc_->size(), "Local", 0);
  }

  rt::Location& location() const noexcept { return *loc_; }

 private:
  rt::Location* loc_;
};

}  // namespace orwl
