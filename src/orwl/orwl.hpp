// orwl/orwl.hpp — the one header applications include.
//
// The v2 public surface of the reproduction, layered over the rt::
// machinery (Sec. III/IV of the paper):
//
//   typed locations   Local<T> / Local<T[]>         (orwl/typed.hpp)
//   phase-safe guards ReadGuard / WriteGuard over
//                     ReadLink / WriteLink tokens   (orwl/guards.hpp)
//   programs + tasks  orwl::Program / orwl::Task    (orwl/program.hpp)
//   declarative graph orwl::ProgramBuilder          (orwl/builder.hpp)
//
// plus the v1 names applications commonly reach for — options, FIFO
// channels, topology fixtures and detection, the affinity reports —
// re-exported so that `#include "orwl/orwl.hpp"` is all an example, app
// or bench needs (no direct runtime/*.hpp includes outside src/).
#pragma once

#include "affinity/affinity.hpp"
#include "affinity/report.hpp"
#include "orwl/builder.hpp"
#include "orwl/fifo.hpp"
#include "orwl/guards.hpp"
#include "orwl/program.hpp"
#include "orwl/typed.hpp"
#include "runtime/control_plane.hpp"
#include "runtime/fifo.hpp"
#include "runtime/handle.hpp"
#include "runtime/program.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/split.hpp"
#include "support/env.hpp"
#include "topo/detect.hpp"
#include "topo/machines.hpp"
#include "topo/membind.hpp"
#include "topo/serialize.hpp"
#include "treematch/strategies.hpp"

namespace orwl {

// Frequently used v1 names, promoted to the orwl:: namespace. The full
// v1 surface stays reachable under orwl::rt:: (and orwl::topo::,
// orwl::tm::, orwl::aff::) for white-box code.
using rt::AffinityMode;
using rt::DataTransferMode;
using rt::FifoConsumer;
using rt::FifoProducer;
using rt::ProgramOptions;
using rt::ProgramStats;
using rt::split_range;

}  // namespace orwl
