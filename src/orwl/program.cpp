#include "orwl/program.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "dist/registry.hpp"
#include "dist/remote.hpp"

namespace orwl {

/// Client sessions created by remote(), keyed by endpoint so several
/// names on one home share a connection.
struct Program::RemoteState {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<dist::Client>> clients;
};

Program::Program(std::size_t num_tasks, Options opts)
    : rt_(std::make_unique<rt::Program>(num_tasks, opts)),
      remote_(std::make_unique<RemoteState>()),
      links_(num_tasks),
      iterations_(num_tasks, 0),
      init_(num_tasks),
      bodies_(num_tasks) {}

Program::Program(Program&&) noexcept = default;
Program& Program::operator=(Program&&) noexcept = default;
Program::~Program() = default;

void Program::export_location(LocRef r, const std::string& name,
                              dist::Registry& reg) {
  reg.export_location(name, &location(r));
}

void Program::serve_exports(dist::Registry& reg) {
  for (const auto& [ref, name] : declared_exports_) {
    reg.export_location(name, &rt_->location(ref.task, ref.slot));
  }
}

rt::Location& Program::remote(const std::string& url) {
  const dist::Url u = dist::parse_url(url);
  if (u.name.empty()) {
    throw std::invalid_argument("Program::remote: URL \"" + url +
                                "\" names no location (missing /name)");
  }
  const std::string endpoint =
      u.mode == dist::DistMode::Shm
          ? "shm:" + u.shm_base
          : "tcp:" + u.host + ":" + std::to_string(u.port);
  std::lock_guard<std::mutex> lock(remote_->mu);
  auto& client = remote_->clients[endpoint];
  if (client == nullptr) client = dist::Client::connect(u);
  return client->attach(u.name);
}

void Program::set_task_body(TaskBody fn) {
  for (auto& b : bodies_) b = fn;
}

void Program::set_task_body(TaskId id, TaskBody fn) {
  if (id >= bodies_.size()) {
    throw std::out_of_range("set_task_body: bad task id");
  }
  bodies_[id] = std::move(fn);
}

std::size_t Program::iterations_of(TaskId id) const {
  if (id >= iterations_.size()) {
    throw std::out_of_range("iterations_of: bad task id");
  }
  return iterations_[id];
}

rt::Handle& Program::declared_handle(TaskId task, LocRef target,
                                     AccessMode mode,
                                     const std::type_info* type) {
  if (!declarative_) {
    throw std::logic_error(
        "read_link/write_link: imperative program — create links with "
        "Task::read()/Task::write() instead");
  }
  if (task >= links_.size()) {
    throw std::out_of_range("declared_handle: bad task id");
  }
  for (DeclaredLink& l : links_[task]) {
    if (l.target == target && l.mode == mode) {
      if (type != nullptr && l.type != nullptr && *l.type != *type) {
        throw std::logic_error(
            std::string("link lookup: the ") + to_string(mode) +
            " link of task " + std::to_string(task) + " on location (" +
            std::to_string(target.task) + ", " +
            std::to_string(target.slot) + ") was declared with type " +
            l.type->name() + ", requested " + type->name());
      }
      return *l.handle;
    }
  }
  throw std::logic_error(std::string("link lookup: task ") +
                         std::to_string(task) + " declared no " +
                         to_string(mode) + " link on location (" +
                         std::to_string(target.task) + ", " +
                         std::to_string(target.slot) + ")");
}

Program::FifoChannel& Program::channel_of(TaskId task, std::string_view name,
                                          const std::type_info* type,
                                          const char* what) {
  for (auto& ch : fifos_) {
    if (ch->name != name) continue;
    if (type != nullptr && ch->type != nullptr && *ch->type != *type) {
      throw std::logic_error(
          std::string(what) + ": channel \"" + ch->name +
          "\" was declared with item type " + ch->type->name() +
          ", requested " + type->name());
    }
    return *ch;
  }
  throw std::logic_error(std::string(what) + ": task " +
                         std::to_string(task) + " names unknown channel \"" +
                         std::string(name) + "\"");
}

rt::FifoProducer& Program::fifo_producer(TaskId task, std::string_view name,
                                         const std::type_info* type) {
  FifoChannel& ch = channel_of(task, name, type, "fifo_out");
  if (ch.producer != task) {
    throw std::logic_error("fifo_out: task " + std::to_string(task) +
                           " is not the producer of channel \"" + ch.name +
                           "\" (task " + std::to_string(ch.producer) +
                           " declared fifo_out on it)");
  }
  return ch.out;
}

rt::FifoConsumer& Program::fifo_consumer(TaskId task, std::string_view name,
                                         const std::type_info* type) {
  FifoChannel& ch = channel_of(task, name, type, "fifo_in");
  for (auto& c : ch.consumers) {
    if (c->task == task) return c->fifo;
  }
  throw std::logic_error("fifo_in: task " + std::to_string(task) +
                         " declared no fifo_in on channel \"" + ch.name +
                         "\"");
}

bool Program::fifo_participant(TaskId t) const noexcept {
  for (const auto& ch : fifos_) {
    if (ch->producer == t) return true;
    for (const auto& c : ch->consumers) {
      if (c->task == t) return true;
    }
  }
  return false;
}

double Program::reduce_iteration(double value, ReduceOp op) {
  Reducer& r = *red_;
  std::unique_lock lk(r.mu);
  const std::uint64_t generation = r.generation;
  if (r.arrived == 0) {
    // First arriver seeds the accumulator and fixes the generation's
    // combiner — no identity element needed, so Min/Max work over any
    // value range.
    r.acc = value;
    r.op = op;
  } else {
    if (op != r.op) {
      throw std::logic_error(
          "reduce_iteration: tasks disagree on the combiner within one "
          "generation");
    }
    switch (op) {
      case ReduceOp::Sum:
        r.acc += value;
        break;
      case ReduceOp::Min:
        r.acc = std::min(r.acc, value);
        break;
      case ReduceOp::Max:
        r.acc = std::max(r.acc, value);
        break;
    }
  }
  if (++r.arrived == num_tasks()) {
    // Last one in closes the generation. The published value cannot be
    // overwritten under a waiter: the next generation needs all tasks to
    // arrive again, which requires every waiter here to have returned.
    r.published = r.acc;
    r.acc = 0.0;
    r.arrived = 0;
    ++r.generation;
    r.cv.notify_all();
    return r.published;
  }
  r.cv.wait(lk, [&] { return r.generation != generation; });
  return r.published;
}

void Program::for_each_impl(TaskId task, rt::TaskContext& ctx,
                            std::span<const std::uint64_t> seeds,
                            const ForEachBody& body) {
  if (ctx.dry_run()) return;
  StealState& st = *steal_;
  const std::size_t n = num_tasks();
  // Adapt the typed body once per call. Workers run their own copy;
  // lenders run the copy the last arriver parks in StealState (bodies
  // of one collective are functionally identical by contract).
  rt::StealExecutor::ItemFn fn =
      [&body](std::uint64_t item, rt::StealExecutor::WorkerContext& wc) {
        StealContext sc(wc);
        body(item, sc);
      };

  std::unique_lock lk(st.mu);
  if (!st.exec) {
    // First for_each of the program builds the executor: one worker per
    // task, placed on the task's computed PU (affinity_compute) with
    // its deque slots in the task's control shard arena — or round-robin
    // PUs and the default arena while the program is unplaced.
    const topo::Topology& topo = rt_->topology();
    const std::size_t npus = topo.num_pus();
    std::vector<rt::StealExecutor::WorkerSpec> specs(n);
    for (std::size_t t = 0; t < n; ++t) {
      int os = -1;
      if (rt_->have_placement() &&
          t < rt_->placement().compute_pu.size()) {
        os = rt_->placement().compute_pu[t];
      }
      int logical = -1;
      if (os >= 0) {
        if (const topo::Object* pu = topo.pu_by_os_index(os)) {
          logical = static_cast<int>(pu->logical_index);
        }
      }
      if (logical < 0) {
        logical = npus != 0 ? static_cast<int>(t % npus) : 0;
      }
      specs[t].pu = logical;
      specs[t].arena = &rt::Arena::runtime_default();
      if (os >= 0) {
        const int shard = rt_->shard_map().shard_of(os);
        if (shard >= 0) {
          specs[t].arena = &rt_->shard_arena(static_cast<std::size_t>(shard));
        }
      }
    }
    rt::StealExecutor::Config cfg;
    cfg.mode = rt_->steal_mode();
    cfg.spin = rt_->steal_spin();
    st.exec = std::make_unique<rt::StealExecutor>(topo, std::move(specs), cfg);
    // Steal traffic feeds the same measured matrix as lock hand-offs:
    // items flowing across nodes skew it and can trip ORWL_REPLACE
    // (no-op when the replace policy keeps no meter).
    st.exec->set_meter(rt_->comm_meter(), n);
    rt::StealExecutor* ex = st.exec.get();
    rt_->set_steal_stats_source([ex](rt::ProgramStats& ps) {
      const rt::StealExecutor::Stats s = ex->stats();
      ps.steal_executed = s.executed;
      ps.steal_local = s.local_steals;
      ps.steal_remote = s.remote_steals;
      ps.steal_lent = s.lend_executed;
      ps.steal_parks = s.parks;
    });
  }

  // Entry rendezvous: every task seeds its OWN worker deque before any
  // worker starts — with all seeds pre-placed, root==0 during the run
  // can only mean "everything executed", which is what lets run_worker
  // exit without a global barrier.
  const std::uint64_t generation = st.generation;
  for (const std::uint64_t s : seeds) st.exec->seed(task, s);
  if (++st.arrived == n) {
    st.arrived = 0;
    st.session_fn = fn;
    st.exec->begin_session(st.session_fn);
    ++st.generation;
    st.cv.notify_all();
  } else {
    st.cv.wait(lk, [&] { return st.generation != generation; });
  }
  lk.unlock();

  st.exec->run_worker(task, fn);

  // Exit rendezvous: a finished worker may not seed the NEXT collective
  // while a sibling of this one could still sweep (it would execute the
  // new item under the old body). The last one out ends the session so
  // lock-blocked lenders stop referencing session_fn.
  lk.lock();
  const std::uint64_t egen = st.exit_generation;
  if (++st.exited == n) {
    st.exited = 0;
    st.exec->end_session();
    ++st.exit_generation;
    st.cv.notify_all();
  } else {
    st.cv.wait(lk, [&] { return st.exit_generation != egen; });
  }
}

void Program::run() {
  const std::size_t n = bodies_.size();
  for (TaskId t = 0; t < n; ++t) {
    if (!declarative_ && !bodies_[t]) {
      throw std::logic_error("Program::run: task " + std::to_string(t) +
                             " has no body");
    }
    // A declarative task may run body-less only when its declared
    // requests are never granted to anyone (dry-run) or it declared
    // none (barrier-only): otherwise its enqueued tickets — including
    // the ones backing its FIFO-channel endpoints — would sit
    // unacquired forever, stalling every later request on those
    // locations until the deadlock guard fires. Fail fast like v1 did.
    if (declarative_ && !bodies_[t] &&
        (!links_[t].empty() || fifo_participant(t)) && !rt_->dry_run()) {
      throw std::logic_error(
          "Program::run: declarative task " + std::to_string(t) +
          " declared location accesses but has no body — its requests "
          "would never be acquired");
    }
    const TaskBody user = bodies_[t];
    const TaskBody prologue = init_[t];
    if (declarative_) {
      // Declared links already carry the whole init phase: run the
      // optional init hook, pass the barrier, then hand the task its
      // post-schedule body. Dry-run programs skip both — the builder
      // only scale_hint'ed their locations, so an init hook would find
      // no buffers to prime (and graph extraction no longer needs to
      // run at all).
      rt_->set_task_body(t, [this, user, prologue](rt::TaskContext& ctx) {
        Task task(*this, ctx);
        if (prologue && !ctx.dry_run()) prologue(task);
        ctx.schedule();
        if (ctx.dry_run()) return;
        if (user) user(task);
      });
    } else {
      rt_->set_task_body(t, [this, user](rt::TaskContext& ctx) {
        Task task(*this, ctx);
        user(task);
      });
    }
  }
  rt_->run();
}

void Task::schedule() {
  if (prog_->declarative()) {
    throw std::logic_error(
        "Task::schedule: declarative bodies start after the schedule "
        "barrier — only imperative bodies call schedule()");
  }
  ctx_->schedule();
}

}  // namespace orwl
