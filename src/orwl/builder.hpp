// The declarative task-graph builder of the v2 facade.
//
// "The ORWL programming model exposes all the required pieces of
// information: the tasks, the amount of data they share or exchange (i.e
// the location) and their connectivity" (Sec. IV-A) — the builder lets a
// program state those pieces up front instead of discovering them by
// running the init phase. Each TaskSpec declares what its task owns
// (typed locations), which locations it reads/writes (with FIFO
// priorities), how many iterations it runs, and optionally its init and
// compute bodies. build() materializes a declarative orwl::Program whose
// task-location graph is registered with the runtime immediately:
// dependency_get() / affinity_compute() work before run(), so extracting
// the communication matrix no longer needs the v1 dry-run double
// execution.
//
//   ProgramBuilder b(kTasks);
//   for (TaskId t = 0; t < kTasks; ++t) {
//     auto& spec = b.task(t);
//     spec.owns<double>().writes<double>(loc(t), t);
//     if (t > 0) spec.reads<double>(loc(t - 1), t);
//   }
//   b.body([](Task& task) { ... guards on task.write_link<double>(...) });
//   Program p = b.build();
//   p.dependency_get();          // matrix available: nothing has run
//   p.run();
#pragma once

#include <cstdint>
#include <string>
#include <typeinfo>
#include <vector>

#include "orwl/program.hpp"

namespace orwl {

/// Seeds of a declared for_each, computed on the task's own thread
/// after the schedule barrier (e.g. this task's share of a frontier).
using SeedsFn = std::function<std::vector<std::uint64_t>(Task&)>;

/// Declaration record of one task; obtained from ProgramBuilder::task().
/// All declarators return *this for chaining.
class TaskSpec {
 public:
  /// Declare that this task owns location `slot` holding a single T
  /// (orwl_scale happens at build() with sizeof(T)).
  template <typename T>
    requires(!std::is_array_v<T>)
  TaskSpec& owns(std::size_t slot = 0) {
    return own_bytes(slot, sizeof(T));
  }

  /// Declare an owned array location: `count` elements of T.
  ///   spec.owns<double[]>(1024);
  template <typename T>
    requires(std::is_unbounded_array_v<T>)
  TaskSpec& owns(std::size_t count, std::size_t slot = 0) {
    return own_bytes(slot, count * sizeof(std::remove_extent_t<T>));
  }

  /// Declare a write (exclusive) link to `target`. The element type is
  /// checked when the body looks the link up; omit it (T = void) for
  /// untyped blob locations. Default priority 0: writers first is the
  /// common same-iteration pattern.
  template <typename T = void>
  TaskSpec& writes(LocRef target, std::uint64_t priority = 0) {
    return access(target, AccessMode::Write, priority, element_type<T>());
  }

  /// Declare a read (shared) link to `target`. Default priority 1 (after
  /// the owner's write).
  template <typename T = void>
  TaskSpec& reads(LocRef target, std::uint64_t priority = 1) {
    return access(target, AccessMode::Read, priority, element_type<T>());
  }

  /// Declare this task the producer of FIFO channel `name` (Sec. V-C):
  /// a ring of `depth` buffers of one T each, carved out of this task's
  /// slot space at build() time. The body fetches the endpoint with
  /// Task::fifo_out<T>(name). The producer may run depth-1 items ahead
  /// of the consumers.
  template <typename T>
    requires(!std::is_array_v<T> && !std::is_void_v<T>)
  TaskSpec& fifo_out(std::string name, std::size_t depth = 2) {
    return fifo_out_bytes(std::move(name), sizeof(T), depth,
                          element_type<T>());
  }

  /// Array-item channel: each pushed item is `count` elements of T.
  ///   spec.fifo_out<Pixel[]>("frames", width * height);
  template <typename T>
    requires(std::is_unbounded_array_v<T>)
  TaskSpec& fifo_out(std::string name, std::size_t count,
                     std::size_t depth = 2) {
    return fifo_out_bytes(std::move(name),
                          count * sizeof(std::remove_extent_t<T>), depth,
                          element_type<T>());
  }

  /// Untyped channel: each item is `bytes` raw bytes (Task::fifo_out<>
  /// yields the byte view).
  TaskSpec& fifo_out_bytes(std::string name, std::size_t bytes,
                           std::size_t depth = 2,
                           const std::type_info* type = nullptr) {
    fifo_outs_.push_back(FifoOutDecl{std::move(name), bytes, depth, type});
    return *this;
  }

  /// Declare this task a consumer of channel `name` (declared by its
  /// producer's fifo_out). Every consumer pops every item: with several
  /// consumers the channel broadcasts (the readers at each ring slot's
  /// FIFO head share the grant). The element type is checked against the
  /// producer's declaration at build().
  template <typename T = void>
  TaskSpec& fifo_in(std::string name) {
    fifo_ins_.push_back(FifoInDecl{std::move(name), element_type<T>()});
    return *this;
  }

  /// Declare the task's iteration count (Task::iterations /
  /// run_iterations). Metadata for the body; links re-insert themselves
  /// each iteration regardless.
  TaskSpec& iterates(std::size_t n) {
    iterations_ = n;
    return *this;
  }

  /// Init-phase hook: runs on the task's thread *before* the schedule
  /// barrier (e.g. to prime owned buffers with initial values).
  TaskSpec& init(TaskBody fn) {
    init_ = std::move(fn);
    return *this;
  }

  /// Compute body: runs after the schedule barrier (skipped in dry-run
  /// programs). Overrides a ProgramBuilder::body SPMD body for this task.
  TaskSpec& body(TaskBody fn) {
    body_ = std::move(fn);
    return *this;
  }

  /// Declarative dynamic work: build() synthesizes a body that computes
  /// this task's seeds and drives the Task::for_each collective with
  /// `item` under the steal executor. Overrides body()/SPMD for this
  /// task; every task of the program must then declare a for_each (the
  /// collective blocks for all of them), and all `item` bodies must be
  /// functionally identical.
  TaskSpec& for_each(SeedsFn seeds, ForEachBody item) {
    for_each_seeds_ = std::move(seeds);
    for_each_item_ = std::move(item);
    return *this;
  }

 private:
  friend class ProgramBuilder;

  struct OwnDecl {
    std::size_t slot;
    std::size_t bytes;
  };
  struct AccessDecl {
    LocRef target;
    AccessMode mode;
    std::uint64_t priority;
    const std::type_info* type;  // null = untyped declaration
  };
  struct FifoOutDecl {
    std::string name;
    std::size_t bytes;
    std::size_t depth;
    const std::type_info* type;  // item type; null = untyped channel
  };
  struct FifoInDecl {
    std::string name;
    const std::type_info* type;  // null = untyped lookup (no check)
  };

  /// The full declared type (arrays included: `double[]` != `double`,
  /// so the body's link lookup also checks the shape); void = untyped.
  template <typename T>
  static const std::type_info* element_type() noexcept {
    if constexpr (std::is_void_v<T>) {
      return nullptr;
    } else {
      return &typeid(T);
    }
  }

  TaskSpec& own_bytes(std::size_t slot, std::size_t bytes) {
    owns_.push_back(OwnDecl{slot, bytes});
    return *this;
  }

  TaskSpec& access(LocRef target, AccessMode mode, std::uint64_t priority,
                   const std::type_info* type) {
    accesses_.push_back(AccessDecl{target, mode, priority, type});
    return *this;
  }

  std::vector<OwnDecl> owns_;
  std::vector<AccessDecl> accesses_;
  std::vector<FifoOutDecl> fifo_outs_;
  std::vector<FifoInDecl> fifo_ins_;
  std::size_t iterations_ = 0;
  TaskBody init_;
  TaskBody body_;
  SeedsFn for_each_seeds_;
  ForEachBody for_each_item_;
};

class ProgramBuilder {
 public:
  /// Builder for `num_tasks` tasks. opts.locations_per_task is derived
  /// from the owns() declarations (their maximum slot + 1); the other
  /// options pass through unchanged. With opts.dry_run the built program
  /// records sizes without allocating (scale_hint), for graph-only use.
  explicit ProgramBuilder(std::size_t num_tasks, Options opts = {});

  /// The declaration record of task `t`.
  /// \throws std::out_of_range for a bad task id.
  TaskSpec& task(TaskId t);

  /// SPMD body used for every task without a TaskSpec::body override.
  ProgramBuilder& body(TaskBody fn);

  /// Declare that the location at `r` is exported for remote attach
  /// under `name`. The built program registers all declared exports with
  /// a dist::Registry via Program::serve_exports(reg); remote processes
  /// then attach through "orwl://host:port/name" and their guards join
  /// the location's FIFO next to the local tasks'.
  /// \throws std::invalid_argument on an empty name or a duplicate.
  ProgramBuilder& export_location(LocRef r, std::string name);

  std::size_t num_tasks() const noexcept { return specs_.size(); }

  /// Materialize the declarative program: create the runtime, scale the
  /// owned locations, and pre-register every declared access so the
  /// graph exists before anything runs. The builder can build() once.
  /// \throws std::logic_error on re-build; std::out_of_range for access
  ///         targets outside the declared task/slot space.
  Program build();

 private:
  Options opts_;
  std::vector<TaskSpec> specs_;
  std::vector<std::pair<LocRef, std::string>> exports_;
  TaskBody spmd_body_;
  bool built_ = false;
};

}  // namespace orwl
