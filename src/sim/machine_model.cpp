#include "sim/machine_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "topo/machines.hpp"

namespace orwl::sim {

const char* to_string(OsPolicy p) noexcept {
  switch (p) {
    case OsPolicy::NumaPack: return "numa-pack";
    case OsPolicy::EvenSpread: return "even-spread";
  }
  return "?";
}

MachineModel MachineModel::smp12e5() {
  MachineModel m;
  m.name = "SMP12E5";
  m.topology = topo::make_smp12e5();
  m.clock_ghz = 2.6;
  m.dram_gbps_per_node = 13.0;
  m.interconnect_gbps = 6.5;  // NUMAlink6 (Table I)
  m.os_policy = OsPolicy::NumaPack;
  m.dense_flops_per_cycle = 4.6;  // Sandy Bridge AVX; ~95 GF per socket
  return m;
}

MachineModel restricted(const MachineModel& m, int nodes) {
  if (nodes <= 0) {
    throw std::invalid_argument("restricted: nodes must be positive");
  }
  const int nd = m.topology.depth_of_type(topo::ObjType::NumaNode);
  const auto numa = m.topology.at_depth(nd);
  const int have = static_cast<int>(numa.size());
  const int use = std::min(nodes, have);
  const int cores_per_node =
      static_cast<int>(m.topology.num_cores()) / have;
  const int pus_per_core = static_cast<int>(m.topology.num_pus() /
                                            m.topology.num_cores());
  // Topology is move-only; copy the cost parameters field by field and
  // rebuild the (smaller) tree.
  MachineModel out;
  out.name = m.name + "-" + std::to_string(use) + "nodes";
  out.topology =
      topo::make_numa(use, cores_per_node, pus_per_core,
                      m.topology.cache_size(topo::ObjType::L3));
  out.clock_ghz = m.clock_ghz;
  out.miss_stall_cycles = m.miss_stall_cycles;
  out.l3_hit_cycles = m.l3_hit_cycles;
  out.same_core_hit_cycles = m.same_core_hit_cycles;
  out.dram_gbps_per_node = m.dram_gbps_per_node;
  out.interconnect_gbps = m.interconnect_gbps;
  out.remote_dram_factor = m.remote_dram_factor;
  out.ctx_switch_ns = m.ctx_switch_ns;
  out.smt_throughput_factor = m.smt_throughput_factor;
  out.os_policy = m.os_policy;
  out.dense_flops_per_cycle = m.dense_flops_per_cycle;
  return out;
}

MachineModel MachineModel::smp20e7() {
  MachineModel m;
  m.name = "SMP20E7";
  m.topology = topo::make_smp20e7();
  m.clock_ghz = 2.66;
  m.dram_gbps_per_node = 10.0;     // Westmere-EX, older memory
  m.interconnect_gbps = 15.0;      // NUMAlink5 (Table I)
  m.os_policy = OsPolicy::EvenSpread;
  m.dense_flops_per_cycle = 3.1;   // SSE-class; ~65 GF per socket
  return m;
}

}  // namespace orwl::sim
