// Performance models of the paper's two testbeds (Table I).
//
// The reproduction does not have access to the PlaFRIM machines; this
// module models them: the synthetic topology trees of topo/machines.hpp
// plus the cost parameters the analytic simulator needs (clock, cache
// penalties, per-node DRAM bandwidth, NUMAlink bandwidth, the OS
// scheduler family of the installed kernel). Parameter values are derived
// from Table I and from public microarchitecture data for the two Xeons;
// the paper-facing claims we reproduce are *shapes*, not absolute
// numbers (see EXPERIMENTS.md).
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace orwl::sim {

/// The scheduling family of the machine's Linux kernel, as observed by
/// the paper (Sec. VI-B1): "the system of the SMP12E5 (with Linux 3.10)
/// tries to reduce the number of used NUMA nodes by even using the
/// hyperthreads, while the scheduler of the SMP20E7 (Linux 2.6.32)
/// spreads threads evenly over the 20 NUMA nodes".
enum class OsPolicy {
  NumaPack,    ///< pack threads onto few nodes, hyperthreads first
  EvenSpread,  ///< spread threads round-robin over all NUMA nodes
};

const char* to_string(OsPolicy p) noexcept;

struct MachineModel {
  std::string name;
  topo::Topology topology;

  double clock_ghz = 2.6;

  /// "each cache miss leads to a loss of about 10 to 14 cycles" (Sec.
  /// VI-B1, Table II discussion).
  double miss_stall_cycles = 12.0;

  /// Per-line cost of communication served by the shared L3 (pipelined
  /// transfer, cheaper than a DRAM miss but not free).
  double l3_hit_cycles = 14.0;

  /// Cost of a line exchanged between hyperthread siblings (L1/L2 hit).
  double same_core_hit_cycles = 6.0;

  /// Local DRAM bandwidth of one NUMA node (GB/s).
  double dram_gbps_per_node = 13.0;

  /// NUMAlink bandwidth per node link (GB/s) — Table I.
  double interconnect_gbps = 6.5;

  /// Stall multiplier for lines served from a remote node's DRAM.
  double remote_dram_factor = 1.6;

  /// "On modern Linux systems a context switch has a cost of about
  /// 100 ns" (Sec. VI-B1).
  double ctx_switch_ns = 100.0;

  /// Per-thread throughput factor when both hyperthread siblings of a
  /// core run compute threads.
  double smt_throughput_factor = 0.58;

  OsPolicy os_policy = OsPolicy::NumaPack;

  /// Peak DGEMM-class flops per cycle per core (AVX FMA on E5, SSE on E7;
  /// calibrated against the paper's single-socket MKL points).
  double dense_flops_per_cycle = 4.6;

  /// SMP12E5: 12 NUMA x 8 cores x 2 HT, E5-4620 2.6 GHz, NUMAlink6,
  /// Linux 3.10 (packing scheduler).
  static MachineModel smp12e5();

  /// SMP20E7: 20 NUMA x 8 cores, E7-8837 2.66 GHz, NUMAlink5 15 GB/s,
  /// Linux 2.6.32 (spreading scheduler).
  static MachineModel smp20e7();
};

/// The same machine restricted to its first `nodes` NUMA nodes — Fig. 6
/// runs the video application "in a hardware restricted environment ...
/// only 4 sockets (30 cores)".
MachineModel restricted(const MachineModel& m, int nodes);

}  // namespace orwl::sim
