#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"
#include "treematch/strategies.hpp"

namespace orwl::sim {

const char* to_string(ExecModel m) noexcept {
  switch (m) {
    case ExecModel::OrwlPipeline: return "orwl-pipeline";
    case ExecModel::ForkJoin: return "fork-join";
    case ExecModel::Sequential: return "sequential";
  }
  return "?";
}

namespace {

constexpr double kLine = 64.0;        // cache line bytes
constexpr double kColdMissFrac = 0.02;
constexpr double kControlLoad = 0.3;  // CPU load of one control thread

/// Fraction of wakeups that migrate an unbound thread: lock-driven
/// (pipeline) execution churns the runqueues far more than fork-join
/// workers that block once per barrier.
double wakeup_migration_rate(ExecModel exec) {
  switch (exec) {
    case ExecModel::OrwlPipeline: return 0.15;
    case ExecModel::ForkJoin: return 0.002;
    case ExecModel::Sequential: return 0.0;
  }
  return 0.0;
}

/// Context switches per sync event. Bound threads wake on a warm core and
/// often continue without a full switch-out.
double ctx_per_sync(ExecModel exec, bool bound) {
  switch (exec) {
    case ExecModel::OrwlPipeline: return bound ? 0.9 : 1.0;
    case ExecModel::ForkJoin: return bound ? 0.002 : 0.008;
    case ExecModel::Sequential: return 0.001;
  }
  return 0.0;
}

struct ThreadView {
  int pu = -1;          // logical PU index on the synthetic topology
  int core = -1;        // core logical index
  int node = -1;        // NUMA node logical index
  double load = 1.0;    // 1.0 compute, kControlLoad control
};

struct MachineView {
  const topo::Topology* topo;
  int num_nodes;
  std::vector<int> pu_core;   // per logical PU
  std::vector<int> pu_node;

  explicit MachineView(const topo::Topology& t) : topo(&t) {
    const int nd = t.depth_of_type(topo::ObjType::NumaNode);
    num_nodes = nd >= 0 ? static_cast<int>(t.at_depth(nd).size()) : 1;
    pu_core.resize(t.num_pus());
    pu_node.resize(t.num_pus());
    for (std::size_t p = 0; p < t.num_pus(); ++p) {
      const topo::Object* pu = t.pu_at(static_cast<int>(p));
      const topo::Object* core = pu->ancestor_of_type(topo::ObjType::Core);
      pu_core[p] = core != nullptr ? core->logical_index
                                   : static_cast<int>(p);
      const topo::Object* node =
          pu->ancestor_of_type(topo::ObjType::NumaNode);
      pu_node[p] = node != nullptr ? node->logical_index : 0;
    }
  }

  int logical_pu_of_os(int os) const {
    const topo::Object* pu = topo->pu_by_os_index(os);
    return pu != nullptr ? pu->logical_index : -1;
  }
};

/// PU visit order used by the two OS scheduler families.
std::vector<int> os_pu_order(const MachineView& mv, OsPolicy policy) {
  const std::size_t n = mv.topo->num_pus();
  std::vector<int> order(n);
  if (policy == OsPolicy::NumaPack) {
    // Compact: PU 0, 1, 2, ... — siblings first, fewest nodes.
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
    return order;
  }
  // EvenSpread: round-robin over nodes.
  const tm::Placement p = tm::place_strategy(
      tm::Strategy::Scatter, *mv.topo, n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = mv.logical_pu_of_os(p.compute_pu[i]);
  }
  return order;
}

}  // namespace

SimResult simulate(const MachineModel& machine, const Workload& w,
                   const BindSpec& bind) {
  const std::size_t T = w.num_threads;
  if (T == 0) throw std::invalid_argument("simulate: empty workload");
  auto check = [&](const std::vector<double>& v, const char* what) {
    if (v.size() != T) {
      throw std::invalid_argument(std::string("simulate: ") + what +
                                  " size mismatch");
    }
  };
  check(w.flops, "flops");
  check(w.stream_bytes, "stream_bytes");
  check(w.shared_bytes, "shared_bytes");
  check(w.wset_bytes, "wset_bytes");
  if (w.comm.order() != T) {
    throw std::invalid_argument("simulate: comm matrix order mismatch");
  }
  const bool bound = bind.kind == BindSpec::Kind::Bound;
  if (bound && bind.placement.compute_pu.size() < T) {
    throw std::invalid_argument("simulate: bound placement too small");
  }

  const MachineView mv(machine.topology);
  const std::size_t C = w.control_threads;
  const std::size_t total = T + C;
  const double l3_bytes =
      static_cast<double>(machine.topology.cache_size(topo::ObjType::L3));

  support::SplitMix64 rng(bind.seed);
  const std::size_t epochs = bound ? 1 : 20;
  const double iters_per_epoch = w.iterations / static_cast<double>(epochs);

  // ---- initial / per-epoch thread assignment ----------------------------
  std::vector<ThreadView> threads(total);
  for (std::size_t t = T; t < total; ++t) threads[t].load = kControlLoad;

  std::vector<int> os_order = os_pu_order(mv, machine.os_policy);

  auto assign_os = [&](std::vector<ThreadView>& tv) {
    for (std::size_t t = 0; t < total; ++t) {
      tv[t].pu = os_order[t % os_order.size()];
    }
  };
  auto assign_bound = [&](std::vector<ThreadView>& tv) {
    for (std::size_t t = 0; t < T; ++t) {
      const int pu = mv.logical_pu_of_os(bind.placement.compute_pu[t]);
      if (pu < 0) {
        throw std::invalid_argument("simulate: bound PU not in topology");
      }
      tv[t].pu = pu;
    }
    for (std::size_t c = 0; c < C; ++c) {
      const int os = c < bind.placement.control_pu.size()
                         ? bind.placement.control_pu[c]
                         : -1;
      if (os >= 0) {
        tv[T + c].pu = mv.logical_pu_of_os(os);
      } else {
        // Unmanaged control threads: the OS parks them on the busy
        // compute PUs, stealing cycles there.
        tv[T + c].pu = tv[c % T].pu;
      }
    }
  };

  if (bound) {
    assign_bound(threads);
  } else {
    assign_os(threads);
  }
  auto refresh_domains = [&](std::vector<ThreadView>& tv) {
    for (auto& t : tv) {
      t.core = mv.pu_core[static_cast<std::size_t>(t.pu)];
      t.node = mv.pu_node[static_cast<std::size_t>(t.pu)];
    }
  };
  refresh_domains(threads);

  // First-touch homes (memory stays where the first epoch ran).
  std::vector<int> home_node(total);
  for (std::size_t t = 0; t < total; ++t) home_node[t] = threads[t].node;
  const int shared_home = threads[0].node;

  // ---- accumulation over epochs -----------------------------------------
  Counters counters;
  double seconds = 0;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (!bound && epoch > 0) {
      // Scheduler jitter: a fraction of threads moves. The packing
      // scheduler (Linux 3.10) keeps rebalanced threads inside the packed
      // region — hyperthread siblings included — while the spreading
      // scheduler (2.6.32) rebalances across the whole machine.
      const std::size_t jitter_span =
          machine.os_policy == OsPolicy::NumaPack
              ? std::min(os_order.size(), total + total / 4)
              : os_order.size();
      std::vector<ThreadView> next = threads;
      for (std::size_t t = 0; t < total; ++t) {
        if (rng.uniform() < 0.12) {
          next[t].pu = os_order[rng.below(
              static_cast<std::uint64_t>(jitter_span))];
        }
      }
      refresh_domains(next);
      for (std::size_t t = 0; t < total; ++t) {
        if (next[t].pu != threads[t].pu) counters.cpu_migrations += 1;
      }
      threads = std::move(next);
    }

    // -- core/PU occupancy -> per-thread compute throughput --------------
    std::vector<double> pu_load(machine.topology.num_pus(), 0.0);
    std::vector<double> core_load(machine.topology.num_cores(), 0.0);
    for (const auto& t : threads) {
      pu_load[static_cast<std::size_t>(t.pu)] += t.load;
      core_load[static_cast<std::size_t>(t.core)] += t.load;
    }

    // -- cache-domain working sets ----------------------------------------
    std::vector<double> node_wset(static_cast<std::size_t>(mv.num_nodes),
                                  0.0);
    for (std::size_t t = 0; t < T; ++t) {
      node_wset[static_cast<std::size_t>(threads[t].node)] +=
          w.wset_bytes[t];
    }
    auto miss_frac_of_node = [&](int node) {
      const double ws = node_wset[static_cast<std::size_t>(node)];
      if (l3_bytes <= 0 || ws <= 0) return kColdMissFrac;
      if (ws <= l3_bytes) return kColdMissFrac;
      return kColdMissFrac + (1.0 - kColdMissFrac) * (1.0 - l3_bytes / ws);
    };

    // -- per-thread cycles and per-node bandwidth demand -------------------
    std::vector<double> cycles(T, 0.0);
    std::vector<double> node_dram(static_cast<std::size_t>(mv.num_nodes),
                                  0.0);
    std::vector<double> node_link(static_cast<std::size_t>(mv.num_nodes),
                                  0.0);
    double epoch_misses = 0;
    double epoch_stall_cycles = 0;

    for (std::size_t t = 0; t < T; ++t) {
      const ThreadView& tv = threads[t];
      const double mf = miss_frac_of_node(tv.node);

      // Compute throughput under PU/core sharing. The SMT penalty scales
      // with the load of the hyperthread sibling: a compute thread next
      // to another compute thread pays the full factor, a compute thread
      // next to a light control thread (the paper's preferred layout)
      // pays only a fraction of it.
      const double my_pu_load =
          std::max(1.0, pu_load[static_cast<std::size_t>(tv.pu)]);
      const double sibling_load =
          core_load[static_cast<std::size_t>(tv.core)] -
          pu_load[static_cast<std::size_t>(tv.pu)];
      const double smt_factor =
          1.0 - (1.0 - machine.smt_throughput_factor) *
                    std::min(1.0, std::max(0.0, sibling_load));
      const double share = (1.0 / my_pu_load) * smt_factor;
      const double fpc =
          std::min(w.flops_per_cycle, machine.dense_flops_per_cycle) *
          share;
      cycles[t] += w.flops[t] / std::max(fpc, 1e-9);

      // Private streams: served by the home node's DRAM; remote when the
      // thread migrated off its first-touch node. A stable (bound)
      // placement keeps the hardware prefetchers and private caches
      // effective; scheduler churn defeats them and re-fetches lines.
      // A single busy thread is rarely rebalanced; the churn penalty
      // ramps up with the thread count.
      const double churn =
          0.5 * std::min(1.0, static_cast<double>(total - 1) / 8.0);
      const double stability = bound ? 0.6 : 1.0 + churn;
      const double priv_lines =
          w.stream_bytes[t] * mf * stability / kLine;
      const bool remote_home = tv.node != home_node[t];
      double stall = priv_lines * machine.miss_stall_cycles *
                     (remote_home ? machine.remote_dram_factor : 1.0);
      epoch_misses += priv_lines;
      node_dram[static_cast<std::size_t>(home_node[t])] +=
          w.stream_bytes[t] * mf;
      if (remote_home) {
        node_link[static_cast<std::size_t>(tv.node)] +=
            w.stream_bytes[t] * mf;
      }

      // Shared-region streams (e.g. the full B matrix in the MKL-style
      // GEMM): always served by the shared home node.
      if (w.shared_bytes[t] > 0) {
        const bool remote = tv.node != shared_home;
        const double lines = w.shared_bytes[t] * (remote ? 1.0 : mf) / kLine;
        stall += lines * machine.miss_stall_cycles *
                 (remote ? machine.remote_dram_factor : 1.0);
        epoch_misses += lines;
        node_dram[static_cast<std::size_t>(shared_home)] +=
            w.shared_bytes[t] * (remote ? 1.0 : mf);
        if (remote) {
          node_link[static_cast<std::size_t>(tv.node)] += w.shared_bytes[t];
        }
      }

      cycles[t] += stall;
      epoch_stall_cycles += stall;
    }

    // Communication edges: service level depends on the placement.
    for (std::size_t i = 0; i < T; ++i) {
      for (std::size_t j = i + 1; j < T; ++j) {
        const double bytes = w.comm.at(i, j);
        if (bytes <= 0) continue;
        const ThreadView& a = threads[i];
        const ThreadView& b = threads[j];
        const double lines = bytes / kLine;
        double transfer_cycles = 0;  // pipelined moves, not stalls
        double miss_stalls = 0;      // miss-penalty cycles (the counter)
        if (a.core == b.core) {
          transfer_cycles = lines * machine.same_core_hit_cycles;
        } else if (a.node == b.node) {
          // Producer-consumer transfers through a shared L3 mostly hit:
          // the lines were written there moments earlier, regardless of
          // the total working set.
          const double mf = std::min(miss_frac_of_node(a.node), 0.15);
          transfer_cycles = lines * machine.l3_hit_cycles;
          miss_stalls = lines * mf * machine.miss_stall_cycles;
          epoch_misses += lines * mf;
        } else {
          // Cross-NUMA: every line misses the consumer's L3 and crosses
          // the interconnect.
          miss_stalls = lines * machine.miss_stall_cycles *
                        machine.remote_dram_factor;
          epoch_misses += lines;
          node_link[static_cast<std::size_t>(a.node)] += bytes / 2;
          node_link[static_cast<std::size_t>(b.node)] += bytes / 2;
        }
        // Charge both endpoints half of the work; only miss penalties
        // feed the stalled-cycles counter (that is what the paper's
        // front-end stall counter tracks).
        cycles[i] += (transfer_cycles + miss_stalls) / 2;
        cycles[j] += (transfer_cycles + miss_stalls) / 2;
        epoch_stall_cycles += miss_stalls;
      }
    }

    // -- compose one iteration's wall time ---------------------------------
    const double hz = machine.clock_ghz * 1e9;
    double cpu_s = 0;
    double total_cycles = 0;
    for (std::size_t t = 0; t < T; ++t) {
      cpu_s = std::max(cpu_s, cycles[t] / hz);
      total_cycles += cycles[t];
    }
    double dram_s = 0;
    double link_s = 0;
    for (int n = 0; n < mv.num_nodes; ++n) {
      dram_s = std::max(dram_s, node_dram[static_cast<std::size_t>(n)] /
                                    (machine.dram_gbps_per_node * 1e9));
      link_s = std::max(link_s, node_link[static_cast<std::size_t>(n)] /
                                    (machine.interconnect_gbps * 1e9));
    }

    double iter_s = 0;
    switch (w.exec) {
      case ExecModel::OrwlPipeline:
        // Decentralized execution overlaps compute, local memory and
        // interconnect traffic; the slowest resource dominates.
        iter_s = std::max({cpu_s, dram_s, link_s});
        break;
      case ExecModel::ForkJoin: {
        const double par = w.effective_parallelism > 0
                               ? std::min<double>(w.effective_parallelism,
                                                  static_cast<double>(T))
                               : static_cast<double>(T);
        // Limited wavefront/Amdahl concurrency + barriers; memory and
        // link traffic overlap only partially with the serialized stages.
        const double cpu_fj = (total_cycles / hz) / std::max(par, 1.0);
        const double barrier_s = w.barriers_per_iter *
                                 std::log2(static_cast<double>(T) + 1) *
                                 300e-9;
        const double exposed = 1.0 - std::clamp(w.memory_overlap, 0.0, 1.0);
        iter_s = std::max(cpu_fj, cpu_s) + exposed * (dram_s + link_s) +
                 barrier_s;
        break;
      }
      case ExecModel::Sequential:
        // One thread: out-of-order execution overlaps compute with the
        // memory streams, same bottleneck composition as the pipeline.
        iter_s = std::max({total_cycles / hz, dram_s, link_s});
        break;
    }
    seconds += iter_s * iters_per_epoch;

    counters.l3_misses += epoch_misses * iters_per_epoch;
    counters.stalled_cycles += epoch_stall_cycles * iters_per_epoch;

    // -- context switches and wakeup migrations ----------------------------
    const double sync_events =
        iters_per_epoch * static_cast<double>(T) *
        w.sync_events_per_thread_iter;
    counters.context_switches += sync_events * ctx_per_sync(w.exec, bound);
    // Control threads wake per hand-off too.
    counters.context_switches +=
        iters_per_epoch * static_cast<double>(C) * 2.0;
    if (!bound) {
      counters.cpu_migrations +=
          sync_events * wakeup_migration_rate(w.exec);
    }
  }

  // Context-switch time is real but tiny ("negligible compared to the
  // overall runtime" — Sec. VI-B1); charge it anyway.
  seconds += counters.context_switches * machine.ctx_switch_ns * 1e-9 /
             std::max<double>(1.0, static_cast<double>(T));

  SimResult result;
  result.seconds = seconds;
  result.counters = counters;
  for (std::size_t t = 0; t < T; ++t) {
    result.total_flops += w.flops[t] * w.iterations;
  }
  return result;
}

}  // namespace orwl::sim
