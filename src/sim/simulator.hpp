// The analytic execution simulator.
//
// Given a machine model, a workload description (communication matrix +
// per-thread compute/memory characteristics, extracted from the real ORWL
// programs) and a placement scenario, the simulator derives execution
// time and the four hardware/software counters the paper reports in
// Tables II-IV: L3 misses, stalled cycles, context switches and CPU
// migrations.
//
// Modeling principles (see DESIGN.md §6):
//  * L3 misses come from capacity (working set vs. the shared L3 of each
//    domain) plus coherence/transfer traffic whose service level depends
//    on where the communicating threads sit (same core / same L3 /
//    cross-NUMA) — so the *placement* changes the counters only through
//    this geometry, never through per-scenario constants.
//  * Stalled cycles = misses x miss penalty (the paper observes 10-14
//    cycles per miss).
//  * Per-iteration time is a bottleneck (roofline) composition of CPU
//    cycles, per-node DRAM bandwidth and per-node interconnect bandwidth;
//    pipeline execution overlaps them, fork-join pays barriers and
//    limited wavefront parallelism.
//  * The OS-scheduled scenarios sample epoch-wise placements following
//    the machine's scheduler family (NumaPack / EvenSpread) with seeded
//    jitter; migrations off the first-touch node turn private streams
//    into remote traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_model.hpp"
#include "treematch/comm_matrix.hpp"
#include "treematch/treematch.hpp"

namespace orwl::sim {

enum class ExecModel {
  OrwlPipeline,  ///< decentralized, lock-driven, overlapping
  ForkJoin,      ///< parallel regions with barriers (OpenMP/MKL shape)
  Sequential,
};

const char* to_string(ExecModel m) noexcept;

struct Workload {
  std::string name;
  std::size_t num_threads = 0;

  /// Bytes exchanged between thread pairs per iteration (from
  /// aff::comm_matrix_from_graph of the real program).
  tm::CommMatrix comm;

  std::vector<double> flops;         ///< per thread per iteration
  std::vector<double> stream_bytes;  ///< private streaming traffic/iter
  std::vector<double> shared_bytes;  ///< traffic to a shared region
                                     ///< first-touched on thread 0's node
  std::vector<double> wset_bytes;    ///< resident working set per thread

  double flops_per_cycle = 4.0;  ///< kernel roof per core (<= machine's)
  double iterations = 1.0;
  ExecModel exec = ExecModel::OrwlPipeline;

  /// Lock acquire+release (or barrier) events per thread per iteration;
  /// drives context switches.
  double sync_events_per_thread_iter = 4.0;

  /// Barriers per iteration (fork-join only).
  double barriers_per_iter = 1.0;

  /// Effective concurrency of a fork-join iteration (wavefront/Amdahl
  /// limit); defaults to num_threads when <= 0.
  double effective_parallelism = 0.0;

  /// Fraction of memory/interconnect time hidden under compute in
  /// fork-join execution (dense kernels prefetch well, barrier-ridden
  /// stencils do not). Pipeline execution always overlaps fully.
  double memory_overlap = 0.3;

  std::size_t control_threads = 0;
};

struct BindSpec {
  enum class Kind { Bound, OsScheduled };
  Kind kind = Kind::OsScheduled;
  tm::Placement placement;  ///< used when kind == Bound
  std::uint64_t seed = 42;

  static BindSpec bound(tm::Placement p) {
    BindSpec b;
    b.kind = Kind::Bound;
    b.placement = std::move(p);
    return b;
  }
  static BindSpec os_scheduled(std::uint64_t seed = 42) {
    BindSpec b;
    b.kind = Kind::OsScheduled;
    b.seed = seed;
    return b;
  }
};

/// The counters of Tables II-IV.
struct Counters {
  double l3_misses = 0;
  double stalled_cycles = 0;
  double context_switches = 0;
  double cpu_migrations = 0;
};

struct SimResult {
  double seconds = 0;
  Counters counters;
  double total_flops = 0;

  double gflops() const {
    return seconds > 0 ? total_flops / seconds / 1e9 : 0.0;
  }
};

/// Run the model. Throws std::invalid_argument on inconsistent inputs
/// (vector sizes vs. num_threads, empty workload, bound placement
/// smaller than the thread count).
SimResult simulate(const MachineModel& machine, const Workload& workload,
                   const BindSpec& bind);

}  // namespace orwl::sim
