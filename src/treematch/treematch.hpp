// Algorithm 1 of the paper: the TreeMatch-derived mapping algorithm with
// the two ORWL adaptations — control-thread management and
// over-subscription.
//
//   Input: T (topology tree), m (communication matrix), D (tree depth)
//     m <- extend_to_manage_control_threads(m)
//     T <- manage_oversubscription(T, m)
//     foreach depth <- D-1 .. 1:                   // start from the leaves
//       groups[depth] <- GroupProcesses(T, m, depth)
//       m <- AggregateComMatrix(m, groups[depth])
//     MapGroups(T, groups)
//
// Control-thread policy (Sec. IV-A): "If hyperthreading is available, on
// each physical core we reserve one hyperthread sibling for control and
// one for computation. Otherwise, if there are more cores than tasks, we
// extend the communication matrix such that control threads will be
// mapped onto spare cores. If none of this suffices, control threads will
// not be mapped explicitly and we let the system schedule them."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topo/shard.hpp"
#include "topo/topology.hpp"
#include "treematch/comm_matrix.hpp"
#include "treematch/grouping.hpp"

namespace orwl::tm {

/// How control threads were handled by the algorithm.
enum class ControlPolicy {
  HyperthreadSiblings,  ///< One PU per core reserved for control threads.
  SpareCores,           ///< Matrix extended; control mapped to spare cores.
  Unmanaged,            ///< Left to the OS scheduler.
};

const char* to_string(ControlPolicy p) noexcept;

struct Options {
  GroupingEngine engine = GroupingEngine::Auto;

  /// Master switch for the control-thread adaptation.
  bool manage_control_threads = true;

  /// Number of runtime control threads to place.
  std::size_t num_control_threads = 0;

  /// control_associate[j] = compute thread whose locations control thread
  /// j manages; controls are placed near their associate. Empty =>
  /// round-robin association.
  std::vector<int> control_associate;
};

/// The result of the mapping: one PU os-index per compute thread (and per
/// control thread when managed).
struct Placement {
  std::vector<int> compute_pu;  ///< os index of the PU for each thread.
  std::vector<int> control_pu;  ///< os index per control thread; -1 = OS.

  /// Resolved associate of each control thread: the compute thread whose
  /// locations control thread j manages (Options::control_associate with
  /// the round-robin default applied). Runtimes use this to map control
  /// threads onto control-plane shards.
  std::vector<int> control_associate;

  ControlPolicy control_policy = ControlPolicy::Unmanaged;
  bool oversubscribed = false;

  /// True when every compute thread has a PU that exists in `t`, and PUs
  /// are pairwise distinct unless oversubscribed.
  bool valid_for(const topo::Topology& t) const;

  /// Multi-line description: "thread 3 -> PU 12 (NUMANode 1, Core 6)".
  std::string describe(const topo::Topology& t) const;
};

/// Run Algorithm 1. Requirements: symmetric topology (all the machines of
/// the paper are), m.order() >= 1. Throws std::invalid_argument otherwise.
Placement tree_match(const topo::Topology& topo, const CommMatrix& m,
                     const Options& opts = {});

/// Hop-distance communication cost of a placement:
/// sum over pairs of m(i,j) * distance(pu_i, pu_j). Lower is better. This
/// is the model objective used by tests and the ablation benches.
double modeled_cost(const topo::Topology& topo, const CommMatrix& m,
                    const Placement& placement);

/// Control-plane shard served by each control thread under `shards`: the
/// shard of its associate's compute PU (-1 when the associate is absent
/// or unplaced). Introspection helper for verifying that a placement's
/// control threads are aligned with the runtime's fixed thread -> shard
/// assignment (ControlPlane::shard_of_thread); the runtime itself routes
/// each location by its owner's compute PU (Program::route_queues).
std::vector<int> control_shard_of(const Placement& placement,
                                  const topo::ShardMap& shards);

}  // namespace orwl::tm
