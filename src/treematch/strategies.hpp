// Baseline binding strategies: the generic, application-oblivious
// placements the paper compares against.
//
// These model the OpenMP / vendor interfaces of the evaluation:
//   - Compact       ~ KMP_AFFINITY=compact (fills PUs in OS order,
//                     hyperthread siblings first),
//   - CompactCores  ~ OMP_PLACES=cores OMP_PROC_BIND=close,
//   - Scatter       ~ KMP_AFFINITY=scatter (round-robin over the highest
//                     topology level first),
//   - ScatterCores  ~ OMP_PLACES=cores OMP_PROC_BIND=spread,
//   - None          ~ no binding at all (the OS scheduler decides),
//   - TreeMatch     ~ this paper's Algorithm 1.
//
// "In none of these cases, the topology or the thread affinity are used
// to compute the mapping." (Sec. VI-B1, about the OpenMP strategies)
#pragma once

#include <cstddef>
#include <string>

#include "topo/topology.hpp"
#include "treematch/treematch.hpp"

namespace orwl::tm {

enum class Strategy {
  None,
  Compact,
  CompactCores,
  Scatter,
  ScatterCores,
  TreeMatch,
};

const char* to_string(Strategy s) noexcept;

/// Parse a strategy name ("compact", "scatter-cores", "treematch", ...).
/// Throws std::invalid_argument for unknown names.
Strategy parse_strategy(const std::string& name);

/// Compute a placement of `n` threads under the given strategy.
/// `m` is required for Strategy::TreeMatch (must have order n) and is
/// ignored otherwise. When n exceeds the available slots the assignment
/// wraps around (round-robin oversubscription).
Placement place_strategy(Strategy s, const topo::Topology& topo,
                         std::size_t n, const CommMatrix* m = nullptr,
                         const Options& opts = {});

}  // namespace orwl::tm
