// GroupProcesses: partition computing entities into fixed-size groups by
// communication affinity (the inner engine of Algorithm 1).
//
// "The internal algorithm engine of GroupProcesses is optimized such that,
// depending on the problem size, we go from an optimal but exponential
// algorithm to a greedy one that is linear." (Sec. IV-A)
//
// The exact engine enumerates all partitions of p entities into groups of
// size a and returns one that maximizes the intra-group volume (which is
// equivalent to minimizing the inter-group volume, since the total is
// fixed). The greedy engine grows one group at a time around the
// best-connected seed; its cost is O(p^2 * a), near-linear in the number
// of matrix entries.
#pragma once

#include <cstddef>
#include <vector>

#include "treematch/comm_matrix.hpp"

namespace orwl::tm {

enum class GroupingEngine {
  Auto,   ///< Exact when the partition count is small, greedy otherwise.
  Exact,  ///< Optimal, exponential.
  Greedy, ///< Near-linear heuristic.
};

/// Number of ways to partition p entities into p/a unlabeled groups of
/// size a, as a double (inf-safe). Used by Auto to pick the engine.
double partition_count(std::size_t p, std::size_t a);

/// Partition the entities [0, m.order()) into groups of exactly `arity`
/// members. m.order() must be a positive multiple of `arity` (callers pad
/// with zero-volume dummies first — see pad_to_multiple()).
///
/// Returns the groups in deterministic order (each group sorted ascending,
/// groups sorted by first member).
std::vector<std::vector<int>> group_processes(
    const CommMatrix& m, std::size_t arity,
    GroupingEngine engine = GroupingEngine::Auto);

/// Total intra-group volume of a grouping (the objective maximized).
double intra_volume(const CommMatrix& m,
                    const std::vector<std::vector<int>>& groups);

/// Smallest multiple of `arity` that is >= p.
std::size_t pad_to_multiple(std::size_t p, std::size_t arity);

}  // namespace orwl::tm
