#include "treematch/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace orwl::tm {

namespace {

/// Work bound under which the exact engine is allowed by Auto.
constexpr double kExactWorkLimit = 200000.0;

void canonicalize(std::vector<std::vector<int>>& groups) {
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
}

/// Exhaustive search over partitions into groups of size `a`.
///
/// Canonical enumeration: the lowest unassigned entity always opens the
/// next group, and its a-1 partners are chosen among the remaining
/// entities in increasing order. This enumerates every unordered partition
/// exactly once.
class ExactEngine {
 public:
  ExactEngine(const CommMatrix& m, std::size_t a)
      : m_(m), a_(a), p_(m.order()), assigned_(p_, false) {}

  std::vector<std::vector<int>> run() {
    best_value_ = -1.0;
    current_.clear();
    recurse(0.0);
    return best_;
  }

 private:
  void recurse(double value) {
    // Find lowest unassigned entity.
    std::size_t seed = 0;
    while (seed < p_ && assigned_[seed]) ++seed;
    if (seed == p_) {
      if (value > best_value_) {
        best_value_ = value;
        best_ = current_;
      }
      return;
    }
    assigned_[seed] = true;
    std::vector<int> group{static_cast<int>(seed)};
    choose_partners(seed + 1, group, value);
    assigned_[seed] = false;
  }

  void choose_partners(std::size_t from, std::vector<int>& group,
                       double value) {
    if (group.size() == a_) {
      current_.push_back(group);
      recurse(value);
      current_.pop_back();
      return;
    }
    for (std::size_t e = from; e < p_; ++e) {
      if (assigned_[e]) continue;
      // Volume gained by adding e to the open group.
      double gain = 0.0;
      for (int g : group) {
        gain += m_.at(static_cast<std::size_t>(g), e);
      }
      assigned_[e] = true;
      group.push_back(static_cast<int>(e));
      choose_partners(e + 1, group, value + gain);
      group.pop_back();
      assigned_[e] = false;
    }
  }

  const CommMatrix& m_;
  std::size_t a_;
  std::size_t p_;
  std::vector<bool> assigned_;
  std::vector<std::vector<int>> current_;
  std::vector<std::vector<int>> best_;
  double best_value_ = -1.0;
};

/// Greedy engine: repeatedly seed a group with the unassigned entity of
/// largest remaining row sum, then grow it with the entity most connected
/// to the group.
std::vector<std::vector<int>> greedy_engine(const CommMatrix& m,
                                            std::size_t a) {
  const std::size_t p = m.order();
  std::vector<bool> assigned(p, false);
  std::vector<std::vector<int>> groups;
  groups.reserve(p / a);

  for (std::size_t made = 0; made < p / a; ++made) {
    // Seed: max row sum among unassigned (ties -> lowest index for
    // determinism).
    std::size_t seed = p;
    double best_row = -1.0;
    for (std::size_t e = 0; e < p; ++e) {
      if (assigned[e]) continue;
      const double r = m.row_sum(e);
      if (r > best_row) {
        best_row = r;
        seed = e;
      }
    }
    std::vector<int> group{static_cast<int>(seed)};
    assigned[seed] = true;

    while (group.size() < a) {
      std::size_t pick = p;
      double best_gain = -1.0;
      for (std::size_t e = 0; e < p; ++e) {
        if (assigned[e]) continue;
        double gain = 0.0;
        for (int g : group) gain += m.at(static_cast<std::size_t>(g), e);
        if (gain > best_gain) {
          best_gain = gain;
          pick = e;
        }
      }
      group.push_back(static_cast<int>(pick));
      assigned[pick] = true;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace

double partition_count(std::size_t p, std::size_t a) {
  if (a == 0 || p % a != 0) return std::numeric_limits<double>::infinity();
  const std::size_t k = p / a;
  // p! / ((a!)^k * k!)
  const double log_count = std::lgamma(static_cast<double>(p) + 1) -
                           static_cast<double>(k) *
                               std::lgamma(static_cast<double>(a) + 1) -
                           std::lgamma(static_cast<double>(k) + 1);
  if (log_count > 700.0) return std::numeric_limits<double>::infinity();
  return std::exp(log_count);
}

std::size_t pad_to_multiple(std::size_t p, std::size_t arity) {
  if (arity == 0) throw std::invalid_argument("pad_to_multiple: arity 0");
  return (p + arity - 1) / arity * arity;
}

double intra_volume(const CommMatrix& m,
                    const std::vector<std::vector<int>>& groups) {
  double acc = 0.0;
  for (const auto& g : groups) acc += m.volume_within(g);
  return acc;
}

std::vector<std::vector<int>> group_processes(const CommMatrix& m,
                                              std::size_t arity,
                                              GroupingEngine engine) {
  const std::size_t p = m.order();
  if (arity == 0) throw std::invalid_argument("group_processes: arity 0");
  if (p == 0 || p % arity != 0) {
    throw std::invalid_argument(
        "group_processes: order must be a positive multiple of arity");
  }

  if (arity == 1) {
    std::vector<std::vector<int>> singletons(p);
    for (std::size_t i = 0; i < p; ++i) singletons[i] = {static_cast<int>(i)};
    return singletons;
  }
  if (arity == p) {
    std::vector<int> all(p);
    for (std::size_t i = 0; i < p; ++i) all[i] = static_cast<int>(i);
    return {all};
  }

  GroupingEngine chosen = engine;
  if (chosen == GroupingEngine::Auto) {
    chosen = partition_count(p, arity) <= kExactWorkLimit
                 ? GroupingEngine::Exact
                 : GroupingEngine::Greedy;
  }

  std::vector<std::vector<int>> groups;
  if (chosen == GroupingEngine::Exact) {
    groups = ExactEngine(m, arity).run();
  } else {
    groups = greedy_engine(m, arity);
  }
  canonicalize(groups);
  return groups;
}

}  // namespace orwl::tm
