#include "treematch/strategies.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/env.hpp"

namespace orwl::tm {

namespace {

using topo::Object;
using topo::Topology;

/// Sibling rank of `o` within its parent (0 for the root).
std::size_t sibling_rank(const Object* o) {
  if (o->parent == nullptr) return 0;
  const auto& siblings = o->parent->children;
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == o) return i;
  }
  return 0;
}

/// Path of sibling ranks from the root down to `o` (root excluded).
std::vector<std::size_t> path_digits(const Object* o) {
  std::vector<std::size_t> digits;
  for (const Object* cur = o; cur->parent != nullptr; cur = cur->parent) {
    digits.push_back(sibling_rank(cur));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

/// PUs ordered for scatter: lexicographic by *reversed* root path, so that
/// consecutive threads land in different top-level domains first.
std::vector<const Object*> scatter_order(std::span<Object* const> objs) {
  std::vector<std::pair<std::vector<std::size_t>, const Object*>> keyed;
  keyed.reserve(objs.size());
  for (const Object* o : objs) {
    auto digits = path_digits(o);
    std::reverse(digits.begin(), digits.end());
    keyed.emplace_back(std::move(digits), o);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<const Object*> out;
  out.reserve(keyed.size());
  for (auto& [k, o] : keyed) out.push_back(o);
  return out;
}

const Object* first_pu_of(const Object* core_like) {
  const Object* o = core_like;
  while (!o->is_leaf()) o = o->children.front().get();
  return o;
}

Placement from_order(const std::vector<const Object*>& order, std::size_t n,
                     bool per_core) {
  Placement p;
  p.compute_pu.resize(n);
  p.oversubscribed = n > order.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Object* o = order[i % order.size()];
    p.compute_pu[i] = per_core ? first_pu_of(o)->os_index : o->os_index;
  }
  return p;
}

}  // namespace

const char* to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::None: return "none";
    case Strategy::Compact: return "compact";
    case Strategy::CompactCores: return "compact-cores";
    case Strategy::Scatter: return "scatter";
    case Strategy::ScatterCores: return "scatter-cores";
    case Strategy::TreeMatch: return "treematch";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  using support::iequals;
  if (iequals(name, "none")) return Strategy::None;
  if (iequals(name, "compact")) return Strategy::Compact;
  if (iequals(name, "compact-cores") || iequals(name, "close")) {
    return Strategy::CompactCores;
  }
  if (iequals(name, "scatter")) return Strategy::Scatter;
  if (iequals(name, "scatter-cores") || iequals(name, "spread")) {
    return Strategy::ScatterCores;
  }
  if (iequals(name, "treematch") || iequals(name, "affinity")) {
    return Strategy::TreeMatch;
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

Placement place_strategy(Strategy s, const Topology& topo, std::size_t n,
                         const CommMatrix* m, const Options& opts) {
  if (n == 0) throw std::invalid_argument("place_strategy: n == 0");
  switch (s) {
    case Strategy::None: {
      Placement p;
      p.compute_pu.assign(n, -1);
      p.control_pu.assign(opts.num_control_threads, -1);
      return p;
    }
    case Strategy::Compact: {
      std::vector<const Object*> order(topo.pus().begin(), topo.pus().end());
      return from_order(order, n, /*per_core=*/false);
    }
    case Strategy::CompactCores: {
      std::vector<const Object*> order(topo.cores().begin(),
                                       topo.cores().end());
      return from_order(order, n, /*per_core=*/true);
    }
    case Strategy::Scatter: {
      return from_order(scatter_order(topo.pus()), n, /*per_core=*/false);
    }
    case Strategy::ScatterCores: {
      return from_order(scatter_order(topo.cores()), n, /*per_core=*/true);
    }
    case Strategy::TreeMatch: {
      if (m == nullptr || m->order() != n) {
        throw std::invalid_argument(
            "place_strategy: TreeMatch needs a communication matrix of "
            "matching order");
      }
      return tree_match(topo, *m, opts);
    }
  }
  throw std::invalid_argument("place_strategy: bad strategy");
}

}  // namespace orwl::tm
