#include "treematch/treematch.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace orwl::tm {

namespace {

using topo::ObjType;
using topo::Object;
using topo::Topology;

/// The PU used for computation within a core-like object (its first PU).
const Object* slot_pu(const Object* core_like) {
  const Object* o = core_like;
  while (!o->is_leaf()) o = o->children.front().get();
  return o;
}

/// The PU reserved for control threads within a core (second PU);
/// nullptr when the core has a single PU.
const Object* sibling_pu(const Object* core_like) {
  // Walk to the deepest level and pick the second leaf if present.
  if (core_like->pu_count() < 2) return nullptr;
  const Object* o = core_like;
  while (!o->is_leaf()) {
    if (o->children.size() > 1) {
      o = o->children[1].get();
      while (!o->is_leaf()) o = o->children.front().get();
      return o;
    }
    o = o->children.front().get();
  }
  return nullptr;
}

struct LevelGrouping {
  std::vector<std::vector<int>> groups;
  std::size_t real_entities = 0;  ///< entities before zero-padding
};

}  // namespace

const char* to_string(ControlPolicy p) noexcept {
  switch (p) {
    case ControlPolicy::HyperthreadSiblings: return "hyperthread-siblings";
    case ControlPolicy::SpareCores: return "spare-cores";
    case ControlPolicy::Unmanaged: return "unmanaged";
  }
  return "?";
}

bool Placement::valid_for(const topo::Topology& t) const {
  std::vector<int> seen;
  for (int pu : compute_pu) {
    if (t.pu_by_os_index(pu) == nullptr) return false;
    seen.push_back(pu);
  }
  if (!oversubscribed) {
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      return false;
    }
  }
  for (int pu : control_pu) {
    if (pu != -1 && t.pu_by_os_index(pu) == nullptr) return false;
  }
  return true;
}

std::string Placement::describe(const topo::Topology& t) const {
  std::ostringstream out;
  out << "placement on " << t.name() << " (control: "
      << to_string(control_policy)
      << (oversubscribed ? ", oversubscribed" : "") << ")\n";
  for (std::size_t i = 0; i < compute_pu.size(); ++i) {
    const Object* pu = t.pu_by_os_index(compute_pu[i]);
    out << "  thread " << i << " -> PU " << compute_pu[i];
    if (pu != nullptr) {
      if (const Object* numa = pu->ancestor_of_type(ObjType::NumaNode)) {
        out << " (" << numa->label();
        if (const Object* core = pu->ancestor_of_type(ObjType::Core)) {
          out << ", " << core->label();
        }
        out << ")";
      }
    }
    out << '\n';
  }
  for (std::size_t j = 0; j < control_pu.size(); ++j) {
    out << "  control " << j << " -> ";
    if (control_pu[j] < 0) {
      out << "OS-scheduled\n";
    } else {
      out << "PU " << control_pu[j] << '\n';
    }
  }
  return out.str();
}

Placement tree_match(const Topology& topo, const CommMatrix& m,
                     const Options& opts) {
  if (topo.empty() || m.order() == 0) {
    throw std::invalid_argument("tree_match: empty topology or matrix");
  }
  if (!topo.is_symmetric()) {
    throw std::invalid_argument(
        "tree_match: asymmetric topologies are not supported; "
        "use place_strategy(Strategy::Compact, ...) as a fallback");
  }

  const std::size_t p = m.order();
  const std::size_t nc = opts.num_control_threads;

  // Resolved associate of control thread j: caller-provided, defaulting
  // to round-robin over the compute threads.
  auto associate_of = [&](std::size_t j) -> std::size_t {
    return j < opts.control_associate.size() && opts.control_associate[j] >= 0
               ? static_cast<std::size_t>(opts.control_associate[j]) % p
               : j % p;
  };

  // ---- Compute slots: one per physical core. --------------------------
  // "we map only one compute intensive task per physical core" (Sec. IV-A)
  std::vector<const Object*> slots;  // core-like objects
  for (const Object* core : topo.cores()) slots.push_back(core);
  const std::size_t num_slots = slots.size();

  // ---- Control policy decision (Algorithm 1, step 1). -----------------
  ControlPolicy policy = ControlPolicy::Unmanaged;
  std::size_t num_extension = 0;  // matrix rows added for SpareCores
  if (opts.manage_control_threads && nc > 0) {
    if (topo.has_hyperthreads()) {
      policy = ControlPolicy::HyperthreadSiblings;
    } else if (num_slots > p) {
      policy = ControlPolicy::SpareCores;
      num_extension = std::min(nc, num_slots - p);
    }
  }

  // extend_to_manage_control_threads(m): SpareCores adds one entity per
  // reserved spare core, with a small affinity towards the compute
  // threads whose control load it will carry, so the grouping step parks
  // it nearby without displacing strongly-communicating threads.
  CommMatrix work = m;
  if (num_extension > 0) {
    work = m.extended(p + num_extension);
    const double eps =
        m.max_entry() > 0 ? m.max_entry() / 1e6 : 1.0;
    for (std::size_t j = 0; j < nc; ++j) {
      const std::size_t ext = p + (j % num_extension);
      work.add(ext, associate_of(j), eps);
    }
  }
  const std::size_t total_entities = work.order();

  // ---- Effective tree arities over compute slots (top -> leaf). -------
  // The compute-slot tree is the topology truncated at the core level;
  // arity-1 levels do not affect grouping and are skipped.
  std::vector<std::size_t> arities;
  {
    const int core_depth =
        topo.depth_of_type(ObjType::Core) >= 0
            ? topo.depth_of_type(ObjType::Core)
            : topo.depth() - 1;  // PU level doubles as cores
    for (int d = 0; d < core_depth; ++d) {
      const int a = topo.arity_at(d);
      if (a > 1) arities.push_back(static_cast<std::size_t>(a));
    }
  }
  if (arities.empty()) arities.push_back(num_slots);  // flat machine

  // ---- manage_oversubscription(T, m): virtual leaf level. -------------
  // "If oversubscribing is required, ORWL tasks are mapped to the
  // physical cores by going up one level in the tree."
  bool oversubscribed = false;
  std::size_t virtual_arity = 1;
  if (total_entities > num_slots) {
    oversubscribed = true;
    virtual_arity = (total_entities + num_slots - 1) / num_slots;
    arities.push_back(virtual_arity);
  }

  // ---- Bottom-up grouping (Algorithm 1, main loop). -------------------
  std::vector<LevelGrouping> level_groups(arities.size());
  CommMatrix cur = work;
  for (std::size_t li = arities.size(); li-- > 0;) {
    const std::size_t a = arities[li];
    LevelGrouping& lg = level_groups[li];
    lg.real_entities = cur.order();
    const std::size_t padded = pad_to_multiple(cur.order(), a);
    if (padded != cur.order()) cur = cur.extended(padded);
    lg.groups = group_processes(cur, a, opts.engine);
    cur = cur.aggregated(lg.groups);
  }
  if (cur.order() > 1) {
    // More top-level groups than machine roots cannot happen: the final
    // grouping always aggregates into ceil(k / a_top) and the padding
    // above makes it exactly 1 when a_top >= k. Defensive check only.
    throw std::logic_error("tree_match: top-level aggregation incomplete");
  }

  // ---- MapGroups: recursive expansion to leaf slots. -------------------
  // Leaf index space has prod(arities) positions; each entity at level li
  // spans prod(arities[li+1..]) of them.
  std::vector<std::size_t> span(arities.size() + 1, 1);
  for (std::size_t li = arities.size(); li-- > 0;) {
    span[li] = span[li + 1] * arities[li];
  }

  std::vector<int> leaf_of_thread(total_entities, -1);
  // expand(level, entity, base): entity ids beyond real_entities at that
  // level are zero-padding dummies and occupy empty leaves.
  auto expand = [&](auto&& self, std::size_t level, std::size_t entity,
                    std::size_t base) -> void {
    if (level == arities.size()) {
      leaf_of_thread[entity] = static_cast<int>(base);
      return;
    }
    const LevelGrouping& lg = level_groups[level];
    if (entity >= lg.groups.size()) return;  // dummy group
    const auto& members = lg.groups[entity];
    for (std::size_t j = 0; j < members.size(); ++j) {
      const std::size_t member = static_cast<std::size_t>(members[j]);
      if (level + 1 == arities.size()) {
        if (member >= total_entities) continue;  // padding dummy thread
      } else if (member >= level_groups[level + 1].groups.size()) {
        continue;  // padding dummy group
      }
      self(self, level + 1, member, base + j * span[level + 1]);
    }
  };
  expand(expand, 0, 0, 0);

  // ---- Emit the placement. ---------------------------------------------
  Placement result;
  result.control_policy = policy;
  result.oversubscribed = oversubscribed;
  result.compute_pu.resize(p, -1);

  auto leaf_to_slot = [&](int leaf) {
    return static_cast<std::size_t>(leaf) / virtual_arity;
  };

  for (std::size_t t = 0; t < p; ++t) {
    if (leaf_of_thread[t] < 0) {
      throw std::logic_error("tree_match: thread left unmapped");
    }
    const std::size_t slot = leaf_to_slot(leaf_of_thread[t]);
    result.compute_pu[t] = slot_pu(slots[slot])->os_index;
  }

  result.control_pu.assign(nc, -1);
  result.control_associate.resize(nc);
  for (std::size_t j = 0; j < nc; ++j) {
    result.control_associate[j] = static_cast<int>(associate_of(j));
  }
  if (policy == ControlPolicy::HyperthreadSiblings) {
    for (std::size_t j = 0; j < nc; ++j) {
      const std::size_t slot = leaf_to_slot(leaf_of_thread[associate_of(j)]);
      if (const Object* sib = sibling_pu(slots[slot])) {
        result.control_pu[j] = sib->os_index;
      }
    }
  } else if (policy == ControlPolicy::SpareCores) {
    for (std::size_t j = 0; j < nc; ++j) {
      const std::size_t ext = p + (j % num_extension);
      if (leaf_of_thread[ext] >= 0) {
        const std::size_t slot = leaf_to_slot(leaf_of_thread[ext]);
        result.control_pu[j] = slot_pu(slots[slot])->os_index;
      }
    }
  }
  return result;
}

std::vector<int> control_shard_of(const Placement& placement,
                                  const topo::ShardMap& shards) {
  std::vector<int> out(placement.control_associate.size(), -1);
  for (std::size_t j = 0; j < out.size(); ++j) {
    const int assoc = placement.control_associate[j];
    if (assoc < 0 ||
        static_cast<std::size_t>(assoc) >= placement.compute_pu.size()) {
      continue;
    }
    out[j] =
        shards.shard_of(placement.compute_pu[static_cast<std::size_t>(assoc)]);
  }
  return out;
}

double modeled_cost(const Topology& topo, const CommMatrix& m,
                    const Placement& placement) {
  if (placement.compute_pu.size() < m.order()) {
    throw std::invalid_argument("modeled_cost: placement too small");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < m.order(); ++i) {
    const Object* pu_i = topo.pu_by_os_index(placement.compute_pu[i]);
    if (pu_i == nullptr) continue;  // unbound threads contribute nothing
    for (std::size_t j = i + 1; j < m.order(); ++j) {
      const double v = m.at(i, j);
      if (v == 0) continue;
      const Object* pu_j = topo.pu_by_os_index(placement.compute_pu[j]);
      if (pu_j == nullptr) continue;
      acc += v * topo.distance(pu_i->logical_index, pu_j->logical_index);
    }
  }
  return acc;
}

}  // namespace orwl::tm
