#include "treematch/comm_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace orwl::tm {

CommMatrix::CommMatrix(std::size_t order)
    : order_(order), data_(order * order, 0.0) {}

double CommMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= order_ || j >= order_) {
    throw std::out_of_range("CommMatrix::at: index out of range");
  }
  return data_[idx(i, j)];
}

void CommMatrix::set(std::size_t i, std::size_t j, double v) {
  if (i >= order_ || j >= order_) {
    throw std::out_of_range("CommMatrix::set: index out of range");
  }
  if (v < 0) throw std::invalid_argument("CommMatrix::set: negative volume");
  data_[idx(i, j)] = v;
  data_[idx(j, i)] = v;
}

void CommMatrix::add(std::size_t i, std::size_t j, double v) {
  set(i, j, at(i, j) + v);
}

double CommMatrix::total_volume() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = i + 1; j < order_; ++j) acc += data_[idx(i, j)];
  }
  return acc;
}

double CommMatrix::row_sum(std::size_t i) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < order_; ++j) {
    if (j != i) acc += at(i, j);
  }
  return acc;
}

double CommMatrix::max_entry() const {
  double m = 0.0;
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = i + 1; j < order_; ++j) {
      m = std::max(m, data_[idx(i, j)]);
    }
  }
  return m;
}

double CommMatrix::volume_within(const std::vector<int>& group) const {
  double acc = 0.0;
  for (std::size_t a = 0; a < group.size(); ++a) {
    for (std::size_t b = a + 1; b < group.size(); ++b) {
      acc += at(static_cast<std::size_t>(group[a]),
                static_cast<std::size_t>(group[b]));
    }
  }
  return acc;
}

double CommMatrix::volume_between(const std::vector<int>& a,
                                  const std::vector<int>& b) const {
  double acc = 0.0;
  for (int x : a) {
    for (int y : b) {
      acc += at(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
    }
  }
  return acc;
}

CommMatrix CommMatrix::aggregated(
    const std::vector<std::vector<int>>& groups) const {
  CommMatrix out(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::size_t gj = gi + 1; gj < groups.size(); ++gj) {
      out.set(gi, gj, volume_between(groups[gi], groups[gj]));
    }
  }
  return out;
}

CommMatrix CommMatrix::extended(std::size_t new_order) const {
  CommMatrix out(new_order);
  const std::size_t n = std::min(order_, new_order);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.data_[out.idx(i, j)] = data_[idx(i, j)];
    }
  }
  return out;
}

std::string CommMatrix::render_heatmap() const {
  static const char kShades[] = " .:-=+*#%@";
  constexpr int kLevels = 9;  // indices 1..9 for nonzero volumes
  const double mx = max_entry();
  std::ostringstream out;
  out << "communication matrix, order " << order_
      << " (log gray scale, max=" << mx << " bytes)\n";
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = 0; j < order_; ++j) {
      const double v = data_[idx(i, j)];
      char c = ' ';
      if (i == j) {
        c = '\\';
      } else if (v > 0 && mx > 0) {
        // log scale: map [1, mx] to [1, kLevels].
        const double f = std::log1p(v) / std::log1p(mx);
        int level = 1 + static_cast<int>(f * (kLevels - 1) + 0.5);
        level = std::clamp(level, 1, kLevels);
        c = kShades[level];
      }
      out << c << ' ';
    }
    out << '\n';
  }
  return out.str();
}

void CommMatrix::decay_accumulate(const CommMatrix& delta, double decay) {
  if (delta.order_ > order_) *this = extended(delta.order_);
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = 0; j < order_; ++j) {
      const double d =
          i < delta.order_ && j < delta.order_ ? delta.data_[delta.idx(i, j)]
                                               : 0.0;
      data_[idx(i, j)] = decay * data_[idx(i, j)] + d;
    }
  }
}

double normalized_distance(const CommMatrix& a, const CommMatrix& b) {
  const std::size_t n = std::max(a.order(), b.order());
  const double ta = a.total_volume();
  const double tb = b.total_volume();
  if (ta <= 0.0 || tb <= 0.0) return ta == tb ? 0.0 : 1.0;
  double dist = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double va = i < a.order() && j < a.order() ? a.at(i, j) : 0.0;
      const double vb = i < b.order() && j < b.order() ? b.at(i, j) : 0.0;
      dist += std::abs(va / ta - vb / tb);
    }
  }
  return 0.5 * dist;
}

}  // namespace orwl::tm
