// Communication matrix between computing entities (threads).
//
// "...when this function [orwl_schedule] is called, we are able to
// construct a matrix (see Fig. 1) that expresses the communication volume
// between tasks and then to compute the mapping." (Sec. IV-A)
//
// The matrix is symmetric; entry (i, j) is the volume in bytes exchanged
// between threads i and j per iteration of the application.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace orwl::tm {

class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(std::size_t order);

  std::size_t order() const noexcept { return order_; }

  double at(std::size_t i, std::size_t j) const;

  /// Set the symmetric pair (i,j) and (j,i). Diagonal writes are allowed
  /// but ignored by the grouping algorithms.
  void set(std::size_t i, std::size_t j, double v);

  /// Accumulate volume onto the symmetric pair.
  void add(std::size_t i, std::size_t j, double v);

  /// Total communication volume: sum over unordered pairs i < j.
  double total_volume() const;

  /// Sum of row i over all j != i.
  double row_sum(std::size_t i) const;

  /// Largest off-diagonal entry.
  double max_entry() const;

  /// Volume among members of one group (sum over unordered pairs inside).
  double volume_within(const std::vector<int>& group) const;

  /// Volume crossing between two disjoint groups.
  double volume_between(const std::vector<int>& a,
                        const std::vector<int>& b) const;

  /// Aggregated matrix: one row/column per group, entries are the summed
  /// volumes between groups ("AggregateComMatrix" of Algorithm 1).
  CommMatrix aggregated(const std::vector<std::vector<int>>& groups) const;

  /// Copy padded (or truncated) to a new order; added entries are zero.
  /// Used to extend the matrix for control threads and for padding to a
  /// multiple of the tree arity.
  CommMatrix extended(std::size_t new_order) const;

  bool operator==(const CommMatrix& o) const = default;

  /// ASCII heat map on a logarithmic gray scale — the reproduction of the
  /// paper's Fig. 1 rendering. Each cell is one character from " .:-=+*#%@"
  /// scaled by log(volume)/log(max).
  std::string render_heatmap() const;

  /// Fold another matrix into this one with exponential decay:
  /// entry := decay * entry + delta_entry (orders may differ; this matrix
  /// is extended to cover both). The measured-matrix accumulator of the
  /// online re-placement loop.
  void decay_accumulate(const CommMatrix& delta, double decay);

 private:
  std::size_t idx(std::size_t i, std::size_t j) const {
    return i * order_ + j;
  }
  std::size_t order_ = 0;
  std::vector<double> data_;
};

/// Normalized divergence between two communication patterns: the total-
/// variation distance of the unit-normalized off-diagonal volumes,
/// 0 (same shape, any scale) .. 1 (disjoint support). A matrix with zero
/// volume is at distance 0 of another zero-volume matrix and 1 of any
/// matrix with traffic. Orders may differ (the smaller is zero-padded).
/// This is the divergence metric of the measured-vs-declared re-placement
/// trigger: scale-free, so a measured byte count and a declared per-
/// iteration volume compare meaningfully.
double normalized_distance(const CommMatrix& a, const CommMatrix& b);

}  // namespace orwl::tm
