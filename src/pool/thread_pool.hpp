// Fork-join thread pool with OpenMP-style binding strategies.
//
// This is the reproduction's stand-in for the paper's OpenMP baselines:
// "#pragma parallel for directives with static scheduling of chunks over
// the threads" (Sec. VI-B1), combined with the binding strategies of
// OMP_PLACES / OMP_PROC_BIND / KMP_AFFINITY. The pool spawns its workers
// once, binds them according to a tm::Strategy, and then runs
// parallel-for regions with static chunking — the same execution shape a
// vendor OpenMP runtime gives those programs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "topo/topology.hpp"
#include "treematch/strategies.hpp"

namespace orwl::pool {

struct PoolOptions {
  /// Binding strategy for the workers (None = leave to the OS).
  tm::Strategy strategy = tm::Strategy::None;

  /// Topology to bind on; null => detect the host. Must outlive the pool.
  const topo::Topology* topology = nullptr;

  /// When false, placements are computed but not applied (for tests).
  bool bind_threads = true;
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, PoolOptions opts = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// OpenMP "parallel for schedule(static)": iterate fn over [begin, end)
  /// with each thread working one contiguous chunk. Blocks until done.
  /// The calling thread participates as thread 0 (like an OpenMP master).
  /// Exceptions thrown by fn (on any thread) propagate to the caller
  /// after the whole region has drained; the pool stays usable.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(thread_id, chunk_begin, chunk_end).
  void parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// OpenMP "parallel": run fn(thread_id) once on every thread.
  void parallel(const std::function<void(std::size_t)>& fn);

  /// PU os-index each thread is bound to (-1 = unbound). Entry 0 is the
  /// master (calling) thread.
  const std::vector<int>& bindings() const noexcept { return bindings_; }

  /// Number of parallel regions executed (fork-join count, for stats).
  std::uint64_t regions() const noexcept { return regions_; }

 private:
  void worker_loop(std::size_t worker_index);
  void run_region(const std::function<void(std::size_t)>& per_thread);

  std::vector<std::thread> workers_;
  std::vector<int> bindings_;
  topo::Topology owned_topology_;
  tm::Strategy strategy_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::function<void(std::size_t)> job_;
  std::size_t generation_ = 0;
  std::size_t working_ = 0;
  std::size_t unstarted_ = 0;  ///< workers still in the startup handshake
  bool stopping_ = false;
  std::uint64_t regions_ = 0;
  std::exception_ptr region_error_;  ///< first worker exception of a region
};

}  // namespace orwl::pool
