#include "pool/thread_pool.hpp"

#include "topo/binding.hpp"
#include "topo/cpuset.hpp"
#include "topo/detect.hpp"

namespace orwl::pool {

ThreadPool::ThreadPool(std::size_t num_threads, PoolOptions opts)
    : strategy_(opts.strategy) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  const topo::Topology* topology = opts.topology;
  if (topology == nullptr) {
    owned_topology_ = topo::detect_host();
    topology = &owned_topology_;
  }

  bindings_.assign(num_threads, -1);
  if (strategy_ != tm::Strategy::None) {
    const tm::Placement p =
        tm::place_strategy(strategy_, *topology, num_threads);
    bindings_ = p.compute_pu;
  }

  // Bind the master (thread 0).
  if (opts.bind_threads && bindings_[0] >= 0) {
    if (!topo::bind_current_thread(topo::CpuSet::single(bindings_[0]))) {
      bindings_[0] = -1;
    }
  }

  // Startup handshake: each worker binds *itself* before its first wait,
  // so its first instructions and stack/TLS faults already land on the
  // target PU; the constructor then waits for every worker to check in,
  // after which bindings_ is stable and safe to read through bindings().
  unstarted_ = num_threads - 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 1; w < num_threads; ++w) {
    const int pu = bindings_[w];
    const bool bind = opts.bind_threads && pu >= 0;
    workers_.emplace_back([this, w, pu, bind] {
      const bool bound =
          !bind || topo::bind_current_thread(topo::CpuSet::single(pu));
      {
        std::unique_lock lock(mu_);
        if (!bound) bindings_[w] = -1;
        if (--unstarted_ == 0) done_cv_.notify_all();
      }
      worker_loop(w);
    });
  }
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return unstarted_ == 0; });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      job(worker_index);
    } catch (...) {
      std::unique_lock lock(mu_);
      if (!region_error_) region_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mu_);
      if (--working_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_region(const std::function<void(std::size_t)>& fn) {
  {
    std::unique_lock lock(mu_);
    job_ = fn;
    working_ = workers_.size();
    region_error_ = nullptr;
    ++generation_;
    ++regions_;
  }
  start_cv_.notify_all();
  // The master participates as thread 0. If its chunk throws, the region
  // must still drain — rethrowing before done_cv_ is waited on would leave
  // working_ > 0 and corrupt the pool for the next region.
  std::exception_ptr master_error;
  try {
    fn(0);
  } catch (...) {
    master_error = std::current_exception();
  }
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return working_ == 0; });
  // The master's exception wins; otherwise surface the first worker's.
  std::exception_ptr error = master_error ? master_error : region_error_;
  region_error_ = nullptr;
  job_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel(const std::function<void(std::size_t)>& fn) {
  run_region(fn);
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  const std::size_t nthreads = size();
  run_region([&, begin, total, nthreads](std::size_t tid) {
    // OpenMP static schedule: near-equal contiguous chunks.
    const std::size_t base = total / nthreads;
    const std::size_t extra = total % nthreads;
    const std::size_t b =
        begin + tid * base + std::min<std::size_t>(tid, extra);
    const std::size_t len = base + (tid < extra ? 1 : 0);
    if (len > 0) fn(tid, b, b + len);
  });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(begin, end,
                  [&](std::size_t, std::size_t b, std::size_t e) {
                    for (std::size_t i = b; i < e; ++i) fn(i);
                  });
}

}  // namespace orwl::pool
