#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace orwl::support {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace orwl::support
