#include "support/env.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace orwl::support {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[noreturn]] void throw_bad_env(const char* name, std::string_view value,
                                const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + std::string(value) +
                              "\": expected " + expected);
}

bool env_bool(const char* name, bool fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  const std::string_view s = *v;
  if (iequals(s, "1") || iequals(s, "true") || iequals(s, "yes") ||
      iequals(s, "on")) {
    return true;
  }
  if (s.empty() || iequals(s, "0") || iequals(s, "false") ||
      iequals(s, "no") || iequals(s, "off")) {
    return false;
  }
  throw_bad_env(name, s, "a boolean (1/true/yes/on or 0/false/no/off)");
}

ScopedEnv::ScopedEnv(const char* name, const char* value)
    : name_(name), saved_(env_string(name)) {
  set(value);
}

ScopedEnv::~ScopedEnv() {
  if (saved_) {
    ::setenv(name_.c_str(), saved_->c_str(), 1);
  } else {
    ::unsetenv(name_.c_str());
  }
}

void ScopedEnv::set(const char* value) {
  if (value != nullptr) {
    ::setenv(name_.c_str(), value, 1);
  } else {
    ::unsetenv(name_.c_str());
  }
}

long env_long(const char* name, long fallback) {
  const auto v = env_string(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || (end != nullptr && *end != '\0')) {
    throw_bad_env(name, *v, "an integer");
  }
  return parsed;
}

double env_double(const char* name, double fallback) {
  const auto v = env_string(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || (end != nullptr && *end != '\0')) {
    throw_bad_env(name, *v, "a number");
  }
  return parsed;
}

}  // namespace orwl::support
