// Small statistics helpers for benchmark reporting (medians over repeats).
#pragma once

#include <span>
#include <vector>

namespace orwl::support {

double mean(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

}  // namespace orwl::support
