// Environment-variable helpers.
//
// The affinity module of the paper is switched on by setting the
// environment variable ORWL_AFFINITY=1 ("the ORWL user only has to set the
// environment variable ORWL_AFFINITY to 1", Sec. IV-B).  These helpers give
// a single, tested path for reading such configuration.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace orwl::support {

/// Raw environment lookup. Returns std::nullopt when the variable is unset.
std::optional<std::string> env_string(const char* name);

/// Parse a boolean environment variable.
/// Accepted truthy spellings: "1", "true", "yes", "on" (case-insensitive).
/// Accepted falsy spellings: "0", "false", "no", "off", "" (empty).
/// Unset yields `fallback`; anything else throws std::invalid_argument
/// naming the variable — a typo'd knob must fail loudly, not silently
/// run with a default.
bool env_bool(const char* name, bool fallback = false);

/// Parse an integral environment variable. Unset/empty yields `fallback`;
/// unparsable values throw std::invalid_argument naming the variable.
long env_long(const char* name, long fallback);

/// Parse a floating-point environment variable (strtod syntax).
/// Unset/empty yields `fallback`; unparsable values throw
/// std::invalid_argument naming the variable.
double env_double(const char* name, double fallback);

/// Throw std::invalid_argument for a malformed environment value:
/// `NAME="value": expected <expected>`. Shared by the typed parsers above
/// and by enum-valued knob resolvers (ORWL_DATA_TRANSFER, ORWL_DIST, ...).
[[noreturn]] void throw_bad_env(const char* name, std::string_view value,
                                const char* expected);

/// Case-insensitive ASCII string comparison (helper, exposed for tests).
bool iequals(std::string_view a, std::string_view b) noexcept;

/// RAII guard that sets (or, with nullptr, unsets) an environment variable
/// and restores the previous state on destruction. Tests that probe
/// env-driven behavior must use this instead of bare setenv/unsetenv so a
/// caller-provided value survives the test. Not thread-safe: the process
/// environment itself is not, so scope guards to single-threaded sections.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value);
  ~ScopedEnv();

  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

  /// Re-point the variable at a new value (nullptr unsets) while keeping
  /// the originally saved state for restoration.
  void set(const char* value);

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

}  // namespace orwl::support
