// Plain-text table rendering used by the benchmark harness to print the
// paper's tables and figure series in a readable, diffable format.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace orwl::support {

/// A simple column-aligned text table.
///
///   TextTable t;
///   t.header({"Nb Cores", "ORWL", "ORWL (affinity)"});
///   t.row({"8", "20.1", "19.7"});
///   std::cout << t.render();
class TextTable {
 public:
  /// Set (or replace) the header row.
  void header(std::vector<std::string> cells);

  /// Append a data row. Rows may be ragged; missing cells render empty.
  void row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  void separator();

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render with columns padded to the widest cell, ' | ' separators and a
  /// rule under the header.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helpers shared by benches.
std::string format_double(double v, int precision = 2);
std::string format_si(double v, int precision = 2);     // 1234567 -> "1.23M"
std::string format_bytes(double bytes, int precision = 1);  // -> "20.0 MiB"

}  // namespace orwl::support
