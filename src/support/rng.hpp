// Deterministic pseudo-random generation.
//
// All stochastic components of the reproduction (OS-scheduler jitter in the
// simulator, randomized property tests) use this seeded splitmix64 engine so
// that every run of the benchmarks and tests is bit-reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace orwl::support {

/// splitmix64: tiny, fast, statistically solid 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw which
    // is irrelevant for our simulation/jitter purposes.
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace orwl::support
