#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace orwl::support {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  // Compute column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto absorb = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      width[c] = std::max(width[c], cells[c].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) {
    if (!r.is_separator) absorb(r.cells);
  }

  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) {
    total += width[c] + (c + 1 < ncols ? 3 : 0);
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      out << s;
      if (c + 1 < ncols) {
        out << std::string(width[c] - s.size(), ' ') << " | ";
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.is_separator) {
      out << std::string(total, '-') << '\n';
    } else {
      emit(r.cells);
    }
  }
  return out.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_si(double v, int precision) {
  static const char* suffix[] = {"", "k", "M", "G", "T", "P"};
  int idx = 0;
  double a = std::fabs(v);
  while (a >= 1000.0 && idx < 5) {
    a /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0 && v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f%s", precision, v, suffix[idx]);
  }
  return buf;
}

std::string format_bytes(double bytes, int precision) {
  static const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int idx = 0;
  while (std::fabs(bytes) >= 1024.0 && idx < 4) {
    bytes /= 1024.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", precision, bytes, suffix[idx]);
  return buf;
}

}  // namespace orwl::support
