#include "affinity/affinity.hpp"

#include <algorithm>

#include "support/env.hpp"

namespace orwl::aff {

bool enabled_from_env() {
  return support::env_bool(kAffinityEnvVar, false);
}

tm::CommMatrix comm_matrix_from_graph(const rt::TaskGraph& graph) {
  tm::CommMatrix m(graph.num_tasks);
  for (const auto& loc : graph.locations) {
    if (loc.bytes == 0 || loc.accesses.empty()) continue;
    // Deduplicate accesses per (task, mode).
    std::vector<rt::TaskId> writers;
    std::vector<rt::TaskId> readers;
    for (const auto& acc : loc.accesses) {
      auto& side = acc.mode == rt::AccessMode::Write ? writers : readers;
      if (std::find(side.begin(), side.end(), acc.task) == side.end()) {
        side.push_back(acc.task);
      }
    }
    const double vol = static_cast<double>(loc.bytes);
    for (rt::TaskId w : writers) {
      for (rt::TaskId r : readers) {
        if (w != r) m.add(w, r, vol);
      }
    }
    for (std::size_t a = 0; a < writers.size(); ++a) {
      for (std::size_t b = a + 1; b < writers.size(); ++b) {
        m.add(writers[a], writers[b], vol);
      }
    }
  }
  return m;
}

tm::Placement compute_placement(const tm::CommMatrix& m,
                                const topo::Topology& topology,
                                const ComputeOptions& opts) {
  tm::Options tm_opts;
  tm_opts.engine = opts.engine;
  tm_opts.manage_control_threads = opts.manage_control_threads;
  tm_opts.num_control_threads = opts.num_control_threads;
  tm_opts.control_associate = opts.control_associate;
  return tm::tree_match(topology, m, tm_opts);
}

}  // namespace orwl::aff
