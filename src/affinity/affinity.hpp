// The affinity module — the contribution of the paper (Sec. IV).
//
// "Transparent to the user, our module computes and enables an optimized
// binding strategy that takes the hardware topology and the application
// characteristics into account."
//
// The module is deliberately independent of the runtime's execution
// machinery: it consumes the frozen task-location graph (runtime/graph.hpp)
// and a hardware topology, and produces a Placement. The ORWL runtime
// calls it automatically at orwl_schedule() time when the environment
// variable ORWL_AFFINITY is set to 1, and exposes the advanced API
// (orwl_dependency_get / orwl_affinity_compute / orwl_affinity_set) on the
// Program class for dynamic re-placement.
#pragma once

#include <cstddef>

#include "runtime/graph.hpp"
#include "topo/topology.hpp"
#include "treematch/comm_matrix.hpp"
#include "treematch/treematch.hpp"

namespace orwl::aff {

/// Name of the switch the paper specifies: "the ORWL user only has to set
/// the environment variable ORWL_AFFINITY to 1" (Sec. IV-B).
inline constexpr const char* kAffinityEnvVar = "ORWL_AFFINITY";

/// True when ORWL_AFFINITY requests automatic placement.
bool enabled_from_env();

/// orwl_dependency_get: derive the thread communication matrix from the
/// task-location graph.
///
/// Volume rule: each location of size S couples its writers and readers —
/// every (writer, reader) pair of distinct tasks exchanges S bytes per
/// iteration through the location, and every pair of distinct writers
/// shares S bytes as well (they alternate on the same buffer). Readers do
/// not exchange data among themselves (concurrent read sharing). A task
/// accessing a location in both modes counts once per mode pair.
tm::CommMatrix comm_matrix_from_graph(const rt::TaskGraph& graph);

struct ComputeOptions {
  std::size_t num_control_threads = 0;
  std::vector<int> control_associate;  ///< see tm::Options
  tm::GroupingEngine engine = tm::GroupingEngine::Auto;
  bool manage_control_threads = true;
};

/// orwl_affinity_compute: run Algorithm 1 on the extracted matrix and the
/// machine topology.
tm::Placement compute_placement(const tm::CommMatrix& m,
                                const topo::Topology& topology,
                                const ComputeOptions& opts = {});

}  // namespace orwl::aff
