#include "affinity/report.hpp"

#include <map>
#include <sstream>

namespace orwl::aff {

using topo::ObjType;
using topo::Object;
using topo::Topology;

std::string render_comm_matrix(const tm::CommMatrix& m) {
  return m.render_heatmap();
}

std::string render_mapping(const Topology& topology,
                           const tm::Placement& placement,
                           const std::vector<std::string>& task_names) {
  // Threads per PU os index.
  std::map<int, std::vector<std::string>> by_pu;
  for (std::size_t i = 0; i < placement.compute_pu.size(); ++i) {
    const int pu = placement.compute_pu[i];
    std::string label = std::to_string(i) + ":";
    label += i < task_names.size() ? task_names[i] : "task";
    by_pu[pu].push_back(std::move(label));
  }
  std::map<int, int> control_by_pu;
  int unmanaged_control = 0;
  for (int pu : placement.control_pu) {
    if (pu < 0) {
      ++unmanaged_control;
    } else {
      control_by_pu[pu]++;
    }
  }

  // Box level: packages when present, else NUMA nodes, else the machine.
  int box_depth = topology.depth_of_type(ObjType::Package);
  if (box_depth < 0) box_depth = topology.depth_of_type(ObjType::NumaNode);
  if (box_depth < 0) box_depth = 0;

  std::ostringstream out;
  out << "task allocation on " << topology.name() << " ("
      << to_string(placement.control_policy) << " control placement)\n";
  const Object* last_group = nullptr;
  for (const Object* box : topology.at_depth(box_depth)) {
    // Print the blade/group header once when entering a new group.
    const Object* group = box->ancestor_of_type(ObjType::Group);
    if (group != nullptr && group != last_group) {
      out << group->label() << '\n';
      last_group = group;
    }
    out << (group != nullptr ? "  " : "") << box->label() << "  [PUs "
        << box->first_pu << "-" << box->last_pu
        << "]\n";
    for (int pu_idx = box->first_pu; pu_idx <= box->last_pu; ++pu_idx) {
      const Object* pu = topology.pu_at(pu_idx);
      const auto it = by_pu.find(pu->os_index);
      const auto ct = control_by_pu.find(pu->os_index);
      if (it == by_pu.end() && ct == control_by_pu.end()) continue;
      const Object* core = pu->ancestor_of_type(ObjType::Core);
      out << "  " << (core != nullptr ? core->label() : pu->label())
          << " (PU " << pu->os_index << "): ";
      bool first = true;
      if (it != by_pu.end()) {
        for (const auto& name : it->second) {
          if (!first) out << ", ";
          out << name;
          first = false;
        }
      }
      if (ct != control_by_pu.end()) {
        if (!first) out << "  ";
        out << "+" << ct->second << " control";
      }
      out << '\n';
    }
  }
  if (unmanaged_control > 0) {
    out << "OS-scheduled control threads: " << unmanaged_control << '\n';
  }
  return out.str();
}

}  // namespace orwl::aff
