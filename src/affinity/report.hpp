// Human-readable renderings of the affinity module's data structures —
// the reproductions of Fig. 1 (communication matrix heat map) and Fig. 2
// (task allocation boxes per socket).
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"
#include "treematch/comm_matrix.hpp"
#include "treematch/treematch.hpp"

namespace orwl::aff {

/// Fig. 1: the communication matrix on a logarithmic gray scale.
std::string render_comm_matrix(const tm::CommMatrix& m);

/// Fig. 2: the task allocation, one box per socket (or NUMA node when the
/// topology has no package level), listing each core with the threads
/// bound to it. `task_names[i]` labels compute thread i (falls back to
/// "task <i>"); control threads are reported per core as "+N control".
std::string render_mapping(const topo::Topology& topology,
                           const tm::Placement& placement,
                           const std::vector<std::string>& task_names = {});

}  // namespace orwl::aff
