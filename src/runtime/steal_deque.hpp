// Bounded Chase–Lev work-stealing deque over arena-backed storage.
//
// One deque per executor worker: the owner pushes and pops work items at
// the bottom (LIFO, cache-warm), thieves steal from the top (FIFO, the
// oldest — and for divide-and-conquer work the largest — item). The
// implementation follows the Chase–Lev design with the memory orderings
// of Lê/Pop/Cohen/Zappa Nardelli ("Correct and Efficient Work-Stealing
// for Weak Memory Models", PPoPP'13), except that the seq_cst *fences*
// of the paper are expressed as seq_cst accesses on top/bottom: the
// owner's bottom store and top load, and the thief's top and bottom
// loads, all participate in the single seq_cst total order, which gives
// the same Dekker-style guarantee (at least one side sees the other's
// write) while staying strictly stronger than the fence formulation.
// On x86 the cost is identical (the seq_cst store is an xchg where the
// fence was an mfence), and — the reason for the deviation — TSan does
// not model atomic_thread_fence, so the fence version both trips
// gcc's -Wtsan and reports false races; seq_cst accesses verify clean.
// CAS-on-top races decide the last element, push publishes its slot
// with a release store on bottom.
//
// Two deliberate deviations from the textbook version:
//  - The ring is *bounded* and never grows: push() returns false when
//    full and the executor runs the item inline instead. Growth would
//    need epoch reclamation of the old buffer; a bounded ring needs
//    none, and inline execution is exactly the right backpressure for a
//    work-stealing loop.
//  - Elements are std::atomic<uint64_t> slots (an item is an opaque
//    64-bit payload, typically an index into caller-owned state). Plain
//    slots would be a data race under the C++ memory model even though
//    the Chase–Lev protocol orders the accesses; atomic slots with
//    relaxed loads/stores cost nothing on x86/ARM and keep TSan clean.
//
// The slot buffer is allocated from an rt::Arena so each worker's deque
// lives on the NUMA node of the shard that owns the worker's PU.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "runtime/arena.hpp"

namespace orwl::rt {

/// Bounded single-owner multi-thief deque of 64-bit work items.
///
/// Thread safety: push() and pop() are owner-only (one designated
/// thread); steal() is safe from any thread, concurrently with the
/// owner and other thieves. size() is a racy estimate for heuristics.
class StealDeque {
 public:
  /// \param arena    Arena the slot buffer is carved from (node-bound
  ///                 to the owning worker's shard).
  /// \param capacity Ring capacity; rounded up to a power of two,
  ///                 minimum 2.
  explicit StealDeque(Arena& arena, std::size_t capacity = 1024)
      : mask_(round_up_pow2(capacity) - 1),
        buffer_(static_cast<std::atomic<std::uint64_t>*>(arena.allocate(
            (mask_ + 1) * sizeof(std::atomic<std::uint64_t>),
            alignof(std::atomic<std::uint64_t>)))) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      new (&buffer_[i]) std::atomic<std::uint64_t>(0);
    }
  }

  ~StealDeque() { Arena::deallocate(buffer_); }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate (for "who is hottest" heuristics only).
  std::size_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const noexcept { return size() == 0; }

  /// Owner-only: push an item at the bottom.
  /// \return false when the ring is full (caller runs the item inline).
  bool push(std::uint64_t item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > static_cast<std::int64_t>(mask_)) return false;  // full
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // Publish the slot before the new bottom becomes visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner-only: pop the most recently pushed item.
  /// \return false when the deque is empty.
  bool pop(std::uint64_t& item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // The bottom decrement must be ordered before the top read (the
    // owner/thief race on the last element hinges on it): both seq_cst,
    // pairing with steal()'s seq_cst loads.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    item = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it via the top counter.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;  // more than one element left: no thief can reach it
  }

  /// Thief: steal the oldest item.
  /// \return false when the deque looked empty or the steal lost a race
  ///         (callers treat both as "try the next victim").
  bool steal(std::uint64_t& item) noexcept {
    // The top read is ordered before the bottom read (pairs with pop's
    // seq_cst decrement-then-read).
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;  // empty
    item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  const std::size_t mask_;
  std::atomic<std::uint64_t>* const buffer_;
};

}  // namespace orwl::rt
