// The orwl_fifo primitive: a single-producer / single-consumer buffered
// channel built from locations and iterative handles.
//
// "An orwl_fifo primitive is used to store a new version of output data
// intermediately such that the lock for other readers/writers can quickly
// be released." (Sec. V-C)
//
// Implementation: `depth` consecutive locations of the producer task act
// as a ring of versioned buffers. The producer holds a write Handle2 on
// every slot (priority 0), the consumer a read Handle2 (priority 1); the
// per-slot FIFO alternation then allows the producer to run up to
// `depth - 1` items ahead of the consumer without blocking.
// Memory: the ring bookkeeping (handle pointers and link()-created
// handles) draws from the channel owner's queue arena, so a channel's
// metadata lives on the same NUMA node as its grant engine.
#pragma once

#include <memory>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/handle.hpp"

namespace orwl::rt {

class FifoProducer {
 public:
  /// Link (and scale, when the calling task owns the slots) the channel's
  /// backing locations. Call during the init phase.
  /// \param ctx        The linking task's context.
  /// \param owner      Task whose locations back the channel.
  /// \param first_slot First of the owner's location slots used.
  /// \param depth      Ring depth: slots [first_slot, first_slot+depth);
  ///                   the producer may run depth-1 items ahead.
  /// \param bytes      Size of each slot's buffer.
  void link(TaskContext& ctx, TaskId owner, std::size_t first_slot,
            std::size_t depth, std::size_t bytes);

  /// Drive pre-declared handles instead of creating them: `handles` are
  /// the channel's write handles in ring order, already inserted (e.g.
  /// via Program::declare_insert by the v2 builder) and owned elsewhere
  /// for at least this object's lifetime.
  /// \throws std::invalid_argument for < 2 or unlinked handles;
  ///         std::logic_error when already linked.
  void adopt(std::vector<Handle2*> handles);

  /// Acquire the next slot for writing.
  /// \return The slot's buffer to fill; publish with end_push().
  std::span<std::byte> begin_push();

  /// Publish the slot written since begin_push().
  void end_push();

  std::size_t depth() const noexcept { return handles_.size(); }
  std::uint64_t pushed() const noexcept { return pushed_; }

 private:
  std::vector<Handle2*, ArenaAllocator<Handle2*>> handles_;  // ring order
  std::vector<ArenaPtr<Handle2>, ArenaAllocator<ArenaPtr<Handle2>>>
      owned_;  // link() storage
  std::size_t next_ = 0;
  bool open_ = false;
  std::uint64_t pushed_ = 0;
};

class FifoConsumer {
 public:
  /// Link read handles on the channel's backing locations (must mirror
  /// the producer's owner/first_slot/depth).
  void link(TaskContext& ctx, TaskId owner, std::size_t first_slot,
            std::size_t depth);

  /// Drive pre-declared read handles in ring order (see
  /// FifoProducer::adopt).
  void adopt(std::vector<Handle2*> handles);

  /// Acquire the next item for reading.
  /// \return The slot's contents; release with end_pop().
  std::span<const std::byte> begin_pop();

  /// Release the slot read since begin_pop().
  void end_pop();

  std::size_t depth() const noexcept { return handles_.size(); }
  std::uint64_t popped() const noexcept { return popped_; }

 private:
  std::vector<Handle2*, ArenaAllocator<Handle2*>> handles_;  // ring order
  std::vector<ArenaPtr<Handle2>, ArenaAllocator<ArenaPtr<Handle2>>>
      owned_;  // link() storage
  std::size_t next_ = 0;
  bool open_ = false;
  std::uint64_t popped_ = 0;
};

}  // namespace orwl::rt
