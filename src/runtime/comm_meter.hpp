// Lock-free measurement of the traffic the lock protocol actually moves.
//
// The declared communication matrix (Sec. IV-A) predicts which tasks
// exchange data; the grant engine *observes* it: every hand-off of a
// location lock from a releasing task to an acquiring one carries the
// location's buffer to the grantee. A CommMeter turns those hand-offs
// into a measured tm::CommMatrix — the feedback signal of the online
// re-placement loop (ROADMAP direction 3).
//
// Layout: one bank of num_tasks^2 plain 8-byte atomic cells per control-
// plane shard, each bank cache-line aligned in its *own shard's* arena —
// the recording thread is the shard's control thread (or a task near
// it), so the hot cells are NUMA-local to the writers. record() is two
// relaxed fetch_adds on the recording thread's own shard bank; harvest()
// drains every cell with exchange(0) and folds the drained delta into an
// exponentially decaying accumulator matrix, so recording never blocks
// and harvesting never loses a byte.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/types.hpp"
#include "treematch/comm_matrix.hpp"

namespace orwl::rt {

class CommMeter {
 public:
  /// \param num_shards Control-plane shard count (>= 1): one cell bank
  ///                   and one hand-off counter pair per shard.
  /// \param num_tasks  Tasks of the program; cells cover from x to pairs.
  /// \param arenas     Per-shard arenas backing each shard's cell bank
  ///                   (missing/null entries use the process arena).
  CommMeter(std::size_t num_shards, std::size_t num_tasks,
            const std::vector<Arena*>& arenas = {});
  ~CommMeter();
  CommMeter(const CommMeter&) = delete;
  CommMeter& operator=(const CommMeter&) = delete;

  std::size_t num_tasks() const noexcept { return tasks_; }
  std::size_t num_shards() const noexcept { return shards_; }

  /// Record one lock hand-off: `from` released the location last, `to`
  /// just acquired it, `bytes` is the location's buffer size (clamped to
  /// >= 1 so zero-sized synchronization locations still register), and
  /// `remote` marks a hand-off crossing NUMA nodes under the current
  /// placement. Lock-free; two relaxed adds on shard-local cache lines.
  void record(std::size_t shard, TaskId from, TaskId to, std::uint64_t bytes,
              bool remote) noexcept;

  /// Drain every cell (exchange to zero) into a delta matrix and fold it
  /// into `m` as `m = decay * m + delta` (m is extended to task order
  /// when needed). Returns the total bytes drained this harvest. Safe to
  /// run concurrently with record(); callers serialize harvest() itself
  /// (the re-placement check is single-flight).
  double harvest(tm::CommMatrix& m, double decay);

  /// Hand-offs recorded since construction (harvest does not reset).
  std::uint64_t handoffs() const noexcept;
  /// The subset of hand-offs that crossed NUMA nodes.
  std::uint64_t remote_handoffs() const noexcept;

 private:
  struct alignas(64) ShardCounters {
    std::atomic<std::uint64_t> handoffs{0};
    std::atomic<std::uint64_t> remote{0};
  };

  std::atomic<std::uint64_t>& cell(std::size_t shard, TaskId from,
                                   TaskId to) noexcept {
    return banks_[shard][from * tasks_ + to];
  }

  std::size_t tasks_;
  std::size_t shards_;
  std::size_t stride_;  ///< cells per bank, rounded up to full cache lines
  std::vector<std::atomic<std::uint64_t>*> banks_;  ///< arena blocks
  std::unique_ptr<ShardCounters[]> counters_;
};

}  // namespace orwl::rt
