// Handles and sections: how tasks link to and access locations.
//
// "orwl_handle implements a primitive to link the locations to the
// appropriate tasks with read or write access." — and ORWL_SECTION
// "defines a critical section that manages the access of threads to the
// location". The iterative variant (orwl_handle2 / ORWL_SECTION2)
// re-inserts its request at every release so that "each task may run a
// series of iterations that are autonomously synchronized by their access
// to the resource". (Sec. III)
#pragma once

#include <span>
#include <stdexcept>

#include "runtime/location.hpp"
#include "runtime/program.hpp"

namespace orwl::rt {

class Handle {
 public:
  Handle() = default;
  virtual ~Handle() = default;
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  /// orwl_write_insert: link this handle to `loc` with exclusive access.
  /// \param ctx      The inserting task's context.
  /// \param loc      Location to link; must belong to ctx's program.
  /// \param priority Position in the location's initial FIFO (ties broken
  ///                 by task id, then insertion order). After schedule(),
  ///                 inserts are live and enqueue at the tail instead.
  /// \throws std::logic_error when the handle is already linked.
  void write_insert(TaskContext& ctx, Location& loc, std::uint64_t priority);

  /// orwl_read_insert: link with shared access (same contract as
  /// write_insert; readers at the FIFO head are granted as a group).
  void read_insert(TaskContext& ctx, Location& loc, std::uint64_t priority);

  /// Link this handle to a location outside any Program (no task context,
  /// no schedule barrier): the request is enqueued immediately at the
  /// FIFO tail. This is how dist clients drive a RemoteLocation — the
  /// remote home's queue, not a local Program, orders the grants.
  /// \throws std::logic_error when the handle is already linked.
  void insert_standalone(Location& loc, AccessMode mode);

  /// Block until this handle's request is granted.
  /// \throws std::logic_error on protocol misuse (not linked, no pending
  ///         request, double acquire); std::runtime_error when the
  ///         deadlock-guard timeout expires.
  void acquire();

  /// Release the grant. Iterative handles re-insert automatically; plain
  /// handles become inert afterwards. Under the adaptive data-transfer
  /// policy a write release also records the releasing task's NUMA node
  /// for the grant-time migration heuristic.
  /// \throws std::logic_error when nothing is acquired.
  void release();

  /// Guard-teardown variant of release(): never throws. Releasing a
  /// handle that is not acquired is a no-op (so a guard whose lock was
  /// released early tears down cleanly), and a release that would have
  /// thrown is swallowed and recorded — on the owning program's
  /// guard_teardown_failures() counter and the global
  /// rt::guard_teardown_failures(). This is what `~Section` and the v2
  /// facade's guard destructors call: destructors must not throw.
  void release_for_teardown() noexcept;

  bool linked() const noexcept { return loc_ != nullptr; }
  bool acquired() const noexcept { return acquired_; }
  bool iterative() const noexcept { return iterative_; }
  AccessMode mode() const noexcept { return mode_; }
  Location* location() const noexcept { return loc_; }

  /// orwl_write_map: mutable view of the location buffer. Requires an
  /// acquired write handle.
  std::span<std::byte> write_map();

  /// orwl_read_map: read view of the buffer. Requires an acquired handle.
  std::span<const std::byte> read_map();

  /// Typed convenience maps.
  template <typename T>
  T* write_map_as() {
    return reinterpret_cast<T*>(write_map().data());
  }
  template <typename T>
  const T* read_map_as() {
    return reinterpret_cast<const T*>(read_map().data());
  }

 protected:
  friend class Program;

  /// Installed by the runtime when the request enters the FIFO.
  void attach_ticket(Ticket t) noexcept { ticket_ = t; }

  void insert(TaskContext& ctx, Location& loc, AccessMode mode,
              std::uint64_t priority);

  Location* loc_ = nullptr;
  Program* prog_ = nullptr;  ///< set at insert; feeds data-transfer hints
  TaskId task_ = 0;          ///< task that inserted this handle
  AccessMode mode_ = AccessMode::Read;
  Ticket ticket_ = 0;
  bool acquired_ = false;
  bool iterative_ = false;
};

/// orwl_handle2: the iterative handle. Each release atomically re-inserts
/// a request for the next iteration, keeping the cyclic FIFO order of all
/// participants.
class Handle2 : public Handle {
 public:
  Handle2() { iterative_ = true; }
};

/// Number of guard teardowns (Section / v2 guard destructors) that had to
/// swallow a throwing release since process start. A non-zero value means
/// a protocol error surfaced during stack unwinding and was recorded
/// instead of terminating the program.
std::uint64_t guard_teardown_failures() noexcept;

/// ORWL_SECTION as RAII: acquires on construction, releases on scope exit.
/// Teardown is noexcept: a handle already released (double release) is a
/// no-op, and a throwing release is swallowed and counted (see
/// guard_teardown_failures).
///
///   Section sec(handle);
///   double* v = sec.as<double>();
class Section {
 public:
  explicit Section(Handle& h) : h_(&h) { h_->acquire(); }
  ~Section() { h_->release_for_teardown(); }
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;

  /// Release the lock before scope exit; the destructor then does
  /// nothing. Throws like Handle::release on protocol misuse.
  void release() { h_->release(); }

  std::span<std::byte> write_map() { return h_->write_map(); }
  std::span<const std::byte> read_map() { return h_->read_map(); }

  template <typename T>
  T* as() {
    return h_->write_map_as<T>();
  }
  template <typename T>
  const T* as_const() {
    return h_->read_map_as<T>();
  }

 private:
  Handle* h_;
};

/// Functional form: run `fn` inside a critical section on `h`.
template <typename F>
decltype(auto) with_section(Handle& h, F&& fn) {
  Section sec(h);
  return std::forward<F>(fn)(sec);
}

}  // namespace orwl::rt
