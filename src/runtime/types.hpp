// Shared identifiers of the ORWL runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace orwl::rt {

/// Identifier of an application task ("orwl_mytid" in the C library).
using TaskId = std::size_t;

/// Global identifier of a location: owner_task * locations_per_task + slot.
using LocationId = std::size_t;

/// Ticket identifying one request in a location's FIFO.
using Ticket = std::uint64_t;

/// Access mode of a request: readers may share the head of the FIFO,
/// writers are exclusive.
enum class AccessMode : std::uint8_t { Read, Write };

inline const char* to_string(AccessMode m) noexcept {
  return m == AccessMode::Read ? "read" : "write";
}

}  // namespace orwl::rt
