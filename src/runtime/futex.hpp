// Futex-backed parking for the grant engine and the control-plane
// shards.
//
// The PR-3 grant engine made the *granted* fast path lock-free, but a
// blocked acquirer still parked on a per-slot std::mutex +
// std::condition_variable pair, and every shard worker slept on a
// condvar — so the contended hand-off cycle carried pthread mutex
// traffic even though the protocol state lives entirely in one atomic
// word. These helpers park directly on a 32-bit sequence word via
// SYS_futex (FUTEX_*_PRIVATE) on Linux.
//
// Protocol (same for slots and shards): the waiter reads the sequence
// word, re-checks its predicate, then futex-waits for the sequence to
// change; the waker updates the predicate state first, bumps the
// sequence (release), then wakes. A wake between the waiter's re-check
// and its futex_wait makes the wait return immediately (EAGAIN) — no
// lost wakeup, no mutex.
//
// ORWL_FUTEX=1|0 (default 1 on Linux) gates the path; the condvar path
// is retained for non-Linux hosts and as a diffable fallback. Timed
// waits are supported (FUTEX_WAIT takes a relative timeout) so the
// acquire-timeout guard works on both paths.
//
// TSan note: the happens-before edges all come from the atomic
// predicate/sequence words, which TSan models; the futex syscall only
// blocks, it transfers no data.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/env.hpp"

#if defined(__linux__)
#include <climits>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <chrono>
#include <thread>
#endif

namespace orwl::rt {

/// ORWL_FUTEX=1|0 — park blocked acquirers and shard workers on futexes
/// (Linux, default) instead of mutex+condvar pairs.
inline constexpr const char* kFutexEnvVar = "ORWL_FUTEX";

constexpr bool futex_supported() noexcept {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

/// Effective gate: the env knob is read per call (ScopedEnv-testable,
/// same idiom as membind.cpp) and forced off where SYS_futex is absent.
inline bool futex_enabled_from_env() {
  return futex_supported() && support::env_bool(kFutexEnvVar, true);
}

/// Block until `word != expected` is *signalled* (futex_wake after a
/// sequence bump), a spurious return, or the timeout. `timeout_ms <= 0`
/// means wait forever. Returns false only on timeout — callers must
/// re-check their predicate on true (spurious and EAGAIN returns are
/// folded into "woken").
inline bool futex_wait(std::atomic<std::uint32_t>& word,
                       std::uint32_t expected,
                       std::int64_t timeout_ms) noexcept {
#if defined(__linux__)
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ms > 0) {
    ts.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    ts.tv_nsec = static_cast<long>((timeout_ms % 1000) * 1000000);
    tsp = &ts;
  }
  const long rc =
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
              FUTEX_WAIT_PRIVATE, expected, tsp, nullptr, 0);
  return !(rc == -1 && errno == ETIMEDOUT);
#else
  // Portability fallback (the gate is off here, so this only runs if a
  // caller forces futex mode on a non-Linux host): untimed waits map to
  // C++20 atomic waiting; timed waits poll coarsely.
  if (timeout_ms <= 0) {
    word.wait(expected, std::memory_order_acquire);
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (word.load(std::memory_order_acquire) == expected) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
#endif
}

/// Wake one (or all) futex_wait-ers parked on `word`. Call after
/// bumping the sequence word with release ordering.
inline void futex_wake(std::atomic<std::uint32_t>& word,
                       bool all) noexcept {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
          FUTEX_WAKE_PRIVATE, all ? INT_MAX : 1, nullptr, nullptr, 0);
#else
  if (all) {
    word.notify_all();
  } else {
    word.notify_one();
  }
#endif
}

}  // namespace orwl::rt
