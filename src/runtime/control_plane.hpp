// Control threads of the ORWL runtime.
//
// "the ORWL runtime additionally deploys control threads and a lock
// mechanism that manage lock synchronization and data transfer. These
// control threads freeze and thaw processing threads of concurrent tasks
// according to the availability of resources." (Sec. IV-A)
//
// The control plane is a *sharded* event queue served by dedicated OS
// threads: every lock release posts a hand-off event to the shard nearest
// the waiters of its queue; a control thread of that shard drains all
// pending events of the shard in one wakeup (batched draining, duplicate
// events of one queue collapsed into a single grant pass) and
// performs the grant + wake-up of the next requesters. One shard is kept
// per NUMA node (or per top-level topology subtree), so hand-offs of
// unrelated locality domains never contend on a common mutex. These are
// the threads Algorithm 1 places on hyperthread siblings or spare cores;
// control thread j serves shard j % num_shards, and the Program aligns
// the tree_match control placement with that fixed assignment.
//
// post() never loses an event: when the plane is stopped, stopping, or
// the target shard is saturated, the grant is performed inline by the
// posting thread instead of being queued.
//
// The "data transfer" half of the quote is real too: the grant pass runs
// the queue's GrantHook first, which is where a Location migrates its
// buffer NUMA-locally before the grantee is woken (see
// runtime/location.hpp and topo/membind.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/arena.hpp"

namespace orwl::rt {

class RequestQueue;

/// Environment override for the number of control-plane shards the
/// Program creates (default: one per NUMA node, clamped to the number of
/// control threads).
inline constexpr const char* kControlShardsEnvVar = "ORWL_CONTROL_SHARDS";

struct ControlPlaneOptions {
  /// Dedicated control threads (0 => no threads, every post grants
  /// inline).
  std::size_t num_threads = 0;

  /// Event shards; clamped to [1, num_threads] so every shard is served.
  std::size_t num_shards = 1;

  /// Events a shard may hold before post() falls back to an inline grant
  /// (back-pressure instead of unbounded queue growth); 0 = unbounded.
  std::size_t shard_capacity = 4096;

  /// Futex worker parking: -1 follows ORWL_FUTEX (on by default on
  /// Linux), 0/1 force condvar/futex.
  int use_futex = -1;

  /// Arena backing shard s's event deque (and its worker's drain
  /// buffers); missing or null entries fall back to the process arena.
  /// The Program passes its per-shard node-bound arenas here.
  std::vector<Arena*> shard_arenas;
};

class ControlPlane {
 public:
  /// Single-shard plane with `nthreads` control threads (the pre-sharding
  /// interface, kept for tests and benches).
  explicit ControlPlane(std::size_t nthreads);
  explicit ControlPlane(const ControlPlaneOptions& opts);
  ~ControlPlane();

  /// The shard count the given options produce (the [1, num_threads]
  /// clamp), so callers can size per-shard resources — arenas, shard
  /// maps — before constructing the plane.
  static std::size_t effective_shards(const ControlPlaneOptions& opts);
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void start();
  void stop();

  std::size_t num_threads() const noexcept { return num_threads_; }
  std::size_t num_shards() const noexcept { return num_shards_; }
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Shard served by control thread j (fixed round-robin assignment).
  std::size_t shard_of_thread(std::size_t j) const noexcept {
    return j % num_shards_;
  }

  /// Post a grant hand-off event for the given queue.
  /// \param q     Queue whose head group needs granting; the serving
  ///              control thread calls its grant path (including the
  ///              grant hook for data transfer).
  /// \param shard Target shard (taken mod num_shards) — normally the
  ///              shard of the queue owner's placed PU.
  ///
  /// Safe in every plane state: when the plane is not running, is
  /// stopping, or the shard is saturated, the grant happens inline on the
  /// calling thread — an event is never silently dropped.
  void post(RequestQueue* q, std::size_t shard = 0);

  /// Bind control thread j to pus[j % pus.size()] (entries of -1 skip).
  /// With shard-aligned placements pus[j] is a PU inside shard
  /// shard_of_thread(j)'s locality domain.
  /// \param pus PU os-indices per control thread; empty binds nothing.
  /// \return Number of threads successfully bound.
  std::size_t bind_threads(const std::vector<int>& pus);

  /// Total events processed by control threads (tests, counter reports).
  std::uint64_t events_processed() const noexcept;

  /// Control-thread wakeups that drained at least one event; with batched
  /// draining this is <= events_processed().
  std::uint64_t drain_batches() const noexcept;

  /// Grants performed inline by post() (plane stopped/stopping/saturated).
  std::uint64_t inline_grants() const noexcept {
    return inline_grants_.load(std::memory_order_relaxed);
  }

  /// Worker futex sleeps / poster futex wakes (0 on the condvar path).
  std::uint64_t futex_waits() const noexcept;
  std::uint64_t futex_wakes() const noexcept;

  /// Events stolen by idle shard workers from loaded sibling shards
  /// (granted by the thief before it parks, instead of waiting for the
  /// loaded shard's worker to catch up).
  std::uint64_t shard_steals() const noexcept;

  bool futex_parking() const noexcept { return futex_; }

 private:
  /// Event deque drawing from the shard's node-bound arena.
  using EventDeque = std::deque<RequestQueue*, ArenaAllocator<RequestQueue*>>;

  struct Shard {
    explicit Shard(Arena* a)
        : events(ArenaAllocator<RequestQueue*>(a)), arena(a) {}
    std::mutex mu;
    std::condition_variable cv;             ///< ORWL_FUTEX=0 path
    std::atomic<std::uint32_t> seq{0};      ///< futex wakeup word
    EventDeque events;
    /// events.size() republished after every mutation under mu, so
    /// sibling workers can pick a steal victim without touching mu.
    std::atomic<std::size_t> size_hint{0};
    bool stopping = false;
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> futex_waits{0};
    std::atomic<std::uint64_t> futex_wakes{0};
    std::atomic<std::uint64_t> steals{0};  ///< events taken FROM siblings
    Arena* arena;
  };

  void worker_loop(std::size_t shard_index);
  void wake_shard(Shard& shard, bool all);
  bool steal_events(std::size_t self, EventDeque& out);

  const std::size_t num_threads_;
  const std::size_t num_shards_;
  const std::size_t shard_capacity_;
  const bool futex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> inline_grants_{0};
};

}  // namespace orwl::rt
