// Control threads of the ORWL runtime.
//
// "the ORWL runtime additionally deploys control threads and a lock
// mechanism that manage lock synchronization and data transfer. These
// control threads freeze and thaw processing threads of concurrent tasks
// according to the availability of resources." (Sec. IV-A)
//
// The control plane is an event queue served by dedicated OS threads:
// every lock release posts a hand-off event; a control thread pops it and
// performs the grant + wake-up of the next requester. These are the
// threads Algorithm 1 places on hyperthread siblings or spare cores.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace orwl::rt {

class RequestQueue;

class ControlPlane {
 public:
  /// Create with `nthreads` control threads (0 => inline grants, no
  /// threads). Threads are started by start().
  explicit ControlPlane(std::size_t nthreads);
  ~ControlPlane();
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void start();
  void stop();

  std::size_t num_threads() const noexcept { return num_threads_; }
  bool running() const noexcept { return running_; }

  /// Post a grant hand-off event for the given queue.
  /// Must only be called while running (RequestQueue guards this).
  void post(RequestQueue* q);

  /// Bind control thread j to pus[j % pus.size()] (entries of -1 skip).
  /// Returns the number of threads successfully bound.
  std::size_t bind_threads(const std::vector<int>& pus);

  /// Total events processed (for tests and counter reporting).
  std::uint64_t events_processed() const noexcept {
    return events_processed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  const std::size_t num_threads_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RequestQueue*> events_;
  bool running_ = false;
  bool stopping_ = false;
  std::atomic<std::uint64_t> events_processed_{0};
};

}  // namespace orwl::rt
