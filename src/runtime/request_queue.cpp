#include "runtime/request_queue.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "runtime/control_plane.hpp"

namespace orwl::rt {

Ticket RequestQueue::enqueue(AccessMode mode) {
  std::unique_lock lock(mu_);
  const Ticket t = next_ticket_++;
  q_.push_back(Entry{t, mode, false});
  if (grant_head_locked()) cv_.notify_all();
  return t;
}

bool RequestQueue::grant_head_locked() {
  bool any = false;
  if (q_.empty()) return false;
  if (q_.front().mode == AccessMode::Write) {
    if (!q_.front().granted) {
      q_.front().granted = true;
      ++grants_;
      any = true;
    }
    return any;
  }
  // Reader sharing: grant the maximal leading run of reads.
  for (auto& e : q_) {
    if (e.mode != AccessMode::Read) break;
    if (!e.granted) {
      e.granted = true;
      ++grants_;
      any = true;
    }
  }
  return any;
}

void RequestQueue::acquire(Ticket t) {
  std::unique_lock lock(mu_);
  auto find = [&]() {
    return std::find_if(q_.begin(), q_.end(),
                        [&](const Entry& e) { return e.ticket == t; });
  };
  auto it = find();
  if (it == q_.end()) {
    throw std::runtime_error("RequestQueue::acquire: unknown ticket");
  }
  if (timeout_ms_ == 0) {
    cv_.wait(lock, [&] {
      auto i = find();
      return i != q_.end() && i->granted;
    });
    return;
  }
  const bool ok =
      cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms_), [&] {
        auto i = find();
        return i != q_.end() && i->granted;
      });
  if (!ok) {
    throw std::runtime_error(
        "RequestQueue::acquire: timed out waiting for grant (likely a "
        "deadlocked access protocol)");
  }
}

bool RequestQueue::granted(Ticket t) const {
  std::unique_lock lock(mu_);
  const auto it = std::find_if(q_.begin(), q_.end(),
                               [&](const Entry& e) { return e.ticket == t; });
  return it != q_.end() && it->granted;
}

void RequestQueue::hand_off_locked(std::unique_lock<std::mutex>& lock) {
  if (control_ != nullptr) {
    // Decentralized hand-off: a control thread of our shard performs the
    // grant. post() is safe in every plane state — it grants inline when
    // the plane is stopped, stopping, or the shard is saturated — so a
    // release racing ControlPlane::stop() can never strand a waiter.
    lock.unlock();
    control_->post(this, control_shard_.load(std::memory_order_relaxed));
  } else {
    if (grant_head_locked()) cv_.notify_all();
    lock.unlock();
  }
}

void RequestQueue::release(Ticket t) {
  std::unique_lock lock(mu_);
  const auto it = std::find_if(q_.begin(), q_.end(),
                               [&](const Entry& e) { return e.ticket == t; });
  if (it == q_.end() || !it->granted) {
    throw std::logic_error("RequestQueue::release: ticket not granted");
  }
  q_.erase(it);
  hand_off_locked(lock);
}

Ticket RequestQueue::reinsert_and_release(Ticket t, AccessMode mode) {
  std::unique_lock lock(mu_);
  const auto it = std::find_if(q_.begin(), q_.end(),
                               [&](const Entry& e) { return e.ticket == t; });
  if (it == q_.end() || !it->granted) {
    throw std::logic_error(
        "RequestQueue::reinsert_and_release: ticket not granted");
  }
  const Ticket fresh = next_ticket_++;
  q_.push_back(Entry{fresh, mode, false});
  q_.erase(std::find_if(q_.begin(), q_.end(),
                        [&](const Entry& e) { return e.ticket == t; }));
  hand_off_locked(lock);
  return fresh;
}

std::size_t RequestQueue::pending() const {
  std::unique_lock lock(mu_);
  return q_.size();
}

void RequestQueue::grant_from_control() {
  std::unique_lock lock(mu_);
  if (grant_head_locked()) cv_.notify_all();
}

}  // namespace orwl::rt
